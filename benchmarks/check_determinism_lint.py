"""Determinism lint: forbid nondeterminism sources in the invariant core.

Usage::

    python benchmarks/check_determinism_lint.py [--root src/repro]

The worker-count-invariance contract (``strip_wall(artifact)`` is
bit-identical for workers=1 vs N) only holds if the code that produces
invariant artifacts never consults a nondeterminism source.  This lint
walks the AST of every module in the invariant core — ``fuzz/``,
``obs/``, and ``analysis/`` — and fails CI on:

- ``time.time()`` — wall-clock reads belong in the structurally
  segregated ``wall`` sections; ``time.perf_counter`` /
  ``time.monotonic`` are permitted because every existing call site
  feeds a ``wall``-segregated field and new absolute-epoch reads are
  the regression this lint exists to catch;
- ``datetime.now()`` / ``datetime.utcnow()`` / ``datetime.today()`` —
  same hazard with a calendar attached;
- module-level ``random.*`` calls (``random.random``,
  ``random.randint``, ...) — these draw from the process-global,
  OS-seeded generator.  Constructing ``random.Random`` (the seeded
  class :class:`repro.fuzz.rng.FuzzRng` subclasses) is allowed;
- ``os.urandom`` / ``secrets.*`` / ``uuid.uuid4`` — OS entropy;
- iterating directly over a set expression (a set literal, a set
  comprehension, or a ``set(...)`` / ``frozenset(...)`` call) in a
  ``for`` statement or comprehension — set iteration order is
  hash-seed-dependent; wrap the expression in ``sorted(...)``.  The
  check is syntactic: it cannot see through a name bound to a set, so
  it catches the idiom at the point of construction, which is where
  review has found every past violation.

Sites that are genuinely wall-clock and already structurally
segregated are allowlisted below, keyed by ``(relative path, rule)``;
each entry carries the reason it is safe so the allowlist cannot
silently grow into a bypass.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path

#: Directories (relative to --root) that must stay deterministic.
LINTED_DIRS = ("fuzz", "obs", "analysis")

#: (relative posix path, rule) -> why the site is allowed.
ALLOWLIST: dict[tuple[str, str], str] = {
    ("obs/heartbeat.py", "time.time"):
        "updated_unix heartbeat field: consumed only by `repro watch` "
        "for staleness display, never written into a metrics artifact",
}

_DATETIME_NOW = {"now", "utcnow", "today"}
_SET_PRODUCERS = {"set", "frozenset"}


class Violation:
    def __init__(self, path: str, line: int, rule: str, detail: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.detail = detail

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.detail}"


def _dotted(node: ast.AST) -> str | None:
    """Render an Attribute/Name chain as 'a.b.c', else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _dotted(node.func)
        return name in _SET_PRODUCERS
    return False


class _Linter(ast.NodeVisitor):
    def __init__(self, rel_path: str):
        self.rel_path = rel_path
        self.violations: list[Violation] = []

    def _flag(self, node: ast.AST, rule: str, detail: str) -> None:
        if (self.rel_path, rule) in ALLOWLIST:
            return
        self.violations.append(
            Violation(self.rel_path, node.lineno, rule, detail))

    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        if name:
            self._check_call(node, name)
        self.generic_visit(node)

    def _check_call(self, node: ast.Call, name: str) -> None:
        if name == "time.time":
            self._flag(node, "time.time",
                       "wall-clock read outside a segregated wall section")
        elif name.startswith("datetime.") and \
                name.split(".")[-1] in _DATETIME_NOW:
            self._flag(node, "datetime.now",
                       f"{name}() reads the wall clock")
        elif name == "os.urandom":
            self._flag(node, "os.urandom", "OS entropy source")
        elif name.startswith("secrets."):
            self._flag(node, "secrets", f"{name}() is OS entropy")
        elif name == "uuid.uuid4":
            self._flag(node, "uuid.uuid4", "random UUIDs are unseeded")
        elif name.startswith("random.") and name != "random.Random":
            self._flag(node, "unseeded-random",
                       f"{name}() uses the global OS-seeded generator; "
                       "use a seeded FuzzRng / random.Random instead")

    def _check_iter(self, iter_node: ast.AST) -> None:
        if _is_set_expr(iter_node):
            self._flag(iter_node, "set-iteration",
                       "iteration order over a set is hash-seed-"
                       "dependent; wrap in sorted(...)")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp


def lint_file(path: Path, rel_path: str) -> list[Violation]:
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    linter = _Linter(rel_path)
    linter.visit(tree)
    return linter.violations


def lint_tree(root: Path) -> list[Violation]:
    violations: list[Violation] = []
    for directory in LINTED_DIRS:
        base = root / directory
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            violations.extend(lint_file(path, rel))
    return violations


def check_allowlist(root: Path) -> list[str]:
    """Allowlist entries whose file no longer exists are stale."""
    stale = []
    for (rel, rule), _reason in sorted(ALLOWLIST.items()):
        if not (root / rel).is_file():
            stale.append(f"allowlist entry for missing file: {rel} [{rule}]")
    return stale


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default="src/repro",
                        help="package root containing fuzz/, obs/, analysis/")
    args = parser.parse_args(argv)

    root = Path(args.root)
    if not root.is_dir():
        print(f"determinism lint: root {root} not found", file=sys.stderr)
        return 2

    problems = check_allowlist(root)
    violations = lint_tree(root)
    for violation in violations:
        print(f"determinism lint: {violation}", file=sys.stderr)
    for problem in problems:
        print(f"determinism lint: {problem}", file=sys.stderr)
    if violations or problems:
        print(f"determinism lint: {len(violations)} violation(s), "
              f"{len(problems)} stale allowlist entr(ies)", file=sys.stderr)
        return 1
    checked = sum(
        1 for d in LINTED_DIRS for _ in (root / d).rglob("*.py")
        if (root / d).is_dir()
    )
    print(f"determinism lint: OK ({checked} files, "
          f"{len(ALLOWLIST)} allowlisted site(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
