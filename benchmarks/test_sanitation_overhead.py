"""Section 6.4 (RQ3): overhead of the memory-access sanitation.

Paper result, over 708 self-test programs containing loads/stores
(three repetitions, averaged): **~90% execution-time slowdown** and a
**3.0x instruction footprint**, judged comparable to ASAN's 73% / 3.37x
on CPU2006.

Reproduction: the same protocol over our self-test corpus — accepted
programs containing loads/stores are loaded raw and sanitized into
fresh kernels and executed repeatedly.  The shape targets: a clearly
positive slowdown of the same order (tens of percent to ~3x) and a
footprint ratio in the low single digits.
"""

from __future__ import annotations

import pytest

from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.errors import BpfError, VerifierReject
from repro.testsuite import all_selftests_extended as all_selftests


def _dataset():
    """Accepted self-tests that can trigger the instrumentation.

    The paper: "tests without any load/store are skipped since they
    cannot trigger our instrumentation" — in our terms, programs whose
    every access is R10-based (skipped by reduction rule 1) cannot
    trigger it either, so the filter is "at least one dispatch site".
    """
    from repro.sanitizer.instrument import build_insertions

    programs = []
    for selftest in all_selftests():
        if selftest.expect != "accept" or not selftest.has_memory_access:
            continue
        kernel = Kernel(PROFILES["patched"]())
        try:
            prog = selftest.build(kernel)
            kernel.prog_load(prog)
        except (VerifierReject, BpfError):  # pragma: no cover
            continue
        insertions, _ = build_insertions(prog.insns, set())
        if not insertions:
            continue
        programs.append(selftest)
    return programs


@pytest.mark.benchmark(group="overhead")
def test_sanitation_overhead(benchmark):
    selftests = _dataset()
    assert len(selftests) >= 25  # a meaningful corpus

    def run():
        from repro.analysis.stats import OverheadStats
        import time

        from repro.runtime.executor import Executor

        stats = OverheadStats()
        for selftest in selftests:
            per_variant = []
            for sanitize in (False, True):
                kernel = Kernel(PROFILES["patched"]())
                prog = selftest.build(kernel)
                verified = kernel.prog_load(prog, sanitize=sanitize)
                executor = Executor(kernel)
                executed = 0
                best = float("inf")
                for _ in range(3):  # three repetitions, like the paper
                    start = time.perf_counter()
                    for _ in range(3):
                        result = executor.run(verified)
                        executed = result.stats.insns_executed
                    best = min(best, time.perf_counter() - start)
                per_variant.append((len(verified.xlated), executed, best))
            (rl, re_, rt), (sl, se, st_) = per_variant
            stats.programs += 1
            stats.raw_insns += rl
            stats.sanitized_insns += sl
            stats.raw_executed += re_
            stats.sanitized_executed += se
            stats.raw_seconds += rt
            stats.sanitized_seconds += st_
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)

    print(f"\n=== sanitation overhead over {stats.programs} self-tests ===")
    print(f"instruction footprint: {stats.footprint_ratio:.2f}x "
          f"(paper: 3.0x; ASAN: 3.37x)")
    print(f"executed instructions: {stats.executed_ratio:.2f}x")
    print(f"execution slowdown:    {stats.slowdown_percent:.0f}% "
          f"(paper: 90%; ASAN: 73%)")

    # Shape: footprint in the low single digits, slowdown clearly
    # positive and of the same order as the paper's 90%.
    assert 1.3 <= stats.footprint_ratio <= 5.0
    assert stats.executed_ratio > 1.1
    assert 10.0 <= stats.slowdown_percent <= 400.0
