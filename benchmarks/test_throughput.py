"""Campaign throughput: serial vs sharded-parallel programs/sec.

The paper's 48-hour campaigns get their throughput from a 40-core
server (Section 6.1); this benchmark measures how well the sharded
:class:`~repro.fuzz.parallel.ParallelCampaign` turns extra cores into
programs/sec, and — because worker count must never change *what* a
campaign computes — re-checks the serial/parallel equivalence contract
at benchmark scale.

Results land in ``BENCH_throughput.json`` next to the repo root so CI
can archive the trajectory across PRs.  Knobs:

- ``BVF_BENCH_BUDGET``   — programs per campaign (default 300);
- ``BVF_BENCH_WORKERS``  — parallel worker count (default 4);
- ``BVF_BENCH_MIN_SPEEDUP`` — required parallel speedup; defaults to
  2.0 on machines with >= 4 CPUs and is skipped (0) on smaller boxes,
  where fork-per-shard overhead cannot be amortised.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.analysis.stats import ThroughputStats
from repro.fuzz.campaign import CampaignConfig
from repro.fuzz.parallel import ParallelCampaign

BUDGET = int(os.environ.get("BVF_BENCH_BUDGET", "300"))
WORKERS = int(os.environ.get("BVF_BENCH_WORKERS", "4"))
_CPUS = os.cpu_count() or 1
MIN_SPEEDUP = float(
    os.environ.get("BVF_BENCH_MIN_SPEEDUP", "2.0" if _CPUS >= 4 else "0")
)
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"

CONFIG = CampaignConfig(
    tool="bvf", kernel_version="bpf-next", budget=BUDGET, seed=0
)


def test_parallel_throughput():
    serial = ParallelCampaign(CONFIG, workers=1).run()
    parallel = ParallelCampaign(CONFIG, workers=WORKERS).run()

    # The equivalence contract, at benchmark scale: worker count is a
    # throughput knob and must not change the merged science.
    assert sorted(serial.findings) == sorted(parallel.findings)
    assert serial.final_coverage == parallel.final_coverage
    assert serial.accepted == parallel.accepted

    serial_stats = ThroughputStats.from_result(serial)
    parallel_stats = ThroughputStats.from_result(parallel)
    speedup = (
        parallel_stats.programs_per_sec / serial_stats.programs_per_sec
        if serial_stats.programs_per_sec
        else 0.0
    )

    payload = {
        "budget": BUDGET,
        "workers": WORKERS,
        "cpus": _CPUS,
        "serial": serial_stats.as_dict(),
        "parallel": parallel_stats.as_dict(),
        "speedup": round(speedup, 2),
        "bugs_found": len(parallel.findings),
        "merged_coverage": parallel.final_coverage,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    print("\n=== Throughput (serial vs parallel) ===")
    print(f"budget {BUDGET}, {WORKERS} workers on {_CPUS} CPU(s)")
    print(f"serial:   {serial_stats.programs_per_sec:8.1f} programs/sec "
          f"({serial_stats.wall_seconds:.2f}s wall)")
    print(f"parallel: {parallel_stats.programs_per_sec:8.1f} programs/sec "
          f"({parallel_stats.wall_seconds:.2f}s wall, "
          f"{parallel_stats.parallelism:.1f}x effective parallelism)")
    print(f"speedup:  {speedup:.2f}x (required: {MIN_SPEEDUP or 'n/a'})")
    print(f"wrote {OUTPUT.name}")

    assert parallel_stats.programs_per_sec > 0
    if MIN_SPEEDUP:
        assert speedup >= MIN_SPEEDUP, (
            f"parallel speedup {speedup:.2f}x below the {MIN_SPEEDUP:.1f}x "
            f"floor on a {_CPUS}-CPU machine"
        )
