"""Campaign throughput: serial vs sharded-parallel programs/sec.

The paper's 48-hour campaigns get their throughput from a 40-core
server (Section 6.1); this benchmark measures how well the sharded
:class:`~repro.fuzz.parallel.ParallelCampaign` turns extra cores into
programs/sec, and — because worker count must never change *what* a
campaign computes — re-checks the serial/parallel equivalence contract
at benchmark scale.

Results land in ``BENCH_throughput.json`` next to the repo root so CI
can archive the trajectory across PRs.  Knobs:

- ``BVF_BENCH_BUDGET``   — programs per campaign (default 300);
- ``BVF_BENCH_WORKERS``  — parallel worker count (default 4);
- ``BVF_BENCH_MIN_SPEEDUP`` — required parallel speedup; defaults to
  2.0 on machines with >= 4 CPUs and is skipped (0) on smaller boxes,
  where fork-per-shard overhead cannot be amortised.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.analysis.stats import ThroughputStats
from repro.fuzz.campaign import CampaignConfig
from repro.fuzz.parallel import ParallelCampaign
from repro.obs.metrics import cache_hit_rates

BUDGET = int(os.environ.get("BVF_BENCH_BUDGET", "300"))
WORKERS = int(os.environ.get("BVF_BENCH_WORKERS", "4"))
_CPUS = os.cpu_count() or 1
MIN_SPEEDUP = float(
    os.environ.get("BVF_BENCH_MIN_SPEEDUP", "2.0" if _CPUS >= 4 else "0")
)
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"

CONFIG = CampaignConfig(
    tool="bvf", kernel_version="bpf-next", budget=BUDGET, seed=0
)

#: Disabled-mode budget for the VStateChecker: leaving the flag off may
#: cost at most this fraction of throughput versus an identical run.
INVARIANT_OVERHEAD_BUDGET = float(
    os.environ.get("BVF_BENCH_INVARIANT_BUDGET", "0.05")
)

#: Disabled-mode budget for the flight recorder (ISSUE 8: the decision
#: log must stay within 5% of baseline when the flag is off).
FLIGHT_OVERHEAD_BUDGET = float(
    os.environ.get("BVF_BENCH_FLIGHT_BUDGET", "0.05")
)

#: Disabled-mode budget for the hierarchical profiler (ISSUE 9: the
#: analytics layer must stay within 5% of baseline when the flag is
#: off).
PROFILE_OVERHEAD_BUDGET = float(
    os.environ.get("BVF_BENCH_PROFILE_BUDGET", "0.05")
)

#: Disabled-mode budget for the repair synthesizer (ISSUE 10: the
#: rejection-repair layer must stay within 5% of baseline when
#: ``--repair-feedback`` is off).
REPAIR_OVERHEAD_BUDGET = float(
    os.environ.get("BVF_BENCH_REPAIR_BUDGET", "0.05")
)

#: Where the flight-events sample trace lands (CI archives it next to
#: the throughput trajectory).
EVENTS_OUTPUT = OUTPUT.with_name("BENCH_events.jsonl")

#: Where the profile summary of the enabled-mode campaign lands (CI
#: archives it next to the throughput trajectory, so each PR carries a
#: per-check-family view of where verification time went).
PROFILE_OUTPUT = OUTPUT.with_name("BENCH_profile.json")


def _load_payload() -> dict:
    if OUTPUT.exists():
        try:
            return json.loads(OUTPUT.read_text())
        except ValueError:
            pass
    return {}


def _cache_rates(metrics: dict) -> dict:
    """Hit rates of the verifier fast-path caches, from one snapshot.

    Delegates to :func:`repro.obs.metrics.cache_hit_rates` so the
    benchmark, the ``repro report`` dashboard, and campaign heartbeats
    always agree on the definition of each rate.
    """
    return cache_hit_rates(metrics.get("counters", {}))


def test_parallel_throughput():
    serial = ParallelCampaign(CONFIG, workers=1).run()
    parallel = ParallelCampaign(CONFIG, workers=WORKERS).run()

    # The equivalence contract, at benchmark scale: worker count is a
    # throughput knob and must not change the merged science.
    assert sorted(serial.findings) == sorted(parallel.findings)
    assert serial.final_coverage == parallel.final_coverage
    assert serial.accepted == parallel.accepted

    serial_stats = ThroughputStats.from_result(serial)
    parallel_stats = ThroughputStats.from_result(parallel)
    speedup = (
        parallel_stats.programs_per_sec / serial_stats.programs_per_sec
        if serial_stats.programs_per_sec
        else 0.0
    )

    payload = _load_payload()
    payload.update({
        "budget": BUDGET,
        "workers": WORKERS,
        "cpus": _CPUS,
        "serial": serial_stats.as_dict(),
        "parallel": parallel_stats.as_dict(),
        "speedup": round(speedup, 2),
        "bugs_found": len(parallel.findings),
        "merged_coverage": parallel.final_coverage,
        # Fast-path cache effectiveness (serial run: one process, so
        # the process-global tnum memo numbers are self-contained).
        # check_throughput_trajectory.py gates these and the serial
        # verify_fraction across CI runs.
        "caches": _cache_rates(serial.metrics),
        # Rejection-reason distribution for the drift gate
        # (benchmarks/check_taxonomy_drift.py).  Deterministic for a
        # fixed (seed, budget, shards), so any change between CI runs
        # is a real behaviour change, not noise.
        "taxonomy": {
            "generated": serial.generated,
            "by_reason": dict(sorted(serial.reject_reasons.items())),
        },
    })
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    print("\n=== Throughput (serial vs parallel) ===")
    print(f"budget {BUDGET}, {WORKERS} workers on {_CPUS} CPU(s)")
    print(f"serial:   {serial_stats.programs_per_sec:8.1f} programs/sec "
          f"({serial_stats.wall_seconds:.2f}s wall)")
    print(f"parallel: {parallel_stats.programs_per_sec:8.1f} programs/sec "
          f"({parallel_stats.wall_seconds:.2f}s wall, "
          f"{parallel_stats.parallelism:.1f}x effective parallelism)")
    print(f"speedup:  {speedup:.2f}x (required: {MIN_SPEEDUP or 'n/a'})")
    print(f"wrote {OUTPUT.name}")

    assert parallel_stats.programs_per_sec > 0
    if MIN_SPEEDUP:
        assert speedup >= MIN_SPEEDUP, (
            f"parallel speedup {speedup:.2f}x below the {MIN_SPEEDUP:.1f}x "
            f"floor on a {_CPUS}-CPU machine"
        )


def test_invariant_checker_overhead():
    """VStateChecker cost: disabled mode must be free, enabled is
    reported.

    Disabled is the default; the verifier hot path pays one
    ``is not None`` test per checkpoint.  Methodology: one **warm-up**
    campaign per mode first — the first campaigns of a process pay
    one-off costs (coverage-tracer build and attach, cold tnum memo,
    lazy imports) that would otherwise be attributed to whichever mode
    ran first — then N interleaved rounds (so a slow stretch of the
    host penalises all modes equally), scored by the **median** round,
    which a single descheduled outlier cannot drag the way best-of or
    mean-of can.  The earlier best-of-2 scheme produced a nonsensical
    -11% "overhead" for the disabled flag through exactly that noise.

    The baseline run (flags defaulted) and the explicit
    ``check_invariants=False`` run must agree within
    ``INVARIANT_OVERHEAD_BUDGET``; the ``check_invariants=True``
    overhead is recorded in ``BENCH_throughput.json`` for trend
    tracking but not gated (opt-in diagnostics may cost what they
    cost — including the verdict cache disabling itself, since a
    cached hit would skip the very checkpoints the flag asks for).
    """
    from statistics import median

    from repro.analysis.stats import ThroughputStats
    from repro.fuzz.campaign import Campaign

    def run_pps(**flags) -> float:
        config = CampaignConfig(
            tool="bvf", kernel_version="bpf-next", budget=BUDGET,
            seed=0, **flags
        )
        stats = ThroughputStats.from_result(Campaign(config).run())
        return stats.programs_per_sec

    modes = {
        "baseline": {},
        "disabled": {"check_invariants": False},
        "enabled": {"check_invariants": True},
    }
    for flags in modes.values():  # warm-up, discarded
        run_pps(**flags)
    rounds: dict[str, list[float]] = {mode: [] for mode in modes}
    for _ in range(3):
        for mode, flags in modes.items():
            rounds[mode].append(run_pps(**flags))
    samples = {mode: median(values) for mode, values in rounds.items()}

    disabled_overhead = 1.0 - samples["disabled"] / samples["baseline"]
    enabled_overhead = 1.0 - samples["enabled"] / samples["baseline"]

    payload = _load_payload()
    payload["invariant_checker"] = {
        "budget": BUDGET,
        "baseline_programs_per_sec": round(samples["baseline"], 2),
        "disabled_programs_per_sec": round(samples["disabled"], 2),
        "enabled_programs_per_sec": round(samples["enabled"], 2),
        "disabled_overhead": round(disabled_overhead, 4),
        "enabled_overhead": round(enabled_overhead, 4),
        "disabled_overhead_budget": INVARIANT_OVERHEAD_BUDGET,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    print("\n=== VStateChecker overhead (serial) ===")
    for mode in ("baseline", "disabled", "enabled"):
        print(f"{mode:>9}: {samples[mode]:8.1f} programs/sec")
    print(f"disabled overhead: {disabled_overhead:+.1%} "
          f"(budget {INVARIANT_OVERHEAD_BUDGET:.0%}); "
          f"enabled overhead: {enabled_overhead:+.1%}")

    assert disabled_overhead <= INVARIANT_OVERHEAD_BUDGET, (
        f"disabled-mode VStateChecker overhead {disabled_overhead:.1%} "
        f"exceeds the {INVARIANT_OVERHEAD_BUDGET:.0%} budget"
    )


def test_flight_recorder_overhead():
    """Flight-recorder cost: disabled mode must stay within 5%.

    Same methodology as :func:`test_invariant_checker_overhead` (one
    warm-up per mode, then median of 3 interleaved rounds).  When the
    flag is off the verifier hot path pays one ``.enabled`` attribute
    test per instrumentation point against the shared
    :data:`repro.obs.events.NULL_FLIGHT`; that is what the
    ``disabled_overhead`` gate (checked here *and* by
    ``check_throughput_trajectory.py``) protects.  Enabled-mode cost is
    recorded for trend tracking but not gated — recording disables the
    verdict cache by design (a cached hit would skip the very
    decisions the recorder exists to capture).
    """
    from statistics import median

    from repro.fuzz.campaign import Campaign

    def run_pps(**flags) -> float:
        config = CampaignConfig(
            tool="bvf", kernel_version="bpf-next", budget=BUDGET,
            seed=0, **flags
        )
        stats = ThroughputStats.from_result(Campaign(config).run())
        return stats.programs_per_sec

    modes = {
        "baseline": {},
        "disabled": {"flight": False},
        "enabled": {"flight": True},
    }
    for flags in modes.values():  # warm-up, discarded
        run_pps(**flags)
    rounds: dict[str, list[float]] = {mode: [] for mode in modes}
    for _ in range(3):
        for mode, flags in modes.items():
            rounds[mode].append(run_pps(**flags))
    samples = {mode: median(values) for mode, values in rounds.items()}

    disabled_overhead = 1.0 - samples["disabled"] / samples["baseline"]
    enabled_overhead = 1.0 - samples["enabled"] / samples["baseline"]

    payload = _load_payload()
    payload["flight_recorder"] = {
        "budget": BUDGET,
        "baseline_programs_per_sec": round(samples["baseline"], 2),
        "disabled_programs_per_sec": round(samples["disabled"], 2),
        "enabled_programs_per_sec": round(samples["enabled"], 2),
        "disabled_overhead": round(disabled_overhead, 4),
        "enabled_overhead": round(enabled_overhead, 4),
        "disabled_overhead_budget": FLIGHT_OVERHEAD_BUDGET,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    print("\n=== Flight recorder overhead (serial) ===")
    for mode in ("baseline", "disabled", "enabled"):
        print(f"{mode:>9}: {samples[mode]:8.1f} programs/sec")
    print(f"disabled overhead: {disabled_overhead:+.1%} "
          f"(budget {FLIGHT_OVERHEAD_BUDGET:.0%}); "
          f"enabled overhead: {enabled_overhead:+.1%}")

    assert disabled_overhead <= FLIGHT_OVERHEAD_BUDGET, (
        f"disabled-mode flight-recorder overhead {disabled_overhead:.1%} "
        f"exceeds the {FLIGHT_OVERHEAD_BUDGET:.0%} budget"
    )


def test_profiler_overhead():
    """Hierarchical profiler cost: disabled mode must stay within 5%.

    Same methodology as :func:`test_flight_recorder_overhead` (one
    warm-up per mode, then median of 3 interleaved rounds).  When
    ``profile=False`` (the default) the instrumented components fetch
    ``obs.profiler()`` once, store ``None``, and pay one ``is not
    None`` test per hook — that is what the ``disabled_overhead`` gate
    (checked here *and* by ``check_throughput_trajectory.py``)
    protects.  Enabled-mode cost is recorded for trend tracking but
    not gated — exact per-family counts require disabling the verdict
    cache (a cached hit would skip the very checks being counted).

    The enabled run's profile snapshot is written to
    ``BENCH_profile.json`` so CI archives where verification time goes
    next to the throughput trajectory.
    """
    from statistics import median

    from repro.fuzz.campaign import Campaign
    from repro.obs.profile import render_profile

    profiles: list[dict] = []

    def run_pps(**flags) -> float:
        config = CampaignConfig(
            tool="bvf", kernel_version="bpf-next", budget=BUDGET,
            seed=0, **flags
        )
        result = Campaign(config).run()
        if flags.get("profile"):
            profiles.append(result.profile)
        return ThroughputStats.from_result(result).programs_per_sec

    modes = {
        "baseline": {},
        "disabled": {"profile": False},
        "enabled": {"profile": True},
    }
    for flags in modes.values():  # warm-up, discarded
        run_pps(**flags)
    profiles.clear()  # keep only measured-round snapshots
    rounds: dict[str, list[float]] = {mode: [] for mode in modes}
    for _ in range(3):
        for mode, flags in modes.items():
            rounds[mode].append(run_pps(**flags))
    samples = {mode: median(values) for mode, values in rounds.items()}

    disabled_overhead = 1.0 - samples["disabled"] / samples["baseline"]
    enabled_overhead = 1.0 - samples["enabled"] / samples["baseline"]

    payload = _load_payload()
    payload["profiler"] = {
        "budget": BUDGET,
        "baseline_programs_per_sec": round(samples["baseline"], 2),
        "disabled_programs_per_sec": round(samples["disabled"], 2),
        "enabled_programs_per_sec": round(samples["enabled"], 2),
        "disabled_overhead": round(disabled_overhead, 4),
        "enabled_overhead": round(enabled_overhead, 4),
        "disabled_overhead_budget": PROFILE_OVERHEAD_BUDGET,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    # Campaigns are seed-deterministic, so every measured round's
    # snapshot carries the same exact counts; the wall half is this
    # host's timings for the last round.  The metrics schema tag makes
    # the file renderable offline via `repro profile`.
    from repro.obs.artifact import SCHEMA

    PROFILE_OUTPUT.write_text(json.dumps({
        "schema": SCHEMA,
        "budget": BUDGET,
        "seed": 0,
        "profile": profiles[-1],
    }, indent=2) + "\n")

    print("\n=== Verifier profiler overhead (serial) ===")
    for mode in ("baseline", "disabled", "enabled"):
        print(f"{mode:>9}: {samples[mode]:8.1f} programs/sec")
    print(f"disabled overhead: {disabled_overhead:+.1%} "
          f"(budget {PROFILE_OVERHEAD_BUDGET:.0%}); "
          f"enabled overhead: {enabled_overhead:+.1%}")
    print(f"wrote {PROFILE_OUTPUT.name}")
    print(render_profile(profiles[-1], top=5))

    assert disabled_overhead <= PROFILE_OVERHEAD_BUDGET, (
        f"disabled-mode profiler overhead {disabled_overhead:.1%} "
        f"exceeds the {PROFILE_OVERHEAD_BUDGET:.0%} budget"
    )


def test_repair_overhead():
    """Repair synthesizer cost: disabled mode must stay within 5%.

    Same methodology as :func:`test_flight_recorder_overhead` (one
    warm-up per mode, then median of 3 interleaved rounds).  When
    ``repair_feedback=False`` (the default) the campaign's rejection
    path pays one boolean test per reject — that is what the
    ``disabled_overhead`` gate (checked here *and* by
    ``check_throughput_trajectory.py``) protects.  Enabled-mode cost is
    recorded for trend tracking but not gated — synthesis re-verifies
    up to :data:`~repro.analysis.repair.MAX_VERIFY_ATTEMPTS` candidate
    patches per rejection and disables the verdict cache by design.

    The enabled run's per-reason verified-repair rates land in
    ``BENCH_throughput.json`` under ``repair_feedback.by_reason``;
    ``check_throughput_trajectory.py --max-repair-rate-drop`` fails CI
    when the overall verified rate collapses relative to the previous
    run — the earliest symptom of a patch template or provenance-pass
    regression, since campaigns are seed-deterministic.
    """
    from statistics import median

    from repro.fuzz.campaign import Campaign

    repair_results: list = []

    def run_pps(**flags) -> float:
        config = CampaignConfig(
            tool="bvf", kernel_version="bpf-next", budget=BUDGET,
            seed=0, **flags
        )
        result = Campaign(config).run()
        if flags.get("repair_feedback"):
            repair_results.append(result)
        return ThroughputStats.from_result(result).programs_per_sec

    modes = {
        "baseline": {},
        "disabled": {"repair_feedback": False},
        "enabled": {"repair_feedback": True},
    }
    for flags in modes.values():  # warm-up, discarded
        run_pps(**flags)
    repair_results.clear()  # keep only measured-round results
    rounds: dict[str, list[float]] = {mode: [] for mode in modes}
    for _ in range(3):
        for mode, flags in modes.items():
            rounds[mode].append(run_pps(**flags))
    samples = {mode: median(values) for mode, values in rounds.items()}

    disabled_overhead = 1.0 - samples["disabled"] / samples["baseline"]
    enabled_overhead = 1.0 - samples["enabled"] / samples["baseline"]

    # Campaigns are seed-deterministic, so every measured round found
    # the same repairs; score the last.
    result = repair_results[-1]
    attempted = sum(result.repairs_attempted.values())
    verified = sum(result.repairs_verified.values())
    by_reason = {
        reason: {
            "attempted": result.repairs_attempted[reason],
            "verified": result.repairs_verified.get(reason, 0),
            "verified_rate": (
                result.repairs_verified.get(reason, 0)
                / result.repairs_attempted[reason]
            ),
        }
        for reason in sorted(result.repairs_attempted)
    }

    payload = _load_payload()
    payload["repair_feedback"] = {
        "budget": BUDGET,
        "baseline_programs_per_sec": round(samples["baseline"], 2),
        "disabled_programs_per_sec": round(samples["disabled"], 2),
        "enabled_programs_per_sec": round(samples["enabled"], 2),
        "disabled_overhead": round(disabled_overhead, 4),
        "enabled_overhead": round(enabled_overhead, 4),
        "disabled_overhead_budget": REPAIR_OVERHEAD_BUDGET,
        "attempted": attempted,
        "verified": verified,
        "verified_rate": verified / attempted if attempted else 0.0,
        "by_reason": by_reason,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    print("\n=== Repair synthesizer overhead (serial) ===")
    for mode in ("baseline", "disabled", "enabled"):
        print(f"{mode:>9}: {samples[mode]:8.1f} programs/sec")
    print(f"disabled overhead: {disabled_overhead:+.1%} "
          f"(budget {REPAIR_OVERHEAD_BUDGET:.0%}); "
          f"enabled overhead: {enabled_overhead:+.1%}")
    print(f"verified repairs: {verified}/{attempted} "
          f"({verified / attempted if attempted else 0.0:.1%})")

    assert attempted > 0, "benchmark campaign produced no rejections"
    assert disabled_overhead <= REPAIR_OVERHEAD_BUDGET, (
        f"disabled-mode repair overhead {disabled_overhead:.1%} "
        f"exceeds the {REPAIR_OVERHEAD_BUDGET:.0%} budget"
    )


def test_coverage_backend_comparison():
    """Benchmark the coverage backends against the same verify workload.

    ROADMAP item 5: on Python 3.12+ the PEP 669 :mod:`sys.monitoring`
    backend should beat :func:`sys.settrace` because out-of-scope code
    objects disable their own events after the first hit, while
    settrace pays a call-event filter on every frame forever.  This
    benchmark verifies the two claims ``backend="auto"`` rests on:

    - every available backend produces a **bit-identical edge set** for
      the same workload (otherwise auto-selection would change the
      science, not just the speed);
    - the preference order ``ctrace > monitoring > settrace`` is
      recorded per host in ``BENCH_throughput.json`` so the trajectory
      shows which backend CI actually exercised and what the faster
      default buys.

    Methodology mirrors the overhead benchmarks: a fixed pre-generated
    program batch, one warm-up pass per backend, then the median of 3
    interleaved rounds.  The speed assertion (monitoring >= 0.9x
    settrace) only applies when monitoring exists (3.12+); it is a
    loose floor, not the expected win — CI hardware noise must not turn
    an improvement PR red.
    """
    import sys as _sys
    import time
    from statistics import median

    from repro.ebpf.program import BpfProgram
    from repro.errors import BpfError, VerifierReject
    from repro.fuzz.campaign import make_generator
    from repro.fuzz.coverage import VerifierCoverage, _MonitoringBackend
    from repro.fuzz.rng import FuzzRng
    from repro.kernel.config import PROFILES as _PROFILES
    from repro.kernel.syscall import Kernel

    # Fixed workload: one seeded generator, BUDGET-capped batch.
    batch_size = min(BUDGET, 150)
    rng = FuzzRng(0)
    generator = make_generator("bvf", None, rng)
    programs = []
    for i in range(batch_size):
        kernel = Kernel(_PROFILES["bpf-next"]())
        gp = generator.generate(kernel)
        programs.append(BpfProgram(
            insns=list(gp.insns), prog_type=gp.prog_type,
            name=f"bench_{i}", offload_dev=gp.offload_dev,
        ))

    def run_backend(name: str) -> tuple[float, frozenset[int]]:
        coverage = VerifierCoverage(backend=name)
        started = time.perf_counter()
        for prog in programs:
            kernel_run = Kernel(_PROFILES["bpf-next"]())
            with coverage.collect():
                try:
                    kernel_run.prog_load(prog, sanitize=True)
                except (VerifierReject, BpfError):
                    pass
        elapsed = time.perf_counter() - started
        return batch_size / elapsed, coverage.snapshot_edges()

    backends = ["settrace"]
    if _MonitoringBackend.available():
        backends.append("monitoring")
    try:
        VerifierCoverage(backend="ctrace")
    except ValueError:
        pass
    else:
        backends.append("ctrace")

    for name in backends:  # warm-up, discarded
        run_backend(name)
    rounds: dict[str, list[float]] = {name: [] for name in backends}
    edge_sets: dict[str, frozenset[int]] = {}
    for _ in range(3):
        for name in backends:
            pps, edges = run_backend(name)
            rounds[name].append(pps)
            edge_sets[name] = edges
    samples = {name: median(values) for name, values in rounds.items()}

    # Equivalence: backend choice must not change the measured edges.
    reference = edge_sets["settrace"]
    for name, edges in edge_sets.items():
        assert edges == reference, (
            f"backend {name} produced a different edge set than settrace "
            f"({len(edges)} vs {len(reference)} edges)"
        )

    auto_default = VerifierCoverage(backend="auto").backend_name
    payload = _load_payload()
    payload["coverage_backends"] = {
        "batch_size": batch_size,
        "python": f"{_sys.version_info.major}.{_sys.version_info.minor}",
        "auto_default": auto_default,
        "verifications_per_sec": {
            name: round(samples[name], 2) for name in backends
        },
        "monitoring_speedup_vs_settrace": (
            round(samples["monitoring"] / samples["settrace"], 3)
            if "monitoring" in samples else None
        ),
        "edges": len(reference),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    print("\n=== Coverage backend comparison ===")
    for name in backends:
        marker = " (auto default)" if name == auto_default else ""
        print(f"{name:>11}: {samples[name]:8.1f} verifications/sec{marker}")
    if "monitoring" in samples:
        speedup = samples["monitoring"] / samples["settrace"]
        print(f"monitoring vs settrace: {speedup:.2f}x")
        assert speedup >= 0.9, (
            f"sys.monitoring backend ({samples['monitoring']:.1f}/s) fell "
            f"below 0.9x settrace ({samples['settrace']:.1f}/s); the auto "
            "preference order is no longer justified on this host"
        )
    else:
        print(f"sys.monitoring unavailable on Python "
              f"{_sys.version_info.major}.{_sys.version_info.minor}; "
              "recorded settrace baseline only")


def test_flight_events_artifact():
    """A small flight+trace campaign spills decision rings CI archives.

    The JSONL trace of a ``flight=True`` campaign must contain
    ``verifier.flight`` events — one spilled ring per interesting
    outcome — so the events artifact uploaded by the bench job is
    never silently empty.
    """
    from repro.fuzz.campaign import Campaign

    config = CampaignConfig(
        tool="bvf", kernel_version="bpf-next",
        budget=min(BUDGET, 60), seed=0,
        flight=True, trace_path=str(EVENTS_OUTPUT),
    )
    result = Campaign(config).run()

    spills = []
    with EVENTS_OUTPUT.open(encoding="utf-8") as fh:
        for line in fh:
            event = json.loads(line)
            if (event.get("kind") == "event"
                    and event.get("name") == "verifier.flight"):
                spills.append(event)

    rejected = result.generated - result.accepted
    print(f"\n{EVENTS_OUTPUT.name}: {len(spills)} spilled decision rings "
          f"for {rejected} rejections")
    assert rejected > 0, "benchmark campaign produced no rejections"
    assert len(spills) == rejected
    for spill in spills:
        assert spill["events"], "spilled ring must not be empty"
        kinds = {ev["kind"] for ev in spill["events"]}
        assert "verdict" in kinds
    assert result.reject_explanations, "flight campaign must explain rejects"
