"""Ablations of BVF's design choices (DESIGN.md §5).

Three claims from the paper get isolated:

1. **Structure matters** (Section 4.1 / RQ2): disabling the Figure-4
   structure — same instruction pool, no init header/frames/tracking —
   must collapse the acceptance rate and the verifier coverage.
2. **Sanitation matters** (Section 3.1 / RQ1): without the dispatched
   checks, indicator-#1 bugs whose invalid accesses land in still-
   mapped memory (e.g. the Bug-#2 slab-out-of-bounds read) are missed
   by raw execution.
3. **Instrumentation-reduction rules matter** (Section 4.2): skipping
   R10-based accesses measurably cuts the number of dispatch sites on
   the self-test corpus.
"""

from __future__ import annotations

import pytest

from repro.errors import BpfError, VerifierReject
from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf import asm
from repro.ebpf.helpers import HelperId
from repro.ebpf.opcodes import Reg, Size
from repro.ebpf.program import BpfProgram, ProgType
from repro.fuzz.campaign import Campaign, CampaignConfig
from repro.runtime.executor import Executor
from repro.sanitizer.instrument import build_insertions
from repro.testsuite import all_selftests_extended as all_selftests


@pytest.mark.benchmark(group="ablation")
def test_structure_ablation(benchmark):
    def run():
        structured = Campaign(
            CampaignConfig(tool="bvf", budget=250, seed=3)
        ).run()
        flat = Campaign(
            CampaignConfig(tool="bvf-nostructure", budget=250, seed=3)
        ).run()
        return structured, flat

    structured, flat = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== ablation: structured vs flat generation ===")
    print(f"structured: acceptance {structured.acceptance_rate:.1%}, "
          f"coverage {structured.final_coverage}")
    print(f"flat:       acceptance {flat.acceptance_rate:.1%}, "
          f"coverage {flat.final_coverage}")
    assert structured.acceptance_rate > flat.acceptance_rate
    assert structured.final_coverage > flat.final_coverage


@pytest.mark.benchmark(group="ablation")
def test_sanitation_ablation(benchmark):
    """Bug #2's OOB read is invisible without dispatched sanitation."""

    def build(kernel):
        return BpfProgram(
            insns=[
                asm.call_helper(HelperId.GET_CURRENT_TASK_BTF),
                asm.ldx_mem(Size.DW, Reg.R1, Reg.R0, 128),  # 8B past end
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
            prog_type=ProgType.KPROBE,
        )

    def run():
        kernel_raw = Kernel(PROFILES["bpf-next"]())
        raw = Executor(kernel_raw).run(kernel_raw.prog_load(build(kernel_raw)))
        kernel_san = Kernel(PROFILES["bpf-next"]())
        san = Executor(kernel_san).run(
            kernel_san.prog_load(build(kernel_san), sanitize=True)
        )
        return raw, san

    raw, san = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n=== ablation: sanitation on/off for Bug #2 ===")
    print(f"raw execution report:       {raw.report!r}")
    print(f"sanitized execution report: {san.report!r}")
    # Raw (JIT-style) execution reads the redzone silently; only the
    # dispatched check converts it into a captured indicator.
    assert raw.report is None
    assert san.report is not None


@pytest.mark.benchmark(group="ablation")
def test_dispatch_reduction_rules(benchmark):
    """Count instrumentation sites with and without the R10 skip."""

    def run():
        with_rule = 0
        without_rule = 0
        for selftest in all_selftests():
            if selftest.expect != "accept":
                continue
            kernel = Kernel(PROFILES["patched"]())
            try:
                prog = selftest.build(kernel)
                kernel.prog_load(prog)
            except (VerifierReject, BpfError):
                continue
            insertions, _ = build_insertions(prog.insns, set())
            with_rule += len(insertions)
            without_rule += sum(
                1
                for insn in prog.insns
                if insn.is_memory_load() or insn.is_memory_store()
                or insn.is_atomic()
            )
        return with_rule, without_rule

    with_rule, without_rule = benchmark.pedantic(run, rounds=1, iterations=1)
    saved = without_rule - with_rule
    print("\n=== ablation: instrumentation-reduction rules ===")
    print(f"load/store sites total:     {without_rule}")
    print(f"instrumented (rules on):    {with_rule}")
    print(f"skipped by the R10 rule:    {saved} "
          f"({saved / without_rule:.0%} of sites)")
    assert with_rule < without_rule
    assert saved / without_rule >= 0.2  # stack traffic is common
