"""Table 2 (RQ1): previously-unknown bugs found per tool.

Paper result: over two weeks on upstream + bpf-next, **BVF found 11
vulnerabilities (6 verifier correctness bugs); Syzkaller and Buzzer
found no valid correctness bugs**.

Reproduction: one BVF campaign on the flawed ``bpf-next`` profile must
rediscover all eleven injected Table-2 bugs; Syzkaller- and
Buzzer-style campaigns with the same per-tool budget find none of the
verifier correctness bugs.  A control campaign on the fully-patched
kernel must find nothing (no false positives).
"""

from __future__ import annotations

import pytest

from repro.analysis.reports import TABLE2_ROWS, render_bug_table
from repro.fuzz.campaign import Campaign, CampaignConfig

BVF_BUDGET = 2500
BASELINE_BUDGET = 2500

#: The paper's campaign is two weeks of continuous fuzzing; we model it
#: as successive fuzzer instances (seeds), stopping once Table 2 is
#: fully rediscovered.
BVF_SEEDS = (42, 1337, 2024, 7)

_VERIFIER_BUG_IDS = {row.flaw.value for row in TABLE2_ROWS[:6]}
_ALL_BUG_IDS = {row.flaw.value for row in TABLE2_ROWS}


def _run(tool: str, version: str = "bpf-next", budget: int = BVF_BUDGET,
         seed: int = 42):
    return Campaign(
        CampaignConfig(
            tool=tool,
            kernel_version=version,
            budget=budget,
            seed=seed,
            sanitize=tool.startswith("bvf"),
            collect_coverage=tool.startswith("bvf"),
        )
    ).run()


@pytest.mark.benchmark(group="table2")
def test_bvf_finds_all_table2_bugs(benchmark):
    def campaign():
        findings = {}
        programs = 0
        for seed in BVF_SEEDS:
            result = _run("bvf", seed=seed)
            programs += result.generated
            for bug_id, finding in result.findings.items():
                findings.setdefault(bug_id, finding)
            if _ALL_BUG_IDS <= set(findings):
                break
        return findings, programs

    findings, programs = benchmark.pedantic(campaign, rounds=1, iterations=1)
    print(f"\n=== Table 2 reproduction: BVF on bpf-next "
          f"({programs} programs) ===")
    print(render_bug_table(findings))
    found = set(findings)
    verifier_found = found & _VERIFIER_BUG_IDS
    print(f"\nverifier correctness bugs found: {len(verifier_found)}/6")
    print(f"total Table-2 bugs found:        {len(found & _ALL_BUG_IDS)}/11")
    # Paper shape: all six correctness bugs, all eleven vulnerabilities.
    assert verifier_found == _VERIFIER_BUG_IDS
    assert found >= _ALL_BUG_IDS


@pytest.mark.benchmark(group="table2")
@pytest.mark.parametrize("tool", ["syzkaller", "buzzer"])
def test_baselines_find_no_correctness_bugs(benchmark, tool):
    result = benchmark.pedantic(
        lambda: _run(tool, budget=BASELINE_BUDGET), rounds=1, iterations=1
    )
    found = set(result.findings)
    print(f"\n{tool}: {BASELINE_BUDGET} programs, findings: "
          f"{sorted(found) or 'none'}")
    # Paper shape: no verifier correctness bugs for either baseline.
    assert found & _VERIFIER_BUG_IDS == set()


@pytest.mark.benchmark(group="table2")
def test_no_false_positives_on_patched_kernel(benchmark):
    result = benchmark.pedantic(
        lambda: _run("bvf", version="patched", budget=800),
        rounds=1,
        iterations=1,
    )
    print(f"\npatched-kernel control: findings = {sorted(result.findings)}")
    assert result.findings == {}
