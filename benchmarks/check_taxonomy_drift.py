"""Compare rejection-taxonomy distributions across CI runs.

Usage::

    python benchmarks/check_taxonomy_drift.py \
        --previous prev/BENCH_throughput.json \
        --current BENCH_throughput.json \
        [--max-share-shift 0.05]

The throughput benchmark records the rejection-reason distribution of a
fixed (seed, budget, shards) campaign under ``"taxonomy"`` in
``BENCH_throughput.json``.  That campaign is deterministic, so unlike
programs/sec the distribution carries no hardware noise: any shift
between two CI runs is a genuine behaviour change — a verifier check
tightened or loosened, a generator producing different programs, or a
taxonomy rule reordered.

Two gates:

- any reason whose share of generated programs moved by more than
  ``--max-share-shift`` (appearing or vanishing included) fails the
  run; intentional changes ride along with a refreshed baseline once
  merged, since the comparison is always against the latest successful
  run on the default branch;
- an ``UNCLASSIFIED`` count above zero in the *current* run always
  fails, even with no previous artifact: every rejection message must
  map to a taxonomy rule.

A missing or unreadable previous artifact skips the comparison (first
run on a branch, expired artifact) but says so in the log.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_taxonomy(path: str) -> tuple[dict[str, int], int]:
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    section = payload.get("taxonomy")
    if section is None:
        raise KeyError(f"{path}: no taxonomy section in {sorted(payload)}")
    generated = int(section.get("generated", 0))
    if generated <= 0:
        raise ValueError(f"{path}: taxonomy.generated not positive")
    return dict(section.get("by_reason", {})), generated


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--previous", required=True,
                        help="previous run's BENCH_throughput.json")
    parser.add_argument("--current", required=True,
                        help="this run's BENCH_throughput.json")
    parser.add_argument("--max-share-shift", type=float, default=0.05,
                        help="maximum tolerated per-reason share change "
                             "(fraction of generated, default 0.05)")
    args = parser.parse_args(argv)

    try:
        current, cur_total = load_taxonomy(args.current)
    except (OSError, ValueError, KeyError) as exc:
        print(f"taxonomy: current artifact unreadable: {exc}")
        return 1

    unclassified = current.get("UNCLASSIFIED", 0)
    if unclassified:
        print(f"taxonomy: FAIL - {unclassified} UNCLASSIFIED rejections "
              f"in the current run; add rules to repro/obs/taxonomy.py")
        return 1

    try:
        previous, prev_total = load_taxonomy(args.previous)
    except (OSError, ValueError, KeyError) as exc:
        print(f"taxonomy: no previous artifact to compare against "
              f"({exc}); skipping drift check")
        return 0

    drifted = []
    for reason in sorted(set(previous) | set(current)):
        prev_share = previous.get(reason, 0) / prev_total
        cur_share = current.get(reason, 0) / cur_total
        shift = cur_share - prev_share
        marker = ""
        if abs(shift) > args.max_share_shift:
            drifted.append(reason)
            marker = "  <-- drift"
        print(f"taxonomy: {reason:<28} {prev_share:7.1%} -> "
              f"{cur_share:7.1%} ({shift:+.1%}){marker}")

    if drifted:
        print(f"taxonomy: FAIL - {len(drifted)} reason(s) shifted more "
              f"than {args.max_share_shift:.0%}: {', '.join(drifted)}")
        return 1
    print("taxonomy: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
