"""Section 6.3: verifier acceptance rates and rejection reasons.

Paper results:

- BVF reaches a **49%** acceptance rate — "more than twice higher"
  than Syzkaller's **23.5%**;
- Syzkaller's rejections are dominated by **EACCES and EINVAL**;
- Buzzer's two modes accept at **~1%** (random) and **~97%** (ALU/JMP),
  with **88.4%+** of mode-2 instructions being ALU or JMP.

Reproduction targets the shape: the BVF/Syzkaller ratio (~2x), the
errno mix, and Buzzer's bimodal profile with its instruction mix.
"""

from __future__ import annotations

import errno
from collections import Counter

import pytest

from repro.errors import BpfError, VerifierReject
from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf.opcodes import InsnClass
from repro.ebpf.program import BpfProgram
from repro.fuzz.baselines import BuzzerGenerator, SyzkallerGenerator
from repro.fuzz.generator import StructuredGenerator
from repro.fuzz.rng import FuzzRng

N_PROGRAMS = 500


def measure(make_generator, n=N_PROGRAMS, seed=11):
    rng = FuzzRng(seed)
    accepted = 0
    errnos: Counter = Counter()
    classes: Counter = Counter()
    for _ in range(n):
        kernel = Kernel(PROFILES["bpf-next"]())
        gp = make_generator(kernel, rng).generate()
        for insn in gp.insns:
            if not insn.is_filler():
                classes[insn.insn_class] += 1
        try:
            kernel.prog_load(
                BpfProgram(insns=gp.insns, prog_type=gp.prog_type)
            )
            accepted += 1
        except (VerifierReject, BpfError) as exc:
            errnos[exc.errno] += 1
    return accepted / n, errnos, classes


def alu_jmp_share(classes: Counter) -> float:
    total = sum(classes.values())
    alu_jmp = sum(
        c
        for cls, c in classes.items()
        if cls in (InsnClass.ALU, InsnClass.ALU64, InsnClass.JMP,
                   InsnClass.JMP32)
    )
    return alu_jmp / total if total else 0.0


@pytest.mark.benchmark(group="acceptance")
def test_acceptance_rates(benchmark):
    def run():
        return {
            "bvf": measure(lambda k, r: StructuredGenerator(k, r)),
            "syzkaller": measure(lambda k, r: SyzkallerGenerator(k, r)),
            "buzzer-random": measure(
                lambda k, r: BuzzerGenerator(k, r, mode="random")
            ),
            "buzzer-alujmp": measure(
                lambda k, r: BuzzerGenerator(k, r, mode="alu_jmp")
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    paper = {"bvf": 0.49, "syzkaller": 0.235, "buzzer-random": 0.01,
             "buzzer-alujmp": 0.97}
    print(f"\n=== acceptance rates ({N_PROGRAMS} programs each) ===")
    for name, (rate, errnos, classes) in results.items():
        top = ", ".join(
            f"{errno.errorcode.get(e, e)}={n}" for e, n in errnos.most_common(3)
        )
        print(f"{name:>14}: {rate:6.1%}  (paper {paper[name]:.1%})  "
              f"alu/jmp={alu_jmp_share(classes):5.1%}  rejects: {top}")

    bvf_rate = results["bvf"][0]
    syz_rate = results["syzkaller"][0]

    # Shape 1: BVF roughly doubles Syzkaller ("more than twice higher"
    # in the paper).  Absolute rates sit above the paper's 49%/23.5%
    # because our verifier implements a subset of the kernel's long
    # tail of rejection conditions (see EXPERIMENTS.md).
    assert bvf_rate > 1.4 * syz_rate
    assert 0.40 <= bvf_rate <= 0.85
    assert 0.12 <= syz_rate <= 0.45

    # Shape 2: Syzkaller's rejections are EACCES/EINVAL-dominated.
    syz_errnos = results["syzkaller"][1]
    top_two = {e for e, _ in syz_errnos.most_common(2)}
    assert top_two <= {errno.EACCES, errno.EINVAL}

    # Shape 3: Buzzer is bimodal; mode 2 is ALU/JMP-dominated.
    assert results["buzzer-random"][0] <= 0.08
    assert results["buzzer-alujmp"][0] >= 0.90
    assert alu_jmp_share(results["buzzer-alujmp"][2]) >= 0.85
