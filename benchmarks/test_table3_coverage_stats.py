"""Table 3 (RQ2): final branch-coverage statistics per kernel version.

Paper result (covered branches over 48h, average of 3 runs):

    version    BVF     Syzkaller (+%)   Buzzer (+%)
    v5.15      50192   41433 (+17.5%)    9176 (+447.0%)
    v6.1       67348   56458 (+16.2%)   10059 (+569.5%)
    bpf-next   65176   52295 (+19.8%)    9271 (+603.0%)

Absolute counts are kcov branches of the kernel verifier; ours are
line-edges of the Python verifier, so only the *relative improvements*
are the reproduction target: BVF ahead of Syzkaller by a modest double-
digit percentage, and ahead of Buzzer by several hundred percent.
"""

from __future__ import annotations

import statistics

import pytest

from repro.analysis.stats import coverage_improvement

from _campaigns import TOOLS, VERSIONS, grid_results

PAPER_TABLE3 = {
    "v5.15": {"bvf": 50192, "syzkaller": 41433, "buzzer": 9176},
    "v6.1": {"bvf": 67348, "syzkaller": 56458, "buzzer": 10059},
    "bpf-next": {"bvf": 65176, "syzkaller": 52295, "buzzer": 9271},
}


def _mean_final(tool: str, version: str) -> float:
    return statistics.mean(
        r.final_coverage for r in grid_results(tool, version)
    )


@pytest.mark.benchmark(group="table3")
def test_coverage_statistics(benchmark):
    measured = benchmark.pedantic(
        lambda: {
            v: {t: _mean_final(t, v) for t in TOOLS} for v in VERSIONS
        },
        rounds=1,
        iterations=1,
    )

    print("\n=== Table 3 reproduction (edge coverage, mean of 3) ===")
    print(f"{'version':<10} {'BVF':>8} {'Syzkaller':>12} {'Buzzer':>10}"
          f" {'vs-syz':>8} {'vs-buzz':>9}")
    overall = {t: 0.0 for t in TOOLS}
    for version in VERSIONS:
        row = measured[version]
        for t in TOOLS:
            overall[t] += row[t] / len(VERSIONS)
        vs_syz = coverage_improvement(row["bvf"], row["syzkaller"])
        vs_buzz = coverage_improvement(row["bvf"], row["buzzer"])
        paper = PAPER_TABLE3[version]
        paper_syz = coverage_improvement(paper["bvf"], paper["syzkaller"])
        paper_buzz = coverage_improvement(paper["bvf"], paper["buzzer"])
        print(
            f"{version:<10} {row['bvf']:>8.0f} {row['syzkaller']:>12.0f} "
            f"{row['buzzer']:>10.0f} {vs_syz:>+7.1f}% {vs_buzz:>+8.1f}%"
            f"   (paper: {paper_syz:+.1f}% / {paper_buzz:+.1f}%)"
        )

    print(f"overall    {overall['bvf']:>8.0f} {overall['syzkaller']:>12.0f} "
          f"{overall['buzzer']:>10.0f}")

    for version in VERSIONS:
        row = measured[version]
        # Shape: BVF beats Syzkaller on every version...
        assert row["bvf"] > row["syzkaller"], version
        # ...and beats Buzzer by a large factor (paper: 5.4x overall).
        assert row["bvf"] / row["buzzer"] > 1.5, version

    # Overall improvement over Syzkaller is a modest double-digit gap,
    # not a blowout (paper: +17.5%) — check it is in a sane band.
    overall_gain = coverage_improvement(overall["bvf"], overall["syzkaller"])
    print(f"overall BVF-vs-Syzkaller: {overall_gain:+.1f}% (paper +17.5%)")
    assert 3.0 <= overall_gain <= 120.0
