"""Shared campaign runner for the benchmark suite.

Figure 6, Table 3, and the acceptance-rate experiment all consume the
same tool x kernel-version campaign grid; results are cached per pytest
session so each grid cell runs once.

Scaling note (see EXPERIMENTS.md): the paper's campaigns run 48 hours
on a 40-core server; ours use a program-count budget.  Coverage is
sampled per batch of generated programs, which plays the role of the
wall-clock axis.
"""

from __future__ import annotations

from repro.fuzz.campaign import Campaign, CampaignConfig, CampaignResult

#: Programs per campaign for the coverage grid.
GRID_BUDGET = 400
#: Repetitions averaged, as in the paper ("repeated three times").
GRID_REPEATS = 3
#: The kernel versions of Figure 6 / Table 3.
VERSIONS = ("v5.15", "v6.1", "bpf-next")
#: The tools compared.
TOOLS = ("bvf", "syzkaller", "buzzer")

_cache: dict[tuple, CampaignResult] = {}


def run_campaign(
    tool: str,
    version: str,
    budget: int = GRID_BUDGET,
    seed: int = 0,
    sanitize: bool | None = None,
) -> CampaignResult:
    """Run (or fetch) one campaign."""
    if sanitize is None:
        sanitize = tool.startswith("bvf")
    key = (tool, version, budget, seed, sanitize)
    if key not in _cache:
        config = CampaignConfig(
            tool=tool,
            kernel_version=version,
            budget=budget,
            seed=seed,
            sanitize=sanitize,
            sample_every=max(budget // 25, 1),
        )
        _cache[key] = Campaign(config).run()
    return _cache[key]


def grid_results(tool: str, version: str) -> list[CampaignResult]:
    """The repeated campaigns for one grid cell."""
    return [
        run_campaign(tool, version, seed=seed) for seed in range(GRID_REPEATS)
    ]
