"""Figure 6 (RQ2): verifier branch coverage over the testing campaign.

Paper result: all tools grow quickly in the first phase; Syzkaller and
Buzzer then saturate while **BVF keeps growing and ends highest**;
Buzzer stays far below both.

Reproduction: three repeated campaigns per (tool, kernel-version) cell
with programs-generated as the time axis; the printed series are the
averaged curves.  Assertions pin the curve *shape*: final ordering
BVF > Syzkaller >> Buzzer on every version, and BVF's late-phase growth
exceeding the baselines' (the "pulls ahead after saturation" effect).
"""

from __future__ import annotations

import pytest

from repro.analysis.stats import average_curves

from _campaigns import GRID_BUDGET, TOOLS, VERSIONS, grid_results


def _avg_curve(tool: str, version: str):
    return average_curves([r.coverage_curve for r in grid_results(tool, version)])


@pytest.mark.benchmark(group="fig6")
@pytest.mark.parametrize("version", VERSIONS)
def test_coverage_curves(benchmark, version):
    curves = benchmark.pedantic(
        lambda: {tool: _avg_curve(tool, version) for tool in TOOLS},
        rounds=1,
        iterations=1,
    )

    print(f"\n=== Figure 6 reproduction: {version} "
          f"(mean of 3 campaigns x {GRID_BUDGET} programs) ===")
    print(f"{'programs':>9} | " + " | ".join(f"{t:>10}" for t in TOOLS))
    n = min(len(c) for c in curves.values())
    for i in range(n):
        x = curves["bvf"][i][0]
        row = " | ".join(f"{curves[t][i][1]:>10.0f}" for t in TOOLS)
        print(f"{x:>9} | {row}")

    final = {tool: curves[tool][-1][1] for tool in TOOLS}
    print(f"final: {final}")

    # Shape assertion 1: BVF ends highest, Buzzer lowest by a wide margin.
    assert final["bvf"] > final["syzkaller"] > final["buzzer"]
    assert final["bvf"] / final["buzzer"] > 1.5

    # Shape assertion 2: BVF's curve dominates both baselines at every
    # sampled point, and it is still finding new coverage in the late
    # phase.  (The paper's stronger "growth rate stays higher after
    # saturation" claim needs the kernel verifier's much larger edge
    # space; our scaled-down verifier saturates earlier, so dominance +
    # continued growth is the meaningful scaled-down shape.)
    for i in range(1, n):
        assert curves["bvf"][i][1] >= curves["syzkaller"][i][1]
        assert curves["bvf"][i][1] >= curves["buzzer"][i][1]
    mid = curves["bvf"][n // 2][1]
    assert curves["bvf"][-1][1] > mid  # still growing late
