"""Compare two BENCH_throughput.json artifacts across CI runs.

Usage::

    python benchmarks/check_throughput_trajectory.py \
        --previous prev/BENCH_throughput.json \
        --current BENCH_throughput.json \
        [--max-regression 0.30]

Exits non-zero when the current run's parallel programs/sec dropped by
more than ``--max-regression`` relative to the previous run.  A missing
or unreadable previous artifact is not a failure — the first run on a
branch, an expired artifact, or a previous run that never uploaded one
must not block CI — but the reason is printed so a silently-skipped
comparison is visible in the log.

CI runner hardware varies run to run, which is why the threshold is a
loose 30%: the gate catches algorithmic regressions (accidental
quadratic work in the campaign loop, instrumentation left enabled on
the hot path), not scheduler noise.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_programs_per_sec(path: str) -> tuple[float, dict]:
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    # BENCH_throughput.json carries serial and parallel sections; the
    # parallel one is the deployment configuration, so it is the gate.
    section = payload.get("parallel", payload)
    value = section.get("programs_per_sec")
    if value is None:
        raise KeyError(f"{path}: no programs_per_sec in {sorted(section)}")
    return float(value), payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--previous", required=True,
                        help="previous run's BENCH_throughput.json")
    parser.add_argument("--current", required=True,
                        help="this run's BENCH_throughput.json")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="maximum tolerated fractional drop "
                             "(default 0.30)")
    args = parser.parse_args(argv)

    try:
        current, _ = load_programs_per_sec(args.current)
    except (OSError, ValueError, KeyError) as exc:
        print(f"trajectory: current artifact unreadable: {exc}")
        return 1

    try:
        previous, _ = load_programs_per_sec(args.previous)
    except (OSError, ValueError, KeyError) as exc:
        print(f"trajectory: no previous artifact to compare against "
              f"({exc}); skipping")
        return 0

    if previous <= 0:
        print(f"trajectory: previous throughput {previous} not positive; "
              f"skipping")
        return 0

    delta = (current - previous) / previous
    print(f"trajectory: previous {previous:.1f} programs/sec, "
          f"current {current:.1f} programs/sec ({delta:+.1%})")
    if delta < -args.max_regression:
        print(f"trajectory: FAIL - throughput dropped more than "
              f"{args.max_regression:.0%}")
        return 1
    print("trajectory: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
