"""Compare two BENCH_throughput.json artifacts across CI runs.

Usage::

    python benchmarks/check_throughput_trajectory.py \
        --previous prev/BENCH_throughput.json \
        --current BENCH_throughput.json \
        [--max-regression 0.30]

Exits non-zero when the current run's parallel programs/sec dropped by
more than ``--max-regression`` relative to the previous run.  A missing
or unreadable previous artifact is not a failure — the first run on a
branch, an expired artifact, or a previous run that never uploaded one
must not block CI — but the reason is printed so a silently-skipped
comparison is visible in the log.

CI runner hardware varies run to run, which is why the threshold is a
loose 30%: the gate catches algorithmic regressions (accidental
quadratic work in the campaign loop, instrumentation left enabled on
the hot path), not scheduler noise.

Two further trajectories ride on the same artifact, gated in absolute
percentage points because both are CPU-ratio measurements and so
largely hardware-independent:

- the serial ``verify_fraction`` (share of attributed CPU the verify
  phase consumes) may not *rise* by more than
  ``--max-verify-fraction-rise`` — the verifier fast path is the thing
  this repo optimises, and a creeping verify share is the earliest
  symptom of losing it;
- each cache hit rate under ``caches`` (verdict cache, tnum memo,
  prune index) may not *drop* by more than ``--max-hit-rate-drop`` —
  campaigns are seed-deterministic, so a falling hit rate means a
  cache key or lookup path regressed, not that the workload changed.

Three more gates need only the **current** artifact, because the
benchmark already measured each against a same-process baseline (a
CPU ratio, not an absolute):

- the flight recorder's disabled-mode overhead (from
  ``test_flight_recorder_overhead``) must stay within
  ``--max-flight-overhead`` — the ISSUE-8 contract that the decision
  log costs nothing when off;
- the hierarchical profiler's disabled-mode overhead (from
  ``test_profiler_overhead``) must stay within
  ``--max-profile-overhead`` — the ISSUE-9 contract that the campaign
  analytics layer costs nothing when off;
- the repair synthesizer's disabled-mode overhead (from
  ``test_repair_overhead``) must stay within
  ``--max-repair-overhead`` — the ISSUE-10 contract that the
  rejection-repair layer costs nothing when ``--repair-feedback`` is
  off.

One more trajectory rides on both artifacts: the overall
``repair_feedback.verified_rate`` (fraction of rejections whose
synthesized minimal patch re-verified as accepted) may not drop by
more than ``--max-repair-rate-drop`` **relative** to the previous
run.  Campaigns are seed-deterministic, so a falling rate means a
patch template, the CFG/dataflow layer, or the provenance pass
regressed — not that the workload changed.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_programs_per_sec(path: str) -> tuple[float, dict]:
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    # BENCH_throughput.json carries serial and parallel sections; the
    # parallel one is the deployment configuration, so it is the gate.
    section = payload.get("parallel", payload)
    value = section.get("programs_per_sec")
    if value is None:
        raise KeyError(f"{path}: no programs_per_sec in {sorted(section)}")
    return float(value), payload


def check_verify_fraction(previous: dict, current: dict,
                          max_rise: float) -> bool:
    """Gate the serial verify-phase CPU share; True = pass."""
    prev = previous.get("serial", {}).get("verify_fraction")
    cur = current.get("serial", {}).get("verify_fraction")
    if prev is None or cur is None:
        print("trajectory: verify_fraction missing from an artifact; "
              "skipping that gate")
        return True
    rise = cur - prev
    print(f"trajectory: verify_fraction {prev:.3f} -> {cur:.3f} "
          f"({rise:+.3f}, allowed rise {max_rise:.2f})")
    if rise > max_rise:
        print("trajectory: FAIL - verify phase share of CPU rose more "
              f"than {max_rise:.2f}")
        return False
    return True


def check_cache_rates(previous: dict, current: dict,
                      max_drop: float) -> bool:
    """Gate every recorded cache hit rate; True = pass."""
    prev_rates = previous.get("caches")
    cur_rates = current.get("caches")
    if not prev_rates or not cur_rates:
        print("trajectory: cache rates missing from an artifact; "
              "skipping that gate")
        return True
    ok = True
    for name in sorted(prev_rates):
        prev = prev_rates[name]
        cur = cur_rates.get(name)
        if cur is None:
            print(f"trajectory: FAIL - cache rate {name} disappeared "
                  f"from the current artifact")
            ok = False
            continue
        drop = prev - cur
        print(f"trajectory: {name} {prev:.3f} -> {cur:.3f} "
              f"({-drop:+.3f}, allowed drop {max_drop:.2f})")
        if drop > max_drop:
            print(f"trajectory: FAIL - {name} dropped more than "
                  f"{max_drop:.2f}")
            ok = False
    return ok


def check_disabled_overhead(current: dict, section_name: str,
                            label: str, max_overhead: float) -> bool:
    """Gate a subsystem's disabled-mode overhead; True = pass.

    Unlike the other gates this needs no previous artifact: the
    benchmark already computed the overhead against its own in-process
    baseline, so the gate is absolute.  Used for the flight recorder
    and the hierarchical profiler.
    """
    section = current.get(section_name)
    if not section or "disabled_overhead" not in section:
        print(f"trajectory: {section_name} overhead missing from the "
              f"current artifact; skipping that gate")
        return True
    overhead = section["disabled_overhead"]
    print(f"trajectory: {label} disabled overhead "
          f"{overhead:+.3f} (allowed {max_overhead:.2f})")
    if overhead > max_overhead:
        print(f"trajectory: FAIL - disabled {label} costs more "
              f"than {max_overhead:.0%}")
        return False
    return True


def check_repair_rate(previous: dict, current: dict,
                      max_drop: float) -> bool:
    """Gate the overall verified-repair rate; True = pass.

    Relative, not absolute: the rate is a ratio of deterministic
    counts, so hardware noise cannot move it — but its natural level
    depends on the campaign's rejection mix, which legitimate
    generator changes do shift.  A relative threshold catches "half
    the repairs stopped verifying" without pinning the level itself.
    """
    prev_section = previous.get("repair_feedback") or {}
    cur_section = current.get("repair_feedback") or {}
    prev = prev_section.get("verified_rate")
    cur = cur_section.get("verified_rate")
    if prev is None or cur is None:
        print("trajectory: repair verified_rate missing from an artifact; "
              "skipping that gate")
        return True
    if prev <= 0:
        print(f"trajectory: previous repair verified_rate {prev} not "
              f"positive; skipping that gate")
        return True
    drop = (prev - cur) / prev
    print(f"trajectory: repair verified_rate {prev:.3f} -> {cur:.3f} "
          f"({-drop:+.1%} relative, allowed drop {max_drop:.0%})")
    if drop > max_drop:
        print(f"trajectory: FAIL - verified-repair rate dropped more "
              f"than {max_drop:.0%} relative")
        return False
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--previous", required=True,
                        help="previous run's BENCH_throughput.json")
    parser.add_argument("--current", required=True,
                        help="this run's BENCH_throughput.json")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="maximum tolerated fractional drop "
                             "(default 0.30)")
    parser.add_argument("--max-verify-fraction-rise", type=float,
                        default=0.15,
                        help="maximum tolerated rise of the serial "
                             "verify_fraction, in absolute points "
                             "(default 0.15)")
    parser.add_argument("--max-hit-rate-drop", type=float, default=0.25,
                        help="maximum tolerated drop of any cache hit "
                             "rate, in absolute points (default 0.25)")
    parser.add_argument("--max-flight-overhead", type=float, default=0.05,
                        help="maximum tolerated disabled-mode flight "
                             "recorder overhead, as a fraction of "
                             "baseline throughput (default 0.05)")
    parser.add_argument("--max-profile-overhead", type=float, default=0.05,
                        help="maximum tolerated disabled-mode profiler "
                             "overhead, as a fraction of baseline "
                             "throughput (default 0.05)")
    parser.add_argument("--max-repair-overhead", type=float, default=0.05,
                        help="maximum tolerated disabled-mode repair "
                             "synthesizer overhead, as a fraction of "
                             "baseline throughput (default 0.05)")
    parser.add_argument("--max-repair-rate-drop", type=float, default=0.20,
                        help="maximum tolerated relative drop of the "
                             "overall verified-repair rate (default 0.20)")
    args = parser.parse_args(argv)

    try:
        current, current_payload = load_programs_per_sec(args.current)
    except (OSError, ValueError, KeyError) as exc:
        print(f"trajectory: current artifact unreadable: {exc}")
        return 1

    if not check_disabled_overhead(current_payload, "flight_recorder",
                                   "flight recorder",
                                   args.max_flight_overhead):
        return 1
    if not check_disabled_overhead(current_payload, "profiler",
                                   "profiler", args.max_profile_overhead):
        return 1
    if not check_disabled_overhead(current_payload, "repair_feedback",
                                   "repair synthesizer",
                                   args.max_repair_overhead):
        return 1

    try:
        previous, previous_payload = load_programs_per_sec(args.previous)
    except (OSError, ValueError, KeyError) as exc:
        print(f"trajectory: no previous artifact to compare against "
              f"({exc}); skipping")
        return 0

    if previous <= 0:
        print(f"trajectory: previous throughput {previous} not positive; "
              f"skipping")
        return 0

    ok = True
    delta = (current - previous) / previous
    print(f"trajectory: previous {previous:.1f} programs/sec, "
          f"current {current:.1f} programs/sec ({delta:+.1%})")
    if delta < -args.max_regression:
        print(f"trajectory: FAIL - throughput dropped more than "
              f"{args.max_regression:.0%}")
        ok = False
    ok &= check_verify_fraction(previous_payload, current_payload,
                                args.max_verify_fraction_rise)
    ok &= check_cache_rates(previous_payload, current_payload,
                            args.max_hit_rate_drop)
    ok &= check_repair_rate(previous_payload, current_payload,
                            args.max_repair_rate_drop)
    if not ok:
        return 1
    print("trajectory: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
