"""The ``bpf_asan_*`` sanitizing functions.

These stand in for the kernel functions BVF's first two patches add:
``bpf_asan_load8/16/32/64()`` and ``bpf_asan_store8/16/32/64()``.  They
are "compiled with KASAN" — in our model, they consult the simulated
shadow memory — and are invoked through ordinary eBPF call
instructions inserted by the instrumentation pass, with the target
address passed in R1 (Figure 5 of the paper).

The runtime treats these calls specially: they preserve all registers
(the paper backs caller-saved state into an extended, program-invisible
stack region) and their only observable effect is to raise a
:class:`~repro.errors.SanitizerReport` when the access is invalid.
"""

from __future__ import annotations

from repro.errors import KasanReport, SanitizerReport

__all__ = [
    "ASAN_LOAD",
    "ASAN_STORE",
    "ASAN_ALU_LIMIT",
    "is_asan_call",
    "asan_call_size",
    "asan_check",
]

#: Function-id block reserved for the sanitizing functions.  The ids
#: live far above real helper ids, mirroring how the kernel patches
#: calls to hidden functions that user programs cannot name.
_ASAN_BASE = 0x7F00_0000

#: access size in bytes -> function id, for loads and stores.
ASAN_LOAD = {1: _ASAN_BASE + 1, 2: _ASAN_BASE + 2, 4: _ASAN_BASE + 3, 8: _ASAN_BASE + 4}
ASAN_STORE = {
    1: _ASAN_BASE + 17,
    2: _ASAN_BASE + 18,
    4: _ASAN_BASE + 19,
    8: _ASAN_BASE + 20,
}

#: The runtime alu_limit assertion (Section 4.2, third patch).
ASAN_ALU_LIMIT = _ASAN_BASE + 32

_LOAD_IDS = {v: k for k, v in ASAN_LOAD.items()}
_STORE_IDS = {v: k for k, v in ASAN_STORE.items()}


def is_asan_call(func_id: int) -> bool:
    """True for any sanitizer function id."""
    return func_id in _LOAD_IDS or func_id in _STORE_IDS or func_id == ASAN_ALU_LIMIT


def asan_call_size(func_id: int) -> tuple[int, bool]:
    """``(size, is_write)`` for a load/store sanitizer id."""
    if func_id in _LOAD_IDS:
        return _LOAD_IDS[func_id], False
    if func_id in _STORE_IDS:
        return _STORE_IDS[func_id], True
    raise KeyError(func_id)


def asan_check(
    mem,
    addr: int,
    size: int,
    is_write: bool,
    probe_mem: bool = False,
    site: int = -1,
) -> bool:
    """Validate one dispatched access against shadow memory.

    Returns True when the access may proceed.  For PROBE_MEM sites
    (fault-handled BTF-object loads) a null or unmapped address is
    *not* a bug — the kernel handles the fault and the load yields
    zero — so we return False to tell the interpreter to substitute
    zero, without raising.  Everything else that fails the shadow check
    raises :class:`SanitizerReport`, which is indicator #1 firing.
    """
    if probe_mem and (addr < 4096 or not mem.in_arena(addr, size)):
        return False
    try:
        mem.shadow_check(addr, size, is_write=is_write, who="bpf_asan")
    except KasanReport as exc:
        raise SanitizerReport(
            f"bpf_asan: {exc}",
            address=addr,
            size=size,
            is_write=is_write,
            context={"site": site, "probe_mem": probe_mem},
        ) from exc
    return True
