"""BVF's memory-access sanitation (Section 4.2 of the paper).

Verified programs are JIT-compiled without instrumentation, so the
out-of-bounds accesses produced by verifier correctness bugs corrupt
memory silently.  BVF closes that gap by rewriting verified programs
*at the eBPF instruction level*: every load/store is preceded by a
dispatch sequence that hands the target address to a ``bpf_asan_*``
kernel function, which is KASAN-instrumented and therefore traps on
the first bad byte.  Pointer/scalar ALU instructions for which the
verifier computed an ``alu_limit`` additionally get a runtime
``assert(offset < alu_limit)``.

Modules:

- :mod:`repro.sanitizer.asan_funcs` — the ``bpf_asan_load/store{8..64}``
  function ids and their checking semantics,
- :mod:`repro.sanitizer.instrument` — the instrumentation pass that
  runs inside the verifier's fixup phase,
- :mod:`repro.sanitizer.alu_limit` — the runtime alu_limit assertion.
"""

from repro.sanitizer.asan_funcs import (
    ASAN_ALU_LIMIT,
    asan_call_size,
    asan_check,
    is_asan_call,
)
from repro.sanitizer.instrument import build_insertions, SanitizeSite

__all__ = [
    "ASAN_ALU_LIMIT",
    "asan_call_size",
    "asan_check",
    "is_asan_call",
    "build_insertions",
    "SanitizeSite",
]
