"""Runtime ``alu_limit`` assertions (the paper's third kernel patch).

For arithmetic between a pointer and a scalar the verifier computes an
``alu_limit`` — the largest offset that keeps the pointer inside its
region, given the operation and the operand sign.  The stock kernel
uses this value for speculative-execution masking; BVF's patch turns it
into an architectural runtime check: the sanitized program asserts
``offset < alu_limit`` and reports an access error otherwise.

The emitted instruction is a single call to :data:`ASAN_ALU_LIMIT`
whose (otherwise unused) ``dst`` field names the scalar operand
register and whose immediate carries the limit.
"""

from __future__ import annotations

from repro.ebpf.insn import Insn
from repro.ebpf.opcodes import InsnClass, JmpOp, PseudoCall
from repro.errors import AluLimitViolation
from repro.sanitizer.asan_funcs import ASAN_ALU_LIMIT

__all__ = ["alu_limit_insn", "check_alu_limit"]


def alu_limit_insn(operand_reg: int, limit: int) -> Insn:
    """Build the runtime-check call for one sanitized pointer ALU."""
    return Insn(
        opcode=InsnClass.JMP | JmpOp.CALL,
        dst=operand_reg,
        src=PseudoCall.HELPER,
        imm=ASAN_ALU_LIMIT & 0x7FFFFFFF,
        off=min(limit, 0x7FFF),
    )


def check_alu_limit(value: int, limit: int, site: int = -1) -> None:
    """The assertion body: ``assert(offset < alu_limit)``.

    ``value`` is the scalar operand observed at runtime (u64).  A value
    at or beyond the limit means the verifier's reasoning about this
    pointer adjustment was wrong — indicator #1.
    """
    if value >= limit:
        raise AluLimitViolation(
            f"bpf_asan: alu_limit violation: offset {value} >= limit {limit}",
            address=value,
            size=0,
            is_write=False,
            context={"site": site, "limit": limit},
        )
