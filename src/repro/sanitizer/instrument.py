"""The instrumentation pass: dispatch loads/stores to ``bpf_asan_*``.

Runs inside the verifier's fixup phase (like BVF's kernel patches hook
``bpf_misc_fixup``), entirely at the eBPF instruction level.  For each
eligible load/store the pass emits the Figure-5 sequence::

    ax = r1            ; back up R1 into the internal AX register
    r1 = <base reg>    ; materialise the target address in R1
    r1 += <off>
    call bpf_asan_<load|store><size>
    r1 = ax            ; restore R1
    <original insn>

Instrumentation-reduction rules from the paper are implemented:

1. accesses based on R10 are skipped — the stack pointer is read-only
   and the constant offset was fully checked at verification time;
2. instructions emitted by other rewrite passes are never instrumented
   (each original access is instrumented exactly once).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.ebpf import asm
from repro.ebpf.insn import Insn
from repro.ebpf.opcodes import Reg, SIZE_BYTES
from repro.sanitizer.asan_funcs import ASAN_LOAD, ASAN_STORE

__all__ = ["SanitizeSite", "build_insertions"]


@dataclass(frozen=True)
class SanitizeSite:
    """Metadata for one instrumented access, consumed by the runtime."""

    orig_idx: int
    size: int
    is_write: bool
    probe_mem: bool


def _dispatch_sequence(base: int, off: int, func_id: int) -> list[Insn]:
    """The five-instruction Figure-5 dispatch block."""
    return [
        asm.mov64_reg(Reg.AX, Reg.R1),
        asm.mov64_reg(Reg.R1, base),
        asm.alu64_imm(asm.AluOp.ADD, Reg.R1, off),
        asm.call_helper(func_id),
        asm.mov64_reg(Reg.R1, Reg.AX),
    ]


def build_insertions(
    insns: list[Insn], probe_mem: set[int]
) -> tuple[dict[int, list[Insn]], dict[int, SanitizeSite]]:
    """Plan the sanitizer insertions for a verified program.

    Returns ``(insertions, site_by_seq)``: ``insertions`` maps original
    slot index to the dispatch block placed before it; ``site_by_seq``
    records, per instrumented original index, the access metadata (the
    runtime re-keys it by the final index of the ``call`` instruction
    after patching).
    """
    profiler = obs.profiler()
    if profiler.enabled:
        profiler.push("sanitize.instrument")
    try:
        return _build_insertions(insns, probe_mem, profiler)
    finally:
        if profiler.enabled:
            profiler.pop()


def _build_insertions(
    insns: list[Insn], probe_mem: set[int], profiler
) -> tuple[dict[int, list[Insn]], dict[int, SanitizeSite]]:
    insertions: dict[int, list[Insn]] = {}
    sites: dict[int, SanitizeSite] = {}
    skipped_r10 = 0

    for idx, insn in enumerate(insns):
        if insn.is_filler():
            continue
        if insn.is_memory_load():
            base, size = insn.src, SIZE_BYTES[insn.size]
            is_write = False
            table = ASAN_LOAD
        elif insn.is_memory_store():
            base, size = insn.dst, SIZE_BYTES[insn.size]
            is_write = True
            table = ASAN_STORE
        elif insn.is_atomic():
            # Atomics both read and write; check as a write (strictest).
            base, size = insn.dst, SIZE_BYTES[insn.size]
            is_write = True
            table = ASAN_STORE
        else:
            continue

        # Reduction rule 1: R10-based accesses have constant, fully
        # verified target addresses.
        if base == Reg.R10:
            skipped_r10 += 1
            continue

        insertions[idx] = _dispatch_sequence(base, insn.off, table[size])
        sites[idx] = SanitizeSite(
            orig_idx=idx,
            size=size,
            is_write=is_write,
            probe_mem=idx in probe_mem,
        )

    m = obs.metrics()
    m.counter("sanitizer.sites", len(sites))
    m.counter("sanitizer.skipped_r10", skipped_r10)
    if profiler.enabled:
        profiler.ops["sanitizer.sites"] += len(sites)
        profiler.ops["sanitizer.skipped_r10"] += skipped_r10
    rec = obs.recorder()
    if rec.enabled:
        rec.event("sanitizer.instrument", sites=len(sites),
                  skipped_r10=skipped_r10, insns=len(insns))
    return insertions, sites
