"""Command-line interface: ``python -m repro <command>``.

Subcommands:

- ``fuzz``      — run a fuzzing campaign and print a Table-2-style
  bug table (optionally with triage reports);
- ``campaign``  — run a sharded campaign across worker processes and
  print the merged bug table plus throughput stats;
- ``selftest``  — run the verifier self-test corpus against a kernel
  profile and report verdict mismatches;
- ``bench``     — quick acceptance/coverage comparison of the three
  generators;
- ``report``    — render the telemetry dashboard from a ``--metrics``
  artifact (acceptance by reason/frame kind, phase-time histograms,
  cache health, per-shard throughput, bug indicators, the coverage
  frontier); older ``repro-metrics-v*`` artifacts render with missing
  sections shown as "n/a";
- ``profile``   — render the hierarchical verifier profile (frame
  tree, hotspots, op/helper tables) from a ``--profile`` artifact;
- ``explain``   — verify one program (a selftest by name, or a
  campaign iteration by number) under the flight recorder and print
  why it was rejected, the root-cause definition site, and the
  verified minimal repair when one exists;
- ``repair``    — synthesize and verify the minimal patch that flips
  a rejected program (selftest or campaign iteration) to accepted,
  printing the patched disassembly and the diff;
- ``watch``     — tail a campaign's heartbeat directory and render a
  live progress dashboard;
- ``profiles``  — list the kernel profiles and their injected flaws.

``fuzz`` and ``campaign`` both accept ``--trace PATH`` (JSONL trace
events; sharded campaigns write ``PATH.shardNN`` per shard),
``--metrics PATH`` (the JSON artifact ``report`` consumes),
``--flight`` (record verifier decisions and attach rejection
explanations), and ``--heartbeat-dir DIR`` (write the progress
snapshots ``watch`` renders).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.reports import render_bug_table, render_dashboard
from repro.analysis.stats import ThroughputStats
from repro.analysis.triage import triage_finding
from repro.errors import BpfError, VerifierReject
from repro.fuzz.campaign import Campaign, CampaignConfig
from repro.fuzz.parallel import DEFAULT_SHARDS, ParallelCampaign
from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.obs.artifact import build_artifact, write_artifact
from repro.obs.frontier import DEFAULT_PLATEAU_WINDOW
from repro.testsuite import all_selftests_extended as all_selftests

__all__ = ["main"]


def _emit_metrics(result, args: argparse.Namespace) -> None:
    if args.metrics:
        write_artifact(build_artifact(result), args.metrics)
        print(f"metrics artifact written to {args.metrics}")
    if args.trace:
        print(f"trace written to {args.trace}*")


def _print_divergences(result) -> None:
    divergences = getattr(result, "divergences", {})
    if not getattr(result.config, "differential", False):
        return
    by_cls: dict[str, int] = {}
    for div in divergences.values():
        cls = div.get("classification", "unexplained")
        by_cls[cls] = by_cls.get(cls, 0) + 1
    breakdown = " ".join(f"{c}={n}" for c, n in sorted(by_cls.items()))
    print(f"\ncross-version divergences: {len(divergences)}"
          + (f" ({breakdown})" if breakdown else ""))
    for div in divergences.values():
        print(f"  {div['kind']:<8} {div['profile_a']} vs {div['profile_b']}: "
              f"{div['classification']} [{div['explanation']}] "
              f"iteration {div['iteration']}")


def _cmd_fuzz(args: argparse.Namespace) -> int:
    config = CampaignConfig(
        tool=args.tool,
        kernel_version=args.kernel,
        budget=args.budget,
        seed=args.seed,
        sanitize=not args.no_sanitize,
        trace_path=args.trace,
        differential=args.differential,
        check_invariants=args.check_invariants,
        flight=args.flight,
        profile=args.profile,
        repair_feedback=args.repair_feedback,
        plateau_window=args.plateau_window,
        heartbeat_dir=args.heartbeat_dir,
        heartbeat_every=args.heartbeat_every,
    )
    print(
        f"fuzzing {args.kernel} with {args.tool}: {args.budget} programs, "
        f"seed {args.seed}"
    )
    result = Campaign(config).run()
    print(
        f"\naccepted {result.accepted}/{result.generated} "
        f"({result.acceptance_rate:.1%}); verifier coverage "
        f"{result.final_coverage} edges; corpus {result.corpus_size}"
    )
    print("\n" + render_bug_table(result.findings))
    _print_divergences(result)
    if args.triage and result.findings:
        kernel_config = PROFILES[args.kernel]()
        for finding in result.findings.values():
            print()
            print(triage_finding(finding, kernel_config).render())
    _emit_metrics(result, args)
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    config = CampaignConfig(
        tool=args.tool,
        kernel_version=args.kernel,
        budget=args.budget,
        seed=args.seed,
        sanitize=not args.no_sanitize,
        trace_path=args.trace,
        differential=args.differential,
        check_invariants=args.check_invariants,
        flight=args.flight,
        profile=args.profile,
        repair_feedback=args.repair_feedback,
        plateau_window=args.plateau_window,
        heartbeat_dir=args.heartbeat_dir,
        heartbeat_every=args.heartbeat_every,
    )
    engine = ParallelCampaign(config, workers=args.workers, shards=args.shards)
    print(
        f"campaign on {args.kernel} with {args.tool}: {args.budget} programs "
        f"over {engine.shards} shards x {engine.workers} workers, "
        f"seed {args.seed}"
    )
    result = engine.run()
    throughput = ThroughputStats.from_result(result)
    print(
        f"\naccepted {result.accepted}/{result.generated} "
        f"({result.acceptance_rate:.1%}); merged verifier coverage "
        f"{result.final_coverage} edges; corpus {result.corpus_size}"
    )
    print(
        f"throughput {throughput.programs_per_sec:.1f} programs/sec "
        f"({throughput.wall_seconds:.1f}s wall, "
        f"{throughput.parallelism:.1f}x effective parallelism; "
        f"verify {throughput.verify_fraction:.0%} / "
        f"execute {throughput.execute_fraction:.0%} of busy time)"
    )
    print("\n" + render_bug_table(result.findings))
    _print_divergences(result)
    if args.triage and result.findings:
        kernel_config = PROFILES[args.kernel]()
        for finding in result.findings.values():
            print()
            print(triage_finding(finding, kernel_config).render())
    _emit_metrics(result, args)
    return 0


def _load_metrics_artifact(path: str) -> dict | None:
    """Load a metrics artifact, accepting any ``repro-metrics-v*``.

    Old and new schema versions render alike — the dashboard shows
    "n/a" for sections an older artifact does not carry.  Returns
    ``None`` (after a stderr note) for non-metrics documents.
    """
    from repro.obs.artifact import SCHEMA

    with open(path, encoding="utf-8") as fh:
        artifact = json.load(fh)
    schema = artifact.get("schema")
    if not isinstance(schema, str) or not schema.startswith(
        "repro-metrics-v"
    ):
        print(f"unsupported metrics artifact schema: {schema!r}",
              file=sys.stderr)
        return None
    if schema != SCHEMA:
        print(f"note: artifact schema {schema} predates {SCHEMA}; "
              "missing sections render as n/a", file=sys.stderr)
    return artifact


def _cmd_report(args: argparse.Namespace) -> int:
    artifact = _load_metrics_artifact(args.artifact)
    if artifact is None:
        return 1
    print(render_dashboard(artifact))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.profile import render_profile

    artifact = _load_metrics_artifact(args.artifact)
    if artifact is None:
        return 1
    print(render_profile(artifact.get("profile") or {}, top=args.top))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.obs.explain import (
        build_selftest,
        describe_accepted,
        explain_program,
        replay_iteration,
    )

    gp = None
    if args.program.isdigit():
        config = CampaignConfig(
            tool=args.tool,
            kernel_version=args.kernel,
            budget=0,
            seed=args.seed,
            sanitize=args.sanitize,
        )
        _, kernel, gp, prog = replay_iteration(config, int(args.program))
        sanitize = config.sanitize and kernel.config.sanitizer_available
        subject = (f"iteration {args.program} "
                   f"(tool={args.tool} seed={args.seed})")
    else:
        kernel = Kernel(PROFILES[args.kernel]())
        try:
            prog = build_selftest(args.program, kernel)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 1
        sanitize = args.sanitize
        subject = f"selftest {args.program!r}"
    explanation = explain_program(kernel, prog, sanitize=sanitize)

    if explanation is None:
        print(f"{subject} accepted on {args.kernel} — nothing to explain")
        print(describe_accepted(subject, args.kernel, prog=prog, gp=gp))
        return 0

    from repro.analysis.repair import synthesize_repair

    repair = synthesize_repair(
        kernel,
        prog,
        reason=explanation.reason,
        message=explanation.message,
        insn_idx=explanation.insn_idx,
        sanitize=sanitize,
    )
    if args.json:
        payload = explanation.to_dict()
        payload["repair"] = repair.to_dict() if repair else None
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(explanation.render())
        print()
        if repair is not None:
            print(repair.render())
        else:
            print("suggested repair: no verified repair found")
    return 0


def _cmd_repair(args: argparse.Namespace) -> int:
    from repro.analysis.repair import render_program, synthesize_repair
    from repro.obs.explain import (
        build_selftest,
        explain_program,
        replay_iteration,
    )

    if args.program.isdigit():
        config = CampaignConfig(
            tool=args.tool,
            kernel_version=args.kernel,
            budget=0,
            seed=args.seed,
            sanitize=args.sanitize,
        )
        _, kernel, _, prog = replay_iteration(config, int(args.program))
        sanitize = config.sanitize and kernel.config.sanitizer_available
        subject = (f"iteration {args.program} "
                   f"(tool={args.tool} seed={args.seed})")
    else:
        kernel = Kernel(PROFILES[args.kernel]())
        try:
            prog = build_selftest(args.program, kernel)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 1
        sanitize = args.sanitize
        subject = f"selftest {args.program!r}"

    explanation = explain_program(kernel, prog, sanitize=sanitize)
    if explanation is None:
        print(f"{subject} accepted on {args.kernel} — nothing to repair")
        return 1

    repair = synthesize_repair(
        kernel,
        prog,
        reason=explanation.reason,
        message=explanation.message,
        insn_idx=explanation.insn_idx,
        sanitize=sanitize,
    )
    if repair is None:
        print(f"{subject} rejected ({explanation.reason}) but no "
              "candidate patch verified as accepted")
        return 1

    if args.json:
        payload = repair.to_dict()
        payload["subject"] = subject
        payload["kernel"] = args.kernel
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0

    print(f"{subject} rejected on {args.kernel}: {explanation.message}")
    print()
    print(repair.render())
    print()
    print("patched program (verified accept):")
    print("\n".join(render_program(repair.patched)))
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    import time

    from repro.obs.heartbeat import (
        read_campaign_meta,
        read_heartbeats,
        render_watch,
    )

    while True:
        snapshots = read_heartbeats(args.dir)
        frame = render_watch(snapshots, read_campaign_meta(args.dir))
        if args.once:
            print(frame)
            return 0
        # ANSI clear-screen + home keeps the refresh flicker-free.
        print("\x1b[2J\x1b[H" + frame, flush=True)
        if snapshots and all(s.get("status") == "done" for s in snapshots):
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            return 0


def _cmd_selftest(args: argparse.Namespace) -> int:
    mismatches = 0
    total = 0
    for selftest in all_selftests():
        kernel = Kernel(PROFILES[args.kernel]())
        total += 1
        try:
            prog = selftest.build(kernel)
            kernel.prog_load(prog, sanitize=args.sanitize)
            verdict = "accept"
        except (VerifierReject, BpfError) as exc:
            verdict = "reject"
            reason = getattr(exc, "message", str(exc))
        if verdict != selftest.expect and args.kernel == "patched":
            mismatches += 1
            detail = f" ({reason})" if verdict == "reject" else ""
            print(f"MISMATCH {selftest.name}: expected {selftest.expect}, "
                  f"got {verdict}{detail}")
        elif args.verbose:
            print(f"{verdict:>7}  {selftest.name}")
    print(f"\n{total} self-tests, {mismatches} verdict mismatches "
          f"on {args.kernel}")
    return 1 if mismatches else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    print(f"{'tool':>12} {'accepted':>9} {'coverage':>9}")
    for tool in ("bvf", "syzkaller", "buzzer"):
        result = Campaign(
            CampaignConfig(
                tool=tool,
                kernel_version=args.kernel,
                budget=args.budget,
                seed=args.seed,
                sanitize=tool == "bvf",
            )
        ).run()
        print(
            f"{tool:>12} {result.acceptance_rate:>8.1%} "
            f"{result.final_coverage:>9}"
        )
    return 0


def _cmd_profiles(args: argparse.Namespace) -> int:
    for name, factory in PROFILES.items():
        config = factory()
        print(f"{name}:")
        print(f"  kfuncs={config.has_kfuncs} "
              f"nullness_propagation={config.has_nullness_propagation} "
              f"btf={config.has_btf_access}")
        if config.flaws:
            for flaw in sorted(config.flaws, key=lambda f: f.value):
                print(f"  - {flaw.value}")
        else:
            print("  (no injected bugs)")
    return 0


def _add_flight_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--flight", action="store_true",
                        help="record verifier decision events and attach "
                             "a rejection explanation per taxonomy reason")
    parser.add_argument("--profile", action="store_true",
                        help="run the hierarchical verifier profiler "
                             "(`repro profile` renders the artifact)")
    parser.add_argument("--repair-feedback", action="store_true",
                        help="attempt a verified minimal repair for every "
                             "rejection and feed accepted repairs back "
                             "into the mutation corpus")
    parser.add_argument("--plateau-window", type=int,
                        default=DEFAULT_PLATEAU_WINDOW, metavar="N",
                        help="iterations without new coverage before a "
                             "plateau event is emitted")
    parser.add_argument("--heartbeat-dir", metavar="DIR", default=None,
                        help="write atomic progress heartbeats into DIR "
                             "(`repro watch DIR` renders them live)")
    parser.add_argument("--heartbeat-every", type=int, default=25,
                        metavar="N", help="heartbeat cadence in iterations")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BVF reproduction: fuzz a simulated eBPF verifier",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fuzz = sub.add_parser("fuzz", help="run a fuzzing campaign")
    fuzz.add_argument("--tool", default="bvf",
                      choices=["bvf", "bvf-nostructure", "syzkaller", "buzzer"])
    fuzz.add_argument("--kernel", default="bpf-next", choices=list(PROFILES))
    fuzz.add_argument("--budget", type=int, default=1000,
                      help="programs to generate")
    fuzz.add_argument("--seed", type=int, default=0)
    fuzz.add_argument("--no-sanitize", action="store_true",
                      help="disable BVF's memory-access sanitation")
    fuzz.add_argument("--differential", action="store_true",
                      help="run every program through the cross-version "
                           "differential oracle (v5.15/v6.1/bpf-next)")
    fuzz.add_argument("--check-invariants", action="store_true",
                      help="validate verifier abstract-state invariants "
                           "at checkpoints (VStateChecker)")
    fuzz.add_argument("--triage", action="store_true",
                      help="print a triage report per finding")
    fuzz.add_argument("--trace", metavar="PATH", default=None,
                      help="write a JSONL trace of the run to PATH")
    fuzz.add_argument("--metrics", metavar="PATH", default=None,
                      help="write the metrics artifact (JSON) to PATH")
    _add_flight_args(fuzz)
    fuzz.set_defaults(func=_cmd_fuzz)

    campaign = sub.add_parser(
        "campaign", help="run a sharded campaign across worker processes"
    )
    campaign.add_argument("--tool", default="bvf",
                          choices=["bvf", "bvf-nostructure", "syzkaller",
                                   "buzzer"])
    campaign.add_argument("--kernel", default="bpf-next",
                          choices=list(PROFILES))
    campaign.add_argument("--budget", type=int, default=1000,
                          help="programs to generate (split across shards)")
    campaign.add_argument("--seed", type=int, default=0)
    campaign.add_argument("--workers", type=int, default=None,
                          help="worker processes (default: CPU count)")
    campaign.add_argument("--shards", type=int, default=DEFAULT_SHARDS,
                          help="logical shards; results depend only on "
                               "(seed, budget, shards), never on --workers")
    campaign.add_argument("--no-sanitize", action="store_true",
                          help="disable BVF's memory-access sanitation")
    campaign.add_argument("--differential", action="store_true",
                          help="run every program through the cross-version "
                               "differential oracle (v5.15/v6.1/bpf-next)")
    campaign.add_argument("--check-invariants", action="store_true",
                          help="validate verifier abstract-state invariants "
                               "at checkpoints (VStateChecker)")
    campaign.add_argument("--triage", action="store_true",
                          help="print a triage report per finding")
    campaign.add_argument("--trace", metavar="PATH", default=None,
                          help="write JSONL traces (one PATH.shardNN "
                               "file per shard)")
    campaign.add_argument("--metrics", metavar="PATH", default=None,
                          help="write the merged metrics artifact "
                               "(JSON) to PATH")
    _add_flight_args(campaign)
    campaign.set_defaults(func=_cmd_campaign)

    report = sub.add_parser(
        "report", help="render the telemetry dashboard from a "
                       "--metrics artifact"
    )
    report.add_argument("artifact", help="metrics artifact written by "
                                         "fuzz/campaign --metrics")
    report.set_defaults(func=_cmd_report)

    profile = sub.add_parser(
        "profile", help="render the hierarchical verifier profile from "
                        "a --metrics artifact (campaign run with --profile)"
    )
    profile.add_argument("artifact", help="metrics artifact written by "
                                          "fuzz/campaign --metrics")
    profile.add_argument("--top", type=int, default=10,
                         help="rows per hotspot/op table")
    profile.set_defaults(func=_cmd_profile)

    explain = sub.add_parser(
        "explain", help="explain why the verifier rejected a program"
    )
    explain.add_argument(
        "program",
        help="a selftest name, or a campaign iteration number "
             "(replayed deterministically from --tool/--seed)",
    )
    explain.add_argument("--kernel", default="patched",
                         choices=list(PROFILES))
    explain.add_argument("--tool", default="bvf",
                         choices=["bvf", "bvf-nostructure", "syzkaller",
                                  "buzzer"],
                         help="generator for iteration replay")
    explain.add_argument("--seed", type=int, default=0,
                         help="campaign seed for iteration replay")
    explain.add_argument("--sanitize", action="store_true",
                         help="apply BVF's sanitation before verifying")
    explain.add_argument("--json", action="store_true",
                         help="emit the explanation as JSON")
    explain.set_defaults(func=_cmd_explain)

    repair = sub.add_parser(
        "repair", help="synthesize and verify a minimal patch that flips "
                       "a rejected program to accepted"
    )
    repair.add_argument(
        "program",
        help="a selftest name, or a campaign iteration number "
             "(replayed deterministically from --tool/--seed)",
    )
    repair.add_argument("--kernel", default="patched",
                        choices=list(PROFILES))
    repair.add_argument("--tool", default="bvf",
                        choices=["bvf", "bvf-nostructure", "syzkaller",
                                 "buzzer"],
                        help="generator for iteration replay")
    repair.add_argument("--seed", type=int, default=0,
                        help="campaign seed for iteration replay")
    repair.add_argument("--sanitize", action="store_true",
                        help="apply BVF's sanitation before verifying")
    repair.add_argument("--json", action="store_true",
                        help="emit the repair as JSON")
    repair.set_defaults(func=_cmd_repair)

    watch = sub.add_parser(
        "watch", help="live view of a campaign's heartbeat directory"
    )
    watch.add_argument("dir", help="the campaign's --heartbeat-dir")
    watch.add_argument("--interval", type=float, default=2.0,
                       help="seconds between refreshes")
    watch.add_argument("--once", action="store_true",
                       help="print one frame and exit (no screen clear)")
    watch.set_defaults(func=_cmd_watch)

    selftest = sub.add_parser("selftest", help="run the self-test corpus")
    selftest.add_argument("--kernel", default="patched",
                          choices=list(PROFILES))
    selftest.add_argument("--sanitize", action="store_true")
    selftest.add_argument("--verbose", "-v", action="store_true")
    selftest.set_defaults(func=_cmd_selftest)

    bench = sub.add_parser("bench", help="compare the generators")
    bench.add_argument("--kernel", default="bpf-next", choices=list(PROFILES))
    bench.add_argument("--budget", type=int, default=300)
    bench.add_argument("--seed", type=int, default=0)
    bench.set_defaults(func=_cmd_bench)

    profiles = sub.add_parser("profiles", help="list kernel profiles")
    profiles.set_defaults(func=_cmd_profiles)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. `python -m repro profiles | head`
        return 0


if __name__ == "__main__":
    sys.exit(main())
