"""BVF — the fuzzer (the paper's primary contribution).

The fuzzer combines three ingredients:

1. **Structured program generation** (:mod:`repro.fuzz.generator`):
   programs are assembled from an init header, a framed body (basic /
   jump / call frames), and an end section, with lightweight register
   tracking so emitted operations are usually *valid* — this is what
   lifts the verifier acceptance rate to ~49% while still producing
   expressive programs.
2. **The test oracle** (:mod:`repro.fuzz.oracle`): indicator #1
   (invalid load/store, captured by the dispatched sanitation) and
   indicator #2 (bugs inside invoked kernel routines, captured by the
   kernel's own self-checks), plus differential triage that attributes
   indicator-#1 findings to a root-cause verifier flaw.
3. **Coverage-guided exploration** (:mod:`repro.fuzz.coverage`,
   :mod:`repro.fuzz.corpus`): a kcov-like edge tracer over the
   verifier's code provides feedback; interesting programs are kept
   and mutated.

Baselines for the paper's comparisons (Syzkaller, Buzzer) live in
:mod:`repro.fuzz.baselines`.
"""

from repro.fuzz.campaign import Campaign, CampaignConfig, CampaignResult
from repro.fuzz.coverage import VerifierCoverage
from repro.fuzz.generator import GeneratorConfig, StructuredGenerator
from repro.fuzz.oracle import BugFinding, Oracle

__all__ = [
    "Campaign",
    "CampaignConfig",
    "CampaignResult",
    "VerifierCoverage",
    "GeneratorConfig",
    "StructuredGenerator",
    "BugFinding",
    "Oracle",
]
