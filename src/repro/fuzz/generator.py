"""BVF's structured program generator (Section 4.1, Figure 4).

Programs are assembled from three top-level sections:

- the **init header** loads interesting initial states into registers
  (map fds, direct map values, BTF object addresses, random 64-bit
  immediates, the frame pointer) and preserves the context pointer;
- the **framed body** repeatedly picks one of three frame kinds with
  equal probability: *basic* frames (ALU, stack traffic, map/ctx/BTF/
  packet accesses), *jump* frames (forward branches over nested frames
  and bounded back-edge loops with an immediate-bounded loop
  variable), and *call* frames (helper, kfunc, and bpf-to-bpf calls
  with prototype-driven argument setup);
- the **end section** provides the valid exit.

Lightweight register tagging (:class:`~repro.fuzz.structure.GenState`)
keeps emitted operations mostly valid; a configurable "unsafe" knob
occasionally drops a required null check or bound so rejection paths
and flawed acceptance paths both get probed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.ebpf import asm
from repro.ebpf.helpers import ArgType, HelperId, HelperProto, RetType
from repro.ebpf.kfuncs import KFUNC_GET_TASK, KFUNC_RAND, KFUNC_TASK_PID
from repro.ebpf.maps import BpfMap, MapType
from repro.ebpf.opcodes import AluOp, AtomicOp, JmpOp, Reg, Size, BYTES_TO_SIZE
from repro.ebpf.program import CONTEXTS, PACKET_ACCESS_TYPES, ProgType
from repro.fuzz.rng import FuzzRng
from repro.fuzz.structure import (
    ExecutionPlan,
    GeneratedProgram,
    GenState,
    RegTag,
)

__all__ = ["GeneratorConfig", "StructuredGenerator"]

_SIZES = (1, 2, 4, 8)
_ALU_OPS = (
    AluOp.ADD,
    AluOp.SUB,
    AluOp.MUL,
    AluOp.DIV,
    AluOp.MOD,
    AluOp.OR,
    AluOp.AND,
    AluOp.XOR,
    AluOp.LSH,
    AluOp.RSH,
    AluOp.ARSH,
)
_CMP_OPS = (
    JmpOp.JEQ,
    JmpOp.JNE,
    JmpOp.JGT,
    JmpOp.JGE,
    JmpOp.JLT,
    JmpOp.JLE,
    JmpOp.JSGT,
    JmpOp.JSGE,
    JmpOp.JSLT,
    JmpOp.JSLE,
    JmpOp.JSET,
)

_PROG_TYPE_WEIGHTS = (
    (ProgType.KPROBE, 30),
    (ProgType.SOCKET_FILTER, 18),
    (ProgType.XDP, 14),
    (ProgType.SCHED_CLS, 10),
    (ProgType.TRACEPOINT, 12),
    (ProgType.PERF_EVENT, 10),
    (ProgType.RAW_TRACEPOINT, 6),
)

#: Map classes each map-taking helper accepts.
_KEYED_MAPS = frozenset({MapType.HASH, MapType.ARRAY, MapType.LRU_HASH,
                         MapType.PERCPU_HASH, MapType.PERCPU_ARRAY})
_QUEUE_MAPS = frozenset({MapType.QUEUE, MapType.STACK})
_HELPER_MAP_CLASS = {
    int(HelperId.MAP_LOOKUP_ELEM): _KEYED_MAPS,
    int(HelperId.MAP_UPDATE_ELEM): _KEYED_MAPS,
    int(HelperId.MAP_DELETE_ELEM): frozenset({MapType.HASH, MapType.LRU_HASH,
                                              MapType.PERCPU_HASH}),
    int(HelperId.MAP_PUSH_ELEM): _QUEUE_MAPS,
    int(HelperId.MAP_POP_ELEM): _QUEUE_MAPS,
    int(HelperId.MAP_PEEK_ELEM): _QUEUE_MAPS,
    int(HelperId.RINGBUF_OUTPUT): frozenset({MapType.RINGBUF}),
}


@dataclass
class GeneratorConfig:
    """Knobs for structured generation (ablation-friendly)."""

    #: use the Figure-4 structure; False degrades to flat random
    #: emission from the same instruction pool (the ablation baseline)
    use_structure: bool = True
    min_body_frames: int = 2
    max_body_frames: int = 6
    basic_ops_min: int = 1
    basic_ops_max: int = 5
    #: probability of null-checking an OR_NULL helper return
    p_null_check: float = 0.82
    #: probability a jump frame is a bounded back-edge loop
    p_back_edge: float = 0.18
    #: probability a call frame targets a bpf-to-bpf subprogram
    p_subprog: float = 0.08
    #: probability a call frame targets a kfunc (when supported)
    p_kfunc: float = 0.15
    #: probability of deliberately emitting a risky operation
    p_unsafe: float = 0.12
    #: probability of the pointer-compare "null check" (Bug #1 fodder)
    p_ptr_compare_check: float = 0.15
    #: probability of the stale-R0-index pattern around kfunc calls
    p_kfunc_index: float = 0.4
    #: probability of generating an oversized program (Bug #8 fodder)
    p_large: float = 0.05
    #: probability an XDP program requests device offload (Bug #11)
    p_offload: float = 0.25
    max_loop_iters: int = 8
    max_jump_depth: int = 2
    #: maps created per program
    min_maps: int = 1
    max_maps: int = 3


class StructuredGenerator:
    """Generates one program per :meth:`generate` call.

    The generator itself is campaign-lived: constructing one is cheap
    but not free, and campaigns generate hundreds of thousands of
    programs, so the driver builds a single instance and rebinds it to
    each iteration's fresh :class:`~repro.kernel.syscall.Kernel` via
    the ``kernel`` argument of :meth:`generate`.  All per-program state
    (stack cursor, risk knobs) is reset at the top of every call, so a
    reused generator emits exactly the stream a fresh one would.
    """

    name = "bvf"

    def __init__(self, kernel, rng: FuzzRng, config: GeneratorConfig | None = None):
        self.kernel = kernel
        self.rng = rng
        self.config = config or GeneratorConfig()
        self._stack_cursor = -8
        self._p_unsafe = self.config.p_unsafe
        self._p_null_check = self.config.p_null_check

    # ------------------------------------------------------------------ api --

    def generate(self, kernel=None) -> GeneratedProgram:
        if kernel is not None:
            self.kernel = kernel
        if self.kernel is None:
            raise ValueError("generate() needs a kernel (none bound yet)")
        rng = self.rng
        self._stack_cursor = -8
        self._p_unsafe = self.config.p_unsafe
        self._p_null_check = self.config.p_null_check
        prog_type = rng.pick_weighted(
            [p for p, _ in _PROG_TYPE_WEIGHTS], [w for _, w in _PROG_TYPE_WEIGHTS]
        )
        st = GenState(prog_type=prog_type)
        self._stack_cursor = -8
        self._create_resources(st)

        if self.config.use_structure:
            self._init_header(st)
            if rng.chance(self.config.p_large):
                # Oversized programs stress the syscall duplication
                # paths (Bug #8) and simulate unrolled hot loops.  The
                # per-operation risk budget is scaled down so some of
                # them actually load (a long program with the default
                # risk rate almost always contains a rejected probe).
                n_frames = rng.randint(15, 35)
                self._p_unsafe = 0.0
                self._p_null_check = 0.99
            else:
                n_frames = rng.randint(
                    self.config.min_body_frames, self.config.max_body_frames
                )
                self._p_unsafe = self.config.p_unsafe
                self._p_null_check = self.config.p_null_check
            frame_kinds: list[str] = []
            for _ in range(n_frames):
                kind = rng.pick(("basic", "jump", "call"))
                frame_kinds.append(kind)
                if kind == "basic":
                    self._basic_frame(st)
                elif kind == "call":
                    self._call_frame(st)
                else:
                    self._jump_frame(st, depth=0)
            self._end_section(st)
            self._emit_subprogs(st)
        else:
            frame_kinds = ["flat"]
            self._flat_body(st)

        plan = self._make_plan(st)
        if len(st.insns) > 200:
            plan.query_info = True
        offload = None
        if prog_type == ProgType.XDP and rng.chance(self.config.p_offload):
            offload = "netdev0"
        rec = obs.recorder()
        if rec.enabled:
            rec.event(
                "generator.program",
                origin=self.name,
                prog_type=prog_type.value,
                insns=len(st.insns),
                frames=len(frame_kinds),
            )
        m = obs.metrics()
        m.counter("generator.programs")
        m.observe("generator.program_insns", len(st.insns))
        return GeneratedProgram(
            insns=st.insns,
            prog_type=prog_type,
            maps=st.maps,
            plan=plan,
            origin=self.name,
            offload_dev=offload,
            frame_kinds=tuple(frame_kinds),
        )

    # -------------------------------------------------------------- resources --

    def _create_resources(self, st: GenState) -> None:
        rng = self.rng
        n_maps = rng.randint(self.config.min_maps, self.config.max_maps)
        choices = [
            (MapType.HASH, 38),
            (MapType.ARRAY, 28),
            (MapType.LRU_HASH, 8),
            (MapType.QUEUE, 8),
            (MapType.STACK, 6),
            (MapType.RINGBUF, 8),
            (MapType.PROG_ARRAY, 6),
        ]
        for _ in range(n_maps):
            map_type = rng.pick_weighted(
                [m for m, _ in choices], [w for _, w in choices]
            )
            try:
                if map_type == MapType.RINGBUF:
                    fd = self.kernel.map_create(map_type, 0, 0, 4096)
                elif map_type in _QUEUE_MAPS:
                    fd = self.kernel.map_create(
                        map_type, 0, rng.pick((8, 16, 32)), rng.pick((4, 8, 16))
                    )
                elif map_type == MapType.PROG_ARRAY:
                    fd = self.kernel.map_create(map_type, 4, 4, rng.pick((2, 4)))
                elif map_type in (MapType.ARRAY, MapType.PERCPU_ARRAY):
                    fd = self.kernel.map_create(
                        map_type, 4, rng.pick((8, 16, 32, 64)), rng.pick((1, 4, 16))
                    )
                else:
                    fd = self.kernel.map_create(
                        map_type,
                        8,
                        rng.pick((8, 16, 32, 64)),
                        rng.pick((4, 16, 64)),
                        has_spin_lock=(
                            map_type == MapType.HASH and rng.chance(0.25)
                        ),
                    )
            except Exception:
                continue
            st.maps.append(self.kernel.map_by_fd(fd))
        if self.kernel.config.has_btf_access:
            st.btf_ids = list(self.kernel.btf.loadable_ids())

    # ------------------------------------------------------------ init header --

    def _init_header(self, st: GenState) -> None:
        rng = self.rng
        # Preserve the context pointer across calls.
        if rng.chance(0.8):
            st.emit(asm.mov64_reg(Reg.R6, Reg.R1))
            st.set_tag(Reg.R6, RegTag(kind="ctx"))
        st.set_tag(Reg.R1, RegTag(kind="ctx"))

        candidates = [Reg.R7, Reg.R8, Reg.R9]
        rng.shuffle(candidates)
        for regno in candidates[: rng.randint(1, 3)]:
            self._emit_loader(st, regno)

    def _emit_loader(self, st: GenState, regno: int) -> None:
        """One init-header loading instruction (Figure 4, part 1)."""
        rng = self.rng
        options = ["imm64", "imm32", "fp"]
        keyed = [m for m in st.maps if m.map_type in _KEYED_MAPS]
        arrays = [m for m in st.maps if m.map_type in (MapType.ARRAY,
                                                       MapType.PERCPU_ARRAY)]
        if st.maps:
            options += ["map_fd", "map_fd"]
        if arrays:
            options += ["map_value"]
        if st.btf_ids:
            options += ["btf_id"]
        choice = rng.pick(options)
        if choice == "imm64":
            st.emit(*asm.ld_imm64(regno, rng.fuzz_u64()))
            st.set_tag(regno, RegTag(kind="scalar"))
        elif choice == "imm32":
            value = rng.fuzz_imm32()
            st.emit(asm.mov64_imm(regno, value))
            st.set_tag(regno, RegTag(kind="const", const=value & ((1 << 64) - 1)))
        elif choice == "fp":
            off = self._alloc_stack(8)
            st.emit(
                asm.mov64_reg(regno, Reg.R10),
                asm.alu64_imm(AluOp.ADD, regno, off),
            )
            st.set_tag(regno, RegTag(kind="stack", stack_off=off))
        elif choice == "map_fd":
            bpf_map = rng.pick(st.maps)
            st.emit(*asm.ld_map_fd(regno, bpf_map.fd))
            st.set_tag(regno, RegTag(kind="map_ptr", map=bpf_map))
        elif choice == "map_value":
            bpf_map = rng.pick(arrays)
            off = rng.randrange(0, bpf_map.value_size, 8)
            st.emit(*asm.ld_map_value(regno, bpf_map.fd, off))
            st.set_tag(regno, RegTag(kind="map_value", map=bpf_map))
        else:  # btf_id
            btf_id = rng.pick(st.btf_ids)
            obj = self.kernel.btf.object(btf_id)
            st.emit(*asm.ld_btf_id(regno, btf_id))
            st.set_tag(regno, RegTag(kind="btf", btf_size=obj.type.size))

    # ------------------------------------------------------------ basic frame --

    def _basic_frame(self, st: GenState) -> None:
        n_ops = self.rng.randint(self.config.basic_ops_min, self.config.basic_ops_max)
        for _ in range(n_ops):
            self._basic_op(st)

    def _basic_op(self, st: GenState) -> None:
        rng = self.rng
        ops = [
            (self._op_alu, 30),
            (self._op_stack_store, 14),
            (self._op_stack_load, 10),
            (self._op_mov, 10),
        ]
        if st.regs_with("map_value"):
            ops.append((self._op_map_value_access, 22))
            ops.append((self._op_atomic, 6))
        if st.regs_with("ctx"):
            ops.append((self._op_ctx_read, 12))
            ops.append((self._op_ctx_write, 4))
            if st.prog_type in PACKET_ACCESS_TYPES:
                ops.append((self._op_packet_probe, 10))
        if st.regs_with("btf"):
            ops.append((self._op_btf_read, 10))
        if st.regs_with("stack"):
            ops.append((self._op_stackptr_access, 8))
        fns = [f for f, _ in ops]
        weights = [w for _, w in ops]
        rng.pick_weighted(fns, weights)(st)

    def _pick_scalar_reg(self, st: GenState) -> int:
        """A register holding a scalar, materialising one if needed."""
        regs = st.regs_with("scalar", "const")
        if regs and not self.rng.chance(0.2):
            return self.rng.pick(regs)
        scratch = st.scratch_regs() or [Reg.R0]
        regno = self.rng.pick(scratch)
        value = self.rng.fuzz_imm32()
        st.emit(asm.mov64_imm(regno, value))
        st.set_tag(regno, RegTag(kind="const", const=value & ((1 << 64) - 1)))
        return regno

    def _op_alu(self, st: GenState) -> None:
        rng = self.rng
        dst = self._pick_scalar_reg(st)
        op = rng.pick(_ALU_OPS)
        is64 = rng.chance(0.7)
        bits = 64 if is64 else 32
        alu_imm = asm.alu64_imm if is64 else asm.alu32_imm
        alu_reg = asm.alu64_reg if is64 else asm.alu32_reg
        if rng.chance(0.6):
            if op in (AluOp.LSH, AluOp.RSH, AluOp.ARSH):
                imm = rng.randint(0, bits - 1)
            elif op in (AluOp.DIV, AluOp.MOD):
                imm = rng.randint(1, 1 << 16)
            else:
                imm = rng.fuzz_imm32()
            st.emit(alu_imm(op, dst, imm))
        else:
            src = self._pick_scalar_reg(st)
            st.emit(alu_reg(op, dst, src))
        st.set_tag(dst, RegTag(kind="scalar"))

    def _op_mov(self, st: GenState) -> None:
        rng = self.rng
        usable = [r for r in range(10) if st.tag(r).usable()]
        scratch = st.scratch_regs()
        if not usable or not scratch:
            return self._op_alu(st)
        src = rng.pick(usable)
        dst = rng.pick(scratch)
        if dst == src:
            return self._op_alu(st)
        st.emit(asm.mov64_reg(dst, src))
        st.set_tag(dst, st.tag(src).clone())

    def _op_stack_store(self, st: GenState) -> None:
        rng = self.rng
        off = self._alloc_stack(8)
        if rng.chance(0.6):
            size = rng.pick(_SIZES)
            st.emit(asm.st_mem(BYTES_TO_SIZE[size], Reg.R10, off, rng.fuzz_imm32()))
            if size == 8:
                st.stack_inited.add(off)
        else:
            src = self._pick_scalar_reg(st)
            st.emit(asm.stx_mem(Size.DW, Reg.R10, src, off))
            st.stack_inited.add(off)

    def _op_stack_load(self, st: GenState) -> None:
        if not st.stack_inited:
            return self._op_stack_store(st)
        rng = self.rng
        off = rng.pick(sorted(st.stack_inited))
        scratch = st.scratch_regs() or [Reg.R0]
        dst = rng.pick(scratch)
        st.emit(asm.ldx_mem(Size.DW, dst, Reg.R10, off))
        st.set_tag(dst, RegTag(kind="scalar"))

    def _op_stackptr_access(self, st: GenState) -> None:
        rng = self.rng
        regs = st.regs_with("stack")
        if not regs:
            return self._op_stack_store(st)
        regno = rng.pick(regs)
        tag = st.tag(regno)
        st.emit(asm.st_mem(Size.DW, regno, 0, rng.fuzz_imm32()))
        st.stack_inited.add(tag.stack_off)

    def _op_map_value_access(self, st: GenState) -> None:
        rng = self.rng
        regs = st.regs_with("map_value")
        regno = rng.pick(regs)
        bpf_map = st.tag(regno).map
        size = rng.pick(_SIZES)
        # The embedded bpf_spin_lock region is untouchable.
        min_off = 8 if getattr(bpf_map, "has_spin_lock", False) else 0
        max_off = bpf_map.value_size - size
        if max_off < min_off:
            return
        off = rng.fuzz_int(min_off, max_off)
        if self.rng.chance(self._p_unsafe):
            off = bpf_map.value_size + rng.randint(0, 8)  # deliberately OOB
        if rng.chance(0.5):
            scratch = st.scratch_regs() or [Reg.R0]
            dst = rng.pick(scratch)
            st.emit(asm.ldx_mem(BYTES_TO_SIZE[size], dst, regno, off))
            st.set_tag(dst, RegTag(kind="scalar"))
        elif rng.chance(0.6):
            st.emit(asm.st_mem(BYTES_TO_SIZE[size], regno, off, rng.fuzz_imm32()))
        else:
            src = self._pick_scalar_reg(st)
            st.emit(asm.stx_mem(BYTES_TO_SIZE[size], regno, src, off))

    def _op_atomic(self, st: GenState) -> None:
        rng = self.rng
        regs = st.regs_with("map_value")
        if not regs:
            return self._op_alu(st)
        regno = rng.pick(regs)
        bpf_map = st.tag(regno).map
        size = rng.pick((4, 8))
        min_off = 8 if getattr(bpf_map, "has_spin_lock", False) else 0
        if bpf_map.value_size - size < min_off:
            return
        off = rng.randrange(min_off, bpf_map.value_size - size + 1, size)
        src = self._pick_scalar_reg(st)
        op = rng.pick(
            (
                AtomicOp.ADD,
                AtomicOp.OR,
                AtomicOp.AND,
                AtomicOp.XOR,
                AtomicOp.ADD | AtomicOp.FETCH,
                AtomicOp.XCHG,
            )
        )
        st.emit(asm.atomic_op(BYTES_TO_SIZE[size], op, regno, src, off))
        if op & AtomicOp.FETCH:
            st.set_tag(src, RegTag(kind="scalar"))

    def _ctx_reg(self, st: GenState) -> int | None:
        regs = st.regs_with("ctx")
        return self.rng.pick(regs) if regs else None

    def _op_ctx_read(self, st: GenState) -> None:
        rng = self.rng
        ctx_reg = self._ctx_reg(st)
        if ctx_reg is None:
            return self._op_alu(st)
        descriptor = CONTEXTS[st.prog_type]
        fields = [f for f in descriptor.fields if f.readable and f.special is None]
        scratch = st.scratch_regs() or [Reg.R0]
        dst = rng.pick(scratch)
        if fields:
            f = rng.pick(fields)
            st.emit(asm.ldx_mem(BYTES_TO_SIZE[f.size], dst, ctx_reg, f.offset))
        elif descriptor.raw_readable:
            size = rng.pick(_SIZES)
            off = rng.randrange(0, descriptor.size - size + 1, size)
            st.emit(asm.ldx_mem(BYTES_TO_SIZE[size], dst, ctx_reg, off))
        else:
            return self._op_alu(st)
        st.set_tag(dst, RegTag(kind="scalar"))

    def _op_ctx_write(self, st: GenState) -> None:
        rng = self.rng
        ctx_reg = self._ctx_reg(st)
        if ctx_reg is None:
            return self._op_alu(st)
        descriptor = CONTEXTS[st.prog_type]
        fields = [f for f in descriptor.fields if f.writable]
        if not fields:
            return self._op_ctx_read(st)
        f = rng.pick(fields)
        st.emit(asm.st_mem(BYTES_TO_SIZE[f.size], ctx_reg, f.offset, rng.fuzz_imm32()))

    def _op_btf_read(self, st: GenState) -> None:
        rng = self.rng
        regs = st.regs_with("btf")
        regno = rng.pick(regs)
        size = st.tag(regno).btf_size or 8
        access = rng.pick(_SIZES)
        max_off = size - access
        if max_off < 0:
            return
        off = rng.randrange(0, max_off + 1, access)
        if rng.chance(self._p_unsafe):
            off = size  # deliberately at/past the end (Bug #2 probe)
        scratch = st.scratch_regs() or [Reg.R0]
        dst = rng.pick(scratch)
        st.emit(asm.ldx_mem(BYTES_TO_SIZE[access], dst, regno, off))
        st.set_tag(dst, RegTag(kind="scalar"))

    def _op_packet_probe(self, st: GenState) -> None:
        """The classic bounded direct-packet-access pattern."""
        rng = self.rng
        ctx_reg = self._ctx_reg(st)
        if ctx_reg is None:
            return self._op_alu(st)
        descriptor = CONTEXTS[st.prog_type]
        data_f = next((f for f in descriptor.fields if f.special == "pkt_data"), None)
        end_f = next((f for f in descriptor.fields if f.special == "pkt_end"), None)
        if data_f is None or end_f is None:
            return self._op_alu(st)
        scratch = st.scratch_regs()
        if len(scratch) < 3:
            return self._op_alu(st)
        rng.shuffle(scratch)
        r_data, r_end, r_tmp = scratch[:3]
        n = rng.pick((2, 4, 8, 14, 20, 34))
        st.emit(
            asm.ldx_mem(Size.W, r_data, ctx_reg, data_f.offset),
            asm.ldx_mem(Size.W, r_end, ctx_reg, end_f.offset),
            asm.mov64_reg(r_tmp, r_data),
            asm.alu64_imm(AluOp.ADD, r_tmp, n),
        )
        # Guarded accesses; the guard skips them when the packet is short.
        accesses = []
        for _ in range(rng.randint(1, 3)):
            size = rng.pick([s for s in _SIZES if s <= n])
            off = rng.randrange(0, n - size + 1)
            accesses.append(asm.ldx_mem(BYTES_TO_SIZE[size], r_tmp, r_data, off))
        guarded = rng.chance(1.0 - self._p_unsafe)
        if guarded:
            st.emit(asm.jmp_reg(JmpOp.JGT, r_tmp, r_end, len(accesses)))
        st.emit(*accesses)
        for r in (r_data, r_end, r_tmp):
            st.set_tag(r, RegTag(kind="poison"))

    # ------------------------------------------------------------- call frame --

    def _call_frame(self, st: GenState) -> None:
        rng = self.rng
        if (
            self.kernel.config.has_kfuncs
            and rng.chance(self.config.p_kfunc)
        ):
            return self._kfunc_call(st)
        if rng.chance(self.config.p_subprog):
            return self._subprog_call(st)
        ringbufs = [m for m in st.maps if m.map_type == MapType.RINGBUF]
        if ringbufs and rng.chance(0.15):
            return self._ringbuf_reserve_frame(st, rng.pick(ringbufs))
        locky = [m for m in st.maps if getattr(m, "has_spin_lock", False)]
        if locky and rng.chance(0.15):
            return self._spin_lock_frame(st, rng.pick(locky))
        prog_arrays = [m for m in st.maps if m.map_type == MapType.PROG_ARRAY]
        if prog_arrays and st.regs_with("ctx") and rng.chance(0.15):
            return self._tail_call_frame(st, rng.pick(prog_arrays))
        self._helper_call(st)

    def _tail_call_frame(self, st: GenState, prog_array: BpfMap) -> None:
        """``bpf_tail_call(ctx, prog_array, index)``.

        The slots are empty during fuzzing, so the call falls through at
        runtime — but the verifier still checks the full call site, and
        user space may populate slots between runs.
        """
        rng = self.rng
        ctx_reg = self._ctx_reg(st)
        st.emit(
            asm.mov64_reg(Reg.R1, ctx_reg),
            *asm.ld_map_fd(Reg.R2, prog_array.fd),
            asm.mov64_imm(Reg.R3, rng.randint(0, prog_array.max_entries)),
            asm.call_helper(int(HelperId.TAIL_CALL)),
        )
        st.clobber_caller_saved()
        st.set_tag(Reg.R0, RegTag(kind="scalar"))

    def _spin_lock_frame(self, st: GenState, bpf_map: BpfMap) -> None:
        """lookup -> null check -> lock -> update value -> unlock."""
        rng = self.rng
        self._emit_stack_region(st, Reg.R2, bpf_map.key_size, init=True)
        st.emit(*asm.ld_map_fd(Reg.R1, bpf_map.fd))
        st.emit(asm.call_helper(int(HelperId.MAP_LOOKUP_ELEM)))
        st.clobber_caller_saved()
        st.emit(
            asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),
            asm.mov64_imm(Reg.R0, 0),
            asm.exit_insn(),
        )
        forget_unlock = rng.chance(self._p_unsafe)
        st.emit(
            asm.mov64_reg(Reg.R6, Reg.R0),
            asm.mov64_reg(Reg.R1, Reg.R0),
            asm.call_helper(int(HelperId.SPIN_LOCK)),
        )
        # Critical section: plain stores past the lock region.
        for _ in range(rng.randint(1, 2)):
            size = rng.pick((4, 8))
            max_off = bpf_map.value_size - size
            if max_off < 8:
                break
            off = rng.randrange(8, max_off + 1, size)
            st.emit(asm.st_mem(BYTES_TO_SIZE[size], Reg.R6, off, rng.fuzz_imm32()))
        if not forget_unlock:
            st.emit(
                asm.mov64_reg(Reg.R1, Reg.R6),
                asm.call_helper(int(HelperId.SPIN_UNLOCK)),
            )
        st.clobber_caller_saved()
        st.set_tag(Reg.R6, RegTag(kind="map_value", map=bpf_map))

    def _ringbuf_reserve_frame(self, st: GenState, ringbuf: BpfMap) -> None:
        """reserve -> null check -> write record -> submit/discard.

        With probability ``p_unsafe`` the release is "forgotten" —
        probing the verifier's reference tracking (such programs are
        rejected by a correct verifier).
        """
        rng = self.rng
        size = rng.pick((8, 16, 32))
        st.emit(
            *asm.ld_map_fd(Reg.R1, ringbuf.fd),
            asm.mov64_imm(Reg.R2, size),
            asm.mov64_imm(Reg.R3, 0),
            asm.call_helper(int(HelperId.RINGBUF_RESERVE)),
        )
        st.clobber_caller_saved()
        leak = rng.chance(self._p_unsafe)
        record_ops = []
        for _ in range(rng.randint(1, 2)):
            access = rng.pick([s for s in _SIZES if s <= size])
            off = rng.randrange(0, size - access + 1, access)
            record_ops.append(
                asm.st_mem(BYTES_TO_SIZE[access], Reg.R0, off, rng.fuzz_imm32())
            )
        release = rng.pick(
            (int(HelperId.RINGBUF_SUBMIT), int(HelperId.RINGBUF_DISCARD))
        )
        tail = [] if leak else [
            asm.mov64_reg(Reg.R1, Reg.R0),
            asm.mov64_imm(Reg.R2, 0),
            asm.call_helper(release),
        ]
        body = record_ops + tail
        # Null path: nothing reserved, nothing to release.
        st.emit(asm.jmp_imm(JmpOp.JEQ, Reg.R0, 0, len(body)))
        st.emit(*body)
        st.clobber_caller_saved()

    def _candidate_helpers(self, st: GenState) -> list[HelperProto]:
        result = []
        for hid in self.kernel.helpers.ids_for_prog_type(st.prog_type.value):
            proto = self.kernel.helpers.get(hid)
            # Acquire/release and spin-lock helpers need their paired
            # protocol; they are emitted by the dedicated frames.
            if proto.acquires_ref or proto.releases_ref:
                continue
            if ArgType.PTR_TO_SPIN_LOCK in proto.args:
                continue
            map_class = _HELPER_MAP_CLASS.get(hid)
            if map_class is None and proto.map_types is not None:
                map_class = proto.map_types
            if map_class is not None and not any(
                m.map_type in map_class for m in st.maps
            ):
                continue
            if ArgType.PTR_TO_CTX in proto.args and not st.regs_with("ctx"):
                continue
            if ArgType.PTR_TO_BTF_ID in proto.args and not st.regs_with("btf"):
                continue
            result.append(proto)
        return result

    def _helper_call(self, st: GenState) -> None:
        rng = self.rng
        candidates = self._candidate_helpers(st)
        if not candidates:
            return self._basic_frame(st)
        # Weighting: map lookups/updates dominate real programs (and
        # exercise the verifier's nullable-pointer logic); in restricted
        # execution contexts (NMI-like program types), helpers with
        # context constraints get probed preferentially.
        def weight(p: HelperProto) -> float:
            if p.nmi_unsafe and st.prog_type == ProgType.PERF_EVENT:
                return 4.0
            if p.helper_id == HelperId.MAP_LOOKUP_ELEM:
                return 5.0
            if p.helper_id == HelperId.MAP_UPDATE_ELEM:
                return 2.0
            return 1.0

        proto = rng.pick_weighted(candidates, [weight(p) for p in candidates])
        meta_map = self._emit_args(st, proto)
        st.emit(asm.call_helper(int(proto.helper_id)))
        st.clobber_caller_saved()
        self._handle_return(st, proto, meta_map)

    def _emit_args(self, st: GenState, proto: HelperProto) -> BpfMap | None:
        rng = self.rng
        meta_map: BpfMap | None = None
        pending_region = 0
        map_class = _HELPER_MAP_CLASS.get(int(proto.helper_id))
        if map_class is None and proto.map_types is not None:
            map_class = proto.map_types
        for arg_idx, arg in enumerate(proto.args):
            regno = Reg.R1 + arg_idx
            if arg == ArgType.CONST_MAP_PTR:
                pool = [
                    m
                    for m in st.maps
                    if map_class is None or m.map_type in map_class
                ]
                meta_map = rng.pick(pool) if pool else rng.pick(st.maps)
                st.emit(*asm.ld_map_fd(regno, meta_map.fd))
            elif arg == ArgType.PTR_TO_MAP_KEY:
                size = meta_map.key_size if meta_map else 8
                self._emit_stack_region(st, regno, size, init=True,
                                        array_index=meta_map)
            elif arg == ArgType.PTR_TO_MAP_VALUE:
                size = meta_map.value_size if meta_map else 8
                self._emit_stack_region(st, regno, size, init=True)
            elif arg == ArgType.PTR_TO_UNINIT_MAP_VALUE:
                size = meta_map.value_size if meta_map else 8
                self._emit_stack_region(st, regno, size, init=False)
            elif arg == ArgType.PTR_TO_MEM:
                pending_region = rng.pick((8, 16, 32))
                self._emit_stack_region(st, regno, pending_region, init=True)
            elif arg == ArgType.PTR_TO_UNINIT_MEM:
                pending_region = rng.pick((8, 16, 32))
                self._emit_stack_region(st, regno, pending_region, init=False)
            elif arg in (ArgType.CONST_SIZE, ArgType.CONST_SIZE_OR_ZERO):
                size = pending_region or 8
                st.emit(asm.mov64_imm(regno, size))
            elif arg == ArgType.PTR_TO_CTX:
                ctx_reg = self._ctx_reg(st)
                st.emit(asm.mov64_reg(regno, ctx_reg))
            elif arg == ArgType.PTR_TO_BTF_ID:
                btf_regs = st.regs_with("btf")
                st.emit(asm.mov64_reg(regno, rng.pick(btf_regs)))
            elif arg == ArgType.SCALAR:
                st.emit(asm.mov64_imm(regno, rng.fuzz_imm32()))
            else:  # ANYTHING
                scalars = st.regs_with("scalar", "const")
                if scalars and rng.chance(0.35):
                    st.emit(asm.mov64_reg(regno, rng.pick(scalars)))
                elif rng.chance(0.4):
                    # Small positive values: valid signals, flags, sizes.
                    st.emit(asm.mov64_imm(regno, rng.randint(1, 32)))
                else:
                    st.emit(asm.mov64_imm(regno, rng.fuzz_imm32()))
        return meta_map

    def _emit_stack_region(
        self,
        st: GenState,
        regno: int,
        size: int,
        init: bool,
        array_index: BpfMap | None = None,
    ) -> None:
        """Point ``regno`` at a stack region, initialising it if asked."""
        rng = self.rng
        aligned = -(-size // 8) * 8
        off = self._alloc_stack(aligned)
        if init and rng.chance(self._p_unsafe):
            init = False  # "forget" the initialisation, probing the checks
        if init:
            if array_index is not None and array_index.key_size == 4:
                index = rng.randint(0, max(array_index.max_entries - 1, 0))
                if rng.chance(self._p_unsafe):
                    index = array_index.max_entries + rng.randint(0, 4)
                st.emit(asm.st_mem(Size.W, Reg.R10, off, index))
            else:
                for slot in range(0, aligned, 8):
                    st.emit(
                        asm.st_mem(Size.DW, Reg.R10, off + slot, rng.fuzz_imm32())
                    )
                    st.stack_inited.add(off + slot)
        st.emit(
            asm.mov64_reg(regno, Reg.R10),
            asm.alu64_imm(AluOp.ADD, regno, off),
        )

    def _handle_return(
        self, st: GenState, proto: HelperProto, meta_map: BpfMap | None
    ) -> None:
        rng = self.rng
        if proto.ret == RetType.PTR_TO_MAP_VALUE_OR_NULL:
            ptr_regs = [
                r
                for r in range(6, 10)
                if st.tag(r).kind in ("btf", "map_value", "stack")
            ]
            # Prefer BTF pointers: comparing a nullable pointer against
            # one is exactly the Listing-2 shape (Bug #1 fodder).
            ptr_regs.sort(key=lambda r: st.tag(r).kind != "btf")
            if rng.chance(0.1):
                # Pointer arithmetic *before* the null check — legal-
                # looking, but on pre-fix kernels (CVE-2022-23222) the
                # offset survives into the "non-null" branch.
                delta = rng.pick((1, 4, 8, 16))
                scratch = [r for r in st.scratch_regs() if r != 0] or [Reg.R5]
                dst = rng.pick(scratch)
                st.emit(
                    asm.alu64_imm(AluOp.ADD, Reg.R0, delta),
                    asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),
                    asm.mov64_imm(Reg.R0, 0),
                    asm.exit_insn(),
                    asm.ldx_mem(Size.DW, dst, Reg.R0, 0),
                )
                st.set_tag(dst, RegTag(kind="poison"))
                st.set_tag(Reg.R0, RegTag(kind="poison"))
            elif ptr_regs and rng.chance(self.config.p_ptr_compare_check):
                other = ptr_regs[0]
                scratch = [r for r in st.scratch_regs() if r != 0] or [Reg.R5]
                dst = rng.pick(scratch)
                st.emit(
                    asm.jmp_reg(JmpOp.JEQ, Reg.R0, other, 1),
                    asm.ja(1),
                    # equal path: "proven" non-null, dereference it
                    asm.ldx_mem(Size.DW, dst, Reg.R0, 0),
                )
                st.set_tag(dst, RegTag(kind="poison"))
                st.set_tag(Reg.R0, RegTag(kind="poison"))
            elif rng.chance(self._p_null_check):
                st.emit(
                    asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),
                    asm.mov64_imm(Reg.R0, 0),
                    asm.exit_insn(),
                )
                st.set_tag(Reg.R0, RegTag(kind="map_value", map=meta_map))
            else:
                st.set_tag(Reg.R0, RegTag(kind="map_value_or_null", map=meta_map))
                if rng.chance(0.5):
                    # Deliberately dereference without the null check —
                    # probing the verifier's nullness machinery.
                    scratch = [r for r in st.scratch_regs() if r != 0] or [Reg.R5]
                    dst = rng.pick(scratch)
                    st.emit(asm.ldx_mem(Size.DW, dst, Reg.R0, 0))
                    st.set_tag(dst, RegTag(kind="poison"))
        elif proto.ret == RetType.PTR_TO_BTF_ID:
            st.set_tag(Reg.R0, RegTag(kind="btf", btf_size=128))
        else:
            st.set_tag(Reg.R0, RegTag(kind="scalar"))

    def _kfunc_call(self, st: GenState) -> None:
        rng = self.rng
        options = [KFUNC_RAND, KFUNC_GET_TASK]
        if st.regs_with("btf"):
            options.append(KFUNC_TASK_PID)
        kfunc = rng.pick(options)

        # Bounded-scalar-in-R0-across-the-call pattern: a verifier that
        # keeps stale R0 knowledge (Bug #3) accepts the indexed access.
        map_values = st.regs_with("map_value")
        if (
            kfunc == KFUNC_RAND
            and map_values
            and rng.chance(self.config.p_kfunc_index)
        ):
            victim = rng.pick(map_values)
            vmap = st.tag(victim).map
            bound = min(max(vmap.value_size - 1, 0), 7)
            scratch = [
                r for r in st.scratch_regs() if r not in (victim, Reg.R0)
            ]
            if scratch:
                tmp = rng.pick(scratch)
                st.emit(
                    asm.mov64_imm(Reg.R0, rng.randint(0, bound)),
                    asm.call_kfunc(kfunc),
                    asm.mov64_reg(tmp, victim),
                    asm.alu64_reg(AluOp.ADD, tmp, Reg.R0),
                    asm.ldx_mem(Size.B, tmp, tmp, 0),
                )
                st.clobber_caller_saved()
                st.set_tag(tmp, RegTag(kind="poison"))
                return

        if kfunc == KFUNC_TASK_PID:
            st.emit(asm.mov64_reg(Reg.R1, rng.pick(st.regs_with("btf"))))
        st.emit(asm.call_kfunc(kfunc))
        st.clobber_caller_saved()
        if kfunc == KFUNC_GET_TASK:
            st.set_tag(Reg.R0, RegTag(kind="btf", btf_size=128))
        else:
            st.set_tag(Reg.R0, RegTag(kind="scalar"))

    def _subprog_call(self, st: GenState) -> None:
        rng = self.rng
        st.emit(asm.mov64_imm(Reg.R1, rng.fuzz_imm32()))
        body = [
            asm.mov64_reg(Reg.R0, Reg.R1),
            asm.alu64_imm(rng.pick((AluOp.ADD, AluOp.XOR, AluOp.MUL)),
                          Reg.R0, rng.fuzz_imm32()),
            asm.exit_insn(),
        ]
        call_idx = len(st.insns)
        st.emit(asm.call_subprog(0))  # patched at finalisation
        st.subprog_calls[call_idx] = len(st.subprogs)
        st.subprogs.append(body)
        st.clobber_caller_saved()
        st.set_tag(Reg.R0, RegTag(kind="scalar"))

    # -------------------------------------------------------------- jump frame --

    def _jump_frame(self, st: GenState, depth: int) -> None:
        rng = self.rng
        if rng.chance(self.config.p_back_edge):
            return self._back_edge_loop(st)

        cond_reg = self._pick_scalar_reg(st)
        op = rng.pick(_CMP_OPS)
        before = st.snapshot_tags()
        saved = st.insns
        st.insns = []
        n_inner = rng.randint(1, 2)
        for _ in range(n_inner):
            if depth < self.config.max_jump_depth and rng.chance(0.3):
                self._jump_frame(st, depth + 1)
            elif rng.chance(0.35):
                self._helper_call(st)
            else:
                self._basic_frame(st)
        body = st.insns
        st.insns = saved
        # Taken branch skips the body.
        if rng.chance(0.6):
            st.emit(asm.jmp_imm(op, cond_reg, rng.fuzz_imm32(), len(body)))
        else:
            rhs = self._pick_scalar_reg(st)
            st.emit(asm.jmp_reg(op, cond_reg, rhs, len(body)))
        st.emit(*body)
        st.merge_tags(before)

    def _back_edge_loop(self, st: GenState) -> None:
        rng = self.rng
        scratch = st.scratch_regs()
        if not scratch:
            return self._basic_frame(st)
        loop_var = rng.pick(scratch)
        st.emit(asm.mov64_imm(loop_var, 0))
        st.set_tag(loop_var, RegTag(kind="scalar"))
        before = st.snapshot_tags()
        saved = st.insns
        st.insns = []
        # A small body that leaves the loop variable alone.
        for _ in range(rng.randint(1, 3)):
            dst = self._pick_scalar_reg(st)
            if dst == loop_var:
                dst = Reg.R0 if loop_var != Reg.R0 else Reg.R5
                st.emit(asm.mov64_imm(dst, rng.fuzz_imm32()))
                st.set_tag(dst, RegTag(kind="scalar"))
            op = rng.pick((AluOp.ADD, AluOp.XOR, AluOp.AND, AluOp.OR))
            st.emit(asm.alu64_imm(op, dst, rng.fuzz_imm32()))
        body = st.insns
        st.insns = saved
        bound = rng.randint(1, self.config.max_loop_iters)
        st.emit(*body)
        st.emit(asm.alu64_imm(AluOp.ADD, loop_var, 1))
        # Back edge: offset is negative, operands are register+constant
        # with an immediate bound (the paper's unbounded-loop guard).
        back = -(len(body) + 2)
        st.emit(asm.jmp_imm(JmpOp.JLT, loop_var, bound, back))
        st.merge_tags(before)
        st.set_tag(loop_var, RegTag(kind="scalar"))

    # -------------------------------------------------------------- end / flat --

    def _end_section(self, st: GenState) -> None:
        st.emit(asm.mov64_imm(Reg.R0, self.rng.randint(0, 2)), asm.exit_insn())

    def _emit_subprogs(self, st: GenState) -> None:
        for call_idx, subprog_idx in st.subprog_calls.items():
            start = len(st.insns)
            st.insns.extend(st.subprogs[subprog_idx])
            st.insns[call_idx] = st.insns[call_idx].with_(
                imm=start - call_idx - 1
            )
        st.subprog_calls.clear()

    def _flat_body(self, st: GenState) -> None:
        """Ablation mode: same operation pool, no structure or tracking."""
        rng = self.rng
        st.set_tag(Reg.R1, RegTag(kind="ctx"))
        for _ in range(rng.randint(4, 24)):
            # Random tags are assigned blindly: no init header, no
            # ordering discipline — most programs are rejected.
            regno = rng.randrange(10)
            st.set_tag(regno, RegTag(kind=rng.pick(("scalar", "uninit"))))
            self._basic_op(st)
        self._end_section(st)

    # --------------------------------------------------------------------- misc --

    def _alloc_stack(self, size: int) -> int:
        """Carve a fresh (8-aligned) stack region, wrapping when full."""
        aligned = -(-size // 8) * 8
        self._stack_cursor -= aligned
        if self._stack_cursor < -448:
            self._stack_cursor = -8 - aligned
        return self._stack_cursor

    def _make_plan(self, st: GenState) -> ExecutionPlan:
        rng = self.rng
        plan = ExecutionPlan(n_runs=rng.randint(1, 2))
        if st.prog_type in (
            ProgType.KPROBE,
            ProgType.TRACEPOINT,
            ProgType.RAW_TRACEPOINT,
            ProgType.PERF_EVENT,
        ) and rng.chance(0.6):
            plan.attach_tracepoint = rng.pick(self.kernel.tracepoints.names())
        if st.prog_type == ProgType.XDP and rng.chance(0.6):
            plan.use_dispatcher = True
        for bpf_map in st.maps:
            if bpf_map.key_size and rng.chance(0.5):
                for _ in range(rng.randint(1, 4)):
                    key = bytes(
                        rng.getrandbits(8) for _ in range(bpf_map.key_size)
                    )
                    plan.map_ops.append((rng.pick(("update", "lookup")), key))
                if rng.chance(0.5):
                    plan.map_ops.append(("iterate", b""))
        plan.query_info = rng.chance(0.3)
        return plan
