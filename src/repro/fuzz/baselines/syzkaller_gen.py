"""Syzkaller-style program generation.

Syzkaller generates ``bpf()`` calls from its system-call descriptions:
the *encoding* of each instruction is valid (known opcodes, in-range
register fields — the descriptions guarantee that much) and its seed
corpus contains small working patterns, but there is no semantic
register tracking, so generated programs routinely use uninitialised
registers, dereference scalars, and miss null checks — which is why
the paper measures a 23.5% acceptance rate dominated by EACCES/EINVAL
rejections.

We model that as a mixture: description-derived templates (which
mostly pass) plus random well-formed instruction sequences (which
mostly fail), with light mutation in between.
"""

from __future__ import annotations

from repro.ebpf import asm
from repro.ebpf.helpers import HelperId
from repro.ebpf.insn import Insn
from repro.ebpf.maps import MapType
from repro.ebpf.opcodes import (
    AluOp,
    InsnClass,
    JmpOp,
    Mode,
    Reg,
    Size,
    Src,
)
from repro.ebpf.program import ProgType
from repro.fuzz.rng import FuzzRng
from repro.fuzz.structure import ExecutionPlan, GeneratedProgram

__all__ = ["SyzkallerGenerator"]

_PROG_TYPES = (
    ProgType.SOCKET_FILTER,
    ProgType.KPROBE,
    ProgType.XDP,
    ProgType.TRACEPOINT,
    ProgType.SCHED_CLS,
    ProgType.PERF_EVENT,
)

_ALU_OPS = (
    AluOp.ADD, AluOp.SUB, AluOp.MUL, AluOp.DIV, AluOp.OR, AluOp.AND,
    AluOp.LSH, AluOp.RSH, AluOp.MOD, AluOp.XOR, AluOp.MOV, AluOp.ARSH,
)
_JMP_OPS = (
    JmpOp.JA, JmpOp.JEQ, JmpOp.JGT, JmpOp.JGE, JmpOp.JSET, JmpOp.JNE,
    JmpOp.JSGT, JmpOp.JSGE, JmpOp.JLT, JmpOp.JLE, JmpOp.JSLT, JmpOp.JSLE,
)
_SIZES = (Size.B, Size.H, Size.W, Size.DW)


class SyzkallerGenerator:
    """Typed-but-unstructured generation (the Syzkaller stand-in)."""

    name = "syzkaller"

    def __init__(self, kernel, rng: FuzzRng, config=None) -> None:
        self.kernel = kernel
        self.rng = rng

    # --- templates (from the descriptions / seed corpus) ---------------------

    def _template_trivial(self) -> list[Insn]:
        return [asm.mov64_imm(Reg.R0, self.rng.randint(0, 2)), asm.exit_insn()]

    def _template_map_lookup(self, fd: int) -> list[Insn]:
        return [
            *asm.ld_map_fd(Reg.R1, fd),
            asm.mov64_reg(Reg.R2, Reg.R10),
            asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
            asm.st_mem(Size.DW, Reg.R2, 0, self.rng.randint(0, 255)),
            asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
            asm.jmp_imm(JmpOp.JEQ, Reg.R0, 0, 1),
            asm.ldx_mem(Size.DW, Reg.R0, Reg.R0, 0),
            asm.mov64_imm(Reg.R0, 0),
            asm.exit_insn(),
        ]

    def _template_stack(self) -> list[Insn]:
        off = -8 * self.rng.randint(1, 8)
        return [
            asm.st_mem(Size.DW, Reg.R10, off, self.rng.fuzz_imm32()),
            asm.ldx_mem(Size.DW, Reg.R0, Reg.R10, off),
            asm.exit_insn(),
        ]

    def _template_helper(self) -> list[Insn]:
        hid = self.rng.pick(
            (HelperId.KTIME_GET_NS, HelperId.GET_PRANDOM_U32,
             HelperId.GET_SMP_PROCESSOR_ID, HelperId.GET_CURRENT_PID_TGID)
        )
        return [
            asm.call_helper(hid),
            asm.exit_insn(),
        ]

    # --- random well-formed instructions -----------------------------------------

    def _random_insn(self) -> list[Insn]:
        rng = self.rng
        kind = rng.pick(("alu", "alu", "mem", "mem", "jmp", "ld64", "call"))
        dst = rng.randrange(11)
        src = rng.randrange(11)
        if kind == "alu":
            op = rng.pick(_ALU_OPS)
            cls = rng.pick((InsnClass.ALU, InsnClass.ALU64))
            if rng.chance(0.5):
                return [Insn(opcode=cls | op | Src.K, dst=dst, imm=rng.fuzz_imm32())]
            return [Insn(opcode=cls | op | Src.X, dst=dst, src=src)]
        if kind == "mem":
            size = rng.pick(_SIZES)
            off = rng.pick((-16, -8, -4, 0, 4, 8, 16, rng.randint(-64, 64)))
            which = rng.pick((InsnClass.LDX, InsnClass.ST, InsnClass.STX))
            if which == InsnClass.LDX:
                return [asm.ldx_mem(size, dst % 11, src % 11, off)]
            if which == InsnClass.ST:
                return [asm.st_mem(size, dst % 11, off, rng.fuzz_imm32())]
            return [asm.stx_mem(size, dst % 11, src % 11, off)]
        if kind == "jmp":
            op = rng.pick(_JMP_OPS)
            off = rng.randint(0, 4)
            if op == JmpOp.JA:
                return [asm.ja(off)]
            if rng.chance(0.5):
                return [asm.jmp_imm(op, dst % 11, rng.fuzz_imm32(), off)]
            return [asm.jmp_reg(op, dst % 11, src % 11, off)]
        if kind == "ld64":
            if rng.chance(0.5) and self.kernel.map_by_fd(3) is not None:
                return list(asm.ld_map_fd(dst % 11, 3))
            return list(asm.ld_imm64(dst % 11, rng.fuzz_u64()))
        helper = rng.pick(self.kernel.helpers.ids() + [rng.randint(0, 200)])
        return [asm.call_helper(helper)]

    # ------------------------------------------------------------------- api --

    def generate(self, kernel=None) -> GeneratedProgram:
        if kernel is not None:
            self.kernel = kernel
        rng = self.rng
        prog_type = rng.pick(_PROG_TYPES)
        maps = []
        try:
            fd = self.kernel.map_create(
                MapType.HASH, 8, rng.pick((8, 16, 32)), 16
            )
            maps.append(self.kernel.map_by_fd(fd))
        except Exception:
            fd = -1

        roll = rng.random()
        if roll < 0.09:
            insns = self._template_trivial()
        elif roll < 0.18 and fd >= 0:
            insns = self._template_map_lookup(fd)
        elif roll < 0.25:
            insns = self._template_stack()
        elif roll < 0.31:
            insns = self._template_helper()
        else:
            insns = []
            for _ in range(rng.randint(2, 18)):
                insns.extend(self._random_insn())
            if rng.chance(0.85):
                insns.append(asm.exit_insn())

        # Light mutation of templates (syzkaller mutates its corpus).
        if roll < 0.31 and rng.chance(0.35):
            idx = rng.randrange(len(insns))
            insn = insns[idx]
            if not insn.is_filler():
                insns[idx] = insn.with_(imm=rng.fuzz_imm32())

        plan = ExecutionPlan(n_runs=1)
        if rng.chance(0.3):
            plan.map_ops = [("update", bytes(8)), ("iterate", b"")]
        return GeneratedProgram(
            insns=insns,
            prog_type=prog_type,
            maps=maps,
            plan=plan,
            origin=self.name,
        )
