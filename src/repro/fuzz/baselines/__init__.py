"""Baseline generators the paper compares against.

- :mod:`repro.fuzz.baselines.syzkaller_gen` — Syzkaller-style
  generation: structurally valid system-call payloads (well-formed
  instruction encodings, description-derived templates) but no
  register-state tracking, so most non-trivial programs are rejected
  with EACCES/EINVAL (the paper measures 23.5% acceptance).
- :mod:`repro.fuzz.baselines.buzzer_gen` — Buzzer's two modes: highly
  random byte-level generation (~1% acceptance) and an ALU/JMP-heavy
  mode (~97% acceptance, 88%+ ALU/JMP instructions) that rarely
  reaches the verifier's sophisticated checking logic.
"""

from repro.fuzz.baselines.buzzer_gen import BuzzerGenerator
from repro.fuzz.baselines.syzkaller_gen import SyzkallerGenerator

__all__ = ["SyzkallerGenerator", "BuzzerGenerator"]
