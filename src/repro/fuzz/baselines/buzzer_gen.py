"""Buzzer-style program generation.

Buzzer (Google's eBPF fuzzer) has two generation strategies the paper
characterises (Section 6.3):

- a highly random mode whose programs almost never pass the verifier
  (~1% acceptance), modelled here as decoding random bytes;
- an ALU/JMP-heavy mode (~97% acceptance, 88.4%+ of instructions are
  ALU or JMP) that passes easily precisely because it avoids the
  verifier's sophisticated pointer/helper checking logic.

A campaign alternates between the modes, like Buzzer's strategies.
"""

from __future__ import annotations

from repro.ebpf import asm
from repro.ebpf.insn import Insn, decode_program
from repro.ebpf.opcodes import AluOp, InsnClass, JmpOp, Reg, Src
from repro.errors import EncodingError
from repro.ebpf.program import ProgType
from repro.fuzz.rng import FuzzRng
from repro.fuzz.structure import ExecutionPlan, GeneratedProgram

__all__ = ["BuzzerGenerator"]

_ALU_OPS = (
    AluOp.ADD, AluOp.SUB, AluOp.MUL, AluOp.DIV, AluOp.OR, AluOp.AND,
    AluOp.LSH, AluOp.RSH, AluOp.MOD, AluOp.XOR, AluOp.MOV, AluOp.ARSH,
)
_CMP_OPS = (
    JmpOp.JEQ, JmpOp.JNE, JmpOp.JGT, JmpOp.JGE, JmpOp.JLT, JmpOp.JLE,
    JmpOp.JSGT, JmpOp.JSGE, JmpOp.JSLT, JmpOp.JSLE, JmpOp.JSET,
)


class BuzzerGenerator:
    """Buzzer stand-in with its two characteristic modes."""

    name = "buzzer"

    def __init__(self, kernel, rng: FuzzRng, config=None, mode: str = "mixed"):
        self.kernel = kernel
        self.rng = rng
        self.mode = mode

    def generate(self, kernel=None) -> GeneratedProgram:
        if kernel is not None:
            self.kernel = kernel
        mode = self.mode
        if mode == "mixed":
            mode = "random" if self.rng.chance(0.5) else "alu_jmp"
        if mode == "random":
            insns = self._random_bytes_program()
        else:
            insns = self._alu_jmp_program()
        return GeneratedProgram(
            insns=insns,
            prog_type=ProgType.SOCKET_FILTER,
            maps=[],
            plan=ExecutionPlan(n_runs=1),
            origin=f"{self.name}:{mode}",
        )

    def _random_bytes_program(self) -> list[Insn]:
        """Mode 1: near-arbitrary bytes; almost everything is rejected."""
        rng = self.rng
        n = rng.randint(2, 24)
        data = bytes(rng.getrandbits(8) for _ in range(8 * n))
        try:
            insns = decode_program(data)
        except EncodingError:
            # Undecodable streams are rejected before the verifier; keep
            # them as raw opcode-soup instructions so the syscall layer
            # sees *something* (mirrors Buzzer feeding invalid bytes).
            insns = [
                Insn(
                    opcode=data[i * 8],
                    dst=data[i * 8 + 1] & 0x0F,
                    src=data[i * 8 + 1] >> 4,
                    off=int.from_bytes(data[i * 8 + 2 : i * 8 + 4], "little",
                                       signed=True),
                    imm=int.from_bytes(data[i * 8 + 4 : i * 8 + 8], "little",
                                       signed=True),
                )
                for i in range(n)
            ]
        if self.rng.chance(0.5):
            insns.append(asm.exit_insn())
        return insns

    def _alu_jmp_program(self) -> list[Insn]:
        """Mode 2: register init + ALU/JMP soup + exit (~97% accepted)."""
        rng = self.rng
        insns: list[Insn] = []
        # Initialise every register it will touch (this is what makes
        # the mode pass: no uninitialised reads, no pointers).
        live_regs = list(range(10))
        for regno in live_regs:
            insns.append(asm.mov64_imm(regno, rng.fuzz_imm32()))
        for _ in range(rng.randint(8, 40)):
            if rng.chance(0.85):
                op = rng.pick(_ALU_OPS)
                cls = rng.pick((InsnClass.ALU, InsnClass.ALU64))
                dst = rng.pick(live_regs)
                if op in (AluOp.LSH, AluOp.RSH, AluOp.ARSH):
                    imm = rng.randint(0, 31)
                    insns.append(Insn(opcode=cls | op | Src.K, dst=dst, imm=imm))
                elif rng.chance(0.5):
                    imm = rng.fuzz_imm32() or 1
                    insns.append(Insn(opcode=cls | op | Src.K, dst=dst, imm=imm))
                else:
                    insns.append(
                        Insn(opcode=cls | op | Src.X, dst=dst, src=rng.pick(live_regs))
                    )
            else:
                op = rng.pick(_CMP_OPS)
                insns.append(
                    asm.jmp_imm(op, rng.pick(live_regs), rng.fuzz_imm32(),
                                rng.randint(0, 2))
                )
        insns.append(asm.mov64_imm(Reg.R0, 0))
        insns.append(asm.exit_insn())
        return insns
