"""Coverage-guided corpus management.

Programs that exercise new verifier edges are preserved (with the map
specs needed to replay them in a fresh kernel) and fed back into the
campaign as mutation seeds — the feedback loop the paper inherits from
Syzkaller but pointed at the verifier's code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ebpf.insn import Insn
from repro.ebpf.maps import MapType
from repro.ebpf.program import ProgType
from repro.fuzz.structure import ExecutionPlan, GeneratedProgram

__all__ = ["MapSpec", "CorpusEntry", "Corpus"]


@dataclass(frozen=True)
class MapSpec:
    """Enough of a map's shape to recreate it in a replay kernel."""

    map_type: MapType
    key_size: int
    value_size: int
    max_entries: int


@dataclass
class CorpusEntry:
    """One preserved program."""

    insns: list[Insn]
    prog_type: ProgType
    map_specs: tuple[MapSpec, ...]
    plan: ExecutionPlan
    new_edges: int = 0
    origin: str = "bvf"


def specs_of(gp: GeneratedProgram) -> tuple[MapSpec, ...]:
    return tuple(
        MapSpec(m.map_type, m.key_size, m.value_size, m.max_entries)
        for m in gp.maps
    )


class Corpus:
    """Bounded pool of coverage-contributing programs."""

    def __init__(self, capacity: int = 256) -> None:
        self.capacity = capacity
        self.entries: list[CorpusEntry] = []
        self.total_added = 0

    def add(self, gp: GeneratedProgram, new_edges: int) -> None:
        entry = CorpusEntry(
            insns=list(gp.insns),
            prog_type=gp.prog_type,
            map_specs=specs_of(gp),
            plan=gp.plan,
            new_edges=new_edges,
            origin=gp.origin,
        )
        self.total_added += 1
        if len(self.entries) < self.capacity:
            self.entries.append(entry)
            return
        # Evict the least-contributing entry.
        weakest = min(range(len(self.entries)), key=lambda i: self.entries[i].new_edges)
        if self.entries[weakest].new_edges < new_edges:
            self.entries[weakest] = entry

    def __len__(self) -> int:
        return len(self.entries)

    def pick(self, rng) -> CorpusEntry:
        return rng.pick(self.entries)
