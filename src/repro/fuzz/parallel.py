"""Sharded parallel campaign engine.

The paper runs BVF as 48-hour campaigns per kernel on a 40-core server
(Section 6.1); the related fuzzers it compares against (Syzkaller,
Buzzer, BRF) all get their throughput from fanning campaigns out over
many VMs/processes.  :class:`ParallelCampaign` is that regime for the
reproduction: a campaign's program budget is split into **logical
shards**, each shard runs a fully isolated serial
:class:`~repro.fuzz.campaign.Campaign` (own RNG stream, own corpus,
own coverage accumulator, fresh kernel per iteration — the same
crash-isolation model), and the picklable per-shard results are merged
deterministically in the parent.

Two properties make the merged result trustworthy:

- **Worker-count invariance.**  The shard decomposition depends only
  on ``(seed, budget, shards)`` — never on ``workers``.  Shard *i*
  always covers global iterations ``[start_i, start_i + budget_i)``
  and always seeds its RNG with ``derive_seed(seed, i)``, so running
  the same campaign with 1 worker or 16 yields bit-identical merged
  results; ``workers`` is purely a throughput knob.
- **Stable coverage keys.**  :class:`VerifierCoverage` edge keys are
  process-independent (no salted hashes), so the union of shard edge
  sets counts each distinct verifier edge exactly once, and the merged
  coverage curve keeps the Figure-6 semantics: cumulative unique edges
  as a function of cumulative programs generated.

Merge rules:

- coverage — union of shard edge sets; the curve interleaves shard
  samples in cumulative-programs order, unioning each sample's *new*
  edges (shards rediscovering the same edge don't double-count);
- findings — deduplicated by bug id, keeping the finding with the
  earliest **global** iteration (shard-local iterations are offset by
  the shard's start position);
- counters — errno, rejection-reason, frame-kind, and
  instruction-class counters sum;
- metrics — per-shard :mod:`repro.obs` registry snapshots merge via
  :func:`repro.obs.metrics.merge_snapshots` (counters/histogram
  buckets sum, gauges max, wall-clock section kept segregated);
- timing — generate/verify/execute seconds sum over shards (total CPU
  work); ``wall_seconds`` is the parent's measured wall clock, which
  is what shrinks as workers are added.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import Counter
from dataclasses import dataclass, field, replace

from repro.analysis.differential import merge_divergences
from repro.fuzz.campaign import Campaign, CampaignConfig, CampaignResult
from repro.fuzz.corpus import specs_of
from repro.fuzz.oracle import BugFinding
from repro.fuzz.rng import derive_seed
from repro.obs.frontier import merge_frontiers, shift_frontier
from repro.obs.metrics import merge_snapshots
from repro.obs.profile import merge_profiles

__all__ = [
    "ShardResult",
    "ParallelCampaignResult",
    "ParallelCampaign",
    "shard_budgets",
    "merge_shards",
]

#: Default number of logical shards.  Deliberately independent of (and
#: larger than) typical worker counts so the decomposition — and hence
#: the merged result — never changes when the machine does.
DEFAULT_SHARDS = 8

#: Set by :func:`_worker_init` the instant a worker process starts, so
#: the first shard that runs in the worker can report how long process
#: bootstrap (fork/spawn + module import) took before any campaign work.
_WORKER_T0: float | None = None


def _worker_init() -> None:
    global _WORKER_T0
    _WORKER_T0 = time.perf_counter()


@dataclass
class ShardResult:
    """The picklable outcome of one campaign shard."""

    index: int
    #: first global iteration this shard covers
    start_iteration: int
    #: derived seed the shard's FuzzRng ran on
    seed: int
    generated: int = 0
    accepted: int = 0
    reject_errnos: Counter = field(default_factory=Counter)
    #: taxonomy reason code -> count (:mod:`repro.obs.taxonomy`)
    reject_reasons: Counter = field(default_factory=Counter)
    #: frame kind -> programs generated / accepted containing it
    frame_generated: Counter = field(default_factory=Counter)
    frame_accepted: Counter = field(default_factory=Counter)
    #: the shard's metrics-registry snapshot (plain dicts, picklable)
    metrics: dict = field(default_factory=dict)
    #: bug id -> finding, iterations already remapped to global
    findings: dict[str, BugFinding] = field(default_factory=dict)
    #: divergence key -> divergence dict, iterations remapped to global
    #: (:meth:`repro.analysis.differential.Divergence.to_dict` form)
    divergences: dict[str, dict] = field(default_factory=dict)
    #: the shard's cumulative verifier edge set
    edges: frozenset[int] = frozenset()
    #: (local programs generated, new edges since previous sample)
    edge_samples: list[tuple[int, frozenset[int]]] = field(default_factory=list)
    insn_classes: Counter = field(default_factory=Counter)
    #: taxonomy reason -> first flight-recorder explanation, iteration
    #: already remapped to global (empty unless ``config.flight``)
    reject_explanations: dict[str, dict] = field(default_factory=dict)
    #: taxonomy reason -> repair attempts / verified flips (empty
    #: unless ``config.repair_feedback``)
    repairs_attempted: Counter = field(default_factory=Counter)
    repairs_verified: Counter = field(default_factory=Counter)
    #: taxonomy reason -> first verified repair, iteration already
    #: remapped to global
    repair_examples: dict[str, dict] = field(default_factory=dict)
    #: the shard's profiler snapshot (empty unless ``config.profile``)
    profile: dict = field(default_factory=dict)
    #: the shard's frontier snapshot, iterations already remapped to
    #: global (empty unless ``config.collect_coverage``)
    frontier: dict = field(default_factory=dict)
    corpus_size: int = 0
    generate_seconds: float = 0.0
    verify_seconds: float = 0.0
    execute_seconds: float = 0.0
    differential_seconds: float = 0.0
    wall_seconds: float = 0.0
    #: worker-process bootstrap time attributed to this shard (0.0 for
    #: every shard after the first one a worker runs)
    bootstrap_seconds: float = 0.0
    #: time to construct the shard's Campaign (corpus/coverage setup)
    setup_seconds: float = 0.0


@dataclass
class ParallelCampaignResult(CampaignResult):
    """A merged campaign result plus the parallel-execution metadata."""

    workers: int = 1
    shards: int = 1
    shard_results: list[ShardResult] = field(default_factory=list)
    #: summed worker bootstrap time across shards (wall-side telemetry)
    bootstrap_seconds: float = 0.0
    #: summed Campaign construction time across shards
    setup_seconds: float = 0.0


def shard_budgets(budget: int, shards: int) -> list[int]:
    """Split a program budget into per-shard budgets (no empty shards)."""
    if budget <= 0:
        return []
    shards = max(1, min(shards, budget))
    base, extra = divmod(budget, shards)
    return [base + (1 if i < extra else 0) for i in range(shards)]


def _strip_finding(finding: BugFinding) -> BugFinding:
    """Make a finding cheap to pickle across the process boundary.

    ``finding.prog.maps`` holds live :class:`BpfMap` objects whose
    ``mem`` attribute drags the whole simulated kernel memory along;
    replace them with the same :class:`MapSpec` shapes the corpus keeps
    (enough for ``replay_kernel`` and triage to rebuild the fd layout).
    """
    if finding.prog is not None and finding.prog.maps:
        finding.prog = replace(finding.prog, maps=list(specs_of(finding.prog)))
    return finding


def _run_shard(payload) -> ShardResult:
    """Worker entry point: run one isolated campaign shard.

    Module-level (and taking a single tuple) so it pickles under every
    multiprocessing start method.
    """
    global _WORKER_T0
    entered = time.perf_counter()
    # Bootstrap time belongs to the first shard a worker runs; later
    # shards in the same process paid nothing for it.
    bootstrap_seconds = entered - _WORKER_T0 if _WORKER_T0 is not None else 0.0
    _WORKER_T0 = None

    config, index, start_iteration, shard_budget, shard_seed = payload
    trace_path = config.trace_path
    if trace_path is not None:
        trace_path = f"{trace_path}.shard{index:02d}"
    shard_config = replace(
        config,
        budget=shard_budget,
        seed=shard_seed,
        trace_path=trace_path,
        shard_index=index,
    )
    campaign = Campaign(shard_config)
    setup_seconds = time.perf_counter() - entered
    result = campaign.run()

    findings = {}
    for bug_id, finding in result.findings.items():
        finding.iteration += start_iteration
        findings[bug_id] = _strip_finding(finding)

    divergences = {}
    for key, div in result.divergences.items():
        div = dict(div)
        if div.get("iteration", -1) >= 0:
            div["iteration"] += start_iteration
        divergences[key] = div

    explanations = {}
    for reason, entry in result.reject_explanations.items():
        entry = dict(entry)
        if entry.get("iteration", -1) >= 0:
            entry["iteration"] += start_iteration
        explanations[reason] = entry

    repair_examples = {}
    for reason, entry in result.repair_examples.items():
        entry = dict(entry)
        if entry.get("iteration", -1) >= 0:
            entry["iteration"] += start_iteration
        repair_examples[reason] = entry

    metrics = result.metrics
    if metrics:
        sums = metrics.setdefault("wall", {}).setdefault("sums", {})
        sums["worker.bootstrap_seconds"] = bootstrap_seconds
        sums["worker.setup_seconds"] = setup_seconds

    return ShardResult(
        index=index,
        start_iteration=start_iteration,
        seed=shard_seed,
        generated=result.generated,
        accepted=result.accepted,
        reject_errnos=result.reject_errnos,
        reject_reasons=result.reject_reasons,
        frame_generated=result.frame_generated,
        frame_accepted=result.frame_accepted,
        metrics=metrics,
        findings=findings,
        divergences=divergences,
        edges=campaign.coverage.snapshot_edges(),
        edge_samples=result.edge_samples,
        insn_classes=result.insn_classes,
        reject_explanations=explanations,
        repairs_attempted=result.repairs_attempted,
        repairs_verified=result.repairs_verified,
        repair_examples=repair_examples,
        profile=result.profile,
        frontier=shift_frontier(result.frontier, start_iteration),
        corpus_size=result.corpus_size,
        generate_seconds=result.generate_seconds,
        verify_seconds=result.verify_seconds,
        execute_seconds=result.execute_seconds,
        differential_seconds=result.differential_seconds,
        wall_seconds=result.wall_seconds,
        bootstrap_seconds=bootstrap_seconds,
        setup_seconds=setup_seconds,
    )


def merge_shards(
    config: CampaignConfig,
    shard_results: list[ShardResult],
    workers: int = 1,
) -> ParallelCampaignResult:
    """Deterministically fold shard results into one campaign result."""
    ordered = sorted(shard_results, key=lambda s: s.index)
    merged = ParallelCampaignResult(
        config=config,
        workers=workers,
        shards=len(ordered),
        shard_results=ordered,
    )

    all_edges: set[int] = set()
    for shard in ordered:
        merged.generated += shard.generated
        merged.accepted += shard.accepted
        merged.reject_errnos.update(shard.reject_errnos)
        merged.reject_reasons.update(shard.reject_reasons)
        merged.frame_generated.update(shard.frame_generated)
        merged.frame_accepted.update(shard.frame_accepted)
        merged.insn_classes.update(shard.insn_classes)
        merged.corpus_size += shard.corpus_size
        merged.generate_seconds += shard.generate_seconds
        merged.verify_seconds += shard.verify_seconds
        merged.execute_seconds += shard.execute_seconds
        merged.differential_seconds += shard.differential_seconds
        merged.bootstrap_seconds += shard.bootstrap_seconds
        merged.setup_seconds += shard.setup_seconds
        all_edges |= shard.edges

        for bug_id, finding in shard.findings.items():
            kept = merged.findings.get(bug_id)
            if kept is None or finding.iteration < kept.iteration:
                merged.findings[bug_id] = finding

        # One explanation per taxonomy reason fleet-wide, keeping the
        # earliest global iteration — shard-order-independent, hence
        # worker-count-invariant.
        for reason, entry in shard.reject_explanations.items():
            kept = merged.reject_explanations.get(reason)
            if kept is None or entry.get("iteration", 0) < kept.get(
                "iteration", 0
            ):
                merged.reject_explanations[reason] = entry

        # Repair counters sum; the per-reason example keeps the
        # earliest global iteration, mirroring the explanations.
        merged.repairs_attempted.update(shard.repairs_attempted)
        merged.repairs_verified.update(shard.repairs_verified)
        for reason, entry in shard.repair_examples.items():
            kept = merged.repair_examples.get(reason)
            if kept is None or entry.get("iteration", 0) < kept.get(
                "iteration", 0
            ):
                merged.repair_examples[reason] = entry

    merged.divergences = merge_divergences(
        [shard.divergences for shard in ordered]
    )

    merged.final_coverage = len(all_edges)
    merged.metrics = merge_snapshots([s.metrics for s in ordered if s.metrics])
    merged.profile = merge_profiles([s.profile for s in ordered])
    merged.frontier = merge_frontiers([s.frontier for s in ordered])

    # Interleaved union curve: order every shard's samples by local
    # progress (ties broken by shard index), so the x axis becomes
    # cumulative programs across the whole fleet — the scaled-up
    # equivalent of Figure 6's wall-clock axis.
    points = []
    for shard in ordered:
        prev_x = 0
        for local_x, new_edges in shard.edge_samples:
            points.append((local_x, shard.index, local_x - prev_x, new_edges))
            prev_x = local_x
    points.sort(key=lambda p: (p[0], p[1]))

    curve_edges: set[int] = set()
    cumulative = 0
    for _local_x, _index, delta, new_edges in points:
        cumulative += delta
        fresh = frozenset(new_edges - curve_edges)
        curve_edges |= fresh
        merged.coverage_curve.append((cumulative, len(curve_edges)))
        merged.edge_samples.append((cumulative, fresh))
    return merged


class ParallelCampaign:
    """Runs one campaign as N logical shards over M worker processes."""

    def __init__(
        self,
        config: CampaignConfig,
        workers: int | None = None,
        shards: int | None = None,
    ) -> None:
        self.config = config
        self.workers = max(1, workers or (os.cpu_count() or 1))
        self.shards = shards if shards is not None else DEFAULT_SHARDS

    # ------------------------------------------------------------------ run --

    def shard_plan(self) -> list[tuple]:
        """The worker payloads: (config, index, start, budget, seed)."""
        budgets = shard_budgets(self.config.budget, self.shards)
        plan = []
        start = 0
        for index, shard_budget in enumerate(budgets):
            plan.append(
                (
                    self.config,
                    index,
                    start,
                    shard_budget,
                    derive_seed(self.config.seed, index),
                )
            )
            start += shard_budget
        return plan

    def run(self) -> ParallelCampaignResult:
        started = time.perf_counter()
        plan = self.shard_plan()
        workers = min(self.workers, max(len(plan), 1))

        if self.config.heartbeat_dir:
            from repro.obs.heartbeat import write_campaign_meta

            write_campaign_meta(
                self.config.heartbeat_dir,
                {
                    "tool": self.config.tool,
                    "kernel": self.config.kernel_version,
                    "budget": self.config.budget,
                    "seed": self.config.seed,
                    "shards": len(plan),
                    "workers": workers,
                },
            )

        if workers <= 1 or len(plan) <= 1:
            _worker_init()
            shard_results = [_run_shard(payload) for payload in plan]
        else:
            ctx = multiprocessing.get_context(
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
            with ctx.Pool(
                processes=workers, initializer=_worker_init
            ) as pool:
                shard_results = pool.map(_run_shard, plan, chunksize=1)

        merged = merge_shards(self.config, shard_results, workers=workers)
        merged.wall_seconds = time.perf_counter() - started
        return merged
