"""The test oracle: indicators, classification, and triage.

Correctness bugs in the verifier "eventually appear as one of two
indicators" (Section 3): a verified program performing an invalid
load/store (indicator #1, captured by BVF's sanitation), or a bug
triggered inside a kernel routine the program invoked (indicator #2,
captured by existing kernel self-checks).  The oracle turns captured
reports into deduplicated :class:`BugFinding` records.

For indicator-#1 findings the paper triages manually (Section 6.5); we
automate the equivalent with *differential triage*: re-verify the
crashing program against kernels with one candidate verifier flaw
fixed at a time — the fix that makes the verifier reject the program
is the root cause.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro import obs
from repro.errors import (
    AluLimitViolation,
    BpfError,
    KasanReport,
    KernelPanic,
    KernelReport,
    LockdepReport,
    NullDerefReport,
    RecursionReport,
    SanitizerReport,
    VerifierReject,
    WarnReport,
)
from repro.kernel.config import Flaw, KernelConfig
from repro.kernel.syscall import Kernel
from repro.fuzz.structure import GeneratedProgram

__all__ = ["BugFinding", "Oracle", "replay_kernel"]

#: Verifier flaws that manifest as indicator #1 (triage candidates).
_INDICATOR1_FLAWS = (
    Flaw.NULLNESS_PROPAGATION,
    Flaw.TASK_STRUCT_OOB,
    Flaw.KFUNC_BACKTRACK,
    Flaw.CVE_2022_23222,
)


@dataclass
class BugFinding:
    """One deduplicated vulnerability discovered by a campaign.

    ``indicator`` values: ``indicator1`` / ``indicator2`` are the
    paper's two runtime signals; ``component`` marks non-verifier eBPF
    bugs (Table 2, #7-#11); ``differential`` marks verdict/range
    divergences from the cross-version oracle (static, no execution);
    ``invariant`` marks the verifier's own abstract state breaking a
    domain invariant (:class:`~repro.verifier.sanity.VStateChecker`).
    """

    bug_id: str
    indicator: str  # indicator1 | indicator2 | component | differential | invariant
    report_kind: str
    message: str
    iteration: int = -1
    prog: GeneratedProgram | None = None

    @property
    def is_verifier_bug(self) -> bool:
        return self.indicator in (
            "indicator1", "indicator2", "differential", "invariant"
        )


def replay_kernel(config: KernelConfig, gp: GeneratedProgram) -> Kernel:
    """Rebuild a kernel with the program's resources (same fd layout).

    File descriptors are handed out sequentially from 3 in both the
    original and the replay kernel, so recreating the maps in creation
    order makes the program's embedded fds valid again.
    """
    kernel = Kernel(config)
    for bpf_map in gp.maps:
        kernel.map_create(
            bpf_map.map_type,
            bpf_map.key_size,
            bpf_map.value_size,
            bpf_map.max_entries,
        )
    return kernel


class Oracle:
    """Classifies captured reports into findings."""

    def __init__(self, config: KernelConfig) -> None:
        self.config = config
        #: indicator-1 flaws already attributed (triage short-circuit)
        self._attributed: set[Flaw] = set()

    # --- classification -------------------------------------------------------

    def classify_report(
        self, report: KernelReport, gp: GeneratedProgram | None
    ) -> BugFinding:
        """Map a kernel self-check report to a finding."""
        finding = self._classify_report(report, gp)
        m = obs.metrics()
        m.counter("oracle.reports")
        m.counter("oracle." + finding.indicator)
        rec = obs.recorder()
        if rec.enabled:
            rec.event("oracle.finding", bug_id=finding.bug_id,
                      indicator=finding.indicator, report=report.kind)
        return finding

    def _classify_report(
        self, report: KernelReport, gp: GeneratedProgram | None
    ) -> BugFinding:
        message = str(report)

        if isinstance(report, (SanitizerReport, AluLimitViolation)):
            bug_id = self._triage_indicator1(gp)
            return BugFinding(
                bug_id=bug_id,
                indicator="indicator1",
                report_kind=report.kind,
                message=message,
                prog=gp,
            )

        if isinstance(report, LockdepReport):
            lock = report.context.get("lock", "")
            if lock == "trace_printk_lock":
                return self._finding(Flaw.TRACE_PRINTK_DEADLOCK, "indicator2",
                                     report, gp)
            if lock == "contention_lock":
                return self._finding(Flaw.CONTENTION_BEGIN_LOCK, "indicator2",
                                     report, gp)
            if lock == "ringbuf_waitq_lock":
                return self._finding(Flaw.IRQ_WORK_LOCK, "component", report, gp)
            return BugFinding(
                bug_id=f"lockdep:{lock or report.context.get('kind', 'unknown')}",
                indicator="indicator2",
                report_kind=report.kind,
                message=message,
                prog=gp,
            )

        if isinstance(report, RecursionReport):
            tracepoint = report.context.get("tracepoint", "")
            if tracepoint == "bpf_trace_printk":
                return self._finding(Flaw.TRACE_PRINTK_DEADLOCK, "indicator2",
                                     report, gp)
            if tracepoint == "contention_begin":
                return self._finding(Flaw.CONTENTION_BEGIN_LOCK, "indicator2",
                                     report, gp)
            return BugFinding(
                bug_id=f"recursion:{tracepoint}",
                indicator="indicator2",
                report_kind=report.kind,
                message=message,
                prog=gp,
            )

        if isinstance(report, KernelPanic):
            if "send_signal" in message:
                return self._finding(Flaw.SIGNAL_PANIC, "indicator2", report, gp)
            return BugFinding(
                bug_id="panic:other",
                indicator="indicator2",
                report_kind=report.kind,
                message=message,
                prog=gp,
            )

        if isinstance(report, NullDerefReport):
            if "dispatcher" in message:
                return self._finding(Flaw.DISPATCHER_RACE, "component", report, gp)
            # A raw null dereference by the program itself: the
            # unsanitized face of indicator #1.
            bug_id = self._triage_indicator1(gp)
            return BugFinding(
                bug_id=bug_id,
                indicator="indicator1",
                report_kind=report.kind,
                message=message,
                prog=gp,
            )

        if isinstance(report, WarnReport):
            if "offloaded" in message:
                return self._finding(Flaw.XDP_DEV_HOST, "component", report, gp)

        if isinstance(report, KasanReport):
            who = message
            if "htab-iter" in who:
                return self._finding(Flaw.MAP_BUCKET_ITER, "component", report, gp)
            bug_id = self._triage_indicator1(gp)
            return BugFinding(
                bug_id=bug_id,
                indicator="indicator1",
                report_kind=report.kind,
                message=message,
                prog=gp,
            )

        return BugFinding(
            bug_id=f"report:{report.kind}",
            indicator="indicator2",
            report_kind=report.kind,
            message=message,
            prog=gp,
        )

    def classify_syscall_error(
        self, error: BpfError, gp: GeneratedProgram | None
    ) -> BugFinding | None:
        """Component bugs that surface as wrong syscall failures."""
        if "kmemdup" in (error.message or ""):
            m = obs.metrics()
            m.counter("oracle.reports")
            m.counter("oracle.component")
            rec = obs.recorder()
            if rec.enabled:
                rec.event("oracle.finding", bug_id=Flaw.KMEMDUP_LIMIT.value,
                          indicator="component", report="syscall-error")
            return BugFinding(
                bug_id=Flaw.KMEMDUP_LIMIT.value,
                indicator="component",
                report_kind="syscall-error",
                message=error.message,
                prog=gp,
            )
        return None

    def classify_divergence(self, div) -> BugFinding | None:
        """Map one cross-version divergence to a finding (indicator #3).

        ``div`` is a :class:`repro.analysis.differential.Divergence`
        (duck-typed here so ``fuzz`` need not import ``analysis``).
        Known-flaw divergences re-discover a registry bug statically —
        the regression-oracle half; unexplained (and joint-delta-only)
        divergences are new bug reports.  Feature gaps are expected
        version skew: they stay in the divergence table but produce no
        finding.
        """
        if div.classification == "feature-gap":
            return None
        if div.classification == "known-flaw":
            bug_id = div.explanation
            message = (
                f"{div.kind} divergence {div.profile_a} vs {div.profile_b} "
                f"explained by {div.explanation}"
            )
        else:
            # A short stable digest keeps the bug table readable while
            # still deduplicating per distinct divergence signature.
            digest = hashlib.sha1(div.key.encode()).hexdigest()[:10]
            bug_id = (
                f"differential:{div.classification}:"
                f"{div.profile_a}-vs-{div.profile_b}:{digest}"
            )
            message = (
                f"{div.kind} divergence {div.profile_a} vs {div.profile_b} "
                f"({div.classification}): "
                f"{div.outcome_a.verdict}/{div.outcome_a.reason or '-'} vs "
                f"{div.outcome_b.verdict}/{div.outcome_b.reason or '-'}"
            )
        m = obs.metrics()
        m.counter("oracle.reports")
        m.counter("oracle.differential")
        rec = obs.recorder()
        if rec.enabled:
            rec.event("oracle.finding", bug_id=bug_id,
                      indicator="differential", report="divergence")
        return BugFinding(
            bug_id=bug_id,
            indicator="differential",
            report_kind="divergence",
            message=message,
        )

    def classify_invariant(
        self, violation, gp: GeneratedProgram | None
    ) -> BugFinding:
        """Map a broken verifier abstract state to a finding.

        ``violation`` is a :class:`repro.errors.InvariantViolation`.
        Like indicator #1 this is direct evidence of a verifier bug,
        but caught statically by the VStateChecker rather than at
        runtime by the sanitizer.
        """
        m = obs.metrics()
        m.counter("oracle.reports")
        m.counter("oracle.invariant")
        rec = obs.recorder()
        if rec.enabled:
            rec.event("oracle.finding", bug_id=f"invariant:{violation.code}",
                      indicator="invariant", report="invariant-violation")
        return BugFinding(
            bug_id=f"invariant:{violation.code}",
            indicator="invariant",
            report_kind="invariant-violation",
            message=str(violation),
            prog=gp,
        )

    # --- triage --------------------------------------------------------------------

    def _triage_indicator1(self, gp: GeneratedProgram | None) -> str:
        """Differential root-cause attribution for indicator #1.

        Re-verify the program with each candidate verifier flaw fixed;
        the fix that flips the verdict to *reject* identifies the bug.
        """
        if gp is None:
            return "indicator1-unattributed"
        from repro.ebpf.program import BpfProgram

        candidates = [f for f in _INDICATOR1_FLAWS if self.config.has_flaw(f)]
        # Once every active indicator-1 flaw has been attributed, further
        # reports are duplicates; skip the expensive replays.
        remaining = [f for f in candidates if f not in self._attributed]
        if not remaining:
            return "indicator1-duplicate"
        for flaw in remaining + [f for f in candidates if f in self._attributed]:
            obs.metrics().counter("oracle.triage_replays")
            fixed = self.config.without_flaw(flaw)
            kernel = replay_kernel(fixed, gp)
            prog = BpfProgram(insns=list(gp.insns), prog_type=gp.prog_type)
            try:
                kernel.prog_load(prog, sanitize=False)
            except VerifierReject:
                self._attributed.add(flaw)
                return flaw.value
            except BpfError:
                continue
        return "indicator1-unattributed"

    def _finding(
        self, flaw: Flaw, indicator: str, report: KernelReport, gp
    ) -> BugFinding:
        return BugFinding(
            bug_id=flaw.value,
            indicator=indicator,
            report_kind=report.kind,
            message=str(report),
            prog=gp,
        )
