"""Deterministic randomness utilities for the fuzzer.

A thin wrapper over :class:`random.Random` adding the biased choices
fuzzers rely on: boundary-loving integers, weighted picks, and
occasional "interesting" values (powers of two, type boundaries) that
stress comparison and overflow logic in the verifier.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

__all__ = ["FuzzRng", "INTERESTING_U64", "derive_seed"]

T = TypeVar("T")

_U64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """One SplitMix64 step — a cheap, well-mixed 64-bit permutation."""
    x = (x + 0x9E3779B97F4A7C15) & _U64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _U64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _U64
    return x ^ (x >> 31)


def derive_seed(seed: int, *lanes: int) -> int:
    """Derive an independent child seed from ``seed`` and lane indices.

    Used by sharded campaigns: shard *i* of a campaign with seed *s*
    runs on ``derive_seed(s, i)``, giving every shard a distinct,
    deterministic :class:`FuzzRng` stream that depends only on the
    campaign seed and the shard's position — never on how many worker
    processes execute the shards.  SplitMix64 keys the derivation, so
    nearby seeds and lanes still produce unrelated streams (plain
    ``seed + i`` would make campaign seeds 0 and 1 share most shards).
    """
    state = _splitmix64(seed & _U64)
    for lane in lanes:
        state = _splitmix64(state ^ _splitmix64(lane & _U64))
    return state

#: Classic boundary values for 64-bit fuzzing.
INTERESTING_U64 = (
    0,
    1,
    2,
    7,
    8,
    0x7F,
    0x80,
    0xFF,
    0x100,
    0x7FFF,
    0x8000,
    0xFFFF,
    0x7FFFFFFF,
    0x80000000,
    0xFFFFFFFF,
    0x100000000,
    0x7FFFFFFFFFFFFFFF,
    0x8000000000000000,
    0xFFFFFFFFFFFFFFFF,
)


class FuzzRng(random.Random):
    """Seedable RNG with fuzzing-flavoured helpers."""

    @classmethod
    def derived(cls, seed: int, *lanes: int) -> "FuzzRng":
        """A fresh stream keyed on ``(seed, *lanes)`` — see :func:`derive_seed`."""
        return cls(derive_seed(seed, *lanes))

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        return self.random() < probability

    def pick(self, items: Sequence[T]) -> T:
        return items[self.randrange(len(items))]

    def pick_weighted(self, items: Sequence[T], weights: Sequence[float]) -> T:
        return self.choices(items, weights=weights, k=1)[0]

    def interesting_u64(self) -> int:
        return self.pick(INTERESTING_U64)

    def fuzz_int(self, lo: int, hi: int) -> int:
        """An integer in [lo, hi], biased toward the boundaries."""
        roll = self.random()
        if roll < 0.2:
            return lo
        if roll < 0.4:
            return hi
        return self.randint(lo, hi)

    def fuzz_imm32(self) -> int:
        """A signed 32-bit immediate with boundary bias."""
        roll = self.random()
        if roll < 0.3:
            return self.randint(-16, 16)
        if roll < 0.6:
            value = self.interesting_u64() & 0xFFFFFFFF
            return value - (1 << 32) if value >= (1 << 31) else value
        return self.randint(-(1 << 31), (1 << 31) - 1)

    def fuzz_u64(self) -> int:
        roll = self.random()
        if roll < 0.4:
            return self.interesting_u64()
        if roll < 0.7:
            return self.randint(0, 4096)
        return self.getrandbits(64)
