"""Deterministic randomness utilities for the fuzzer.

A thin wrapper over :class:`random.Random` adding the biased choices
fuzzers rely on: boundary-loving integers, weighted picks, and
occasional "interesting" values (powers of two, type boundaries) that
stress comparison and overflow logic in the verifier.
"""

from __future__ import annotations

import random
from typing import Sequence, TypeVar

__all__ = ["FuzzRng", "INTERESTING_U64"]

T = TypeVar("T")

#: Classic boundary values for 64-bit fuzzing.
INTERESTING_U64 = (
    0,
    1,
    2,
    7,
    8,
    0x7F,
    0x80,
    0xFF,
    0x100,
    0x7FFF,
    0x8000,
    0xFFFF,
    0x7FFFFFFF,
    0x80000000,
    0xFFFFFFFF,
    0x100000000,
    0x7FFFFFFFFFFFFFFF,
    0x8000000000000000,
    0xFFFFFFFFFFFFFFFF,
)


class FuzzRng(random.Random):
    """Seedable RNG with fuzzing-flavoured helpers."""

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        return self.random() < probability

    def pick(self, items: Sequence[T]) -> T:
        return items[self.randrange(len(items))]

    def pick_weighted(self, items: Sequence[T], weights: Sequence[float]) -> T:
        return self.choices(items, weights=weights, k=1)[0]

    def interesting_u64(self) -> int:
        return self.pick(INTERESTING_U64)

    def fuzz_int(self, lo: int, hi: int) -> int:
        """An integer in [lo, hi], biased toward the boundaries."""
        roll = self.random()
        if roll < 0.2:
            return lo
        if roll < 0.4:
            return hi
        return self.randint(lo, hi)

    def fuzz_imm32(self) -> int:
        """A signed 32-bit immediate with boundary bias."""
        roll = self.random()
        if roll < 0.3:
            return self.randint(-16, 16)
        if roll < 0.6:
            value = self.interesting_u64() & 0xFFFFFFFF
            return value - (1 << 32) if value >= (1 << 31) else value
        return self.randint(-(1 << 31), (1 << 31) - 1)

    def fuzz_u64(self) -> int:
        roll = self.random()
        if roll < 0.4:
            return self.interesting_u64()
        if roll < 0.7:
            return self.randint(0, 4096)
        return self.getrandbits(64)
