"""Frame-level verdict cache: reuse per-program verifier outcomes.

Campaigns generate from a bounded frame vocabulary (Figure 4), so a
shard revisits instruction sequences — most often via corpus mutation,
which frequently yields a program byte-identical to one the verifier
already judged.  Re-running ``do_check`` on such a duplicate cannot
change the verdict: verification is a pure function of the instruction
bytes, the entry state, the map shapes, and the kernel config.  This
module captures that function's outputs once and replays them.

The cache key is the tuple of the program's frame bodies (its full
slot stream, field by field), the entry-state fingerprint
(:func:`~repro.verifier.env.state_fingerprint` of the verifier's
initial state), the map specs, the program type, and the sanitize
flag.  A **hit** must be observably indistinguishable from a full
re-verification; three mechanisms guarantee that:

- **verdicts** — for an accepted program the fresh kernel still runs
  structure checking, pseudo resolution, and fixup (those bind kernel
  objects: map addresses, BTF ids), but ``do_check`` is replaced by
  restoring the recorded :class:`~repro.verifier.core.CheckSummary`;
  for a rejected program the recorded errno/message/log is re-raised;
- **coverage** — the edge window traced during the miss run is
  replayed via :meth:`~repro.fuzz.coverage.VerifierCoverage.replay`,
  so the cumulative edge set and ``last_new`` (the corpus feedback
  signal) evolve exactly as if the verifier had run — possible only
  because tracing scope excludes the cache machinery itself;
- **metrics** — reject replays re-emit the deterministic metric calls
  recorded through :class:`_RecordingMetrics`; accept replays emit
  them naturally, since the verifier's emissions read only restored
  summary fields.

Only the ``cache.verdict.*`` counters (per-frame-kind hits and
misses) distinguish a cached campaign from an uncached one, and
:func:`~repro.obs.metrics.strip_wall_fields` excludes the ``cache.``
family from artifact comparisons.  The cache turns itself off when
invariant checking or trace recording is active: both observe
``do_check`` from the inside, where a replay has nothing to show.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro import obs
from repro.errors import BpfError, VerifierReject
from repro.verifier.env import FuncFrame, VerifierState, state_fingerprint
from repro.verifier.state import RegState, RegType

__all__ = ["VerdictCache", "VerdictEntry"]


class _RecordingMetrics:
    """Metrics tee: forwards to the real sink, logs deterministic calls.

    Wall-clock methods are forwarded but not logged — they are
    run-to-run noise, segregated into the snapshot's ``wall`` section
    and excluded from every artifact comparison, so replaying them
    would add nothing.
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self.calls: list[tuple] = []

    def counter(self, name: str, n: int = 1) -> None:
        self.calls.append(("counter", name, n))
        self._inner.counter(name, n)

    def gauge_max(self, name: str, value: float) -> None:
        self.calls.append(("gauge_max", name, value))
        self._inner.gauge_max(name, value)

    def observe(self, name: str, value: float, buckets=None) -> None:
        if buckets is None:
            self.calls.append(("observe", name, value))
            self._inner.observe(name, value)
        else:
            self.calls.append(("observe", name, value, buckets))
            self._inner.observe(name, value, buckets)

    def wall(self, name: str, seconds: float) -> None:
        self._inner.wall(name, seconds)

    def observe_time(self, name: str, seconds: float) -> None:
        self._inner.observe_time(name, seconds)

    def snapshot(self) -> dict:
        return self._inner.snapshot()


@dataclass
class VerdictEntry:
    """One cached load outcome."""

    #: "accepted" | "reject" | "error"
    kind: str
    errno: int = 0
    message: str = ""
    log: str = ""
    #: recorded ``do_check`` outputs (accepted entries only)
    check: object | None = None
    #: coverage edge window of the miss run (None = coverage was off)
    window: frozenset[int] | None = None
    #: deterministic metric calls of the miss run (reject/error only;
    #: accepted replays re-emit theirs naturally from ``check``)
    metric_log: tuple = ()
    #: frame kinds of the program that populated the entry
    kinds: frozenset[str] = field(default_factory=frozenset)


def _entry_fp() -> tuple:
    """Fingerprint of the verifier's entry state (R1 = ctx pointer)."""
    ctx = RegState.pointer(RegType.PTR_TO_CTX)
    return state_fingerprint(
        VerifierState(frames=[FuncFrame.entry(ctx)], insn_idx=0)
    )


class VerdictCache:
    """Bounded LRU of per-program verifier outcomes for one shard.

    Instances are shard-local, so hit patterns are a pure function of
    that shard's program sequence and identical whether shards run
    serially or in parallel workers.
    """

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = capacity
        self._entries: OrderedDict[tuple, VerdictEntry] = OrderedDict()
        self._entry_state_fp = _entry_fp()

    def __len__(self) -> int:
        return len(self._entries)

    def _key(self, prog, map_specs, sanitize: bool) -> tuple:
        frames = tuple(
            (i.opcode, i.dst, i.src, i.off, i.imm, i.imm64)
            for i in prog.insns
        )
        return (
            frames,
            self._entry_state_fp,
            map_specs,
            prog.prog_type,
            prog.offload_dev,
            sanitize,
        )

    def _count(self, m, outcome: str, kinds: frozenset[str]) -> None:
        m.counter(f"cache.verdict.{outcome}")
        for kind in sorted(kinds):
            m.counter(f"cache.verdict.{outcome}.{kind}")

    def _store(self, key: tuple, entry: VerdictEntry) -> None:
        self._entries[key] = entry
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            obs.metrics().counter("cache.verdict.evictions")

    def load(self, kernel, prog, *, sanitize: bool, coverage,
             map_specs: tuple, kinds: frozenset[str]):
        """Load ``prog`` through the cache.

        Same contract as ``kernel.prog_load``: returns the
        :class:`~repro.ebpf.program.VerifiedProgram` or raises the
        verdict exception — from the recorded outcome on a hit, from a
        real verifier run (recorded for next time) on a miss.
        """
        key = self._key(prog, map_specs, sanitize)
        entry = self._entries.get(key)
        m = obs.metrics()
        if entry is not None:
            self._entries.move_to_end(key)
            self._count(m, "hits", kinds)
            if entry.kind == "accepted":
                verified = kernel.prog_load(
                    prog, sanitize=sanitize, cached_check=entry.check
                )
                if coverage is not None and entry.window is not None:
                    coverage.replay(entry.window)
                return verified
            for call in entry.metric_log:
                getattr(m, call[0])(*call[1:])
            if coverage is not None and entry.window is not None:
                coverage.replay(entry.window)
            if entry.kind == "reject":
                raise VerifierReject(entry.errno, entry.message,
                                     log=entry.log)
            raise BpfError(entry.errno, entry.message)

        self._count(m, "misses", kinds)
        tee = _RecordingMetrics(m)
        token = obs.install(tee, obs.recorder())
        window: set[int] | None = None
        try:
            if coverage is not None:
                with coverage.collect() as window:
                    verified = kernel.prog_load(prog, sanitize=sanitize)
            else:
                verified = kernel.prog_load(prog, sanitize=sanitize)
        except VerifierReject as reject:
            self._store(key, VerdictEntry(
                kind="reject", errno=reject.errno, message=reject.message,
                log=reject.log,
                window=frozenset(window) if window is not None else None,
                metric_log=tuple(tee.calls), kinds=kinds,
            ))
            raise
        except BpfError as error:
            self._store(key, VerdictEntry(
                kind="error", errno=error.errno, message=error.message,
                window=frozenset(window) if window is not None else None,
                metric_log=tuple(tee.calls), kinds=kinds,
            ))
            raise
        finally:
            obs.restore(token)
        if verified.check_summary is not None:
            self._store(key, VerdictEntry(
                kind="accepted", check=verified.check_summary,
                window=frozenset(window) if window is not None else None,
                kinds=kinds,
            ))
        return verified
