"""Generation-time program model: register tags, resources, plans.

The paper's key generation insight is that eBPF programs decompose
into fundamental sections (Figure 4), and that tracking *approximate*
register knowledge while emitting instructions lets the generator
synthesise operations that are usually valid — which is exactly what
raises the verifier acceptance rate without sacrificing expressiveness.

:class:`GenState` is that approximate tracker.  It is *much* coarser
than the verifier's abstract state (tags, not bounds), which is the
point: the generator needs just enough knowledge to pick plausible
operands, and residual mismatches are healthy — they probe the
verifier's rejection paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.ebpf.insn import Insn
from repro.ebpf.maps import BpfMap
from repro.ebpf.program import ProgType

__all__ = ["RegTag", "GenState", "ExecutionPlan", "GeneratedProgram"]


@dataclass
class RegTag:
    """Approximate knowledge about one register during generation."""

    kind: str = "uninit"
    #: the map behind map_ptr / map_value tags
    map: BpfMap | None = None
    #: known constant value, when kind == 'const'
    const: int | None = None
    #: for 'stack' pointers: offset from the frame pointer
    stack_off: int = 0
    #: for 'pkt' pointers: bytes proven readable
    pkt_len: int = 0
    #: for 'btf' pointers: object size
    btf_size: int = 0
    #: for 'scalar' values known to be small/bounded: inclusive max
    bounded_max: int | None = None

    POINTER_KINDS = frozenset(
        {"map_ptr", "map_value", "map_value_or_null", "stack", "ctx", "btf",
         "pkt", "pkt_end"}
    )

    def is_pointer(self) -> bool:
        return self.kind in self.POINTER_KINDS

    def is_scalarish(self) -> bool:
        return self.kind in ("scalar", "const")

    def usable(self) -> bool:
        return self.kind not in ("uninit", "poison")

    def clone(self) -> "RegTag":
        return replace(self)


@dataclass
class GenState:
    """Mutable state threaded through structured generation."""

    prog_type: ProgType
    tags: list[RegTag] = field(default_factory=lambda: [RegTag() for _ in range(11)])
    #: 8-byte-aligned stack slots (negative offsets) known initialised
    stack_inited: set[int] = field(default_factory=set)
    insns: list[Insn] = field(default_factory=list)
    #: maps created for this program, in creation order
    maps: list[BpfMap] = field(default_factory=list)
    #: loadable BTF object ids
    btf_ids: list[int] = field(default_factory=list)
    #: pending bpf-to-bpf subprogram bodies (emitted at finalisation)
    subprogs: list[list[Insn]] = field(default_factory=list)
    #: call sites awaiting subprog offsets: insn index -> subprog index
    subprog_calls: dict[int, int] = field(default_factory=dict)

    def emit(self, *insns: Insn) -> None:
        self.insns.extend(insns)

    def tag(self, regno: int) -> RegTag:
        return self.tags[regno]

    def set_tag(self, regno: int, tag: RegTag) -> None:
        self.tags[regno] = tag

    def regs_with(self, *kinds: str) -> list[int]:
        """Registers (R0-R9) currently holding one of the given kinds."""
        return [r for r in range(10) if self.tags[r].kind in kinds]

    def scratch_regs(self) -> list[int]:
        """Registers safe to clobber (no precious pointer state)."""
        return [
            r
            for r in range(10)
            if self.tags[r].kind in ("uninit", "scalar", "const", "poison")
        ]

    def snapshot_tags(self) -> list[RegTag]:
        return [t.clone() for t in self.tags]

    def merge_tags(self, other: list[RegTag]) -> None:
        """Join tags after a conditionally-executed body.

        Registers whose knowledge diverged between the two paths are
        poisoned — the generator will not rely on them again, which
        keeps both verifier paths type-consistent.
        """
        for r in range(11):
            a, b = self.tags[r], other[r]
            if a.kind != b.kind or a.map is not b.map or a.const != b.const:
                if a.is_scalarish() and b.is_scalarish():
                    self.tags[r] = RegTag(kind="scalar")
                else:
                    self.tags[r] = RegTag(kind="poison")

    def clobber_caller_saved(self) -> None:
        """Helper calls kill R0-R5."""
        for r in range(6):
            self.tags[r] = RegTag(kind="uninit")


@dataclass
class ExecutionPlan:
    """What the campaign does with the program once it loads.

    Mirrors the breadth of a real fuzzing executor: direct test runs,
    tracepoint attachment + triggering, dispatcher routing for XDP,
    user-space map traffic, and info queries.
    """

    #: tracepoint to attach to (tracing program types only)
    attach_tracepoint: str | None = None
    #: route through the BPF dispatcher (XDP only; Bug #7 surface)
    use_dispatcher: bool = False
    #: direct test-run triggers
    n_runs: int = 1
    #: user-space map operations: ('update'|'lookup'|'delete'|'iterate', key)
    map_ops: list[tuple[str, bytes]] = field(default_factory=list)
    #: query xlated instructions afterwards (Bug #8 surface)
    query_info: bool = False


@dataclass
class GeneratedProgram:
    """A generated program plus the resources and plan around it."""

    insns: list[Insn]
    prog_type: ProgType
    maps: list[BpfMap]
    plan: ExecutionPlan
    #: generator that produced it (for statistics)
    origin: str = "bvf"
    #: request device offload at load time (Bug #11 surface)
    offload_dev: str | None = None
    #: Figure-4 frame kinds emitted, in order ("basic"/"jump"/"call";
    #: "flat" for unstructured emission).  Empty for generators that
    #: do not use the structure — the rejection taxonomy buckets those
    #: by origin instead.
    frame_kinds: tuple[str, ...] = ()
