/* C trace callback for verifier line-edge coverage.
 *
 * Python-level tracing (sys.settrace) costs ~1.5us per line event in
 * the interpreter's trace dispatch alone, which dominates campaign
 * wall time: the verifier executes a few thousand traced lines per
 * generated program.  This module registers the same line-edge
 * collection through PyEval_SetTrace, where an event costs a C call
 * and a hash-table insert.
 *
 * Edge keys are BIT-IDENTICAL to the settrace backend in
 * repro/fuzz/coverage.py:
 *
 *     code_id = crc32(f"{basename}:{qualname}:{firstlineno}")
 *     key     = (code_id << 30) | ((prev & 0x7fff) << 15) | (line & 0x7fff)
 *
 * so edge sets from either backend compare and union freely (the
 * cross-backend parity test asserts this).  Scope filtering matches
 * too: only code objects whose filename starts with the configured
 * prefix contribute edges; everything else has its per-frame line
 * tracing disabled on entry.
 *
 * Collected edges live in a C open-addressing hash set of uint64 and
 * are only materialised as Python ints when stop() drains the window,
 * so the per-event cost stays allocation-free.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdint.h>
#include <string.h>

#define LINE_BITS 15
#define LINE_MASK ((1u << LINE_BITS) - 1)

/* ---- crc32 (zlib polynomial), table generated at init ---------------- */

static uint32_t crc_table[256];

static void
crc_init(void)
{
    for (uint32_t n = 0; n < 256; n++) {
        uint32_t c = n;
        for (int k = 0; k < 8; k++)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        crc_table[n] = c;
    }
}

static uint32_t
crc32_buf(const unsigned char *buf, Py_ssize_t len)
{
    uint32_t c = 0xffffffffu;
    for (Py_ssize_t i = 0; i < len; i++)
        c = crc_table[(c ^ buf[i]) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

/* ---- uint64 open-addressing hash set --------------------------------- */

typedef struct {
    uint64_t *slots;   /* 0 = empty (edge keys are never 0: code_id!=0) */
    size_t mask;       /* capacity - 1, capacity is a power of two */
    size_t used;
} edgeset;

static int
edgeset_init(edgeset *s, size_t cap)
{
    s->slots = calloc(cap, sizeof(uint64_t));
    if (!s->slots)
        return -1;
    s->mask = cap - 1;
    s->used = 0;
    return 0;
}

static void
edgeset_free(edgeset *s)
{
    free(s->slots);
    s->slots = NULL;
    s->used = 0;
    s->mask = 0;
}

static int edgeset_add(edgeset *s, uint64_t key);

static int
edgeset_grow(edgeset *s)
{
    edgeset bigger;
    if (edgeset_init(&bigger, (s->mask + 1) * 2) < 0)
        return -1;
    for (size_t i = 0; i <= s->mask; i++)
        if (s->slots[i])
            edgeset_add(&bigger, s->slots[i]);
    free(s->slots);
    *s = bigger;
    return 0;
}

static int
edgeset_add(edgeset *s, uint64_t key)
{
    size_t i = (size_t)(key * 0x9e3779b97f4a7c15ull) & s->mask;
    for (;;) {
        uint64_t cur = s->slots[i];
        if (cur == key)
            return 0;
        if (cur == 0) {
            s->slots[i] = key;
            s->used++;
            if (s->used * 10 > (s->mask + 1) * 7)
                return edgeset_grow(s);
            return 0;
        }
        i = (i + 1) & s->mask;
    }
}

/* ---- per-frame shadow stack ------------------------------------------ */

/* Scoped frames are entered/left strictly LIFO within one thread; the
 * tracer only runs while the (single-threaded) verifier executes.  A
 * small stack keyed by the frame object pointer carries each scoped
 * frame's code_id and previous line. */

typedef struct {
    PyFrameObject *frame;
    uint64_t shifted;     /* code_id << (2 * LINE_BITS) */
    int prev;
} frame_entry;

#define MAX_DEPTH 256

typedef struct {
    PyObject *scope_ids;      /* dict: code object -> int code_id, or None */
    PyObject *prefix;         /* str: traced filename prefix */
    PyObject *basenames;      /* set/frozenset of traced basenames, or NULL */
    edgeset edges;
    frame_entry stack[MAX_DEPTH];
    int depth;
    int active;
} tracer_state;

static tracer_state T;

/* code_id for a code object, computing and caching on first sight.
 * Returns 0 for out-of-scope code (crc32 of a non-empty identity
 * string is never 0 in practice; collisions with 0 would only drop
 * that one function from coverage, deterministically). */
static uint64_t
code_id_for(PyCodeObject *code)
{
    PyObject *cached = PyDict_GetItemWithError(T.scope_ids, (PyObject *)code);
    if (cached) {
        if (cached == Py_None)
            return 0;
        return (uint64_t)PyLong_AsUnsignedLong(cached);
    }
    if (PyErr_Occurred())
        PyErr_Clear();

    PyObject *filename = code->co_filename;
    uint64_t result = 0;
    if (PyUnicode_Check(filename) &&
        PyUnicode_Tailmatch(filename, T.prefix, 0, PY_SSIZE_T_MAX, -1) == 1) {
        /* basename(filename):qualname:firstlineno — identical to
         * coverage._stable_code_id. */
        PyObject *base = NULL, *qual = NULL, *ident = NULL, *encoded = NULL;
        Py_ssize_t pos = PyUnicode_FindChar(filename, '/', 0,
                                            PyUnicode_GET_LENGTH(filename), -1);
        base = (pos >= 0)
            ? PyUnicode_Substring(filename, pos + 1,
                                  PyUnicode_GET_LENGTH(filename))
            : Py_NewRef(filename);
        int scoped = base != NULL;
        if (scoped && T.basenames && T.basenames != Py_None) {
            int member = PySet_Contains(T.basenames, base);
            if (member < 0) {
                PyErr_Clear();
                member = 0;
            }
            scoped = member;
        }
        if (scoped) {
            qual = code->co_qualname ? Py_NewRef(code->co_qualname)
                                     : Py_NewRef(code->co_name);
            if (base && qual)
                ident = PyUnicode_FromFormat("%U:%U:%d", base, qual,
                                             code->co_firstlineno);
            if (ident)
                encoded = PyUnicode_AsUTF8String(ident);
            if (encoded)
                result = crc32_buf(
                    (unsigned char *)PyBytes_AS_STRING(encoded),
                    PyBytes_GET_SIZE(encoded));
        }
        Py_XDECREF(encoded);
        Py_XDECREF(ident);
        Py_XDECREF(qual);
        Py_XDECREF(base);
        if (PyErr_Occurred()) {
            PyErr_Clear();
            result = 0;
        }
    }

    PyObject *value = result ? PyLong_FromUnsignedLong((unsigned long)result)
                             : Py_NewRef(Py_None);
    if (value) {
        if (PyDict_SetItem(T.scope_ids, (PyObject *)code, value) < 0)
            PyErr_Clear();
        Py_DECREF(value);
    }
    return result;
}

static int
trace_func(PyObject *obj, PyFrameObject *frame, int what, PyObject *arg)
{
    (void)obj;
    (void)arg;
    switch (what) {
    case PyTrace_CALL: {
        PyCodeObject *code = PyFrame_GetCode(frame);
        uint64_t cid = code_id_for(code);
        Py_DECREF(code);
        if (cid == 0) {
            /* Out of scope: stop line events for this frame entirely. */
            if (PyObject_SetAttrString((PyObject *)frame, "f_trace_lines",
                                       Py_False) < 0)
                PyErr_Clear();
            return 0;
        }
        if (T.depth < MAX_DEPTH) {
            frame_entry *e = &T.stack[T.depth++];
            e->frame = frame;
            e->shifted = cid << (2 * LINE_BITS);
            e->prev = PyFrame_GetLineNumber(frame);
        }
        return 0;
    }
    case PyTrace_LINE: {
        if (T.depth == 0)
            return 0;
        frame_entry *e = &T.stack[T.depth - 1];
        if (e->frame != frame)
            return 0;
        int line = PyFrame_GetLineNumber(frame);
        uint64_t key = e->shifted
            | (((uint64_t)(e->prev & LINE_MASK)) << LINE_BITS)
            | (uint64_t)(line & LINE_MASK);
        e->prev = line;
        if (edgeset_add(&T.edges, key) < 0) {
            PyErr_NoMemory();
            return -1;
        }
        return 0;
    }
    case PyTrace_RETURN:
        if (T.depth > 0 && T.stack[T.depth - 1].frame == frame)
            T.depth--;
        return 0;
    default:
        return 0;
    }
}

/* ---- module API ------------------------------------------------------- */

static PyObject *
ctrace_start(PyObject *self, PyObject *args)
{
    (void)self;
    PyObject *prefix;
    PyObject *basenames = NULL;
    if (!PyArg_ParseTuple(args, "U|O", &prefix, &basenames))
        return NULL;
    if (T.active) {
        PyErr_SetString(PyExc_RuntimeError, "ctrace already active");
        return NULL;
    }
    if (edgeset_init(&T.edges, 4096) < 0)
        return PyErr_NoMemory();
    /* Scope parameters feed the per-code-object cache; a different
     * (prefix, basenames) pair invalidates previous classifications.
     * The common case — every window uses the same scope objects — is
     * an identity comparison and keeps the cache warm. */
    if (T.prefix != prefix || T.basenames != basenames)
        PyDict_Clear(T.scope_ids);
    Py_INCREF(prefix);
    Py_XSETREF(T.prefix, prefix);
    Py_XINCREF(basenames);
    Py_XSETREF(T.basenames, basenames);
    T.depth = 0;
    T.active = 1;
    PyEval_SetTrace(trace_func, NULL);
    Py_RETURN_NONE;
}

static PyObject *
ctrace_stop(PyObject *self, PyObject *args)
{
    (void)self;
    (void)args;
    if (!T.active) {
        PyErr_SetString(PyExc_RuntimeError, "ctrace not active");
        return NULL;
    }
    PyEval_SetTrace(NULL, NULL);
    T.active = 0;
    PyObject *result = PySet_New(NULL);
    if (!result) {
        edgeset_free(&T.edges);
        return NULL;
    }
    for (size_t i = 0; i <= T.edges.mask; i++) {
        uint64_t key = T.edges.slots[i];
        if (!key)
            continue;
        PyObject *v = PyLong_FromUnsignedLongLong(key);
        if (!v || PySet_Add(result, v) < 0) {
            Py_XDECREF(v);
            Py_DECREF(result);
            edgeset_free(&T.edges);
            return NULL;
        }
        Py_DECREF(v);
    }
    edgeset_free(&T.edges);
    return result;
}

static PyMethodDef ctrace_methods[] = {
    {"start", ctrace_start, METH_VARARGS,
     "start(prefix): begin collecting line edges for code under prefix"},
    {"stop", ctrace_stop, METH_NOARGS,
     "stop() -> set[int]: stop collecting and return the edge window"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef ctrace_module = {
    PyModuleDef_HEAD_INIT, "_bvf_ctrace",
    "C trace callback for verifier coverage", -1, ctrace_methods,
    NULL, NULL, NULL, NULL,
};

PyMODINIT_FUNC
PyInit__bvf_ctrace(void)
{
    crc_init();
    T.scope_ids = PyDict_New();
    if (!T.scope_ids)
        return NULL;
    return PyModule_Create(&ctrace_module);
}
