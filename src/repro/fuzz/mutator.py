"""Mutation operators over generated programs.

The paper leans on the fuzzer's mutation machinery for two things:
exploring around coverage-contributing seeds, and *simulating unrolled
loops by duplicating adjacent instructions* (Section 4.1).  All
operators preserve the slot structure — duplications go through the
jump-offset-fixing patcher so control flow stays consistent (whether
the result still verifies is the verifier's problem, by design).
"""

from __future__ import annotations

from repro.ebpf.insn import Insn
from repro.ebpf.opcodes import AluOp, InsnClass
from repro.fuzz.rng import FuzzRng
from repro.verifier.patch import insert_before

__all__ = ["mutate"]

_FLIPPABLE_ALU = (
    AluOp.ADD,
    AluOp.SUB,
    AluOp.MUL,
    AluOp.OR,
    AluOp.AND,
    AluOp.XOR,
)


def _plain_indices(insns: list[Insn]) -> list[int]:
    """Indices safe to duplicate/tweak: straight-line, single-slot."""
    result = []
    for idx, insn in enumerate(insns):
        if insn.is_filler() or insn.is_ld_imm64():
            continue
        if insn.is_jmp():
            continue
        result.append(idx)
    return result


def _dup_adjacent(insns: list[Insn], rng: FuzzRng) -> list[Insn]:
    """Duplicate one instruction in place (simulated loop unrolling)."""
    candidates = _plain_indices(insns)
    if not candidates:
        return insns
    idx = rng.pick(candidates)
    patched, _ = insert_before(insns, {idx: [insns[idx]]})
    return patched

def _tweak_imm(insns: list[Insn], rng: FuzzRng) -> list[Insn]:
    candidates = [
        i
        for i in _plain_indices(insns)
        if insns[i].insn_class in (InsnClass.ALU, InsnClass.ALU64, InsnClass.ST)
    ]
    if not candidates:
        return insns
    idx = rng.pick(candidates)
    insn = insns[idx]
    if rng.chance(0.5):
        new_imm = insn.imm + rng.pick((-8, -4, -1, 1, 4, 8))
    else:
        new_imm = rng.fuzz_imm32()
    result = list(insns)
    result[idx] = insn.with_(imm=new_imm)
    return result


def _tweak_off(insns: list[Insn], rng: FuzzRng) -> list[Insn]:
    candidates = [
        i
        for i in _plain_indices(insns)
        if insns[i].is_memory_load() or insns[i].is_memory_store()
    ]
    if not candidates:
        return insns
    idx = rng.pick(candidates)
    insn = insns[idx]
    delta = rng.pick((-16, -8, -4, -1, 1, 4, 8, 16))
    result = list(insns)
    result[idx] = insn.with_(off=insn.off + delta)
    return result


def _flip_alu_op(insns: list[Insn], rng: FuzzRng) -> list[Insn]:
    candidates = [
        i
        for i in _plain_indices(insns)
        if insns[i].insn_class in (InsnClass.ALU, InsnClass.ALU64)
        and insns[i].alu_op in _FLIPPABLE_ALU
    ]
    if not candidates:
        return insns
    idx = rng.pick(candidates)
    insn = insns[idx]
    new_op = rng.pick([op for op in _FLIPPABLE_ALU if op != insn.alu_op])
    result = list(insns)
    result[idx] = insn.with_(opcode=(insn.opcode & 0x0F) | new_op)
    return result


_OPERATORS = (_dup_adjacent, _tweak_imm, _tweak_off, _flip_alu_op)


def mutate(insns: list[Insn], rng: FuzzRng, rounds: int = 1) -> list[Insn]:
    """Apply 1..rounds random mutation operators."""
    result = list(insns)
    for _ in range(max(1, rounds)):
        result = rng.pick(_OPERATORS)(result, rng)
    return result
