"""kcov-style coverage over the verifier's code.

The paper instruments only the eBPF source with kcov and uses branch
coverage both as the fuzzer's feedback signal and as the evaluation
metric (Figure 6 / Table 3).  Our "kernel source" is the Python
verifier, so we trace *it*: a tracing hook, enabled only while the
verifier runs, records line-to-line edges within the modules under
``repro/verifier``.  Unique ``(code object, prev line, line)`` edges
are the branch-coverage analogue.

Three tracing backends are available:

- ``ctrace`` — a C trace callback (:mod:`_bvf_ctrace`, compiled on
  demand from ``_native/ctrace.c`` via :func:`PyEval_SetTrace`), which
  replaces the interpreter-level per-line dispatch with a C call and a
  hash-set insert; it produces bit-identical edge keys to the Python
  backends and is preferred whenever a C compiler or a prebuilt
  extension is available;
- ``monitoring`` — the PEP 669 :mod:`sys.monitoring` API (Python
  3.12+), which dispatches per-line events without the per-call
  closure allocation ``sys.settrace`` needs and lets out-of-scope code
  disable its own events after the first hit;
- ``settrace`` — the classic :func:`sys.settrace` hook, the portable
  fallback that works on every interpreter.

``backend="auto"`` (the default) picks the fastest available one in
the order above.

Edge keys are **stable across processes**: they are composed from a
CRC32 of the code object's file/qualname/first-line identity plus the
line pair, never from :func:`hash` (whose string hashing is salted per
process).  That is what makes :meth:`merge`/:meth:`snapshot_edges`
sound for the sharded parallel campaigns in
:mod:`repro.fuzz.parallel`: a union of edge sets collected in
different worker processes counts each distinct verifier edge exactly
once.

The tracer is deliberately scoped: helper implementations, maps, and
the interpreter are not traced, mirroring the paper's setup where only
the eBPF subsystem is instrumented so all tools compete on the same
measurement range.  Within ``repro/verifier`` the scope is narrowed
further to the *decision* modules (:data:`_SCOPE_BASENAMES` — the
instruction walker, ALU/memory checks, branch reasoning, and call
checking), where control flow corresponds to verifier verdicts.  The
data-structure modules (``tnum``/``state``/``stack``/``env``) are
arithmetic and book-keeping plumbing whose edges carry no feedback
signal — and keeping them out of scope is also what makes the pruning
index, tnum memoization, and copy-on-write clone machinery they host
*coverage-transparent*: a cache hit or miss can never change which
edges a program contributes.
"""

from __future__ import annotations

import os
import sys
import zlib
from contextlib import contextmanager
from typing import Iterable

import repro.verifier as _verifier_pkg

__all__ = ["VerifierCoverage", "CoverageReentryError"]

_VERIFIER_DIR = os.path.dirname(os.path.abspath(_verifier_pkg.__file__))


def _preload_verifier_modules() -> None:
    """Import every ``repro.verifier`` submodule eagerly.

    A submodule imported lazily during a traced verifier run would
    contribute its module-body lines as coverage edges — but only in
    the first collection window of whichever process happens to import
    it first.  That would make edge sets depend on process history
    (a forked shard worker inherits its parent's warm import state and
    never records them), breaking the worker-count invariance of
    parallel campaign merges.  Importing everything up front keeps
    edge sets a pure function of what the verifier executes.
    """
    import importlib
    import pkgutil

    for module in pkgutil.iter_modules(_verifier_pkg.__path__):
        importlib.import_module(f"{_verifier_pkg.__name__}.{module.name}")


_preload_verifier_modules()

#: Bits reserved for each line number inside an edge key.  Verifier
#: modules are a few thousand lines; 15 bits (32767) is ample.
_LINE_BITS = 15
_LINE_MASK = (1 << _LINE_BITS) - 1


#: Decision modules inside ``repro/verifier`` that contribute edges.
_SCOPE_BASENAMES = frozenset(
    {"core.py", "checks.py", "branches.py", "calls.py"}
)


def _in_scope(filename: str) -> bool:
    return (
        filename.startswith(_VERIFIER_DIR)
        and os.path.basename(filename) in _SCOPE_BASENAMES
    )


def _stable_code_id(code) -> int:
    """A per-process-independent 32-bit identity for a code object.

    ``hash(code)`` mixes in salted string hashes (PYTHONHASHSEED), so
    edge sets built in different worker processes would not compare or
    union correctly.  CRC32 over the stable identity triple does.
    """
    qualname = getattr(code, "co_qualname", code.co_name)
    key = f"{os.path.basename(code.co_filename)}:{qualname}:{code.co_firstlineno}"
    return zlib.crc32(key.encode())


def _edge_key(code_id: int, prev: int, line: int) -> int:
    return (
        (code_id << (2 * _LINE_BITS))
        | ((prev & _LINE_MASK) << _LINE_BITS)
        | (line & _LINE_MASK)
    )


class CoverageReentryError(RuntimeError):
    """Raised when :meth:`VerifierCoverage.collect` is nested.

    A nested window would clobber the active window's edge set and
    silently corrupt ``last_new`` (the corpus feedback signal), so
    re-entry is rejected loudly instead.
    """


#: Cached ``_bvf_ctrace`` module, or ``False`` after a failed attempt
#: (so a missing compiler is probed exactly once per process).
_CTRACE_MODULE: object = None


def _load_ctrace():
    """Import the C tracer, compiling it on first use if possible.

    Returns the module or ``None``.  Failures (no compiler, no
    ``Python.h``, exotic platform) are cached and silent: the Python
    backends are always available as fallbacks, so a build problem
    must never break a campaign, only slow it down.
    """
    global _CTRACE_MODULE
    if _CTRACE_MODULE is not None:
        return _CTRACE_MODULE or None

    import importlib.util
    import shutil
    import subprocess
    import sysconfig

    native_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                              "_native")
    source = os.path.join(native_dir, "ctrace.c")
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    target = os.path.join(native_dir, f"_bvf_ctrace{suffix}")

    def _import_built():
        spec = importlib.util.spec_from_file_location("_bvf_ctrace", target)
        if spec is None or spec.loader is None:
            return None
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    try:
        if (not os.path.exists(target)
                or os.path.getmtime(target) < os.path.getmtime(source)):
            compiler = shutil.which("cc") or shutil.which("gcc")
            include = sysconfig.get_path("include")
            if compiler is None or include is None:
                raise OSError("no C compiler or Python headers")
            subprocess.run(
                [compiler, "-O2", "-shared", "-fPIC", f"-I{include}",
                 source, "-o", target],
                check=True, capture_output=True, timeout=120,
            )
        _CTRACE_MODULE = _import_built()
    except Exception:
        _CTRACE_MODULE = False
        return None
    if _CTRACE_MODULE is None:
        _CTRACE_MODULE = False
        return None
    return _CTRACE_MODULE


class _CtraceBackend:
    """Line-edge tracing via the :mod:`_bvf_ctrace` C extension.

    The extension keeps the hot path — one trace callback per line —
    entirely in C: scope classification is cached per code object, the
    edge key is assembled from a per-frame shadow stack, and edges land
    in a C hash set that is only materialised as Python ints when the
    window closes.
    """

    name = "ctrace"

    def __init__(self, module) -> None:
        self._module = module
        self._window: set[int] | None = None

    @staticmethod
    def load():
        return _load_ctrace()

    def start(self, window: set[int]) -> None:
        self._window = window
        self._module.start(_VERIFIER_DIR, _SCOPE_BASENAMES)

    def stop(self) -> None:
        window, self._window = self._window, None
        window |= self._module.stop()


class _SettraceBackend:
    """Line-edge tracing via :func:`sys.settrace`."""

    name = "settrace"

    def __init__(self) -> None:
        self._scope_cache: dict[str, bool] = {}
        self._code_ids: dict[object, int] = {}
        self._window: set[int] | None = None
        self._saved_trace = None

    def start(self, window: set[int]) -> None:
        self._window = window
        self._saved_trace = sys.gettrace()
        sys.settrace(self._global_trace)

    def stop(self) -> None:
        sys.settrace(self._saved_trace)
        self._saved_trace = None
        self._window = None

    def _global_trace(self, frame, event, arg):
        if event != "call":
            return None
        code = frame.f_code
        filename = code.co_filename
        in_scope = self._scope_cache.get(filename)
        if in_scope is None:
            in_scope = _in_scope(filename)
            self._scope_cache[filename] = in_scope
        if not in_scope:
            return None
        code_id = self._code_ids.get(code)
        if code_id is None:
            code_id = _stable_code_id(code)
            self._code_ids[code] = code_id
        shifted = code_id << (2 * _LINE_BITS)
        prev = [frame.f_lineno]
        window = self._window
        window_add = window.add

        def local_trace(frame, event, arg):
            if event == "line":
                line = frame.f_lineno
                window_add(
                    shifted
                    | ((prev[0] & _LINE_MASK) << _LINE_BITS)
                    | (line & _LINE_MASK)
                )
                prev[0] = line
            return local_trace

        return local_trace


class _MonitoringBackend:
    """Line-edge tracing via :mod:`sys.monitoring` (PEP 669).

    Out-of-scope code objects return ``sys.monitoring.DISABLE`` from
    their first event, so after warm-up only verifier code pays any
    dispatch cost at all — the core of the hot-path win over
    ``settrace``, which must filter every call event forever.
    """

    name = "monitoring"

    def __init__(self) -> None:
        self._scope_cache: dict[object, bool] = {}
        self._code_ids: dict[object, int] = {}
        #: per-code previous line within the current window
        self._prev: dict[object, int] = {}
        self._window: set[int] | None = None

    @staticmethod
    def available() -> bool:
        return hasattr(sys, "monitoring")

    @property
    def _tool_id(self) -> int:
        return sys.monitoring.COVERAGE_ID

    def start(self, window: set[int]) -> None:
        mon = sys.monitoring
        try:
            mon.use_tool_id(self._tool_id, "bvf-verifier-coverage")
        except ValueError as exc:  # pragma: no cover - foreign tool active
            raise CoverageReentryError(
                "sys.monitoring coverage tool id already in use "
                "(another collection window is active?)"
            ) from exc
        self._window = window
        self._prev.clear()
        events = mon.events
        mon.register_callback(self._tool_id, events.PY_START, self._on_start)
        mon.register_callback(self._tool_id, events.LINE, self._on_line)
        mon.set_events(self._tool_id, events.PY_START | events.LINE)

    def stop(self) -> None:
        mon = sys.monitoring
        mon.set_events(self._tool_id, 0)
        mon.register_callback(self._tool_id, mon.events.PY_START, None)
        mon.register_callback(self._tool_id, mon.events.LINE, None)
        mon.free_tool_id(self._tool_id)
        self._window = None
        self._prev.clear()

    def _scoped(self, code) -> bool:
        in_scope = self._scope_cache.get(code)
        if in_scope is None:
            in_scope = _in_scope(code.co_filename)
            self._scope_cache[code] = in_scope
        return in_scope

    def _on_start(self, code, instruction_offset):
        if not self._scoped(code):
            return sys.monitoring.DISABLE
        # Function entry: edges restart from the def line, matching the
        # settrace backend's per-call prev initialisation.
        self._prev[code] = code.co_firstlineno
        return None

    def _on_line(self, code, line):
        if not self._scoped(code):
            return sys.monitoring.DISABLE
        code_id = self._code_ids.get(code)
        if code_id is None:
            code_id = _stable_code_id(code)
            self._code_ids[code] = code_id
        prev = self._prev.get(code, code.co_firstlineno)
        self._window.add(_edge_key(code_id, prev, line))
        self._prev[code] = line
        return None


def _make_backend(backend: str):
    if backend == "auto":
        module = _CtraceBackend.load()
        if module is not None:
            return _CtraceBackend(module)
        backend = "monitoring" if _MonitoringBackend.available() else "settrace"
    if backend == "ctrace":
        module = _CtraceBackend.load()
        if module is None:
            raise ValueError(
                "ctrace backend requested but the _bvf_ctrace extension "
                "could not be built or imported"
            )
        return _CtraceBackend(module)
    if backend == "monitoring":
        if not _MonitoringBackend.available():
            raise ValueError(
                "sys.monitoring backend requested but unavailable "
                f"on Python {sys.version_info.major}.{sys.version_info.minor}"
            )
        return _MonitoringBackend()
    if backend == "settrace":
        return _SettraceBackend()
    raise ValueError(f"unknown coverage backend {backend!r}")


class VerifierCoverage:
    """Accumulates edge coverage of the verifier across many runs."""

    def __init__(self, backend: str = "auto") -> None:
        #: all unique edges ever observed
        self.edges: set[int] = set()
        #: edges observed during the current collection window
        self._window: set[int] = set()
        #: edges the most recent window newly contributed
        self.last_new = 0
        self._backend = _make_backend(backend)
        self._collecting = False

    @property
    def backend_name(self) -> str:
        return self._backend.name

    # --- collection API ----------------------------------------------------------

    @contextmanager
    def collect(self):
        """Trace verifier execution inside the ``with`` block.

        Yields the per-window edge set; new edges are merged into the
        cumulative set on exit.  Nesting ``collect()`` raises
        :class:`CoverageReentryError` — a silent nested window would
        clobber the outer window and miscount ``last_new``.
        """
        if self._collecting:
            raise CoverageReentryError(
                "VerifierCoverage.collect() is not re-entrant: a "
                "collection window is already active on this instance"
            )
        self._collecting = True
        self._window = set()
        self._backend.start(self._window)
        try:
            yield self._window
        finally:
            self._backend.stop()
            self.last_new = len(self._window - self.edges)
            self.edges |= self._window
            self._collecting = False

    def replay(self, window: Iterable[int]) -> None:
        """Apply a previously recorded collection window without tracing.

        The frame-level verdict cache records the edge window of the
        first (miss) verification of a program and replays it on every
        hit, so ``last_new`` — the corpus feedback signal — and the
        cumulative edge set evolve exactly as they would have had the
        verifier actually run.  Semantically equivalent to a
        :meth:`collect` block that traced the recorded edges.
        """
        if self._collecting:
            raise CoverageReentryError(
                "VerifierCoverage.replay() inside an active collection "
                "window would corrupt the window's last_new accounting"
            )
        window = set(window)
        self.last_new = len(window - self.edges)
        self.edges |= window

    # --- accumulation / merge API ------------------------------------------------

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def snapshot(self) -> int:
        return len(self.edges)

    def snapshot_edges(self) -> frozenset[int]:
        """An immutable, picklable copy of the cumulative edge set.

        Edge keys are stable across processes, so snapshots taken in
        campaign shard workers can be unioned in the parent.
        """
        return frozenset(self.edges)

    def merge(self, other: "VerifierCoverage | Iterable[int]") -> int:
        """Fold another coverage accumulation into this one.

        Accepts either a :class:`VerifierCoverage` or any iterable of
        edge keys (e.g. a :meth:`snapshot_edges` result shipped back
        from a worker process).  Returns the number of edges that were
        new to this accumulator.
        """
        if isinstance(other, VerifierCoverage):
            incoming = other.edges
        else:
            incoming = set(other)
        before = len(self.edges)
        self.edges |= incoming
        return len(self.edges) - before
