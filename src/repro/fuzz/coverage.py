"""kcov-style coverage over the verifier's code.

The paper instruments only the eBPF source with kcov and uses branch
coverage both as the fuzzer's feedback signal and as the evaluation
metric (Figure 6 / Table 3).  Our "kernel source" is the Python
verifier, so we trace *it*: a :func:`sys.settrace` hook, enabled only
while the verifier runs, records line-to-line edges within the modules
under ``repro/verifier``.  Unique ``(code object, prev line, line)``
edges are the branch-coverage analogue.

The tracer is deliberately scoped: helper implementations, maps, and
the interpreter are not traced, mirroring the paper's setup where only
the eBPF subsystem is instrumented so all tools compete on the same
measurement range.
"""

from __future__ import annotations

import os
import sys
from contextlib import contextmanager

import repro.verifier as _verifier_pkg

__all__ = ["VerifierCoverage"]

_VERIFIER_DIR = os.path.dirname(os.path.abspath(_verifier_pkg.__file__))


def _in_scope(filename: str) -> bool:
    return filename.startswith(_VERIFIER_DIR)


class VerifierCoverage:
    """Accumulates edge coverage of the verifier across many runs."""

    def __init__(self) -> None:
        #: all unique edges ever observed
        self.edges: set[int] = set()
        #: edges observed during the current collection window
        self._window: set[int] = set()
        #: edges the most recent window newly contributed
        self.last_new = 0
        self._scope_cache: dict[str, bool] = {}

    # --- the trace hooks ---------------------------------------------------

    def _global_trace(self, frame, event, arg):
        if event != "call":
            return None
        filename = frame.f_code.co_filename
        in_scope = self._scope_cache.get(filename)
        if in_scope is None:
            in_scope = _in_scope(filename)
            self._scope_cache[filename] = in_scope
        if not in_scope:
            return None
        code_hash = hash(frame.f_code)
        prev = [frame.f_lineno]
        window = self._window

        def local_trace(frame, event, arg):
            if event == "line":
                line = frame.f_lineno
                window.add(hash((code_hash, prev[0], line)))
                prev[0] = line
            return local_trace

        return local_trace

    # --- collection API ----------------------------------------------------------

    @contextmanager
    def collect(self):
        """Trace verifier execution inside the ``with`` block.

        Yields the per-window edge set; new edges are merged into the
        cumulative set on exit.
        """
        self._window = set()
        old = sys.gettrace()
        sys.settrace(self._global_trace)
        try:
            yield self._window
        finally:
            sys.settrace(old)
            self.last_new = len(self._window - self.edges)
            self.edges |= self._window

    @property
    def edge_count(self) -> int:
        return len(self.edges)

    def snapshot(self) -> int:
        return len(self.edges)
