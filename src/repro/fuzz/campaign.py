"""Fuzzing campaign driver.

One campaign models one of the paper's testing deployments: a tool
(BVF or a baseline), a kernel version, and a budget of generated
programs (our proxy for wall-clock hours).  Each iteration boots a
fresh simulated kernel — crash isolation, exactly like the VM-per-crash
regime kernel fuzzers run under — generates or mutates a program,
pushes it through the verifier (collecting kcov-style coverage),
executes the survivors with the full plan (direct runs, tracepoint
triggers, dispatcher routing, user-space map traffic, info queries),
and hands every captured report to the oracle.

Campaign results carry everything the evaluation section needs:
acceptance rates with errno breakdowns (Section 6.3), coverage curves
(Figure 6) and totals (Table 3), instruction-mix histograms (the
Buzzer characterisation), and the deduplicated bug table (Table 2).
"""

from __future__ import annotations

import errno as _errno
import time
from collections import Counter
from dataclasses import dataclass, field

from repro import obs
from repro.errors import (
    BpfError,
    InvariantViolation,
    KernelReport,
    MapError,
    VerifierReject,
)
from repro.obs.frontier import DEFAULT_PLATEAU_WINDOW, FrontierTracker
from repro.obs.metrics import cache_hit_rates
from repro.obs.taxonomy import classify
from repro.verifier.log import final_message
from repro.ebpf.opcodes import InsnClass
from repro.ebpf.program import BpfProgram
from repro.kernel.config import PROFILES, KernelConfig
from repro.kernel.syscall import Kernel
from repro.fuzz.baselines.buzzer_gen import BuzzerGenerator
from repro.fuzz.baselines.syzkaller_gen import SyzkallerGenerator
from repro.fuzz.corpus import Corpus, specs_of
from repro.fuzz.coverage import VerifierCoverage
from repro.fuzz.generator import GeneratorConfig, StructuredGenerator
from repro.fuzz.mutator import mutate
from repro.fuzz.oracle import BugFinding, Oracle
from repro.fuzz.rng import FuzzRng
from repro.fuzz.structure import GeneratedProgram
from repro.fuzz.verdict import VerdictCache
from repro.runtime.executor import Executor
from repro.verifier.tnum import tnum_memo_stats

__all__ = ["CampaignConfig", "CampaignResult", "Campaign", "make_generator"]


@dataclass
class CampaignConfig:
    """Parameters of one campaign."""

    tool: str = "bvf"  # bvf | syzkaller | buzzer | bvf-nostructure
    kernel_version: str = "bpf-next"
    #: number of generated programs (the time-budget proxy)
    budget: int = 300
    seed: int = 0
    #: BVF's sanitation on verified programs (baselines run without)
    sanitize: bool = True
    collect_coverage: bool = True
    #: sample the coverage curve every N programs
    sample_every: int = 10
    #: probability of mutating a corpus seed instead of generating
    mutate_rate: float = 0.3
    #: write a JSONL trace of the run here (None = tracing disabled;
    #: sharded campaigns append a per-shard suffix)
    trace_path: str | None = None
    #: run every generated program through the cross-version
    #: differential oracle (:mod:`repro.analysis.differential`)
    differential: bool = False
    #: run the :class:`~repro.verifier.sanity.VStateChecker` at
    #: verifier checkpoints (off = zero-cost hot path)
    check_invariants: bool = False
    #: record verifier decision events in the flight recorder
    #: (:mod:`repro.obs.events`) and attach a rejection explanation per
    #: taxonomy reason (:mod:`repro.obs.explain`); off = zero-cost
    flight: bool = False
    #: attempt a verified minimal repair for every rejection
    #: (:mod:`repro.analysis.repair`) and feed accepted repairs back
    #: into the mutation corpus; implies the flight recorder (the
    #: failing-instruction attribution comes from the decision ring)
    #: and disables the verdict cache like every introspection mode.
    #: Off = zero-cost hot path.
    repair_feedback: bool = False
    #: run the hierarchical verifier profiler
    #: (:mod:`repro.obs.profile`); off = zero-cost hot path
    profile: bool = False
    #: iterations without new coverage before a ``campaign.plateau``
    #: event is emitted (frontier tracking needs ``collect_coverage``)
    plateau_window: int = DEFAULT_PLATEAU_WINDOW
    #: write atomic progress heartbeats into this directory
    #: (:mod:`repro.obs.heartbeat`; ``repro watch DIR`` renders them)
    heartbeat_dir: str | None = None
    #: heartbeat cadence in iterations (deterministic intervals)
    heartbeat_every: int = 25
    #: shard index, used for heartbeat file naming (set by
    #: :class:`~repro.fuzz.parallel.ParallelCampaign` per shard)
    shard_index: int = 0


@dataclass
class CampaignResult:
    """Everything a campaign measured."""

    config: CampaignConfig
    generated: int = 0
    accepted: int = 0
    #: errno value -> count, over rejected programs
    reject_errnos: Counter = field(default_factory=Counter)
    #: taxonomy reason code -> count, over rejected programs
    #: (:mod:`repro.obs.taxonomy`)
    reject_reasons: Counter = field(default_factory=Counter)
    #: taxonomy reason code -> first recorded explanation
    #: (:meth:`repro.obs.explain.Explanation.to_dict` plus the global
    #: ``iteration``); populated only when ``config.flight`` is on
    reject_explanations: dict[str, dict] = field(default_factory=dict)
    #: taxonomy reason code -> rejections a repair was attempted for
    #: (every rejection, when ``config.repair_feedback`` is on)
    repairs_attempted: Counter = field(default_factory=Counter)
    #: taxonomy reason code -> verified reject→accept flips
    repairs_verified: Counter = field(default_factory=Counter)
    #: taxonomy reason code -> first verified repair
    #: (:meth:`repro.analysis.repair.Repair.to_dict` plus the global
    #: ``iteration``); deterministic, merged by earliest iteration
    repair_examples: dict[str, dict] = field(default_factory=dict)
    #: frame kind -> programs generated containing that kind
    frame_generated: Counter = field(default_factory=Counter)
    #: frame kind -> programs accepted containing that kind
    frame_accepted: Counter = field(default_factory=Counter)
    #: metrics-registry snapshot (:meth:`MetricsRegistry.snapshot`)
    metrics: dict = field(default_factory=dict)
    #: bug id -> first finding
    findings: dict[str, BugFinding] = field(default_factory=dict)
    #: (programs generated, cumulative verifier edges)
    coverage_curve: list[tuple[int, int]] = field(default_factory=list)
    #: (programs generated, edges newly seen since the previous sample)
    #: — the incremental form of the curve, which is what lets sharded
    #: campaigns recompute a correct union curve across processes
    edge_samples: list[tuple[int, frozenset[int]]] = field(default_factory=list)
    final_coverage: int = 0
    #: instruction-class mix over all generated programs
    insn_classes: Counter = field(default_factory=Counter)
    corpus_size: int = 0
    #: divergence key -> divergence dict (cross-version differential
    #: oracle; :meth:`Divergence.to_dict` form, deduplicated)
    divergences: dict[str, dict] = field(default_factory=dict)
    #: profiler snapshot (:meth:`VerifierProfiler.snapshot`; empty
    #: unless ``config.profile``)
    profile: dict = field(default_factory=dict)
    #: coverage-frontier snapshot (:meth:`FrontierTracker.snapshot`;
    #: empty unless ``config.collect_coverage``)
    frontier: dict = field(default_factory=dict)
    #: wall-clock split of the campaign loop (ThroughputStats input)
    generate_seconds: float = 0.0
    verify_seconds: float = 0.0
    execute_seconds: float = 0.0
    differential_seconds: float = 0.0
    wall_seconds: float = 0.0

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.generated if self.generated else 0.0

    @property
    def verifier_bugs(self) -> list[BugFinding]:
        return [f for f in self.findings.values() if f.is_verifier_bug]

    @property
    def component_bugs(self) -> list[BugFinding]:
        return [f for f in self.findings.values() if f.indicator == "component"]

    def alu_jmp_fraction(self) -> float:
        """Fraction of generated instructions that are ALU or JMP."""
        total = sum(self.insn_classes.values())
        if not total:
            return 0.0
        alu_jmp = sum(
            count
            for cls, count in self.insn_classes.items()
            if cls
            in (InsnClass.ALU, InsnClass.ALU64, InsnClass.JMP, InsnClass.JMP32)
        )
        return alu_jmp / total


def make_generator(tool: str, kernel: Kernel | None, rng: FuzzRng):
    """Instantiate the generator for a tool name.

    ``kernel`` may be ``None``: generators accept a kernel on each
    :meth:`generate` call, so campaign drivers construct the generator
    once and rebind it to every iteration's fresh kernel.
    """
    if tool == "bvf":
        return StructuredGenerator(kernel, rng)
    if tool == "bvf-nostructure":
        return StructuredGenerator(
            kernel, rng, GeneratorConfig(use_structure=False)
        )
    if tool == "syzkaller":
        return SyzkallerGenerator(kernel, rng)
    if tool == "buzzer":
        return BuzzerGenerator(kernel, rng)
    raise ValueError(f"unknown tool {tool!r}")


class Campaign:
    """Runs one fuzzing campaign to completion."""

    def __init__(self, config: CampaignConfig) -> None:
        self.config = config
        self.rng = FuzzRng(config.seed)
        self.coverage = VerifierCoverage()
        self.corpus = Corpus()
        self.kernel_config: KernelConfig = PROFILES[config.kernel_version]()
        self.oracle = Oracle(self.kernel_config)
        if config.differential:
            # Imported lazily: analysis.stats imports CampaignResult
            # from this module, so a top-level import would be circular.
            from repro.analysis.differential import DifferentialOracle

            self.differential = DifferentialOracle()
        else:
            self.differential = None
        # One generator for the whole campaign; each iteration rebinds
        # it to that iteration's fresh Kernel (crash isolation stays
        # per-iteration, construction cost does not).
        self.generator = make_generator(config.tool, None, self.rng)
        # Frame-level verdict cache; off when invariant checking,
        # tracing, flight recording, or profiling needs to observe
        # do_check from the inside (a cached hit skips the very
        # decisions those sinks exist to capture).
        self.verdicts = (
            VerdictCache()
            if not config.check_invariants
            and not config.trace_path
            and not config.flight
            and not config.profile
            and not config.repair_feedback
            else None
        )
        # Replaced by run() with a clock wired to that run's metrics
        # registry and recorder; a bare default keeps _iteration usable
        # standalone (tests drive it directly).
        self._clock = obs.PhaseClock()
        self._flight = obs.NULL_FLIGHT
        self._profiler = None
        self._frontier = None

    # ------------------------------------------------------------------ run --

    def run(self) -> CampaignResult:
        started = time.perf_counter()
        result = CampaignResult(config=self.config)
        sampled_edges: set[int] = set()

        # Per-shard observability sinks: this campaign's registry and
        # recorder become the process-current ones for the duration of
        # the run, so the verifier/generator/oracle instrumentation
        # lands in *this* shard's snapshot.  The clock is the single
        # phase timer — every phase duration is accumulated exactly
        # once, in its context manager's exit.
        registry = obs.MetricsRegistry()
        recorder = (
            obs.JsonlTraceRecorder(self.config.trace_path)
            if self.config.trace_path
            else obs.NULL_RECORDER
        )
        flight = (
            obs.FlightRecorder()
            if self.config.flight or self.config.repair_feedback
            else obs.NULL_FLIGHT
        )
        self._flight = flight
        profiler = obs.VerifierProfiler() if self.config.profile else None
        self._profiler = profiler
        frontier = (
            FrontierTracker(self.config.plateau_window)
            if self.config.collect_coverage
            else None
        )
        self._frontier = frontier
        clock = obs.PhaseClock(metrics=registry, recorder=recorder)
        self._clock = clock
        token = obs.install(registry, recorder,
                            flight if flight.enabled else None,
                            profiler)
        # The tnum memo LRUs are process-global (shards in one process
        # share warm entries), so this shard's contribution is a delta.
        tnum_before = tnum_memo_stats()

        heartbeat = None
        if self.config.heartbeat_dir:
            from repro.obs.heartbeat import HeartbeatWriter

            heartbeat = HeartbeatWriter(
                self.config.heartbeat_dir,
                shard_index=self.config.shard_index,
                budget=self.config.budget,
                seed=self.config.seed,
            )

        def beat(status: str) -> None:
            if heartbeat is None:
                return
            heartbeat.write(
                status=status,
                programs=result.generated,
                accepted=result.accepted,
                findings=len(result.findings),
                divergences=len(result.divergences),
                reject_reasons=dict(result.reject_reasons),
                phase_seconds=dict(clock.seconds),
                caches=cache_hit_rates(
                    registry.snapshot().get("counters", {})
                ),
                frontier=(
                    frontier.heartbeat_state()
                    if frontier is not None
                    else None
                ),
            )

        def sample() -> None:
            edges = self.coverage.edges
            result.coverage_curve.append((result.generated, len(edges)))
            result.edge_samples.append(
                (result.generated, frozenset(edges - sampled_edges))
            )
            sampled_edges.update(edges)

        try:
            beat("starting")
            for iteration in range(self.config.budget):
                self._iteration(result, iteration)
                if (
                    self.config.collect_coverage
                    and iteration % self.config.sample_every == 0
                ):
                    sample()
                if (
                    heartbeat is not None
                    and (iteration + 1) % self.config.heartbeat_every == 0
                ):
                    beat("running")
            if self.config.collect_coverage:
                sample()
            beat("done")
        finally:
            obs.restore(token)
            recorder.close()
            self._flight = obs.NULL_FLIGHT
            self._profiler = None
            self._frontier = None
        tnum_after = tnum_memo_stats()
        registry.counter("cache.tnum.hits",
                         tnum_after["hits"] - tnum_before["hits"])
        registry.counter("cache.tnum.misses",
                         tnum_after["misses"] - tnum_before["misses"])
        registry.gauge_max("cache.tnum.entries", tnum_after["entries"])
        result.final_coverage = self.coverage.edge_count
        result.corpus_size = len(self.corpus)
        result.generate_seconds = clock.seconds["generate"]
        result.verify_seconds = clock.seconds["verify"]
        result.execute_seconds = clock.seconds["execute"]
        result.differential_seconds = clock.seconds["differential"]
        result.wall_seconds = time.perf_counter() - started
        result.metrics = registry.snapshot()
        result.profile = profiler.snapshot() if profiler is not None else {}
        result.frontier = frontier.snapshot() if frontier is not None else {}
        return result

    @staticmethod
    def _frame_kinds(gp: GeneratedProgram) -> frozenset[str]:
        """Taxonomy bucket keys for one program's acceptance breakdown."""
        if gp.frame_kinds:
            return frozenset(gp.frame_kinds)
        if gp.origin == "bvf-mut":
            return frozenset(("mutated",))
        return frozenset(("unstructured",))

    def _iteration(self, result: CampaignResult, iteration: int) -> None:
        kernel = Kernel(self.kernel_config)
        with self._clock.phase("generate"):
            gp = self._next_program(kernel)
        result.generated += 1
        obs.metrics().counter("campaign.generated")
        for insn in gp.insns:
            if not insn.is_filler():
                result.insn_classes[insn.insn_class] += 1
        kinds = self._frame_kinds(gp)
        for kind in kinds:
            result.frame_generated[kind] += 1

        if self.differential is not None:
            with self._clock.phase("differential"):
                for div in self.differential.run(gp, iteration):
                    self._record_divergence(result, div, iteration)

        prog = BpfProgram(
            insns=list(gp.insns),
            prog_type=gp.prog_type,
            name=f"{gp.origin}_{iteration}",
            offload_dev=gp.offload_dev,
        )

        verified = None
        with self._clock.phase("verify"):
            try:
                verified = self._load(kernel, prog, gp)
            except InvariantViolation as violation:
                # Not a verdict: the verifier's own abstract state broke.
                self._reject(result, _errno.EFAULT, str(violation),
                             gp, iteration, kernel, prog)
                self._record(
                    result,
                    self.oracle.classify_invariant(violation, gp),
                    iteration,
                )
            except VerifierReject as reject:
                self._reject(result, reject.errno,
                             final_message(reject.log) or reject.message,
                             gp, iteration, kernel, prog)
            except BpfError as error:
                self._reject(result, error.errno, error.message,
                             gp, iteration, kernel, prog)

        # Frontier attribution covers every verdict: coverage.collect()
        # publishes ``last_new`` from its finally block, so rejected
        # programs contribute their edges too.
        if self._frontier is not None:
            self._note_frontier(iteration, gp)
        if verified is None:
            return

        result.accepted += 1
        obs.metrics().counter("campaign.accepted")
        for kind in kinds:
            result.frame_accepted[kind] += 1
        if self.config.collect_coverage and self.coverage.last_new > 0:
            self.corpus.add(gp, self.coverage.last_new)

        with self._clock.phase("execute"):
            self._execute_plan(kernel, verified, gp, result, iteration)

    def _note_frontier(self, iteration: int, gp: GeneratedProgram) -> None:
        """Feed one iteration's coverage outcome to the frontier tracker
        and publish the plateau event if the tracker just stalled."""
        event = self._frontier.note(
            iteration,
            self.coverage.last_new,
            frames=self._frame_kinds(gp),
            prog_type=gp.prog_type.name,
            origin=gp.origin,
        )
        if event is None:
            return
        obs.metrics().counter("campaign.plateaus")
        rec = obs.recorder()
        if rec.enabled:
            rec.event("campaign.plateau", **event)

    def _reject(
        self,
        result: CampaignResult,
        errno: int,
        message: str,
        gp: GeneratedProgram | None = None,
        iteration: int = -1,
        kernel: Kernel | None = None,
        prog: BpfProgram | None = None,
    ) -> None:
        result.reject_errnos[errno] += 1
        reason = classify(message)
        result.reject_reasons[reason] += 1
        obs.metrics().counter("campaign.rejected")
        rec = obs.recorder()
        if rec.enabled:
            rec.event("campaign.reject", errno=errno, reason=reason,
                      message=message)
        if self._flight.enabled:
            self._explain_reject(result, errno, message, reason,
                                 gp, iteration)
        if (
            self.config.repair_feedback
            and kernel is not None
            and prog is not None
        ):
            self._attempt_repair(result, reason, message, gp,
                                 iteration, kernel, prog)

    def _explain_reject(
        self,
        result: CampaignResult,
        errno: int,
        message: str,
        reason: str,
        gp: GeneratedProgram | None,
        iteration: int,
    ) -> None:
        """Spill the flight ring for a rejection and keep one
        explanation per taxonomy reason (the earliest iteration)."""
        events = self._flight.snapshot()
        rec = obs.recorder()
        if rec.enabled:
            # Interesting outcome: spill the decision ring to the trace
            # stream so post-hoc analysis sees the full last-K window.
            rec.event("verifier.flight", reason=reason, errno=errno,
                      events=events)
        if reason in result.reject_explanations:
            return
        from repro.obs.explain import explain_events

        explanation = explain_events(
            events,
            message=message,
            errno=errno,
            program=f"{gp.origin}_{iteration}" if gp is not None else None,
            insns=gp.insns if gp is not None else None,
        )
        entry = explanation.to_dict()
        entry["iteration"] = iteration
        result.reject_explanations[reason] = entry

    def _attempt_repair(
        self,
        result: CampaignResult,
        reason: str,
        message: str,
        gp: GeneratedProgram | None,
        iteration: int,
        kernel: Kernel,
        prog: BpfProgram,
    ) -> None:
        """Synthesize + verify a minimal patch for one rejection.

        Verified repairs count toward the per-reason repair rate, keep
        one example per reason (earliest iteration, like the
        explanations), and re-enter the mutation corpus as
        ``bvf-repair`` seeds — the rejected half of the budget becomes
        mutation fodder that is *known* to verify.
        """
        # Imported lazily: analysis.stats imports CampaignResult from
        # this module, so a top-level import would be circular.
        from repro.analysis.repair import synthesize_repair

        result.repairs_attempted[reason] += 1
        obs.metrics().counter("campaign.repair.attempted")
        insn_idx = 0
        for event in reversed(self._flight.snapshot()):
            if (
                event.get("kind") == "verdict"
                and event.get("verdict") != "accept"
            ):
                insn_idx = max(event.get("insn", 0), 0)
                break
        sanitize = self.config.sanitize and kernel.config.sanitizer_available
        repair = synthesize_repair(
            kernel, prog,
            reason=reason, message=message, insn_idx=insn_idx,
            sanitize=sanitize,
        )
        if repair is None:
            return
        result.repairs_verified[reason] += 1
        obs.metrics().counter("campaign.repair.verified")
        rec = obs.recorder()
        if rec.enabled:
            rec.event("campaign.repair", reason=reason,
                      template=repair.template,
                      edit_distance=repair.edit_distance)
        if reason not in result.repair_examples:
            entry = repair.to_dict()
            entry["iteration"] = iteration
            result.repair_examples[reason] = entry
        if gp is not None:
            self.corpus.add(
                GeneratedProgram(
                    insns=list(repair.patched),
                    prog_type=gp.prog_type,
                    maps=gp.maps,
                    plan=gp.plan,
                    origin="bvf-repair",
                ),
                1,
            )

    def _record_divergence(
        self, result: CampaignResult, div, iteration: int
    ) -> None:
        """Fold one :class:`~repro.analysis.differential.Divergence` in."""
        entry = div.to_dict()
        kept = result.divergences.get(entry["key"])
        if kept is None:
            result.divergences[entry["key"]] = entry
        obs.metrics().counter("campaign.divergences")
        rec = obs.recorder()
        if rec.enabled:
            rec.event("campaign.divergence", key=entry["key"],
                      kind=entry["kind"],
                      classification=entry["classification"])
        self._record(result, self.oracle.classify_divergence(div), iteration)

    def _load(self, kernel: Kernel, prog: BpfProgram, gp: GeneratedProgram):
        sanitize = self.config.sanitize and kernel.config.sanitizer_available
        check = self.config.check_invariants
        # Root profiler frame: everything the verify phase pays for runs
        # under it, so Σ self-times telescopes to (almost) the phase's
        # measured wall — the property the overhead benchmark asserts.
        prof = self._profiler
        if prof is not None:
            prof.push("verify")
        try:
            if self.verdicts is not None:
                coverage = (
                    self.coverage if self.config.collect_coverage else None
                )
                return self.verdicts.load(
                    kernel, prog,
                    sanitize=sanitize,
                    coverage=coverage,
                    map_specs=specs_of(gp),
                    kinds=self._frame_kinds(gp),
                )
            if self.config.collect_coverage:
                with self.coverage.collect():
                    return kernel.prog_load(prog, sanitize=sanitize,
                                            check_invariants=check)
            return kernel.prog_load(prog, sanitize=sanitize,
                                    check_invariants=check)
        finally:
            if prof is not None:
                prof.pop()

    # ----------------------------------------------------------- generation --

    def _next_program(self, kernel: Kernel) -> GeneratedProgram:
        rng = self.rng
        if (
            len(self.corpus)
            and self.config.tool in ("bvf", "bvf-nostructure")
            and rng.chance(self.config.mutate_rate)
        ):
            entry = self.corpus.pick(rng)
            maps = []
            for spec in entry.map_specs:
                try:
                    fd = kernel.map_create(
                        spec.map_type,
                        spec.key_size,
                        spec.value_size,
                        spec.max_entries,
                    )
                    maps.append(kernel.map_by_fd(fd))
                except BpfError:
                    pass
            insns = mutate(entry.insns, rng, rounds=rng.randint(1, 2))
            return GeneratedProgram(
                insns=insns,
                prog_type=entry.prog_type,
                maps=maps,
                plan=entry.plan,
                origin="bvf-mut",
            )
        return self.generator.generate(kernel)

    # ------------------------------------------------------------- execution --

    def _record(self, result: CampaignResult, finding: BugFinding | None,
                iteration: int) -> None:
        if finding is None or finding.bug_id == "indicator1-duplicate":
            return
        if finding.bug_id not in result.findings:
            finding.iteration = iteration
            result.findings[finding.bug_id] = finding

    def _execute_plan(
        self,
        kernel: Kernel,
        verified,
        gp: GeneratedProgram,
        result: CampaignResult,
        iteration: int,
    ) -> None:
        plan = gp.plan
        executor = Executor(kernel)

        # Attach phase.
        attached = False
        if plan.attach_tracepoint is not None:
            try:
                kernel.prog_attach_tracepoint(verified, plan.attach_tracepoint)
                attached = True
            except BpfError:
                pass
        if plan.use_dispatcher:
            try:
                kernel.prog_attach_xdp(verified)
                # A second update models concurrent re-attachment — the
                # window Bug #7's missing sync leaves open.
                if self.rng.chance(0.5):
                    kernel.prog_attach_xdp(verified)
            except BpfError:
                pass

        # Direct test runs.
        for _ in range(plan.n_runs):
            run = executor.run(verified)
            if run.report is not None:
                self._record(
                    result, self.oracle.classify_report(run.report, gp), iteration
                )
            if run.error is not None:
                self._record(
                    result,
                    self.oracle.classify_syscall_error(run.error, gp),
                    iteration,
                )

        # Tracepoint trigger (runs everything attached, with re-entry).
        if attached:
            run = executor.trigger_tracepoint(plan.attach_tracepoint)
            if run.report is not None:
                self._record(
                    result, self.oracle.classify_report(run.report, gp), iteration
                )

        # Dispatcher-routed execution.
        if plan.use_dispatcher:
            run = executor.run_xdp_via_dispatcher()
            if run.report is not None:
                self._record(
                    result, self.oracle.classify_report(run.report, gp), iteration
                )

        # User-space map traffic.
        for op, key in plan.map_ops:
            for bpf_map in gp.maps:
                try:
                    if op == "update" and bpf_map.key_size:
                        kernel.map_update(
                            bpf_map.fd,
                            key[: bpf_map.key_size].ljust(bpf_map.key_size, b"\0"),
                            bytes(bpf_map.value_size),
                        )
                    elif op == "lookup" and bpf_map.key_size:
                        kernel.map_lookup(
                            bpf_map.fd,
                            key[: bpf_map.key_size].ljust(bpf_map.key_size, b"\0"),
                        )
                    elif op == "iterate" and bpf_map.key_size:
                        cursor = None
                        for _ in range(bpf_map.max_entries + 2):
                            cursor = kernel.map_get_next_key(bpf_map.fd, cursor)
                except MapError:
                    pass
                except BpfError:
                    pass
                except KernelReport as report:
                    self._record(
                        result, self.oracle.classify_report(report, gp), iteration
                    )

        # Info query (Bug #8's kmemdup path).  Large rewritten images
        # always attract a query — tooling (bpftool, verifier-log
        # consumers) inspects exactly those.
        if plan.query_info or len(verified.xlated) > 256:
            try:
                kernel.prog_get_info(verified)
            except BpfError as error:
                self._record(
                    result,
                    self.oracle.classify_syscall_error(error, gp),
                    iteration,
                )

        kernel.reset_attachments()
