"""Exception hierarchy shared by every subsystem in the reproduction.

The real eBPF stack signals failures through errno values returned from
the ``bpf()`` system call and through kernel self-check reports (KASAN,
lockdep, panics).  We model both: :class:`BpfError` carries an errno so
the fuzzer can reproduce the paper's errno statistics (Section 6.3), and
:class:`KernelReport` subclasses model the runtime detectors that back
indicator #1 and indicator #2.
"""

from __future__ import annotations

import errno as _errno

__all__ = [
    "ReproError",
    "BpfError",
    "VerifierReject",
    "EncodingError",
    "MapError",
    "HelperError",
    "InvariantViolation",
    "KernelReport",
    "KasanReport",
    "LockdepReport",
    "KernelPanic",
    "RecursionReport",
    "NullDerefReport",
    "WarnReport",
    "SanitizerReport",
    "AluLimitViolation",
]


class ReproError(Exception):
    """Base class for all errors raised by the reproduction library."""


class BpfError(ReproError):
    """An error surfaced through the simulated ``bpf()`` system call.

    Carries an errno value mirroring the kernel's behaviour, which the
    acceptance-rate experiment inspects (the paper reports EACCES and
    EINVAL as the dominant rejection reasons for Syzkaller).
    """

    def __init__(self, errno: int, message: str = "") -> None:
        super().__init__(message or _errno.errorcode.get(errno, str(errno)))
        self.errno = errno
        self.message = message

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = _errno.errorcode.get(self.errno, str(self.errno))
        return f"BpfError({name}, {self.message!r})"


class VerifierReject(BpfError):
    """The verifier refused to load a program.

    ``log`` carries the verifier log accumulated up to the rejection
    point, mirroring the kernel's verifier log buffer.
    """

    def __init__(self, errno: int, message: str, log: str = "") -> None:
        super().__init__(errno, message)
        self.log = log


class EncodingError(ReproError):
    """An instruction could not be encoded or decoded."""


class InvariantViolation(ReproError):
    """The verifier's own abstract state broke a domain invariant.

    Raised by :class:`repro.verifier.sanity.VStateChecker` when a
    register state observed at a verifier checkpoint violates one of
    the tnum/range domain's representation invariants.  Unlike
    :class:`VerifierReject` this is not a verdict about the program —
    it is direct evidence of a bug in the verifier itself, the static
    analogue of a KASAN report (see DESIGN.md "Abstract-state
    sanitizer").
    """

    def __init__(
        self,
        code: str,
        detail: str,
        *,
        checkpoint: str = "",
        insn_idx: int = -1,
        frameno: int = -1,
        regno: int = -1,
    ) -> None:
        where = f"frame{frameno} " if frameno >= 0 else ""
        who = f"R{regno}" if regno >= 0 else "stack"
        super().__init__(
            f"verifier state invariant {code} broken at "
            f"{checkpoint or 'checkpoint'} insn {insn_idx}: "
            f"{where}{who} {detail}"
        )
        self.code = code
        self.detail = detail
        self.checkpoint = checkpoint
        self.insn_idx = insn_idx
        self.frameno = frameno
        self.regno = regno

    @property
    def message(self) -> str:
        return str(self)


class MapError(BpfError):
    """A map operation failed (bad key, bad flags, full map...)."""


class HelperError(BpfError):
    """A helper invocation failed in a way the runtime must surface."""


class KernelReport(ReproError):
    """Base class for simulated kernel self-check reports.

    These are the signals the paper's oracle consumes: a report raised
    while executing a *verified* program is, by construction, evidence
    of a verifier correctness bug (indicator #1 or #2) or of a bug in a
    related eBPF component (Table 2, bugs #7-#11).
    """

    kind = "kernel-report"

    def __init__(self, message: str, *, context: dict | None = None) -> None:
        super().__init__(message)
        self.context = dict(context or {})


class KasanReport(KernelReport):
    """KASAN-style invalid memory access (out-of-bounds / use-after-free)."""

    kind = "kasan"

    def __init__(
        self,
        message: str,
        *,
        address: int = 0,
        size: int = 0,
        is_write: bool = False,
        context: dict | None = None,
    ) -> None:
        super().__init__(message, context=context)
        self.address = address
        self.size = size
        self.is_write = is_write


class LockdepReport(KernelReport):
    """Runtime locking correctness validator report (deadlock, bad state)."""

    kind = "lockdep"


class KernelPanic(KernelReport):
    """A direct kernel panic (e.g. Bug #6, signal sending in bad context)."""

    kind = "panic"


class RecursionReport(KernelReport):
    """Unexpected program recursion (tracepoint re-entry, Bug #4/#5)."""

    kind = "recursion"


class NullDerefReport(KernelReport):
    """Null pointer dereference inside a kernel routine (Bug #7)."""

    kind = "null-deref"


class WarnReport(KernelReport):
    """A WARN_ON-style kernel warning (non-fatal but bug-indicating).

    Models cases like Bug #11 where the kernel detects an impossible
    condition (running a device-offloaded program on the host) and
    warns rather than oopses.
    """

    kind = "warn"


class SanitizerReport(KasanReport):
    """Invalid access caught by BVF's dispatched load/store sanitation.

    This is the concrete mechanism behind indicator #1: the load/store
    was dispatched to a ``bpf_asan_*`` function, which consulted shadow
    memory and found the access illegal.
    """

    kind = "bpf-asan"


class AluLimitViolation(SanitizerReport):
    """Runtime ``alu_limit`` assertion failure (Section 4.2).

    Raised when a sanitized pointer/scalar ALU operation observes an
    offset outside the limit computed by the verifier — the runtime
    equivalent of ``assert(offset < alu_limit)``.
    """

    kind = "alu-limit"
