"""The eBPF self-test corpus.

The kernel ships a large suite of manually-written verifier test
programs (``tools/testing/selftests/bpf``); the paper uses 708 of them
(those containing loads/stores) as the dataset for its sanitation
overhead measurement, and relies on the suite's breadth as evidence
the verifier behaves as intended.

:mod:`repro.testsuite.selftests` reproduces that corpus in spirit:
parameterised families of small hand-written programs, each annotated
with the verdict the verifier must produce.  They serve three roles:

1. integration tests — the verifier must accept/reject each as
   annotated;
2. the RQ3 overhead dataset — accepted programs containing loads or
   stores, executed raw vs. sanitized;
3. differential material — accepted programs must run without any
   kernel report on a pristine kernel (no false positives).
"""

from repro.testsuite.selftests import (
    SelfTest,
    all_selftests,
    all_selftests_extended,
)

__all__ = ["SelfTest", "all_selftests", "all_selftests_extended"]
