"""Matrix self-test families: exhaustive cross products.

- the **helper × program-type matrix**: every helper callable from
  every program type — accepted exactly when the prototype's
  ``prog_types`` allows it (the verifier's availability checks);
- the **helper × map-type matrix**: every map-taking helper against
  every map type — accepted exactly per
  ``check_map_func_compatibility``;
- the **bounds-refinement matrix**: each comparison operator proving
  (or failing to prove) an index bound for a map-value access.
"""

from __future__ import annotations

from repro.ebpf import asm
from repro.ebpf.helpers import ArgType, HelperId
from repro.ebpf.maps import MapType
from repro.ebpf.opcodes import AluOp, JmpOp, Reg, Size
from repro.ebpf.program import BpfProgram, ProgType
from repro.kernel.config import bpf_next
from repro.ebpf.helpers import HelperRegistry
from repro.testsuite.selftests import SelfTest

__all__ = ["matrix_selftests"]

_PROG_TYPES = (
    ProgType.SOCKET_FILTER,
    ProgType.KPROBE,
    ProgType.XDP,
    ProgType.TRACEPOINT,
    ProgType.PERF_EVENT,
)

#: Helpers whose call sites the matrix can synthesise generically.
_SIMPLE_HELPERS = (
    HelperId.KTIME_GET_NS,
    HelperId.GET_PRANDOM_U32,
    HelperId.GET_SMP_PROCESSOR_ID,
    HelperId.GET_CURRENT_PID_TGID,
    HelperId.GET_CURRENT_UID_GID,
    HelperId.GET_CURRENT_TASK,
    HelperId.GET_CURRENT_TASK_BTF,
)


def _prog(insns, prog_type):
    return BpfProgram(insns=list(insns), prog_type=prog_type)


def _helper_prog_type_matrix() -> list[SelfTest]:
    registry = HelperRegistry(bpf_next())
    tests = []
    for helper_id in _SIMPLE_HELPERS:
        proto = registry.get(int(helper_id))
        for prog_type in _PROG_TYPES:
            allowed = (
                proto.prog_types is None
                or prog_type.value in proto.prog_types
            )
            # NMI-unsafe helpers are separately rejected on perf_event
            # in fixed kernels (Bug #6's check); none here are.
            def build(kernel, helper_id=helper_id, prog_type=prog_type):
                body = [asm.call_helper(helper_id)]
                if registry.get(int(helper_id)).ret.value == "ptr_to_btf_id":
                    body.append(asm.mov64_imm(Reg.R0, 0))
                else:
                    body.append(asm.mov64_imm(Reg.R0, 0))
                return _prog([*body, asm.exit_insn()], prog_type)

            tests.append(
                SelfTest(
                    f"matrix_{proto.name}_{prog_type.value}",
                    build,
                    "accept" if allowed else "reject",
                    has_memory_access=False,
                )
            )
    return tests


_LOOKUP_MAPS = (
    (MapType.HASH, 8, True),
    (MapType.ARRAY, 4, True),
    (MapType.LRU_HASH, 8, True),
    (MapType.QUEUE, 0, False),
    (MapType.RINGBUF, 0, False),
    (MapType.PROG_ARRAY, 4, False),
)


def _helper_map_type_matrix() -> list[SelfTest]:
    tests = []
    for map_type, key_size, allowed in _LOOKUP_MAPS:
        def build(kernel, map_type=map_type, key_size=key_size):
            if map_type == MapType.RINGBUF:
                fd = kernel.map_create(map_type, 0, 0, 4096)
            elif map_type == MapType.QUEUE:
                fd = kernel.map_create(map_type, 0, 8, 4)
            elif map_type == MapType.PROG_ARRAY:
                fd = kernel.map_create(map_type, 4, 4, 4)
            else:
                fd = kernel.map_create(map_type, key_size, 8, 4)
            store = (
                asm.st_mem(Size.W, Reg.R10, -8, 0)
                if key_size == 4
                else asm.st_mem(Size.DW, Reg.R10, -8, 0)
            )
            return _prog(
                [
                    store,
                    *asm.ld_map_fd(Reg.R1, fd),
                    asm.mov64_reg(Reg.R2, Reg.R10),
                    asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                    asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                    asm.mov64_imm(Reg.R0, 0),
                    asm.exit_insn(),
                ],
                ProgType.SOCKET_FILTER,
            )

        tests.append(
            SelfTest(
                f"matrix_lookup_on_{map_type.name.lower()}",
                build,
                "accept" if allowed else "reject",
            )
        )

    # push/pop only on queue/stack.
    for map_type, allowed in (
        (MapType.QUEUE, True),
        (MapType.STACK, True),
        (MapType.HASH, False),
        (MapType.RINGBUF, False),
    ):
        def build(kernel, map_type=map_type):
            if map_type == MapType.RINGBUF:
                fd = kernel.map_create(map_type, 0, 0, 4096)
            elif map_type in (MapType.QUEUE, MapType.STACK):
                fd = kernel.map_create(map_type, 0, 8, 4)
            else:
                fd = kernel.map_create(map_type, 8, 8, 4)
            return _prog(
                [
                    asm.st_mem(Size.DW, Reg.R10, -8, 1),
                    *asm.ld_map_fd(Reg.R1, fd),
                    asm.mov64_reg(Reg.R2, Reg.R10),
                    asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                    asm.mov64_imm(Reg.R3, 0),
                    asm.call_helper(HelperId.MAP_PUSH_ELEM),
                    asm.mov64_imm(Reg.R0, 0),
                    asm.exit_insn(),
                ],
                ProgType.SOCKET_FILTER,
            )

        tests.append(
            SelfTest(
                f"matrix_push_on_{map_type.name.lower()}",
                build,
                "accept" if allowed else "reject",
            )
        )
    return tests


def _bounds_matrix() -> list[SelfTest]:
    tests = []
    for op, pivot, extra, ok in (
        (JmpOp.JGT, 8, 0, True),
        (JmpOp.JGT, 9, 0, False),
        (JmpOp.JGE, 9, 0, True),
        (JmpOp.JLT, 9, 0, None),   # taken-branch variant below
        (JmpOp.JLE, 8, 0, None),
    ):
        if ok is None:
            continue

        def build(kernel, op=op, pivot=pivot, extra=extra):
            fd = kernel.map_create(MapType.ARRAY, 4, 16, 1)
            return _prog(
                [
                    *asm.ld_map_value(Reg.R6, fd, 0),
                    asm.call_helper(HelperId.GET_PRANDOM_U32),
                    asm.alu64_imm(AluOp.AND, Reg.R0, 15),  # idx in [0,15]
                    asm.jmp_imm(op, Reg.R0, pivot, 3),
                    asm.alu64_reg(AluOp.ADD, Reg.R6, Reg.R0),
                    asm.ldx_mem(Size.DW, Reg.R1, Reg.R6, extra),
                    asm.mov64_imm(Reg.R0, 0),
                    asm.mov64_imm(Reg.R0, 0),
                    asm.exit_insn(),
                ],
                ProgType.SOCKET_FILTER,
            )

        verdict = "accept" if ok else "reject"
        tests.append(
            SelfTest(
                f"bounds_{op.name.lower()}_pivot{pivot}", build, verdict
            )
        )

    # Taken-branch refinement: `if idx < pivot goto use`.
    for op, pivot, ok in (
        (JmpOp.JLT, 9, True),
        (JmpOp.JLE, 8, True),
        (JmpOp.JLE, 9, False),
    ):
        def build(kernel, op=op, pivot=pivot):
            fd = kernel.map_create(MapType.ARRAY, 4, 16, 1)
            return _prog(
                [
                    *asm.ld_map_value(Reg.R6, fd, 0),
                    asm.call_helper(HelperId.GET_PRANDOM_U32),
                    asm.alu64_imm(AluOp.AND, Reg.R0, 15),
                    asm.jmp_imm(op, Reg.R0, pivot, 2),
                    asm.mov64_imm(Reg.R0, 0),
                    asm.exit_insn(),
                    asm.alu64_reg(AluOp.ADD, Reg.R6, Reg.R0),
                    asm.ldx_mem(Size.DW, Reg.R1, Reg.R6, 0),
                    asm.mov64_imm(Reg.R0, 0),
                    asm.exit_insn(),
                ],
                ProgType.SOCKET_FILTER,
            )

        verdict = "accept" if ok else "reject"
        tests.append(
            SelfTest(
                f"bounds_taken_{op.name.lower()}_pivot{pivot}", build, verdict
            )
        )
    return tests


def matrix_selftests() -> list[SelfTest]:
    tests: list[SelfTest] = []
    tests += _helper_prog_type_matrix()
    tests += _helper_map_type_matrix()
    tests += _bounds_matrix()
    return tests
