"""Parameterised self-test program families.

Each :class:`SelfTest` owns a builder that creates its resources (maps)
in a given kernel and returns the program, plus the expected verifier
verdict.  Families are expanded over sizes, offsets, operations, and
program types, yielding several hundred distinct programs — the same
order of magnitude as the paper's 708-test dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.ebpf import asm
from repro.ebpf.helpers import HelperId
from repro.ebpf.insn import Insn
from repro.ebpf.maps import MapType
from repro.ebpf.opcodes import (
    AluOp,
    AtomicOp,
    JmpOp,
    Reg,
    Size,
    BYTES_TO_SIZE,
)
from repro.ebpf.program import BpfProgram, ProgType

__all__ = ["SelfTest", "all_selftests", "all_selftests_extended"]


@dataclass
class SelfTest:
    """One self-contained verifier test."""

    name: str
    build: Callable[[object], BpfProgram]
    #: 'accept' or 'reject'
    expect: str
    #: contains load/store instructions (RQ3 dataset membership)
    has_memory_access: bool = True
    #: expected R0 after execution, for semantic self-tests
    expected_r0: int | None = None


def _prog(insns, prog_type=ProgType.SOCKET_FILTER, name="test"):
    return BpfProgram(insns=list(insns), prog_type=prog_type, name=name)


def _exit_zero():
    return [asm.mov64_imm(Reg.R0, 0), asm.exit_insn()]


# ---------------------------------------------------------------------------
# Families
# ---------------------------------------------------------------------------


def _stack_rw_family() -> list[SelfTest]:
    tests = []
    for size in (1, 2, 4, 8):
        for off in (-8, -16, -64, -256, -512 + 8):
            def build(kernel, size=size, off=off):
                return _prog(
                    [
                        asm.st_mem(BYTES_TO_SIZE[size], Reg.R10, off, 42),
                        asm.ldx_mem(BYTES_TO_SIZE[size], Reg.R0, Reg.R10, off),
                        *(
                            [asm.mov64_imm(Reg.R0, 0)]
                            if size != 8
                            else []
                        ),
                        asm.exit_insn(),
                    ]
                )
            tests.append(SelfTest(f"stack_rw_{size}_at_{off}", build, "accept"))
    for off, size in ((-516, 8), (8, 8), (0, 8), (-520, 8), (-4, 8)):
        def build(kernel, size=size, off=off):
            sz = BYTES_TO_SIZE.get(size, Size.DW)
            return _prog(
                [asm.st_mem(sz, Reg.R10, off, 1), *_exit_zero()]
            )
        tests.append(SelfTest(f"stack_oob_{size}_at_{off}", build, "reject"))
    # Reading uninitialised stack.
    for off in (-8, -128):
        def build(kernel, off=off):
            return _prog(
                [asm.ldx_mem(Size.DW, Reg.R0, Reg.R10, off), asm.exit_insn()]
            )
        tests.append(SelfTest(f"stack_uninit_read_{off}", build, "reject"))
    return tests


def _spill_fill_family() -> list[SelfTest]:
    tests = []

    def build_ptr_spill(kernel):
        fd = kernel.map_create(MapType.HASH, 8, 16, 8)
        return _prog(
            [
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.st_mem(Size.DW, Reg.R2, 0, 0),
                asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
                # Spill the map-value pointer and fill it back.
                asm.stx_mem(Size.DW, Reg.R10, Reg.R0, -16),
                asm.ldx_mem(Size.DW, Reg.R3, Reg.R10, -16),
                asm.ldx_mem(Size.DW, Reg.R4, Reg.R3, 0),
                *_exit_zero(),
            ]
        )

    tests.append(SelfTest("spill_fill_map_value_ptr", build_ptr_spill, "accept"))

    def build_partial_overwrite(kernel):
        fd = kernel.map_create(MapType.HASH, 8, 16, 8)
        return _prog(
            [
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.st_mem(Size.DW, Reg.R2, 0, 0),
                asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
                asm.stx_mem(Size.DW, Reg.R10, Reg.R0, -16),
                asm.st_mem(Size.B, Reg.R10, -12, 7),  # clobber one byte
                asm.ldx_mem(Size.DW, Reg.R3, Reg.R10, -16),
                asm.ldx_mem(Size.DW, Reg.R4, Reg.R3, 0),  # no longer a ptr
                *_exit_zero(),
            ]
        )

    tests.append(
        SelfTest("spill_partial_overwrite_kills_ptr", build_partial_overwrite,
                 "reject")
    )

    def build_scalar_spill(kernel):
        return _prog(
            [
                asm.mov64_imm(Reg.R1, 77),
                asm.stx_mem(Size.DW, Reg.R10, Reg.R1, -8),
                asm.ldx_mem(Size.DW, Reg.R0, Reg.R10, -8),
                asm.exit_insn(),
            ]
        )

    tests.append(SelfTest("spill_fill_scalar", build_scalar_spill, "accept"))
    return tests


def _uninit_family() -> list[SelfTest]:
    tests = []
    for regno in (0, 2, 5, 9):
        def build(kernel, regno=regno):
            return _prog(
                [
                    asm.alu64_imm(AluOp.ADD, regno, 1),
                    *_exit_zero(),
                ]
            )
        tests.append(
            SelfTest(f"uninit_reg_r{regno}", build, "reject",
                     has_memory_access=False)
        )

    def build_uninit_r0_exit(kernel):
        return _prog([asm.exit_insn()])

    tests.append(
        SelfTest("uninit_r0_at_exit", build_uninit_r0_exit, "reject",
                 has_memory_access=False)
    )
    return tests


def _alu_family() -> list[SelfTest]:
    tests = []
    ops = (AluOp.ADD, AluOp.SUB, AluOp.MUL, AluOp.OR, AluOp.AND, AluOp.XOR,
           AluOp.LSH, AluOp.RSH, AluOp.ARSH, AluOp.DIV, AluOp.MOD)
    for op in ops:
        for is64 in (True, False):
            def build(kernel, op=op, is64=is64):
                alu = asm.alu64_imm if is64 else asm.alu32_imm
                imm = 3 if op in (AluOp.LSH, AluOp.RSH, AluOp.ARSH) else 7
                return _prog(
                    [
                        asm.mov64_imm(Reg.R0, 100),
                        alu(op, Reg.R0, imm),
                        asm.mov64_imm(Reg.R0, 0),
                        asm.exit_insn(),
                    ]
                )
            width = 64 if is64 else 32
            tests.append(
                SelfTest(f"alu{width}_{op.name.lower()}", build, "accept",
                         has_memory_access=False)
            )
    # Invalid shifts and div-by-zero immediates.
    for op, imm in ((AluOp.LSH, 64), (AluOp.RSH, 91), (AluOp.DIV, 0),
                    (AluOp.MOD, 0)):
        def build(kernel, op=op, imm=imm):
            return _prog(
                [
                    asm.mov64_imm(Reg.R0, 1),
                    asm.alu64_imm(op, Reg.R0, imm),
                    asm.exit_insn(),
                ]
            )
        tests.append(
            SelfTest(f"alu_invalid_{op.name.lower()}_{imm}", build, "reject",
                     has_memory_access=False)
        )

    def build_neg(kernel):
        return _prog(
            [
                asm.mov64_imm(Reg.R0, 5),
                asm.neg64(Reg.R0),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ]
        )

    tests.append(SelfTest("alu_neg", build_neg, "accept",
                          has_memory_access=False))

    for bits in (16, 32, 64):
        def build(kernel, bits=bits):
            return _prog(
                [
                    asm.mov64_imm(Reg.R0, 0x1234),
                    asm.endian(Reg.R0, bits),
                    asm.mov64_imm(Reg.R0, 0),
                    asm.exit_insn(),
                ]
            )
        tests.append(SelfTest(f"alu_bswap{bits}", build, "accept",
                              has_memory_access=False))
    return tests


def _map_family() -> list[SelfTest]:
    tests = []
    for map_type, key_size, value_size in (
        (MapType.HASH, 8, 8),
        (MapType.HASH, 8, 16),
        (MapType.HASH, 8, 64),
        (MapType.HASH, 16, 32),
        (MapType.ARRAY, 4, 8),
        (MapType.ARRAY, 4, 32),
        (MapType.LRU_HASH, 8, 16),
    ):
        def build(kernel, map_type=map_type, key_size=key_size,
                  value_size=value_size):
            fd = kernel.map_create(map_type, key_size, value_size, 8)
            key_slots = -(-key_size // 8)
            stores = [
                asm.st_mem(Size.DW, Reg.R10, -8 * (i + 1), i)
                for i in range(key_slots)
            ]
            if key_size == 4:
                stores = [asm.st_mem(Size.W, Reg.R10, -8, 0)]
            key_off = -8 * key_slots if key_size != 4 else -8
            return _prog(
                [
                    *stores,
                    *asm.ld_map_fd(Reg.R1, fd),
                    asm.mov64_reg(Reg.R2, Reg.R10),
                    asm.alu64_imm(AluOp.ADD, Reg.R2, key_off),
                    asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                    asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),
                    asm.mov64_imm(Reg.R0, 0),
                    asm.exit_insn(),
                    asm.ldx_mem(Size.DW, Reg.R3, Reg.R0, value_size - 8),
                    asm.st_mem(Size.DW, Reg.R0, 0, 99),
                    *_exit_zero(),
                ]
            )
        tests.append(
            SelfTest(
                f"map_lookup_{map_type.name.lower()}_k{key_size}_v{value_size}",
                build,
                "accept",
            )
        )

    def build_missing_null_check(kernel):
        fd = kernel.map_create(MapType.HASH, 8, 16, 8)
        return _prog(
            [
                asm.st_mem(Size.DW, Reg.R10, -8, 0),
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                asm.ldx_mem(Size.DW, Reg.R3, Reg.R0, 0),  # no null check!
                *_exit_zero(),
            ]
        )

    tests.append(
        SelfTest("map_lookup_missing_null_check", build_missing_null_check,
                 "reject")
    )

    for oob_off in (16, 17, 1024):
        def build(kernel, oob_off=oob_off):
            fd = kernel.map_create(MapType.HASH, 8, 16, 8)
            return _prog(
                [
                    asm.st_mem(Size.DW, Reg.R10, -8, 0),
                    *asm.ld_map_fd(Reg.R1, fd),
                    asm.mov64_reg(Reg.R2, Reg.R10),
                    asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                    asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                    asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),
                    asm.mov64_imm(Reg.R0, 0),
                    asm.exit_insn(),
                    asm.ldx_mem(Size.DW, Reg.R3, Reg.R0, oob_off),
                    *_exit_zero(),
                ]
            )
        tests.append(SelfTest(f"map_value_oob_{oob_off}", build, "reject"))

    def build_update(kernel):
        fd = kernel.map_create(MapType.HASH, 8, 8, 8)
        return _prog(
            [
                asm.st_mem(Size.DW, Reg.R10, -8, 1),
                asm.st_mem(Size.DW, Reg.R10, -16, 2),
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.mov64_reg(Reg.R3, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R3, -16),
                asm.mov64_imm(Reg.R4, 0),
                asm.call_helper(HelperId.MAP_UPDATE_ELEM),
                *_exit_zero(),
            ]
        )

    tests.append(SelfTest("map_update", build_update, "accept"))

    def build_direct_value(kernel):
        fd = kernel.map_create(MapType.ARRAY, 4, 32, 1)
        return _prog(
            [
                *asm.ld_map_value(Reg.R1, fd, 8),
                asm.st_mem(Size.DW, Reg.R1, 0, 5),
                asm.ldx_mem(Size.DW, Reg.R0, Reg.R1, 16),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ]
        )

    tests.append(SelfTest("map_direct_value", build_direct_value, "accept"))

    def build_queue(kernel):
        fd = kernel.map_create(MapType.QUEUE, 0, 16, 8)
        return _prog(
            [
                asm.st_mem(Size.DW, Reg.R10, -8, 1),
                asm.st_mem(Size.DW, Reg.R10, -16, 2),
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -16),
                asm.mov64_imm(Reg.R3, 0),
                asm.call_helper(HelperId.MAP_PUSH_ELEM),
                *_exit_zero(),
            ]
        )

    tests.append(SelfTest("map_queue_push", build_queue, "accept"))
    return tests


def _bounds_family() -> list[SelfTest]:
    """Range-tracking behaviours: bounded indices into map values."""
    tests = []
    for bound, ok in ((8, True), (24, False)):
        def build(kernel, bound=bound):
            fd = kernel.map_create(MapType.HASH, 8, 16, 8)
            return _prog(
                [
                    asm.st_mem(Size.DW, Reg.R10, -8, 0),
                    *asm.ld_map_fd(Reg.R1, fd),
                    asm.mov64_reg(Reg.R2, Reg.R10),
                    asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                    asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                    asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),
                    asm.mov64_imm(Reg.R0, 0),
                    asm.exit_insn(),
                    # r1 = bounded scalar index via AND masking
                    asm.call_helper(HelperId.GET_PRANDOM_U32),
                    asm.alu64_imm(AluOp.AND, Reg.R0, bound - 1),
                    asm.mov64_reg(Reg.R1, Reg.R0),
                    # reload the value pointer (r0 was clobbered)
                    asm.st_mem(Size.DW, Reg.R10, -8, 0),
                    *asm.ld_map_fd(Reg.R6, fd),
                    asm.mov64_reg(Reg.R7, Reg.R1),
                    asm.mov64_reg(Reg.R1, Reg.R6),
                    asm.mov64_reg(Reg.R2, Reg.R10),
                    asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                    asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                    asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),
                    asm.mov64_imm(Reg.R0, 0),
                    asm.exit_insn(),
                    asm.alu64_reg(AluOp.ADD, Reg.R0, Reg.R7),
                    asm.ldx_mem(Size.B, Reg.R3, Reg.R0, 0),
                    *_exit_zero(),
                ]
            )
        verdict = "accept" if ok else "reject"
        tests.append(SelfTest(f"bounded_index_and_{bound}", build, verdict))

    for cmp_bound, ok in ((8, True), (64, False)):
        def build(kernel, cmp_bound=cmp_bound):
            fd = kernel.map_create(MapType.HASH, 8, 16, 8)
            return _prog(
                [
                    asm.st_mem(Size.DW, Reg.R10, -8, 0),
                    *asm.ld_map_fd(Reg.R1, fd),
                    asm.mov64_reg(Reg.R2, Reg.R10),
                    asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                    asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                    asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),
                    asm.mov64_imm(Reg.R0, 0),
                    asm.exit_insn(),
                    asm.mov64_reg(Reg.R6, Reg.R0),
                    asm.call_helper(HelperId.GET_PRANDOM_U32),
                    # branch-refined bound: if r0 > N goto exit
                    asm.jmp_imm(JmpOp.JGT, Reg.R0, cmp_bound - 1, 3),
                    asm.alu64_reg(AluOp.ADD, Reg.R6, Reg.R0),
                    asm.ldx_mem(Size.B, Reg.R3, Reg.R6, 0),
                    asm.mov64_imm(Reg.R0, 0),
                    *_exit_zero(),
                ]
            )
        verdict = "accept" if ok else "reject"
        tests.append(SelfTest(f"branch_bounded_index_{cmp_bound}", build, verdict))
    return tests


def _branch_family() -> list[SelfTest]:
    tests = []
    for op in (JmpOp.JEQ, JmpOp.JNE, JmpOp.JGT, JmpOp.JGE, JmpOp.JLT,
               JmpOp.JLE, JmpOp.JSGT, JmpOp.JSGE, JmpOp.JSLT, JmpOp.JSLE,
               JmpOp.JSET):
        for is32 in (False, True):
            def build(kernel, op=op, is32=is32):
                jmp = asm.jmp32_imm if is32 else asm.jmp_imm
                return _prog(
                    [
                        asm.mov64_imm(Reg.R1, 10),
                        jmp(op, Reg.R1, 5, 1),
                        asm.mov64_imm(Reg.R1, 0),
                        *_exit_zero(),
                    ]
                )
            width = 32 if is32 else 64
            tests.append(
                SelfTest(f"branch{width}_{op.name.lower()}", build, "accept",
                         has_memory_access=False)
            )

    def build_oob_jump(kernel):
        return _prog(
            [asm.mov64_imm(Reg.R0, 0), asm.ja(5), asm.exit_insn()]
        )

    tests.append(SelfTest("jump_out_of_range", build_oob_jump, "reject",
                          has_memory_access=False))

    def build_jump_into_ldimm64(kernel):
        return _prog(
            [
                asm.ja(1),  # lands on the LD_IMM64 second slot
                *asm.ld_imm64(Reg.R1, 0x1234567890),
                *_exit_zero(),
            ]
        )

    tests.append(
        SelfTest("jump_into_ldimm64", build_jump_into_ldimm64, "reject",
                 has_memory_access=False)
    )

    def build_fallthrough(kernel):
        return _prog([asm.mov64_imm(Reg.R0, 0)])

    tests.append(SelfTest("fall_off_end", build_fallthrough, "reject",
                          has_memory_access=False))
    return tests


def _loop_family() -> list[SelfTest]:
    tests = []
    for n in (1, 4, 16):
        def build(kernel, n=n):
            return _prog(
                [
                    asm.mov64_imm(Reg.R1, 0),
                    asm.mov64_imm(Reg.R2, 0),
                    # loop body
                    asm.alu64_imm(AluOp.ADD, Reg.R2, 3),
                    asm.alu64_imm(AluOp.ADD, Reg.R1, 1),
                    asm.jmp_imm(JmpOp.JLT, Reg.R1, n, -3),
                    *_exit_zero(),
                ]
            )
        tests.append(SelfTest(f"bounded_loop_{n}", build, "accept",
                              has_memory_access=False))

    def build_infinite(kernel):
        return _prog(
            [
                asm.mov64_imm(Reg.R1, 0),
                asm.alu64_imm(AluOp.ADD, Reg.R1, 0),  # no progress
                asm.jmp_imm(JmpOp.JLT, Reg.R1, 5, -2),
                *_exit_zero(),
            ]
        )

    tests.append(SelfTest("infinite_loop", build_infinite, "reject",
                          has_memory_access=False))

    def build_ja_self(kernel):
        return _prog([asm.ja(-1), *_exit_zero()])

    tests.append(SelfTest("ja_self_loop", build_ja_self, "reject",
                          has_memory_access=False))
    return tests


def _ctx_family() -> list[SelfTest]:
    tests = []
    for prog_type, off, size, ok in (
        (ProgType.SOCKET_FILTER, 0, 4, True),    # len
        (ProgType.SOCKET_FILTER, 8, 4, True),    # mark
        (ProgType.SOCKET_FILTER, 24, 4, False),  # hole
        (ProgType.SOCKET_FILTER, 400, 4, False),  # out of range
        (ProgType.KPROBE, 0, 8, True),
        (ProgType.KPROBE, 64, 8, True),
        (ProgType.TRACEPOINT, 16, 8, True),      # raw readable
        (ProgType.PERF_EVENT, 0, 8, True),
        (ProgType.XDP, 12, 4, True),             # ingress_ifindex
    ):
        def build(kernel, prog_type=prog_type, off=off, size=size):
            return _prog(
                [
                    asm.ldx_mem(BYTES_TO_SIZE[size], Reg.R0, Reg.R1, off),
                    *_exit_zero(),
                ],
                prog_type=prog_type,
            )
        verdict = "accept" if ok else "reject"
        tests.append(
            SelfTest(
                f"ctx_read_{prog_type.value}_{off}_{size}", build, verdict
            )
        )

    def build_ctx_write_ok(kernel):
        return _prog(
            [
                asm.st_mem(Size.W, Reg.R1, 8, 1),  # mark is writable
                *_exit_zero(),
            ]
        )

    tests.append(SelfTest("ctx_write_mark", build_ctx_write_ok, "accept"))

    def build_ctx_write_ro(kernel):
        return _prog(
            [
                asm.st_mem(Size.W, Reg.R1, 0, 1),  # len is read-only
                *_exit_zero(),
            ]
        )

    tests.append(SelfTest("ctx_write_readonly", build_ctx_write_ro, "reject"))
    return tests


def _packet_family() -> list[SelfTest]:
    tests = []
    for prog_type in (ProgType.SOCKET_FILTER, ProgType.XDP, ProgType.SCHED_CLS):
        descriptor_offs = {"socket_filter": (76, 80), "sched_cls": (76, 80),
                           "xdp": (0, 4)}
        data_off, end_off = descriptor_offs[prog_type.value]
        for n in (2, 14, 34):
            def build(kernel, prog_type=prog_type, data_off=data_off,
                      end_off=end_off, n=n):
                return _prog(
                    [
                        asm.ldx_mem(Size.W, Reg.R2, Reg.R1, data_off),
                        asm.ldx_mem(Size.W, Reg.R3, Reg.R1, end_off),
                        asm.mov64_reg(Reg.R4, Reg.R2),
                        asm.alu64_imm(AluOp.ADD, Reg.R4, n),
                        asm.jmp_reg(JmpOp.JGT, Reg.R4, Reg.R3, 1),
                        asm.ldx_mem(Size.B, Reg.R5, Reg.R2, n - 1),
                        *_exit_zero(),
                    ],
                    prog_type=prog_type,
                )
            tests.append(
                SelfTest(f"pkt_bounded_{prog_type.value}_{n}", build, "accept")
            )

        def build_unchecked(kernel, prog_type=prog_type, data_off=data_off):
            return _prog(
                [
                    asm.ldx_mem(Size.W, Reg.R2, Reg.R1, data_off),
                    asm.ldx_mem(Size.B, Reg.R0, Reg.R2, 0),  # no check
                    *_exit_zero(),
                ],
                prog_type=prog_type,
            )

        tests.append(
            SelfTest(f"pkt_unchecked_{prog_type.value}", build_unchecked,
                     "reject")
        )

    def build_pkt_on_kprobe(kernel):
        # Offset 76 is a narrow read of a pt_regs register on kprobe
        # contexts — legal, and crucially NOT a packet pointer load.
        return _prog(
            [
                asm.ldx_mem(Size.W, Reg.R2, Reg.R1, 76),
                *_exit_zero(),
            ],
            prog_type=ProgType.KPROBE,
        )

    tests.append(
        SelfTest("ctx_narrow_read_kprobe", build_pkt_on_kprobe, "accept")
    )
    return tests


def _helper_family() -> list[SelfTest]:
    tests = []
    simple = (
        (HelperId.KTIME_GET_NS, None),
        (HelperId.GET_PRANDOM_U32, None),
        (HelperId.GET_SMP_PROCESSOR_ID, None),
        (HelperId.GET_CURRENT_PID_TGID, ProgType.KPROBE),
        (HelperId.GET_CURRENT_UID_GID, ProgType.KPROBE),
        (HelperId.GET_CURRENT_TASK, ProgType.KPROBE),
    )
    for hid, prog_type in simple:
        def build(kernel, hid=hid, prog_type=prog_type):
            return _prog(
                [asm.call_helper(hid), *_exit_zero()],
                prog_type=prog_type or ProgType.SOCKET_FILTER,
            )
        tests.append(
            SelfTest(f"helper_{HelperId(hid).name.lower()}", build, "accept",
                     has_memory_access=False)
        )

    def build_comm(kernel):
        return _prog(
            [
                asm.mov64_reg(Reg.R1, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R1, -16),
                asm.mov64_imm(Reg.R2, 16),
                asm.call_helper(HelperId.GET_CURRENT_COMM),
                asm.ldx_mem(Size.DW, Reg.R0, Reg.R10, -16),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
            ],
            prog_type=ProgType.KPROBE,
        )

    tests.append(SelfTest("helper_get_current_comm", build_comm, "accept"))

    def build_probe_read(kernel):
        return _prog(
            [
                asm.mov64_reg(Reg.R1, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R1, -8),
                asm.mov64_imm(Reg.R2, 8),
                *asm.ld_imm64(Reg.R3, 0xFFFF888000001000),
                asm.call_helper(HelperId.PROBE_READ_KERNEL),
                *_exit_zero(),
            ],
            prog_type=ProgType.KPROBE,
        )

    tests.append(SelfTest("helper_probe_read_kernel", build_probe_read,
                          "accept"))

    def build_wrong_type(kernel):
        # Tracing-only helper from a socket filter.
        return _prog(
            [asm.call_helper(HelperId.GET_CURRENT_PID_TGID), *_exit_zero()],
            prog_type=ProgType.SOCKET_FILTER,
        )

    tests.append(
        SelfTest("helper_wrong_prog_type", build_wrong_type, "reject",
                 has_memory_access=False)
    )

    def build_unknown(kernel):
        return _prog(
            [asm.call_helper(0x7FFF), *_exit_zero()],
        )

    tests.append(SelfTest("helper_unknown_id", build_unknown, "reject",
                          has_memory_access=False))

    def build_bad_arg(kernel):
        fd = kernel.map_create(MapType.HASH, 8, 8, 8)
        return _prog(
            [
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_imm(Reg.R2, 12345),  # scalar where ptr expected
                asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                *_exit_zero(),
            ]
        )

    tests.append(SelfTest("helper_scalar_as_key_ptr", build_bad_arg, "reject",
                          has_memory_access=False))

    def build_uninit_key(kernel):
        fd = kernel.map_create(MapType.HASH, 8, 8, 8)
        return _prog(
            [
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.call_helper(HelperId.MAP_LOOKUP_ELEM),  # key not written
                *_exit_zero(),
            ]
        )

    tests.append(SelfTest("helper_uninit_key", build_uninit_key, "reject",
                          has_memory_access=False))
    return tests


def _atomic_family() -> list[SelfTest]:
    tests = []
    for op in (AtomicOp.ADD, AtomicOp.OR, AtomicOp.AND, AtomicOp.XOR,
               AtomicOp.ADD | AtomicOp.FETCH, AtomicOp.XCHG,
               AtomicOp.CMPXCHG):
        for size in (Size.W, Size.DW):
            def build(kernel, op=op, size=size):
                return _prog(
                    [
                        asm.st_mem(Size.DW, Reg.R10, -8, 10),
                        asm.mov64_imm(Reg.R0, 10),
                        asm.mov64_imm(Reg.R1, 3),
                        asm.mov64_reg(Reg.R2, Reg.R10),
                        asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                        asm.atomic_op(size, op, Reg.R2, Reg.R1, 0),
                        asm.mov64_imm(Reg.R0, 0),
                        asm.exit_insn(),
                    ]
                )
            name = f"atomic_{int(op):#04x}_{'w' if size == Size.W else 'dw'}"
            tests.append(SelfTest(name, build, "accept"))

    def build_bad_size(kernel):
        return _prog(
            [
                asm.st_mem(Size.DW, Reg.R10, -8, 0),
                asm.mov64_imm(Reg.R1, 1),
                asm.atomic_op(Size.B, AtomicOp.ADD, Reg.R10, Reg.R1, -8),
                *_exit_zero(),
            ]
        )

    tests.append(SelfTest("atomic_bad_size", build_bad_size, "reject",
                          has_memory_access=False))
    return tests


def _subprog_family() -> list[SelfTest]:
    tests = []

    def build_call(kernel):
        return _prog(
            [
                asm.mov64_imm(Reg.R1, 21),
                asm.call_subprog(2),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
                # subprog: r0 = r1 * 2
                asm.mov64_reg(Reg.R0, Reg.R1),
                asm.alu64_imm(AluOp.MUL, Reg.R0, 2),
                asm.exit_insn(),
            ]
        )

    tests.append(SelfTest("subprog_simple", build_call, "accept",
                          has_memory_access=False))

    def build_callee_saved(kernel):
        return _prog(
            [
                asm.mov64_imm(Reg.R6, 7),
                asm.mov64_imm(Reg.R1, 1),
                asm.call_subprog(3),
                asm.alu64_reg(AluOp.ADD, Reg.R0, Reg.R6),  # r6 preserved
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
                asm.mov64_imm(Reg.R0, 5),
                asm.exit_insn(),
            ]
        )

    tests.append(SelfTest("subprog_callee_saved", build_callee_saved,
                          "accept", has_memory_access=False))

    def build_uninit_arg_use(kernel):
        return _prog(
            [
                asm.call_subprog(2),  # r1..r5 never set
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
                asm.mov64_reg(Reg.R0, Reg.R2),  # reads caller garbage
                asm.exit_insn(),
            ]
        )

    tests.append(SelfTest("subprog_uninit_arg", build_uninit_arg_use,
                          "reject", has_memory_access=False))

    def build_own_stack(kernel):
        return _prog(
            [
                asm.st_mem(Size.DW, Reg.R10, -8, 11),
                asm.mov64_imm(Reg.R1, 0),
                asm.call_subprog(3),
                asm.ldx_mem(Size.DW, Reg.R0, Reg.R10, -8),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
                # subprog with its own frame
                asm.st_mem(Size.DW, Reg.R10, -8, 22),
                asm.ldx_mem(Size.DW, Reg.R0, Reg.R10, -8),
                asm.exit_insn(),
            ]
        )

    tests.append(SelfTest("subprog_own_stack", build_own_stack, "accept"))
    return tests


def _btf_family() -> list[SelfTest]:
    tests = []

    def build_task_read(kernel):
        return _prog(
            [
                asm.call_helper(HelperId.GET_CURRENT_TASK_BTF),
                asm.ldx_mem(Size.W, Reg.R1, Reg.R0, 32),  # pid
                *_exit_zero(),
            ],
            prog_type=ProgType.KPROBE,
        )

    tests.append(SelfTest("btf_task_pid_read", build_task_read, "accept"))

    def build_task_oob(kernel):
        return _prog(
            [
                asm.call_helper(HelperId.GET_CURRENT_TASK_BTF),
                asm.ldx_mem(Size.DW, Reg.R1, Reg.R0, 128),  # at the end
                *_exit_zero(),
            ],
            prog_type=ProgType.KPROBE,
        )

    tests.append(SelfTest("btf_task_oob", build_task_oob, "reject"))

    def build_task_write(kernel):
        return _prog(
            [
                asm.call_helper(HelperId.GET_CURRENT_TASK_BTF),
                asm.st_mem(Size.W, Reg.R0, 32, 0),
                *_exit_zero(),
            ],
            prog_type=ProgType.KPROBE,
        )

    tests.append(SelfTest("btf_task_write", build_task_write, "reject"))

    def build_ptr_chase(kernel):
        return _prog(
            [
                asm.call_helper(HelperId.GET_CURRENT_TASK_BTF),
                asm.ldx_mem(Size.DW, Reg.R1, Reg.R0, 40),  # parent
                asm.ldx_mem(Size.W, Reg.R2, Reg.R1, 32),   # parent->pid
                *_exit_zero(),
            ],
            prog_type=ProgType.KPROBE,
        )

    tests.append(SelfTest("btf_ptr_chase", build_ptr_chase, "accept"))
    return tests


def _structure_family() -> list[SelfTest]:
    tests = []

    def build_empty(kernel):
        return _prog([])

    tests.append(SelfTest("empty_program", build_empty, "reject",
                          has_memory_access=False))

    def build_bad_opcode(kernel):
        return _prog([Insn(opcode=0xFF), *_exit_zero()])

    tests.append(SelfTest("unknown_opcode", build_bad_opcode, "reject",
                          has_memory_access=False))

    def build_bad_reg(kernel):
        return _prog([asm.mov64_imm(12, 0), *_exit_zero()])

    tests.append(SelfTest("register_out_of_range", build_bad_reg, "reject",
                          has_memory_access=False))

    def build_write_fp(kernel):
        return _prog([asm.mov64_imm(Reg.R10, 0), *_exit_zero()])

    tests.append(SelfTest("write_frame_pointer", build_write_fp, "reject",
                          has_memory_access=False))

    def build_huge(kernel):
        body = [asm.mov64_imm(Reg.R0, 0)] * 5000
        return _prog([*body, asm.exit_insn()])

    tests.append(SelfTest("too_many_insns", build_huge, "reject",
                          has_memory_access=False))

    def build_ret_ptr(kernel):
        return _prog(
            [asm.mov64_reg(Reg.R0, Reg.R10), asm.exit_insn()]
        )

    tests.append(SelfTest("leak_pointer_in_r0", build_ret_ptr, "reject",
                          has_memory_access=False))
    return tests


def _spin_lock_family() -> list[SelfTest]:
    """bpf_spin_lock discipline on lock-bearing map values."""
    tests = []

    def lock_prog(kernel, unlock=True, touch_lock=False, call_inside=False):
        fd = kernel.map_create(MapType.HASH, 8, 16, 4, has_spin_lock=True)
        body = [
            asm.mov64_reg(Reg.R6, Reg.R0),
            asm.mov64_reg(Reg.R1, Reg.R0),
            asm.call_helper(HelperId.SPIN_LOCK),
        ]
        if call_inside:
            body.append(asm.call_helper(HelperId.KTIME_GET_NS))
        body.append(asm.st_mem(Size.DW, Reg.R6, 8, 42))
        if touch_lock:
            body.append(asm.st_mem(Size.W, Reg.R6, 0, 1))
        if unlock:
            body += [
                asm.mov64_reg(Reg.R1, Reg.R6),
                asm.call_helper(HelperId.SPIN_UNLOCK),
            ]
        return _prog(
            [
                asm.st_mem(Size.DW, Reg.R10, -8, 0),
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
                *body,
                *_exit_zero(),
            ]
        )

    tests.append(SelfTest("spin_lock_balanced", lock_prog, "accept"))
    tests.append(
        SelfTest(
            "spin_lock_leaked",
            lambda k: lock_prog(k, unlock=False),
            "reject",
        )
    )
    tests.append(
        SelfTest(
            "spin_lock_region_untouchable",
            lambda k: lock_prog(k, touch_lock=True),
            "reject",
        )
    )
    tests.append(
        SelfTest(
            "spin_lock_no_calls_inside",
            lambda k: lock_prog(k, call_inside=True),
            "reject",
        )
    )

    def unlock_without_lock(kernel):
        fd = kernel.map_create(MapType.HASH, 8, 16, 4, has_spin_lock=True)
        return _prog(
            [
                asm.st_mem(Size.DW, Reg.R10, -8, 0),
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
                asm.mov64_reg(Reg.R1, Reg.R0),
                asm.call_helper(HelperId.SPIN_UNLOCK),
                *_exit_zero(),
            ]
        )

    tests.append(
        SelfTest("spin_unlock_without_lock", unlock_without_lock, "reject")
    )

    def lock_on_plain_map(kernel):
        fd = kernel.map_create(MapType.HASH, 8, 16, 4)  # no lock
        return _prog(
            [
                asm.st_mem(Size.DW, Reg.R10, -8, 0),
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
                asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),
                asm.mov64_imm(Reg.R0, 0),
                asm.exit_insn(),
                asm.mov64_reg(Reg.R1, Reg.R0),
                asm.call_helper(HelperId.SPIN_LOCK),
                asm.mov64_reg(Reg.R1, Reg.R0),
                asm.call_helper(HelperId.SPIN_UNLOCK),
                *_exit_zero(),
            ]
        )

    tests.append(
        SelfTest("spin_lock_on_lockless_map", lock_on_plain_map, "reject")
    )
    return tests


def _ringbuf_family() -> list[SelfTest]:
    """Reference tracking: reserve/submit/discard obligations."""
    tests = []

    def reserve_prog(kernel, size=16, release=HelperId.RINGBUF_SUBMIT,
                     leak=False, use_after=False, double=False):
        fd = kernel.map_create(MapType.RINGBUF, 0, 0, 4096)
        tail = []
        if not leak:
            tail = [
                asm.mov64_reg(Reg.R1, Reg.R0),
                asm.mov64_imm(Reg.R2, 0),
                asm.call_helper(release),
            ]
            if double:
                tail += [
                    asm.mov64_reg(Reg.R1, Reg.R6),
                    asm.mov64_imm(Reg.R2, 0),
                    asm.call_helper(release),
                ]
        extra = [asm.ldx_mem(Size.DW, Reg.R3, Reg.R6, 0)] if use_after else []
        body = [
            asm.mov64_reg(Reg.R6, Reg.R0),
            asm.st_mem(Size.DW, Reg.R0, 0, 7),
            *tail,
            *extra,
        ]
        return _prog(
            [
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_imm(Reg.R2, size),
                asm.mov64_imm(Reg.R3, 0),
                asm.call_helper(HelperId.RINGBUF_RESERVE),
                asm.jmp_imm(JmpOp.JEQ, Reg.R0, 0, len(body)),
                *body,
                *_exit_zero(),
            ]
        )

    for release in (HelperId.RINGBUF_SUBMIT, HelperId.RINGBUF_DISCARD):
        name = HelperId(release).name.lower()
        tests.append(
            SelfTest(
                f"ringbuf_reserve_{name}",
                lambda k, r=release: reserve_prog(k, release=r),
                "accept",
            )
        )
    tests.append(
        SelfTest(
            "ringbuf_reserve_leak",
            lambda k: reserve_prog(k, leak=True),
            "reject",
        )
    )
    tests.append(
        SelfTest(
            "ringbuf_use_after_release",
            lambda k: reserve_prog(k, use_after=True),
            "reject",
        )
    )
    tests.append(
        SelfTest(
            "ringbuf_double_release",
            lambda k: reserve_prog(k, double=True),
            "reject",
        )
    )

    def unchecked_reserve(kernel):
        fd = kernel.map_create(MapType.RINGBUF, 0, 0, 4096)
        return _prog(
            [
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_imm(Reg.R2, 16),
                asm.mov64_imm(Reg.R3, 0),
                asm.call_helper(HelperId.RINGBUF_RESERVE),
                asm.st_mem(Size.DW, Reg.R0, 0, 1),  # no null check
                *_exit_zero(),
            ]
        )

    tests.append(
        SelfTest("ringbuf_reserve_no_null_check", unchecked_reserve, "reject")
    )

    def record_oob(kernel):
        fd = kernel.map_create(MapType.RINGBUF, 0, 0, 4096)
        body = [
            asm.st_mem(Size.DW, Reg.R0, 16, 1),  # record is 16 bytes
            asm.mov64_reg(Reg.R1, Reg.R0),
            asm.mov64_imm(Reg.R2, 0),
            asm.call_helper(HelperId.RINGBUF_DISCARD),
        ]
        return _prog(
            [
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_imm(Reg.R2, 16),
                asm.mov64_imm(Reg.R3, 0),
                asm.call_helper(HelperId.RINGBUF_RESERVE),
                asm.jmp_imm(JmpOp.JEQ, Reg.R0, 0, len(body)),
                *body,
                *_exit_zero(),
            ]
        )

    tests.append(SelfTest("ringbuf_record_oob", record_oob, "reject"))
    return tests


def all_selftests() -> list[SelfTest]:
    """The full corpus, every family expanded."""
    tests: list[SelfTest] = []
    tests += _stack_rw_family()
    tests += _spill_fill_family()
    tests += _uninit_family()
    tests += _alu_family()
    tests += _map_family()
    tests += _bounds_family()
    tests += _branch_family()
    tests += _loop_family()
    tests += _ctx_family()
    tests += _packet_family()
    tests += _helper_family()
    tests += _atomic_family()
    tests += _subprog_family()
    tests += _btf_family()
    tests += _ringbuf_family()
    tests += _spin_lock_family()
    tests += _structure_family()
    return tests


def all_selftests_extended() -> list[SelfTest]:
    """The base corpus plus the semantic and matrix families."""
    from repro.testsuite.matrix import matrix_selftests
    from repro.testsuite.semantic import semantic_selftests

    return all_selftests() + semantic_selftests() + matrix_selftests()
