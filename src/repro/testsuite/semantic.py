"""Semantic self-test families: programs with known results.

These mirror the kernel's ``test_verifier``/``test_progs`` style where
a program is expected not just to load but to compute a specific
value.  Each test pins an instruction-semantics fact (wrapping, sign
extension, zero extension, shift masking, division conventions,
byte-order conversion, spill round-trips, 32-bit jump views...), so a
regression in either the verifier's rewrites or the interpreter shows
up as a wrong R0.
"""

from __future__ import annotations

from repro.ebpf import asm
from repro.ebpf.helpers import HelperId
from repro.ebpf.maps import MapType
from repro.ebpf.opcodes import AluOp, AtomicOp, JmpOp, Reg, Size, BYTES_TO_SIZE
from repro.ebpf.program import BpfProgram, ProgType
from repro.testsuite.selftests import SelfTest

__all__ = ["semantic_selftests"]

U64 = (1 << 64) - 1
U32 = (1 << 32) - 1


def _prog(insns, prog_type=ProgType.SOCKET_FILTER):
    return BpfProgram(insns=list(insns), prog_type=prog_type)


def _alu64_cases():
    """(op, a, b, expected) covering wrapping and edge operands."""
    cases = []
    samples = [
        (AluOp.ADD, U64, 1, 0),
        (AluOp.ADD, 1 << 63, 1 << 63, 0),
        (AluOp.ADD, 1234, 4321, 5555),
        (AluOp.SUB, 0, 1, U64),
        (AluOp.SUB, 10, 3, 7),
        (AluOp.MUL, 1 << 32, 1 << 32, 0),
        (AluOp.MUL, 3, 5, 15),
        (AluOp.DIV, 100, 7, 14),
        (AluOp.DIV, 100, 0, 0),          # div-by-zero convention
        (AluOp.DIV, U64, 2, U64 >> 1),
        (AluOp.MOD, 100, 7, 2),
        (AluOp.MOD, 100, 0, 100),        # mod-by-zero convention
        (AluOp.OR, 0xF0, 0x0F, 0xFF),
        (AluOp.AND, 0xFF, 0x0F, 0x0F),
        (AluOp.XOR, 0xFF, 0xF0, 0x0F),
        (AluOp.XOR, U64, U64, 0),
        (AluOp.LSH, 1, 63, 1 << 63),
        (AluOp.LSH, 3, 1, 6),
        (AluOp.RSH, 1 << 63, 63, 1),
        (AluOp.RSH, U64, 1, U64 >> 1),
        (AluOp.ARSH, 1 << 63, 63, U64),  # sign fill
        (AluOp.ARSH, 8, 2, 2),
    ]
    for op, a, b, expected in samples:
        cases.append((f"alu64_{op.name.lower()}_{a:#x}_{b:#x}", op, a, b,
                      expected, True))
    samples32 = [
        (AluOp.ADD, U32, 1, 0),
        (AluOp.SUB, 0, 1, U32),
        (AluOp.MUL, 0x10000, 0x10000, 0),
        (AluOp.DIV, U64, 2, (U32 >> 1)),  # operates on low half
        (AluOp.LSH, 1, 31, 1 << 31),
        (AluOp.RSH, 1 << 31, 31, 1),
        (AluOp.ARSH, 1 << 31, 31, U32),   # 32-bit sign fill, zext
        (AluOp.AND, 0xFFFF_FFFF_0000_00FF, 0xFF, 0xFF),
    ]
    for op, a, b, expected in samples32:
        cases.append((f"alu32_{op.name.lower()}_{a:#x}_{b:#x}", op, a, b,
                      expected, False))
    return cases


def _alu_semantic_family() -> list[SelfTest]:
    tests = []
    for name, op, a, b, expected, is64 in _alu64_cases():
        def build(kernel, op=op, a=a, b=b, is64=is64):
            alu = asm.alu64_reg if is64 else asm.alu32_reg
            return _prog(
                [
                    *asm.ld_imm64(Reg.R0, a),
                    *asm.ld_imm64(Reg.R1, b),
                    alu(op, Reg.R0, Reg.R1),
                    asm.exit_insn(),
                ]
            )
        tests.append(
            SelfTest(name, build, "accept", has_memory_access=False,
                     expected_r0=expected)
        )

    # Immediate sign-extension behaviour.
    def build_neg_imm64(kernel):
        return _prog([asm.mov64_imm(Reg.R0, -1), asm.exit_insn()])

    tests.append(SelfTest("mov64_negative_imm_sign_extends", build_neg_imm64,
                          "accept", has_memory_access=False, expected_r0=U64))

    def build_neg_imm32(kernel):
        return _prog([asm.mov32_imm(Reg.R0, -1), asm.exit_insn()])

    tests.append(SelfTest("mov32_negative_imm_zero_extends", build_neg_imm32,
                          "accept", has_memory_access=False, expected_r0=U32))

    for bits, value, expected_be, expected_le in (
        (16, 0x1122334455667788, 0x8877, 0x7788),
        (32, 0x1122334455667788, 0x88776655, 0x55667788),
        (64, 0x1122334455667788, 0x8877665544332211, 0x1122334455667788),
    ):
        def build_be(kernel, bits=bits, value=value):
            return _prog(
                [
                    *asm.ld_imm64(Reg.R0, value),
                    asm.endian(Reg.R0, bits, to_big=True),
                    asm.exit_insn(),
                ]
            )
        tests.append(
            SelfTest(f"bswap_be{bits}", build_be, "accept",
                     has_memory_access=False, expected_r0=expected_be)
        )

        def build_le(kernel, bits=bits, value=value):
            return _prog(
                [
                    *asm.ld_imm64(Reg.R0, value),
                    asm.endian(Reg.R0, bits, to_big=False),
                    asm.exit_insn(),
                ]
            )
        tests.append(
            SelfTest(f"bswap_le{bits}", build_le, "accept",
                     has_memory_access=False, expected_r0=expected_le)
        )
    return tests


def _memory_semantic_family() -> list[SelfTest]:
    tests = []
    value = 0x1122334455667788
    for size, mask in ((1, 0xFF), (2, 0xFFFF), (4, U32), (8, U64)):
        def build(kernel, size=size):
            return _prog(
                [
                    *asm.ld_imm64(Reg.R1, value),
                    asm.stx_mem(BYTES_TO_SIZE[size], Reg.R10, Reg.R1, -8),
                    asm.ldx_mem(BYTES_TO_SIZE[size], Reg.R0, Reg.R10, -8),
                    asm.exit_insn(),
                ]
            )
        tests.append(
            SelfTest(f"store_load_{size}b", build, "accept",
                     expected_r0=value & mask)
        )

    # Little-endian byte order of stack stores.
    def build_byte_order(kernel):
        return _prog(
            [
                *asm.ld_imm64(Reg.R1, 0x0102030405060708),
                asm.stx_mem(Size.DW, Reg.R10, Reg.R1, -8),
                asm.ldx_mem(Size.B, Reg.R0, Reg.R10, -8),  # lowest byte
                asm.exit_insn(),
            ]
        )

    tests.append(SelfTest("store_is_little_endian", build_byte_order,
                          "accept", expected_r0=0x08))

    def build_sx(kernel):
        return _prog(
            [
                asm.st_mem(Size.B, Reg.R10, -1, 0x80),
                asm.ldx_memsx(Size.B, Reg.R0, Reg.R10, -1),
                asm.exit_insn(),
            ]
        )

    tests.append(SelfTest("memsx_sign_extends_b", build_sx, "accept",
                          expected_r0=(-(0x80) & U64)))

    for op, start, operand, expected in (
        (AtomicOp.ADD, 100, 20, 120),
        (AtomicOp.OR, 0b1000, 0b0011, 0b1011),
        (AtomicOp.AND, 0b1111, 0b0110, 0b0110),
        (AtomicOp.XOR, 0b1111, 0b1010, 0b0101),
    ):
        def build(kernel, op=op, start=start, operand=operand):
            return _prog(
                [
                    asm.st_mem(Size.DW, Reg.R10, -8, start),
                    asm.mov64_imm(Reg.R1, operand),
                    asm.atomic_op(Size.DW, op, Reg.R10, Reg.R1, -8),
                    asm.ldx_mem(Size.DW, Reg.R0, Reg.R10, -8),
                    asm.exit_insn(),
                ]
            )
        tests.append(
            SelfTest(f"atomic_semantic_{op.name.lower()}", build, "accept",
                     expected_r0=expected)
        )

    def build_fetch(kernel):
        return _prog(
            [
                asm.st_mem(Size.DW, Reg.R10, -8, 55),
                asm.mov64_imm(Reg.R1, 11),
                asm.atomic_op(Size.DW, AtomicOp.ADD | AtomicOp.FETCH,
                              Reg.R10, Reg.R1, -8),
                asm.mov64_reg(Reg.R0, Reg.R1),  # fetched old value
                asm.exit_insn(),
            ]
        )

    tests.append(SelfTest("atomic_fetch_returns_old", build_fetch, "accept",
                          expected_r0=55))
    return tests


def _branch_semantic_family() -> list[SelfTest]:
    tests = []
    # (op, a, b, taken) over signed/unsigned boundaries, 64-bit.
    cases = [
        (JmpOp.JEQ, 5, 5, True),
        (JmpOp.JNE, 5, 6, True),
        (JmpOp.JGT, U64, 0, True),         # unsigned: max > 0
        (JmpOp.JSGT, U64, 0, False),       # signed: -1 > 0 is false
        (JmpOp.JGE, 7, 7, True),
        (JmpOp.JSGE, (-5) & U64, (-5) & U64, True),
        (JmpOp.JLT, 0, U64, True),
        (JmpOp.JSLT, U64, 0, True),        # -1 < 0
        (JmpOp.JLE, 3, 3, True),
        (JmpOp.JSLE, (-2) & U64, (-1) & U64, True),
        (JmpOp.JSET, 0b1100, 0b0100, True),
        (JmpOp.JSET, 0b1100, 0b0011, False),
    ]
    for op, a, b, taken in cases:
        def build(kernel, op=op, a=a, b=b):
            return _prog(
                [
                    *asm.ld_imm64(Reg.R1, a),
                    *asm.ld_imm64(Reg.R2, b),
                    asm.jmp_reg(op, Reg.R1, Reg.R2, 2),
                    asm.mov64_imm(Reg.R0, 0),
                    asm.exit_insn(),
                    asm.mov64_imm(Reg.R0, 1),
                    asm.exit_insn(),
                ]
            )
        tests.append(
            SelfTest(
                f"jmp64_{op.name.lower()}_{a:#x}_{b:#x}", build, "accept",
                has_memory_access=False, expected_r0=1 if taken else 0,
            )
        )

    # JMP32 views only the low half.
    cases32 = [
        (JmpOp.JEQ, 0xFFFFFFFF_00000007, 7, True),
        (JmpOp.JGT, 0x1_00000000, 1, False),    # low half is 0
        (JmpOp.JSLT, 0x00000000_FFFFFFFF, 0, True),  # low half = -1 (s32)
    ]
    for op, a, b, taken in cases32:
        def build(kernel, op=op, a=a, b=b):
            return _prog(
                [
                    *asm.ld_imm64(Reg.R1, a),
                    asm.jmp32_imm(op, Reg.R1, b, 2),
                    asm.mov64_imm(Reg.R0, 0),
                    asm.exit_insn(),
                    asm.mov64_imm(Reg.R0, 1),
                    asm.exit_insn(),
                ]
            )
        tests.append(
            SelfTest(
                f"jmp32_{op.name.lower()}_{a:#x}_{b}", build, "accept",
                has_memory_access=False, expected_r0=1 if taken else 0,
            )
        )

    # Loop accumulators of several trip counts.
    for n in (1, 3, 10, 33):
        def build(kernel, n=n):
            return _prog(
                [
                    asm.mov64_imm(Reg.R0, 0),
                    asm.mov64_imm(Reg.R1, 0),
                    asm.alu64_imm(AluOp.ADD, Reg.R0, 5),
                    asm.alu64_imm(AluOp.ADD, Reg.R1, 1),
                    asm.jmp_imm(JmpOp.JLT, Reg.R1, n, -3),
                    asm.exit_insn(),
                ]
            )
        tests.append(
            SelfTest(f"loop_accumulates_{n}", build, "accept",
                     has_memory_access=False, expected_r0=5 * n)
        )
    return tests


def _pipeline_semantic_family() -> list[SelfTest]:
    """End-to-end flows: maps, helpers, subprograms with known results."""
    tests = []

    def build_map_counter(kernel):
        fd = kernel.map_create(MapType.ARRAY, 4, 8, 1)
        return _prog(
            [
                *asm.ld_map_value(Reg.R6, fd, 0),
                asm.mov64_imm(Reg.R1, 0),
                asm.alu64_imm(AluOp.ADD, Reg.R1, 1),
                asm.mov64_imm(Reg.R2, 1),
                asm.atomic_op(Size.DW, AtomicOp.ADD, Reg.R6, Reg.R2, 0),
                asm.jmp_imm(JmpOp.JLT, Reg.R1, 7, -4),
                asm.ldx_mem(Size.DW, Reg.R0, Reg.R6, 0),
                asm.exit_insn(),
            ]
        )

    tests.append(SelfTest("map_value_loop_counter", build_map_counter,
                          "accept", expected_r0=7))

    def build_subprog_sum(kernel):
        return _prog(
            [
                asm.mov64_imm(Reg.R6, 0),
                asm.mov64_imm(Reg.R7, 0),
                # call add5(r7) 3 times via subprog
                asm.mov64_reg(Reg.R1, Reg.R7),
                asm.call_subprog(5),
                asm.mov64_reg(Reg.R7, Reg.R0),
                asm.alu64_imm(AluOp.ADD, Reg.R6, 1),
                asm.jmp_imm(JmpOp.JLT, Reg.R6, 3, -5),
                asm.mov64_reg(Reg.R0, Reg.R7),
                asm.exit_insn(),
                # subprog: r0 = r1 + 5
                asm.mov64_reg(Reg.R0, Reg.R1),
                asm.alu64_imm(AluOp.ADD, Reg.R0, 5),
                asm.exit_insn(),
            ]
        )

    tests.append(SelfTest("subprog_called_in_loop", build_subprog_sum,
                          "accept", has_memory_access=False, expected_r0=15))

    def build_queue_roundtrip(kernel):
        fd = kernel.map_create(MapType.QUEUE, 0, 8, 4)
        return _prog(
            [
                asm.st_mem(Size.DW, Reg.R10, -8, 31),
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
                asm.mov64_imm(Reg.R3, 0),
                asm.call_helper(HelperId.MAP_PUSH_ELEM),
                *asm.ld_map_fd(Reg.R1, fd),
                asm.mov64_reg(Reg.R2, Reg.R10),
                asm.alu64_imm(AluOp.ADD, Reg.R2, -16),
                asm.call_helper(HelperId.MAP_POP_ELEM),
                asm.ldx_mem(Size.DW, Reg.R0, Reg.R10, -16),
                asm.exit_insn(),
            ]
        )

    tests.append(SelfTest("queue_push_pop_roundtrip", build_queue_roundtrip,
                          "accept", expected_r0=31))

    def build_task_pid(kernel):
        return BpfProgram(
            insns=[
                asm.call_helper(HelperId.GET_CURRENT_TASK_BTF),
                asm.ldx_mem(Size.W, Reg.R0, Reg.R0, 32),
                asm.exit_insn(),
            ],
            prog_type=ProgType.KPROBE,
        )

    tests.append(SelfTest("btf_task_pid_value", build_task_pid, "accept",
                          expected_r0=4242))
    return tests


def semantic_selftests() -> list[SelfTest]:
    tests: list[SelfTest] = []
    tests += _alu_semantic_family()
    tests += _memory_semantic_family()
    tests += _branch_semantic_family()
    tests += _pipeline_semantic_family()
    return tests
