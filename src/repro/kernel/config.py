"""Kernel configuration profiles and the injected-flaw registry.

The paper evaluates three kernel versions (Linux v5.15, v6.1, and the
``bpf-next`` development branch).  We model a "kernel version" as a
:class:`KernelConfig`: a set of available features (which verifier
passes exist, which helpers and kfuncs are exposed) plus the set of
:class:`Flaw` values present in that version.

Each flaw reproduces the root cause of one of the paper's Table-2 bugs
(or CVE-2022-23222 from Listing 1).  A flaw being *present* means the
corresponding buggy code path is active; fixing a bug is modelled by
removing the flaw from the profile, which the regression tests use to
prove the oracle reports nothing once a bug is fixed (no false
positives).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

__all__ = ["Flaw", "KernelConfig", "PROFILES"]


class Flaw(enum.Enum):
    """Injected bugs, keyed to Table 2 of the paper."""

    #: Bug #1 — incorrect nullness propagation of pointer comparisons:
    #: on a ``ptr == ptr`` jump the verifier marks a nullable pointer
    #: non-null even when the other side is PTR_TO_BTF_ID (which is
    #: never marked maybe_null yet can be null at runtime).
    NULLNESS_PROPAGATION = "bug1-nullness-propagation"

    #: Bug #2 — incorrect task_struct (BTF object) access validation:
    #: the bounds check accepts reads past the end of the object.
    TASK_STRUCT_OOB = "bug2-task-struct-oob"

    #: Bug #3 — incorrect check on kfunc call operations: the verifier
    #: fails to reset precision/bounds of caller-saved scalar state
    #: after a kfunc call, so stale bounds justify later accesses.
    KFUNC_BACKTRACK = "bug3-kfunc-backtrack"

    #: Bug #4 — missing check on programs attached to the tracepoint
    #: inside ``bpf_trace_printk``: the helper takes the same lock the
    #: tracepoint fires under, so an attached program deadlocks.
    TRACE_PRINTK_DEADLOCK = "bug4-trace-printk-deadlock"

    #: Bug #5 — missing validation on ``contention_begin``: a program
    #: attached there that calls a lock-acquiring helper re-fires the
    #: tracepoint, causing recursion and inconsistent lock state.
    CONTENTION_BEGIN_LOCK = "bug5-contention-begin-lock"

    #: Bug #6 — missing strict checking on signal sending: the verifier
    #: accepts ``bpf_send_signal`` in NMI-like attach contexts where it
    #: panics the kernel.
    SIGNAL_PANIC = "bug6-signal-panic"

    #: Bug #7 — missing synchronisation between dispatcher update and
    #: execution: a null program slot can be executed (null-ptr-deref).
    DISPATCHER_RACE = "bug7-dispatcher-race"

    #: Bug #8 — ``kmemdup()`` used to duplicate rewritten instructions
    #: to user space fails when the buffer exceeds the kmalloc limit.
    KMEMDUP_LIMIT = "bug8-kmemdup-limit"

    #: Bug #9 — incorrect hash-map bucket iteration in the lock-acquire
    #: failure path walks one bucket past the end (out-of-bounds).
    MAP_BUCKET_ITER = "bug9-map-bucket-iter"

    #: Bug #10 — a helper misuses ``irq_work_queue`` and takes a
    #: sleeping lock from irq context (lockdep report).
    IRQ_WORK_LOCK = "bug10-irq-work-lock"

    #: Bug #11 — incorrect execution environment: a device-offloaded
    #: XDP program is run on the host.
    XDP_DEV_HOST = "bug11-xdp-dev-host"

    #: CVE-2022-23222 (Listing 1) — ALU is allowed on nullable pointers
    #: (``PTR_TO_MAP_VALUE_OR_NULL``), so pointer arithmetic performed
    #: before the null check survives into the non-null branch.
    CVE_2022_23222 = "cve-2022-23222"


#: Flaws whose root cause lives in the verifier (the paper's six
#: correctness bugs plus the motivating CVE).
VERIFIER_FLAWS = frozenset(
    {
        Flaw.NULLNESS_PROPAGATION,
        Flaw.TASK_STRUCT_OOB,
        Flaw.KFUNC_BACKTRACK,
        Flaw.TRACE_PRINTK_DEADLOCK,
        Flaw.CONTENTION_BEGIN_LOCK,
        Flaw.SIGNAL_PANIC,
        Flaw.CVE_2022_23222,
    }
)

#: Flaws in related eBPF components (Table 2, bugs #7-#11).
COMPONENT_FLAWS = frozenset(
    {
        Flaw.DISPATCHER_RACE,
        Flaw.KMEMDUP_LIMIT,
        Flaw.MAP_BUCKET_ITER,
        Flaw.IRQ_WORK_LOCK,
        Flaw.XDP_DEV_HOST,
    }
)


@dataclass(frozen=True)
class KernelConfig:
    """A kernel-version profile: features plus injected flaws.

    Attributes mirror the capability differences between the three
    versions the paper tests.  ``sanitizer_available`` corresponds to
    the paper's Kconfig gate: BVF's three kernel patches can only be
    enabled when KASAN is also available.
    """

    version: str
    flaws: frozenset[Flaw] = frozenset()
    #: kfunc (kernel function) calls are supported by the verifier.
    has_kfuncs: bool = True
    #: The nullness-propagation pass (commit bfeae75856ab) exists.
    has_nullness_propagation: bool = True
    #: Direct BTF object access (PTR_TO_BTF_ID loads) is supported.
    has_btf_access: bool = True
    #: The bpf_loop helper and open-coded iterators exist.
    has_bpf_loop: bool = True
    #: BVF's sanitation patches + KASAN are compiled in.
    sanitizer_available: bool = True
    #: Unprivileged eBPF is allowed (stricter verifier rules apply).
    unprivileged_allowed: bool = False
    #: Size of the verifier's explored-state budget (insn processing
    #: limit); the real kernel uses 1M — scaled down in proportion to
    #: the interpreter-vs-silicon speed gap.
    complexity_limit: int = 30_000

    def has_flaw(self, flaw: Flaw) -> bool:
        """True if the buggy code path for ``flaw`` is active."""
        return flaw in self.flaws

    def without_flaw(self, *flaws: Flaw) -> "KernelConfig":
        """Return a profile with the given bugs fixed."""
        return replace(self, flaws=self.flaws - set(flaws))

    def with_flaw(self, *flaws: Flaw) -> "KernelConfig":
        """Return a profile with additional bugs injected."""
        return replace(self, flaws=self.flaws | set(flaws))

    def verifier_flaws(self) -> frozenset[Flaw]:
        return self.flaws & VERIFIER_FLAWS

    def component_flaws(self) -> frozenset[Flaw]:
        return self.flaws & COMPONENT_FLAWS


def v5_15() -> KernelConfig:
    """Linux v5.15 LTS profile.

    No kfuncs and no nullness-propagation pass (both landed later), so
    bugs #1 and #3 cannot exist here.  CVE-2022-23222 is present (it
    affected v5.8-v5.16), as are the long-standing bugs the paper notes
    were backport-fixed (e.g. Bug #4 existed for four years).
    """
    return KernelConfig(
        version="v5.15",
        has_kfuncs=False,
        has_nullness_propagation=False,
        has_bpf_loop=False,
        flaws=frozenset(
            {
                Flaw.CVE_2022_23222,
                Flaw.TRACE_PRINTK_DEADLOCK,
                Flaw.SIGNAL_PANIC,
                Flaw.KMEMDUP_LIMIT,
                Flaw.MAP_BUCKET_ITER,
                Flaw.IRQ_WORK_LOCK,
            }
        ),
    )


def v6_1() -> KernelConfig:
    """Linux v6.1 LTS profile.

    kfuncs and BTF access are present; the nullness-propagation pass is
    not yet merged.  CVE-2022-23222 is fixed.
    """
    return KernelConfig(
        version="v6.1",
        has_nullness_propagation=False,
        flaws=frozenset(
            {
                Flaw.TASK_STRUCT_OOB,
                Flaw.TRACE_PRINTK_DEADLOCK,
                Flaw.CONTENTION_BEGIN_LOCK,
                Flaw.SIGNAL_PANIC,
                Flaw.DISPATCHER_RACE,
                Flaw.KMEMDUP_LIMIT,
                Flaw.MAP_BUCKET_ITER,
                Flaw.IRQ_WORK_LOCK,
            }
        ),
    )


def bpf_next() -> KernelConfig:
    """The ``bpf-next`` development branch: every feature, every bug.

    This is the profile under which the paper's two-week campaign found
    all eleven Table-2 vulnerabilities; the CVE is long fixed.
    """
    return KernelConfig(
        version="bpf-next",
        flaws=frozenset(Flaw) - {Flaw.CVE_2022_23222},
    )


def pristine(version: str = "patched") -> KernelConfig:
    """A fully-fixed kernel: every feature enabled, no flaws.

    Used by the no-false-positive regression tests: campaigns against a
    pristine kernel must report zero bugs.
    """
    return KernelConfig(version=version, flaws=frozenset())


#: Named profiles used by the benchmarks (Figure 6 / Table 3).
PROFILES = {
    "v5.15": v5_15,
    "v6.1": v6_1,
    "bpf-next": bpf_next,
    "patched": pristine,
}
