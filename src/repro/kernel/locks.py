"""Standard lock classes of the simulated kernel.

These are the locks the reproduced Table-2 bugs revolve around:

- ``trace_printk_lock`` — the raw spinlock ``bpf_trace_printk`` takes
  around its format buffer.  Bug #4 is an attached program re-entering
  through the tracepoint that fires under this lock.
- ``contention_lock`` — stands in for whatever contended lock fires the
  ``contention_begin`` tracepoint.  Bug #5 is a program attached to
  that tracepoint acquiring a lock and re-firing it (Figure 2).
- ``ringbuf_lock`` — a *sleeping* lock misused from irq context by the
  helper in Bug #10.
- ``htab_bucket_lock`` — per-bucket hash map lock whose trylock failure
  path contains Bug #9.
"""

from __future__ import annotations

from repro.kernel.lockdep import LockClass

__all__ = [
    "TRACE_PRINTK_LOCK",
    "CONTENTION_LOCK",
    "RINGBUF_LOCK",
    "HTAB_BUCKET_LOCK",
    "DISPATCHER_MUTEX",
]

TRACE_PRINTK_LOCK = LockClass("trace_printk_lock")
BPF_SPIN_LOCK = LockClass("bpf_spin_lock")
CONTENTION_LOCK = LockClass("contention_lock")
RINGBUF_LOCK = LockClass("ringbuf_waitq_lock", sleeping=True)
HTAB_BUCKET_LOCK = LockClass("htab_bucket_lock")
DISPATCHER_MUTEX = LockClass("dispatcher_mutex", sleeping=True)
