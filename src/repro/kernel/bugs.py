"""Non-verifier eBPF component bugs (Table 2, bugs #7-#11 support).

This module hosts the *dispatcher* (Bug #7) and the xlated-instruction
duplication path (Bug #8).  Bugs #9-#11 live in the subsystems they
belong to (hash map iteration, the ringbuf helper, XDP offload
handling) — see :mod:`repro.ebpf.maps`, :mod:`repro.ebpf.helpers`, and
:meth:`repro.kernel.syscall.Kernel.prog_test_run`.
"""

from __future__ import annotations

import errno

from repro.errors import BpfError, NullDerefReport
from repro.kernel.config import Flaw, KernelConfig

__all__ = ["Dispatcher", "KMEMDUP_XLATED_LIMIT", "dup_xlated_insns"]

#: Scaled-down kmalloc limit for the xlated-instruction duplication
#: buffer (the real kernel's limit is KMALLOC_MAX_CACHE_SIZE; we scale
#: it so realistic fuzzer programs can exceed it).
KMEMDUP_XLATED_LIMIT = 2048  # bytes == 256 instructions


class Dispatcher:
    """The BPF dispatcher: a direct-call trampoline for XDP programs.

    Bug #7: updating the dispatcher while a program may be mid-execution
    requires an RCU-style synchronisation between publishing the new
    image and releasing the old one.  The flawed kernel skips the sync,
    so the execution path can observe a half-updated (NULL) slot.

    We model the race window deterministically: an update performed
    while a previous program is still installed leaves the dispatcher
    in a corrupt state when the flaw is present, and the next execution
    through it dereferences the NULL slot.
    """

    def __init__(self, config: KernelConfig) -> None:
        self.config = config
        self._slot = None
        self._corrupt = False
        self.updates = 0

    def update(self, prog) -> None:
        if self._slot is not None and self.config.has_flaw(Flaw.DISPATCHER_RACE):
            # Missing synchronize_rcu(): the old image is freed while
            # the trampoline may still route through it.
            self._corrupt = True
        self._slot = prog
        self.updates += 1

    def remove(self) -> None:
        self._slot = None
        self._corrupt = False

    def entry(self):
        """Resolve the program to execute (the trampoline hot path)."""
        if self._corrupt:
            self._corrupt = False  # one oops per race, like a real crash
            raise NullDerefReport(
                "bpf dispatcher: null program slot executed "
                "(update/execute race)",
                context={"updates": self.updates},
            )
        return self._slot


def dup_xlated_insns(config: KernelConfig, xlated_len: int) -> bytes | None:
    """Duplicate the rewritten instructions for user space (Bug #8).

    Models the ``bpf_prog_get_info_by_fd`` path that kmemdup()s the
    xlated image.  The flawed kernel uses plain ``kmemdup`` and fails
    for buffers above the kmalloc limit; the fixed kernel uses the
    ``kvmemdup`` primitive introduced by the paper's patch.
    """
    size = xlated_len * 8
    if size > KMEMDUP_XLATED_LIMIT and config.has_flaw(Flaw.KMEMDUP_LIMIT):
        raise BpfError(
            errno.ENOMEM,
            f"kmemdup of {size} bytes of xlated insns failed "
            f"(exceeds kmalloc limit)",
        )
    return b"\x00" * size
