"""Runtime locking correctness validator (lockdep stand-in).

The paper captures indicator #2 partly through "the runtime locking
correctness validator in Linux" — lockdep.  Bugs #4 and #5 manifest as
*recursive locking* (a tracepoint handler re-acquires the lock whose
acquisition fired the tracepoint) and *inconsistent lock state*; bug
#10 manifests as taking a sleeping lock from irq context.

This validator models the relevant subset of lockdep:

- per-context held-lock stacks,
- self-deadlock detection (re-acquiring a held, non-recursive class),
- circular dependency detection over the global lock-class graph
  (``A -> B`` recorded whenever B is acquired while A is held; a cycle
  is an AB-BA deadlock),
- usage-state tracking (a class ever taken in irq context must never
  be taken irq-unsafe while irqs are enabled — simplified to the
  sleeping-lock-in-irq check bug #10 needs),
- release-of-unheld detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LockdepReport

__all__ = ["LockClass", "Lockdep", "HeldLock"]


@dataclass(frozen=True)
class LockClass:
    """A lock *class* in lockdep's sense (all instances share state)."""

    name: str
    #: recursive (rwlock-read-style) classes may nest within themselves
    recursive: bool = False
    #: sleeping locks (mutex/semaphore) may not be taken in irq context
    sleeping: bool = False

    def __str__(self) -> str:
        return self.name


@dataclass
class HeldLock:
    """One entry of a context's held-lock stack."""

    lock_class: LockClass
    in_irq: bool


class Lockdep:
    """The validator.  One instance per simulated kernel.

    ``context`` identifies the task/cpu; the eBPF runtime uses a single
    context per program trigger, nested triggers share the context —
    which is precisely how tracepoint-recursion deadlocks become
    visible as self-deadlocks.
    """

    def __init__(self) -> None:
        #: lock-class dependency edges: name -> set of successor names
        self._edges: dict[str, set[str]] = {}
        #: held stacks keyed by context id
        self._held: dict[int, list[HeldLock]] = {}
        #: classes ever acquired in irq context
        self._irq_used: set[str] = set()
        #: accumulated reports (campaigns read and clear these)
        self.reports: list[LockdepReport] = []
        #: raise on violation (True) or record-only (False)
        self.raise_on_report = True

    # --- helpers ---------------------------------------------------------

    def held_stack(self, context: int = 0) -> list[HeldLock]:
        return self._held.setdefault(context, [])

    def holds(self, lock_class: LockClass, context: int = 0) -> bool:
        return any(h.lock_class == lock_class for h in self.held_stack(context))

    def _report(self, message: str, **ctx) -> None:
        report = LockdepReport(message, context=ctx)
        self.reports.append(report)
        if self.raise_on_report:
            raise report

    def _reaches(self, src: str, dst: str) -> bool:
        """DFS over the dependency graph: can ``src`` reach ``dst``?"""
        seen = set()
        stack = [src]
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._edges.get(node, ()))
        return False

    # --- the checks --------------------------------------------------------

    def acquire(
        self, lock_class: LockClass, context: int = 0, in_irq: bool = False
    ) -> None:
        """Validate and record an acquisition."""
        held = self.held_stack(context)

        if lock_class.sleeping and in_irq:
            self._report(
                f"BUG: sleeping lock {lock_class} taken in irq context",
                lock=lock_class.name,
                kind="sleep-in-irq",
            )

        if not lock_class.recursive and self.holds(lock_class, context):
            self._report(
                f"possible recursive locking detected: {lock_class} is "
                f"already held by this context",
                lock=lock_class.name,
                kind="recursive",
            )

        # Record dependency edges and look for a cycle before committing.
        for h in held:
            if h.lock_class.name == lock_class.name:
                continue
            if self._reaches(lock_class.name, h.lock_class.name):
                self._report(
                    f"possible circular locking dependency: "
                    f"{h.lock_class} -> {lock_class} completes a cycle",
                    lock=lock_class.name,
                    kind="circular",
                )
            self._edges.setdefault(h.lock_class.name, set()).add(lock_class.name)

        if in_irq:
            self._irq_used.add(lock_class.name)
        elif lock_class.name in self._irq_used and not lock_class.recursive:
            # Simplified HARDIRQ-safe -> HARDIRQ-unsafe state check: a
            # class used from irq context acquired with irqs enabled is
            # an inconsistent lock state.
            self._report(
                f"inconsistent lock state: {lock_class} used in irq "
                f"context and acquired with irqs enabled",
                lock=lock_class.name,
                kind="inconsistent-state",
            )

        held.append(HeldLock(lock_class=lock_class, in_irq=in_irq))

    def release(self, lock_class: LockClass, context: int = 0) -> None:
        """Validate and record a release (any-order, like lockdep)."""
        held = self.held_stack(context)
        for i in range(len(held) - 1, -1, -1):
            if held[i].lock_class == lock_class:
                del held[i]
                return
        self._report(
            f"releasing lock {lock_class} that is not held",
            lock=lock_class.name,
            kind="unheld-release",
        )

    def assert_clean(self, context: int = 0) -> None:
        """At context teardown every lock must have been released."""
        held = self.held_stack(context)
        if held:
            names = ", ".join(str(h.lock_class) for h in held)
            self._report(
                f"context exited with locks held: {names}",
                kind="leaked-locks",
            )

    def reset_context(self, context: int = 0) -> None:
        """Forget a context's held stack (used between test runs)."""
        self._held.pop(context, None)

    def drain_reports(self) -> list[LockdepReport]:
        """Return and clear accumulated reports (record-only mode)."""
        reports, self.reports = self.reports, []
        return reports
