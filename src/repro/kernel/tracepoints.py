"""Tracepoint registry and firing machinery.

eBPF programs of the tracing flavours (kprobe, tracepoint, perf_event)
attach to kernel tracepoints and run whenever the tracepoint fires.
Indicator #2 bugs #4 and #5 live exactly here: a program attached to a
tracepoint that fires *under a lock the program's helpers re-acquire*
recurses into itself and deadlocks.

The registry models:

- named tracepoints with their firing context (normal, under-lock,
  NMI-like),
- attach-time validation — the checks whose *absence* constitutes
  bugs #4/#5 (gated on :class:`~repro.kernel.config.Flaw`),
- recursion accounting during :meth:`TracepointRegistry.fire` with a
  depth limit that converts runaway re-entry into a
  :class:`~repro.errors.RecursionReport`.
"""

from __future__ import annotations

import errno
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import BpfError, RecursionReport
from repro.kernel.config import Flaw, KernelConfig
from repro.kernel.lockdep import LockClass

__all__ = ["Tracepoint", "TracepointRegistry", "MAX_TRACE_RECURSION"]

#: Depth at which nested tracepoint re-entry is reported.  The real
#: kernel's tracing recursion protection is similarly shallow.
MAX_TRACE_RECURSION = 4


@dataclass(frozen=True)
class Tracepoint:
    """A kernel tracepoint.

    ``fired_under`` names the lock class held while the tracepoint
    fires (if any); ``nmi_context`` marks tracepoints whose handlers
    run in NMI-like context where e.g. signal sending must be refused;
    ``lock_sensitive`` marks tracepoints for which the *fixed* kernel
    refuses programs that use lock-acquiring helpers.
    """

    name: str
    fired_under: LockClass | None = None
    nmi_context: bool = False
    lock_sensitive: bool = False


#: Tracepoints the simulated kernel exposes.  The two in the middle are
#: the stars of bugs #4 and #5.
DEFAULT_TRACEPOINTS = (
    Tracepoint("sys_enter"),
    Tracepoint("sched_switch"),
    Tracepoint("bpf_trace_printk", lock_sensitive=True),
    Tracepoint("contention_begin", lock_sensitive=True),
    Tracepoint("perf_event_overflow", nmi_context=True),
    Tracepoint("kfree_skb"),
    Tracepoint("net_dev_xmit"),
)


class TracepointRegistry:
    """Attach/fire machinery for the simulated kernel's tracepoints."""

    def __init__(self, config: KernelConfig) -> None:
        self.config = config
        self._tracepoints = {tp.name: tp for tp in DEFAULT_TRACEPOINTS}
        #: attached programs per tracepoint name
        self._attached: dict[str, list[object]] = {}
        #: programs currently executing (recursion accounting)
        self._firing_depth: dict[str, int] = {}
        #: the executor installs this to run a program against a context
        self.runner: Callable[[object, str], object] | None = None

    # --- registry ---------------------------------------------------------

    def get(self, name: str) -> Tracepoint:
        try:
            return self._tracepoints[name]
        except KeyError:
            raise BpfError(errno.ENOENT, f"no such tracepoint: {name}") from None

    def names(self) -> list[str]:
        return sorted(self._tracepoints)

    def register(self, tracepoint: Tracepoint) -> None:
        """Add a tracepoint (tests use this to model new kernel code)."""
        self._tracepoints[tracepoint.name] = tracepoint

    def attached(self, name: str) -> list[object]:
        return list(self._attached.get(name, ()))

    # --- attach-time validation --------------------------------------------

    def attach(self, prog, name: str) -> None:
        """Attach a verified program to a tracepoint.

        The *fixed* kernel refuses programs using lock-acquiring
        helpers on lock-sensitive tracepoints; bugs #4/#5 are exactly
        the absence of these checks.
        """
        tracepoint = self.get(name)

        uses_locks = bool(getattr(prog, "uses_lock_helpers", False))
        if tracepoint.lock_sensitive and uses_locks:
            flaw = (
                Flaw.TRACE_PRINTK_DEADLOCK
                if tracepoint.name == "bpf_trace_printk"
                else Flaw.CONTENTION_BEGIN_LOCK
            )
            if not self.config.has_flaw(flaw):
                raise BpfError(
                    errno.EINVAL,
                    f"program using lock-acquiring helpers cannot attach "
                    f"to {name}",
                )

        self._attached.setdefault(name, []).append(prog)

    def detach(self, prog, name: str) -> None:
        progs = self._attached.get(name, [])
        if prog in progs:
            progs.remove(prog)

    def detach_all(self) -> None:
        self._attached.clear()
        self._firing_depth.clear()

    # --- firing ---------------------------------------------------------------

    def fire(self, name: str) -> None:
        """Fire a tracepoint, running every attached program.

        Re-entrant firing (a program's helper re-triggers the same
        tracepoint) is permitted up to :data:`MAX_TRACE_RECURSION`;
        beyond that a :class:`RecursionReport` is raised, modelling the
        kernel's "recursion detected" error the paper's Figure 2
        describes.
        """
        self.get(name)  # validate the name even when nothing is attached
        progs = self._attached.get(name)
        if not progs:
            return
        if self.runner is None:
            raise RuntimeError("TracepointRegistry.fire without a runner")

        depth = self._firing_depth.get(name, 0)
        if depth >= MAX_TRACE_RECURSION:
            raise RecursionReport(
                f"bpf: recursion detected on tracepoint {name} "
                f"(depth {depth})",
                context={"tracepoint": name, "depth": depth},
            )
        self._firing_depth[name] = depth + 1
        try:
            for prog in list(progs):
                self.runner(prog, name)
        finally:
            self._firing_depth[name] = depth
