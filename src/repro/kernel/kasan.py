"""Simulated kernel memory with KASAN-style shadow tracking.

This module is the substrate for **indicator #1**.  The paper's key
observation (Section 3.1) is that JIT-compiled eBPF programs run
*without* instrumentation, so an out-of-bounds access produced by a
verifier correctness bug usually corrupts nearby memory silently
instead of crashing — which is why such bugs evade ordinary fuzzing.
Kernel routines, by contrast, are compiled with KASAN and trap on the
first bad byte.

We reproduce that asymmetry with two access paths into one arena:

``raw_read`` / ``raw_write``
    What uninstrumented JIT'd code does.  Any address inside the mapped
    arena succeeds — including redzones, freed objects, and *other
    allocations* — modelling silent corruption.  Only wildly invalid
    addresses fault: the null page raises :class:`NullDerefReport` and
    unmapped kernel addresses raise :class:`KernelPanic` (a GPF oops).

``checked_read`` / ``checked_write``
    What KASAN-instrumented code does.  The access must fall entirely
    inside a single live allocation or a :class:`KasanReport` is
    raised.  BVF's ``bpf_asan_*`` dispatch functions use this path,
    which is exactly how the sanitizer converts silent corruption into
    a captured indicator.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.errors import KasanReport, KernelPanic, NullDerefReport

__all__ = ["Allocation", "KernelMemory", "KERNEL_BASE", "REDZONE"]

#: Base virtual address of the simulated direct-map arena (mirrors the
#: x86-64 kernel direct mapping at 0xffff888000000000).
KERNEL_BASE = 0xFFFF_8880_0000_0000

#: Bytes of poisoned redzone placed after every allocation.
REDZONE = 16

#: Largest single allocation the simulated kmalloc will grant; mirrors
#: KMALLOC_MAX_SIZE and is what Bug #8 (kmemdup on oversized buffers)
#: trips over.
KMALLOC_MAX_SIZE = 4 << 20

_ALIGN = 8


@dataclass
class Allocation:
    """One live (or quarantined) object in the simulated kernel heap."""

    start: int
    size: int
    tag: str
    freed: bool = False

    @property
    def end(self) -> int:
        return self.start + self.size

    def contains(self, addr: int, size: int = 1) -> bool:
        """True if ``[addr, addr+size)`` lies fully inside the object."""
        return self.start <= addr and addr + size <= self.end

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "freed" if self.freed else "live"
        return f"<Allocation {self.tag} {self.start:#x}+{self.size} {state}>"


class KernelMemory:
    """Bump allocator over a flat arena with shadow metadata.

    Freed objects are quarantined (never reused) so use-after-free is
    detectable by the checked path and silently readable by the raw
    path, matching KASAN's quarantine behaviour closely enough for the
    oracle.
    """

    def __init__(self, arena_size: int = 1 << 20) -> None:
        self._arena = bytearray(arena_size)
        self._brk = 0
        #: allocation start offsets, sorted, for bisect lookup
        self._starts: list[int] = []
        self._allocs: list[Allocation] = []
        self.kasan_enabled = True
        #: running counters used by the overhead experiment
        self.raw_accesses = 0
        self.checked_accesses = 0

    # --- allocation ------------------------------------------------------

    def kmalloc(self, size: int, tag: str = "kmalloc") -> Allocation:
        """Allocate ``size`` bytes; raises :class:`KernelPanic` on OOM.

        Allocation failure for oversized requests is reported with a
        normal ``MemoryError``-like ValueError by callers that model
        ``kmalloc`` returning NULL; the simulated syscall layer decides
        how to surface it.
        """
        if size <= 0:
            raise ValueError(f"kmalloc of non-positive size {size}")
        if size > KMALLOC_MAX_SIZE:
            raise MemoryError(f"kmalloc({size}) exceeds KMALLOC_MAX_SIZE")
        aligned = -(-size // _ALIGN) * _ALIGN
        needed = aligned + REDZONE
        if self._brk + needed > len(self._arena):
            self._grow(self._brk + needed)
        start = self._brk
        self._brk += needed
        alloc = Allocation(start=KERNEL_BASE + start, size=size, tag=tag)
        idx = bisect.bisect_left(self._starts, alloc.start)
        self._starts.insert(idx, alloc.start)
        self._allocs.insert(idx, alloc)
        return alloc

    def kzalloc(self, size: int, tag: str = "kzalloc") -> Allocation:
        """Allocate zeroed memory (the arena is zero-filled already,
        but freed/reused ranges never are, so zero explicitly)."""
        alloc = self.kmalloc(size, tag)
        off = alloc.start - KERNEL_BASE
        self._arena[off : off + size] = b"\x00" * size
        return alloc

    def kfree(self, alloc: Allocation) -> None:
        """Quarantine an allocation; double-free is a KASAN report."""
        if alloc.freed:
            raise KasanReport(
                f"double-free of {alloc.tag}",
                address=alloc.start,
                size=alloc.size,
                is_write=True,
            )
        alloc.freed = True

    def _grow(self, minimum: int) -> None:
        new_size = len(self._arena)
        while new_size < minimum:
            new_size *= 2
        self._arena.extend(b"\x00" * (new_size - len(self._arena)))

    # --- shadow lookup -----------------------------------------------------

    def find_allocation(self, addr: int) -> Allocation | None:
        """The allocation containing ``addr``, live or freed, if any."""
        idx = bisect.bisect_right(self._starts, addr) - 1
        if idx < 0:
            return None
        alloc = self._allocs[idx]
        return alloc if alloc.contains(addr) else None

    def in_arena(self, addr: int, size: int = 1) -> bool:
        """True if the range lies inside the mapped arena."""
        return (
            KERNEL_BASE <= addr
            and addr + size <= KERNEL_BASE + self._brk + REDZONE
        )

    # --- checked (KASAN-instrumented) path ---------------------------------

    def shadow_check(self, addr: int, size: int, is_write: bool, who: str) -> None:
        """KASAN validity check; raises :class:`KasanReport` on failure."""
        self.checked_accesses += 1
        if not self.kasan_enabled:
            return
        kind = "write" if is_write else "read"
        alloc = self.find_allocation(addr)
        if alloc is None:
            raise KasanReport(
                f"{who}: {kind} of size {size} at unallocated {addr:#x}",
                address=addr,
                size=size,
                is_write=is_write,
            )
        if alloc.freed:
            raise KasanReport(
                f"{who}: use-after-free {kind} in {alloc.tag} at {addr:#x}",
                address=addr,
                size=size,
                is_write=is_write,
                context={"tag": alloc.tag},
            )
        if not alloc.contains(addr, size):
            raise KasanReport(
                f"{who}: slab-out-of-bounds {kind} of size {size} at "
                f"{addr:#x} ({alloc.tag} is {alloc.size} bytes)",
                address=addr,
                size=size,
                is_write=is_write,
                context={"tag": alloc.tag},
            )

    def checked_read(self, addr: int, size: int, who: str = "kernel") -> int:
        """Instrumented load; returns the little-endian integer value."""
        self.shadow_check(addr, size, is_write=False, who=who)
        return self._raw_value(addr, size)

    def checked_write(
        self, addr: int, size: int, value: int, who: str = "kernel"
    ) -> None:
        """Instrumented store of a little-endian integer value."""
        self.shadow_check(addr, size, is_write=True, who=who)
        self._raw_store(addr, size, value)

    def checked_read_bytes(self, addr: int, size: int, who: str = "kernel") -> bytes:
        self.shadow_check(addr, size, is_write=False, who=who)
        off = addr - KERNEL_BASE
        return bytes(self._arena[off : off + size])

    def checked_write_bytes(self, addr: int, data: bytes, who: str = "kernel") -> None:
        self.shadow_check(addr, len(data), is_write=True, who=who)
        off = addr - KERNEL_BASE
        self._arena[off : off + len(data)] = data

    # --- raw (uninstrumented JIT) path --------------------------------------

    def _fault_check(self, addr: int, size: int, is_write: bool) -> None:
        if 0 <= addr < 4096:
            raise NullDerefReport(
                f"null pointer dereference at {addr:#x}",
                context={"size": size, "write": is_write},
            )
        if not self.in_arena(addr, size):
            raise KernelPanic(
                f"general protection fault: wild access at {addr:#x}",
                context={"size": size, "write": is_write},
            )

    def raw_read(self, addr: int, size: int) -> int:
        """Uninstrumented load: succeeds anywhere inside the arena.

        Out-of-bounds reads within the arena return whatever bytes are
        there — silent information disclosure, not a crash.
        """
        self.raw_accesses += 1
        self._fault_check(addr, size, is_write=False)
        return self._raw_value(addr, size)

    def raw_write(self, addr: int, size: int, value: int) -> None:
        """Uninstrumented store: silently corrupts neighbours/redzones."""
        self.raw_accesses += 1
        self._fault_check(addr, size, is_write=True)
        self._raw_store(addr, size, value)

    # --- internals ------------------------------------------------------------

    def _raw_value(self, addr: int, size: int) -> int:
        off = addr - KERNEL_BASE
        return int.from_bytes(self._arena[off : off + size], "little")

    def _raw_store(self, addr: int, size: int, value: int) -> None:
        off = addr - KERNEL_BASE
        self._arena[off : off + size] = (value & ((1 << (size * 8)) - 1)).to_bytes(
            size, "little"
        )

    # --- statistics -------------------------------------------------------------

    def live_bytes(self) -> int:
        """Total bytes in live allocations (used by leak-style tests)."""
        return sum(a.size for a in self._allocs if not a.freed)

    def allocation_count(self) -> int:
        return sum(1 for a in self._allocs if not a.freed)
