"""Simulated kernel substrate.

The paper runs eBPF programs inside the real Linux kernel and relies on
kernel self-check machinery (KASAN, the runtime locking correctness
validator, recursion guards) to capture the two correctness-bug
indicators.  This subpackage provides synthetic equivalents:

- :mod:`repro.kernel.kasan` — a byte-granular shadow-memory allocator
  with redzones, and the crucial *raw vs. checked* access distinction:
  JIT-compiled eBPF code is uninstrumented, so small out-of-bounds
  accesses silently corrupt memory, whereas kernel routines (and BVF's
  dispatched ``bpf_asan_*`` functions) are KASAN-instrumented and trap.
- :mod:`repro.kernel.lockdep` — the locking correctness validator.
- :mod:`repro.kernel.tracepoints` — tracepoint registry with the
  recursion semantics that bugs #4/#5 exploit.
- :mod:`repro.kernel.config` — per-"kernel-version" feature/flaw
  profiles (v5.15, v6.1, bpf-next).
- :mod:`repro.kernel.syscall` — the ``bpf()`` system call surface.
"""

from repro.kernel.config import Flaw, KernelConfig
from repro.kernel.kasan import Allocation, KernelMemory
from repro.kernel.lockdep import LockClass, Lockdep
from repro.kernel.tracepoints import Tracepoint, TracepointRegistry


def __getattr__(name: str):
    # Lazy re-export: syscall imports the verifier and the eBPF maps,
    # both of which import repro.kernel.config — importing it eagerly
    # here would close an import cycle.
    if name == "Kernel":
        from repro.kernel.syscall import Kernel

        return Kernel
    raise AttributeError(name)


__all__ = [
    "Kernel",
    "Flaw",
    "KernelConfig",
    "Allocation",
    "KernelMemory",
    "LockClass",
    "Lockdep",
    "Tracepoint",
    "TracepointRegistry",

]
