"""The simulated kernel and its ``bpf()`` system call surface.

:class:`Kernel` aggregates every substrate — memory + KASAN, lockdep,
tracepoints, BTF, maps, helpers — and exposes the operations user space
(and the fuzzer) performs: map creation and access, program loading
(which runs the verifier), attachment, and test runs.

Errnos mirror the kernel so the acceptance-rate experiment can
aggregate rejection reasons exactly as the paper does.
"""

from __future__ import annotations

import errno

from repro.errors import BpfError, VerifierReject, WarnReport
from repro.ebpf.btf import BtfRegistry
from repro.ebpf.helpers import HelperRegistry
from repro.ebpf.maps import BpfMap, MapType, create_map
from repro.ebpf.program import BpfProgram, ProgType, VerifiedProgram
from repro.kernel.bugs import Dispatcher, dup_xlated_insns
from repro.kernel.config import Flaw, KernelConfig, bpf_next
from repro.kernel.kasan import KernelMemory
from repro.kernel.lockdep import Lockdep
from repro.kernel.tracepoints import TracepointRegistry

__all__ = ["Kernel"]


class Kernel:
    """One simulated kernel instance (one "boot")."""

    def __init__(self, config: KernelConfig | None = None) -> None:
        self.config = config or bpf_next()
        self.mem = KernelMemory()
        self.lockdep = Lockdep()
        self.tracepoints = TracepointRegistry(self.config)
        self.btf = BtfRegistry(self.mem)
        self.helpers = HelperRegistry(self.config)
        self.dispatcher = Dispatcher(self.config)
        #: file descriptor table (maps and loaded programs)
        self._fds: dict[int, object] = {}
        self._next_fd = 3
        #: kernel address of each map's ``struct bpf_map`` -> map
        self._maps_by_addr: dict[int, BpfMap] = {}
        #: monotonic clock and PRNG state used by helpers
        self.clock_ns = 1_000_000
        self.prandom_state = 0x9E3779B97F4A7C15
        #: outstanding ringbuf reservations: record addr -> (alloc, map, size)
        self.ringbuf_records: dict[int, tuple] = {}
        #: loaded programs (for bookkeeping / stats)
        self.loaded_programs: list[VerifiedProgram] = []

    # --- fd table ----------------------------------------------------------

    def _install_fd(self, obj: object) -> int:
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = obj
        return fd

    def map_by_fd(self, fd: int) -> BpfMap | None:
        obj = self._fds.get(fd)
        return obj if isinstance(obj, BpfMap) else None

    def prog_by_fd(self, fd: int) -> VerifiedProgram | None:
        obj = self._fds.get(fd)
        return obj if isinstance(obj, VerifiedProgram) else None

    # --- maps ------------------------------------------------------------------

    def map_create(
        self,
        map_type: MapType,
        key_size: int,
        value_size: int,
        max_entries: int,
        has_spin_lock: bool = False,
    ) -> int:
        """``BPF_MAP_CREATE``; returns the new fd."""
        bpf_map = create_map(
            self.mem,
            map_type,
            key_size,
            value_size,
            max_entries,
            lockdep=self.lockdep,
            config=self.config,
            has_spin_lock=has_spin_lock,
        )
        # The map's kernel object, whose address programs hold after
        # the fixup phase rewrites map-fd loads.
        kobj = self.mem.kmalloc(64, tag=f"bpf_map:{MapType(map_type).name}")
        bpf_map.fd = self._install_fd(bpf_map)
        self._maps_by_addr[kobj.start] = bpf_map
        bpf_map._kobj_addr = kobj.start
        return bpf_map.fd

    def map_kobj_addr(self, bpf_map: BpfMap) -> int:
        return bpf_map._kobj_addr

    def map_by_addr(self, addr: int) -> BpfMap:
        bpf_map = self._maps_by_addr.get(addr)
        if bpf_map is None:
            raise BpfError(errno.EINVAL, f"no map at address {addr:#x}")
        return bpf_map

    def map_update(self, fd: int, key: bytes, value: bytes, flags: int = 0) -> None:
        """User-space ``BPF_MAP_UPDATE_ELEM``."""
        bpf_map = self.map_by_fd(fd)
        if bpf_map is None:
            raise BpfError(errno.EBADF, f"fd {fd} is not a map")
        bpf_map.update(key, value, flags)

    def map_lookup(self, fd: int, key: bytes) -> bytes | None:
        bpf_map = self.map_by_fd(fd)
        if bpf_map is None:
            raise BpfError(errno.EBADF, f"fd {fd} is not a map")
        return bpf_map.read_value(key)

    def map_delete(self, fd: int, key: bytes) -> None:
        bpf_map = self.map_by_fd(fd)
        if bpf_map is None:
            raise BpfError(errno.EBADF, f"fd {fd} is not a map")
        bpf_map.delete(key)

    def map_get_next_key(self, fd: int, key: bytes | None) -> bytes:
        bpf_map = self.map_by_fd(fd)
        if bpf_map is None:
            raise BpfError(errno.EBADF, f"fd {fd} is not a map")
        return bpf_map.get_next_key(key)

    # --- programs ----------------------------------------------------------------

    def prog_load(
        self,
        prog: BpfProgram,
        log_level: int = 1,
        sanitize: bool = False,
        check_invariants: bool = False,
        cached_check: object | None = None,
    ) -> VerifiedProgram:
        """``BPF_PROG_LOAD``: run the verifier; raises VerifierReject.

        ``sanitize=True`` enables BVF's instrumentation (the Kconfig
        gate from the paper's patches).  ``check_invariants=True``
        additionally runs the :class:`~repro.verifier.sanity.
        VStateChecker` at verifier checkpoints; a broken abstract state
        raises :class:`~repro.errors.InvariantViolation`.
        ``cached_check`` replays a recorded :class:`~repro.verifier.
        core.CheckSummary` from the verdict cache instead of running
        ``do_check`` (only valid for a previously accepted program).
        """
        from repro.verifier.core import Verifier

        if sanitize and not self.config.sanitizer_available:
            raise BpfError(errno.EINVAL, "sanitizer not available in this kernel")
        verified = Verifier(
            self,
            prog,
            log_level=log_level,
            sanitize=sanitize,
            check_invariants=check_invariants,
            cached_check=cached_check,
        ).verify()
        verified.fd = self._install_fd(verified)
        self.loaded_programs.append(verified)
        if prog.offload_dev is not None:
            verified.offloaded = True
        return verified

    def prog_get_info(self, verified: VerifiedProgram) -> dict:
        """``BPF_OBJ_GET_INFO_BY_FD``: Bug #8's kmemdup lives here."""
        xlated = dup_xlated_insns(self.config, len(verified.xlated))
        return {
            "name": verified.name,
            "prog_type": verified.prog_type.value,
            "xlated_prog_len": len(xlated),
            "xlated_insns": xlated,
        }

    # --- attachment -----------------------------------------------------------------

    def prog_attach_tracepoint(self, verified: VerifiedProgram, name: str) -> None:
        """Attach a tracing program to a tracepoint (bugs #4/#5 gate)."""
        if verified.prog_type not in (
            ProgType.KPROBE,
            ProgType.TRACEPOINT,
            ProgType.RAW_TRACEPOINT,
            ProgType.PERF_EVENT,
        ):
            raise BpfError(
                errno.EINVAL,
                f"program type {verified.prog_type.value} cannot attach to "
                f"tracepoints",
            )
        self.tracepoints.attach(verified, name)

    def prog_attach_xdp(self, verified: VerifiedProgram) -> None:
        """Install an XDP program through the dispatcher (Bug #7)."""
        if verified.prog_type != ProgType.XDP:
            raise BpfError(errno.EINVAL, "only XDP programs attach to devices")
        self.dispatcher.update(verified)

    def check_offload_run(self, verified: VerifiedProgram) -> None:
        """Bug #11: device-offloaded programs must not run on the host."""
        if not getattr(verified, "offloaded", False):
            return
        if self.config.has_flaw(Flaw.XDP_DEV_HOST):
            raise WarnReport(
                "WARNING: executing device-offloaded BPF program on the host",
                context={"prog": verified.name},
            )
        raise BpfError(
            errno.EINVAL, "cannot test_run a device-offloaded program"
        )

    # --- teardown -----------------------------------------------------------------------

    def reset_attachments(self) -> None:
        """Detach everything (between fuzzer executions)."""
        self.tracepoints.detach_all()
        self.dispatcher.remove()
