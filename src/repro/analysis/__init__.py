"""Reporting and statistics for the evaluation harness.

- :mod:`repro.analysis.reports` — Table-2-style bug tables and triage
  records,
- :mod:`repro.analysis.stats` — coverage-curve handling, acceptance
  aggregation, and the sanitation-overhead calculations of RQ3.
"""

from repro.analysis.reports import BugRow, render_bug_table
from repro.analysis.stats import (
    OverheadStats,
    acceptance_summary,
    average_curves,
    coverage_improvement,
    measure_overhead,
)

__all__ = [
    "BugRow",
    "render_bug_table",
    "OverheadStats",
    "acceptance_summary",
    "average_curves",
    "coverage_improvement",
    "measure_overhead",
]
