"""Reporting, statistics, and static analysis for the harness.

- :mod:`repro.analysis.reports` — Table-2-style bug tables and triage
  records,
- :mod:`repro.analysis.stats` — coverage-curve handling, acceptance
  aggregation, and the sanitation-overhead calculations of RQ3,
- :mod:`repro.analysis.cfg` — basic-block CFG over slot-form programs,
- :mod:`repro.analysis.dataflow` — reaching definitions, liveness, and
  bound provenance on the CFG,
- :mod:`repro.analysis.repair` — verified minimal patches for rejected
  programs (reason-indexed templates, re-verified before reporting).

The static-analysis modules are imported lazily by their consumers and
deliberately not re-exported here: they pull in the kernel model, which
the reporting-only import path should not pay for.
"""

from repro.analysis.reports import BugRow, render_bug_table
from repro.analysis.stats import (
    OverheadStats,
    acceptance_summary,
    average_curves,
    coverage_improvement,
    measure_overhead,
)

__all__ = [
    "BugRow",
    "render_bug_table",
    "OverheadStats",
    "acceptance_summary",
    "average_curves",
    "coverage_improvement",
    "measure_overhead",
]
