"""Cross-version differential verification oracle.

The paper's indicators all require *executing* an accepted program
(Section 3); ROADMAP item 4 asks for bug-finding modes that need no
execution at all.  This module supplies one: verify the same decoded
program under several kernel-version profiles (`kernel/config.py`) and
compare what the verifier *concluded* — the accept/reject verdict and
the final abstract range state of R0 at every program exit (register
bounds plus tnum masks).  Any disagreement is a **divergence**, and a
divergence between two verifiers looking at the same program is
evidence that at least one of them is wrong (BRF's semantic-correctness
angle, PAPERS.md).

Divergences are then *classified* against the injected-flaw registry by
replaying the program under single-difference configs:

- ``known-flaw`` — toggling exactly one :class:`~repro.kernel.config.
  Flaw` the two profiles disagree on reproduces the other profile's
  outcome.  These make the registry a regression oracle: every flaw
  that manifests as a verdict/range divergence is detected statically.
- ``feature-gap`` — toggling one feature field (kfunc support, the
  nullness-propagation pass, ...) explains the difference; expected
  version skew, not a bug.
- ``combined`` — only the joint flaw+feature delta explains it (the
  profiles differ in several interacting ways); explained, but with no
  single root cause.
- ``unexplained`` — even replaying profile A under profile B's entire
  config does not reproduce B's outcome, i.e. verification depends on
  something outside the registry.  These become bug reports.

Determinism: outcomes depend only on the decoded program and the
profile configs, never on wall clock or process identity, so sharded
campaigns merge divergences exactly like findings (dedup by key,
earliest global iteration wins) and the merged artifact is
worker-count invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro import obs
from repro.ebpf.program import BpfProgram
from repro.errors import BpfError, VerifierReject
from repro.kernel.config import PROFILES, Flaw, KernelConfig
from repro.obs.taxonomy import classify
from repro.verifier.core import Verifier

__all__ = [
    "DEFAULT_PROFILES",
    "ProfileOutcome",
    "Divergence",
    "DifferentialOracle",
    "merge_divergences",
]

#: The three kernel versions the paper evaluates (Section 6.1).
DEFAULT_PROFILES = ("v5.15", "v6.1", "bpf-next")

#: KernelConfig feature fields a divergence may be attributed to.
_FEATURE_FIELDS = (
    "has_kfuncs",
    "has_nullness_propagation",
    "has_btf_access",
    "has_bpf_loop",
    "sanitizer_available",
    "unprivileged_allowed",
    "complexity_limit",
)


def _replay_kernel(config: KernelConfig, gp):
    """Rebuild a kernel holding the program's maps (same fd layout).

    Same contract as :func:`repro.fuzz.oracle.replay_kernel`, duplicated
    here (it is four lines) to keep ``analysis`` importable without the
    ``fuzz`` package.
    """
    from repro.kernel.syscall import Kernel

    kernel = Kernel(config)
    for bpf_map in gp.maps:
        kernel.map_create(
            bpf_map.map_type,
            bpf_map.key_size,
            bpf_map.value_size,
            bpf_map.max_entries,
        )
    return kernel


@dataclass(frozen=True)
class ProfileOutcome:
    """What one profile's verifier concluded about one program."""

    profile: str
    verdict: str  # 'accept' | 'reject'
    #: taxonomy reason code for rejects ('' for accepts)
    reason: str = ""
    #: sorted tuple of per-exit R0 summaries
    #: ``(umin, umax, smin, smax, tnum_value, tnum_mask)``
    fingerprint: tuple = ()

    @property
    def signature(self) -> tuple:
        """The comparable part: profile-name independent."""
        return (self.verdict, self.fingerprint)


@dataclass
class Divergence:
    """Two profiles disagreeing about one program."""

    kind: str  # 'verdict' | 'range'
    profile_a: str
    profile_b: str
    outcome_a: ProfileOutcome
    outcome_b: ProfileOutcome
    classification: str  # 'known-flaw' | 'feature-gap' | 'combined' | 'unexplained'
    #: the flaw value / feature field name backing the classification
    explanation: str = ""
    iteration: int = -1

    @property
    def key(self) -> str:
        """Deterministic dedup key (stable across shards and workers)."""
        return "|".join(
            (
                self.kind,
                self.profile_a,
                self.profile_b,
                self.classification,
                self.explanation,
                self.outcome_a.verdict,
                self.outcome_a.reason,
                self.outcome_b.verdict,
                self.outcome_b.reason,
            )
        )

    def to_dict(self) -> dict:
        """Picklable, JSON-ready form (what campaign results carry)."""
        return {
            "key": self.key,
            "kind": self.kind,
            "profile_a": self.profile_a,
            "profile_b": self.profile_b,
            "verdict_a": self.outcome_a.verdict,
            "verdict_b": self.outcome_b.verdict,
            "reason_a": self.outcome_a.reason,
            "reason_b": self.outcome_b.reason,
            "classification": self.classification,
            "explanation": self.explanation,
            "iteration": self.iteration,
        }


class DifferentialOracle:
    """Verifies each program under N profiles and explains divergences."""

    def __init__(self, profiles: tuple[str, ...] = DEFAULT_PROFILES) -> None:
        self.configs: dict[str, KernelConfig] = {
            name: PROFILES[name]() for name in profiles
        }

    # ------------------------------------------------------------ outcomes --

    def verify_under(self, config: KernelConfig, gp,
                     profile: str = "") -> ProfileOutcome:
        """One profile's verdict + final-range fingerprint for ``gp``.

        The program is **not executed**; only the verifier runs.  The
        fingerprint is the sorted multiset of exit-R0 range summaries,
        canonical across profiles even when DFS path order differs.
        """
        kernel = _replay_kernel(config, gp)
        prog = BpfProgram(insns=list(gp.insns), prog_type=gp.prog_type)
        verifier = Verifier(kernel, prog, sanitize=False,
                            collect_exit_states=True)
        try:
            verifier.verify()
        except VerifierReject as reject:
            return ProfileOutcome(
                profile=profile or config.version,
                verdict="reject",
                reason=classify(reject.message),
            )
        except BpfError as error:
            return ProfileOutcome(
                profile=profile or config.version,
                verdict="reject",
                reason=classify(error.message),
            )
        return ProfileOutcome(
            profile=profile or config.version,
            verdict="accept",
            fingerprint=tuple(sorted(verifier.exit_r0_summaries or [])),
        )

    # ---------------------------------------------------------- divergence --

    def run(self, gp, iteration: int = -1) -> list["Divergence"]:
        """All pairwise divergences for one generated program."""
        names = sorted(self.configs)
        outcomes = {
            name: self.verify_under(self.configs[name], gp, profile=name)
            for name in names
        }
        divergences = []
        for i, name_a in enumerate(names):
            for name_b in names[i + 1:]:
                a, b = outcomes[name_a], outcomes[name_b]
                if a.signature == b.signature:
                    continue
                kind = "verdict" if a.verdict != b.verdict else "range"
                classification, explanation = self._classify(
                    gp, self.configs[name_a], self.configs[name_b], b
                )
                divergences.append(
                    Divergence(
                        kind=kind,
                        profile_a=name_a,
                        profile_b=name_b,
                        outcome_a=a,
                        outcome_b=b,
                        classification=classification,
                        explanation=explanation,
                        iteration=iteration,
                    )
                )
                obs.metrics().counter("differential.divergences")
        return divergences

    # ------------------------------------------------------- classification --

    def _classify(
        self,
        gp,
        cfg_a: KernelConfig,
        cfg_b: KernelConfig,
        outcome_b: ProfileOutcome,
    ) -> tuple[str, str]:
        """Attribute one (A, B) divergence by single-difference replays."""
        target = outcome_b.signature

        # Single flaw toggles (sorted for determinism).
        differing = sorted(cfg_a.flaws ^ cfg_b.flaws, key=lambda f: f.value)
        for flaw in differing:
            if flaw in cfg_b.flaws:
                candidate = cfg_a.with_flaw(flaw)
            else:
                candidate = cfg_a.without_flaw(flaw)
            obs.metrics().counter("differential.replays")
            if self.verify_under(candidate, gp).signature == target:
                return "known-flaw", flaw.value

        # Single feature toggles.
        for name in _FEATURE_FIELDS:
            value_a, value_b = getattr(cfg_a, name), getattr(cfg_b, name)
            if value_a == value_b:
                continue
            obs.metrics().counter("differential.replays")
            candidate = replace(cfg_a, **{name: value_b})
            if self.verify_under(candidate, gp).signature == target:
                return "feature-gap", name

        # The whole delta at once: A's config with every flaw and
        # feature difference applied is B's config modulo the version
        # string, so a mismatch here means verification depends on
        # something outside the registry — a genuine bug report.
        combined = replace(
            cfg_a,
            flaws=cfg_b.flaws,
            **{name: getattr(cfg_b, name) for name in _FEATURE_FIELDS},
        )
        obs.metrics().counter("differential.replays")
        if self.verify_under(combined, gp).signature == target:
            return "combined", ",".join(
                [f.value for f in differing]
                + [
                    n
                    for n in _FEATURE_FIELDS
                    if getattr(cfg_a, n) != getattr(cfg_b, n)
                ]
            )
        return "unexplained", "outcome not reproduced by any registry delta"


def merge_divergences(shard_divergences: list[dict[str, dict]]) -> dict[str, dict]:
    """Fold per-shard divergence maps (key -> dict) deterministically.

    Same contract as the findings merge: dedup by key, keep the
    occurrence with the earliest **global** iteration, return sorted by
    key so the merged artifact is worker-count invariant.
    """
    merged: dict[str, dict] = {}
    for shard in shard_divergences:
        for key, div in shard.items():
            kept = merged.get(key)
            if kept is None or div["iteration"] < kept["iteration"]:
                merged[key] = div
    return dict(sorted(merged.items()))
