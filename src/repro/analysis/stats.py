"""Statistics helpers for the evaluation benchmarks.

Covers the three quantitative artefacts of the paper's evaluation:
coverage curves/totals (Figure 6, Table 3), acceptance-rate summaries
(Section 6.3), and the sanitation-overhead measurements (Section 6.4,
RQ3: ~90% execution slowdown, ~3.0x instruction footprint).
"""

from __future__ import annotations

import logging
import time
from collections import Counter
from dataclasses import dataclass

from repro.ebpf.program import BpfProgram
from repro.fuzz.campaign import CampaignResult
from repro.runtime.executor import Executor

__all__ = [
    "average_curves",
    "coverage_improvement",
    "acceptance_summary",
    "OverheadStats",
    "measure_overhead",
    "ThroughputStats",
]


_log = logging.getLogger("repro.analysis")


def average_curves(
    curves: list[list[tuple[int, int]]]
) -> list[tuple[int, float]]:
    """Average several (x, coverage) curves point-wise.

    Repeated campaigns with the same budget produce aligned x grids,
    and those average index-by-index.  Curves whose grids disagree —
    different budgets, different sample cadences — are **realigned
    onto the intersection of their x values** rather than silently
    averaged index-by-index (which would pair up unrelated x
    positions); every dropped point is logged.  Raises ``ValueError``
    when the curves share no x values at all, since averaging then has
    no meaningful result.
    """
    if not curves:
        return []

    common = set(x for x, _ in curves[0])
    for curve in curves[1:]:
        common &= {x for x, _ in curve}
    if not common:
        raise ValueError(
            "average_curves: curves share no x values "
            f"(grids: {[[x for x, _ in c[:4]] for c in curves]}...)"
        )

    # Duplicate x values (shard-merged curves repeat x=0 once per
    # shard) collapse to their last sample; only genuinely mismatched
    # grid points count as dropped.
    dropped = (
        sum(len({x for x, _ in c}) for c in curves)
        - len(common) * len(curves)
    )
    if dropped:
        _log.warning(
            "average_curves: realigned %d curves onto %d common x values, "
            "dropping %d points with mismatched grids",
            len(curves), len(common), dropped,
        )

    by_x = [dict(curve) for curve in curves]
    return [
        (x, sum(d[x] for d in by_x) / len(by_x)) for x in sorted(common)
    ]


def coverage_improvement(ours: float, theirs: float) -> float:
    """Relative improvement "+X%" as the paper reports it."""
    if theirs == 0:
        return float("inf")
    return (ours - theirs) / theirs * 100.0


def acceptance_summary(results: list[CampaignResult]) -> dict:
    """Aggregate acceptance statistics across repeated campaigns."""
    generated = sum(r.generated for r in results)
    accepted = sum(r.accepted for r in results)
    errnos: Counter = Counter()
    for r in results:
        errnos.update(r.reject_errnos)
    return {
        "generated": generated,
        "accepted": accepted,
        "acceptance_rate": accepted / generated if generated else 0.0,
        "reject_errnos": errnos,
    }


@dataclass
class ThroughputStats:
    """Campaign throughput and its wall-clock split.

    The campaign loop times its three phases — program generation,
    verification (the ``prog_load`` path, coverage tracing included),
    and plan execution — so throughput regressions can be attributed.
    For parallel campaigns the phase times sum over shards (total CPU
    work) while ``wall_seconds`` is the parent's clock, so
    ``parallelism`` ≈ how many cores the campaign actually kept busy.
    Shard phases are timed with per-process wall clocks, so when
    workers oversubscribe the CPUs, descheduled time inflates the sum
    and ``parallelism`` can exceed the core count — read it as "worker
    concurrency achieved", trustworthy when workers <= cores.
    """

    programs: int = 0
    wall_seconds: float = 0.0
    generate_seconds: float = 0.0
    verify_seconds: float = 0.0
    execute_seconds: float = 0.0
    #: cross-version differential oracle time (0.0 unless enabled)
    differential_seconds: float = 0.0

    @classmethod
    def from_result(cls, result: CampaignResult) -> "ThroughputStats":
        return cls(
            programs=result.generated,
            wall_seconds=result.wall_seconds,
            generate_seconds=result.generate_seconds,
            verify_seconds=result.verify_seconds,
            execute_seconds=result.execute_seconds,
            differential_seconds=getattr(result, "differential_seconds", 0.0),
        )

    @property
    def programs_per_sec(self) -> float:
        return self.programs / self.wall_seconds if self.wall_seconds else 0.0

    @property
    def busy_seconds(self) -> float:
        """Total attributed CPU time across all phases (and shards)."""
        return (self.generate_seconds + self.verify_seconds
                + self.execute_seconds + self.differential_seconds)

    @property
    def verify_fraction(self) -> float:
        busy = self.busy_seconds
        return self.verify_seconds / busy if busy else 0.0

    @property
    def execute_fraction(self) -> float:
        busy = self.busy_seconds
        return self.execute_seconds / busy if busy else 0.0

    @property
    def parallelism(self) -> float:
        """Effective concurrency: attributed CPU time per wall second."""
        return self.busy_seconds / self.wall_seconds if self.wall_seconds else 0.0

    def as_dict(self) -> dict:
        """JSON-ready form (what ``BENCH_throughput.json`` records)."""
        return {
            "programs": self.programs,
            "wall_seconds": round(self.wall_seconds, 4),
            "programs_per_sec": round(self.programs_per_sec, 2),
            "generate_seconds": round(self.generate_seconds, 4),
            "verify_seconds": round(self.verify_seconds, 4),
            "execute_seconds": round(self.execute_seconds, 4),
            "differential_seconds": round(self.differential_seconds, 4),
            "verify_fraction": round(self.verify_fraction, 4),
            "execute_fraction": round(self.execute_fraction, 4),
            "parallelism": round(self.parallelism, 2),
        }


@dataclass
class OverheadStats:
    """Sanitation overhead over a program corpus (RQ3)."""

    programs: int = 0
    #: total xlated instruction counts
    raw_insns: int = 0
    sanitized_insns: int = 0
    #: total executed-instruction counts
    raw_executed: int = 0
    sanitized_executed: int = 0
    #: total wall-clock execution time
    raw_seconds: float = 0.0
    sanitized_seconds: float = 0.0

    @property
    def footprint_ratio(self) -> float:
        """Static instruction increase (the paper reports ~3.0x)."""
        return self.sanitized_insns / self.raw_insns if self.raw_insns else 0.0

    @property
    def executed_ratio(self) -> float:
        return (
            self.sanitized_executed / self.raw_executed
            if self.raw_executed
            else 0.0
        )

    @property
    def slowdown_percent(self) -> float:
        """Execution-time slowdown (the paper reports ~90%)."""
        if not self.raw_seconds:
            return 0.0
        return (self.sanitized_seconds / self.raw_seconds - 1.0) * 100.0


def measure_overhead(
    kernel_factory,
    programs: list[BpfProgram],
    repeats: int = 3,
    runs_per_program: int = 3,
) -> OverheadStats:
    """Measure raw-vs-sanitized cost over a corpus (Section 6.4).

    Each program is loaded twice — without and with sanitation — into
    fresh kernels and executed; programs without any load/store are
    expected to be filtered by the caller (they cannot trigger the
    instrumentation), mirroring the paper's dataset construction.
    """
    stats = OverheadStats()
    for prog in programs:
        measurements = []
        for sanitize in (False, True):
            kernel = kernel_factory()
            for bpf_map in getattr(prog, "required_maps", ()):  # pragma: no cover
                kernel.map_create(*bpf_map)
            try:
                verified = kernel.prog_load(
                    BpfProgram(
                        insns=list(prog.insns),
                        prog_type=prog.prog_type,
                        name=prog.name,
                    ),
                    sanitize=sanitize,
                )
            except Exception:
                measurements = []
                break
            executor = Executor(kernel)
            executed = 0
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                for _ in range(runs_per_program):
                    result = executor.run(verified)
                    executed = result.stats.insns_executed
                best = min(best, time.perf_counter() - start)
            measurements.append((len(verified.xlated), executed, best))
        if len(measurements) != 2:
            continue
        (raw_len, raw_exec, raw_t), (san_len, san_exec, san_t) = measurements
        stats.programs += 1
        stats.raw_insns += raw_len
        stats.sanitized_insns += san_len
        stats.raw_executed += raw_exec
        stats.sanitized_executed += san_exec
        stats.raw_seconds += raw_t
        stats.sanitized_seconds += san_t
    return stats
