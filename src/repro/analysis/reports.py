"""Bug-table rendering (the reproduction of Table 2).

Maps discovered :class:`~repro.fuzz.oracle.BugFinding` records onto the
paper's Table-2 rows so the benchmark output can be compared line by
line with the published table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.config import Flaw
from repro.fuzz.oracle import BugFinding

__all__ = ["BugRow", "TABLE2_ROWS", "render_bug_table"]


@dataclass(frozen=True)
class BugRow:
    """One row of the paper's Table 2."""

    number: int
    flaw: Flaw
    component: str
    description: str
    status: str


TABLE2_ROWS = (
    BugRow(1, Flaw.NULLNESS_PROPAGATION, "Verifier",
           "Incorrect nullness propagation of pointer comparisons causes "
           "invalid memory access", "Fixed"),
    BugRow(2, Flaw.TASK_STRUCT_OOB, "Verifier",
           "Incorrect task struct access validation leads to out-of-bound "
           "access", "Confirmed"),
    BugRow(3, Flaw.KFUNC_BACKTRACK, "Verifier",
           "Incorrect check on kfunc call operations causes verifier "
           "backtracking bug", "Fixed"),
    BugRow(4, Flaw.TRACE_PRINTK_DEADLOCK, "Verifier",
           "Missing check on programs attached to bpf_trace_printk causes "
           "deadlock", "Fixed"),
    BugRow(5, Flaw.CONTENTION_BEGIN_LOCK, "Verifier",
           "Missing validation on contention_begin causes inconsistent "
           "lock state error", "Fixed"),
    BugRow(6, Flaw.SIGNAL_PANIC, "Verifier",
           "Missing strict checking on signal sending of programs causes "
           "kernel panic", "Fixed"),
    BugRow(7, Flaw.DISPATCHER_RACE, "Dispatcher",
           "Missing sync between dispatcher update and execution leads to "
           "null-ptr-deref", "Fixed"),
    BugRow(8, Flaw.KMEMDUP_LIMIT, "Syscall",
           "Incorrect using of kmemdup() leads to failure in duplicating "
           "xlated insts", "Fixed"),
    BugRow(9, Flaw.MAP_BUCKET_ITER, "Map",
           "Incorrect bucket iterating in the failure case of lock "
           "acquiring causes oob access", "Fixed"),
    BugRow(10, Flaw.IRQ_WORK_LOCK, "Helper",
           "Incorrect using of irq_work_queue in a helper function leads "
           "to lock bug", "Fixed"),
    BugRow(11, Flaw.XDP_DEV_HOST, "XDP",
           "Incorrect execution env, attempt to run device eBPF program "
           "on the host", "Confirmed"),
)

#: Table-2 numbering for the motivating CVE (not part of the 11).
CVE_ROW = BugRow(0, Flaw.CVE_2022_23222, "Verifier",
                 "CVE-2022-23222: ALU on nullable pointers causes "
                 "out-of-bounds access", "Fixed (upstream)")


def render_bug_table(findings: dict[str, BugFinding]) -> str:
    """Render found/missed status against the paper's Table 2."""
    lines = [
        f"{'#':>2}  {'Component':<10} {'Found':<6} Description",
        "-" * 78,
    ]
    for row in TABLE2_ROWS:
        found = "yes" if row.flaw.value in findings else "no"
        lines.append(
            f"{row.number:>2}  {row.component:<10} {found:<6} {row.description}"
        )
    extras = [
        bug_id
        for bug_id in findings
        if bug_id not in {row.flaw.value for row in TABLE2_ROWS}
    ]
    for bug_id in sorted(extras):
        lines.append(f" +  {'(other)':<10} {'yes':<6} {bug_id}")
    return "\n".join(lines)
