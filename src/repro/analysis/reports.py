"""Bug-table and telemetry-dashboard rendering.

Two text reports live here: the reproduction of the paper's Table 2
(found/missed per published bug) and the ``python -m repro report``
dashboard, which renders a :mod:`repro.obs` metrics artifact —
acceptance by rejection reason and frame kind, phase-time histograms,
per-shard coverage/throughput, the coverage frontier, profiler
hotspots, and bug-indicator counts.

The dashboard is schema-tolerant: every section indexes the artifact
defensively, so an older ``repro-metrics-v*`` document renders with
the missing sections shown as "n/a" instead of raising ``KeyError``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.config import Flaw
from repro.fuzz.oracle import BugFinding
from repro.obs.frontier import render_frontier
from repro.obs.metrics import cache_hit_rates

__all__ = ["BugRow", "TABLE2_ROWS", "render_bug_table", "render_dashboard"]


@dataclass(frozen=True)
class BugRow:
    """One row of the paper's Table 2."""

    number: int
    flaw: Flaw
    component: str
    description: str
    status: str


TABLE2_ROWS = (
    BugRow(1, Flaw.NULLNESS_PROPAGATION, "Verifier",
           "Incorrect nullness propagation of pointer comparisons causes "
           "invalid memory access", "Fixed"),
    BugRow(2, Flaw.TASK_STRUCT_OOB, "Verifier",
           "Incorrect task struct access validation leads to out-of-bound "
           "access", "Confirmed"),
    BugRow(3, Flaw.KFUNC_BACKTRACK, "Verifier",
           "Incorrect check on kfunc call operations causes verifier "
           "backtracking bug", "Fixed"),
    BugRow(4, Flaw.TRACE_PRINTK_DEADLOCK, "Verifier",
           "Missing check on programs attached to bpf_trace_printk causes "
           "deadlock", "Fixed"),
    BugRow(5, Flaw.CONTENTION_BEGIN_LOCK, "Verifier",
           "Missing validation on contention_begin causes inconsistent "
           "lock state error", "Fixed"),
    BugRow(6, Flaw.SIGNAL_PANIC, "Verifier",
           "Missing strict checking on signal sending of programs causes "
           "kernel panic", "Fixed"),
    BugRow(7, Flaw.DISPATCHER_RACE, "Dispatcher",
           "Missing sync between dispatcher update and execution leads to "
           "null-ptr-deref", "Fixed"),
    BugRow(8, Flaw.KMEMDUP_LIMIT, "Syscall",
           "Incorrect using of kmemdup() leads to failure in duplicating "
           "xlated insts", "Fixed"),
    BugRow(9, Flaw.MAP_BUCKET_ITER, "Map",
           "Incorrect bucket iterating in the failure case of lock "
           "acquiring causes oob access", "Fixed"),
    BugRow(10, Flaw.IRQ_WORK_LOCK, "Helper",
           "Incorrect using of irq_work_queue in a helper function leads "
           "to lock bug", "Fixed"),
    BugRow(11, Flaw.XDP_DEV_HOST, "XDP",
           "Incorrect execution env, attempt to run device eBPF program "
           "on the host", "Confirmed"),
)

#: Table-2 numbering for the motivating CVE (not part of the 11).
CVE_ROW = BugRow(0, Flaw.CVE_2022_23222, "Verifier",
                 "CVE-2022-23222: ALU on nullable pointers causes "
                 "out-of-bounds access", "Fixed (upstream)")


def render_bug_table(findings: dict[str, BugFinding]) -> str:
    """Render found/missed status against the paper's Table 2."""
    lines = [
        f"{'#':>2}  {'Component':<10} {'Found':<6} Description",
        "-" * 78,
    ]
    for row in TABLE2_ROWS:
        found = "yes" if row.flaw.value in findings else "no"
        lines.append(
            f"{row.number:>2}  {row.component:<10} {found:<6} {row.description}"
        )
    extras = [
        bug_id
        for bug_id in findings
        if bug_id not in {row.flaw.value for row in TABLE2_ROWS}
    ]
    for bug_id in sorted(extras):
        lines.append(f" +  {'(other)':<10} {'yes':<6} {bug_id}")
    return "\n".join(lines)


# --------------------------------------------------------------- dashboard --


def _bar(fraction: float, width: int = 24) -> str:
    filled = round(max(0.0, min(1.0, fraction)) * width)
    return "#" * filled + "." * (width - filled)


def _render_histogram(name: str, hist: dict, lines: list[str]) -> None:
    total = hist["count"]
    if not total:
        return
    mean = hist["sum"] / total
    lines.append(f"  {name}  (n={total}, mean={mean:.4g})")
    bounds = hist["bounds"]
    peak = max(hist["counts"])
    for i, count in enumerate(hist["counts"]):
        if not count:
            continue
        label = f"<= {bounds[i]:g}" if i < len(bounds) else f"> {bounds[-1]:g}"
        lines.append(
            f"    {label:>12} {count:>8} {_bar(count / peak, 20)}"
        )


def render_dashboard(artifact: dict) -> str:
    """Render the telemetry dashboard for one metrics artifact."""
    config = artifact.get("config") or {}
    summary = artifact.get("summary") or {}
    taxonomy = artifact.get("taxonomy") or {}
    lines = [
        f"campaign: tool={config.get('tool', 'n/a')} "
        f"kernel={config.get('kernel', 'n/a')} "
        f"budget={config.get('budget', 'n/a')} "
        f"seed={config.get('seed', 'n/a')} "
        f"shards={config.get('shards', 'n/a')} "
        f"workers={config.get('workers', 1)}",
        "",
    ]
    if summary:
        lines.append(
            f"accepted {summary.get('accepted', 0)}"
            f"/{summary.get('generated', 0)} "
            f"({summary.get('acceptance_rate', 0.0):.1%}); "
            f"coverage {summary.get('final_coverage', 0)} edges; "
            f"corpus {summary.get('corpus_size', 0)}"
        )
    else:
        lines.append("summary: n/a (section missing from artifact)")

    lines += ["", "acceptance by rejection reason:"]
    by_reason = taxonomy.get("by_reason", {})
    generated = summary.get("generated", 0) or 1
    for reason, count in sorted(
        by_reason.items(), key=lambda kv: (-kv[1], kv[0])
    ):
        lines.append(
            f"  {reason:<26} {count:>7} ({count / generated:.1%}) "
            f"{_bar(count / generated)}"
        )
    if not by_reason:
        lines.append("  (no rejections)")

    explanations = taxonomy.get("explanations", {})
    if explanations:
        lines += ["", "rejection explanations (flight recorder):"]
        for reason in sorted(explanations):
            entry = explanations[reason]
            insn = entry.get("insn_text") or f"insn {entry.get('insn_idx')}"
            lines.append(
                f"  {reason:<26} iter {entry.get('iteration', -1):>5}  "
                f"@{entry.get('insn_idx', 0):>3}  {insn}"
            )
            check = entry.get("check", "")
            if check:
                lines.append(f"  {'':<26} check: {check}")

    # Verified rejection repairs (artifact schema v3+; older artifacts
    # carry no repair section and skip the table).
    repair = artifact.get("repair") or {}
    if repair.get("enabled") or repair.get("attempted"):
        lines += [
            "",
            f"verified rejection repairs: {repair.get('verified', 0)}"
            f"/{repair.get('attempted', 0)} "
            f"({repair.get('verified_rate', 0.0):.1%} of rejects flip "
            "to accept)",
        ]
        by_reason = repair.get("by_reason", {})
        if by_reason:
            lines.append(
                f"  {'reason':<26} {'verified':>8}/{'attempted':<9} "
                f"{'rate':>6}  template"
            )
            for reason in sorted(by_reason):
                entry = by_reason[reason]
                example = entry.get("example") or {}
                template = example.get("template", "-")
                lines.append(
                    f"  {reason:<26} {entry.get('verified', 0):>8}"
                    f"/{entry.get('attempted', 0):<9} "
                    f"{entry.get('verified_rate', 0.0):>6.1%}  {template}"
                )
        else:
            lines.append("  (no rejections to repair)")

    frames = taxonomy.get("frames", {})
    if frames.get("generated"):
        lines += ["", "acceptance by frame kind:"]
        for kind in sorted(frames["generated"]):
            gen = frames["generated"][kind]
            acc = frames.get("accepted", {}).get(kind, 0)
            rate = acc / gen if gen else 0.0
            lines.append(
                f"  {kind:<14} {acc:>7}/{gen:<7} ({rate:.1%}) {_bar(rate)}"
            )

    metrics = artifact.get("metrics", {})
    wall_hists = metrics.get("wall", {}).get("histograms", {})
    phase_hists = {
        name: hist
        for name, hist in wall_hists.items()
        if name.startswith("phase.")
    }
    if phase_hists:
        lines += ["", "phase-time histograms (seconds):"]
        for name, hist in sorted(phase_hists.items()):
            _render_histogram(name, hist, lines)

    counters = metrics.get("counters", {})
    if any(
        key.startswith(("cache.", "verifier.prune.")) for key in counters
    ):
        rates = cache_hit_rates(counters)
        lines += ["", "verifier fast-path cache health:"]
        for label, rate_key, hits_key, misses_key in (
            ("verdict cache", "verdict_hit_rate",
             "cache.verdict.hits", "cache.verdict.misses"),
            ("tnum memo", "tnum_memo_hit_rate",
             "cache.tnum.hits", "cache.tnum.misses"),
            ("prune index", "prune_index_hit_rate",
             "verifier.prune.exact_hits", "verifier.prune.misses"),
        ):
            rate = rates[rate_key]
            hits = counters.get(hits_key, 0)
            if rate_key == "prune_index_hit_rate":
                hits += counters.get("verifier.prune.scan_hits", 0)
            misses = counters.get(misses_key, 0)
            lines.append(
                f"  {label:<14} {rate:>6.1%}  "
                f"(hits={hits} misses={misses}) {_bar(rate)}"
            )
        lines.append(
            f"  {'exact-hit frac':<14} {rates['prune_exact_fraction']:>6.1%}  "
            f"(of prune hits, answered by fingerprint probe)"
        )

    shards = artifact.get("shards", [])
    if shards:
        lines += [
            "",
            "per-shard coverage / throughput:",
            f"  {'shard':>5} {'generated':>9} {'accepted':>8} "
            f"{'edges':>7} {'wall s':>8} {'prog/s':>8} {'boot s':>7}",
        ]
        for shard in shards:
            wall = shard.get("wall", {})
            lines.append(
                f"  {shard.get('index', '?'):>5} "
                f"{shard.get('generated', 0):>9} "
                f"{shard.get('accepted', 0):>8} "
                f"{shard.get('coverage_edges', 0):>7} "
                f"{wall.get('wall_seconds', 0.0):>8.2f} "
                f"{wall.get('programs_per_sec', 0.0):>8.1f} "
                f"{wall.get('bootstrap_seconds', 0.0):>7.3f}"
            )

    # Coverage frontier (artifact schema v2+; renders "n/a" for older
    # artifacts that carry no frontier section).
    lines += [""]
    lines += render_frontier(artifact.get("frontier") or {})

    # Profiler hotspots (full tree via `repro profile ARTIFACT`).
    profile = artifact.get("profile") or {}
    wall_nodes = (profile.get("wall") or {}).get("nodes", {})
    if profile.get("enabled") and wall_nodes:
        total = sum(
            times.get("cum", 0.0)
            for path, times in wall_nodes.items()
            if "/" not in path
        )
        lines += ["", "verifier profile hotspots (self time; "
                      "full tree: repro profile ARTIFACT):"]
        ranked = sorted(
            wall_nodes.items(),
            key=lambda kv: (-kv[1].get("self", 0.0), kv[0]),
        )
        for path, times in ranked[:5]:
            self_s = times.get("self", 0.0)
            share = self_s / total if total else 0.0
            lines.append(f"  {path:<34} {self_s:>9.3f}s {share:>7.1%}")

    indicators = artifact.get("indicators", {})
    lines += [
        "",
        "bug indicators: "
        + "  ".join(
            f"{name}={indicators.get(name, 0)}"
            for name in (
                "indicator1",
                "indicator2",
                "component",
                "differential",
                "invariant",
            )
        ),
    ]
    findings = artifact.get("findings", {})
    for bug_id in sorted(findings):
        info = findings[bug_id]
        lines.append(
            f"  {bug_id:<34} {info.get('indicator', '?'):<10} "
            f"iteration {info.get('iteration', -1)}"
        )

    differential = artifact.get("differential", {})
    if differential.get("enabled") or differential.get("total"):
        by_cls = differential.get("by_classification", {})
        lines += [
            "",
            "cross-version divergences: "
            f"{differential.get('total', 0)} "
            + " ".join(
                f"{cls}={count}" for cls, count in sorted(by_cls.items())
            ),
        ]
        rows = differential.get("divergences", [])
        if rows:
            lines.append(
                f"  {'kind':<8} {'profiles':<20} {'class':<12} "
                f"{'iter':>5}  explanation"
            )
            for div in rows:
                profiles = (f"{div.get('profile_a', '?')} vs "
                            f"{div.get('profile_b', '?')}")
                lines.append(
                    f"  {div.get('kind', '?'):<8} {profiles:<20} "
                    f"{div.get('classification', '?'):<12} "
                    f"{div.get('iteration', -1):>5}  "
                    f"{div.get('explanation', '')}"
                )
        else:
            lines.append("  (no divergences)")
    return "\n".join(lines)
