"""Classic dataflow passes over the eBPF basic-block CFG.

The flight recorder points at a failing *instruction*; the verifier's
complaint is usually about a *register value* whose history begins much
earlier.  These passes recover that history:

- **reaching definitions** — which definition sites of a register can
  reach a given use, computed with the textbook block-level gen/kill
  worklist over :class:`repro.analysis.cfg.CFG`;
- **def-use chains** — the per-use inversion of reaching definitions;
- **liveness** — backward may-analysis; the repair synthesizer uses it
  to find registers that are dead at a patch point;
- **bound provenance** — a bounded backward walk from a failing
  ``(insn, register)`` through the def-use chains to the ALU/LD
  instructions that produced the register's min/max facts, following
  register-to-register MOV chains to the true producer.

The register model mirrors the verifier's (``checks.py``):

- frame entry defines R1 (the context pointer) and R10 (the frame
  pointer), modelled as pseudo-definitions at slot ``-1``;
- helper/kfunc/bpf-to-bpf calls clobber the caller-saved window: they
  *define* R0-R5 (R1-R5 become unreadable scratch, R0 the return
  value) and conservatively *use* R1-R5 — the call-summary shape that
  keeps the analysis intraprocedural;
- atomics with FETCH semantics define their ``src`` register;
  CMPXCHG additionally uses and defines R0;
- ``EXIT`` uses R0.

All passes are pure functions of the instruction list: deterministic
by construction, which the campaign's worker-count-invariance contract
relies on when provenance lands in merged artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.cfg import CFG, build_cfg
from repro.ebpf.insn import Insn
from repro.ebpf.opcodes import AluOp, AtomicOp, Reg, Src

__all__ = [
    "ENTRY_DEF",
    "insn_defs",
    "insn_uses",
    "DataflowResult",
    "analyze",
    "Provenance",
    "bound_provenance",
]

#: Pseudo slot index of the frame-entry definitions of R1/R10.
ENTRY_DEF = -1

#: Registers defined at frame entry (ctx pointer, frame pointer).
_ENTRY_REGS = (int(Reg.R1), int(Reg.R10))

#: Caller-saved window clobbered by every call.
_CALL_CLOBBER = tuple(range(int(Reg.R0), int(Reg.R5) + 1))

#: Registers conservatively consumed by a call (argument window).
_CALL_USES = tuple(range(int(Reg.R1), int(Reg.R5) + 1))

_FETCH_FLAG = int(AtomicOp.FETCH)


def insn_defs(insn: Insn) -> tuple[int, ...]:
    """Registers this instruction defines (writes)."""
    if insn.is_filler():
        return ()
    if insn.is_call():
        return _CALL_CLOBBER
    if insn.is_alu() or insn.is_ld_imm64():
        return (insn.dst,)
    if insn.is_memory_load():
        return (insn.dst,)
    if insn.is_atomic():
        imm = insn.imm
        if imm == int(AtomicOp.CMPXCHG):
            return (int(Reg.R0),)
        if imm & _FETCH_FLAG:
            return (insn.src,)
        return ()
    return ()


def insn_uses(insn: Insn) -> tuple[int, ...]:
    """Registers this instruction uses (reads), deterministic order."""
    if insn.is_filler() or insn.is_ld_imm64():
        return ()
    if insn.is_call():
        return _CALL_USES
    if insn.is_exit():
        return (int(Reg.R0),)
    if insn.is_alu():
        op = insn.alu_op
        if op == AluOp.MOV:
            return (insn.src,) if insn.src_bit == Src.X else ()
        if op in (AluOp.NEG, AluOp.END):
            return (insn.dst,)
        if insn.src_bit == Src.X and insn.src != insn.dst:
            return (insn.dst, insn.src)
        return (insn.dst,)
    if insn.is_cond_jmp():
        if insn.src_bit == Src.X and insn.src != insn.dst:
            return (insn.dst, insn.src)
        return (insn.dst,)
    if insn.is_uncond_jmp():
        return ()
    if insn.is_atomic():
        uses = [insn.dst, insn.src]
        if insn.imm == int(AtomicOp.CMPXCHG):
            uses.append(int(Reg.R0))
        return tuple(dict.fromkeys(uses))
    if insn.is_memory_load():
        return (insn.src,)
    if insn.is_memory_store():
        from repro.ebpf.opcodes import InsnClass

        if insn.insn_class == InsnClass.STX:
            if insn.src != insn.dst:
                return (insn.dst, insn.src)
            return (insn.dst,)
        return (insn.dst,)  # ST: immediate store, only the address base
    return ()


@dataclass
class DataflowResult:
    """Reaching definitions, def-use chains, and liveness for one CFG."""

    cfg: CFG
    #: (use_idx, reg) -> sorted tuple of def slot indices (ENTRY_DEF for
    #: frame-entry pseudo-defs) that may reach that use
    du_chains: dict[tuple[int, int], tuple[int, ...]]
    #: slot idx -> registers live *into* that instruction
    live_in: dict[int, frozenset[int]]
    #: slot idx -> registers live *out of* that instruction
    live_out: dict[int, frozenset[int]]

    def defs_reaching(self, idx: int, reg: int) -> tuple[int, ...]:
        """Definition sites of ``reg`` that may reach slot ``idx``."""
        return self.du_chains.get((idx, reg), ())

    def dead_registers(self, idx: int) -> tuple[int, ...]:
        """General-purpose registers NOT live into slot ``idx``.

        The repair synthesizer scavenges these as scratch.  R10 is never
        offered (read-only frame pointer); R0-R9 are fair game.
        """
        live = self.live_in.get(idx, frozenset())
        return tuple(
            reg for reg in range(int(Reg.R0), int(Reg.R9) + 1)
            if reg not in live
        )


def analyze(insns: Sequence[Insn], cfg: CFG | None = None) -> DataflowResult:
    """Run reaching definitions + liveness over a slot-form program."""
    if cfg is None:
        cfg = build_cfg(insns)
    insns = cfg.insns
    n = len(insns)
    nblocks = len(cfg.blocks)

    # Per-slot def/use tuples, computed once.
    defs = [insn_defs(insn) for insn in insns]
    uses = [insn_uses(insn) for insn in insns]

    # ---- reaching definitions (forward, may) ------------------------------
    # A definition is (slot_idx, reg); frame entry contributes
    # (ENTRY_DEF, R1) and (ENTRY_DEF, R10).  Block-level GEN/KILL over
    # defs-per-register, then a forward worklist to fixpoint, then one
    # in-block sweep materialising per-use chains.
    #
    # State representation: dict reg -> frozenset of def slots.  Small
    # programs (<= a few hundred slots, 11 registers) make the dict
    # copy per block cheap.
    block_gen: list[dict[int, frozenset[int]]] = []
    for block in cfg.blocks:
        gen: dict[int, frozenset[int]] = {}
        for slot in block.slots():
            for reg in defs[slot]:
                gen[reg] = frozenset((slot,))
        block_gen.append(gen)

    entry_state = {reg: frozenset((ENTRY_DEF,)) for reg in _ENTRY_REGS}
    reach_in: list[dict[int, frozenset[int]]] = [
        {} for _ in range(nblocks)
    ]
    if nblocks:
        reach_in[0] = dict(entry_state)

    def transfer(index: int,
                 state: dict[int, frozenset[int]]) -> dict[int, frozenset[int]]:
        out = dict(state)
        out.update(block_gen[index])
        return out

    worklist = list(range(nblocks))
    while worklist:
        index = worklist.pop(0)
        out_state = transfer(index, reach_in[index])
        for succ, _kind in cfg.blocks[index].succ:
            merged = dict(reach_in[succ])
            changed = False
            for reg in sorted(out_state):
                combined = merged.get(reg, frozenset()) | out_state[reg]
                if combined != merged.get(reg):
                    merged[reg] = combined
                    changed = True
            if changed:
                reach_in[succ] = merged
                if succ not in worklist:
                    worklist.append(succ)

    du_chains: dict[tuple[int, int], tuple[int, ...]] = {}
    for block in cfg.blocks:
        state = dict(reach_in[block.index])
        for slot in block.slots():
            for reg in uses[slot]:
                sites = state.get(reg)
                if sites:
                    du_chains[(slot, reg)] = tuple(sorted(sites))
            for reg in defs[slot]:
                state[reg] = frozenset((slot,))

    # ---- liveness (backward, may) -----------------------------------------
    block_use: list[frozenset[int]] = []
    block_def: list[frozenset[int]] = []
    for block in cfg.blocks:
        used: set[int] = set()
        defined: set[int] = set()
        for slot in block.slots():
            used.update(reg for reg in uses[slot] if reg not in defined)
            defined.update(defs[slot])
        block_use.append(frozenset(used))
        block_def.append(frozenset(defined))

    live_block_in = [frozenset()] * nblocks
    live_block_out = [frozenset()] * nblocks
    worklist = list(range(nblocks - 1, -1, -1))
    while worklist:
        index = worklist.pop(0)
        out: frozenset[int] = frozenset()
        for succ, _kind in cfg.blocks[index].succ:
            out = out | live_block_in[succ]
        new_in = block_use[index] | (out - block_def[index])
        if out != live_block_out[index] or new_in != live_block_in[index]:
            live_block_out[index] = out
            live_block_in[index] = new_in
            for pred in cfg.blocks[index].pred:
                if pred not in worklist:
                    worklist.append(pred)

    live_in: dict[int, frozenset[int]] = {}
    live_out: dict[int, frozenset[int]] = {}
    for block in cfg.blocks:
        live = live_block_out[block.index]
        for slot in range(block.end - 1, block.start - 1, -1):
            live_out[slot] = live
            live = frozenset(
                (live - frozenset(defs[slot])) | frozenset(uses[slot])
            )
            live_in[slot] = live

    return DataflowResult(
        cfg=cfg, du_chains=du_chains, live_in=live_in, live_out=live_out
    )


@dataclass
class Provenance:
    """The backward slice explaining a register's value at a site.

    ``chain`` lists visited ``(slot_idx, reg)`` pairs in visit order;
    ``root_idx`` is the definition site judged to be the root cause —
    the producer reached after following register-to-register MOVs,
    preferring the deepest non-MOV definition, or ``ENTRY_DEF`` when the
    value flows straight from frame entry (uninitialised/ctx/fp).
    """

    target_idx: int
    target_reg: int
    chain: list[tuple[int, int]] = field(default_factory=list)
    root_idx: int = ENTRY_DEF
    root_reg: int = 0

    @property
    def from_entry(self) -> bool:
        return self.root_idx == ENTRY_DEF

    def render(self, insns: Sequence[Insn]) -> list[str]:
        """Human-readable chain lines, root first."""
        from repro.ebpf.disasm import format_insn

        lines: list[str] = []
        for idx, reg in self.chain:
            if idx == ENTRY_DEF:
                lines.append(f"  r{reg} = frame entry (never written)")
                continue
            try:
                text = format_insn(insns[idx])
            except (KeyError, ValueError, IndexError):
                text = f"(undecodable: opcode=0x{insns[idx].opcode:02x})"
            marker = "*" if idx == self.root_idx else " "
            lines.append(f" {marker}{idx:>3}: {text}")
        return lines


#: Cap on the backward walk — provenance is an explanation aid, not a
#: full slicer; deep chains stop here and report the frontier.
_PROVENANCE_LIMIT = 64


def bound_provenance(
    insns: Sequence[Insn],
    idx: int,
    reg: int,
    flow: DataflowResult | None = None,
) -> Provenance:
    """Walk a register's value back to the instructions that made it.

    Starting from the use of ``reg`` at slot ``idx``, follow reaching
    definitions backwards: a MOV-from-register definition forwards the
    walk to its source register; ALU/LDX/LD_IMM64/call definitions are
    producers and terminate their branch.  The root cause is the
    deepest producer found (ties broken toward the smallest slot index
    for determinism); if the value can flow from frame entry without
    any write, the root is :data:`ENTRY_DEF` — the classic
    uninitialised-register shape.
    """
    if flow is None:
        flow = analyze(insns)
    insns = flow.cfg.insns

    prov = Provenance(target_idx=idx, target_reg=reg)
    seen: set[tuple[int, int]] = set()
    # (def_idx, reg, depth); deterministic FIFO order.
    queue: list[tuple[int, int, int]] = [
        (site, reg, 0) for site in flow.defs_reaching(idx, reg)
    ]
    if not queue:
        # No recorded use at idx (e.g. the walk starts at the failing
        # instruction itself, which may not read reg) — fall back to
        # the defs visible at idx via a synthetic lookup: any def of
        # reg strictly before idx in the same block, else block input.
        queue = [
            (site, reg, 0)
            for site in _defs_at(flow, idx, reg)
        ]

    best: tuple[int, int, int] | None = None  # (depth, -site, reg)
    while queue:
        site, creg, depth = queue.pop(0)
        if (site, creg) in seen or len(prov.chain) >= _PROVENANCE_LIMIT:
            continue
        seen.add((site, creg))
        prov.chain.append((site, creg))
        if site == ENTRY_DEF:
            candidate = (depth, 1, site, creg)
        else:
            insn = insns[site]
            is_mov_reg = (
                insn.is_alu()
                and insn.alu_op == AluOp.MOV
                and insn.src_bit == Src.X
            )
            if is_mov_reg:
                for nxt in flow.defs_reaching(site, insn.src):
                    queue.append((nxt, insn.src, depth + 1))
                continue
            candidate = (depth, 0, -site, creg)
        # Prefer deeper producers; at equal depth prefer real
        # instructions over entry, then the smallest slot index.
        if best is None or candidate > best:
            best = candidate

    if best is not None:
        depth, is_entry, neg_site, creg = best
        prov.root_idx = ENTRY_DEF if is_entry else -neg_site
        prov.root_reg = creg
    else:
        prov.root_idx = ENTRY_DEF
        prov.root_reg = reg
        prov.chain.append((ENTRY_DEF, reg))
    return prov


def _defs_at(flow: DataflowResult, idx: int, reg: int) -> tuple[int, ...]:
    """Definition sites of ``reg`` visible *at* slot ``idx``.

    Used when the failing instruction does not itself read ``reg`` in
    our use model (e.g. the verifier complains about a helper argument
    register at the call, or about dst of a store's value operand).
    Recomputes the in-block reaching state up to ``idx``.
    """
    cfg = flow.cfg
    if not (0 <= idx < len(cfg.insns)):
        return ()
    block = cfg.block_of(idx)
    sites: tuple[int, ...] = ()
    # Block input: union of chains recorded at the first use in any
    # successor is not available; recompute cheaply from du_chains of
    # this block's first slot if recorded, else approximate with the
    # last def before idx.
    last_def: int | None = None
    for slot in range(block.start, idx):
        if reg in insn_defs(cfg.insns[slot]):
            last_def = slot
    if last_def is not None:
        return (last_def,)
    # No def inside the block before idx: the block-entry state holds.
    # du_chains has no entry keyed by block, so rebuild from any use of
    # reg at or after idx in this block... fall back to a fresh pass.
    chains = flow.du_chains.get((idx, reg))
    if chains:
        return chains
    # Final fallback: any def of reg earlier in the program that could
    # flow into this block — conservative but deterministic; an empty
    # scan means the register was never written, i.e. frame entry.
    sites = tuple(
        slot
        for slot in range(block.start)
        if reg in insn_defs(cfg.insns[slot])
    )
    return sites if sites else (ENTRY_DEF,)
