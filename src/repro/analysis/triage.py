"""Bug-report rendering for triage (Section 6.5 of the paper).

The paper triages findings by inspecting the erroneous program,
pinpointing the guilty instruction, and walking the preceding
instructions that produced its operands.  This module automates the
mechanical part: given a finding, it renders a kernel-style report —
the captured indicator, the disassembled program with the guilty
instruction highlighted, the relevant verifier-log tail, and the
differential-triage attribution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BpfError, VerifierReject
from repro.ebpf.disasm import format_insn
from repro.ebpf.program import BpfProgram
from repro.fuzz.oracle import BugFinding, replay_kernel
from repro.kernel.config import KernelConfig

__all__ = ["TriageReport", "triage_finding"]


@dataclass
class TriageReport:
    """A rendered, human-consumable bug report."""

    bug_id: str
    indicator: str
    captured_by: str
    message: str
    guilty_insn: int
    listing: str
    verifier_log_tail: str

    def render(self) -> str:
        lines = [
            "=" * 72,
            f"BUG: {self.bug_id}",
            f"indicator: {self.indicator} (captured by {self.captured_by})",
            f"report: {self.message}",
            "-" * 72,
            "program (guilty instruction marked):",
            self.listing,
        ]
        if self.verifier_log_tail:
            lines += ["-" * 72, "verifier log (tail):", self.verifier_log_tail]
        lines.append("=" * 72)
        return "\n".join(lines)


def _guilty_index(finding: BugFinding, config: KernelConfig) -> int:
    """Locate the faulting instruction in the *original* program.

    Replays the program sanitized; the captured report carries the
    xlated index of the dispatched access (``context['site']``), which
    the fixup phase's index map translates back to the raw slot.
    """
    if finding.prog is None or finding.indicator != "indicator1":
        return -1
    from repro.runtime.executor import Executor

    kernel = replay_kernel(config, finding.prog)
    prog = BpfProgram(
        insns=list(finding.prog.insns), prog_type=finding.prog.prog_type
    )
    try:
        verified = kernel.prog_load(prog, sanitize=True)
    except (VerifierReject, BpfError):
        return -1
    result = Executor(kernel).run(verified)
    if result.report is None:
        return -1
    site = result.report.context.get("site", -1)
    return verified.orig_index.get(site, -1)


def triage_finding(
    finding: BugFinding, config: KernelConfig
) -> TriageReport:
    """Produce a triage report for one finding.

    Re-verifies the program at log level 2 on the flawed kernel to
    recover the verifier's view, and annotates the listing with the
    guilty instruction when the report pinpointed one.
    """
    listing_lines: list[str] = []
    log_tail = ""
    guilty = _guilty_index(finding, config)

    if finding.prog is not None:
        kernel = replay_kernel(config, finding.prog)
        prog = BpfProgram(
            insns=list(finding.prog.insns), prog_type=finding.prog.prog_type
        )
        from repro.verifier.core import Verifier

        verifier = Verifier(kernel, prog, log_level=2)
        try:
            verifier.verify()
        except (VerifierReject, BpfError):  # pragma: no cover - flawed accepts
            pass
        log_lines = verifier.log.text().splitlines()
        log_tail = "\n".join(log_lines[-12:])

        skip = False
        for idx, insn in enumerate(finding.prog.insns):
            if skip:
                skip = False
                continue
            marker = ">>>" if idx == guilty else "   "
            listing_lines.append(f"{marker} {idx:4d}: {format_insn(insn)}")
            if insn.is_ld_imm64():
                skip = True

    return TriageReport(
        bug_id=finding.bug_id,
        indicator=finding.indicator,
        captured_by=finding.report_kind,
        message=finding.message,
        guilty_insn=guilty,
        listing="\n".join(listing_lines) or "(program unavailable)",
        verifier_log_tail=log_tail,
    )
