"""Rejection repair: reason-indexed minimal patches, verified to flip.

ROADMAP item 4b: a rejected program teaches a campaign nothing — the
oracles only see accepted programs — so every reject is budget burned.
This module converts rejects back into signal by synthesizing the
*minimal* patch that flips the verdict: given the taxonomy reason code
(:mod:`repro.obs.taxonomy`), the rejection message, and the failing
instruction index the flight recorder attributed, a small
reason-indexed template registry proposes candidate patches (insert a
bounds/NULL check before the failing access, zero an uninitialised
register at its root-cause site, mask a shift amount, clamp an offset,
retarget a wild jump...), ranks them by static edit distance, and
**re-runs the verifier on each** — only genuine reject→accept flips
are ever reported.  "Characterizing and Bridging the Diagnostic Gap in
eBPF Verifier Rejections" (PAPERS.md) motivates the shape: developers
want the fix, not the log.

Templates never guess offsets blindly: they read the failing
instruction, the dataflow facts (:mod:`repro.analysis.dataflow` — e.g.
liveness picks the scratch register a frame-pointer write is diverted
to, provenance finds the init site an uninitialised register is
missing), and the CFG (:mod:`repro.analysis.cfg` — e.g. the back edge
an infinite loop is broken at).  Insertions go through
:func:`repro.verifier.patch.insert_before`, which rebases every jump
across the insertion point.

Everything here is a pure function of ``(insns, reason, message,
insn_idx)`` plus the verifying kernel — deterministic, so repair
artifacts merge worker-count-invariantly.
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dataflow import (
    DataflowResult,
    analyze,
    bound_provenance,
)
from repro.ebpf.asm import exit_insn, ja, jmp_imm, mov64_imm, st_mem
from repro.ebpf.insn import Insn, encode_program
from repro.ebpf.opcodes import (
    AluOp,
    InsnClass,
    JmpOp,
    Reg,
    Size,
    Src,
)
from repro.verifier.patch import insert_before

__all__ = [
    "MAX_VERIFY_ATTEMPTS",
    "RepairCandidate",
    "Repair",
    "propose_repairs",
    "synthesize_repair",
    "repair_diff",
    "render_program",
    "TEMPLATE_ORDER",
]

#: How many ranked candidates one synthesis re-verifies before giving
#: up.  Verification dominates repair cost, so the cap bounds the
#: per-reject overhead of ``--repair-feedback`` campaigns.
MAX_VERIFY_ATTEMPTS = 8


@dataclass
class RepairContext:
    """Everything a patch template may consult."""

    insns: list[Insn]
    reason: str
    message: str
    insn_idx: int
    cfg: CFG
    flow: DataflowResult

    @property
    def failing(self) -> Insn | None:
        if 0 <= self.insn_idx < len(self.insns):
            return self.insns[self.insn_idx]
        return None


@dataclass
class RepairCandidate:
    """One proposed (not yet verified) patch."""

    template: str
    description: str
    insns: list[Insn]
    #: slots inserted + modified + removed, the ranking key
    edit_distance: int
    #: registry position; ties in edit distance resolve here so the
    #: ranking is total and deterministic
    order: int = 0


@dataclass
class Repair:
    """A verified reject→accept flip."""

    template: str
    description: str
    reason: str
    insn_idx: int
    edit_distance: int
    original: list[Insn]
    patched: list[Insn]
    #: candidates verified before this one succeeded (1 = first try)
    attempts: int = 1

    def diff(self) -> list[str]:
        return repair_diff(self.original, self.patched)

    def to_dict(self) -> dict:
        """Artifact form — deterministic, no wall-clock fields."""
        return {
            "template": self.template,
            "description": self.description,
            "reason": self.reason,
            "insn_idx": self.insn_idx,
            "edit_distance": self.edit_distance,
            "attempts": self.attempts,
            "original_len": len(self.original),
            "patched_len": len(self.patched),
            "diff": self.diff(),
        }

    def render(self) -> str:
        lines = [
            f"suggested repair [{self.template}]: {self.description}",
            f"  edit distance {self.edit_distance} slot(s), verified "
            f"accept on attempt {self.attempts}",
            "  diff:",
        ]
        lines.extend("    " + line for line in self.diff())
        return "\n".join(lines)


# --------------------------------------------------------------------------
# helpers


def _fmt(insn: Insn) -> str:
    from repro.ebpf.disasm import format_insn

    try:
        return format_insn(insn)
    except (KeyError, ValueError):
        return f"(undecodable: opcode=0x{insn.opcode:02x})"


def render_program(insns: Sequence[Insn]) -> list[str]:
    """Numbered disassembly lines (fillers elided)."""
    return [
        f"{idx:>3}: {_fmt(insn)}"
        for idx, insn in enumerate(insns)
        if not insn.is_filler()
    ]


def repair_diff(original: Sequence[Insn], patched: Sequence[Insn]) -> list[str]:
    """Unified diff of the two programs' disassembly."""
    a = [_fmt(insn) for insn in original if not insn.is_filler()]
    b = [_fmt(insn) for insn in patched if not insn.is_filler()]
    return [
        line.rstrip("\n")
        for line in difflib.unified_diff(a, b, lineterm="", n=1)
        if not line.startswith(("---", "+++"))
    ]


def _insert(
    ctx: RepairContext, at: int, block: list[Insn]
) -> list[Insn]:
    new_insns, _ = insert_before(list(ctx.insns), {at: block})
    return new_insns


def _replace(ctx: RepairContext, at: int, insn: Insn) -> list[Insn]:
    out = list(ctx.insns)
    out[at] = insn
    return out


def _reg_in_message(message: str) -> int | None:
    match = re.search(r"[rR](\d+)\b", message)
    if match:
        reg = int(match.group(1))
        if 0 <= reg <= 10:
            return reg
    return None


def _null_guard(base: int) -> list[Insn]:
    """Skip the guarded instruction when ``base`` is NULL.

    Inserted *before* the access; the JNE skips the early exit when the
    pointer is non-NULL, landing on the original instruction.
    """
    return [
        jmp_imm(JmpOp.JNE, base, 0, 2),
        mov64_imm(Reg.R0, 0),
        exit_insn(),
    ]


def _nop_slots(ctx: RepairContext, at: int) -> list[Insn] | None:
    """Replace the instruction at ``at`` (and its filler) with JA +0."""
    if not 0 <= at < len(ctx.insns):
        return None
    out = list(ctx.insns)
    out[at] = ja(0)
    if ctx.insns[at].is_ld_imm64() and at + 1 < len(out):
        out[at + 1] = ja(0)
    return out


# --------------------------------------------------------------------------
# templates — each returns candidates for one repair idea; the registry
# below indexes them by taxonomy reason code


def _t_append_exit(ctx: RepairContext) -> Iterable[RepairCandidate]:
    """Fall-off-the-end shapes: give the program a proper epilogue."""
    tail = [mov64_imm(Reg.R0, 0), exit_insn()]
    yield RepairCandidate(
        template="append-exit",
        description="append `r0 = 0; exit` so every path leaves the "
                    "program through an exit",
        insns=list(ctx.insns) + tail,
        edit_distance=2,
    )
    yield RepairCandidate(
        template="append-bare-exit",
        description="append `exit` (R0 already holds a value)",
        insns=list(ctx.insns) + [exit_insn()],
        edit_distance=1,
    )


def _t_init_register(ctx: RepairContext) -> Iterable[RepairCandidate]:
    """Uninitialised register: zero it at its root-cause site."""
    reg = _reg_in_message(ctx.message)
    if reg is None or reg == Reg.R10:
        return
    init = mov64_imm(reg, 0)
    # The provenance pass names the site the value should have been
    # produced at; for an uninitialised register that is frame entry,
    # so the natural init points are the frame entry and the use.
    yield RepairCandidate(
        template="init-before-use",
        description=f"initialise r{reg} = 0 immediately before the "
                    f"failing read at insn {ctx.insn_idx}",
        insns=_insert(ctx, max(ctx.insn_idx, 0), [init]),
        edit_distance=1,
    )
    entry = _frame_entry(ctx)
    if entry != ctx.insn_idx:
        yield RepairCandidate(
            template="init-at-entry",
            description=f"initialise r{reg} = 0 at the entry of the "
                        f"frame containing insn {ctx.insn_idx}",
            insns=_insert(ctx, entry, [init]),
            edit_distance=1,
        )


def _frame_entry(ctx: RepairContext) -> int:
    """Entry slot of the frame containing the failing instruction.

    Walks CFG predecessors back from the failing block; the frame entry
    is the first block reached only through ``call`` edges (or block 0
    for the main frame).
    """
    if ctx.failing is None:
        return 0
    seen: set[int] = set()
    index = ctx.cfg.block_of(ctx.insn_idx).index
    while index not in seen:
        seen.add(index)
        block = ctx.cfg.blocks[index]
        preds = sorted(set(block.pred))
        if not preds:
            return block.start
        # A block entered by a call edge is a frame entry.
        for pred in preds:
            for succ, kind in ctx.cfg.blocks[pred].succ:
                if succ == index and kind == "call":
                    return block.start
        index = preds[0]
    return 0


def _t_init_stack(ctx: RepairContext) -> Iterable[RepairCandidate]:
    """Uninitialised stack read: store a zero to the slot first."""
    insn = ctx.failing
    if insn is None or not insn.is_memory_load():
        return
    yield RepairCandidate(
        template="init-stack-slot",
        description=f"store 0 to the stack slot at r{insn.src}"
                    f"{insn.off:+d} before the uninitialised read",
        insns=_insert(
            ctx, ctx.insn_idx, [st_mem(insn.size, insn.src, insn.off, 0)]
        ),
        edit_distance=1,
    )


def _t_clamp_offset(ctx: RepairContext) -> Iterable[RepairCandidate]:
    """Out-of-bounds fixed offset: clamp the access to offset 0."""
    insn = ctx.failing
    if insn is None or not insn.is_ldst() or insn.off == 0:
        return
    yield RepairCandidate(
        template="clamp-offset",
        description=f"clamp the access offset {insn.off:+d} to +0, "
                    "inside every region's bounds",
        insns=_replace(ctx, ctx.insn_idx, insn.with_(off=0)),
        edit_distance=1,
    )


def _t_null_check(ctx: RepairContext) -> Iterable[RepairCandidate]:
    """Possibly-NULL pointer access: guard the access."""
    insn = ctx.failing
    if insn is None:
        return
    if insn.insn_class == InsnClass.LDX:
        base = insn.src
    elif insn.insn_class in (InsnClass.ST, InsnClass.STX):
        base = insn.dst
    else:
        return
    yield RepairCandidate(
        template="null-check",
        description=f"guard the access with `if r{base} == 0 exit` "
                    "so the verifier can mark the pointer non-NULL",
        insns=_insert(ctx, ctx.insn_idx, _null_guard(base)),
        edit_distance=3,
    )


def _t_zero_return(ctx: RepairContext) -> Iterable[RepairCandidate]:
    """Pointer leak through R0 at exit: return a scalar instead."""
    insn = ctx.failing
    if insn is None or not insn.is_exit():
        return
    yield RepairCandidate(
        template="zero-return",
        description="set r0 = 0 before the exit so no pointer leaks "
                    "as the return value",
        insns=_insert(ctx, ctx.insn_idx, [mov64_imm(Reg.R0, 0)]),
        edit_distance=1,
    )


def _t_mask_shift(ctx: RepairContext) -> Iterable[RepairCandidate]:
    """Invalid shift amount / division by zero."""
    insn = ctx.failing
    if insn is None or not insn.is_alu():
        return
    op = insn.alu_op
    width_mask = 63 if insn.insn_class == InsnClass.ALU64 else 31
    if op in (AluOp.LSH, AluOp.RSH, AluOp.ARSH):
        if insn.src_bit == Src.K:
            yield RepairCandidate(
                template="mask-shift-imm",
                description=f"mask the shift amount {insn.imm} to "
                            f"{insn.imm & width_mask} (& {width_mask})",
                insns=_replace(
                    ctx, ctx.insn_idx,
                    insn.with_(imm=insn.imm & width_mask),
                ),
                edit_distance=1,
            )
        else:
            mask = Insn(
                opcode=insn.insn_class | AluOp.AND | Src.K,
                dst=insn.src, imm=width_mask,
            )
            yield RepairCandidate(
                template="mask-shift-reg",
                description=f"mask the shift register r{insn.src} with "
                            f"& {width_mask} before the shift",
                insns=_insert(ctx, ctx.insn_idx, [mask]),
                edit_distance=1,
            )
    if op in (AluOp.DIV, AluOp.MOD):
        if insn.src_bit == Src.K:
            yield RepairCandidate(
                template="nonzero-divisor-imm",
                description="replace the zero immediate divisor with 1",
                insns=_replace(ctx, ctx.insn_idx, insn.with_(imm=1)),
                edit_distance=1,
            )
        else:
            guard = [
                jmp_imm(JmpOp.JNE, insn.src, 0, 1),
                mov64_imm(insn.src, 1),
            ]
            yield RepairCandidate(
                template="nonzero-divisor-reg",
                description=f"force the divisor r{insn.src} to 1 when "
                            "it is zero",
                insns=_insert(ctx, ctx.insn_idx, guard),
                edit_distance=2,
            )


def _t_divert_fp_write(ctx: RepairContext) -> Iterable[RepairCandidate]:
    """Write to the read-only frame pointer: divert to a dead reg."""
    insn = ctx.failing
    if insn is None or insn.dst != Reg.R10:
        return
    for reg in ctx.flow.dead_registers(ctx.insn_idx):
        yield RepairCandidate(
            template="divert-fp-write",
            description=f"redirect the write from the read-only frame "
                        f"pointer r10 to dead register r{reg}",
            insns=_replace(ctx, ctx.insn_idx, insn.with_(dst=reg)),
            edit_distance=1,
        )
        return  # liveness order is deterministic; one divert suffices


def _t_widen_store(ctx: RepairContext) -> Iterable[RepairCandidate]:
    """Partial pointer spill/copy: widen the access to 8 bytes."""
    insn = ctx.failing
    if insn is None or not insn.is_ldst() or insn.size == Size.DW:
        return
    widened = (insn.opcode & ~0x18) | Size.DW
    yield RepairCandidate(
        template="widen-to-dw",
        description="widen the partial pointer access to a full "
                    "8-byte slot",
        insns=_replace(
            ctx, ctx.insn_idx, insn.with_(opcode=widened)
        ),
        edit_distance=1,
    )


def _t_retarget_jump(ctx: RepairContext) -> Iterable[RepairCandidate]:
    """Jump out of range: retarget to the last instruction."""
    insn = ctx.failing
    if insn is None or not insn.is_jmp() or insn.is_exit() \
            or insn.is_call():
        return
    last = len(ctx.insns) - 1
    if ctx.insns[last].is_filler() and last > 0:
        last -= 1
    for target, name in ((last, "the last instruction"),
                         (ctx.insn_idx + 1, "the fall-through")):
        off = target - ctx.insn_idx - 1
        if off == insn.off:
            continue
        yield RepairCandidate(
            template="retarget-jump",
            description=f"retarget the out-of-range jump to {name}",
            insns=_replace(ctx, ctx.insn_idx, insn.with_(off=off)),
            edit_distance=1,
        )


def _t_break_loop(ctx: RepairContext) -> Iterable[RepairCandidate]:
    """Infinite loop: break the back edge nearest the failing insn."""
    back = ctx.cfg.back_edges()
    if not back:
        return
    fail_block = (
        ctx.cfg.block_of(ctx.insn_idx).index
        if ctx.failing is not None
        else -1
    )
    # Prefer the back edge that re-enters the failing block (the loop
    # header the verifier reported), else the first in sorted order.
    back.sort(key=lambda edge: (edge[1] != fail_block, edge))
    for src_block, _dst_block in back:
        block = ctx.cfg.blocks[src_block]
        term = block.terminator
        while term > block.start and ctx.insns[term].is_filler():
            term -= 1
        insn = ctx.insns[term]
        if not insn.is_jmp() or insn.is_exit() or insn.is_call():
            continue
        yield RepairCandidate(
            template="break-back-edge",
            description=f"neutralise the loop's back edge at insn "
                        f"{term} (jump becomes fall-through)",
            insns=_replace(ctx, term, ja(0)),
            edit_distance=1,
        )
        return


def _t_stub_call(ctx: RepairContext) -> Iterable[RepairCandidate]:
    """Bad helper/kfunc call: model the call as returning 0."""
    insn = ctx.failing
    if insn is None or not insn.is_call():
        return
    yield RepairCandidate(
        template="stub-call",
        description="replace the rejected call with `r0 = 0` (the "
                    "call's only architectural effect is defining r0)",
        insns=_replace(ctx, ctx.insn_idx, mov64_imm(Reg.R0, 0)),
        edit_distance=1,
    )


def _t_nop_failing(ctx: RepairContext) -> Iterable[RepairCandidate]:
    """Last resort: the failing instruction becomes a no-op jump."""
    insns = _nop_slots(ctx, ctx.insn_idx)
    if insns is None:
        return
    yield RepairCandidate(
        template="nop-failing-insn",
        description=f"replace the failing instruction at insn "
                    f"{ctx.insn_idx} with a no-op (ja +0)",
        insns=insns,
        edit_distance=1,
    )


def _t_exit_before(ctx: RepairContext) -> Iterable[RepairCandidate]:
    """Last resort: truncate the failing path just before the fault."""
    insn = ctx.failing
    if insn is None or ctx.insn_idx == 0:
        return
    yield RepairCandidate(
        template="exit-before-failing",
        description=f"exit cleanly just before the failing "
                    f"instruction at insn {ctx.insn_idx}",
        insns=_insert(
            ctx, ctx.insn_idx, [mov64_imm(Reg.R0, 0), exit_insn()]
        ),
        edit_distance=2,
    )


# --------------------------------------------------------------------------
# registry

_Template = Callable[[RepairContext], Iterable[RepairCandidate]]

#: Taxonomy reason code -> ordered template tuple.  The DESIGN 5i table
#: mirrors this mapping; keep the two in sync.
_REASON_TEMPLATES: dict[str, tuple[_Template, ...]] = {
    "PATH_FELL_OFF": (_t_append_exit, _t_retarget_jump),
    "STRUCT_BAD_LAST_INSN": (_t_append_exit,),
    "STRUCT_BAD_JUMP": (_t_retarget_jump,),
    "STRUCT_BAD_OPCODE": (),
    "STRUCT_RESERVED_FIELD": (),
    "STRUCT_BAD_REGISTER": (),
    "STRUCT_LDIMM64_PAIRING": (_t_retarget_jump,),
    "UNINIT_REGISTER": (_t_init_register,),
    "FRAME_POINTER_WRITE": (_t_divert_fp_write,),
    "POINTER_PARTIAL_STORE": (_t_widen_store,),
    "LEAK_POINTER_RETURN": (_t_zero_return,),
    "ALU_INVALID": (_t_mask_shift,),
    "INFINITE_LOOP": (_t_break_loop,),
    "STACK_ACCESS": (_t_init_stack, _t_clamp_offset),
    "CTX_ACCESS": (_t_clamp_offset,),
    "MAP_VALUE_ACCESS": (_t_clamp_offset, _t_null_check),
    "PACKET_ACCESS": (_t_clamp_offset,),
    "BTF_ACCESS": (_t_clamp_offset,),
    "MEM_REGION_OOB": (_t_clamp_offset,),
    "NULL_POINTER_ACCESS": (_t_null_check,),
    "MEM_ACCESS_BAD_POINTER": (_t_null_check, _t_clamp_offset),
    "HELPER_ARG_SIZE": (_t_stub_call,),
    "HELPER_ARG_TYPE": (_t_stub_call,),
    "HELPER_UNKNOWN": (_t_stub_call,),
    "HELPER_NOT_ALLOWED": (_t_stub_call,),
    "POINTER_ARITHMETIC": (),
    "ATOMIC_POINTER_OPERAND": (),
}

#: Templates appended for *every* reason, after the specific ones.
_FALLBACK_TEMPLATES: tuple[_Template, ...] = (
    _t_nop_failing,
    _t_exit_before,
    _t_append_exit,
)

#: Template names in registry order (documentation / report ordering).
TEMPLATE_ORDER: tuple[str, ...] = (
    "append-exit", "append-bare-exit", "init-before-use",
    "init-at-entry", "init-stack-slot", "clamp-offset", "null-check",
    "zero-return", "mask-shift-imm", "mask-shift-reg",
    "nonzero-divisor-imm", "nonzero-divisor-reg", "divert-fp-write",
    "widen-to-dw", "retarget-jump", "break-back-edge", "stub-call",
    "nop-failing-insn", "exit-before-failing",
)


def propose_repairs(
    insns: Sequence[Insn],
    reason: str,
    message: str,
    insn_idx: int,
) -> list[RepairCandidate]:
    """Ranked, deduplicated candidate patches for one rejection.

    Ranking is (edit distance, registry order): the cheapest patch that
    a more specific template produced wins.  Candidates identical to
    the original program or to an earlier candidate are dropped.
    """
    insns = list(insns)
    cfg = build_cfg(insns)
    flow = analyze(insns, cfg)
    ctx = RepairContext(
        insns=insns, reason=reason, message=message,
        insn_idx=insn_idx, cfg=cfg, flow=flow,
    )

    templates = _REASON_TEMPLATES.get(reason, ()) + _FALLBACK_TEMPLATES
    candidates: list[RepairCandidate] = []
    for order, template in enumerate(templates):
        for candidate in template(ctx):
            candidate.order = order
            candidates.append(candidate)

    try:
        original_key = encode_program(insns)
    except Exception:
        original_key = None
    seen: set[bytes] = set()
    ranked: list[RepairCandidate] = []
    for candidate in sorted(
        candidates, key=lambda c: (c.edit_distance, c.order)
    ):
        try:
            key = encode_program(candidate.insns)
        except Exception:
            # A candidate the codec cannot even encode would never
            # reach the verifier; drop it.
            continue
        if key == original_key or key in seen:
            continue
        seen.add(key)
        ranked.append(candidate)
    return ranked


def synthesize_repair(
    kernel,
    prog,
    *,
    reason: str,
    message: str,
    insn_idx: int,
    sanitize: bool = False,
    max_attempts: int = MAX_VERIFY_ATTEMPTS,
) -> Repair | None:
    """Find and **verify** a minimal patch for one rejected program.

    ``kernel`` must be the instance the original rejection came from —
    its map fds are what the program's LD_IMM64 pseudo loads resolve
    against.  Returns the first candidate (in rank order) the verifier
    accepts, or ``None``.  No unverified repair is ever returned.
    """
    from repro.ebpf.program import BpfProgram
    from repro.errors import BpfError, InvariantViolation, VerifierReject

    candidates = propose_repairs(prog.insns, reason, message, insn_idx)
    for attempt, candidate in enumerate(
        candidates[:max_attempts], start=1
    ):
        patched = BpfProgram(
            insns=list(candidate.insns),
            prog_type=prog.prog_type,
            name=f"{prog.name}+repair",
            offload_dev=prog.offload_dev,
        )
        try:
            kernel.prog_load(patched, sanitize=sanitize)
        except (VerifierReject, BpfError, InvariantViolation):
            continue
        return Repair(
            template=candidate.template,
            description=candidate.description,
            reason=reason,
            insn_idx=insn_idx,
            edit_distance=candidate.edit_distance,
            original=list(prog.insns),
            patched=list(candidate.insns),
            attempts=attempt,
        )
    return None
