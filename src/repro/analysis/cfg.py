"""Basic-block control-flow graphs over slot-form eBPF programs.

The flight recorder (:mod:`repro.obs.events`) tells us *where* the
verifier rejected a program; turning that into a *why* — and into a
candidate minimal patch — needs the program's control structure: which
instruction can reach which, where a loop's back edge is, which block a
failing access lives in.  This module builds the classic basic-block
CFG from decoded :class:`~repro.ebpf.insn.Insn` lists, mirroring the
interpreter's successor semantics exactly (``repro.runtime.interpreter``
and ``Verifier._step`` agree on these):

- straight-line instructions fall through to ``idx + 1``;
- ``LD_IMM64`` occupies two slots and falls through to ``idx + 2`` (the
  zero-opcode filler belongs to the same block and is never a leader);
- ``JA`` jumps to ``idx + off + 1``;
- conditional jumps fork to ``idx + off + 1`` (taken) and ``idx + 1``
  (fall-through);
- ``EXIT`` terminates the current frame (no intraprocedural successor);
- helper/kfunc calls fall through to ``idx + 1``;
- bpf-to-bpf calls contribute a ``call`` edge to ``idx + imm + 1``
  (the callee entry) *and* a ``fall`` edge to ``idx + 1`` — the return
  continuation — which is the standard call-summary shape for
  intraprocedural dataflow (the callee is summarised at the call site
  by :mod:`repro.analysis.dataflow`'s clobber model).

Construction is total: malformed programs — exactly the ones the
verifier rejects structurally — still yield a CFG.  Out-of-range or
into-a-filler jump targets are dropped from the edge set and recorded
in :attr:`CFG.invalid_edges` so the repair layer can see them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.ebpf.insn import Insn

__all__ = [
    "EDGE_FALL",
    "EDGE_JUMP",
    "EDGE_TAKEN",
    "EDGE_CALL",
    "BasicBlock",
    "CFG",
    "build_cfg",
    "insn_successors",
]

#: Edge kinds, in the order they are emitted per instruction.
EDGE_FALL = "fall"    # straight-line / branch-not-taken / call return point
EDGE_JUMP = "jump"    # unconditional JA
EDGE_TAKEN = "taken"  # conditional branch taken
EDGE_CALL = "call"    # bpf-to-bpf call to the callee entry


def insn_successors(
    insns: Sequence[Insn], idx: int
) -> list[tuple[int, str]]:
    """Successor slot indices of one instruction, interpreter-style.

    Returns ``(target, edge_kind)`` pairs *including* targets that fall
    outside the program or land on an LD_IMM64 filler — callers decide
    whether those are CFG edges (:func:`build_cfg` records them as
    invalid instead).  A filler slot itself has no successors: control
    never rests on one (the verifier rejects, the interpreter skips it
    as part of the LD_IMM64).
    """
    insn = insns[idx]
    if insn.is_filler():
        return []
    if insn.is_ld_imm64():
        return [(idx + 2, EDGE_FALL)]
    if insn.is_exit():
        return []
    if insn.is_uncond_jmp():
        return [(idx + insn.off + 1, EDGE_JUMP)]
    if insn.is_pseudo_call():
        return [(idx + insn.imm + 1, EDGE_CALL), (idx + 1, EDGE_FALL)]
    if insn.is_cond_jmp():
        return [(idx + insn.off + 1, EDGE_TAKEN), (idx + 1, EDGE_FALL)]
    # ALU, loads/stores, atomics, helper/kfunc calls.
    return [(idx + 1, EDGE_FALL)]


@dataclass
class BasicBlock:
    """A maximal straight-line run of instruction slots.

    ``start``/``end`` delimit the half-open slot range ``[start, end)``;
    LD_IMM64 fillers are included with their first slot.  ``succ`` holds
    ``(block_index, edge_kind)`` pairs in deterministic emission order.
    """

    index: int
    start: int
    end: int
    succ: list[tuple[int, str]] = field(default_factory=list)
    pred: list[int] = field(default_factory=list)

    @property
    def terminator(self) -> int:
        """Slot index of the block's last non-filler instruction."""
        return self.end - 1

    def slots(self) -> range:
        return range(self.start, self.end)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        succ = ", ".join(f"{kind}->B{i}" for i, kind in self.succ)
        return f"BasicBlock(B{self.index} [{self.start}:{self.end}) {succ})"


@dataclass
class CFG:
    """The control-flow graph of one slot-form program."""

    insns: list[Insn]
    blocks: list[BasicBlock]
    #: slot index -> index of the block containing it
    block_index: list[int]
    #: ``(from_idx, target_idx, kind)`` edges whose target is outside
    #: the program or lands on an LD_IMM64 filler — kept out of the
    #: block graph but preserved for diagnostics/repair
    invalid_edges: list[tuple[int, int, str]] = field(default_factory=list)

    @property
    def entry(self) -> BasicBlock:
        return self.blocks[0]

    def block_of(self, idx: int) -> BasicBlock:
        """The basic block containing slot ``idx``."""
        return self.blocks[self.block_index[idx]]

    def successors(self, idx: int) -> list[tuple[int, str]]:
        """Valid successor *slot* indices of one instruction."""
        return [
            (target, kind)
            for target, kind in insn_successors(self.insns, idx)
            if self._valid_target(target)
        ]

    def _valid_target(self, target: int) -> bool:
        return (
            0 <= target < len(self.insns)
            and not self.insns[target].is_filler()
        )

    def reachable_blocks(self) -> set[int]:
        """Block indices reachable from the entry (call edges included)."""
        if not self.blocks:
            return set()
        seen = {0}
        stack = [0]
        while stack:
            block = self.blocks[stack.pop()]
            for succ, _kind in block.succ:
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def reachable_slots(self) -> set[int]:
        """Slot indices inside reachable blocks (fillers included)."""
        return {
            slot
            for index in self.reachable_blocks()
            for slot in self.blocks[index].slots()
        }

    def back_edges(self) -> list[tuple[int, int]]:
        """``(from_block, to_block)`` pairs forming loops.

        A DFS from the entry classifies an edge as a back edge when its
        target is on the current DFS stack — the textbook definition,
        which for reducible graphs coincides with "target dominates
        source" and for irreducible ones still marks every cycle.
        """
        back: list[tuple[int, int]] = []
        state: dict[int, int] = {}  # 0 = on stack, 1 = done

        def visit(index: int) -> None:
            state[index] = 0
            for succ, _kind in self.blocks[index].succ:
                if succ not in state:
                    visit(succ)
                elif state[succ] == 0:
                    back.append((index, succ))
            state[index] = 1

        if self.blocks:
            visit(0)
        return sorted(back)

    def edges(self) -> Iterator[tuple[int, int, str]]:
        """All block edges as ``(from_block, to_block, kind)``."""
        for block in self.blocks:
            for succ, kind in block.succ:
                yield block.index, succ, kind

    def render(self) -> str:
        """Compact text form (debugging / `repro repair --cfg`)."""
        from repro.ebpf.disasm import format_insn

        lines = []
        reachable = self.reachable_blocks()
        for block in self.blocks:
            mark = "" if block.index in reachable else "  (unreachable)"
            succ = ", ".join(f"{kind}->B{i}" for i, kind in block.succ)
            lines.append(
                f"B{block.index} [{block.start}:{block.end})"
                f" -> {succ or '(exit)'}{mark}"
            )
            for slot in block.slots():
                insn = self.insns[slot]
                if insn.is_filler():
                    continue
                try:
                    text = format_insn(insn)
                except (KeyError, ValueError):
                    text = f"(undecodable: opcode=0x{insn.opcode:02x})"
                lines.append(f"  {slot:>3}: {text}")
        return "\n".join(lines)


def build_cfg(insns: Sequence[Insn]) -> CFG:
    """Construct the basic-block CFG of a slot-form program.

    Total over arbitrary instruction lists: invalid jump targets become
    :attr:`CFG.invalid_edges` rather than errors, so the repair layer
    can analyse exactly the programs the verifier refuses.
    """
    insns = list(insns)
    n = len(insns)
    if n == 0:
        return CFG(insns=[], blocks=[], block_index=[])

    # --- leaders -----------------------------------------------------------
    # Slot 0; every valid jump/call target; every slot following an
    # instruction with a non-fall successor set (jump, branch, exit,
    # bpf-to-bpf call).  A leader is never a filler: jumps into the
    # middle of an LD_IMM64 are invalid edges, and the slot after a
    # terminator is advanced past fillers.
    leaders = {0}
    invalid_edges: list[tuple[int, int, str]] = []
    for idx, insn in enumerate(insns):
        if insn.is_filler():
            continue
        succs = insn_successors(insns, idx)
        branches = insn.is_jmp() and not insn.is_helper_call() \
            and not insn.is_kfunc_call()
        for target, kind in succs:
            valid = 0 <= target < n and not insns[target].is_filler()
            if not valid:
                invalid_edges.append((idx, target, kind))
                continue
            if kind != EDGE_FALL or branches:
                leaders.add(target)
        if branches or insn.is_exit():
            after = idx + 1
            if after < n and insns[after].is_filler():
                after += 1
            if after < n:
                leaders.add(after)
    if insns[0].is_filler():
        # Degenerate stream starting on a filler: keep slot 0 a leader
        # so the partition stays total; the block is simply dead.
        leaders.add(0)

    # --- blocks ------------------------------------------------------------
    ordered = sorted(leaders)
    blocks: list[BasicBlock] = []
    block_index = [0] * n
    for bi, start in enumerate(ordered):
        end = ordered[bi + 1] if bi + 1 < len(ordered) else n
        block = BasicBlock(index=bi, start=start, end=end)
        blocks.append(block)
        for slot in range(start, end):
            block_index[slot] = bi

    cfg = CFG(
        insns=insns,
        blocks=blocks,
        block_index=block_index,
        invalid_edges=invalid_edges,
    )

    # --- edges -------------------------------------------------------------
    # A block's control transfers live at its last non-filler slot; a
    # block that ends by running into the next leader falls through.
    for block in blocks:
        term = block.end - 1
        while term > block.start and insns[term].is_filler():
            term -= 1
        insn = insns[term]
        if insn.is_filler():
            continue  # all-filler block: dead, no edges
        targets = cfg.successors(term)
        if not targets and not insn.is_exit():
            # Straight-line instruction at the end of the program: the
            # fall-through left the program (recorded as invalid above).
            pass
        for target, kind in targets:
            succ_block = block_index[target]
            block.succ.append((succ_block, kind))
            blocks[succ_block].pred.append(block.index)
    return cfg
