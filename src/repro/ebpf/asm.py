"""Assembler-style constructors for eBPF instructions.

These helpers mirror the ``BPF_*`` macros the kernel's self-tests are
written with (``BPF_MOV64_IMM``, ``BPF_LDX_MEM``, ...), so programs in
our tests and examples read like the listings in the paper.  All
constructors return slot-form instructions; the 64-bit immediate loads
return *two* slots and are therefore spliced into programs with ``*``::

    prog = [
        *ld_map_fd(Reg.R1, map_fd),
        mov64_reg(Reg.R2, Reg.R10),
        alu64_imm(AluOp.ADD, Reg.R2, -8),
        st_mem(Size.DW, Reg.R2, 0, 0),
        call_helper(HelperId.MAP_LOOKUP_ELEM),
        exit_insn(),
    ]
"""

from __future__ import annotations

from repro.ebpf.insn import Insn, ld_imm64_pair
from repro.ebpf.opcodes import (
    AluOp,
    AtomicOp,
    InsnClass,
    JmpOp,
    Mode,
    PseudoCall,
    PseudoSrc,
    Size,
    Src,
)

__all__ = [
    "alu64_imm",
    "alu64_reg",
    "alu32_imm",
    "alu32_reg",
    "mov64_imm",
    "mov64_reg",
    "mov32_imm",
    "mov32_reg",
    "neg64",
    "endian",
    "ldx_mem",
    "ldx_memsx",
    "st_mem",
    "stx_mem",
    "atomic_op",
    "ld_imm64",
    "ld_map_fd",
    "ld_map_value",
    "ld_btf_id",
    "ld_func",
    "jmp_imm",
    "jmp_reg",
    "jmp32_imm",
    "jmp32_reg",
    "ja",
    "call_helper",
    "call_kfunc",
    "call_subprog",
    "exit_insn",
]


# --- ALU -------------------------------------------------------------------


def alu64_imm(op: AluOp, dst: int, imm: int) -> Insn:
    """64-bit ALU with immediate operand: ``dst = dst <op> imm``."""
    return Insn(opcode=InsnClass.ALU64 | op | Src.K, dst=dst, imm=imm)


def alu64_reg(op: AluOp, dst: int, src: int) -> Insn:
    """64-bit ALU with register operand: ``dst = dst <op> src``."""
    return Insn(opcode=InsnClass.ALU64 | op | Src.X, dst=dst, src=src)


def alu32_imm(op: AluOp, dst: int, imm: int) -> Insn:
    """32-bit ALU with immediate operand (upper half is zeroed)."""
    return Insn(opcode=InsnClass.ALU | op | Src.K, dst=dst, imm=imm)


def alu32_reg(op: AluOp, dst: int, src: int) -> Insn:
    """32-bit ALU with register operand (upper half is zeroed)."""
    return Insn(opcode=InsnClass.ALU | op | Src.X, dst=dst, src=src)


def mov64_imm(dst: int, imm: int) -> Insn:
    """``dst = imm`` (sign-extended to 64 bits)."""
    return alu64_imm(AluOp.MOV, dst, imm)


def mov64_reg(dst: int, src: int) -> Insn:
    """``dst = src`` (full 64-bit move, propagates pointer types)."""
    return alu64_reg(AluOp.MOV, dst, src)


def mov32_imm(dst: int, imm: int) -> Insn:
    """``dst = (u32)imm`` (upper half zeroed)."""
    return alu32_imm(AluOp.MOV, dst, imm)


def mov32_reg(dst: int, src: int) -> Insn:
    """``dst = (u32)src`` (upper half zeroed)."""
    return alu32_reg(AluOp.MOV, dst, src)


def neg64(dst: int) -> Insn:
    """``dst = -dst``."""
    return Insn(opcode=InsnClass.ALU64 | AluOp.NEG, dst=dst)


def endian(dst: int, bits: int, to_big: bool = True) -> Insn:
    """Byte-swap conversion (``BPF_END``); ``bits`` is 16, 32, or 64."""
    src = Src.X if to_big else Src.K
    return Insn(opcode=InsnClass.ALU | AluOp.END | src, dst=dst, imm=bits)


# --- memory ------------------------------------------------------------------


def ldx_mem(size: Size, dst: int, src: int, off: int) -> Insn:
    """``dst = *(size *)(src + off)``."""
    return Insn(opcode=InsnClass.LDX | size | Mode.MEM, dst=dst, src=src, off=off)


def ldx_memsx(size: Size, dst: int, src: int, off: int) -> Insn:
    """Sign-extending load: ``dst = *(s<size> *)(src + off)``."""
    return Insn(opcode=InsnClass.LDX | size | Mode.MEMSX, dst=dst, src=src, off=off)


def st_mem(size: Size, dst: int, off: int, imm: int) -> Insn:
    """``*(size *)(dst + off) = imm``."""
    return Insn(opcode=InsnClass.ST | size | Mode.MEM, dst=dst, off=off, imm=imm)


def stx_mem(size: Size, dst: int, src: int, off: int) -> Insn:
    """``*(size *)(dst + off) = src``."""
    return Insn(opcode=InsnClass.STX | size | Mode.MEM, dst=dst, src=src, off=off)


def atomic_op(size: Size, op: AtomicOp, dst: int, src: int, off: int) -> Insn:
    """Atomic read-modify-write on ``*(size *)(dst + off)``."""
    return Insn(
        opcode=InsnClass.STX | size | Mode.ATOMIC, dst=dst, src=src, off=off, imm=op
    )


# --- 64-bit immediate loads ---------------------------------------------------


def ld_imm64(dst: int, value: int) -> tuple[Insn, Insn]:
    """``dst = value`` where value is a full 64-bit constant (two slots)."""
    head = Insn(
        opcode=InsnClass.LD | Size.DW | Mode.IMM, dst=dst, src=PseudoSrc.RAW
    )
    return ld_imm64_pair(head, value)


def ld_map_fd(dst: int, map_fd: int) -> tuple[Insn, Insn]:
    """Load a map address by file descriptor (``BPF_PSEUDO_MAP_FD``)."""
    head = Insn(
        opcode=InsnClass.LD | Size.DW | Mode.IMM, dst=dst, src=PseudoSrc.MAP_FD
    )
    return ld_imm64_pair(head, map_fd)


def ld_map_value(dst: int, map_fd: int, off: int) -> tuple[Insn, Insn]:
    """Load a direct pointer into a map value (``BPF_PSEUDO_MAP_VALUE``).

    The low half of the immediate selects the map fd and the high half
    the byte offset into the value, matching the kernel encoding.
    """
    head = Insn(
        opcode=InsnClass.LD | Size.DW | Mode.IMM, dst=dst, src=PseudoSrc.MAP_VALUE
    )
    return ld_imm64_pair(head, (map_fd & 0xFFFFFFFF) | (off << 32))


def ld_btf_id(dst: int, btf_id: int) -> tuple[Insn, Insn]:
    """Load the address of a kernel object by BTF id (``BPF_PSEUDO_BTF_ID``)."""
    head = Insn(
        opcode=InsnClass.LD | Size.DW | Mode.IMM, dst=dst, src=PseudoSrc.BTF_ID
    )
    return ld_imm64_pair(head, btf_id)


def ld_func(dst: int, subprog: int) -> tuple[Insn, Insn]:
    """Load the address of a bpf subprogram (``BPF_PSEUDO_FUNC``)."""
    head = Insn(
        opcode=InsnClass.LD | Size.DW | Mode.IMM, dst=dst, src=PseudoSrc.FUNC
    )
    return ld_imm64_pair(head, subprog)


# --- jumps ---------------------------------------------------------------------


def jmp_imm(op: JmpOp, dst: int, imm: int, off: int) -> Insn:
    """64-bit conditional jump against an immediate."""
    return Insn(opcode=InsnClass.JMP | op | Src.K, dst=dst, imm=imm, off=off)


def jmp_reg(op: JmpOp, dst: int, src: int, off: int) -> Insn:
    """64-bit conditional jump against a register."""
    return Insn(opcode=InsnClass.JMP | op | Src.X, dst=dst, src=src, off=off)


def jmp32_imm(op: JmpOp, dst: int, imm: int, off: int) -> Insn:
    """32-bit conditional jump against an immediate."""
    return Insn(opcode=InsnClass.JMP32 | op | Src.K, dst=dst, imm=imm, off=off)


def jmp32_reg(op: JmpOp, dst: int, src: int, off: int) -> Insn:
    """32-bit conditional jump against a register."""
    return Insn(opcode=InsnClass.JMP32 | op | Src.X, dst=dst, src=src, off=off)


def ja(off: int) -> Insn:
    """Unconditional jump by ``off`` slots."""
    return Insn(opcode=InsnClass.JMP | JmpOp.JA, off=off)


def call_helper(helper_id: int) -> Insn:
    """Call an eBPF helper function by id."""
    return Insn(
        opcode=InsnClass.JMP | JmpOp.CALL, src=PseudoCall.HELPER, imm=helper_id
    )


def call_kfunc(btf_id: int) -> Insn:
    """Call a kernel function by BTF id (``BPF_PSEUDO_KFUNC_CALL``)."""
    return Insn(opcode=InsnClass.JMP | JmpOp.CALL, src=PseudoCall.KFUNC, imm=btf_id)


def call_subprog(off: int) -> Insn:
    """bpf-to-bpf call; ``off`` is relative to the next instruction."""
    return Insn(opcode=InsnClass.JMP | JmpOp.CALL, src=PseudoCall.CALL, imm=off)


def exit_insn() -> Insn:
    """Program (or subprogram) exit; returns R0."""
    return Insn(opcode=InsnClass.JMP | JmpOp.EXIT)
