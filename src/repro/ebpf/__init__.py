"""eBPF substrate: instruction set, programs, maps, helpers, and BTF.

This subpackage is a from-scratch model of the parts of the Linux eBPF
subsystem that the paper's fuzzer interacts with: the RISC-like
instruction set with its on-the-wire encoding, the program object and
its types, the map data structures, the helper-function registry with
typed prototypes, and a minimal BTF model for kernel objects and
kfuncs.
"""

from repro.ebpf.insn import Insn, encode_program, decode_program
from repro.ebpf.opcodes import (
    InsnClass,
    AluOp,
    JmpOp,
    Size,
    Mode,
    Src,
    Reg,
)
from repro.ebpf.program import BpfProgram, ProgType, AttachType
from repro.ebpf.maps import BpfMap, MapType, create_map
from repro.ebpf.helpers import HelperRegistry, HelperProto, ArgType, RetType

__all__ = [
    "Insn",
    "encode_program",
    "decode_program",
    "InsnClass",
    "AluOp",
    "JmpOp",
    "Size",
    "Mode",
    "Src",
    "Reg",
    "BpfProgram",
    "ProgType",
    "AttachType",
    "BpfMap",
    "MapType",
    "create_map",
    "HelperRegistry",
    "HelperProto",
    "ArgType",
    "RetType",
]
