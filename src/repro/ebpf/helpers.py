"""eBPF helper-function registry: prototypes, implementations, flags.

Helpers are the programs' gateway into the kernel, and therefore the
whole surface of **indicator #2**: "bugs caused during kernel routines'
execution invoked by loaded eBPF programs".  Each helper here has

- a *prototype* the verifier checks call sites against (argument
  register types, return type, allowed program types), and
- an *implementation* the runtime dispatches to, operating on the
  simulated kernel (memory, maps, lockdep, tracepoints).

The implementations are "compiled with KASAN": all their memory
traffic goes through the checked access path.  Several of them embed
the Table-2 component bugs, gated on the kernel's flaw profile.
"""

from __future__ import annotations

import enum
import errno
from dataclasses import dataclass
from typing import Callable

from repro.errors import KernelPanic
from repro.ebpf.maps import MapType
from repro.kernel.config import Flaw, KernelConfig
from repro.kernel.locks import TRACE_PRINTK_LOCK

#: map classes for check_map_func_compatibility
_KEYED_MAPS = frozenset(
    {MapType.HASH, MapType.ARRAY, MapType.LRU_HASH, MapType.PERCPU_HASH,
     MapType.PERCPU_ARRAY}
)
_DELETE_MAPS = frozenset(
    {MapType.HASH, MapType.LRU_HASH, MapType.PERCPU_HASH}
)
_QUEUE_STACK_MAPS = frozenset({MapType.QUEUE, MapType.STACK})
_RINGBUF_MAPS = frozenset({MapType.RINGBUF})
_PROG_ARRAY_MAPS = frozenset({MapType.PROG_ARRAY})

__all__ = [
    "ArgType",
    "RetType",
    "HelperId",
    "HelperProto",
    "HelperContext",
    "HelperRegistry",
]


class ArgType(enum.Enum):
    """Argument-type constraints, mirroring ``enum bpf_arg_type``."""

    ANYTHING = "anything"  # any initialised value
    CONST_MAP_PTR = "const_map_ptr"
    PTR_TO_MAP_KEY = "ptr_to_map_key"  # readable region of key_size
    PTR_TO_MAP_VALUE = "ptr_to_map_value"  # readable region of value_size
    PTR_TO_UNINIT_MAP_VALUE = "ptr_to_uninit_map_value"  # writable
    PTR_TO_MEM = "ptr_to_mem"  # readable region, size follows
    PTR_TO_UNINIT_MEM = "ptr_to_uninit_mem"  # writable region, size follows
    CONST_SIZE = "const_size"  # size of the preceding region, > 0
    CONST_SIZE_OR_ZERO = "const_size_or_zero"
    CONST_ALLOC_SIZE = "const_alloc_size"  # standalone allocation size
    PTR_TO_CTX = "ptr_to_ctx"
    PTR_TO_BTF_ID = "ptr_to_btf_id"  # trusted kernel object pointer
    PTR_TO_ALLOC_MEM = "ptr_to_alloc_mem"  # an acquired (refcounted) region
    PTR_TO_SPIN_LOCK = "ptr_to_spin_lock"  # &value->lock in a lock-y map
    SCALAR = "scalar"  # any scalar value


class RetType(enum.Enum):
    """Return-type classes, mirroring ``enum bpf_return_type``."""

    INTEGER = "integer"
    VOID = "void"
    PTR_TO_MAP_VALUE_OR_NULL = "ptr_to_map_value_or_null"
    PTR_TO_BTF_ID = "ptr_to_btf_id"
    #: an acquired memory region (or NULL): carries a release obligation
    PTR_TO_ALLOC_MEM_OR_NULL = "ptr_to_alloc_mem_or_null"


class HelperId(enum.IntEnum):
    """Helper function ids (matching ``enum bpf_func_id`` where real)."""

    MAP_LOOKUP_ELEM = 1
    MAP_UPDATE_ELEM = 2
    MAP_DELETE_ELEM = 3
    PROBE_READ = 4
    KTIME_GET_NS = 5
    TRACE_PRINTK = 6
    GET_PRANDOM_U32 = 7
    GET_SMP_PROCESSOR_ID = 8
    TAIL_CALL = 12
    GET_CURRENT_PID_TGID = 14
    GET_CURRENT_UID_GID = 15
    GET_CURRENT_COMM = 16
    GET_CURRENT_TASK = 35
    MAP_PUSH_ELEM = 87
    MAP_POP_ELEM = 88
    MAP_PEEK_ELEM = 89
    SPIN_LOCK = 93
    SPIN_UNLOCK = 94
    SEND_SIGNAL = 109
    PROBE_READ_KERNEL = 113
    RINGBUF_OUTPUT = 130
    RINGBUF_RESERVE = 131
    RINGBUF_SUBMIT = 132
    RINGBUF_DISCARD = 133
    GET_CURRENT_TASK_BTF = 158
    SNPRINTF = 165
    LOOP = 181


@dataclass
class HelperContext:
    """Everything a helper implementation may touch.

    Constructed by the runtime for each program trigger.  ``args`` at
    call time are the raw u64 values of R1-R5.
    """

    kernel: object  # repro.kernel.syscall.Kernel
    prog: object  # the running VerifiedProgram
    context_id: int = 0
    in_irq: bool = False
    in_nmi: bool = False
    depth: int = 0

    @property
    def mem(self):
        return self.kernel.mem

    @property
    def config(self) -> KernelConfig:
        return self.kernel.config

    def map_by_addr(self, addr: int):
        return self.kernel.map_by_addr(addr)


@dataclass(frozen=True)
class HelperProto:
    """A helper's verifier-visible prototype plus its implementation."""

    helper_id: HelperId
    name: str
    args: tuple[ArgType, ...]
    ret: RetType
    impl: Callable[..., int]
    #: acquires a kernel lock — relevant for bugs #4/#5 attach checks
    acquires_lock: bool = False
    #: returns an object the program must later release
    acquires_ref: bool = False
    #: releases the reference carried by its pointer argument
    releases_ref: bool = False
    #: unsafe to call from NMI-like contexts (bug #6's subject)
    nmi_unsafe: bool = False
    #: program types allowed to call this helper (None = all)
    prog_types: frozenset[str] | None = None
    #: map types a CONST_MAP_PTR argument accepts (None = any); the
    #: verifier's check_map_func_compatibility
    map_types: frozenset | None = None
    #: minimum "kernel version" feature gate
    requires_btf: bool = False

    def arg_count(self) -> int:
        return len(self.args)


# --------------------------------------------------------------------------
# Implementations.  Signature convention: (ctx, r1..rN as ints) -> int.
# A negative return is an in-program errno (programs see it in R0).
# Raising a KernelReport models a kernel-side crash/report.
# --------------------------------------------------------------------------


def _read_key(ctx: HelperContext, bpf_map, key_ptr: int) -> bytes:
    return ctx.mem.checked_read_bytes(key_ptr, bpf_map.key_size, who="helper-key")


def _impl_map_lookup(ctx: HelperContext, map_addr: int, key_ptr: int) -> int:
    bpf_map = ctx.map_by_addr(map_addr)
    key = _read_key(ctx, bpf_map, key_ptr)
    addr = bpf_map.lookup(key)
    return addr if addr is not None else 0


def _impl_map_update(
    ctx: HelperContext, map_addr: int, key_ptr: int, value_ptr: int, flags: int
) -> int:
    from repro.errors import MapError

    bpf_map = ctx.map_by_addr(map_addr)
    key = _read_key(ctx, bpf_map, key_ptr)
    value = ctx.mem.checked_read_bytes(
        value_ptr, bpf_map.value_size, who="helper-value"
    )
    try:
        bpf_map.update(key, value, flags)
    except MapError as exc:
        return -exc.errno
    return 0


def _impl_map_delete(ctx: HelperContext, map_addr: int, key_ptr: int) -> int:
    from repro.errors import MapError

    bpf_map = ctx.map_by_addr(map_addr)
    key = _read_key(ctx, bpf_map, key_ptr)
    try:
        bpf_map.delete(key)
    except MapError as exc:
        return -exc.errno
    return 0


def _impl_probe_read(ctx: HelperContext, dst: int, size: int, src: int) -> int:
    """Fault-tolerant kernel memory read into a program buffer."""
    if size == 0:
        return 0
    if not ctx.mem.in_arena(src, size):
        # probe_read handles faults gracefully: zero the buffer, -EFAULT.
        ctx.mem.checked_write_bytes(dst, b"\x00" * size, who="probe_read")
        return -errno.EFAULT
    data = bytes(
        ctx.mem._arena[src - 0xFFFF_8880_0000_0000 : src - 0xFFFF_8880_0000_0000 + size]
    )
    ctx.mem.checked_write_bytes(dst, data, who="probe_read")
    return 0


def _impl_ktime(ctx: HelperContext) -> int:
    ctx.kernel.clock_ns += 1000
    return ctx.kernel.clock_ns


def _impl_trace_printk(ctx: HelperContext, fmt_ptr: int, fmt_size: int, *rest) -> int:
    """``bpf_trace_printk``: Bug #4's lock lives here.

    The helper takes ``trace_printk_lock`` and, while holding it, fires
    the ``bpf_trace_printk`` tracepoint.  A program attached to that
    tracepoint (allowed only in the flawed kernel) re-enters and
    re-acquires the held lock — lockdep reports recursive locking.
    """
    if fmt_size <= 0 or fmt_size > 512:
        return -errno.EINVAL
    ctx.mem.checked_read_bytes(fmt_ptr, fmt_size, who="trace_printk")
    lockdep = ctx.kernel.lockdep
    # Acquiring a contended lock fires contention_begin first — the
    # re-entry vector of Bug #5 (Figure 2).
    ctx.kernel.tracepoints.fire("contention_begin")
    lockdep.acquire(TRACE_PRINTK_LOCK, context=ctx.context_id, in_irq=ctx.in_irq)
    try:
        ctx.kernel.tracepoints.fire("bpf_trace_printk")
    finally:
        lockdep.release(TRACE_PRINTK_LOCK, context=ctx.context_id)
    return fmt_size


def _impl_tail_call(
    ctx: HelperContext, ctx_ptr: int, map_addr: int, index: int
) -> int:
    """``bpf_tail_call`` fallback: the interpreter intercepts the call
    and performs the program switch itself; reaching this body means
    the lookup failed and execution falls through."""
    return -errno.ENOENT


def _impl_prandom(ctx: HelperContext) -> int:
    ctx.kernel.prandom_state = (
        ctx.kernel.prandom_state * 6364136223846793005 + 1442695040888963407
    ) & ((1 << 64) - 1)
    return ctx.kernel.prandom_state >> 33 & 0xFFFFFFFF


def _impl_smp_id(ctx: HelperContext) -> int:
    return 0


def _impl_pid_tgid(ctx: HelperContext) -> int:
    return (4242 << 32) | 4242


def _impl_uid_gid(ctx: HelperContext) -> int:
    return 0


def _impl_get_comm(ctx: HelperContext, buf: int, size: int) -> int:
    if size <= 0:
        return -errno.EINVAL
    comm = b"repro_task\x00"
    data = comm[:size].ljust(size, b"\x00")
    ctx.mem.checked_write_bytes(buf, data, who="get_current_comm")
    return 0


def _impl_get_task(ctx: HelperContext) -> int:
    task = ctx.kernel.btf.object(ctx.kernel.btf.current_task_id)
    return task.address


def _impl_get_task_btf(ctx: HelperContext) -> int:
    return _impl_get_task(ctx)


def _impl_map_push(ctx: HelperContext, map_addr: int, value_ptr: int, flags: int) -> int:
    from repro.errors import MapError

    bpf_map = ctx.map_by_addr(map_addr)
    value = ctx.mem.checked_read_bytes(
        value_ptr, bpf_map.value_size, who="map_push"
    )
    try:
        bpf_map.push(value, flags)
    except MapError as exc:
        return -exc.errno
    except AttributeError:
        return -errno.EINVAL
    return 0


def _impl_map_pop(ctx: HelperContext, map_addr: int, value_ptr: int) -> int:
    from repro.errors import MapError

    bpf_map = ctx.map_by_addr(map_addr)
    try:
        value = bpf_map.pop()
    except MapError as exc:
        return -exc.errno
    except AttributeError:
        return -errno.EINVAL
    ctx.mem.checked_write_bytes(value_ptr, value, who="map_pop")
    return 0


def _impl_map_peek(ctx: HelperContext, map_addr: int, value_ptr: int) -> int:
    from repro.errors import MapError

    bpf_map = ctx.map_by_addr(map_addr)
    try:
        value = bpf_map.peek()
    except MapError as exc:
        return -exc.errno
    except AttributeError:
        return -errno.EINVAL
    ctx.mem.checked_write_bytes(value_ptr, value, who="map_peek")
    return 0


def _impl_spin_lock(ctx: HelperContext, lock_ptr: int) -> int:
    """``bpf_spin_lock``: take the lock embedded in a map value.

    Contention fires ``contention_begin`` first (the Figure-2 re-entry
    vector), then the lock is taken through lockdep so misuse the
    verifier failed to prevent surfaces as indicator #2.
    """
    from repro.kernel.locks import BPF_SPIN_LOCK

    ctx.kernel.tracepoints.fire("contention_begin")
    ctx.kernel.lockdep.acquire(
        BPF_SPIN_LOCK, context=ctx.context_id, in_irq=ctx.in_irq
    )
    ctx.mem.checked_write(lock_ptr, 4, 1, who="spin_lock")
    return 0


def _impl_spin_unlock(ctx: HelperContext, lock_ptr: int) -> int:
    from repro.kernel.locks import BPF_SPIN_LOCK

    ctx.mem.checked_write(lock_ptr, 4, 0, who="spin_unlock")
    ctx.kernel.lockdep.release(BPF_SPIN_LOCK, context=ctx.context_id)
    return 0


def _impl_send_signal(ctx: HelperContext, sig: int) -> int:
    """``bpf_send_signal``: Bug #6's panic site.

    Sending a signal requires taking the task's sighand lock, which is
    fatal from NMI-like contexts.  The fixed verifier refuses the call
    for NMI-context program types; in the flawed kernel the program
    loads and the runtime panics.
    """
    if not 0 < sig < 64:
        return -errno.EINVAL
    if ctx.in_nmi:
        raise KernelPanic(
            "kernel panic: bpf_send_signal from NMI context "
            "(sighand lock in NMI)",
            context={"sig": sig},
        )
    return 0


def _impl_ringbuf_output(
    ctx: HelperContext, map_addr: int, data_ptr: int, size: int, flags: int
) -> int:
    """``bpf_ringbuf_output``: Bug #10's lock misuse lives here.

    The wakeup should be deferred through ``irq_work`` when called from
    irq context; the flawed helper skips the deferral and takes the
    sleeping waitqueue lock inline, which lockdep reports.
    """
    from repro.errors import MapError

    bpf_map = ctx.map_by_addr(map_addr)
    if size <= 0 or size > 4096:
        return -errno.EINVAL
    data = ctx.mem.checked_read_bytes(data_ptr, size, who="ringbuf_output")
    flawed = ctx.config.has_flaw(Flaw.IRQ_WORK_LOCK)
    in_irq = ctx.in_irq and flawed
    # The waitqueue lock is contended: contention_begin fires before
    # the acquisition (Bug #5's re-entry vector).
    ctx.kernel.tracepoints.fire("contention_begin")
    try:
        bpf_map.output(data, in_irq=in_irq)
    except MapError as exc:
        return -exc.errno
    except AttributeError:
        return -errno.EINVAL
    return 0


def _impl_ringbuf_reserve(
    ctx: HelperContext, map_addr: int, size: int, flags: int
) -> int:
    """``bpf_ringbuf_reserve``: hand out a record the program owns.

    The record is a fresh kernel allocation registered with the kernel
    so that submit/discard can resolve it; a full ring (or a bogus
    size) returns NULL, which is why the verifier types the result
    ``OR_NULL`` and demands a null check.
    """
    bpf_map = ctx.map_by_addr(map_addr)
    if size <= 0 or size > 4096 or flags != 0:
        return 0
    if not hasattr(bpf_map, "available") or bpf_map.available() < size:
        return 0
    record = ctx.mem.kzalloc(size, tag="ringbuf_record")
    ctx.kernel.ringbuf_records[record.start] = (record, bpf_map, size)
    return record.start


def _impl_ringbuf_submit(ctx: HelperContext, record_ptr: int, flags: int) -> int:
    """``bpf_ringbuf_submit``: publish and release a reserved record."""
    entry = ctx.kernel.ringbuf_records.pop(record_ptr, None)
    if entry is None:
        # Only reachable past a verifier bug: the runtime refuses.
        return -errno.EINVAL
    record, bpf_map, size = entry
    data = ctx.mem.checked_read_bytes(record.start, size, who="ringbuf_submit")
    from repro.errors import MapError

    try:
        bpf_map.output(data, in_irq=False)
    except MapError:
        pass  # raced to full: the record is dropped, still released
    ctx.mem.kfree(record)
    return 0


def _impl_ringbuf_discard(ctx: HelperContext, record_ptr: int, flags: int) -> int:
    """``bpf_ringbuf_discard``: release a reserved record unpublished."""
    entry = ctx.kernel.ringbuf_records.pop(record_ptr, None)
    if entry is None:
        return -errno.EINVAL
    record, _, _ = entry
    ctx.mem.kfree(record)
    return 0


def _impl_snprintf(
    ctx: HelperContext, out: int, out_size: int, fmt: int, fmt_size: int,
    data: int,
) -> int:
    if out_size <= 0:
        return -errno.EINVAL
    if fmt_size:
        ctx.mem.checked_read_bytes(fmt, fmt_size, who="snprintf-fmt")
    text = b"[repro_snprintf]"[:out_size].ljust(out_size, b"\x00")
    ctx.mem.checked_write_bytes(out, text, who="snprintf")
    return min(len(text), out_size)


def _impl_loop(ctx: HelperContext, nr_loops: int, *rest) -> int:
    # A faithful bpf_loop needs callback verification; we model the
    # iteration count contract only (verifier enforces the bound).
    if nr_loops > 1 << 23:
        return -errno.E2BIG
    return nr_loops


_TRACING_TYPES = frozenset({"kprobe", "tracepoint", "perf_event", "raw_tracepoint"})


def _build_protos() -> dict[int, HelperProto]:
    protos = [
        HelperProto(
            HelperId.MAP_LOOKUP_ELEM,
            "bpf_map_lookup_elem",
            (ArgType.CONST_MAP_PTR, ArgType.PTR_TO_MAP_KEY),
            RetType.PTR_TO_MAP_VALUE_OR_NULL,
            _impl_map_lookup,
            map_types=_KEYED_MAPS,
        ),
        HelperProto(
            HelperId.MAP_UPDATE_ELEM,
            "bpf_map_update_elem",
            (
                ArgType.CONST_MAP_PTR,
                ArgType.PTR_TO_MAP_KEY,
                ArgType.PTR_TO_MAP_VALUE,
                ArgType.ANYTHING,
            ),
            RetType.INTEGER,
            _impl_map_update,
            map_types=_KEYED_MAPS,
        ),
        HelperProto(
            HelperId.MAP_DELETE_ELEM,
            "bpf_map_delete_elem",
            (ArgType.CONST_MAP_PTR, ArgType.PTR_TO_MAP_KEY),
            RetType.INTEGER,
            _impl_map_delete,
            map_types=_DELETE_MAPS,
        ),
        HelperProto(
            HelperId.TAIL_CALL,
            "bpf_tail_call",
            (ArgType.PTR_TO_CTX, ArgType.CONST_MAP_PTR, ArgType.ANYTHING),
            RetType.INTEGER,
            _impl_tail_call,
            map_types=_PROG_ARRAY_MAPS,
        ),
        HelperProto(
            HelperId.PROBE_READ,
            "bpf_probe_read",
            (ArgType.PTR_TO_UNINIT_MEM, ArgType.CONST_SIZE_OR_ZERO, ArgType.ANYTHING),
            RetType.INTEGER,
            _impl_probe_read,
            prog_types=_TRACING_TYPES,
        ),
        HelperProto(
            HelperId.KTIME_GET_NS,
            "bpf_ktime_get_ns",
            (),
            RetType.INTEGER,
            _impl_ktime,
        ),
        HelperProto(
            HelperId.TRACE_PRINTK,
            "bpf_trace_printk",
            (ArgType.PTR_TO_MEM, ArgType.CONST_SIZE),
            RetType.INTEGER,
            _impl_trace_printk,
            acquires_lock=True,
            prog_types=_TRACING_TYPES,
        ),
        HelperProto(
            HelperId.GET_PRANDOM_U32,
            "bpf_get_prandom_u32",
            (),
            RetType.INTEGER,
            _impl_prandom,
        ),
        HelperProto(
            HelperId.GET_SMP_PROCESSOR_ID,
            "bpf_get_smp_processor_id",
            (),
            RetType.INTEGER,
            _impl_smp_id,
        ),
        HelperProto(
            HelperId.GET_CURRENT_PID_TGID,
            "bpf_get_current_pid_tgid",
            (),
            RetType.INTEGER,
            _impl_pid_tgid,
            prog_types=_TRACING_TYPES,
        ),
        HelperProto(
            HelperId.GET_CURRENT_UID_GID,
            "bpf_get_current_uid_gid",
            (),
            RetType.INTEGER,
            _impl_uid_gid,
            prog_types=_TRACING_TYPES,
        ),
        HelperProto(
            HelperId.GET_CURRENT_COMM,
            "bpf_get_current_comm",
            (ArgType.PTR_TO_UNINIT_MEM, ArgType.CONST_SIZE),
            RetType.INTEGER,
            _impl_get_comm,
            prog_types=_TRACING_TYPES,
        ),
        HelperProto(
            HelperId.GET_CURRENT_TASK,
            "bpf_get_current_task",
            (),
            RetType.INTEGER,
            _impl_get_task,
            prog_types=_TRACING_TYPES,
        ),
        HelperProto(
            HelperId.MAP_PUSH_ELEM,
            "bpf_map_push_elem",
            (ArgType.CONST_MAP_PTR, ArgType.PTR_TO_MAP_VALUE, ArgType.ANYTHING),
            RetType.INTEGER,
            _impl_map_push,
            map_types=_QUEUE_STACK_MAPS,
        ),
        HelperProto(
            HelperId.MAP_POP_ELEM,
            "bpf_map_pop_elem",
            (ArgType.CONST_MAP_PTR, ArgType.PTR_TO_UNINIT_MAP_VALUE),
            RetType.INTEGER,
            _impl_map_pop,
            map_types=_QUEUE_STACK_MAPS,
        ),
        HelperProto(
            HelperId.MAP_PEEK_ELEM,
            "bpf_map_peek_elem",
            (ArgType.CONST_MAP_PTR, ArgType.PTR_TO_UNINIT_MAP_VALUE),
            RetType.INTEGER,
            _impl_map_peek,
            map_types=_QUEUE_STACK_MAPS,
        ),
        HelperProto(
            HelperId.SPIN_LOCK,
            "bpf_spin_lock",
            (ArgType.PTR_TO_SPIN_LOCK,),
            RetType.VOID,
            _impl_spin_lock,
            acquires_lock=True,
        ),
        HelperProto(
            HelperId.SPIN_UNLOCK,
            "bpf_spin_unlock",
            (ArgType.PTR_TO_SPIN_LOCK,),
            RetType.VOID,
            _impl_spin_unlock,
        ),
        HelperProto(
            HelperId.SEND_SIGNAL,
            "bpf_send_signal",
            (ArgType.ANYTHING,),
            RetType.INTEGER,
            _impl_send_signal,
            nmi_unsafe=True,
            prog_types=_TRACING_TYPES,
        ),
        HelperProto(
            HelperId.PROBE_READ_KERNEL,
            "bpf_probe_read_kernel",
            (ArgType.PTR_TO_UNINIT_MEM, ArgType.CONST_SIZE_OR_ZERO, ArgType.ANYTHING),
            RetType.INTEGER,
            _impl_probe_read,
            prog_types=_TRACING_TYPES,
        ),
        HelperProto(
            HelperId.RINGBUF_OUTPUT,
            "bpf_ringbuf_output",
            (
                ArgType.CONST_MAP_PTR,
                ArgType.PTR_TO_MEM,
                ArgType.CONST_SIZE,
                ArgType.ANYTHING,
            ),
            RetType.INTEGER,
            _impl_ringbuf_output,
            acquires_lock=True,
            map_types=_RINGBUF_MAPS,
        ),
        HelperProto(
            HelperId.RINGBUF_RESERVE,
            "bpf_ringbuf_reserve",
            (ArgType.CONST_MAP_PTR, ArgType.CONST_ALLOC_SIZE, ArgType.ANYTHING),
            RetType.PTR_TO_ALLOC_MEM_OR_NULL,
            _impl_ringbuf_reserve,
            acquires_ref=True,
            map_types=_RINGBUF_MAPS,
        ),
        HelperProto(
            HelperId.RINGBUF_SUBMIT,
            "bpf_ringbuf_submit",
            (ArgType.PTR_TO_ALLOC_MEM, ArgType.ANYTHING),
            RetType.VOID,
            _impl_ringbuf_submit,
            releases_ref=True,
        ),
        HelperProto(
            HelperId.RINGBUF_DISCARD,
            "bpf_ringbuf_discard",
            (ArgType.PTR_TO_ALLOC_MEM, ArgType.ANYTHING),
            RetType.VOID,
            _impl_ringbuf_discard,
            releases_ref=True,
        ),
        HelperProto(
            HelperId.GET_CURRENT_TASK_BTF,
            "bpf_get_current_task_btf",
            (),
            RetType.PTR_TO_BTF_ID,
            _impl_get_task_btf,
            prog_types=_TRACING_TYPES,
            requires_btf=True,
        ),
        HelperProto(
            HelperId.SNPRINTF,
            "bpf_snprintf",
            (
                ArgType.PTR_TO_UNINIT_MEM,
                ArgType.CONST_SIZE,
                ArgType.PTR_TO_MEM,
                ArgType.CONST_SIZE_OR_ZERO,
                ArgType.ANYTHING,
            ),
            RetType.INTEGER,
            _impl_snprintf,
        ),
        HelperProto(
            HelperId.LOOP,
            "bpf_loop",
            (ArgType.ANYTHING, ArgType.ANYTHING, ArgType.ANYTHING, ArgType.ANYTHING),
            RetType.INTEGER,
            _impl_loop,
        ),
    ]
    return {int(p.helper_id): p for p in protos}


class HelperRegistry:
    """Per-kernel helper table filtered by the version's feature set."""

    def __init__(self, config: KernelConfig) -> None:
        self.config = config
        self._protos = dict(_build_protos())
        if not config.has_btf_access:
            self._protos.pop(int(HelperId.GET_CURRENT_TASK_BTF), None)
        if not config.has_bpf_loop:
            self._protos.pop(int(HelperId.LOOP), None)
            self._protos.pop(int(HelperId.SNPRINTF), None)

    def get(self, helper_id: int) -> HelperProto | None:
        return self._protos.get(helper_id)

    def ids(self) -> list[int]:
        return sorted(self._protos)

    def ids_for_prog_type(self, prog_type: str) -> list[int]:
        """Helper ids callable from programs of the given type."""
        result = []
        for hid, proto in self._protos.items():
            if proto.prog_types is None or prog_type in proto.prog_types:
                result.append(hid)
        return sorted(result)

    def lock_acquiring_ids(self) -> frozenset[int]:
        return frozenset(
            hid for hid, p in self._protos.items() if p.acquires_lock
        )
