"""eBPF disassembler / pretty printer.

Formats instructions in the C-like syntax used by ``bpftool`` and the
verifier log (``r0 = *(u64 *)(r10 -8)``), which is also the syntax the
paper's listings use.  The output is consumed by the verifier log, bug
reports, and the triage tooling, so keeping it close to the kernel's
format makes reproduced reports directly comparable with the paper.
"""

from __future__ import annotations

from typing import Sequence

from repro.ebpf.insn import Insn
from repro.ebpf.opcodes import (
    AluOp,
    AtomicOp,
    InsnClass,
    JmpOp,
    Mode,
    PseudoCall,
    PseudoSrc,
    Size,
    Src,
    SIZE_BYTES,
)

__all__ = ["format_insn", "format_program", "size_cast"]

_ALU_SYMBOL = {
    AluOp.ADD: "+=",
    AluOp.SUB: "-=",
    AluOp.MUL: "*=",
    AluOp.DIV: "/=",
    AluOp.OR: "|=",
    AluOp.AND: "&=",
    AluOp.LSH: "<<=",
    AluOp.RSH: ">>=",
    AluOp.MOD: "%=",
    AluOp.XOR: "^=",
    AluOp.MOV: "=",
    AluOp.ARSH: "s>>=",
}

_JMP_SYMBOL = {
    JmpOp.JEQ: "==",
    JmpOp.JGT: ">",
    JmpOp.JGE: ">=",
    JmpOp.JSET: "&",
    JmpOp.JNE: "!=",
    JmpOp.JSGT: "s>",
    JmpOp.JSGE: "s>=",
    JmpOp.JLT: "<",
    JmpOp.JLE: "<=",
    JmpOp.JSLT: "s<",
    JmpOp.JSLE: "s<=",
}

_SIZE_NAME = {Size.B: "u8", Size.H: "u16", Size.W: "u32", Size.DW: "u64"}
_SIZE_NAME_SX = {Size.B: "s8", Size.H: "s16", Size.W: "s32"}

_ATOMIC_NAME = {
    AtomicOp.ADD: "add",
    AtomicOp.OR: "or",
    AtomicOp.AND: "and",
    AtomicOp.XOR: "xor",
    AtomicOp.ADD | AtomicOp.FETCH: "fetch_add",
    AtomicOp.OR | AtomicOp.FETCH: "fetch_or",
    AtomicOp.AND | AtomicOp.FETCH: "fetch_and",
    AtomicOp.XOR | AtomicOp.FETCH: "fetch_xor",
    AtomicOp.XCHG: "xchg",
    AtomicOp.CMPXCHG: "cmpxchg",
}

_PSEUDO_LD = {
    PseudoSrc.RAW: "0x{value:x}",
    PseudoSrc.MAP_FD: "map_fd[{value}]",
    PseudoSrc.MAP_VALUE: "map_value[{fd}]+{off}",
    PseudoSrc.BTF_ID: "btf_id[{value}]",
    PseudoSrc.FUNC: "subprog[{value}]",
    PseudoSrc.MAP_IDX: "map_idx[{value}]",
    PseudoSrc.MAP_IDX_VALUE: "map_idx_value[{value}]",
}


def size_cast(insn: Insn) -> str:
    """The C cast string for a memory access, e.g. ``u64`` or ``s16``."""
    if insn.mode == Mode.MEMSX:
        return _SIZE_NAME_SX.get(insn.size, "s?")
    return _SIZE_NAME[insn.size]


def _reg(index: int) -> str:
    return "ax" if index == 11 else f"r{index}"


def _off_str(off: int) -> str:
    return f"{off:+d}" if off else "+0"


def _format_alu(insn: Insn) -> str:
    wide = insn.insn_class == InsnClass.ALU64
    dst = _reg(insn.dst) if wide else f"w{insn.dst}"
    if insn.alu_op == AluOp.NEG:
        return f"{dst} = -{dst}"
    if insn.alu_op == AluOp.END:
        direction = "be" if insn.src_bit == Src.X else "le"
        return f"{dst} = {direction}{insn.imm} {dst}"
    sym = _ALU_SYMBOL[insn.alu_op]
    if insn.src_bit == Src.X:
        src = _reg(insn.src) if wide else f"w{insn.src}"
        return f"{dst} {sym} {src}"
    return f"{dst} {sym} {insn.imm}"


def _format_jmp(insn: Insn) -> str:
    if insn.jmp_op == JmpOp.JA:
        return f"goto {_off_str(insn.off)}"
    if insn.jmp_op == JmpOp.EXIT:
        return "exit"
    if insn.jmp_op == JmpOp.CALL:
        kind = PseudoCall(insn.src)
        if kind == PseudoCall.HELPER:
            return f"call helper#{insn.imm}"
        if kind == PseudoCall.KFUNC:
            return f"call kfunc#{insn.imm}"
        return f"call pc{insn.imm:+d}"
    wide = insn.insn_class == InsnClass.JMP
    dst = _reg(insn.dst) if wide else f"w{insn.dst}"
    sym = _JMP_SYMBOL[insn.jmp_op]
    if insn.src_bit == Src.X:
        rhs = _reg(insn.src) if wide else f"w{insn.src}"
    else:
        rhs = str(insn.imm)
    return f"if {dst} {sym} {rhs} goto {_off_str(insn.off)}"


def _format_mem(insn: Insn) -> str:
    cast = size_cast(insn)
    if insn.insn_class == InsnClass.LDX:
        return (
            f"{_reg(insn.dst)} = *({cast} *)({_reg(insn.src)} "
            f"{_off_str(insn.off)})"
        )
    if insn.insn_class == InsnClass.ST:
        return f"*({cast} *)({_reg(insn.dst)} {_off_str(insn.off)}) = {insn.imm}"
    if insn.mode == Mode.ATOMIC:
        name = _ATOMIC_NAME.get(insn.imm, f"atomic#{insn.imm:#x}")
        return (
            f"lock {name} *({cast} *)({_reg(insn.dst)} "
            f"{_off_str(insn.off)}), {_reg(insn.src)}"
        )
    return (
        f"*({cast} *)({_reg(insn.dst)} {_off_str(insn.off)}) = "
        f"{_reg(insn.src)}"
    )


def _format_ld(insn: Insn) -> str:
    if insn.is_ld_imm64():
        kind = insn.pseudo_src()
        template = _PSEUDO_LD.get(kind, "0x{value:x}")
        text = template.format(
            value=insn.imm64,
            fd=insn.imm64 & 0xFFFFFFFF,
            off=insn.imm64 >> 32,
        )
        return f"{_reg(insn.dst)} = {text} ll"
    # Legacy packet access (ABS/IND); kept for completeness.
    cast = _SIZE_NAME[insn.size]
    if insn.mode == Mode.ABS:
        return f"r0 = *({cast} *)skb[{insn.imm}]"
    if insn.mode == Mode.IND:
        return f"r0 = *({cast} *)skb[{_reg(insn.src)} + {insn.imm}]"
    return f"ld?{insn.opcode:#04x}"


def format_insn(insn: Insn) -> str:
    """Disassemble one slot-form instruction into kernel-log syntax."""
    if insn.is_filler():
        return f"(ld_imm64 high half: {insn.imm:#x})"
    cls = insn.insn_class
    if cls in (InsnClass.ALU, InsnClass.ALU64):
        return _format_alu(insn)
    if cls in (InsnClass.JMP, InsnClass.JMP32):
        return _format_jmp(insn)
    if cls == InsnClass.LD:
        return _format_ld(insn)
    return _format_mem(insn)


def format_program(insns: Sequence[Insn]) -> str:
    """Disassemble a whole program, one numbered line per slot."""
    lines = []
    skip = False
    for idx, insn in enumerate(insns):
        if skip:
            skip = False
            continue
        lines.append(f"{idx:4d}: {format_insn(insn)}")
        if insn.is_ld_imm64():
            skip = True
    return "\n".join(lines)
