"""kfuncs — kernel functions exported to eBPF via BTF ids.

kfuncs are the newer, BTF-typed cousins of helpers; the verifier
resolves the call by BTF id and checks arguments against the kernel
function's BTF prototype.  Bug #3 (incorrect check on kfunc call
operations) lives in the *verifier's* handling of these calls, not in
the kfuncs themselves: the flawed verifier fails to invalidate stale
scalar knowledge of R0 across the call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.ebpf.helpers import ArgType, HelperContext

__all__ = ["KfuncProto", "KFUNCS", "KFUNC_RAND", "KFUNC_TASK_PID", "KFUNC_GET_TASK"]

KFUNC_RAND = 9001
KFUNC_TASK_PID = 9002
KFUNC_GET_TASK = 9003


@dataclass(frozen=True)
class KfuncProto:
    """A kfunc's BTF-derived prototype and its implementation."""

    btf_id: int
    name: str
    args: tuple[ArgType, ...]
    #: 'scalar' or 'btf:<type>' for typed pointer returns
    ret: str
    impl: Callable[..., int]


def _impl_rand(ctx: HelperContext) -> int:
    ctx.kernel.prandom_state = (
        ctx.kernel.prandom_state * 2862933555777941757 + 3037000493
    ) & ((1 << 64) - 1)
    return ctx.kernel.prandom_state


def _impl_task_pid(ctx: HelperContext, task_ptr: int) -> int:
    if task_ptr == 0:
        return -1
    return ctx.mem.checked_read(task_ptr + 32, 4, who="kfunc_task_pid")


def _impl_get_task(ctx: HelperContext) -> int:
    task = ctx.kernel.btf.object(ctx.kernel.btf.current_task_id)
    return task.address


KFUNCS: dict[int, KfuncProto] = {
    KFUNC_RAND: KfuncProto(
        KFUNC_RAND, "bpf_repro_rand", (), "scalar", _impl_rand
    ),
    KFUNC_TASK_PID: KfuncProto(
        KFUNC_TASK_PID,
        "bpf_repro_task_pid",
        (ArgType.PTR_TO_BTF_ID,),
        "scalar",
        _impl_task_pid,
    ),
    KFUNC_GET_TASK: KfuncProto(
        KFUNC_GET_TASK, "bpf_repro_get_task", (), "btf:task_struct", _impl_get_task
    ),
}
