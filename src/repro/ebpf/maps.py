"""eBPF map data structures backed by simulated kernel memory.

Maps are the main data plane between eBPF programs, the kernel, and
user space.  Their values live in :class:`~repro.kernel.kasan.KernelMemory`
allocations, so a verifier correctness bug that admits an out-of-bounds
access into a map value is *physically* out of bounds here — silently
corrupting neighbouring arena bytes on the raw (JIT) path and trapping
on the checked (sanitized) path, exactly as in the paper.

Layout realism that matters to the oracle:

- **Array maps** store all values in one contiguous allocation, like
  the kernel: overflowing one element into the next is silent even
  under KASAN, but overflowing the whole array hits the redzone.
- **Hash maps** allocate each element separately, like the kernel:
  any overflow of a value leaves the allocation and is detectable.
- Hash maps carry a real bucket array whose iteration hosts Bug #9.
"""

from __future__ import annotations

import enum
import errno

from repro.errors import MapError
from repro.kernel.config import Flaw, KernelConfig
from repro.kernel.kasan import Allocation, KernelMemory
from repro.kernel.lockdep import Lockdep
from repro.kernel.locks import HTAB_BUCKET_LOCK, RINGBUF_LOCK

__all__ = [
    "MapType",
    "MapFlags",
    "BpfMap",
    "ArrayMap",
    "HashMap",
    "QueueMap",
    "StackMap",
    "RingbufMap",
    "create_map",
]


class MapType(enum.IntEnum):
    """Map type ids (subset of ``enum bpf_map_type``)."""

    HASH = 1
    ARRAY = 2
    PROG_ARRAY = 3
    PERCPU_HASH = 5
    PERCPU_ARRAY = 6
    LRU_HASH = 9
    QUEUE = 22
    STACK = 23
    RINGBUF = 27


class MapFlags(enum.IntEnum):
    """Update flags for ``map_update_elem``."""

    ANY = 0
    NOEXIST = 1
    EXIST = 2


def _round_up_pow2(n: int) -> int:
    result = 1
    while result < n:
        result *= 2
    return result


class BpfMap:
    """Common map behaviour: parameter validation and value access.

    Subclasses implement the four classic operations.  ``lookup``
    returns the *kernel address* of the value (what the real
    ``bpf_map_lookup_elem`` helper returns to programs); the syscall
    layer copies bytes in and out on behalf of user space.
    """

    map_type: MapType

    #: byte offset and size of the embedded bpf_spin_lock, when present
    SPIN_LOCK_OFF = 0
    SPIN_LOCK_SIZE = 4
    #: class default for subclasses that bypass the base initialiser
    has_spin_lock = False

    def __init__(
        self,
        mem: KernelMemory,
        key_size: int,
        value_size: int,
        max_entries: int,
        lockdep: Lockdep | None = None,
        config: KernelConfig | None = None,
        has_spin_lock: bool = False,
    ) -> None:
        self.validate_params(key_size, value_size, max_entries)
        if has_spin_lock and value_size < self.SPIN_LOCK_SIZE:
            raise MapError(
                errno.EINVAL, "value too small for an embedded spin lock"
            )
        self.mem = mem
        self.key_size = key_size
        self.value_size = value_size
        self.max_entries = max_entries
        self.lockdep = lockdep
        self.config = config
        self.has_spin_lock = has_spin_lock
        self.fd = -1  # assigned by the syscall layer

    # --- parameter validation ---------------------------------------------

    @classmethod
    def validate_params(cls, key_size: int, value_size: int, max_entries: int) -> None:
        if key_size <= 0 or key_size > 512:
            raise MapError(errno.EINVAL, f"invalid key_size {key_size}")
        if value_size <= 0 or value_size > 1 << 20:
            raise MapError(errno.EINVAL, f"invalid value_size {value_size}")
        if max_entries <= 0 or max_entries > 1 << 20:
            raise MapError(errno.EINVAL, f"invalid max_entries {max_entries}")

    def _check_key(self, key: bytes) -> None:
        if len(key) != self.key_size:
            raise MapError(
                errno.EINVAL,
                f"key size {len(key)} != map key_size {self.key_size}",
            )

    def _check_value(self, value: bytes) -> None:
        if len(value) != self.value_size:
            raise MapError(
                errno.EINVAL,
                f"value size {len(value)} != map value_size {self.value_size}",
            )

    # --- operations (overridden) ---------------------------------------------

    def lookup(self, key: bytes) -> int | None:
        """Kernel address of the value for ``key``, or None."""
        raise NotImplementedError

    def update(self, key: bytes, value: bytes, flags: int = MapFlags.ANY) -> None:
        raise NotImplementedError

    def delete(self, key: bytes) -> None:
        raise NotImplementedError

    def get_next_key(self, key: bytes | None) -> bytes:
        """Iteration primitive behind ``bpf_map_get_next_key``."""
        raise NotImplementedError

    # --- shared helpers ----------------------------------------------------------

    def read_value(self, key: bytes) -> bytes | None:
        """Copy the value bytes out (syscall-side convenience)."""
        addr = self.lookup(key)
        if addr is None:
            return None
        return self.mem.checked_read_bytes(addr, self.value_size, who="map-read")

    def value_allocation(self, key: bytes) -> Allocation | None:
        addr = self.lookup(key)
        if addr is None:
            return None
        return self.mem.find_allocation(addr)


class ArrayMap(BpfMap):
    """BPF_MAP_TYPE_ARRAY: u32 keys, one contiguous value region."""

    map_type = MapType.ARRAY

    def __init__(self, mem, key_size, value_size, max_entries, **kwargs) -> None:
        if key_size != 4:
            raise MapError(errno.EINVAL, "array map key_size must be 4")
        super().__init__(mem, key_size, value_size, max_entries, **kwargs)
        self._values = mem.kzalloc(
            value_size * max_entries, tag=f"array_map[{max_entries}x{value_size}]"
        )

    def _index(self, key: bytes) -> int:
        self._check_key(key)
        return int.from_bytes(key, "little")

    def lookup(self, key: bytes) -> int | None:
        index = self._index(key)
        if index >= self.max_entries:
            return None
        return self._values.start + index * self.value_size

    def update(self, key: bytes, value: bytes, flags: int = MapFlags.ANY) -> None:
        self._check_value(value)
        index = self._index(key)
        if index >= self.max_entries:
            raise MapError(errno.E2BIG, f"array index {index} out of range")
        if flags == MapFlags.NOEXIST:
            raise MapError(errno.EEXIST, "array elements always exist")
        addr = self._values.start + index * self.value_size
        self.mem.checked_write_bytes(addr, value, who="array-update")

    def delete(self, key: bytes) -> None:
        raise MapError(errno.EINVAL, "array map elements cannot be deleted")

    def get_next_key(self, key: bytes | None) -> bytes:
        index = -1 if key is None else self._index(key)
        nxt = index + 1
        if nxt >= self.max_entries:
            raise MapError(errno.ENOENT, "iteration finished")
        return nxt.to_bytes(4, "little")


class HashMap(BpfMap):
    """BPF_MAP_TYPE_HASH: per-element allocations and a bucket array.

    The bucket array exists so Bug #9 has something real to overflow:
    in the flawed lock-acquire-failure path of ``get_next_key`` the
    iterator walks one bucket past the end, and since map code is
    "compiled with KASAN" (checked path) that read traps.
    """

    map_type = MapType.HASH

    def __init__(self, mem, key_size, value_size, max_entries, **kwargs) -> None:
        super().__init__(mem, key_size, value_size, max_entries, **kwargs)
        self.n_buckets = _round_up_pow2(max_entries)
        self._buckets = mem.kzalloc(8 * self.n_buckets, tag="htab_buckets")
        self._elems: dict[bytes, Allocation] = {}

    def _bucket_of(self, key: bytes) -> int:
        # Deterministic, cheap hash; distribution quality is irrelevant.
        h = 2166136261
        for b in key:
            h = ((h ^ b) * 16777619) & 0xFFFFFFFF
        return h & (self.n_buckets - 1)

    def lookup(self, key: bytes) -> int | None:
        self._check_key(key)
        alloc = self._elems.get(key)
        return alloc.start if alloc else None

    def update(self, key: bytes, value: bytes, flags: int = MapFlags.ANY) -> None:
        self._check_key(key)
        self._check_value(value)
        exists = key in self._elems
        if flags == MapFlags.NOEXIST and exists:
            raise MapError(errno.EEXIST, "key already exists")
        if flags == MapFlags.EXIST and not exists:
            raise MapError(errno.ENOENT, "key does not exist")
        if not exists:
            if len(self._elems) >= self.max_entries:
                raise MapError(errno.E2BIG, "hash map is full")
            alloc = self.mem.kmalloc(self.value_size, tag="htab_elem")
            self._elems[key] = alloc
        self.mem.checked_write_bytes(
            self._elems[key].start, value, who="htab-update"
        )

    def delete(self, key: bytes) -> None:
        self._check_key(key)
        alloc = self._elems.pop(key, None)
        if alloc is None:
            raise MapError(errno.ENOENT, "key does not exist")
        self.mem.kfree(alloc)

    def get_next_key(self, key: bytes | None) -> bytes:
        if key is not None:
            self._check_key(key)
        keys = sorted(self._elems)
        if not keys:
            raise MapError(errno.ENOENT, "map is empty")
        if key is None or key not in self._elems:
            return keys[0]

        self._maybe_trigger_bucket_bug(key)

        idx = keys.index(key)
        if idx + 1 >= len(keys):
            raise MapError(errno.ENOENT, "iteration finished")
        return keys[idx + 1]

    def _maybe_trigger_bucket_bug(self, key: bytes) -> None:
        """Bug #9: bucket-lock trylock failure path walks off the end.

        The flawed kernel, upon failing to take the last bucket's lock,
        retries from ``bucket + 1`` without the bounds check — reading
        the (nonexistent) bucket ``n_buckets``.  We model trylock
        failure as iterating from the last bucket while it is occupied.
        """
        if self.config is None or not self.config.has_flaw(Flaw.MAP_BUCKET_ITER):
            return
        bucket = self._bucket_of(key)
        if bucket != self.n_buckets - 1:
            return
        if self.lockdep is not None:
            self.lockdep.acquire(HTAB_BUCKET_LOCK)
            self.lockdep.release(HTAB_BUCKET_LOCK)
        # Off-by-one bucket read: one u64 past the bucket array.
        self.mem.checked_read(
            self._buckets.start + 8 * self.n_buckets, 8, who="htab-iter"
        )


class ProgArrayMap(ArrayMap):
    """BPF_MAP_TYPE_PROG_ARRAY: tail-call targets by index.

    Values are program file descriptors (u32).  Programs cannot read or
    write the values directly — the only program-side consumer is the
    ``bpf_tail_call`` helper; user space populates it through the
    ordinary update path.
    """

    map_type = MapType.PROG_ARRAY

    def __init__(self, mem, key_size, value_size, max_entries, **kwargs) -> None:
        if value_size != 4:
            raise MapError(errno.EINVAL, "prog array value_size must be 4")
        super().__init__(mem, key_size, value_size, max_entries, **kwargs)

    def prog_fd_at(self, index: int) -> int | None:
        """The program fd stored at ``index`` (0 means empty slot)."""
        if index >= self.max_entries:
            return None
        addr = self._values.start + index * self.value_size
        fd = self.mem.checked_read(addr, 4, who="prog-array")
        return fd or None


class LruHashMap(HashMap):
    """BPF_MAP_TYPE_LRU_HASH: hash map that evicts instead of filling up."""

    map_type = MapType.LRU_HASH

    def update(self, key: bytes, value: bytes, flags: int = MapFlags.ANY) -> None:
        if key not in self._elems and len(self._elems) >= self.max_entries:
            # Evict the oldest element (insertion order approximates LRU
            # closely enough for program-visible semantics).
            victim = next(iter(self._elems))
            self.delete(victim)
        super().update(key, value, flags)


class QueueMap(BpfMap):
    """BPF_MAP_TYPE_QUEUE: FIFO of values, no keys."""

    map_type = MapType.QUEUE

    def __init__(self, mem, key_size, value_size, max_entries, **kwargs) -> None:
        # The kernel requires key_size == 0 for queue/stack; our base
        # validation demands positive sizes, so bypass via sentinel.
        if key_size != 0:
            raise MapError(errno.EINVAL, "queue map key_size must be 0")
        BpfMap.validate_params(4, value_size, max_entries)
        self.mem = mem
        self.key_size = 0
        self.value_size = value_size
        self.max_entries = max_entries
        self.lockdep = kwargs.get("lockdep")
        self.config = kwargs.get("config")
        self.fd = -1
        self._items: list[Allocation] = []

    def push(self, value: bytes, flags: int = MapFlags.ANY) -> None:
        self._check_value(value)
        if len(self._items) >= self.max_entries:
            raise MapError(errno.E2BIG, "queue is full")
        alloc = self.mem.kmalloc(self.value_size, tag="queue_elem")
        self.mem.checked_write_bytes(alloc.start, value, who="queue-push")
        self._items.append(alloc)

    def pop(self) -> bytes:
        if not self._items:
            raise MapError(errno.ENOENT, "queue is empty")
        alloc = self._take()
        data = self.mem.checked_read_bytes(
            alloc.start, self.value_size, who="queue-pop"
        )
        self.mem.kfree(alloc)
        return data

    def peek(self) -> bytes:
        if not self._items:
            raise MapError(errno.ENOENT, "queue is empty")
        alloc = self._items[0]
        return self.mem.checked_read_bytes(
            alloc.start, self.value_size, who="queue-peek"
        )

    def _take(self) -> Allocation:
        return self._items.pop(0)

    # Queue/stack maps do not support the keyed operations.
    def lookup(self, key: bytes) -> int | None:
        raise MapError(errno.EINVAL, "queue map has no keyed lookup")

    def update(self, key: bytes, value: bytes, flags: int = MapFlags.ANY) -> None:
        raise MapError(errno.EINVAL, "queue map has no keyed update")

    def delete(self, key: bytes) -> None:
        raise MapError(errno.EINVAL, "queue map has no keyed delete")

    def get_next_key(self, key: bytes | None) -> bytes:
        raise MapError(errno.EINVAL, "queue map is not iterable")


class StackMap(QueueMap):
    """BPF_MAP_TYPE_STACK: LIFO variant of the queue map."""

    map_type = MapType.STACK

    def _take(self) -> Allocation:
        return self._items.pop()

    def peek(self) -> bytes:
        if not self._items:
            raise MapError(errno.ENOENT, "stack is empty")
        alloc = self._items[-1]
        return self.mem.checked_read_bytes(
            alloc.start, self.value_size, who="stack-peek"
        )


class RingbufMap(BpfMap):
    """BPF_MAP_TYPE_RINGBUF: byte ring buffer with a reserve/commit API.

    The wakeup path takes :data:`RINGBUF_LOCK` — a sleeping lock.
    Bug #10's helper queues the wakeup via ``irq_work`` incorrectly and
    ends up acquiring it in irq context, which our lockdep flags.
    """

    map_type = MapType.RINGBUF

    def __init__(self, mem, key_size, value_size, max_entries, **kwargs) -> None:
        if key_size != 0 or value_size != 0:
            raise MapError(errno.EINVAL, "ringbuf key/value sizes must be 0")
        if max_entries & (max_entries - 1):
            raise MapError(errno.EINVAL, "ringbuf size must be a power of two")
        self.mem = mem
        self.key_size = 0
        self.value_size = 0
        self.max_entries = max_entries
        self.lockdep = kwargs.get("lockdep")
        self.config = kwargs.get("config")
        self.fd = -1
        self._data = mem.kzalloc(max_entries, tag="ringbuf_data")
        self._head = 0
        self._tail = 0

    def available(self) -> int:
        return self.max_entries - (self._head - self._tail)

    def output(self, data: bytes, in_irq: bool = False) -> None:
        """Copy a record in and wake consumers (takes the sleeping lock)."""
        if len(data) > self.available():
            raise MapError(errno.EAGAIN, "ringbuf is full")
        pos = self._head % self.max_entries
        first = min(len(data), self.max_entries - pos)
        self.mem.checked_write_bytes(
            self._data.start + pos, data[:first], who="ringbuf-output"
        )
        if first < len(data):
            self.mem.checked_write_bytes(
                self._data.start, data[first:], who="ringbuf-output"
            )
        self._head += len(data)
        if self.lockdep is not None:
            self.lockdep.acquire(RINGBUF_LOCK, in_irq=in_irq)
            self.lockdep.release(RINGBUF_LOCK)

    def consume(self, size: int) -> bytes:
        size = min(size, self._head - self._tail)
        pos = self._tail % self.max_entries
        first = min(size, self.max_entries - pos)
        data = self.mem.checked_read_bytes(
            self._data.start + pos, first, who="ringbuf-consume"
        )
        if first < size:
            data += self.mem.checked_read_bytes(
                self._data.start, size - first, who="ringbuf-consume"
            )
        self._tail += size
        return data

    def lookup(self, key: bytes) -> int | None:
        raise MapError(errno.EINVAL, "ringbuf has no keyed lookup")

    def update(self, key: bytes, value: bytes, flags: int = MapFlags.ANY) -> None:
        raise MapError(errno.EINVAL, "ringbuf has no keyed update")

    def delete(self, key: bytes) -> None:
        raise MapError(errno.EINVAL, "ringbuf has no keyed delete")

    def get_next_key(self, key: bytes | None) -> bytes:
        raise MapError(errno.EINVAL, "ringbuf is not iterable")


_MAP_CLASSES: dict[MapType, type[BpfMap]] = {
    MapType.HASH: HashMap,
    MapType.ARRAY: ArrayMap,
    MapType.PROG_ARRAY: ProgArrayMap,
    MapType.PERCPU_HASH: HashMap,
    MapType.PERCPU_ARRAY: ArrayMap,
    MapType.LRU_HASH: LruHashMap,
    MapType.QUEUE: QueueMap,
    MapType.STACK: StackMap,
    MapType.RINGBUF: RingbufMap,
}


#: Map types that may embed a bpf_spin_lock in their values.
_SPIN_LOCK_CAPABLE = frozenset({MapType.HASH, MapType.ARRAY, MapType.LRU_HASH})


def create_map(
    mem: KernelMemory,
    map_type: MapType,
    key_size: int,
    value_size: int,
    max_entries: int,
    lockdep: Lockdep | None = None,
    config: KernelConfig | None = None,
    has_spin_lock: bool = False,
) -> BpfMap:
    """Factory mirroring ``BPF_MAP_CREATE``; raises EINVAL on bad params."""
    try:
        cls = _MAP_CLASSES[MapType(map_type)]
    except (ValueError, KeyError):
        raise MapError(errno.EINVAL, f"unsupported map type {map_type}") from None
    if has_spin_lock and MapType(map_type) not in _SPIN_LOCK_CAPABLE:
        raise MapError(
            errno.EINVAL, f"map type {map_type} cannot hold a spin lock"
        )
    if has_spin_lock:
        return cls(
            mem, key_size, value_size, max_entries,
            lockdep=lockdep, config=config, has_spin_lock=True,
        )
    return cls(
        mem, key_size, value_size, max_entries, lockdep=lockdep, config=config
    )
