"""eBPF opcode encoding tables.

The eBPF instruction set encodes each instruction's operation in a
single opcode byte whose low three bits select the *instruction class*.
For ALU/ALU64/JMP/JMP32 classes the remaining bits hold a 4-bit
operation code and a 1-bit source selector (register vs. immediate).
For LD/LDX/ST/STX classes they hold a 2-bit access size and a 3-bit
addressing mode.  This module mirrors the layout used by the Linux
kernel (``include/uapi/linux/bpf.h``) so that encoded programs are
byte-compatible with real eBPF bytecode.
"""

from __future__ import annotations

import enum

__all__ = [
    "InsnClass",
    "AluOp",
    "JmpOp",
    "Size",
    "Mode",
    "Src",
    "Reg",
    "AtomicOp",
    "PseudoSrc",
    "PseudoCall",
    "SIZE_BYTES",
    "BYTES_TO_SIZE",
    "opcode",
    "insn_class",
    "is_alu_class",
    "is_jmp_class",
    "is_ldst_class",
    "MAX_INSNS",
    "STACK_SIZE",
]

#: Maximum number of instructions in one (privileged) eBPF program.
MAX_INSNS = 1_000_000

#: Size of the per-program stack in bytes (fixed by the kernel ABI).
STACK_SIZE = 512


class InsnClass(enum.IntEnum):
    """Low three bits of the opcode: the instruction class."""

    LD = 0x00  # non-standard loads (64-bit immediate, legacy packet)
    LDX = 0x01  # load from memory into register
    ST = 0x02  # store immediate to memory
    STX = 0x03  # store register to memory
    ALU = 0x04  # 32-bit arithmetic
    JMP = 0x05  # 64-bit compare-and-jump, call, exit
    JMP32 = 0x06  # 32-bit compare-and-jump
    ALU64 = 0x07  # 64-bit arithmetic


class AluOp(enum.IntEnum):
    """High four bits of the opcode for ALU/ALU64 classes."""

    ADD = 0x00
    SUB = 0x10
    MUL = 0x20
    DIV = 0x30
    OR = 0x40
    AND = 0x50
    LSH = 0x60
    RSH = 0x70
    NEG = 0x80
    MOD = 0x90
    XOR = 0xA0
    MOV = 0xB0
    ARSH = 0xC0
    END = 0xD0  # byte-swap (endianness conversion)
    UNDEF_E0 = 0xE0  # reserved encoding (rejected by the verifier)
    UNDEF_F0 = 0xF0  # reserved encoding (rejected by the verifier)


class JmpOp(enum.IntEnum):
    """High four bits of the opcode for JMP/JMP32 classes."""

    JA = 0x00  # unconditional jump (JMP class only)
    JEQ = 0x10
    JGT = 0x20  # unsigned >
    JGE = 0x30  # unsigned >=
    JSET = 0x40  # bitwise and-test
    JNE = 0x50
    JSGT = 0x60  # signed >
    JSGE = 0x70  # signed >=
    CALL = 0x80  # helper / kfunc / bpf-to-bpf call (JMP class only)
    EXIT = 0x90  # program exit (JMP class only)
    JLT = 0xA0  # unsigned <
    JLE = 0xB0  # unsigned <=
    JSLT = 0xC0  # signed <
    JSLE = 0xD0  # signed <=
    UNDEF_E0 = 0xE0  # reserved encoding (rejected by the verifier)
    UNDEF_F0 = 0xF0  # reserved encoding (rejected by the verifier)


#: Conditional jump operations (operate on a register pair or reg/imm).
CONDITIONAL_JMP_OPS = (
    JmpOp.JEQ,
    JmpOp.JGT,
    JmpOp.JGE,
    JmpOp.JSET,
    JmpOp.JNE,
    JmpOp.JSGT,
    JmpOp.JSGE,
    JmpOp.JLT,
    JmpOp.JLE,
    JmpOp.JSLT,
    JmpOp.JSLE,
)


class Size(enum.IntEnum):
    """Bits 3-4 of the opcode for load/store classes: access size."""

    W = 0x00  # 4 bytes
    H = 0x08  # 2 bytes
    B = 0x10  # 1 byte
    DW = 0x18  # 8 bytes


#: Access size in bytes for each :class:`Size` value.
SIZE_BYTES = {Size.B: 1, Size.H: 2, Size.W: 4, Size.DW: 8}

#: Inverse of :data:`SIZE_BYTES`.
BYTES_TO_SIZE = {1: Size.B, 2: Size.H, 4: Size.W, 8: Size.DW}


class Mode(enum.IntEnum):
    """Bits 5-7 of the opcode for load/store classes: addressing mode."""

    IMM = 0x00  # used by LD_IMM64 (16-byte wide instruction)
    ABS = 0x20  # legacy packet access, absolute
    IND = 0x40  # legacy packet access, indirect
    MEM = 0x60  # regular memory access via register + offset
    MEMSX = 0x80  # sign-extending memory load
    UNDEF_A0 = 0xA0  # reserved encoding (rejected by the verifier)
    ATOMIC = 0xC0  # atomic read-modify-write (STX class)
    UNDEF_E0 = 0xE0  # reserved encoding (rejected by the verifier)


class Src(enum.IntEnum):
    """Bit 3 of the opcode for ALU/JMP classes: operand source."""

    K = 0x00  # use the 32-bit immediate as the second operand
    X = 0x08  # use the source register as the second operand


class Reg(enum.IntEnum):
    """eBPF register numbers.

    R0 holds return values, R1-R5 pass arguments (clobbered by calls),
    R6-R9 are callee-saved, and R10 is the read-only frame pointer.
    R11 (``AX``) is an auxiliary register used internally by verifier
    rewrites — it is invalid in user-supplied programs but legal in the
    instruction stream produced by the fixup phase, which is exactly
    where BVF's sanitizer inserts its dispatch sequences (Figure 5).
    """

    R0 = 0
    R1 = 1
    R2 = 2
    R3 = 3
    R4 = 4
    R5 = 5
    R6 = 6
    R7 = 7
    R8 = 8
    R9 = 9
    R10 = 10  # frame pointer, read-only
    AX = 11  # internal auxiliary register (invisible to programs)


#: Registers a user-supplied program may reference.
USER_VISIBLE_REGS = tuple(range(11))

#: Registers used for passing helper-call arguments.
ARG_REGS = (Reg.R1, Reg.R2, Reg.R3, Reg.R4, Reg.R5)

#: Callee-saved registers preserved across calls.
CALLEE_SAVED_REGS = (Reg.R6, Reg.R7, Reg.R8, Reg.R9)


class AtomicOp(enum.IntEnum):
    """Immediate-field encodings for ``Mode.ATOMIC`` instructions."""

    ADD = 0x00
    OR = 0x40
    AND = 0x50
    XOR = 0xA0
    FETCH = 0x01  # flag: also load the old value
    XCHG = 0xE0 | 0x01
    CMPXCHG = 0xF0 | 0x01


class PseudoSrc(enum.IntEnum):
    """``src_reg`` values of LD_IMM64 selecting what the immediate means."""

    RAW = 0  # plain 64-bit constant
    MAP_FD = 1  # immediate is a map file descriptor
    MAP_VALUE = 2  # imm = map fd, next imm = offset into the value
    BTF_ID = 3  # immediate is a BTF type id (kernel object address)
    FUNC = 4  # address of a bpf-to-bpf function
    MAP_IDX = 5  # map by index in the fd array
    MAP_IDX_VALUE = 6


class PseudoCall(enum.IntEnum):
    """``src_reg`` values of CALL selecting the call kind."""

    HELPER = 0  # imm = helper function id
    CALL = 1  # bpf-to-bpf call, imm = relative insn offset
    KFUNC = 2  # imm = BTF id of a kernel function


def opcode(cls: int, op_or_size: int = 0, src_or_mode: int = 0) -> int:
    """Compose an opcode byte from its class and modifier fields.

    For ALU/JMP classes, pass the operation and the :class:`Src` bit;
    for load/store classes, pass the :class:`Size` and :class:`Mode`.
    """
    return (cls & 0x07) | (op_or_size & 0xF8) | (src_or_mode & 0xF8)


def insn_class(op: int) -> InsnClass:
    """Extract the instruction class from an opcode byte."""
    return InsnClass(op & 0x07)


def is_alu_class(cls: int) -> bool:
    """True for 32- and 64-bit arithmetic classes."""
    return cls in (InsnClass.ALU, InsnClass.ALU64)


def is_jmp_class(cls: int) -> bool:
    """True for 64- and 32-bit jump classes."""
    return cls in (InsnClass.JMP, InsnClass.JMP32)


def is_ldst_class(cls: int) -> bool:
    """True for the four memory access classes."""
    return cls in (InsnClass.LD, InsnClass.LDX, InsnClass.ST, InsnClass.STX)
