"""eBPF instruction representation and wire-format codec.

Each eBPF instruction occupies eight bytes on the wire::

    +--------+---------+---------+--------------+
    | opcode | src:dst |  off    |     imm      |
    | 1 byte | 4b : 4b | s16 LE  |    s32 LE    |
    +--------+---------+---------+--------------+

with a single exception: the 64-bit immediate load (``LD | IMM | DW``)
spans two consecutive slots; the second slot carries the upper 32 bits
of the immediate in its ``imm`` field and must otherwise be zero.

Programs in this library are kept in **slot form**, exactly like the
kernel's ``struct bpf_insn`` array: an LD_IMM64 contributes *two*
entries to the instruction list, and therefore list indices coincide
with the slot indices that jump offsets are expressed in.  The first
slot of an LD_IMM64 additionally caches the combined 64-bit immediate
in :attr:`Insn.imm64` for convenience.

The :class:`Insn` type is the lingua franca of the whole reproduction:
the structured generator emits lists of :class:`Insn`, the verifier
analyses them, the sanitizer rewrites them, and the interpreter
executes them.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace
from typing import Iterable, Sequence

from repro.errors import EncodingError
from repro.ebpf.opcodes import (
    AluOp,
    InsnClass,
    JmpOp,
    Mode,
    PseudoCall,
    PseudoSrc,
    Size,
    Src,
    insn_class,
    is_alu_class,
    is_jmp_class,
    is_ldst_class,
)

__all__ = [
    "Insn",
    "ld_imm64_pair",
    "encode_program",
    "decode_program",
    "program_len",
]

_STRUCT = struct.Struct("<BBhi")

_U64 = (1 << 64) - 1
_U32 = (1 << 32) - 1

# Per-opcode-byte classification tables.  Every field enum is total
# over its bit range (reserved encodings are explicit UNDEF members),
# so each property is a plain tuple index — an order of magnitude
# cheaper than constructing the enum member through ``EnumType.__call__``
# on every access, and these are among the hottest calls in a campaign.
_CLASS_TABLE = tuple(insn_class(op) for op in range(256))
_ALU_OP_TABLE = tuple(AluOp(op & 0xF0) for op in range(256))
_JMP_OP_TABLE = tuple(JmpOp(op & 0xF0) for op in range(256))
_SIZE_TABLE = tuple(Size(op & 0x18) for op in range(256))
_MODE_TABLE = tuple(Mode(op & 0xE0) for op in range(256))
_SRC_TABLE = tuple(Src(op & 0x08) for op in range(256))

_IS_ALU_TABLE = tuple(is_alu_class(c) for c in _CLASS_TABLE)
_IS_JMP_TABLE = tuple(is_jmp_class(c) for c in _CLASS_TABLE)
_IS_LDST_TABLE = tuple(is_ldst_class(c) for c in _CLASS_TABLE)
_IS_LD_IMM64_TABLE = tuple(
    op != 0
    and _CLASS_TABLE[op] is InsnClass.LD
    and _MODE_TABLE[op] is Mode.IMM
    and _SIZE_TABLE[op] is Size.DW
    for op in range(256)
)
_IS_CALL_TABLE = tuple(
    _CLASS_TABLE[op] is InsnClass.JMP and _JMP_OP_TABLE[op] is JmpOp.CALL
    for op in range(256)
)
_IS_EXIT_TABLE = tuple(
    _CLASS_TABLE[op] is InsnClass.JMP and _JMP_OP_TABLE[op] is JmpOp.EXIT
    for op in range(256)
)
_IS_COND_JMP_TABLE = tuple(
    _IS_JMP_TABLE[op]
    and _JMP_OP_TABLE[op] not in (JmpOp.JA, JmpOp.CALL, JmpOp.EXIT)
    for op in range(256)
)


def _s32(value: int) -> int:
    """Reduce an integer to a signed 32-bit value (two's complement)."""
    value &= _U32
    return value - (1 << 32) if value >= (1 << 31) else value


def _s16(value: int) -> int:
    value &= 0xFFFF
    return value - (1 << 16) if value >= (1 << 15) else value


@dataclass(frozen=True)
class Insn:
    """A single 8-byte eBPF instruction slot.

    ``imm64`` is populated only on the first slot of an LD_IMM64 pair
    (the second slot is a zero-opcode filler carrying the high half in
    ``imm``).  Instances are frozen so they can be shared between the
    generator, verifier state snapshots, and rewrite passes without
    defensive copying.
    """

    opcode: int
    dst: int = 0
    src: int = 0
    off: int = 0
    imm: int = 0
    imm64: int = 0

    # --- classification -------------------------------------------------

    @property
    def insn_class(self) -> InsnClass:
        """Instruction class extracted from the opcode byte."""
        return _CLASS_TABLE[self.opcode & 0xFF]

    @property
    def alu_op(self) -> AluOp:
        """ALU operation (only meaningful for ALU/ALU64 classes)."""
        return _ALU_OP_TABLE[self.opcode & 0xFF]

    @property
    def jmp_op(self) -> JmpOp:
        """Jump operation (only meaningful for JMP/JMP32 classes)."""
        return _JMP_OP_TABLE[self.opcode & 0xFF]

    @property
    def size(self) -> Size:
        """Memory access size (only meaningful for load/store classes)."""
        return _SIZE_TABLE[self.opcode & 0xFF]

    @property
    def mode(self) -> Mode:
        """Addressing mode (only meaningful for load/store classes)."""
        return _MODE_TABLE[self.opcode & 0xFF]

    @property
    def src_bit(self) -> Src:
        """Operand source selector (register vs. immediate)."""
        return _SRC_TABLE[self.opcode & 0xFF]

    def is_alu(self) -> bool:
        return _IS_ALU_TABLE[self.opcode & 0xFF]

    def is_jmp(self) -> bool:
        return _IS_JMP_TABLE[self.opcode & 0xFF]

    def is_ldst(self) -> bool:
        return _IS_LDST_TABLE[self.opcode & 0xFF]

    def is_ld_imm64(self) -> bool:
        """True for the *first* slot of the 64-bit immediate load."""
        return _IS_LD_IMM64_TABLE[self.opcode & 0xFF]

    def is_filler(self) -> bool:
        """True for the zero-opcode second slot of an LD_IMM64."""
        return self.opcode == 0

    def is_call(self) -> bool:
        return _IS_CALL_TABLE[self.opcode & 0xFF]

    def is_helper_call(self) -> bool:
        return self.is_call() and self.src == PseudoCall.HELPER

    def is_kfunc_call(self) -> bool:
        return self.is_call() and self.src == PseudoCall.KFUNC

    def is_pseudo_call(self) -> bool:
        """True for bpf-to-bpf subprogram calls."""
        return _IS_CALL_TABLE[self.opcode & 0xFF] and self.src == PseudoCall.CALL

    def is_exit(self) -> bool:
        return _IS_EXIT_TABLE[self.opcode & 0xFF]

    def is_cond_jmp(self) -> bool:
        """True for conditional jumps (excludes JA, CALL, EXIT)."""
        return _IS_COND_JMP_TABLE[self.opcode & 0xFF]

    def is_uncond_jmp(self) -> bool:
        return (
            self.insn_class == InsnClass.JMP
            and self.jmp_op == JmpOp.JA
            and not self.is_filler()
        )

    def is_atomic(self) -> bool:
        return self.insn_class == InsnClass.STX and self.mode == Mode.ATOMIC

    def is_memory_load(self) -> bool:
        """True for LDX MEM/MEMSX loads (the sanitizer's load targets)."""
        return self.insn_class == InsnClass.LDX and self.mode in (
            Mode.MEM,
            Mode.MEMSX,
        )

    def is_memory_store(self) -> bool:
        """True for ST/STX MEM stores (the sanitizer's store targets)."""
        return (
            self.insn_class in (InsnClass.ST, InsnClass.STX)
            and self.mode == Mode.MEM
            and not self.is_filler()
        )

    def pseudo_src(self) -> PseudoSrc:
        """Interpretation of ``src`` for LD_IMM64 instructions."""
        return PseudoSrc(self.src)

    # --- construction helpers -------------------------------------------

    def with_(self, **changes) -> "Insn":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    # --- codec -----------------------------------------------------------

    def encode(self) -> bytes:
        """Encode this single slot to its 8-byte wire format."""
        if not 0 <= self.dst <= 15 or not 0 <= self.src <= 15:
            raise EncodingError(
                f"register field out of range: dst={self.dst} src={self.src}"
            )
        imm = self.imm
        if self.is_ld_imm64() and self.imm64:
            imm = self.imm64 & _U32
        return _STRUCT.pack(
            self.opcode, (self.src << 4) | self.dst, _s16(self.off), _s32(imm)
        )

    # --- display ----------------------------------------------------------

    def __str__(self) -> str:  # pragma: no cover - exercised via disasm tests
        from repro.ebpf.disasm import format_insn

        return format_insn(self)


def ld_imm64_pair(insn: Insn, value: int) -> tuple[Insn, Insn]:
    """Build the two slots of an LD_IMM64 for ``value``.

    The first slot caches the full 64-bit immediate; the second slot is
    the zero-opcode filler carrying the high half, exactly as on the
    wire.
    """
    value &= _U64
    first = insn.with_(imm=_s32(value & _U32), imm64=value)
    second = Insn(opcode=0, imm=_s32(value >> 32))
    return first, second


def encode_program(insns: Iterable[Insn]) -> bytes:
    """Encode a slot-form program to its byte representation."""
    return b"".join(insn.encode() for insn in insns)


def decode_program(data: bytes) -> list[Insn]:
    """Decode a byte buffer into a slot-form program.

    Raises :class:`EncodingError` on truncation or malformed LD_IMM64
    pairs — the same situations in which the kernel rejects the load
    with EINVAL before the verifier even runs.
    """
    if len(data) % 8:
        raise EncodingError("program length is not a multiple of 8")
    insns: list[Insn] = []
    offset = 0
    while offset < len(data):
        op, regs, off, imm = _STRUCT.unpack_from(data, offset)
        insn = Insn(opcode=op, dst=regs & 0x0F, src=regs >> 4, off=off, imm=imm)
        offset += 8
        if insn.is_ld_imm64():
            if offset >= len(data):
                raise EncodingError("LD_IMM64 missing its second slot")
            op2, regs2, off2, imm2 = _STRUCT.unpack_from(data, offset)
            if op2 or regs2 or off2:
                raise EncodingError("LD_IMM64 second slot must be zero-padded")
            offset += 8
            value = (imm & _U32) | ((imm2 & _U32) << 32)
            insns.append(insn.with_(imm64=value))
            insns.append(Insn(opcode=0, imm=imm2))
        else:
            insns.append(insn)
    return insns


def program_len(insns: Sequence[Insn]) -> int:
    """Length of the program in 8-byte slots (== list length)."""
    return len(insns)
