"""Minimal BTF (BPF Type Format) model.

BTF gives eBPF programs typed access to kernel objects: a program can
load the address of a kernel symbol by BTF id (``BPF_PSEUDO_BTF_ID``),
receive ``PTR_TO_BTF_ID`` pointers from helpers such as
``bpf_get_current_task_btf``, and call *kfuncs* (kernel functions
exported to BPF) by BTF id.

Two properties of BTF pointers are load-bearing for the paper:

1. ``PTR_TO_BTF_ID`` is **never marked maybe_null** by the verifier —
   loads through it are rewritten to fault-handled ``PROBE_MEM``
   accesses, so a null such pointer is "safe".  Bug #1 exploits this:
   nullness propagated *from* a BTF pointer to a genuinely nullable map
   pointer lets a real null dereference through.
2. BTF objects have a definite size the verifier checks field accesses
   against; Bug #2 is an off-by-N in that bounds check.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel.kasan import Allocation, KernelMemory

__all__ = ["BtfField", "BtfType", "BtfObject", "BtfRegistry", "TASK_STRUCT"]


@dataclass(frozen=True)
class BtfField:
    """One field of a BTF struct type."""

    name: str
    offset: int
    size: int
    #: name of the BTF type this field points to, if it is a pointer
    points_to: str | None = None


@dataclass(frozen=True)
class BtfType:
    """A kernel struct type described by BTF."""

    name: str
    size: int
    fields: tuple[BtfField, ...] = ()

    def field_at(self, offset: int) -> BtfField | None:
        for f in self.fields:
            if f.offset <= offset < f.offset + f.size:
                return f
        return None


# A drastically slimmed-down task_struct: enough fields for interesting
# generated accesses, with a definite size for bounds checking.
TASK_STRUCT = BtfType(
    name="task_struct",
    size=128,
    fields=(
        BtfField("state", 0, 8),
        BtfField("stack", 8, 8, points_to="thread_info"),
        BtfField("flags", 16, 4),
        BtfField("cpu", 20, 4),
        BtfField("prio", 24, 4),
        BtfField("static_prio", 28, 4),
        BtfField("pid", 32, 4),
        BtfField("tgid", 36, 4),
        BtfField("parent", 40, 8, points_to="task_struct"),
        BtfField("group_leader", 48, 8, points_to="task_struct"),
        BtfField("utime", 56, 8),
        BtfField("stime", 64, 8),
        BtfField("comm", 72, 16),
        BtfField("files", 88, 8, points_to="file"),
        BtfField("start_time", 96, 8),
        BtfField("exit_code", 104, 4),
        BtfField("exit_state", 108, 4),
        BtfField("nr_cpus_allowed", 112, 4),
        BtfField("policy", 116, 4),
        BtfField("rt_priority", 120, 4),
        BtfField("seccomp_mode", 124, 4),
    ),
)

THREAD_INFO = BtfType(
    name="thread_info",
    size=32,
    fields=(
        BtfField("flags", 0, 8),
        BtfField("status", 8, 4),
        BtfField("cpu_id", 12, 4),
        BtfField("preempt_count", 16, 4),
    ),
)

FILE = BtfType(
    name="file",
    size=64,
    fields=(
        BtfField("f_mode", 0, 4),
        BtfField("f_flags", 4, 4),
        BtfField("f_pos", 8, 8),
        BtfField("f_count", 16, 8),
        BtfField("f_inode", 24, 8, points_to="inode"),
    ),
)

INODE = BtfType(
    name="inode",
    size=96,
    fields=(
        BtfField("i_mode", 0, 4),
        BtfField("i_uid", 4, 4),
        BtfField("i_gid", 8, 4),
        BtfField("i_ino", 16, 8),
        BtfField("i_size", 24, 8),
        BtfField("i_nlink", 32, 4),
    ),
)

_BUILTIN_TYPES = (TASK_STRUCT, THREAD_INFO, FILE, INODE)


@dataclass
class BtfObject:
    """A kernel object reachable by BTF id.

    ``maybe_absent`` models per-cpu or conditionally-initialised ksyms
    that resolve to NULL at runtime on some paths — the runtime-null
    BTF pointer at the heart of Bug #1 (Listing 2's ``r6``).
    """

    btf_id: int
    type: BtfType
    allocation: Allocation | None
    maybe_absent: bool = False

    @property
    def address(self) -> int:
        return self.allocation.start if self.allocation else 0


class BtfRegistry:
    """BTF ids -> kernel types and instantiated objects."""

    def __init__(self, mem: KernelMemory) -> None:
        self.mem = mem
        self._types: dict[str, BtfType] = {t.name: t for t in _BUILTIN_TYPES}
        self._objects: dict[int, BtfObject] = {}
        self._next_id = 1
        self._bootstrap()

    def _bootstrap(self) -> None:
        # The current task: always present, and the object the
        # get_current_task_btf helper hands out.
        self.current_task_id = self.instantiate("task_struct")
        task = self.object(self.current_task_id)
        self.mem.checked_write(task.address + 32, 4, 4242, who="btf-init")  # pid
        self.mem.checked_write_bytes(
            task.address + 72, b"repro_task\x00\x00\x00\x00\x00\x00", who="btf-init"
        )
        # A conditionally-present percpu-style ksym: the verifier treats
        # its address as PTR_TO_BTF_ID, but it is NULL at runtime.
        self.absent_ksym_id = self.register_absent("thread_info")
        # A normally-present ksym object.
        self.file_ksym_id = self.instantiate("file")

    # --- types -----------------------------------------------------------

    def type_by_name(self, name: str) -> BtfType | None:
        return self._types.get(name)

    def add_type(self, btf_type: BtfType) -> None:
        self._types[btf_type.name] = btf_type

    # --- objects -----------------------------------------------------------

    def instantiate(self, type_name: str, maybe_absent: bool = False) -> int:
        """Allocate a kernel object of the given type; returns its BTF id."""
        btf_type = self._types[type_name]
        alloc = self.mem.kzalloc(btf_type.size, tag=f"btf:{type_name}")
        btf_id = self._next_id
        self._next_id += 1
        self._objects[btf_id] = BtfObject(
            btf_id=btf_id,
            type=btf_type,
            allocation=alloc,
            maybe_absent=maybe_absent,
        )
        return btf_id

    def register_absent(self, type_name: str) -> int:
        """Register a ksym of the given type that is NULL at runtime."""
        btf_type = self._types[type_name]
        btf_id = self._next_id
        self._next_id += 1
        self._objects[btf_id] = BtfObject(
            btf_id=btf_id, type=btf_type, allocation=None, maybe_absent=True
        )
        return btf_id

    def object(self, btf_id: int) -> BtfObject | None:
        return self._objects.get(btf_id)

    def ids(self) -> list[int]:
        return sorted(self._objects)

    def loadable_ids(self) -> list[int]:
        """BTF ids a program may reference via ``BPF_PSEUDO_BTF_ID``."""
        return sorted(self._objects)
