"""eBPF program objects, program types, and context descriptors.

A :class:`BpfProgram` is what user space submits to the ``bpf()``
syscall: raw slot-form instructions plus a program type.  The program
type determines the *context* layout (what R1 points at on entry),
which helpers are callable, where the program can attach, and in what
kernel context (irq / NMI) it will run — all of which the verifier
checks and several Table-2 bugs abuse.

A :class:`VerifiedProgram` is the verifier's output: the rewritten
("xlated") instruction stream, per-instruction rewrite metadata the
runtime honours (PROBE_MEM fault handling, ``alu_limit`` annotations,
sanitizer dispatch sites), and summary facts the attach layer consults
(lock-acquiring helpers used, referenced maps).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.ebpf.insn import Insn

__all__ = [
    "ProgType",
    "AttachType",
    "CtxField",
    "ContextDescriptor",
    "BpfProgram",
    "VerifiedProgram",
    "CONTEXTS",
]


class ProgType(enum.Enum):
    """Program types (subset of ``enum bpf_prog_type``)."""

    SOCKET_FILTER = "socket_filter"
    KPROBE = "kprobe"
    SCHED_CLS = "sched_cls"
    XDP = "xdp"
    TRACEPOINT = "tracepoint"
    PERF_EVENT = "perf_event"
    RAW_TRACEPOINT = "raw_tracepoint"


class AttachType(enum.Enum):
    """Where a loaded program is mounted."""

    SOCKET = "socket"
    KPROBE = "kprobe"
    TRACEPOINT = "tracepoint"
    PERF_EVENT = "perf_event"
    XDP_DEVICE = "xdp_device"
    TC_INGRESS = "tc_ingress"


#: Program types whose handlers run in (soft)irq-like context.
IRQ_CONTEXT_TYPES = frozenset({ProgType.KPROBE, ProgType.XDP, ProgType.SCHED_CLS})

#: Program types whose handlers run in NMI-like context (Bug #6).
NMI_CONTEXT_TYPES = frozenset({ProgType.PERF_EVENT})


@dataclass(frozen=True)
class CtxField:
    """One accessible field of a program-type context."""

    name: str
    offset: int
    size: int
    readable: bool = True
    writable: bool = False
    #: 'pkt_data' / 'pkt_end' / 'pkt_meta' fields yield packet pointers
    special: str | None = None

    @property
    def end(self) -> int:
        return self.offset + self.size


@dataclass(frozen=True)
class ContextDescriptor:
    """Access rules for one program type's context structure."""

    name: str
    size: int
    fields: tuple[CtxField, ...]
    #: tracepoint-style contexts allow aligned reads anywhere
    raw_readable: bool = False

    def field_covering(self, offset: int, size: int) -> CtxField | None:
        """The field fully containing ``[offset, offset+size)``, if any."""
        for f in self.fields:
            if f.offset <= offset and offset + size <= f.end:
                return f
        return None

    def check_access(
        self, offset: int, size: int, is_write: bool
    ) -> tuple[bool, CtxField | None, str]:
        """Verifier-side context access validation.

        Returns ``(ok, field, reason)``.  Special (packet-pointer)
        fields require exact-size reads, mirroring the kernel's
        ``is_valid_access`` callbacks.
        """
        if offset < 0 or offset + size > self.size:
            return False, None, f"ctx access out of range [{offset}, +{size})"
        f = self.field_covering(offset, size)
        if f is None:
            if self.raw_readable and not is_write:
                return True, None, ""
            return False, None, f"ctx offset {offset} is not an accessible field"
        if f.special is not None:
            if is_write:
                return False, f, f"ctx field {f.name} is read-only"
            if offset != f.offset or size != f.size:
                return False, f, f"ctx field {f.name} requires exact-size load"
            return True, f, ""
        if is_write and not f.writable:
            return False, f, f"ctx field {f.name} is read-only"
        if not is_write and not f.readable:
            return False, f, f"ctx field {f.name} is not readable"
        return True, f, ""


_SK_BUFF = ContextDescriptor(
    name="__sk_buff",
    size=192,
    fields=(
        CtxField("len", 0, 4),
        CtxField("pkt_type", 4, 4),
        CtxField("mark", 8, 4, writable=True),
        CtxField("queue_mapping", 12, 4),
        CtxField("protocol", 16, 4),
        CtxField("vlan_present", 20, 4),
        CtxField("priority", 32, 4, writable=True),
        CtxField("ingress_ifindex", 36, 4),
        CtxField("ifindex", 40, 4),
        CtxField("hash", 48, 4),
        CtxField("cb0", 52, 4, writable=True),
        CtxField("cb1", 56, 4, writable=True),
        CtxField("cb2", 60, 4, writable=True),
        CtxField("cb3", 64, 4, writable=True),
        CtxField("cb4", 68, 4, writable=True),
        CtxField("data", 76, 4, special="pkt_data"),
        CtxField("data_end", 80, 4, special="pkt_end"),
    ),
)

_XDP_MD = ContextDescriptor(
    name="xdp_md",
    size=24,
    fields=(
        CtxField("data", 0, 4, special="pkt_data"),
        CtxField("data_end", 4, 4, special="pkt_end"),
        CtxField("data_meta", 8, 4, special="pkt_meta"),
        CtxField("ingress_ifindex", 12, 4),
        CtxField("rx_queue_index", 16, 4),
        CtxField("egress_ifindex", 20, 4),
    ),
)

_PT_REGS = ContextDescriptor(
    name="pt_regs",
    size=168,
    fields=tuple(
        CtxField(f"reg{i}", i * 8, 8) for i in range(21)
    ),
)

_TRACEPOINT_CTX = ContextDescriptor(
    name="tracepoint_ctx",
    size=64,
    fields=(),
    raw_readable=True,
)

_PERF_EVENT_CTX = ContextDescriptor(
    name="bpf_perf_event_data",
    size=32,
    fields=(
        CtxField("sample_period", 0, 8),
        CtxField("addr", 8, 8),
        CtxField("regs_ip", 16, 8),
        CtxField("regs_sp", 24, 8),
    ),
)

#: Context descriptor for each program type.
CONTEXTS: dict[ProgType, ContextDescriptor] = {
    ProgType.SOCKET_FILTER: _SK_BUFF,
    ProgType.SCHED_CLS: _SK_BUFF,
    ProgType.XDP: _XDP_MD,
    ProgType.KPROBE: _PT_REGS,
    ProgType.TRACEPOINT: _TRACEPOINT_CTX,
    ProgType.RAW_TRACEPOINT: _TRACEPOINT_CTX,
    ProgType.PERF_EVENT: _PERF_EVENT_CTX,
}

#: Program types that may use direct packet access.
PACKET_ACCESS_TYPES = frozenset(
    {ProgType.SOCKET_FILTER, ProgType.SCHED_CLS, ProgType.XDP}
)


@dataclass
class BpfProgram:
    """A program as submitted by user space (pre-verification)."""

    insns: list[Insn]
    prog_type: ProgType = ProgType.SOCKET_FILTER
    name: str = "prog"
    license: str = "GPL"
    #: device-offload request; Bug #11 runs such programs on the host
    offload_dev: str | None = None

    @property
    def context(self) -> ContextDescriptor:
        return CONTEXTS[self.prog_type]

    def __len__(self) -> int:
        return len(self.insns)


@dataclass
class VerifiedProgram:
    """The verifier's output: xlated instructions plus rewrite metadata."""

    prog: BpfProgram
    #: rewritten instruction stream actually executed
    xlated: list[Insn]
    #: slot indices of loads rewritten to fault-handled PROBE_MEM
    probe_mem: set[int] = field(default_factory=set)
    #: alu_limit annotations: slot index -> (limit, alu_op, sign)
    alu_limits: dict[int, tuple[int, int, int]] = field(default_factory=dict)
    #: slot indices belonging to sanitizer-inserted dispatch sequences
    sanitizer_insns: set[int] = field(default_factory=set)
    #: slot indices of original insns the sanitizer instrumented
    sanitized_sites: set[int] = field(default_factory=set)
    #: final index of each sanitizer call -> SanitizeSite metadata
    sanitizer_meta: dict = field(default_factory=dict)
    #: xlated slot index -> original slot index (for triage)
    orig_index: dict = field(default_factory=dict)
    #: map addresses referenced via ld_map_fd (after fixup, by slot)
    map_addrs: dict[int, int] = field(default_factory=dict)
    #: helper ids called anywhere in the program
    helper_ids: set[int] = field(default_factory=set)
    #: stack bytes used (negative offsets from R10)
    stack_depth: int = 0
    #: whether any called helper acquires kernel locks (bugs #4/#5)
    uses_lock_helpers: bool = False
    #: verifier statistics (insns processed, states explored...)
    stats: dict[str, int] = field(default_factory=dict)
    #: whether sanitation instrumentation was applied
    sanitized: bool = False
    #: ``do_check`` outputs in replayable form (:class:`repro.verifier.
    #: core.CheckSummary`) — what the frame-level verdict cache stores
    check_summary: object | None = None

    @property
    def prog_type(self) -> ProgType:
        return self.prog.prog_type

    @property
    def name(self) -> str:
        return self.prog.name

    def __len__(self) -> int:
        return len(self.xlated)
