"""Verifier log buffer.

Mirrors the kernel's verifier log: a bounded text buffer accumulated
during analysis, returned to user space on both success and failure.
The fuzzer inspects rejection errnos (EACCES vs EINVAL) to reproduce
the paper's acceptance-rate breakdown, and bug triage reads the log to
locate the guilty instruction.
"""

from __future__ import annotations

__all__ = ["VerifierLog", "final_message"]


class VerifierLog:
    """Bounded accumulation of verifier messages."""

    def __init__(self, level: int = 1, limit: int = 1 << 20) -> None:
        self.level = level
        self.limit = limit
        self._parts: list[str] = []
        self._size = 0
        self.truncated = False

    def write(self, message: str) -> None:
        if self.level <= 0 or self.truncated:
            return
        if self._size + len(message) + 1 > self.limit:
            self.truncated = True
            return
        self._parts.append(message)
        self._size += len(message) + 1

    def insn(self, idx: int, text: str) -> None:
        """Log one instruction visit (level 2, like the kernel)."""
        if self.level >= 2:
            self.write(f"{idx}: {text}")

    def text(self) -> str:
        return "\n".join(self._parts)

    def last_message(self) -> str:
        """The final non-instruction line — on rejection, the reason.

        :meth:`~repro.verifier.core.Verifier.reject` always writes its
        message last, so this is what the rejection taxonomy
        (:mod:`repro.obs.taxonomy`) classifies.
        """
        return final_message(self.text())

    def __str__(self) -> str:
        return self.text()


def final_message(log_text: str) -> str:
    """Extract the rejection reason from a verifier log's tail.

    Skips trailing blank lines and strips the ``"{idx}: "`` prefix
    level-2 instruction traces carry, returning ``""`` for an empty
    log (callers then fall back to the exception's own message).
    """
    for line in reversed(log_text.splitlines()):
        line = line.strip()
        if not line:
            continue
        prefix, sep, rest = line.partition(": ")
        if sep and prefix.isdigit():
            return rest
        return line
    return ""
