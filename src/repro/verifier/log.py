"""Verifier log buffer.

Mirrors the kernel's verifier log: a bounded text buffer accumulated
during analysis, returned to user space on both success and failure.
The fuzzer inspects rejection errnos (EACCES vs EINVAL) to reproduce
the paper's acceptance-rate breakdown, and bug triage reads the log to
locate the guilty instruction.
"""

from __future__ import annotations

__all__ = ["VerifierLog"]


class VerifierLog:
    """Bounded accumulation of verifier messages."""

    def __init__(self, level: int = 1, limit: int = 1 << 20) -> None:
        self.level = level
        self.limit = limit
        self._parts: list[str] = []
        self._size = 0
        self.truncated = False

    def write(self, message: str) -> None:
        if self.level <= 0 or self.truncated:
            return
        if self._size + len(message) + 1 > self.limit:
            self.truncated = True
            return
        self._parts.append(message)
        self._size += len(message) + 1

    def insn(self, idx: int, text: str) -> None:
        """Log one instruction visit (level 2, like the kernel)."""
        if self.level >= 2:
            self.write(f"{idx}: {text}")

    def text(self) -> str:
        return "\n".join(self._parts)

    def __str__(self) -> str:
        return self.text()
