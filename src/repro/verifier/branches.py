"""Branch reasoning: bounds refinement and pointer-nullness tracking.

On a conditional jump the verifier forks the state and refines each
side with the branch condition (``reg_set_min_max``), decides branches
statically where the ranges allow (``is_branch_taken``), learns packet
ranges from ``data + N <= data_end`` patterns
(``find_good_pkt_pointers``), resolves maybe-null pointers compared
against zero (``mark_ptr_or_null``), and — since commit bfeae75856ab —
propagates nullness across pointer-to-pointer equality comparisons.

**Bug #1 lives in that last pass**: the correct implementation must not
trust ``PTR_TO_BTF_ID`` operands (they are never marked maybe-null yet
can be NULL at runtime); the flawed one propagates from them anyway.
"""

from __future__ import annotations

from repro.ebpf.insn import Insn
from repro.ebpf.opcodes import InsnClass, JmpOp
from repro.verifier.state import (
    NULL_RESOLVES_TO,
    RegState,
    RegType,
    S64_MAX,
    S64_MIN,
    U64_MAX,
    s64,
)
from repro.verifier.tnum import Tnum

__all__ = [
    "is_branch_taken",
    "refine_branch",
    "mark_ptr_or_null",
    "find_good_pkt_pointers",
    "try_match_pkt_pointers",
    "propagate_nullness",
    "propagate_equal_scalars",
]


# ---------------------------------------------------------------------------
# Static branch decisions
# ---------------------------------------------------------------------------


def _bounds(reg: RegState, is64: bool) -> tuple[int, int, int, int]:
    """(umin, umax, smin, smax) at the comparison width."""
    if is64 or reg.fits_u32():
        return reg.umin, reg.umax, reg.smin, reg.smax
    sub = reg.var_off.subreg()
    lo, hi = sub.min_value(), sub.max_value()
    return lo, hi, S64_MIN, S64_MAX


def is_branch_taken(dst: RegState, src: RegState, op: JmpOp, is64: bool) -> int:
    """1 if always taken, 0 if never, -1 if unknown."""
    if not (dst.is_scalar() and src.is_scalar()):
        # Pointer comparisons are only decidable against NULL for
        # known-non-null pointers.
        if (
            src.is_const()
            and src.const_value() == 0
            and dst.is_pointer()
            and not dst.is_maybe_null()
            and dst.type != RegType.PTR_TO_BTF_ID
        ):
            if op == JmpOp.JEQ:
                return 0
            if op == JmpOp.JNE:
                return 1
        return -1

    dumin, dumax, dsmin, dsmax = _bounds(dst, is64)
    sumin, sumax, ssmin, ssmax = _bounds(src, is64)

    if op == JmpOp.JEQ:
        if dumin == dumax == sumin == sumax:
            return 1
        if dumin > sumax or dumax < sumin:
            return 0
        return -1
    if op == JmpOp.JNE:
        inner = is_branch_taken(dst, src, JmpOp.JEQ, is64)
        return -1 if inner == -1 else 1 - inner
    if op == JmpOp.JGT:
        if dumin > sumax:
            return 1
        if dumax <= sumin:
            return 0
        return -1
    if op == JmpOp.JGE:
        if dumin >= sumax:
            return 1
        if dumax < sumin:
            return 0
        return -1
    if op == JmpOp.JLT:
        if dumax < sumin:
            return 1
        if dumin >= sumax:
            return 0
        return -1
    if op == JmpOp.JLE:
        if dumax <= sumin:
            return 1
        if dumin > sumax:
            return 0
        return -1
    if op == JmpOp.JSGT:
        if dsmin > ssmax:
            return 1
        if dsmax <= ssmin:
            return 0
        return -1
    if op == JmpOp.JSGE:
        if dsmin >= ssmax:
            return 1
        if dsmax < ssmin:
            return 0
        return -1
    if op == JmpOp.JSLT:
        if dsmax < ssmin:
            return 1
        if dsmin >= ssmax:
            return 0
        return -1
    if op == JmpOp.JSLE:
        if dsmax <= ssmin:
            return 1
        if dsmin > ssmax:
            return 0
        return -1
    if op == JmpOp.JSET:
        if not src.is_const():
            return -1
        mask = src.const_value()
        if dst.var_off.value & mask:
            return 1
        if not ((dst.var_off.value | dst.var_off.mask) & mask):
            return 0
        return -1
    return -1


# ---------------------------------------------------------------------------
# Bounds refinement
# ---------------------------------------------------------------------------


def _refine_scalar_pair(dst: RegState, src: RegState, op: JmpOp) -> None:
    """Apply ``dst <op> src`` as a fact to both scalar registers."""
    if op == JmpOp.JEQ:
        umin = max(dst.umin, src.umin)
        umax = min(dst.umax, src.umax)
        smin = max(dst.smin, src.smin)
        smax = min(dst.smax, src.smax)
        var = dst.var_off.intersect(src.var_off) if _tnums_compatible(
            dst.var_off, src.var_off
        ) else dst.var_off
        for reg in (dst, src):
            reg.umin, reg.umax = umin, umax
            reg.smin, reg.smax = smin, smax
            reg.var_off = var
    elif op == JmpOp.JNE:
        # Only useful when one side is a constant boundary value.
        for a, b in ((dst, src), (src, dst)):
            if b.is_const():
                val = b.const_value()
                if a.umin == val:
                    a.umin = min(a.umin + 1, U64_MAX)
                if a.umax == val:
                    a.umax = max(a.umax - 1, 0)
    elif op == JmpOp.JGT:
        dst.umin = max(dst.umin, min(src.umin + 1, U64_MAX))
        src.umax = min(src.umax, max(dst.umax - 1, 0))
    elif op == JmpOp.JGE:
        dst.umin = max(dst.umin, src.umin)
        src.umax = min(src.umax, dst.umax)
    elif op == JmpOp.JLT:
        dst.umax = min(dst.umax, max(src.umax - 1, 0))
        src.umin = max(src.umin, min(dst.umin + 1, U64_MAX))
    elif op == JmpOp.JLE:
        dst.umax = min(dst.umax, src.umax)
        src.umin = max(src.umin, dst.umin)
    elif op == JmpOp.JSGT:
        dst.smin = max(dst.smin, min(src.smin + 1, S64_MAX))
        src.smax = min(src.smax, max(dst.smax - 1, S64_MIN))
    elif op == JmpOp.JSGE:
        dst.smin = max(dst.smin, src.smin)
        src.smax = min(src.smax, dst.smax)
    elif op == JmpOp.JSLT:
        dst.smax = min(dst.smax, max(src.smax - 1, S64_MIN))
        src.smin = max(src.smin, min(dst.smin + 1, S64_MAX))
    elif op == JmpOp.JSLE:
        dst.smax = min(dst.smax, src.smax)
        src.smin = max(src.smin, dst.smin)
    elif op == JmpOp.JSET:
        # Taken means some bit of the mask is set; nothing simple to
        # learn beyond non-zero-ness when the mask covers everything.
        pass
    dst.sync_bounds()
    src.sync_bounds()


def _tnums_compatible(a: Tnum, b: Tnum) -> bool:
    """Do the two tnums share at least one concretisation?"""
    known_both = ~(a.mask | b.mask) & ((1 << 64) - 1)
    return (a.value & known_both) == (b.value & known_both)


_NEGATE = {
    JmpOp.JEQ: JmpOp.JNE,
    JmpOp.JNE: JmpOp.JEQ,
    JmpOp.JGT: JmpOp.JLE,
    JmpOp.JGE: JmpOp.JLT,
    JmpOp.JLT: JmpOp.JGE,
    JmpOp.JLE: JmpOp.JGT,
    JmpOp.JSGT: JmpOp.JSLE,
    JmpOp.JSGE: JmpOp.JSLT,
    JmpOp.JSLT: JmpOp.JSGE,
    JmpOp.JSLE: JmpOp.JSGT,
}


def _refine_jset_false(dst: RegState, src: RegState) -> None:
    """False branch of JSET: all bits of a constant mask are zero."""
    if src.is_const():
        mask = src.const_value()
        dst.var_off = Tnum(
            dst.var_off.value & ~mask & U64_MAX, dst.var_off.mask & ~mask & U64_MAX
        )
        dst.sync_bounds()


def refine_branch(
    dst: RegState, src: RegState, op: JmpOp, taken: bool, is64: bool
) -> None:
    """Refine both registers with the branch outcome.

    32-bit comparisons only refine when both values provably fit in 32
    bits (a sound approximation of the kernel's separate 32-bit
    bounds).
    """
    if not (dst.is_scalar() and src.is_scalar()):
        return
    if not is64 and not (dst.fits_u32() and src.fits_u32()):
        return
    if taken:
        if op == JmpOp.JSET:
            return
        _refine_scalar_pair(dst, src, op)
    else:
        if op == JmpOp.JSET:
            _refine_jset_false(dst, src)
            return
        negated = _NEGATE.get(op)
        if negated is not None:
            _refine_scalar_pair(dst, src, negated)


# ---------------------------------------------------------------------------
# Pointer nullness
# ---------------------------------------------------------------------------


def _cow_update_regs(state, match, apply) -> None:
    """Apply ``apply`` to every register and spilled register in the
    state that satisfies ``match``.

    The copy-on-write version of "iterate everything and mutate in
    place": matching is read-only, and only matched records are
    unshared (through :meth:`FuncFrame.wreg` and the stack's
    ``cow_update_spills``), so a whole-state sweep leaves records it
    does not change shared with sibling states.
    """
    for frame in state.frames:
        regs = frame.regs
        for index in range(len(regs)):
            if match(regs[index]):
                apply(frame.wreg(index))
        frame.stack.cow_update_spills(match, apply)


def mark_ptr_or_null(state, target_id: int, is_null: bool) -> None:
    """Resolve every copy of a maybe-null pointer with the given id.

    Acquired objects resolved to NULL carry no release obligation (a
    failed ``bpf_ringbuf_reserve`` returned nothing to release), so the
    corresponding reference is dropped from the state.
    """
    dropped_refs: set[int] = set()

    def match(reg: RegState) -> bool:
        return reg.id == target_id and reg.is_maybe_null()

    def resolve(reg: RegState) -> None:
        if is_null:
            if reg.ref_obj_id:
                dropped_refs.add(reg.ref_obj_id)
            reg.mark_known(0)
        else:
            reg.type = NULL_RESOLVES_TO[reg.type]
            reg.id = 0

    _cow_update_regs(state, match, resolve)
    for ref_id in dropped_refs:
        state.refs.pop(ref_id, None)


def propagate_nullness(
    state, a: RegState, b: RegState, config, flaw_active: bool
) -> None:
    """Nullness propagation across ``ptr == ptr`` (commit bfeae75856ab).

    In the *equal* branch, if one side is maybe-null and the other is a
    pointer the verifier believes non-null, the maybe-null side is
    marked non-null.  The **correct** filter skips the propagation when
    either operand is ``PTR_TO_BTF_ID`` (such pointers are never marked
    maybe-null but may be NULL at runtime); the **flawed** kernel
    (Bug #1) omits the filter.
    """
    if not config.has_nullness_propagation:
        return
    for nullable, other in ((a, b), (b, a)):
        if not nullable.is_maybe_null():
            continue
        if not other.is_pointer() or other.is_maybe_null():
            continue
        if not flaw_active and (
            other.type == RegType.PTR_TO_BTF_ID
            or nullable.type == RegType.PTR_TO_BTF_ID
        ):
            continue  # the fix from Listing 3
        mark_ptr_or_null(state, nullable.id, is_null=False)


# ---------------------------------------------------------------------------
# Packet ranges
# ---------------------------------------------------------------------------


def find_good_pkt_pointers(state, pkt_reg: RegState, range_val: int) -> None:
    """Record a verified readable packet range on all aliases."""
    if range_val <= 0:
        return

    target_id = pkt_reg.id

    def match(reg: RegState) -> bool:
        return (
            reg.is_pkt_pointer()
            and reg.id == target_id
            and reg.pkt_range < range_val
        )

    def update(reg: RegState) -> None:
        reg.pkt_range = range_val

    _cow_update_regs(state, match, update)


def try_match_pkt_pointers(
    insn: Insn, dst: RegState, src: RegState, taken_state, false_state,
    taken_dst: RegState, taken_src: RegState, false_dst: RegState,
    false_src: RegState,
) -> None:
    """Learn packet ranges from pkt-vs-pkt_end comparisons.

    Handles the four comparison operators in both operand orders; the
    learned range is the compared pointer's fixed offset (its variable
    part must be zero to learn anything, which matches the kernel).
    """
    if insn.insn_class != InsnClass.JMP:
        return

    def pkt_end_pair(a: RegState, b: RegState) -> bool:
        return a.is_pkt_pointer() and b.type == RegType.PTR_TO_PACKET_END

    op = insn.jmp_op
    if pkt_end_pair(dst, src):
        rng = dst.off if dst.var_off.is_const() and dst.var_off.value == 0 else 0
        if op == JmpOp.JLE:  # taken: pkt <= end
            find_good_pkt_pointers(taken_state, taken_dst, rng)
        elif op == JmpOp.JLT:  # taken: pkt < end
            find_good_pkt_pointers(taken_state, taken_dst, rng)
        elif op == JmpOp.JGT:  # false: pkt <= end
            find_good_pkt_pointers(false_state, false_dst, rng)
        elif op == JmpOp.JGE:  # false: pkt < end
            find_good_pkt_pointers(false_state, false_dst, rng)
    elif pkt_end_pair(src, dst):
        rng = src.off if src.var_off.is_const() and src.var_off.value == 0 else 0
        if op == JmpOp.JGE:  # taken: end >= pkt
            find_good_pkt_pointers(taken_state, taken_src, rng)
        elif op == JmpOp.JGT:  # taken: end > pkt
            find_good_pkt_pointers(taken_state, taken_src, rng)
        elif op == JmpOp.JLT:  # false: end >= pkt
            find_good_pkt_pointers(false_state, false_src, rng)
        elif op == JmpOp.JLE:  # false: end > pkt
            find_good_pkt_pointers(false_state, false_src, rng)


# ---------------------------------------------------------------------------
# Scalar id propagation
# ---------------------------------------------------------------------------


def propagate_equal_scalars(state, refined: RegState) -> None:
    """Copy refined bounds to every scalar sharing the register's id.

    Mirrors ``find_equal_scalars``: a 64-bit register-to-register move
    gives both registers one id; refining one refines all.
    """
    if refined.id == 0 or not refined.is_scalar():
        return

    def match(reg: RegState) -> bool:
        return reg is not refined and reg.id == refined.id and reg.is_scalar()

    def update(reg: RegState) -> None:
        reg.var_off = refined.var_off
        reg.umin, reg.umax = refined.umin, refined.umax
        reg.smin, reg.smax = refined.smin, refined.smax

    _cow_update_regs(state, match, update)
