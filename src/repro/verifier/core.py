"""The verifier's main analysis loop.

``Verifier.verify`` runs the full pipeline the kernel runs inside
``bpf_check``:

1. structural validation of the instruction stream (opcode validity,
   register numbers, jump targets, LD_IMM64 pairing),
2. resolution of pseudo immediates (map fds, BTF ids, subprog refs),
3. the path-sensitive ``do_check`` simulation with state pruning and a
   complexity budget,
4. the fixup/rewrite phase (map address materialisation, PROBE_MEM
   marking, ``alu_limit`` rewrites) — into which BVF's memory-access
   sanitation hooks (Section 4.2 of the paper).

Every rejection raises :class:`~repro.errors.VerifierReject` carrying
the errno user space would see, which the acceptance-rate experiment
(Section 6.3) aggregates.
"""

from __future__ import annotations

import errno
from dataclasses import dataclass

from repro import obs
from repro.errors import VerifierReject
from repro.obs.profile import frame_of
from repro.ebpf.insn import Insn
from repro.ebpf.opcodes import (
    AluOp,
    AtomicOp,
    InsnClass,
    JmpOp,
    Mode,
    PseudoCall,
    PseudoSrc,
    Reg,
    Size,
    Src,
    SIZE_BYTES,
    STACK_SIZE,
)
from repro.ebpf.program import BpfProgram, ProgType, VerifiedProgram
from repro.kernel.config import Flaw
from repro.verifier import branches
from repro.verifier.calls import check_helper_call, check_kfunc_call
from repro.verifier.checks import check_alu, check_mem_access
from repro.verifier.env import (
    FuncFrame,
    MAX_CALL_DEPTH,
    VerifierEnv,
    VerifierState,
)
from repro.verifier.log import VerifierLog
from repro.verifier.state import RegState, RegType

__all__ = ["CheckSummary", "Verifier", "verify_program", "MAX_USER_INSNS"]

#: Instruction-count cap for submitted programs (kernel: BPF_MAXINSNS
#: for unprivileged, 1M for privileged; we use the classic cap).
MAX_USER_INSNS = 4096

_VALID_ATOMIC_OPS = {
    int(AtomicOp.ADD),
    int(AtomicOp.OR),
    int(AtomicOp.AND),
    int(AtomicOp.XOR),
    int(AtomicOp.ADD) | int(AtomicOp.FETCH),
    int(AtomicOp.OR) | int(AtomicOp.FETCH),
    int(AtomicOp.AND) | int(AtomicOp.FETCH),
    int(AtomicOp.XOR) | int(AtomicOp.FETCH),
    int(AtomicOp.XCHG),
    int(AtomicOp.CMPXCHG),
}

_VALID_CALL_KINDS = frozenset(
    {int(PseudoCall.HELPER), int(PseudoCall.CALL), int(PseudoCall.KFUNC)}
)


def _build_structure_tables() -> tuple[tuple, tuple, tuple]:
    """Per-opcode-byte structural validity, precomputed once.

    Most of ``_check_insn_fields`` depends only on the opcode byte:
    the class, the operation nibble, and the size/mode bits.  Those
    verdicts are folded into two 256-entry tables — a static rejection
    message (or ``None``) and a residual-check tag for the handful of
    cases that must also look at the operand fields or the kernel
    config.  The checks and their order mirror the original
    per-instruction cascade exactly.
    """
    static: list[str | None] = [None] * 256
    resid: list[str | None] = [None] * 256
    is_call: list[bool] = [False] * 256
    for op in range(256):
        cls = InsnClass(op & 0x07)
        hi = op & 0xF0
        if cls in (InsnClass.ALU, InsnClass.ALU64):
            if hi > int(AluOp.END):
                static[op] = "invalid ALU op"
        elif cls in (InsnClass.JMP, InsnClass.JMP32):
            if hi > int(JmpOp.JSLE):
                static[op] = "invalid JMP op"
            elif cls == InsnClass.JMP32 and hi in (
                int(JmpOp.JA),
                int(JmpOp.CALL),
                int(JmpOp.EXIT),
            ):
                static[op] = "invalid JMP32 op"
            elif cls == InsnClass.JMP and hi == int(JmpOp.CALL):
                resid[op] = "call"
                is_call[op] = True
            elif cls == InsnClass.JMP and hi == int(JmpOp.EXIT):
                resid[op] = "exit"
        elif cls == InsnClass.LD:
            mode = Mode(op & 0xE0)
            if mode == Mode.IMM:
                if Size(op & 0x18) != Size.DW:
                    static[op] = "invalid LD IMM size"
                else:
                    resid[op] = "ld_imm64"
            elif mode in (Mode.ABS, Mode.IND):
                static[op] = "legacy packet access not supported"
            else:
                static[op] = "invalid LD mode"
        elif cls == InsnClass.LDX:
            mode = Mode(op & 0xE0)
            if mode == Mode.MEMSX:
                resid[op] = (
                    "memsx_dw" if Size(op & 0x18) == Size.DW else "memsx"
                )
            elif mode != Mode.MEM:
                static[op] = "invalid LDX mode"
        elif cls == InsnClass.ST:
            if Mode(op & 0xE0) != Mode.MEM:
                static[op] = "invalid ST mode"
        elif cls == InsnClass.STX:
            mode = Mode(op & 0xE0)
            if mode == Mode.ATOMIC:
                resid[op] = (
                    "atomic"
                    if Size(op & 0x18) in (Size.W, Size.DW)
                    else "atomic_badsize"
                )
            elif mode != Mode.MEM:
                static[op] = "invalid STX mode"
    return tuple(static), tuple(resid), tuple(is_call)


_STRUCT_STATIC, _STRUCT_RESID, _STRUCT_IS_CALL = _build_structure_tables()


def _profile_family(insn: Insn) -> str:
    """The profiler's check-family bucket for one instruction."""
    cls = insn.insn_class
    if cls in (InsnClass.ALU, InsnClass.ALU64):
        return "alu"
    if cls == InsnClass.LD:
        return "ld_imm64"
    if cls == InsnClass.LDX:
        return "mem.load"
    if cls == InsnClass.ST:
        return "mem.store"
    if cls == InsnClass.STX:
        return "mem.atomic" if insn.mode == Mode.ATOMIC else "mem.store"
    op = insn.jmp_op
    if op == JmpOp.JA:
        return "jump.ja"
    if op == JmpOp.EXIT:
        return "exit"
    if op == JmpOp.CALL:
        if insn.is_pseudo_call():
            return "call.bpf2bpf"
        if insn.is_kfunc_call():
            return "call.kfunc"
        return "call.helper"
    return "jump.cond"


@dataclass(frozen=True)
class CheckSummary:
    """Everything ``do_check`` computed that the later phases consume.

    The summary is a pure function of ``(insns, kernel config,
    sanitize)`` — it holds no kernel objects, only slot indices and
    scalars — so the frame-level verdict cache can store it once and
    replay it into a fresh :class:`Verifier` bound to a different
    kernel instance.  ``alu_limits`` keeps the original insertion
    order so the fixup phase walks it exactly as the first run did.
    """

    probe_mem: frozenset[int]
    alu_limits: tuple[tuple[int, tuple[int, int]], ...]
    helper_ids: frozenset[int]
    uses_lock_helpers: bool
    max_stack_depth: int
    insns_processed: int
    states_pushed: int
    states_pruned: int
    peak_stack: int
    prune_exact_hits: int
    prune_scan_hits: int
    prune_misses: int
    prune_evictions: int


class Verifier:
    """One verification run over one program."""

    def __init__(
        self,
        kernel,
        prog: BpfProgram,
        log_level: int = 1,
        sanitize: bool = False,
        check_invariants: bool = False,
        collect_exit_states: bool = False,
        cached_check: CheckSummary | None = None,
    ) -> None:
        self.kernel = kernel
        self.config = kernel.config
        self.prog = prog
        self.insns = prog.insns
        self.sanitize = sanitize
        #: abstract-state sanitizer (None = disabled, the hot-path
        #: default: each checkpoint then costs one ``is not None`` test)
        if check_invariants:
            from repro.verifier.sanity import VStateChecker

            self.sanity: object | None = VStateChecker()
        else:
            self.sanity = None
        #: per-exit R0 range summaries for the differential oracle
        #: (None = disabled)
        self.exit_r0_summaries: list[tuple] | None = (
            [] if collect_exit_states else None
        )
        self.log = VerifierLog(log_level)
        self.env = VerifierEnv(self.log, self.config.complexity_limit)
        #: pseudo LD_IMM64 resolutions: slot index -> (kind, payload)
        self.pseudo_refs: dict[int, tuple[str, object]] = {}
        #: loads to be rewritten as fault-handled PROBE_MEM
        self.probe_mem: set[int] = set()
        #: slot index -> (limit, alu_op) for sanitize_ptr_alu rewrites
        self.alu_limits: dict[int, tuple[int, int]] = {}
        self.helper_ids: set[int] = set()
        self.uses_lock_helpers = False
        self.cur_insn_idx = 0
        #: process-current flight recorder (NULL_FLIGHT when disabled;
        #: every emission below is guarded on ``.enabled``/``.level``)
        self._flight = obs.flight()
        #: the env emits prune-decision events only when recording
        self.env.flight = self._flight if self._flight.enabled else None
        #: hierarchical profiler (None when disabled — every hook below
        #: and in checks.py pays one ``is not None`` test)
        prof = obs.profiler()
        self._prof = prof if prof.enabled else None
        self.env.profiler = self._prof
        self.max_stack_depth = 0
        self._prune_points: set[int] = set()
        #: targets of back edges: pruning there means an infinite loop
        self._loop_headers: set[int] = set()
        #: first slots of LD_IMM64 pairs, collected during the
        #: structure pass so pseudo resolution need not rescan
        self._ld_imm64_idxs: list[int] = []
        #: verdict-cache replay: skip ``do_check`` and restore its
        #: recorded outputs instead (None = run the analysis)
        self._cached_check = cached_check

    # --- services used by the check modules --------------------------------

    def reject(self, err: int, message: str) -> None:
        self.log.write(message)
        m = obs.metrics()
        m.counter("verifier.rejected")
        m.observe("verifier.insns_processed", self.env.insns_processed)
        self._emit_prune_metrics(m)
        rec = obs.recorder()
        if rec.enabled:
            rec.event("verifier.reject", errno=err, insn=self.cur_insn_idx,
                      message=message)
        if self._flight.enabled:
            self._flight.verdict(
                "reject", errno=err, insn=self.cur_insn_idx, message=message
            )
        raise VerifierReject(err, message, log=self.log.text())

    def has_flaw(self, flaw: Flaw) -> bool:
        return self.config.has_flaw(flaw)

    def mark_probe_mem(self, idx: int) -> None:
        self.probe_mem.add(idx)
        if self._flight.enabled:
            self._flight.patch(
                idx, "probe_mem", "load rewritten as fault-handled PROBE_MEM"
            )

    def record_alu_limit(self, insn_limit: int, op: AluOp) -> None:
        self.alu_limits[self.cur_insn_idx] = (insn_limit, int(op))
        if self._flight.enabled:
            self._flight.patch(
                self.cur_insn_idx, "alu_limit",
                f"limit={insn_limit} op={AluOp(op).name}",
            )

    def note_helper(self, proto) -> None:
        self.helper_ids.add(int(proto.helper_id))
        if proto.acquires_lock:
            self.uses_lock_helpers = True
        if self._prof is not None:
            self._prof.helpers[proto.name] += 1

    def note_kfunc(self, proto) -> None:
        self.helper_ids.add(proto.btf_id)
        if self._prof is not None:
            self._prof.helpers[
                getattr(proto, "name", f"kfunc#{proto.btf_id}")
            ] += 1

    # --- structural validation ------------------------------------------------

    def _check_structure(self) -> None:
        insns = self.insns
        if not insns:
            self.reject(errno.EINVAL, "empty program")
        if len(insns) > MAX_USER_INSNS:
            self.reject(errno.E2BIG, f"program too large ({len(insns)} insns)")

        expect_filler = False
        for idx, insn in enumerate(insns):
            # Keep the failing-instruction attribution exact for
            # structural rejections (reject events / the explainer).
            self.cur_insn_idx = idx
            if expect_filler:
                if not insn.is_filler():
                    self.reject(errno.EINVAL, f"invalid LD_IMM64 pair at {idx - 1}")
                expect_filler = False
                continue
            if insn.is_filler():
                self.reject(errno.EINVAL, f"unexpected zero opcode at {idx}")
            self._check_insn_fields(idx, insn)
            if insn.is_ld_imm64():
                expect_filler = True
                self._ld_imm64_idxs.append(idx)
        if expect_filler:
            self.reject(errno.EINVAL, "LD_IMM64 missing second slot")

        last = insns[-1]
        if not (last.is_exit() or last.is_filler() and len(insns) >= 2):
            if not last.is_exit():
                self.reject(errno.EINVAL, "last insn is not an exit or jmp")

        self._check_jump_targets()

    def _check_insn_fields(self, idx: int, insn: Insn) -> None:
        op = insn.opcode & 0xFF
        if insn.dst > 10 or insn.src > 10:
            if not (_STRUCT_IS_CALL[op] and insn.src <= 10):
                self.reject(errno.EINVAL, f"invalid register number at {idx}")
        message = _STRUCT_STATIC[op]
        if message is not None:
            self.reject(errno.EINVAL, f"{message} at {idx}")
        kind = _STRUCT_RESID[op]
        if kind is None:
            return
        if kind == "call":
            if insn.src not in _VALID_CALL_KINDS:
                self.reject(errno.EINVAL, f"invalid call kind at {idx}")
            if insn.dst or insn.off:
                self.reject(
                    errno.EINVAL, f"BPF_CALL uses reserved fields at {idx}"
                )
        elif kind == "exit":
            if insn.dst or insn.src or insn.imm or insn.off:
                self.reject(
                    errno.EINVAL, f"BPF_EXIT uses reserved fields at {idx}"
                )
        elif kind == "ld_imm64":
            if insn.src > int(PseudoSrc.MAP_IDX_VALUE):
                self.reject(errno.EINVAL, f"invalid LD_IMM64 pseudo at {idx}")
        elif kind in ("memsx", "memsx_dw"):
            if not self.config.has_bpf_loop:
                self.reject(errno.EINVAL, f"MEMSX loads not supported at {idx}")
            if kind == "memsx_dw":
                self.reject(errno.EINVAL, f"invalid MEMSX size at {idx}")
        else:  # atomic / atomic_badsize
            if insn.imm not in _VALID_ATOMIC_OPS:
                self.reject(errno.EINVAL, f"invalid atomic op at {idx}")
            if kind == "atomic_badsize":
                self.reject(errno.EINVAL, f"invalid atomic size at {idx}")

    def _check_jump_targets(self) -> None:
        n = len(self.insns)
        for idx, insn in enumerate(self.insns):
            if insn.is_filler():
                continue
            self.cur_insn_idx = idx
            target = None
            if insn.is_pseudo_call():
                target = idx + insn.imm + 1
            elif insn.is_jmp() and not insn.is_call() and not insn.is_exit():
                target = idx + insn.off + 1
            if target is None:
                continue
            if not 0 <= target < n:
                self.reject(errno.EINVAL, f"jump out of range from {idx} to {target}")
            if self.insns[target].is_filler():
                self.reject(
                    errno.EINVAL, f"jump into the middle of ldimm64 at {idx}"
                )
            if target <= idx and not insn.is_pseudo_call():
                # Back edge: its target must never be pruned — a state
                # repeating there is an infinite loop, not progress.
                self._loop_headers.add(target)
            self._prune_points.add(target)
            if insn.is_cond_jmp():
                self._prune_points.add(idx + 1)

    # --- pseudo resolution --------------------------------------------------------

    def _resolve_pseudo(self) -> None:
        for idx in self._ld_imm64_idxs:
            self.cur_insn_idx = idx
            insn = self.insns[idx]
            kind = PseudoSrc(insn.src)
            if kind == PseudoSrc.RAW:
                continue
            if kind == PseudoSrc.MAP_FD:
                bpf_map = self.kernel.map_by_fd(insn.imm64 & 0xFFFFFFFF)
                if bpf_map is None:
                    self.reject(errno.EBADF, f"fd {insn.imm64} is not a map")
                self.pseudo_refs[idx] = ("map", bpf_map)
            elif kind == PseudoSrc.MAP_VALUE:
                fd = insn.imm64 & 0xFFFFFFFF
                off = insn.imm64 >> 32
                bpf_map = self.kernel.map_by_fd(fd)
                if bpf_map is None:
                    self.reject(errno.EBADF, f"fd {fd} is not a map")
                from repro.ebpf.maps import MapType

                if not hasattr(bpf_map, "_values") or (
                    bpf_map.map_type == MapType.PROG_ARRAY
                ):
                    self.reject(
                        errno.EINVAL, "map type does not support direct value access"
                    )
                if off >= bpf_map.value_size:
                    self.reject(errno.EINVAL, f"direct value offset {off} too large")
                self.pseudo_refs[idx] = ("map_value", (bpf_map, off))
            elif kind == PseudoSrc.BTF_ID:
                if not self.config.has_btf_access:
                    self.reject(errno.EINVAL, "BTF object access not supported")
                obj = self.kernel.btf.object(insn.imm64)
                if obj is None:
                    self.reject(errno.EINVAL, f"invalid btf_id {insn.imm64}")
                self.pseudo_refs[idx] = ("btf", obj)
            elif kind == PseudoSrc.FUNC:
                self.reject(errno.EINVAL, "pseudo func loads not supported")
            else:
                self.reject(errno.EINVAL, f"unsupported pseudo src {kind}")

    # --- main loop ---------------------------------------------------------------------

    def verify(self) -> VerifiedProgram:
        """Run the verifier; returns the rewritten program or raises."""
        m = obs.metrics()
        m.counter("verifier.programs")
        if self._flight.enabled:
            self._flight.begin(self.prog.name, len(self.insns))
        rec = obs.recorder()
        prof = self._prof
        if not rec.enabled and prof is None:
            # Hot path: no spans, no frames, just the pipeline.
            self._check_structure()
            self._resolve_pseudo()
            if self._cached_check is not None:
                self._restore_check(self._cached_check)
            else:
                self._do_check()
            verified = self._fixup()
        else:
            # Recorder spans are shared no-ops when only profiling (and
            # vice versa), so one instrumented pipeline serves both.
            with rec.span("verifier.verify", insns=len(self.insns),
                          prog=self.prog.name):
                with rec.span("verifier.check_structure"), \
                        frame_of(prof, "structure"):
                    self._check_structure()
                with rec.span("verifier.resolve_pseudo"), \
                        frame_of(prof, "resolve"):
                    self._resolve_pseudo()
                with rec.span("verifier.do_check"), \
                        frame_of(prof, "do_check"):
                    if self._cached_check is not None:
                        self._restore_check(self._cached_check)
                    else:
                        self._do_check()
                with rec.span("verifier.fixup"), frame_of(prof, "fixup"):
                    verified = self._fixup()
        m.counter("verifier.accepted")
        m.observe("verifier.insns_processed", self.env.insns_processed)
        m.observe("verifier.max_stack_depth", self.max_stack_depth)
        m.gauge_max("verifier.peak_insns_processed", self.env.insns_processed)
        self._emit_prune_metrics(m)
        if self._flight.enabled:
            self._flight.verdict("accept", insn=self.cur_insn_idx)
        verified.check_summary = self._summarize_check()
        return verified

    def _emit_prune_metrics(self, m) -> None:
        env = self.env
        m.counter("verifier.prune.exact_hits", env.prune_exact_hits)
        m.counter("verifier.prune.scan_hits", env.prune_scan_hits)
        m.counter("verifier.prune.misses", env.prune_misses)
        m.counter("verifier.prune.evictions", env.prune_evictions)

    def _summarize_check(self) -> CheckSummary:
        env = self.env
        return CheckSummary(
            probe_mem=frozenset(self.probe_mem),
            alu_limits=tuple(self.alu_limits.items()),
            helper_ids=frozenset(self.helper_ids),
            uses_lock_helpers=self.uses_lock_helpers,
            max_stack_depth=self.max_stack_depth,
            insns_processed=env.insns_processed,
            states_pushed=env.states_pushed,
            states_pruned=env.states_pruned,
            peak_stack=env.peak_stack,
            prune_exact_hits=env.prune_exact_hits,
            prune_scan_hits=env.prune_scan_hits,
            prune_misses=env.prune_misses,
            prune_evictions=env.prune_evictions,
        )

    def _restore_check(self, summary: CheckSummary) -> None:
        """Reinstate a cached ``do_check`` outcome on a fresh verifier.

        Only valid for a program whose prior run *accepted*: the fixup
        phase and the metric emissions then read exactly the fields
        restored here, so the resulting :class:`VerifiedProgram` and
        metrics are bit-identical to a full re-analysis.
        """
        self.probe_mem = set(summary.probe_mem)
        self.alu_limits = dict(summary.alu_limits)
        self.helper_ids = set(summary.helper_ids)
        self.uses_lock_helpers = summary.uses_lock_helpers
        self.max_stack_depth = summary.max_stack_depth
        env = self.env
        env.insns_processed = summary.insns_processed
        env.states_pushed = summary.states_pushed
        env.states_pruned = summary.states_pruned
        env.peak_stack = summary.peak_stack
        env.prune_exact_hits = summary.prune_exact_hits
        env.prune_scan_hits = summary.prune_scan_hits
        env.prune_misses = summary.prune_misses
        env.prune_evictions = summary.prune_evictions

    def _initial_state(self) -> VerifierState:
        ctx = RegState.pointer(RegType.PTR_TO_CTX)
        return VerifierState(frames=[FuncFrame.entry(ctx)], insn_idx=0)

    def _do_check(self) -> None:
        state: VerifierState | None = self._initial_state()
        env = self.env
        flight = self._flight if self._flight.enabled else None
        prof = self._prof
        while state is not None:
            env.insns_processed += 1
            if env.insns_processed > env.complexity_limit:
                self.reject(
                    errno.E2BIG,
                    f"BPF program is too large. Processed "
                    f"{env.insns_processed} insn",
                )
            idx = state.insn_idx
            if not 0 <= idx < len(self.insns):
                self.reject(errno.EACCES, f"fell off the end at insn {idx}")
            insn = self.insns[idx]
            if insn.is_filler():
                self.reject(errno.EINVAL, f"reached ldimm64 filler at {idx}")
            self.cur_insn_idx = idx
            if flight is not None:
                flight.step(idx, state)

            if self.log.level >= 2:
                from repro.ebpf.disasm import format_insn

                regs_text = " ".join(
                    f"R{i}={state.regs[i]}"
                    for i in range(11)
                    if state.regs[i].type.value != "not_init"
                )
                self.log.write(f"{idx}: {format_insn(insn)} ; {regs_text}")

            if self.sanity is not None and idx in self._prune_points:
                self.sanity.check_state(state, "prune", idx)

            if prof is None:
                if idx in self._loop_headers:
                    # Kernel behaviour: reaching a back-edge target
                    # with a state subsumed by one already verified
                    # there means the loop made no progress.
                    if env.loop_header_seen(state):
                        self.reject(errno.EINVAL, "infinite loop detected")
                elif idx in self._prune_points and env.is_visited(state):
                    state = env.pop_state()
                    continue
                state = self._step(state, insn)
            else:
                if idx in self._loop_headers:
                    prof.push("prune")
                    try:
                        if env.loop_header_seen(state):
                            self.reject(
                                errno.EINVAL, "infinite loop detected"
                            )
                    finally:
                        prof.pop()
                elif idx in self._prune_points:
                    prof.push("prune")
                    try:
                        pruned = env.is_visited(state)
                    finally:
                        prof.pop()
                    if pruned:
                        state = env.pop_state()
                        continue
                prof.push(_profile_family(insn))
                try:
                    state = self._step(state, insn)
                finally:
                    prof.pop()
            if state is None:
                state = env.pop_state()

    def _step(self, state: VerifierState, insn: Insn) -> VerifierState | None:
        """Verify one instruction; returns the continuing state."""
        cls = insn.insn_class
        idx = state.insn_idx

        if cls in (InsnClass.ALU, InsnClass.ALU64):
            check_alu(self, state, insn)
            state.insn_idx = idx + 1
            return state
        if cls == InsnClass.LD:
            self._do_ld_imm64(state, insn, idx)
            state.insn_idx = idx + 2
            return state
        if cls == InsnClass.LDX:
            size = SIZE_BYTES[insn.size]
            result = check_mem_access(
                self, state, insn, insn.src, insn.off, size, is_write=False
            )
            if result is None:
                result = RegState.unknown_scalar()
            if insn.mode == Mode.MEMSX and result.is_scalar():
                result = RegState.unknown_scalar()
            if insn.dst == Reg.R10:
                self.reject(errno.EACCES, "frame pointer is read only")
            state.regs[insn.dst] = result
            state.insn_idx = idx + 1
            return state
        if cls == InsnClass.ST:
            size = SIZE_BYTES[insn.size]
            check_mem_access(
                self,
                state,
                insn,
                insn.dst,
                insn.off,
                size,
                is_write=True,
                src_reg=RegState.const_scalar(insn.imm),
            )
            state.insn_idx = idx + 1
            return state
        if cls == InsnClass.STX:
            if insn.mode == Mode.ATOMIC:
                self._do_atomic(state, insn)
            else:
                src_reg = state.regs[insn.src]
                if src_reg.type == RegType.NOT_INIT:
                    self.reject(errno.EACCES, f"R{insn.src} !read_ok")
                size = SIZE_BYTES[insn.size]
                if src_reg.is_pointer() and size != 8:
                    self.reject(
                        errno.EACCES, f"R{insn.src} partial spill of a pointer"
                    )
                check_mem_access(
                    self,
                    state,
                    insn,
                    insn.dst,
                    insn.off,
                    size,
                    is_write=True,
                    src_reg=src_reg,
                )
            state.insn_idx = idx + 1
            return state
        # JMP / JMP32
        op = insn.jmp_op
        if op == JmpOp.JA:
            state.insn_idx = idx + insn.off + 1
            return state
        if op == JmpOp.EXIT:
            return self._do_exit(state)
        if op == JmpOp.CALL:
            return self._do_call(state, insn)
        return self._do_cond_jmp(state, insn)

    # --- individual instruction kinds ------------------------------------------------

    def _do_ld_imm64(self, state: VerifierState, insn: Insn, idx: int) -> None:
        ref = self.pseudo_refs.get(idx)
        dst = insn.dst
        if ref is None:
            state.regs[dst] = RegState.const_scalar(insn.imm64)
            return
        kind, payload = ref
        if kind == "map":
            reg = RegState.pointer(RegType.CONST_PTR_TO_MAP)
            reg.map = payload
            state.regs[dst] = reg
        elif kind == "map_value":
            bpf_map, off = payload
            reg = RegState.pointer(RegType.PTR_TO_MAP_VALUE)
            reg.map = bpf_map
            reg.off = off
            state.regs[dst] = reg
        elif kind == "btf":
            reg = RegState.pointer(RegType.PTR_TO_BTF_ID)
            reg.btf = payload
            state.regs[dst] = reg
        else:  # pragma: no cover - resolution rejects other kinds
            self.reject(errno.EINVAL, f"unhandled pseudo ref {kind}")

    def _do_atomic(self, state: VerifierState, insn: Insn) -> None:
        size = SIZE_BYTES[insn.size]
        src_reg = state.regs[insn.src]
        if src_reg.type == RegType.NOT_INIT:
            self.reject(errno.EACCES, f"R{insn.src} !read_ok")
        if src_reg.is_pointer():
            self.reject(errno.EACCES, f"R{insn.src} atomic operand must be scalar")
        # The target must be both readable and writable.
        check_mem_access(
            self, state, insn, insn.dst, insn.off, size, is_write=False
        )
        check_mem_access(
            self,
            state,
            insn,
            insn.dst,
            insn.off,
            size,
            is_write=True,
            src_reg=src_reg,
        )
        if insn.imm & int(AtomicOp.FETCH):
            if insn.imm == int(AtomicOp.CMPXCHG):
                state.regs[Reg.R0] = RegState.unknown_scalar()
            else:
                state.regs[insn.src] = RegState.unknown_scalar()

    def _do_exit(self, state: VerifierState) -> VerifierState | None:
        r0 = state.regs[Reg.R0]
        if r0.type == RegType.NOT_INIT:
            self.reject(errno.EACCES, "R0 !read_ok")
        self.max_stack_depth = max(
            self.max_stack_depth, sum(f.stack.depth for f in state.frames)
        )
        if len(state.frames) > 1:
            callsite = state.cur.callsite
            state.frames.pop()
            state.regs[Reg.R0] = r0.clone()
            for regno in (Reg.R1, Reg.R2, Reg.R3, Reg.R4, Reg.R5):
                state.regs[regno] = RegState.not_init()
            state.insn_idx = callsite
            return state
        if not r0.is_scalar():
            self.reject(errno.EACCES, "R0 leaks addr as return value")
        if state.refs:
            ref_id, acquired_at = next(iter(state.refs.items()))
            self.reject(
                errno.EINVAL,
                f"Unreleased reference id={ref_id} alloc_insn={acquired_at}",
            )
        if state.active_lock is not None:
            self.reject(
                errno.EINVAL, "bpf_spin_lock is held but program exits"
            )
        if self.exit_r0_summaries is not None:
            # Final-range fingerprint material for the differential
            # oracle: the abstract R0 this path exits with.
            self.exit_r0_summaries.append(
                (
                    r0.umin,
                    r0.umax,
                    r0.smin,
                    r0.smax,
                    r0.var_off.value,
                    r0.var_off.mask,
                )
            )
        return None  # path complete

    def _do_call(self, state: VerifierState, insn: Insn) -> VerifierState | None:
        idx = state.insn_idx
        if insn.is_pseudo_call():
            target = idx + insn.imm + 1
            if state.call_depth >= MAX_CALL_DEPTH:
                self.reject(
                    errno.E2BIG,
                    f"the call stack of {state.call_depth} frames is too deep",
                )
            total_stack = sum(f.stack.depth for f in state.frames)
            if total_stack > STACK_SIZE:
                self.reject(
                    errno.EACCES,
                    f"combined stack size of {state.call_depth} calls is too large",
                )
            caller = state.cur
            callee = FuncFrame.entry(
                RegState.not_init(),
                frameno=caller.frameno + 1,
                callsite=idx + 1,
            )
            for regno in (Reg.R1, Reg.R2, Reg.R3, Reg.R4, Reg.R5):
                callee.regs[regno] = caller.regs[regno].clone()
            for regno in (Reg.R1, Reg.R2, Reg.R3, Reg.R4, Reg.R5):
                caller.regs[regno] = RegState.not_init()
            caller.regs[Reg.R0] = RegState.not_init()
            state.frames.append(callee)
            state.insn_idx = target
            return state
        if insn.is_kfunc_call():
            check_kfunc_call(self, state, insn)
            if self.sanity is not None:
                self.sanity.check_state(state, "kfunc-return", idx)
            state.insn_idx = idx + 1
            return state
        check_helper_call(self, state, insn)
        if self.sanity is not None:
            self.sanity.check_state(state, "helper-return", idx)
        state.insn_idx = idx + 1
        return state

    def _do_cond_jmp(self, state: VerifierState, insn: Insn) -> VerifierState | None:
        idx = state.insn_idx
        is64 = insn.insn_class == InsnClass.JMP
        regs = state.regs
        dst = regs[insn.dst]
        if dst.type == RegType.NOT_INIT:
            self.reject(errno.EACCES, f"R{insn.dst} !read_ok")
        if insn.src_bit == Src.X:
            if insn.imm:
                self.reject(errno.EINVAL, "BPF_JMP uses reserved imm field")
            src = regs[insn.src]
            if src.type == RegType.NOT_INIT:
                self.reject(errno.EACCES, f"R{insn.src} !read_ok")
        else:
            if insn.src:
                self.reject(errno.EINVAL, "BPF_JMP uses reserved src field")
            src = RegState.const_scalar(
                insn.imm if is64 else insn.imm & 0xFFFFFFFF
            )

        op = insn.jmp_op
        if self._prof is not None:
            self._prof.jmp_ops[f"{op.name}{'' if is64 else '32'}"] += 1
        taken = branches.is_branch_taken(dst, src, op, is64)
        if taken == -1 and insn.src_bit == Src.X:
            swapped = branches.is_branch_taken(src, dst, _SWAP_OP.get(op, op), is64)
            if swapped != -1:
                taken = swapped

        if taken == 1:
            state.insn_idx = idx + insn.off + 1
            return state
        if taken == 0:
            state.insn_idx = idx + 1
            return state

        # Fork: `taken_state` follows the jump, `state` falls through.
        taken_state = state.clone()
        taken_state.insn_idx = idx + insn.off + 1
        taken_state.parent_idx = idx
        state.insn_idx = idx + 1

        # The refinement helpers mutate these records in place, so take
        # writable (COW-cloned) views.  ``wreg`` is idempotent: when
        # dst == src both names resolve to the same record, preserving
        # the aliasing the in-place updates rely on.
        t_dst = taken_state.wreg(insn.dst)
        f_dst = state.wreg(insn.dst)
        if insn.src_bit == Src.X:
            t_src = taken_state.wreg(insn.src)
            f_src = state.wreg(insn.src)
        else:
            t_src = src.clone()
            f_src = src.clone()

        self._apply_branch_knowledge(
            insn, state, taken_state, t_dst, t_src, f_dst, f_src, is64
        )
        if self._flight.enabled:
            self._flight.refine(
                idx, f"R{insn.dst}",
                f"{insn.jmp_op.name} taken:{t_dst} else:{f_dst}",
            )

        # Drop impossible branches (contradictory refined bounds).
        push_taken = not (t_dst.is_bounds_broken() or t_src.is_bounds_broken())
        keep_false = not (f_dst.is_bounds_broken() or f_src.is_bounds_broken())
        if self.sanity is not None:
            # Branch-merge checkpoint: only surviving states must hold
            # the invariants (dropped sides are contradictory by
            # construction).
            if push_taken:
                self.sanity.check_state(taken_state, "branch", idx)
            if keep_false:
                self.sanity.check_state(state, "branch", idx)
        if push_taken:
            self.env.push_state(taken_state)
        if keep_false:
            return state
        return None

    def _apply_branch_knowledge(
        self, insn, false_state, taken_state, t_dst, t_src, f_dst, f_src, is64
    ) -> None:
        op = insn.jmp_op

        # Maybe-null pointer compared against zero.
        if op in (JmpOp.JEQ, JmpOp.JNE) and is64:
            for reg_pair, other_pair in (((t_dst, f_dst), (t_src, f_src)),
                                         ((t_src, f_src), (t_dst, f_dst))):
                t_reg, f_reg = reg_pair
                t_other, _ = other_pair
                if (
                    f_reg.is_maybe_null()
                    and t_other.is_scalar()
                    and t_other.is_const()
                    and t_other.const_value() == 0
                ):
                    null_in_taken = op == JmpOp.JEQ
                    branches.mark_ptr_or_null(
                        taken_state, t_reg.id, is_null=null_in_taken
                    )
                    branches.mark_ptr_or_null(
                        false_state, f_reg.id, is_null=not null_in_taken
                    )
                    return

            # Pointer-to-pointer equality: nullness propagation (Bug #1).
            if t_dst.is_pointer() and t_src.is_pointer():
                eq_state = taken_state if op == JmpOp.JEQ else false_state
                eq_dst = t_dst if op == JmpOp.JEQ else f_dst
                eq_src = t_src if op == JmpOp.JEQ else f_src
                branches.propagate_nullness(
                    eq_state,
                    eq_dst,
                    eq_src,
                    self.config,
                    flaw_active=self.has_flaw(Flaw.NULLNESS_PROPAGATION),
                )
                return

        # Packet range discovery.
        branches.try_match_pkt_pointers(
            insn, t_dst, t_src, taken_state, false_state, t_dst, t_src, f_dst, f_src
        )

        # Scalar bounds refinement.
        branches.refine_branch(t_dst, t_src, op, taken=True, is64=is64)
        branches.refine_branch(f_dst, f_src, op, taken=False, is64=is64)
        for reg, st in ((t_dst, taken_state), (t_src, taken_state),
                        (f_dst, false_state), (f_src, false_state)):
            branches.propagate_equal_scalars(st, reg)

    # --- fixup ------------------------------------------------------------------------

    def _fixup(self) -> VerifiedProgram:
        from repro.verifier.fixup import run_fixup

        return run_fixup(self)


_SWAP_OP = {
    JmpOp.JEQ: JmpOp.JEQ,
    JmpOp.JNE: JmpOp.JNE,
    JmpOp.JGT: JmpOp.JLT,
    JmpOp.JGE: JmpOp.JLE,
    JmpOp.JLT: JmpOp.JGT,
    JmpOp.JLE: JmpOp.JGE,
    JmpOp.JSGT: JmpOp.JSLT,
    JmpOp.JSGE: JmpOp.JSLE,
    JmpOp.JSLT: JmpOp.JSGT,
    JmpOp.JSLE: JmpOp.JSGE,
}


def verify_program(
    kernel,
    prog: BpfProgram,
    log_level: int = 1,
    sanitize: bool = False,
    check_invariants: bool = False,
) -> VerifiedProgram:
    """Convenience wrapper: run the verifier over ``prog``."""
    return Verifier(
        kernel,
        prog,
        log_level=log_level,
        sanitize=sanitize,
        check_invariants=check_invariants,
    ).verify()
