"""Abstract-state invariant sanitizer for the verifier itself.

The paper sanitizes *generated programs* so that a wrongly-accepted
program crashes loudly at runtime.  :class:`VStateChecker` is the
static-analysis analogue pointed at the verifier's own tnum/range
domain: at every checkpoint where the verifier commits to an abstract
state — state prune, branch merge, helper return — it re-validates the
representation invariants the rest of the analysis silently assumes.
A violation means the verifier is reasoning from an impossible state;
every conclusion downstream of it (bounds checks, pruning decisions)
is unsound, exactly the over/under-approximation bug class the
differential oracle hunts for from the outside.

Checked invariants, per live register (and per spilled stack slot):

- ``INV_TNUM_WELLFORMED`` — tnum representation: ``value & mask == 0``
  and both fields within u64;
- ``INV_BOUNDS_DOMAIN`` — interval bounds live in their domains:
  ``0 <= umin/umax <= U64_MAX``, ``S64_MIN <= smin/smax <= S64_MAX``
  (Python ints are unbounded, so un-wrapped arithmetic shows up here);
- ``INV_BOUNDS_ORDER`` — ``umin <= umax`` and ``smin <= smax``;
- ``INV_BOUNDS_EMPTY`` — the signed and unsigned intervals describe a
  non-empty common set of concrete u64 values;
- ``INV_TNUM_RANGE_SYNC`` — tnum and unsigned interval agree:
  ``tnum.min <= umax`` and ``tnum.max >= umin``;
- ``INV_U32_BOUNDS`` — the derived u32 view is ordered and within
  ``[0, U32_MAX]``, and its subreg tnum agrees with it;
- ``INV_POINTER_OFFSET`` — pointer registers carry a sane fixed
  offset (``|off| < 2**31``, int-typed).

The checker raises :class:`~repro.errors.InvariantViolation`; message
text embeds the invariant code so :mod:`repro.obs.taxonomy` classifies
each violation to its own reason code.  The hot path pays one
``is not None`` test per checkpoint when the checker is disabled
(the default); `benchmarks/test_throughput.py` keeps that under the
5% budget.
"""

from __future__ import annotations

from repro.errors import InvariantViolation
from repro.verifier.state import RegState, RegType, S64_MAX, S64_MIN, U64_MAX

__all__ = ["VStateChecker", "INVARIANT_CODES"]

_U32_MAX = (1 << 32) - 1
#: Kernel pointer offsets are bounded (BPF_MAX_VAR_OFF and friends);
#: anything beyond +/-2^31 in the *fixed* part is a tracking bug.
_MAX_PTR_OFF = 1 << 31

INVARIANT_CODES = (
    "INV_TNUM_WELLFORMED",
    "INV_BOUNDS_DOMAIN",
    "INV_BOUNDS_ORDER",
    "INV_BOUNDS_EMPTY",
    "INV_TNUM_RANGE_SYNC",
    "INV_U32_BOUNDS",
    "INV_POINTER_OFFSET",
)


def _signed_unsigned_disjoint(reg: RegState) -> bool:
    """True when no concrete u64 value satisfies both interval views.

    The concrete sets are ``{x : umin <= x <= umax}`` and
    ``{x : smin <= s64(x) <= smax}``; the latter is ``[smin, smax]``
    shifted into u64 space — contiguous when the sign is known, a
    wrap-around pair of segments when ``smin < 0 <= smax``.
    """
    if reg.smin >= 0:
        # Signed set is [smin, smax] directly.
        return max(reg.umin, reg.smin) > min(reg.umax, reg.smax)
    if reg.smax < 0:
        # Signed set is [2^64+smin, 2^64+smax].
        lo = reg.smin + (1 << 64)
        hi = reg.smax + (1 << 64)
        return max(reg.umin, lo) > min(reg.umax, hi)
    # Sign unknown: signed set is [0, smax] u [2^64+smin, U64_MAX].
    return reg.umin > reg.smax and reg.umax < reg.smin + (1 << 64)


class VStateChecker:
    """Validates verifier abstract states at checkpoints.

    One checker instance serves one verification run; ``violations``
    counts how many states it inspected (cheap sanity telemetry).
    """

    __slots__ = ("states_checked",)

    def __init__(self) -> None:
        self.states_checked = 0

    # ------------------------------------------------------------ entry --

    def check_state(self, vstate, checkpoint: str, insn_idx: int) -> None:
        """Validate every live register and spilled slot of ``vstate``."""
        self.states_checked += 1
        for frame in vstate.frames:
            frameno = frame.frameno
            for regno, reg in enumerate(frame.regs):
                if reg.type is not RegType.NOT_INIT:
                    self._check_reg(reg, checkpoint, insn_idx, frameno, regno)
            for _slot_idx, slot in frame.stack.iter_slots():
                spilled = getattr(slot, "spilled", None)
                if spilled is not None and spilled.type is not RegType.NOT_INIT:
                    self._check_reg(spilled, checkpoint, insn_idx, frameno, -1)

    def check_reg(self, reg: RegState, checkpoint: str = "direct",
                  insn_idx: int = -1) -> None:
        """Validate a single register state (test/tooling entry point)."""
        self._check_reg(reg, checkpoint, insn_idx, -1, -1)

    # ----------------------------------------------------------- checks --

    def _check_reg(
        self,
        reg: RegState,
        checkpoint: str,
        insn_idx: int,
        frameno: int,
        regno: int,
    ) -> None:
        def fail(code: str, detail: str) -> None:
            raise InvariantViolation(
                code,
                detail,
                checkpoint=checkpoint,
                insn_idx=insn_idx,
                frameno=frameno,
                regno=regno,
            )

        var_off = reg.var_off
        if var_off.value & var_off.mask:
            fail(
                "INV_TNUM_WELLFORMED",
                f"tnum value={var_off.value:#x} overlaps mask={var_off.mask:#x}",
            )
        if not (0 <= var_off.value <= U64_MAX and 0 <= var_off.mask <= U64_MAX):
            fail(
                "INV_TNUM_WELLFORMED",
                f"tnum fields outside u64: value={var_off.value:#x} "
                f"mask={var_off.mask:#x}",
            )

        if not (0 <= reg.umin <= U64_MAX and 0 <= reg.umax <= U64_MAX):
            fail(
                "INV_BOUNDS_DOMAIN",
                f"unsigned bounds outside u64: umin={reg.umin} umax={reg.umax}",
            )
        if not (S64_MIN <= reg.smin <= S64_MAX and S64_MIN <= reg.smax <= S64_MAX):
            fail(
                "INV_BOUNDS_DOMAIN",
                f"signed bounds outside s64: smin={reg.smin} smax={reg.smax}",
            )

        if reg.umin > reg.umax:
            fail("INV_BOUNDS_ORDER", f"umin={reg.umin} > umax={reg.umax}")
        if reg.smin > reg.smax:
            fail("INV_BOUNDS_ORDER", f"smin={reg.smin} > smax={reg.smax}")

        if _signed_unsigned_disjoint(reg):
            fail(
                "INV_BOUNDS_EMPTY",
                f"signed [{reg.smin}, {reg.smax}] and unsigned "
                f"[{reg.umin}, {reg.umax}] share no concrete value",
            )

        if var_off.value > reg.umax or (var_off.value | var_off.mask) < reg.umin:
            fail(
                "INV_TNUM_RANGE_SYNC",
                f"tnum [{var_off.min_value()}, {var_off.max_value()}] "
                f"disagrees with unsigned [{reg.umin}, {reg.umax}]",
            )

        u32_lo, u32_hi = reg.u32_bounds()
        if not (0 <= u32_lo <= u32_hi <= _U32_MAX):
            fail(
                "INV_U32_BOUNDS",
                f"u32 view broken: [{u32_lo}, {u32_hi}]",
            )
        sub = var_off.subreg()
        if sub.min_value() > u32_hi or sub.max_value() < u32_lo:
            fail(
                "INV_U32_BOUNDS",
                f"subreg tnum [{sub.min_value()}, {sub.max_value()}] "
                f"disagrees with u32 view [{u32_lo}, {u32_hi}]",
            )

        if reg.is_pointer():
            if not isinstance(reg.off, int) or abs(reg.off) >= _MAX_PTR_OFF:
                fail(
                    "INV_POINTER_OFFSET",
                    f"pointer fixed offset {reg.off!r} out of range",
                )
