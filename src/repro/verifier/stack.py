"""Verifier stack-slot tracking.

The eBPF stack is 512 bytes below the frame pointer (R10).  The
verifier tracks every byte as one of

- ``INVALID`` — never written; reads are rejected,
- ``MISC`` — written with some unknown scalar bytes,
- ``ZERO`` — written with constant zero,
- ``SPILL`` — part of an 8-byte register spill whose full
  :class:`~repro.verifier.state.RegState` is preserved (this is how
  pointers survive a round-trip through the stack).

Slots are 8-byte aligned groups; a spill occupies one aligned slot.
Partial overwrites of a spill degrade it to MISC bytes, exactly like
the kernel.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.ebpf.opcodes import STACK_SIZE
from repro.verifier.state import RegState

__all__ = ["SlotType", "StackState", "STACK_SIZE"]


class SlotType(enum.Enum):
    INVALID = " "
    MISC = "m"
    ZERO = "0"
    SPILL = "r"


@dataclass
class _Slot:
    """One 8-byte stack slot: per-byte types plus an optional spill."""

    bytes: list[SlotType] = field(default_factory=lambda: [SlotType.INVALID] * 8)
    spilled: RegState | None = None
    #: copy-on-write marker — see :class:`RegState.shared`.  A shared
    #: slot (aliased by another stack's slot dict) must be replaced,
    #: never mutated; writers go through ``StackState._wslot``.
    shared: bool = field(default=False, compare=False, repr=False)

    def clone(self) -> "_Slot":
        return _Slot(
            bytes=list(self.bytes),
            spilled=self.spilled.clone() if self.spilled else None,
        )

    def is_full_spill(self) -> bool:
        return self.spilled is not None and all(
            b == SlotType.SPILL for b in self.bytes
        )


class StackState:
    """Abstract state of one call frame's stack.

    Cloning is copy-on-write: :meth:`cow_clone` shares the slot dict
    between the original and the copy and defers all copying to the
    first write on either side.  Branch forks and explored-set
    snapshots clone constantly but write rarely, so almost all of the
    former deep-copy work (a dict plus an 8-element list and spilled
    register per slot) never happens.  Reads never unshare.
    """

    def __init__(self) -> None:
        #: slot index -> _Slot; slot i covers bytes [-(8*i+8), -(8*i))
        self._slots: dict[int, _Slot] = {}
        #: deepest byte written (positive number of bytes below fp)
        self.depth = 0
        #: ``True`` while ``_slots`` is aliased by another StackState
        self._shared_slots = False

    # --- copy-on-write plumbing -------------------------------------------

    def cow_clone(self) -> "StackState":
        """A logically independent copy that shares storage until written."""
        self._shared_slots = True
        new = StackState.__new__(StackState)
        new._slots = self._slots
        new.depth = self.depth
        new._shared_slots = True
        return new

    def _own_slots(self) -> None:
        """Make the slot dict private (its slots stay shared)."""
        if self._shared_slots:
            for slot in self._slots.values():
                slot.shared = True
            self._slots = dict(self._slots)
            self._shared_slots = False

    def _wslot(self, index: int) -> _Slot:
        """A writable slot at ``index``, cloning shared storage as needed."""
        self._own_slots()
        slot = self._slots.get(index)
        if slot is None:
            slot = _Slot()
            self._slots[index] = slot
        elif slot.shared:
            spilled = slot.spilled
            if spilled is not None:
                spilled.shared = True
            slot = _Slot(bytes=list(slot.bytes), spilled=spilled)
            self._slots[index] = slot
        return slot

    def cow_update_spills(self, match, apply) -> None:
        """Apply ``apply`` to every spilled register satisfying ``match``.

        The copy-on-write replacement for iterating slots and mutating
        ``slot.spilled`` in place: matching is read-only, and only
        matched slots (and their spilled registers) are unshared.
        """
        matched = [
            index
            for index, slot in self._slots.items()
            if slot.spilled is not None and match(slot.spilled)
        ]
        for index in matched:
            slot = self._wslot(index)
            reg = slot.spilled
            if reg.shared:
                reg = reg.clone()
                slot.spilled = reg
            apply(reg)

    # --- addressing -------------------------------------------------------

    @staticmethod
    def in_bounds(off: int, size: int) -> bool:
        """Is ``[fp+off, fp+off+size)`` within the 512-byte stack?"""
        return -STACK_SIZE <= off and off + size <= 0

    def _slot_and_byte(self, off: int) -> tuple[int, int]:
        """Map a negative fp offset to (slot index, byte-in-slot)."""
        pos = -off - 1  # 0 for byte at fp-1
        return pos // 8, 7 - (pos % 8)

    # --- writes ---------------------------------------------------------------

    def _note_depth(self, off: int) -> None:
        self.depth = max(self.depth, -off)

    def _degrade_spill(self, slot: _Slot) -> None:
        """Partial overwrite turns remaining spill bytes into MISC."""
        if slot.spilled is not None:
            slot.spilled = None
            slot.bytes = [
                SlotType.MISC if b == SlotType.SPILL else b for b in slot.bytes
            ]

    def write_reg(self, off: int, reg: RegState) -> None:
        """An 8-byte aligned register spill preserving full state."""
        slot_idx, _ = self._slot_and_byte(off)
        slot = self._wslot(slot_idx)
        slot.spilled = reg.clone()
        slot.bytes = [SlotType.SPILL] * 8
        self._note_depth(off)

    def write_misc(self, off: int, size: int, zero: bool = False) -> None:
        """A store of scalar data (or a misaligned/partial store)."""
        kind = SlotType.ZERO if zero else SlotType.MISC
        for i in range(size):
            slot_idx, byte_idx = self._slot_and_byte(off + i)
            slot = self._wslot(slot_idx)
            self._degrade_spill(slot)
            slot.bytes[byte_idx] = kind
        self._note_depth(off)

    # --- reads -------------------------------------------------------------------

    def read(self, off: int, size: int) -> tuple[RegState | None, str]:
        """Validate a read and produce the filled register state.

        Returns ``(reg, error)``; on success error is "".  A full
        aligned read of a spill slot restores the spilled register;
        other initialised reads produce an unknown scalar (zero bytes
        produce a constant where fully zero).
        """
        if size == 8 and off % 8 == 0:
            slot_idx, _ = self._slot_and_byte(off)
            slot = self._slots.get(slot_idx)
            if slot is not None and slot.is_full_spill():
                return slot.spilled.clone(), ""

        all_zero = True
        for i in range(size):
            slot_idx, byte_idx = self._slot_and_byte(off + i)
            slot = self._slots.get(slot_idx)
            kind = slot.bytes[byte_idx] if slot else SlotType.INVALID
            if kind == SlotType.INVALID:
                return None, f"invalid read from uninitialised stack at fp{off:+d}"
            if kind != SlotType.ZERO:
                all_zero = False
        if all_zero:
            return RegState.const_scalar(0), ""
        return RegState.unknown_scalar(), ""

    def check_region_initialized(self, off: int, size: int) -> str:
        """Helpers reading a stack region require every byte written."""
        for i in range(size):
            slot_idx, byte_idx = self._slot_and_byte(off + i)
            slot = self._slots.get(slot_idx)
            kind = slot.bytes[byte_idx] if slot else SlotType.INVALID
            if kind == SlotType.INVALID:
                return f"stack byte fp{off + i:+d} is not initialised"
        return ""

    def mark_region_written(self, off: int, size: int) -> None:
        """Helpers writing into a stack region initialise it."""
        self.write_misc(off, size, zero=False)

    # --- copy / compare --------------------------------------------------------------

    def clone(self) -> "StackState":
        new = StackState()
        new._slots = {i: s.clone() for i, s in self._slots.items()}
        new.depth = self.depth
        return new

    def byte_type(self, off: int) -> SlotType:
        slot_idx, byte_idx = self._slot_and_byte(off)
        slot = self._slots.get(slot_idx)
        return slot.bytes[byte_idx] if slot else SlotType.INVALID

    def spilled_reg(self, off: int) -> RegState | None:
        slot_idx, _ = self._slot_and_byte(off)
        slot = self._slots.get(slot_idx)
        return slot.spilled if slot and slot.is_full_spill() else None

    def iter_slots(self):
        """Yield ``(slot_index, slot)`` pairs for pruning comparison."""
        return self._slots.items()

    def get_slot(self, index: int) -> _Slot | None:
        return self._slots.get(index)
