"""Verifier register state: types, bounds, and the sync machinery.

Each register is tracked in an abstract domain combining

- a :class:`~repro.verifier.tnum.Tnum` (bit-level knowledge), and
- 64-bit signed and unsigned interval bounds,

kept mutually consistent by :func:`RegState.sync_bounds`, a port of the
kernel's ``reg_bounds_sync`` (``__update_reg_bounds`` /
``__reg_deduce_bounds`` / ``__reg_bound_offset``).

Pointer registers additionally carry a *fixed* offset (``off``), with
any variable part folded into the scalar domain above, plus a referent
(map, BTF object, memory region) and an ``id`` used to refine all
copies of a nullable pointer at once when one copy is null-checked.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.verifier.tnum import TNUM_UNKNOWN, Tnum, tnum_const, tnum_range

__all__ = ["RegType", "RegState", "U64_MAX", "S64_MAX", "S64_MIN"]

U64_MAX = (1 << 64) - 1
U32_MAX = (1 << 32) - 1
S64_MAX = (1 << 63) - 1
S64_MIN = -(1 << 63)


def u64(value: int) -> int:
    return value & U64_MAX


def s64(value: int) -> int:
    value &= U64_MAX
    return value - (1 << 64) if value >= (1 << 63) else value


class RegType(enum.Enum):
    """Register state classes (mirroring ``enum bpf_reg_type``)."""

    NOT_INIT = "not_init"
    SCALAR = "scalar"
    PTR_TO_CTX = "ptr_to_ctx"
    PTR_TO_STACK = "ptr_to_stack"
    CONST_PTR_TO_MAP = "const_ptr_to_map"
    PTR_TO_MAP_VALUE = "ptr_to_map_value"
    PTR_TO_MAP_VALUE_OR_NULL = "ptr_to_map_value_or_null"
    PTR_TO_PACKET = "ptr_to_packet"
    PTR_TO_PACKET_END = "ptr_to_packet_end"
    PTR_TO_PACKET_META = "ptr_to_packet_meta"
    PTR_TO_BTF_ID = "ptr_to_btf_id"
    PTR_TO_MEM = "ptr_to_mem"
    PTR_TO_MEM_OR_NULL = "ptr_to_mem_or_null"


#: Types that may compare equal to NULL at runtime and therefore
#: require a null check before dereference.
MAYBE_NULL_TYPES = frozenset(
    {RegType.PTR_TO_MAP_VALUE_OR_NULL, RegType.PTR_TO_MEM_OR_NULL}
)

#: What a maybe-null type becomes once proven non-null.
NULL_RESOLVES_TO = {
    RegType.PTR_TO_MAP_VALUE_OR_NULL: RegType.PTR_TO_MAP_VALUE,
    RegType.PTR_TO_MEM_OR_NULL: RegType.PTR_TO_MEM,
}

#: Pointer types (everything except NOT_INIT and SCALAR).
POINTER_TYPES = frozenset(RegType) - {RegType.NOT_INIT, RegType.SCALAR}


@dataclass
class RegState:
    """Abstract state of one register."""

    type: RegType = RegType.NOT_INIT
    var_off: Tnum = TNUM_UNKNOWN
    smin: int = S64_MIN
    smax: int = S64_MAX
    umin: int = 0
    umax: int = U64_MAX
    #: fixed (compile-time known) offset for pointer types
    off: int = 0
    #: referent objects
    map: object | None = None
    btf: object | None = None  # BtfObject
    mem_size: int = 0
    #: verified readable range beyond off, for packet pointers
    pkt_range: int = 0
    #: identity for null-resolution and scalar-equality propagation
    id: int = 0
    #: reference identity for acquired objects (ringbuf records...);
    #: non-zero means the program owns a release obligation
    ref_obj_id: int = 0
    #: subprogram index for PTR_TO_FUNC-like uses (unused placeholder)
    subprog: int = 0
    #: copy-on-write marker: ``True`` while this record may be aliased
    #: by another verifier state (a forked branch, an explored-set
    #: snapshot, a spilled stack slot).  A shared record must never be
    #: mutated in place — writers go through ``FuncFrame.wreg`` /
    #: ``VerifierState.wreg``, which clone on first write.  Not part of
    #: the abstract value: excluded from comparison and repr.
    shared: bool = field(default=False, init=False, compare=False, repr=False)

    # --- constructors -----------------------------------------------------

    @classmethod
    def not_init(cls) -> "RegState":
        return cls(type=RegType.NOT_INIT)

    @classmethod
    def unknown_scalar(cls, id: int = 0) -> "RegState":
        return cls(type=RegType.SCALAR, id=id)

    @classmethod
    def const_scalar(cls, value: int) -> "RegState":
        value = u64(value)
        reg = cls(
            type=RegType.SCALAR,
            var_off=tnum_const(value),
            umin=value,
            umax=value,
            smin=s64(value),
            smax=s64(value),
        )
        return reg

    @classmethod
    def pointer(cls, reg_type: RegType, **kwargs) -> "RegState":
        reg = cls(
            type=reg_type,
            var_off=tnum_const(0),
            smin=0,
            smax=0,
            umin=0,
            umax=0,
            **kwargs,
        )
        return reg

    # --- predicates ----------------------------------------------------------

    def is_pointer(self) -> bool:
        return self.type in POINTER_TYPES

    def is_scalar(self) -> bool:
        return self.type == RegType.SCALAR

    def is_maybe_null(self) -> bool:
        return self.type in MAYBE_NULL_TYPES

    def is_const(self) -> bool:
        """A scalar with one possible value."""
        return self.is_scalar() and self.var_off.is_const()

    def const_value(self) -> int:
        return self.var_off.value

    def is_pkt_pointer(self) -> bool:
        return self.type in (RegType.PTR_TO_PACKET, RegType.PTR_TO_PACKET_META)

    # --- mutation helpers ------------------------------------------------------

    def mark_unknown(self, id: int = 0) -> None:
        """Forget everything except scalar-ness."""
        self.type = RegType.SCALAR
        self.var_off = TNUM_UNKNOWN
        self.smin, self.smax = S64_MIN, S64_MAX
        self.umin, self.umax = 0, U64_MAX
        self.off = 0
        self.map = None
        self.btf = None
        self.mem_size = 0
        self.pkt_range = 0
        self.id = id
        self.ref_obj_id = 0

    def mark_not_init(self) -> None:
        self.mark_unknown()
        self.type = RegType.NOT_INIT

    def mark_known(self, value: int) -> None:
        value = u64(value)
        self.type = RegType.SCALAR
        self.var_off = tnum_const(value)
        self.umin = self.umax = value
        self.smin = self.smax = s64(value)
        self.off = 0
        self.map = None
        self.btf = None
        self.id = 0
        self.ref_obj_id = 0

    def clone(self) -> "RegState":
        # ``dataclasses.replace`` would re-run the generated __init__
        # (13 keyword assignments plus default processing); a __dict__
        # copy is ~3x faster and this is one of the hottest calls in a
        # campaign.  The copy starts life private (shared=False).
        new = object.__new__(RegState)
        d = new.__dict__
        d.update(self.__dict__)
        d["shared"] = False
        return new

    # --- bounds synchronisation ---------------------------------------------------

    def _update_bounds(self) -> None:
        """tnum -> interval bounds (``__update_reg64_bounds``)."""
        sign_bit = 1 << 63
        self.smin = max(
            self.smin, s64(self.var_off.value | (self.var_off.mask & sign_bit))
        )
        self.smax = min(
            self.smax, s64(self.var_off.value | (self.var_off.mask & ~sign_bit))
        )
        self.umin = max(self.umin, self.var_off.value)
        self.umax = min(self.umax, self.var_off.value | self.var_off.mask)

    def _deduce_bounds(self) -> None:
        """signed <-> unsigned cross-derivation (``__reg64_deduce_bounds``)."""
        if self.smin >= 0 or self.smax < 0:
            # Sign is known: signed and unsigned ranges agree as u64.
            self.umin = max(self.umin, u64(self.smin))
            self.umax = min(self.umax, u64(self.smax))
            self.smin = s64(self.umin)
            self.smax = s64(self.umax)
            return
        if s64(self.umax) >= 0:
            # Whole unsigned range is non-negative as signed; the old
            # smax (>= 0 here) is still a valid upper bound, so keep
            # whichever is tighter (kernel: min_t(u64, smax, umax)).
            self.smin = max(self.smin, self.umin)
            self.smax = min(self.smax, s64(self.umax))
            self.umax = u64(self.smax)
        elif s64(self.umin) < 0:
            # Whole unsigned range is negative as signed; the old smin
            # (< 0 here) still bounds from below (kernel: max_t(u64,
            # smin, umin) — comparing as u64 picks the tighter one).
            self.smin = max(self.smin, s64(self.umin))
            self.smax = min(self.smax, s64(self.umax))
            self.umin = u64(self.smin)

    def _bound_offset(self) -> None:
        """interval bounds -> tnum (``__reg_bound_offset``)."""
        self.var_off = self.var_off.intersect(tnum_range(self.umin, self.umax))

    def sync_bounds(self) -> None:
        """Make tnum and interval bounds mutually consistent."""
        self._update_bounds()
        self._deduce_bounds()
        self._bound_offset()
        self._update_bounds()

    def is_bounds_broken(self) -> bool:
        """Contradictory bounds indicate an impossible (dead) path."""
        return self.smin > self.smax or self.umin > self.umax

    # --- 32-bit views ---------------------------------------------------------------

    def u32_bounds(self) -> tuple[int, int]:
        """Unsigned bounds of the low 32 bits (conservative)."""
        if self.umax <= U32_MAX:
            return self.umin, self.umax
        sub = self.var_off.subreg()
        return sub.min_value(), sub.max_value()

    def fits_u32(self) -> bool:
        return self.umax <= U32_MAX

    # --- display -----------------------------------------------------------------------

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if self.type == RegType.NOT_INIT:
            return "?"
        if self.is_scalar():
            if self.is_const():
                return f"{s64(self.const_value())}"
            return (
                f"scalar(umin={self.umin},umax={self.umax},"
                f"smin={self.smin},smax={self.smax},var={self.var_off})"
            )
        extra = []
        if self.off:
            extra.append(f"off={self.off}")
        if self.map is not None:
            extra.append("map")
        if self.id:
            extra.append(f"id={self.id}")
        if self.is_pkt_pointer():
            extra.append(f"range={self.pkt_range}")
        suffix = f"({','.join(extra)})" if extra else ""
        return f"{self.type.value}{suffix}"


def regs_equal_scalar_range(old: RegState, new: RegState) -> bool:
    """True when ``new``'s scalar range is within ``old``'s (for pruning)."""
    if not (old.is_scalar() and new.is_scalar()):
        return False
    if not (
        old.umin <= new.umin
        and new.umax <= old.umax
        and old.smin <= new.smin
        and new.smax <= old.smax
    ):
        return False
    # tnum subset: every bit known in old must be known-and-equal in new.
    if new.var_off.mask & ~old.var_off.mask:
        return False
    return (new.var_off.value & ~old.var_off.mask) == old.var_off.value
