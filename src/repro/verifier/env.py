"""Verifier environment: call frames, whole-program states, exploration.

The verifier explores program paths depth-first.  Each pending path is
a :class:`VerifierState` (a stack of call frames plus the instruction
index to resume at); branches push one side onto the exploration stack
and continue down the other, exactly like the kernel's
``push_stack``/``pop_stack``.

Pruning: at every jump target the environment keeps the set of states
previously verified there; a new state that is *subsumed* by one of
them (every register/stack slot at least as constrained) is not
explored again (``is_state_visited``/``states_equal``).

Two structural optimisations live here (see DESIGN.md "Verifier fast
path"):

- **Canonical state-hash index.**  Each stored state is keyed by
  :func:`state_fingerprint`, a stable tuple over exactly the fields
  :func:`states_equal` inspects.  Equal fingerprints imply subsumption
  (subsumption is reflexive over those fields), so a re-reached state
  whose fingerprint is already present prunes with one dict probe
  instead of a pairwise ``states_equal`` scan.  A fingerprint miss
  falls back to the full ordered subsumption scan — fingerprints can
  only prove equality, never the *wider-subsumes-narrower* relation —
  which keeps the pruning verdict bit-identical to the scan-only
  implementation.
- **Copy-on-write state cloning.**  :meth:`VerifierState.clone` marks
  registers shared and copies only the per-frame register *list* (12
  pointers) plus a storage-sharing stack handle; the deep copy of each
  written record happens lazily at its first write, via
  :meth:`FuncFrame.wreg` and the stack's ``_wslot``.  Branch forks and
  explored-set snapshots clone far more state than any path ever
  mutates, so nearly all of the former deep-copy work disappears.

Per-index explored lists are bounded by an LRU (``PRUNE_CAP`` /
``LOOP_CAP``) with eviction counters, so loop-heavy programs cannot
grow the explored set without bound.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.ebpf.opcodes import Reg
from repro.verifier.log import VerifierLog
from repro.verifier.stack import SlotType, StackState
from repro.verifier.state import (
    MAYBE_NULL_TYPES,
    RegState,
    RegType,
    regs_equal_scalar_range,
)

__all__ = [
    "FuncFrame",
    "VerifierState",
    "VerifierEnv",
    "MAX_CALL_DEPTH",
    "PRUNE_CAP",
    "LOOP_CAP",
    "state_fingerprint",
    "states_equal",
]

#: Maximum bpf-to-bpf call nesting (kernel: 8).
MAX_CALL_DEPTH = 8

#: LRU capacity of the explored set at a prune point / a loop header.
#: The former keep-first-N heuristic pinned whichever states arrived
#: first; LRU keeps the states that keep proving useful.
PRUNE_CAP = 16
LOOP_CAP = 64

_N_REGS = 12  # R0-R10 plus the internal AX


@dataclass
class FuncFrame:
    """One call frame: registers plus stack."""

    regs: list[RegState]
    stack: StackState
    frameno: int = 0
    #: instruction to return to (index after the call insn)
    callsite: int = -1

    @classmethod
    def entry(cls, ctx_reg: RegState, frameno: int = 0, callsite: int = -1) -> "FuncFrame":
        regs = [RegState.not_init() for _ in range(_N_REGS)]
        regs[Reg.R1] = ctx_reg
        regs[Reg.R10] = RegState.pointer(RegType.PTR_TO_STACK)
        return cls(regs=regs, stack=StackState(), frameno=frameno, callsite=callsite)

    def clone(self) -> "FuncFrame":
        """A logically independent copy sharing storage until written.

        The register *list* is copied (so direct ``regs[i] = ...``
        assignments stay frame-local) but the register records are
        shared and marked; the first in-place mutation of one — always
        routed through :meth:`wreg` — clones it.  Ditto the stack.
        The source frame's records become shared too: after a clone,
        *neither* side may mutate them in place.
        """
        regs = self.regs
        for reg in regs:
            reg.shared = True
        new = FuncFrame.__new__(FuncFrame)
        new.regs = regs[:]
        new.stack = self.stack.cow_clone()
        new.frameno = self.frameno
        new.callsite = self.callsite
        return new

    def wreg(self, index: int) -> RegState:
        """A writable register: clones a shared record on first write."""
        reg = self.regs[index]
        if reg.shared:
            reg = reg.clone()
            self.regs[index] = reg
        return reg


@dataclass
class VerifierState:
    """A full program state: the frame stack plus resume point."""

    frames: list[FuncFrame]
    insn_idx: int = 0
    #: index of the branch instruction that created this state
    parent_idx: int = -1
    #: outstanding acquired references: ref_obj_id -> acquiring insn idx
    refs: dict[int, int] = field(default_factory=dict)
    #: held bpf_spin_lock: (map identity, value-pointer id), or None
    active_lock: tuple[int, int] | None = None

    @property
    def cur(self) -> FuncFrame:
        return self.frames[-1]

    @property
    def regs(self) -> list[RegState]:
        return self.cur.regs

    @property
    def stack(self) -> StackState:
        return self.cur.stack

    @property
    def call_depth(self) -> int:
        return len(self.frames)

    def clone(self) -> "VerifierState":
        """Copy-on-write clone (see :meth:`FuncFrame.clone`)."""
        new = VerifierState.__new__(VerifierState)
        new.frames = [f.clone() for f in self.frames]
        new.insn_idx = self.insn_idx
        new.parent_idx = self.parent_idx
        new.refs = dict(self.refs)
        new.active_lock = self.active_lock
        return new

    def reg(self, index: int) -> RegState:
        return self.cur.regs[index]

    def wreg(self, index: int) -> RegState:
        """A writable register in the current frame (COW entry point)."""
        return self.frames[-1].wreg(index)


def _reg_subsumed(old: RegState, new: RegState) -> bool:
    """``regsafe``: is exploring ``new`` redundant given ``old`` passed?"""
    if old.type == RegType.NOT_INIT:
        # The old path never relied on this register.
        return True
    if old.is_scalar():
        if not new.is_scalar():
            # Conservatively re-verify when a scalar became a pointer.
            return False
        return regs_equal_scalar_range(old, new)
    if old.type != new.type:
        return False
    if old.off != new.off:
        return False
    if old.map is not new.map or old.btf is not new.btf:
        return False
    if old.mem_size != new.mem_size:
        return False
    if old.is_pkt_pointer() or old.type == RegType.PTR_TO_PACKET_END:
        # The new pointer must have at least as much verified range.
        if new.pkt_range < old.pkt_range:
            return False
    # Variable offset parts must also be subsumed — the same range
    # check regs_equal_scalar_range performs, applied directly to the
    # pointers' scalar components (both are scalar by construction, so
    # the type guards are vacuous).
    if not (
        old.umin <= new.umin
        and new.umax <= old.umax
        and old.smin <= new.smin
        and new.smax <= old.smax
    ):
        return False
    # tnum subset: every bit known in old must be known-and-equal in new.
    if new.var_off.mask & ~old.var_off.mask:
        return False
    return (new.var_off.value & ~old.var_off.mask) == old.var_off.value


def _stack_subsumed(old: StackState, new: StackState) -> bool:
    """``stacksafe``: every constraint the old state had must hold."""
    for slot_idx, old_slot in old.iter_slots():
        new_slot = new.get_slot(slot_idx)
        for byte_idx, old_type in enumerate(old_slot.bytes):
            if old_type == SlotType.INVALID:
                continue
            new_type = (
                new_slot.bytes[byte_idx] if new_slot is not None else SlotType.INVALID
            )
            if new_type == SlotType.INVALID:
                return False
            if old_type == SlotType.MISC:
                continue  # anything initialised satisfies MISC
            if old_type == SlotType.ZERO and new_type != SlotType.ZERO:
                # A spilled constant zero also satisfies ZERO.
                if not (
                    new_slot.spilled is not None
                    and new_slot.spilled.is_const()
                    and new_slot.spilled.const_value() == 0
                ):
                    return False
            if old_type == SlotType.SPILL:
                if old_slot.spilled is None:
                    return False
                if new_slot is None or new_slot.spilled is None:
                    return False
                if not _reg_subsumed(old_slot.spilled, new_slot.spilled):
                    return False
    return True


def states_equal(old: VerifierState, new: VerifierState) -> bool:
    """Is ``new`` subsumed by the previously-verified ``old``?"""
    if len(old.frames) != len(new.frames):
        return False
    # Reference obligations must match (``refsafe``): pruning a state
    # with different outstanding acquisitions could hide a leak.
    if len(old.refs) != len(new.refs):
        return False
    # Likewise the spin-lock discipline: held vs. not-held must agree.
    if (old.active_lock is None) != (new.active_lock is None):
        return False
    for old_frame, new_frame in zip(old.frames, new.frames):
        if old_frame.callsite != new_frame.callsite:
            return False
        for old_reg, new_reg in zip(old_frame.regs, new_frame.regs):
            if not _reg_subsumed(old_reg, new_reg):
                return False
        if not _stack_subsumed(old_frame.stack, new_frame.stack):
            return False
    return True


def _reg_fingerprint(reg: RegState) -> tuple:
    """Stable key over exactly the fields ``_reg_subsumed`` inspects.

    Referents are interned by object identity (``id``), which is
    stable for the lifetime of one verification (the kernel model owns
    maps and BTF objects for at least as long as the env).  Fields the
    subsumption check never reads — ``id``, ``ref_obj_id``,
    ``subprog`` — are deliberately excluded so irrelevant identity
    churn cannot defeat exact-hit pruning.
    """
    var_off = reg.var_off
    return (
        # Enum members are process-lifetime singletons, so their id()
        # is equality-preserving — and hashes at C speed, unlike
        # Enum.__hash__, which dominated the fingerprint cost.
        id(reg.type),
        var_off.value,
        var_off.mask,
        reg.smin,
        reg.smax,
        reg.umin,
        reg.umax,
        reg.off,
        id(reg.map),
        id(reg.btf),
        reg.mem_size,
        reg.pkt_range,
    )


def _stack_fingerprint(stack: StackState) -> tuple:
    """Stable key over the constraints ``_stack_subsumed`` inspects.

    Semantically empty slots (all bytes INVALID, nothing spilled) are
    normalised away: they impose no constraint, so two states that
    differ only by one materialising such a slot still key equal.
    Slot order is normalised by sorting on the slot index.
    """
    items = []
    for slot_idx, slot in stack.iter_slots():
        spilled = slot.spilled
        slot_bytes = slot.bytes
        if spilled is None and all(b is SlotType.INVALID for b in slot_bytes):
            continue
        items.append((
            slot_idx,
            tuple(map(id, slot_bytes)),  # SlotType singletons, as above
            _reg_fingerprint(spilled) if spilled is not None else None,
        ))
    items.sort()
    return tuple(items)


def state_fingerprint(state: VerifierState) -> tuple:
    """A canonical hashable key for the explored-set index.

    The contract that makes the index semantically transparent:
    ``state_fingerprint(a) == state_fingerprint(b)`` implies
    ``states_equal(a, b)`` (and vice versa with the roles swapped),
    because the key covers every field the subsumption check reads and
    subsumption is reflexive over them.  The converse does *not* hold —
    a wider old state subsumes a narrower new one without keying equal
    — which is why a fingerprint miss must still fall back to the full
    scan.
    """
    return (
        tuple(
            (
                frame.callsite,
                tuple(_reg_fingerprint(r) for r in frame.regs),
                _stack_fingerprint(frame.stack),
            )
            for frame in state.frames
        ),
        len(state.refs),
        state.active_lock is None,
    )


class VerifierEnv:
    """Mutable bookkeeping for one verification run."""

    def __init__(self, log: VerifierLog, complexity_limit: int) -> None:
        self.log = log
        self.complexity_limit = complexity_limit
        #: pending branch states (DFS)
        self.stack: list[VerifierState] = []
        #: fingerprint-keyed explored states per instruction index
        #: (pruning candidates); insertion/recency-ordered for LRU
        self.explored: dict[int, OrderedDict[tuple, VerifierState]] = {}
        #: ditto for loop headers (separate capacity, reject-on-match)
        self.loop_explored: dict[int, OrderedDict[tuple, VerifierState]] = {}
        #: id allocator for pointer identity / null resolution
        self._next_id = 1
        #: statistics exported into VerifiedProgram.stats
        self.insns_processed = 0
        self.states_pushed = 0
        self.states_pruned = 0
        self.peak_stack = 0
        #: prune-index telemetry (per-program deterministic, exported
        #: as verifier.prune.* metrics by the campaign layer)
        self.prune_exact_hits = 0
        self.prune_scan_hits = 0
        self.prune_misses = 0
        self.prune_evictions = 0
        #: flight recorder for prune-decision events (None = disabled;
        #: the Verifier sets this only when recording is on, so the
        #: hot path pays one ``is not None`` test per prune decision)
        self.flight = None
        #: hierarchical profiler for prune-outcome counts (same
        #: None-when-disabled contract as ``flight``)
        self.profiler = None

    def new_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def push_state(self, state: VerifierState) -> None:
        self.stack.append(state)
        self.states_pushed += 1
        self.peak_stack = max(self.peak_stack, len(self.stack))

    def pop_state(self) -> VerifierState | None:
        return self.stack.pop() if self.stack else None

    def _seen(
        self,
        index: dict[int, OrderedDict[tuple, VerifierState]],
        state: VerifierState,
        cap: int,
        point: str,
    ) -> bool:
        """Shared subsumption machinery for prune points and loop headers.

        Exact fingerprint hit: one dict probe proves subsumption.
        Miss: ordered ``states_equal`` scan over the stored states —
        the boolean is an OR over the set, so the verdict is identical
        to the scan-only implementation.  Either way the matched entry
        is freshened; a genuinely new state is stored (copy-on-write
        snapshot) and the least-recently-useful entry evicted beyond
        ``cap``.
        """
        seen = index.get(state.insn_idx)
        if seen is None:
            seen = index[state.insn_idx] = OrderedDict()
        key = state_fingerprint(state)
        flight = self.flight
        profiler = self.profiler
        if key in seen:
            seen.move_to_end(key)
            self.prune_exact_hits += 1
            if flight is not None:
                flight.prune(state.insn_idx, point, "exact-hit")
            if profiler is not None:
                profiler.ops[f"{point}.exact-hit"] += 1
            return True
        for old_key, old in seen.items():
            if states_equal(old, state):
                seen.move_to_end(old_key)
                self.prune_scan_hits += 1
                if flight is not None:
                    flight.prune(state.insn_idx, point, "scan-hit")
                if profiler is not None:
                    profiler.ops[f"{point}.scan-hit"] += 1
                return True
        self.prune_misses += 1
        if flight is not None:
            flight.prune(state.insn_idx, point, "miss")
        if profiler is not None:
            profiler.ops[f"{point}.miss"] += 1
        seen[key] = state.clone()
        if len(seen) > cap:
            seen.popitem(last=False)
            self.prune_evictions += 1
        return False

    def is_visited(self, state: VerifierState) -> bool:
        """Prune if subsumed; otherwise remember this state."""
        if self._seen(self.explored, state, PRUNE_CAP, "prune"):
            self.states_pruned += 1
            return True
        return False

    def loop_header_seen(self, state: VerifierState) -> bool:
        """Has an equivalent state reached this back-edge target before?

        ``True`` means the program re-reached a loop header without
        making progress — the caller rejects it as an infinite loop.
        """
        return self._seen(self.loop_explored, state, LOOP_CAP, "loop")
