"""Verifier environment: call frames, whole-program states, exploration.

The verifier explores program paths depth-first.  Each pending path is
a :class:`VerifierState` (a stack of call frames plus the instruction
index to resume at); branches push one side onto the exploration stack
and continue down the other, exactly like the kernel's
``push_stack``/``pop_stack``.

Pruning: at every jump target the environment keeps the list of states
previously verified there; a new state that is *subsumed* by one of
them (every register/stack slot at least as constrained) is not
explored again (``is_state_visited``/``states_equal``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ebpf.opcodes import Reg
from repro.verifier.log import VerifierLog
from repro.verifier.stack import SlotType, StackState
from repro.verifier.state import (
    MAYBE_NULL_TYPES,
    RegState,
    RegType,
    regs_equal_scalar_range,
)

__all__ = ["FuncFrame", "VerifierState", "VerifierEnv", "MAX_CALL_DEPTH"]

#: Maximum bpf-to-bpf call nesting (kernel: 8).
MAX_CALL_DEPTH = 8

_N_REGS = 12  # R0-R10 plus the internal AX


@dataclass
class FuncFrame:
    """One call frame: registers plus stack."""

    regs: list[RegState]
    stack: StackState
    frameno: int = 0
    #: instruction to return to (index after the call insn)
    callsite: int = -1

    @classmethod
    def entry(cls, ctx_reg: RegState, frameno: int = 0, callsite: int = -1) -> "FuncFrame":
        regs = [RegState.not_init() for _ in range(_N_REGS)]
        regs[Reg.R1] = ctx_reg
        regs[Reg.R10] = RegState.pointer(RegType.PTR_TO_STACK)
        return cls(regs=regs, stack=StackState(), frameno=frameno, callsite=callsite)

    def clone(self) -> "FuncFrame":
        return FuncFrame(
            regs=[r.clone() for r in self.regs],
            stack=self.stack.clone(),
            frameno=self.frameno,
            callsite=self.callsite,
        )


@dataclass
class VerifierState:
    """A full program state: the frame stack plus resume point."""

    frames: list[FuncFrame]
    insn_idx: int = 0
    #: index of the branch instruction that created this state
    parent_idx: int = -1
    #: outstanding acquired references: ref_obj_id -> acquiring insn idx
    refs: dict[int, int] = field(default_factory=dict)
    #: held bpf_spin_lock: (map identity, value-pointer id), or None
    active_lock: tuple[int, int] | None = None

    @property
    def cur(self) -> FuncFrame:
        return self.frames[-1]

    @property
    def regs(self) -> list[RegState]:
        return self.cur.regs

    @property
    def stack(self) -> StackState:
        return self.cur.stack

    @property
    def call_depth(self) -> int:
        return len(self.frames)

    def clone(self) -> "VerifierState":
        return VerifierState(
            frames=[f.clone() for f in self.frames],
            insn_idx=self.insn_idx,
            parent_idx=self.parent_idx,
            refs=dict(self.refs),
            active_lock=self.active_lock,
        )

    def reg(self, index: int) -> RegState:
        return self.cur.regs[index]


def _reg_subsumed(old: RegState, new: RegState) -> bool:
    """``regsafe``: is exploring ``new`` redundant given ``old`` passed?"""
    if old.type == RegType.NOT_INIT:
        # The old path never relied on this register.
        return True
    if old.is_scalar():
        if not new.is_scalar():
            # Conservatively re-verify when a scalar became a pointer.
            return False
        return regs_equal_scalar_range(old, new)
    if old.type != new.type:
        return False
    if old.off != new.off:
        return False
    if old.map is not new.map or old.btf is not new.btf:
        return False
    if old.mem_size != new.mem_size:
        return False
    if old.is_pkt_pointer() or old.type == RegType.PTR_TO_PACKET_END:
        # The new pointer must have at least as much verified range.
        if new.pkt_range < old.pkt_range:
            return False
    # Variable offset parts must also be subsumed.
    return regs_equal_scalar_range(
        RegState(
            type=RegType.SCALAR,
            var_off=old.var_off,
            smin=old.smin,
            smax=old.smax,
            umin=old.umin,
            umax=old.umax,
        ),
        RegState(
            type=RegType.SCALAR,
            var_off=new.var_off,
            smin=new.smin,
            smax=new.smax,
            umin=new.umin,
            umax=new.umax,
        ),
    )


def _stack_subsumed(old: StackState, new: StackState) -> bool:
    """``stacksafe``: every constraint the old state had must hold."""
    for slot_idx, old_slot in old.iter_slots():
        new_slot = new.get_slot(slot_idx)
        for byte_idx, old_type in enumerate(old_slot.bytes):
            if old_type == SlotType.INVALID:
                continue
            new_type = (
                new_slot.bytes[byte_idx] if new_slot is not None else SlotType.INVALID
            )
            if new_type == SlotType.INVALID:
                return False
            if old_type == SlotType.MISC:
                continue  # anything initialised satisfies MISC
            if old_type == SlotType.ZERO and new_type != SlotType.ZERO:
                # A spilled constant zero also satisfies ZERO.
                if not (
                    new_slot.spilled is not None
                    and new_slot.spilled.is_const()
                    and new_slot.spilled.const_value() == 0
                ):
                    return False
            if old_type == SlotType.SPILL:
                if old_slot.spilled is None:
                    return False
                if new_slot is None or new_slot.spilled is None:
                    return False
                if not _reg_subsumed(old_slot.spilled, new_slot.spilled):
                    return False
    return True


def states_equal(old: VerifierState, new: VerifierState) -> bool:
    """Is ``new`` subsumed by the previously-verified ``old``?"""
    if len(old.frames) != len(new.frames):
        return False
    # Reference obligations must match (``refsafe``): pruning a state
    # with different outstanding acquisitions could hide a leak.
    if len(old.refs) != len(new.refs):
        return False
    # Likewise the spin-lock discipline: held vs. not-held must agree.
    if (old.active_lock is None) != (new.active_lock is None):
        return False
    for old_frame, new_frame in zip(old.frames, new.frames):
        if old_frame.callsite != new_frame.callsite:
            return False
        for old_reg, new_reg in zip(old_frame.regs, new_frame.regs):
            if not _reg_subsumed(old_reg, new_reg):
                return False
        if not _stack_subsumed(old_frame.stack, new_frame.stack):
            return False
    return True


class VerifierEnv:
    """Mutable bookkeeping for one verification run."""

    def __init__(self, log: VerifierLog, complexity_limit: int) -> None:
        self.log = log
        self.complexity_limit = complexity_limit
        #: pending branch states (DFS)
        self.stack: list[VerifierState] = []
        #: verified states per instruction index (pruning candidates)
        self.explored: dict[int, list[VerifierState]] = {}
        #: id allocator for pointer identity / null resolution
        self._next_id = 1
        #: statistics exported into VerifiedProgram.stats
        self.insns_processed = 0
        self.states_pushed = 0
        self.states_pruned = 0
        self.peak_stack = 0

    def new_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def push_state(self, state: VerifierState) -> None:
        self.stack.append(state)
        self.states_pushed += 1
        self.peak_stack = max(self.peak_stack, len(self.stack))

    def pop_state(self) -> VerifierState | None:
        return self.stack.pop() if self.stack else None

    def is_visited(self, state: VerifierState) -> bool:
        """Prune if subsumed; otherwise remember this state."""
        seen = self.explored.setdefault(state.insn_idx, [])
        for old in seen:
            if states_equal(old, state):
                self.states_pruned += 1
                return True
        # Bound the per-index list so pathological programs cannot make
        # pruning quadratic (kernel uses a similar heuristic).
        if len(seen) < 16:
            seen.append(state.clone())
        return False
