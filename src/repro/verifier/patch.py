"""Instruction-stream patching with jump-offset adjustment.

The kernel's rewrite passes (``bpf_patch_insn_data``) insert
instructions into a verified program — map address fixups, inline
expansions, and, in BVF's case, the sanitizer dispatch sequences — and
must then re-target every jump and bpf-to-bpf call that crosses the
insertion point.  :func:`insert_before` implements that transformation
generically: callers supply, per original slot index, the instructions
to place *before* that slot, and receive the patched stream plus an
index map for relocating any per-instruction metadata.

Jumps whose target carries an insertion land at the *start* of the
inserted block, so a branch to an instrumented load still executes the
load's sanitation.
"""

from __future__ import annotations

from repro.ebpf.insn import Insn

__all__ = ["insert_before"]


def insert_before(
    insns: list[Insn], insertions: dict[int, list[Insn]]
) -> tuple[list[Insn], dict[int, int]]:
    """Insert instruction blocks and fix every relative offset.

    Returns ``(new_insns, index_map)`` where ``index_map[old] = new``
    gives the new slot index of each original instruction.
    """
    if not insertions:
        return list(insns), {i: i for i in range(len(insns))}

    # New index of each original instruction (after its own insertions).
    index_map: dict[int, int] = {}
    # New index of the *start* of the insertion block at each original
    # index (== index_map[i] when there is no insertion at i).
    entry_map: dict[int, int] = {}
    shift = 0
    for i in range(len(insns) + 1):
        block = insertions.get(i, ())
        entry_map[i] = i + shift
        shift += len(block)
        if i < len(insns):
            index_map[i] = i + shift

    new_insns: list[Insn] = []
    for i, insn in enumerate(insns):
        new_insns.extend(insertions.get(i, ()))
        new_insns.append(insn)
    new_insns.extend(insertions.get(len(insns), ()))

    # Re-target jumps and bpf-to-bpf calls.
    for i, insn in enumerate(insns):
        if insn.is_filler():
            continue
        new_idx = index_map[i]
        if insn.is_pseudo_call():
            target = i + insn.imm + 1
            new_target = entry_map.get(target, target)
            new_imm = new_target - new_idx - 1
            if new_imm != insn.imm:
                new_insns[new_idx] = insn.with_(imm=new_imm)
        elif insn.is_jmp() and not insn.is_call() and not insn.is_exit():
            target = i + insn.off + 1
            new_target = entry_map.get(target, target)
            new_off = new_target - new_idx - 1
            if new_off != insn.off:
                new_insns[new_idx] = insn.with_(off=new_off)

    return new_insns, index_map
