"""Tristate numbers — the verifier's bit-level abstract domain.

A tnum tracks, for each bit of a 64-bit value, whether it is known-0,
known-1, or unknown.  It is represented as ``(value, mask)`` where mask
bits are the unknown positions and ``value`` holds the known bits
(``value & mask == 0`` is the representation invariant).

This is a direct port of the kernel's ``kernel/bpf/tnum.c``; the
property-based tests assert the defining soundness condition for every
operation: if concrete ``x`` is in ``a`` and concrete ``y`` is in
``b``, then ``x <op> y`` is in ``tnum_<op>(a, b)``.

Memoization
-----------

Campaign programs draw their immediates from a small population of
interesting constants, so the same ``(value, mask)`` operand pairs hit
the same tnum ops over and over.  Every binary operation (and
``tnum_range``) therefore runs through a bounded per-op LRU keyed on
the operand ``(op, value, mask)`` pairs — :func:`functools.lru_cache`,
whose C implementation makes a hit cheaper than re-deriving even the
cheapest op.  Because a :class:`Tnum` is an immutable value, returning
a cached instance is observationally identical to recomputing it; the
property tests in ``tests/verifier`` assert exactly that for every op.
:func:`tnum_memo_stats` exposes aggregate hit/miss counters for the
campaign's cache metrics and :func:`tnum_memo_clear` resets the LRUs
(used by tests and benchmark harnesses that want cold-cache numbers).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

__all__ = [
    "Tnum",
    "TNUM_UNKNOWN",
    "TNUM_ZERO",
    "tnum_const",
    "tnum_range",
    "tnum_memo_stats",
    "tnum_memo_clear",
]

_U64 = (1 << 64) - 1
_U32 = (1 << 32) - 1

#: Entries per memoized operation.  Big enough that a campaign shard's
#: working set of constants never thrashes, small enough (< a few MB
#: across all ops) to be irrelevant for memory.
_MEMO_SIZE = 1 << 16


@dataclass(frozen=True)
class Tnum:
    """A tristate number over 64 bits."""

    value: int
    mask: int

    def __post_init__(self) -> None:
        if self.value & self.mask:
            raise ValueError(
                f"broken tnum invariant: value={self.value:#x} mask={self.mask:#x}"
            )
        if not (0 <= self.value <= _U64 and 0 <= self.mask <= _U64):
            raise ValueError("tnum fields out of u64 range")

    # --- predicates --------------------------------------------------------

    def is_const(self) -> bool:
        """All 64 bits known."""
        return self.mask == 0

    def is_unknown(self) -> bool:
        """No bits known."""
        return self.mask == _U64

    def contains(self, value: int) -> bool:
        """Concrete ``value`` is a possible concretisation of this tnum."""
        value &= _U64
        return (value & ~self.mask) == self.value

    def is_aligned(self, size: int) -> bool:
        """The low ``log2(size)`` bits are known zero."""
        if size <= 1:
            return True
        return not ((self.value | self.mask) & (size - 1))

    # --- derived constants ----------------------------------------------------

    def min_value(self) -> int:
        """Smallest unsigned concretisation (unknown bits = 0)."""
        return self.value

    def max_value(self) -> int:
        """Largest unsigned concretisation (unknown bits = 1)."""
        return self.value | self.mask

    # --- arithmetic -------------------------------------------------------------

    def add(self, other: "Tnum") -> "Tnum":
        return _add(self.value, self.mask, other.value, other.mask)

    def sub(self, other: "Tnum") -> "Tnum":
        return _sub(self.value, self.mask, other.value, other.mask)

    def neg(self) -> "Tnum":
        return _sub(0, 0, self.value, self.mask)

    def and_(self, other: "Tnum") -> "Tnum":
        return _and(self.value, self.mask, other.value, other.mask)

    def or_(self, other: "Tnum") -> "Tnum":
        return _or(self.value, self.mask, other.value, other.mask)

    def xor(self, other: "Tnum") -> "Tnum":
        return _xor(self.value, self.mask, other.value, other.mask)

    def mul(self, other: "Tnum") -> "Tnum":
        """Kernel-style long multiplication over tnum halves.

        Sound but deliberately imprecise for large masks, like the
        kernel's ``tnum_mul``.
        """
        return _mul(self.value, self.mask, other.value, other.mask)

    def lshift(self, shift: int) -> "Tnum":
        return _lshift(self.value, self.mask, shift)

    def rshift(self, shift: int) -> "Tnum":
        return _rshift(self.value, self.mask, shift)

    def arshift(self, shift: int, insn_bitness: int = 64) -> "Tnum":
        """Arithmetic right shift at the given bitness."""
        return _arshift(self.value, self.mask, shift, insn_bitness)

    # --- set operations -----------------------------------------------------------

    def intersect(self, other: "Tnum") -> "Tnum":
        """Bits known in either (caller must know the sets overlap)."""
        return _intersect(self.value, self.mask, other.value, other.mask)

    def union(self, other: "Tnum") -> "Tnum":
        """Smallest tnum containing both operands' concretisations."""
        return _union(self.value, self.mask, other.value, other.mask)

    # --- width handling --------------------------------------------------------------

    def cast(self, size: int) -> "Tnum":
        """Truncate to ``size`` bytes (zero-extending semantics)."""
        bits = size * 8
        if bits >= 64:
            return self
        keep = (1 << bits) - 1
        return _mk(self.value & keep, self.mask & keep)

    def subreg(self) -> "Tnum":
        """The low 32 bits as a tnum."""
        return self.cast(4)

    def clear_subreg(self) -> "Tnum":
        """Zero out the low 32 bits."""
        return self.rshift(32).lshift(32)

    def with_subreg(self, subreg: "Tnum") -> "Tnum":
        """Replace the low 32 bits with ``subreg``."""
        return self.clear_subreg().or_(subreg.cast(4))

    def const_subreg_val(self) -> int:
        """Value of the low 32 bits (requires them to be known)."""
        return self.value & _U32

    def subreg_is_const(self) -> bool:
        return (self.mask & _U32) == 0

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_const():
            return f"{self.value:#x}"
        if self.is_unknown():
            return "?"
        return f"(v={self.value:#x} m={self.mask:#x})"


def _sext64(value: int) -> int:
    value &= _U64
    return value - (1 << 64) if value >= (1 << 63) else value


def _sext32(value: int) -> int:
    value &= _U32
    return value - (1 << 32) if value >= (1 << 31) else value


def _mk(value: int, mask: int) -> Tnum:
    """Construct a tnum whose invariant holds by construction.

    Every op kernel below already guarantees ``value & mask == 0`` and
    u64 range, so re-validating in ``__post_init__`` on the hot path
    would only re-prove what the arithmetic just established.  External
    construction still goes through the checked ``Tnum(...)`` path.
    """
    t = object.__new__(Tnum)
    object.__setattr__(t, "value", value)
    object.__setattr__(t, "mask", mask)
    return t


# --- memoized op kernels ---------------------------------------------------
#
# Keyed on raw (value, mask) ints rather than Tnum instances so that
# equal operands hit regardless of which instance carries them, and so
# a key never retains a bigger object graph than four ints.

@lru_cache(maxsize=_MEMO_SIZE)
def _add(av: int, am: int, bv: int, bm: int) -> Tnum:
    sm = (am + bm) & _U64
    sv = (av + bv) & _U64
    sigma = (sm + sv) & _U64
    chi = sigma ^ sv
    mu = chi | am | bm
    return _mk(sv & ~mu & _U64, mu & _U64)


@lru_cache(maxsize=_MEMO_SIZE)
def _sub(av: int, am: int, bv: int, bm: int) -> Tnum:
    dv = (av - bv) & _U64
    alpha = (dv + am) & _U64
    beta = (dv - bm) & _U64
    chi = alpha ^ beta
    mu = chi | am | bm
    return _mk(dv & ~mu & _U64, mu & _U64)


@lru_cache(maxsize=_MEMO_SIZE)
def _and(av: int, am: int, bv: int, bm: int) -> Tnum:
    alpha = av | am
    beta = bv | bm
    v = av & bv
    return _mk(v, (alpha & beta & ~v) & _U64)


@lru_cache(maxsize=_MEMO_SIZE)
def _or(av: int, am: int, bv: int, bm: int) -> Tnum:
    v = av | bv
    mu = am | bm
    return _mk(v, (mu & ~v) & _U64)


@lru_cache(maxsize=_MEMO_SIZE)
def _xor(av: int, am: int, bv: int, bm: int) -> Tnum:
    v = av ^ bv
    mu = am | bm
    return _mk((v & ~mu) & _U64, mu & _U64)


@lru_cache(maxsize=_MEMO_SIZE)
def _mul(av: int, am: int, bv: int, bm: int) -> Tnum:
    acc_v = (av * bv) & _U64
    acc = TNUM_ZERO
    while av or am:
        if av & 1:
            acc = _add(acc.value, acc.mask, 0, bm)
        elif am & 1:
            acc = _add(acc.value, acc.mask, 0, (bv | bm) & _U64)
        av >>= 1
        am >>= 1
        bv = (bv << 1) & _U64
        bm = (bm << 1) & _U64
    return _add(acc_v, 0, acc.value, acc.mask)


@lru_cache(maxsize=_MEMO_SIZE)
def _lshift(v: int, m: int, shift: int) -> Tnum:
    shift &= 63
    return _mk((v << shift) & _U64, (m << shift) & _U64)


@lru_cache(maxsize=_MEMO_SIZE)
def _rshift(v: int, m: int, shift: int) -> Tnum:
    shift &= 63
    return _mk(v >> shift, m >> shift)


@lru_cache(maxsize=_MEMO_SIZE)
def _arshift(v: int, m: int, shift: int, insn_bitness: int) -> Tnum:
    shift &= insn_bitness - 1
    if insn_bitness == 32:
        value = _sext32(v & _U32) >> shift
        mask = _sext32(m & _U32) >> shift
        return _mk((value & _U32) & ~(mask & _U32), mask & _U32)
    value = _sext64(v) >> shift
    mask = _sext64(m) >> shift
    return _mk((value & _U64) & ~(mask & _U64), mask & _U64)


@lru_cache(maxsize=_MEMO_SIZE)
def _intersect(av: int, am: int, bv: int, bm: int) -> Tnum:
    v = av | bv
    mu = am & bm
    return _mk((v & ~mu) & _U64, mu & _U64)


@lru_cache(maxsize=_MEMO_SIZE)
def _union(av: int, am: int, bv: int, bm: int) -> Tnum:
    chi = (av ^ bv) | am | bm
    # Any differing or unknown bit becomes unknown.
    return _mk((av & ~chi) & _U64, chi & _U64)


@lru_cache(maxsize=_MEMO_SIZE)
def _const(value: int) -> Tnum:
    return _mk(value, 0)


@lru_cache(maxsize=_MEMO_SIZE)
def _range(lo: int, hi: int) -> Tnum:
    if lo > hi:
        return TNUM_UNKNOWN
    chi = lo ^ hi
    bits = chi.bit_length()
    if bits > 63:
        return TNUM_UNKNOWN
    delta = (1 << bits) - 1
    return _mk(lo & ~delta, delta)


#: Every memoized kernel, for stats aggregation and cache clearing.
_MEMO_OPS = {
    "add": _add,
    "sub": _sub,
    "and": _and,
    "or": _or,
    "xor": _xor,
    "mul": _mul,
    "lshift": _lshift,
    "rshift": _rshift,
    "arshift": _arshift,
    "intersect": _intersect,
    "union": _union,
    "const": _const,
    "range": _range,
}


def tnum_memo_stats() -> dict[str, int]:
    """Aggregate hit/miss/size counters across all op LRUs."""
    hits = misses = size = 0
    for fn in _MEMO_OPS.values():
        info = fn.cache_info()
        hits += info.hits
        misses += info.misses
        size += info.currsize
    return {"hits": hits, "misses": misses, "entries": size}


def tnum_memo_clear() -> None:
    """Drop every memoized entry (cold-cache test/benchmark hook)."""
    for fn in _MEMO_OPS.values():
        fn.cache_clear()


TNUM_UNKNOWN = Tnum(0, _U64)
TNUM_ZERO = Tnum(0, 0)


def tnum_const(value: int) -> Tnum:
    """The tnum representing exactly ``value``."""
    return _const(value & _U64)


def tnum_range(lo: int, hi: int) -> Tnum:
    """Smallest tnum containing the unsigned range ``[lo, hi]``.

    Port of the kernel's ``tnum_range``: all bits above the highest
    differing bit are known, the rest unknown.
    """
    return _range(lo & _U64, hi & _U64)
