"""Tristate numbers — the verifier's bit-level abstract domain.

A tnum tracks, for each bit of a 64-bit value, whether it is known-0,
known-1, or unknown.  It is represented as ``(value, mask)`` where mask
bits are the unknown positions and ``value`` holds the known bits
(``value & mask == 0`` is the representation invariant).

This is a direct port of the kernel's ``kernel/bpf/tnum.c``; the
property-based tests assert the defining soundness condition for every
operation: if concrete ``x`` is in ``a`` and concrete ``y`` is in
``b``, then ``x <op> y`` is in ``tnum_<op>(a, b)``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Tnum", "TNUM_UNKNOWN", "TNUM_ZERO", "tnum_const", "tnum_range"]

_U64 = (1 << 64) - 1
_U32 = (1 << 32) - 1


@dataclass(frozen=True)
class Tnum:
    """A tristate number over 64 bits."""

    value: int
    mask: int

    def __post_init__(self) -> None:
        if self.value & self.mask:
            raise ValueError(
                f"broken tnum invariant: value={self.value:#x} mask={self.mask:#x}"
            )
        if not (0 <= self.value <= _U64 and 0 <= self.mask <= _U64):
            raise ValueError("tnum fields out of u64 range")

    # --- predicates --------------------------------------------------------

    def is_const(self) -> bool:
        """All 64 bits known."""
        return self.mask == 0

    def is_unknown(self) -> bool:
        """No bits known."""
        return self.mask == _U64

    def contains(self, value: int) -> bool:
        """Concrete ``value`` is a possible concretisation of this tnum."""
        value &= _U64
        return (value & ~self.mask) == self.value

    def is_aligned(self, size: int) -> bool:
        """The low ``log2(size)`` bits are known zero."""
        if size <= 1:
            return True
        return not ((self.value | self.mask) & (size - 1))

    # --- derived constants ----------------------------------------------------

    def min_value(self) -> int:
        """Smallest unsigned concretisation (unknown bits = 0)."""
        return self.value

    def max_value(self) -> int:
        """Largest unsigned concretisation (unknown bits = 1)."""
        return self.value | self.mask

    # --- arithmetic -------------------------------------------------------------

    def add(self, other: "Tnum") -> "Tnum":
        sm = (self.mask + other.mask) & _U64
        sv = (self.value + other.value) & _U64
        sigma = (sm + sv) & _U64
        chi = sigma ^ sv
        mu = chi | self.mask | other.mask
        return Tnum(sv & ~mu & _U64, mu & _U64)

    def sub(self, other: "Tnum") -> "Tnum":
        dv = (self.value - other.value) & _U64
        alpha = (dv + self.mask) & _U64
        beta = (dv - other.mask) & _U64
        chi = alpha ^ beta
        mu = chi | self.mask | other.mask
        return Tnum(dv & ~mu & _U64, mu & _U64)

    def neg(self) -> "Tnum":
        return TNUM_ZERO.sub(self)

    def and_(self, other: "Tnum") -> "Tnum":
        alpha = self.value | self.mask
        beta = other.value | other.mask
        v = self.value & other.value
        return Tnum(v, (alpha & beta & ~v) & _U64)

    def or_(self, other: "Tnum") -> "Tnum":
        v = self.value | other.value
        mu = self.mask | other.mask
        return Tnum(v, (mu & ~v) & _U64)

    def xor(self, other: "Tnum") -> "Tnum":
        v = self.value ^ other.value
        mu = self.mask | other.mask
        return Tnum((v & ~mu) & _U64, mu & _U64)

    def mul(self, other: "Tnum") -> "Tnum":
        """Kernel-style long multiplication over tnum halves.

        Sound but deliberately imprecise for large masks, like the
        kernel's ``tnum_mul``.
        """
        a, b = self, other
        acc_v = (a.value * b.value) & _U64
        acc_m = TNUM_ZERO
        while a.value or a.mask:
            if a.value & 1:
                acc_m = acc_m.add(Tnum(0, b.mask))
            elif a.mask & 1:
                acc_m = acc_m.add(Tnum(0, (b.value | b.mask) & _U64))
            a = a.rshift(1)
            b = b.lshift(1)
        return tnum_const(acc_v).add(acc_m)

    def lshift(self, shift: int) -> "Tnum":
        shift &= 63
        return Tnum((self.value << shift) & _U64, (self.mask << shift) & _U64)

    def rshift(self, shift: int) -> "Tnum":
        shift &= 63
        return Tnum(self.value >> shift, self.mask >> shift)

    def arshift(self, shift: int, insn_bitness: int = 64) -> "Tnum":
        """Arithmetic right shift at the given bitness."""
        shift &= insn_bitness - 1
        if insn_bitness == 32:
            value = _sext32(self.value & _U32) >> shift
            mask = _sext32(self.mask & _U32) >> shift
            return Tnum((value & _U32) & ~(mask & _U32), mask & _U32)
        value = _sext64(self.value) >> shift
        mask = _sext64(self.mask) >> shift
        return Tnum((value & _U64) & ~(mask & _U64), mask & _U64)

    # --- set operations -----------------------------------------------------------

    def intersect(self, other: "Tnum") -> "Tnum":
        """Bits known in either (caller must know the sets overlap)."""
        v = self.value | other.value
        mu = self.mask & other.mask
        return Tnum((v & ~mu) & _U64, mu & _U64)

    def union(self, other: "Tnum") -> "Tnum":
        """Smallest tnum containing both operands' concretisations."""
        chi = (self.value ^ other.value) | self.mask | other.mask
        # Any differing or unknown bit becomes unknown.
        return Tnum((self.value & ~chi) & _U64, chi & _U64)

    # --- width handling --------------------------------------------------------------

    def cast(self, size: int) -> "Tnum":
        """Truncate to ``size`` bytes (zero-extending semantics)."""
        bits = size * 8
        if bits >= 64:
            return self
        keep = (1 << bits) - 1
        return Tnum(self.value & keep, self.mask & keep)

    def subreg(self) -> "Tnum":
        """The low 32 bits as a tnum."""
        return self.cast(4)

    def clear_subreg(self) -> "Tnum":
        """Zero out the low 32 bits."""
        return self.rshift(32).lshift(32)

    def with_subreg(self, subreg: "Tnum") -> "Tnum":
        """Replace the low 32 bits with ``subreg``."""
        return self.clear_subreg().or_(subreg.cast(4))

    def const_subreg_val(self) -> int:
        """Value of the low 32 bits (requires them to be known)."""
        return self.value & _U32

    def subreg_is_const(self) -> bool:
        return (self.mask & _U32) == 0

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_const():
            return f"{self.value:#x}"
        if self.is_unknown():
            return "?"
        return f"(v={self.value:#x} m={self.mask:#x})"


def _sext64(value: int) -> int:
    value &= _U64
    return value - (1 << 64) if value >= (1 << 63) else value


def _sext32(value: int) -> int:
    value &= _U32
    return value - (1 << 32) if value >= (1 << 31) else value


TNUM_UNKNOWN = Tnum(0, _U64)
TNUM_ZERO = Tnum(0, 0)


def tnum_const(value: int) -> Tnum:
    """The tnum representing exactly ``value``."""
    return Tnum(value & _U64, 0)


def tnum_range(lo: int, hi: int) -> Tnum:
    """Smallest tnum containing the unsigned range ``[lo, hi]``.

    Port of the kernel's ``tnum_range``: all bits above the highest
    differing bit are known, the rest unknown.
    """
    lo &= _U64
    hi &= _U64
    if lo > hi:
        return TNUM_UNKNOWN
    chi = lo ^ hi
    bits = chi.bit_length()
    if bits > 63:
        return TNUM_UNKNOWN
    delta = (1 << bits) - 1
    return Tnum(lo & ~delta, delta)
