"""Call-site checking: helpers, kfuncs, and bpf-to-bpf calls.

The verifier matches the argument registers R1-R5 against the callee's
prototype, then models the call's effect on the state: R1-R5 become
uninitialised (caller-saved), and R0 takes the prototype's return
type.

Two injected verifier flaws live here:

- **Bug #6** — the fixed kernel refuses NMI-unsafe helpers (e.g.
  ``bpf_send_signal``) for program types that run in NMI context; the
  flawed kernel loads such programs, which panic at runtime.
- **Bug #3** — the fixed kernel invalidates R0's scalar knowledge
  across a kfunc call; the flawed kernel keeps the stale bounds, so a
  bounded pre-call value "justifies" a post-call access whose actual
  index is whatever the kfunc returned.
"""

from __future__ import annotations

import errno

from repro.ebpf.helpers import ArgType, RetType
from repro.ebpf.insn import Insn
from repro.ebpf.kfuncs import KFUNCS
from repro.ebpf.opcodes import Reg
from repro.ebpf.program import ProgType
from repro.kernel.config import Flaw
from repro.verifier.state import RegState, RegType

__all__ = ["check_helper_call", "check_kfunc_call"]

_ARG_REGS = (Reg.R1, Reg.R2, Reg.R3, Reg.R4, Reg.R5)


def _check_mem_arg(
    v, state, regno: int, reg: RegState, size: int, is_write: bool
) -> None:
    """A helper argument pointing at a readable/writable region."""
    if size < 0:
        v.reject(errno.EACCES, f"R{regno} negative access size {size}")
    if size == 0:
        return
    if reg.type == RegType.PTR_TO_STACK:
        if not reg.var_off.is_const():
            v.reject(errno.EACCES, f"R{regno} variable stack pointer to helper")
        off = reg.off
        from repro.verifier.stack import StackState

        if not StackState.in_bounds(off, size):
            v.reject(
                errno.EACCES,
                f"invalid indirect access to stack off={off} size={size}",
            )
        if is_write:
            state.stack.mark_region_written(off, size)
        else:
            error = state.stack.check_region_initialized(off, size)
            if error:
                v.reject(errno.EACCES, f"R{regno} {error}")
        return
    if reg.type == RegType.PTR_TO_MAP_VALUE:
        if reg.map is None:
            v.reject(errno.EACCES, f"R{regno} map pointer without map state")
        lo = reg.off + reg.smin
        hi = reg.off + reg.smax
        if lo < 0 or hi + size > reg.map.value_size:
            v.reject(
                errno.EACCES,
                f"R{regno} invalid map value region off={hi} size={size}",
            )
        return
    if reg.type == RegType.PTR_TO_MEM:
        lo = reg.off + reg.smin
        if lo < 0 or reg.off + reg.smax + size > reg.mem_size:
            v.reject(errno.EACCES, f"R{regno} invalid mem region size={size}")
        return
    if reg.is_pkt_pointer():
        hi = reg.off + reg.umax
        if reg.smin + reg.off < 0 or hi + size > reg.pkt_range:
            v.reject(
                errno.EACCES, f"R{regno} invalid packet region size={size}"
            )
        return
    v.reject(
        errno.EACCES,
        f"R{regno} type={reg.type.value} expected pointer to memory",
    )


def _const_size(v, regno: int, reg: RegState, allow_zero: bool) -> int:
    """Validate and extract a CONST_SIZE[_OR_ZERO] argument."""
    if not reg.is_scalar():
        v.reject(errno.EACCES, f"R{regno} size argument must be a scalar")
    if reg.smin < 0:
        v.reject(errno.EACCES, f"R{regno} size argument may be negative")
    if not allow_zero and reg.umin == 0 and not reg.is_const():
        # The kernel demands provably-positive sizes for CONST_SIZE.
        v.reject(errno.EACCES, f"R{regno} size argument may be zero")
    if not allow_zero and reg.is_const() and reg.const_value() == 0:
        v.reject(errno.EACCES, f"R{regno} zero-size memory access")
    if reg.umax > 1 << 29:
        v.reject(errno.EACCES, f"R{regno} size argument too large")
    return reg.umax


def release_reference(v, state, ref_obj_id: int) -> None:
    """Drop a release obligation and kill every alias of the object."""
    from repro.verifier.branches import _cow_update_regs

    state.refs.pop(ref_obj_id, None)

    def match(reg: RegState) -> bool:
        return reg.ref_obj_id == ref_obj_id

    def invalidate(reg: RegState) -> None:
        reg.mark_unknown()

    _cow_update_regs(state, match, invalidate)


def check_helper_call(v, state, insn: Insn) -> None:
    """Verify a helper call and apply its effect on the state."""
    proto = v.kernel.helpers.get(insn.imm)
    if proto is None:
        v.reject(errno.EINVAL, f"invalid func unknown#{insn.imm}")

    prog_type = v.prog.prog_type.value
    if proto.prog_types is not None and prog_type not in proto.prog_types:
        v.reject(
            errno.EINVAL,
            f"unknown func {proto.name}#{insn.imm} for program type {prog_type}",
        )

    # Bug #6: NMI-unsafe helpers must be refused for NMI program types.
    if proto.nmi_unsafe and v.prog.prog_type == ProgType.PERF_EVENT:
        if not v.has_flaw(Flaw.SIGNAL_PANIC):
            v.reject(
                errno.EINVAL,
                f"helper {proto.name} is not allowed in NMI context programs",
            )

    # Spin-lock discipline: while the lock is held only the unlock
    # helper may be called (the kernel's function-call restriction).
    from repro.ebpf.helpers import HelperId

    if state.active_lock is not None and proto.helper_id != HelperId.SPIN_UNLOCK:
        v.reject(
            errno.EINVAL,
            f"function calls are not allowed while holding a lock "
            f"({proto.name})",
        )

    regs = state.regs
    meta_map = None
    meta_alloc_size = 0
    released_ref = 0
    pending_mem: tuple[int, RegState, bool] | None = None

    for arg_idx, arg_type in enumerate(proto.args):
        regno = _ARG_REGS[arg_idx]
        reg = regs[regno]
        if reg.type == RegType.NOT_INIT:
            v.reject(errno.EACCES, f"R{regno} !read_ok")
        if reg.is_maybe_null():
            v.reject(
                errno.EACCES,
                f"R{regno} type={reg.type.value} expected non-null argument",
            )

        if arg_type == ArgType.ANYTHING:
            continue
        if arg_type == ArgType.CONST_ALLOC_SIZE:
            if not reg.is_scalar():
                v.reject(errno.EACCES, f"R{regno} alloc size must be scalar")
            if reg.smin <= 0:
                v.reject(errno.EACCES, f"R{regno} alloc size must be positive")
            if reg.umax > 1 << 20:
                v.reject(errno.EACCES, f"R{regno} alloc size too large")
            meta_alloc_size = reg.umax
            continue
        if arg_type == ArgType.PTR_TO_SPIN_LOCK:
            if reg.type != RegType.PTR_TO_MAP_VALUE or reg.map is None:
                v.reject(
                    errno.EACCES,
                    f"R{regno} expected a map value containing a spin lock",
                )
            if not getattr(reg.map, "has_spin_lock", False):
                v.reject(
                    errno.EACCES,
                    f"R{regno} map does not contain a bpf_spin_lock",
                )
            if reg.off != reg.map.SPIN_LOCK_OFF or not reg.var_off.is_const():
                v.reject(
                    errno.EACCES,
                    f"R{regno} must point exactly at the bpf_spin_lock",
                )
            is_lock = proto.helper_id == HelperId.SPIN_LOCK
            lock_key = (id(reg.map), reg.id)
            if is_lock:
                if state.active_lock is not None:
                    v.reject(
                        errno.EINVAL, "bpf_spin_lock is already being held"
                    )
                state.active_lock = lock_key
            else:
                if state.active_lock is None:
                    v.reject(
                        errno.EINVAL,
                        "bpf_spin_unlock without taking a lock",
                    )
                if state.active_lock != lock_key:
                    v.reject(
                        errno.EINVAL,
                        "bpf_spin_unlock of a different lock",
                    )
                state.active_lock = None
            continue
        if arg_type == ArgType.PTR_TO_ALLOC_MEM:
            if reg.type != RegType.PTR_TO_MEM or reg.ref_obj_id == 0:
                v.reject(
                    errno.EACCES,
                    f"R{regno} expected an acquired (refcounted) pointer",
                )
            if reg.ref_obj_id not in state.refs:
                v.reject(
                    errno.EACCES,
                    f"R{regno} reference has already been released",
                )
            if reg.off != 0 or not reg.var_off.is_const():
                v.reject(
                    errno.EACCES,
                    f"R{regno} must point to the start of the allocation",
                )
            released_ref = reg.ref_obj_id
            continue
        if arg_type == ArgType.SCALAR:
            if not reg.is_scalar():
                v.reject(errno.EACCES, f"R{regno} expected scalar")
            continue
        if arg_type == ArgType.CONST_MAP_PTR:
            if reg.type != RegType.CONST_PTR_TO_MAP or reg.map is None:
                v.reject(errno.EACCES, f"R{regno} expected map pointer")
            meta_map = reg.map
            # check_map_func_compatibility: helper <-> map-type pairing.
            if (
                proto.map_types is not None
                and meta_map.map_type not in proto.map_types
            ):
                v.reject(
                    errno.EINVAL,
                    f"cannot pass map_type {int(meta_map.map_type)} into "
                    f"func {proto.name}#{int(proto.helper_id)}",
                )
            continue
        if arg_type == ArgType.PTR_TO_CTX:
            if reg.type != RegType.PTR_TO_CTX:
                v.reject(errno.EACCES, f"R{regno} expected ctx pointer")
            continue
        if arg_type == ArgType.PTR_TO_BTF_ID:
            if reg.type != RegType.PTR_TO_BTF_ID:
                v.reject(errno.EACCES, f"R{regno} expected BTF object pointer")
            continue
        if arg_type == ArgType.PTR_TO_MAP_KEY:
            if meta_map is None:
                v.reject(errno.EACCES, f"R{regno} map key without map argument")
            _check_mem_arg(v, state, regno, reg, meta_map.key_size, is_write=False)
            continue
        if arg_type == ArgType.PTR_TO_MAP_VALUE:
            if meta_map is None:
                v.reject(errno.EACCES, f"R{regno} map value without map argument")
            _check_mem_arg(v, state, regno, reg, meta_map.value_size, is_write=False)
            continue
        if arg_type == ArgType.PTR_TO_UNINIT_MAP_VALUE:
            if meta_map is None:
                v.reject(errno.EACCES, f"R{regno} map value without map argument")
            _check_mem_arg(v, state, regno, reg, meta_map.value_size, is_write=True)
            continue
        if arg_type in (ArgType.PTR_TO_MEM, ArgType.PTR_TO_UNINIT_MEM):
            pending_mem = (regno, reg, arg_type == ArgType.PTR_TO_UNINIT_MEM)
            continue
        if arg_type in (ArgType.CONST_SIZE, ArgType.CONST_SIZE_OR_ZERO):
            if pending_mem is None:
                v.reject(errno.EACCES, f"R{regno} size without memory argument")
            size = _const_size(
                v, regno, reg, allow_zero=arg_type == ArgType.CONST_SIZE_OR_ZERO
            )
            mem_regno, mem_reg, writable = pending_mem
            _check_mem_arg(v, state, mem_regno, mem_reg, size, is_write=writable)
            pending_mem = None
            continue

    if pending_mem is not None:
        v.reject(
            errno.EACCES,
            f"helper {proto.name} memory argument missing its size",
        )

    # Release obligations are settled before the clobber so aliases in
    # callee-saved registers are invalidated too.
    if proto.releases_ref and released_ref:
        release_reference(v, state, released_ref)

    # Effect on the state: caller-saved registers die, R0 is born.
    for regno in _ARG_REGS:
        regs[regno] = RegState.not_init()
    regs[Reg.R0] = _helper_return(v, proto, meta_map, meta_alloc_size)

    if proto.acquires_ref and regs[Reg.R0].ref_obj_id:
        state.refs[regs[Reg.R0].ref_obj_id] = v.cur_insn_idx

    v.note_helper(proto)


def _helper_return(v, proto, meta_map, meta_alloc_size: int = 0) -> RegState:
    if proto.ret == RetType.INTEGER:
        return RegState.unknown_scalar()
    if proto.ret == RetType.VOID:
        return RegState.not_init()
    if proto.ret == RetType.PTR_TO_MAP_VALUE_OR_NULL:
        reg = RegState.pointer(RegType.PTR_TO_MAP_VALUE_OR_NULL)
        reg.map = meta_map
        reg.id = v.env.new_id()
        return reg
    if proto.ret == RetType.PTR_TO_BTF_ID:
        reg = RegState.pointer(RegType.PTR_TO_BTF_ID)
        reg.btf = v.kernel.btf.object(v.kernel.btf.current_task_id)
        return reg
    if proto.ret == RetType.PTR_TO_ALLOC_MEM_OR_NULL:
        reg = RegState.pointer(RegType.PTR_TO_MEM_OR_NULL)
        reg.mem_size = meta_alloc_size
        reg.id = v.env.new_id()
        reg.ref_obj_id = v.env.new_id()
        return reg
    raise AssertionError(f"unhandled return type {proto.ret}")


def check_kfunc_call(v, state, insn: Insn) -> None:
    """Verify a kfunc call (Bug #3's site)."""
    if not v.config.has_kfuncs:
        v.reject(errno.EINVAL, "calling kernel functions is not supported")
    proto = KFUNCS.get(insn.imm)
    if proto is None:
        v.reject(errno.EINVAL, f"kernel function btf_id {insn.imm} is not allowed")

    regs = state.regs
    for arg_idx, arg_type in enumerate(proto.args):
        regno = _ARG_REGS[arg_idx]
        reg = regs[regno]
        if reg.type == RegType.NOT_INIT:
            v.reject(errno.EACCES, f"R{regno} !read_ok")
        if arg_type == ArgType.PTR_TO_BTF_ID:
            if reg.type != RegType.PTR_TO_BTF_ID:
                v.reject(
                    errno.EACCES,
                    f"R{regno} expected BTF object pointer for {proto.name}",
                )

    stale_r0 = regs[Reg.R0]
    for regno in _ARG_REGS:
        regs[regno] = RegState.not_init()

    if proto.ret.startswith("btf:"):
        reg = RegState.pointer(RegType.PTR_TO_BTF_ID)
        type_name = proto.ret.split(":", 1)[1]
        obj_type = v.kernel.btf.type_by_name(type_name)
        from repro.verifier.checks import _VirtualBtfObject

        reg.btf = _VirtualBtfObject(obj_type)
        regs[Reg.R0] = reg
    else:
        # Bug #3: the flawed verifier forgets to invalidate R0, keeping
        # whatever scalar bounds it had before the call.
        if v.has_flaw(Flaw.KFUNC_BACKTRACK) and stale_r0.is_scalar():
            regs[Reg.R0] = stale_r0
        else:
            regs[Reg.R0] = RegState.unknown_scalar()

    v.note_kfunc(proto)
