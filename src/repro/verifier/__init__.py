"""The eBPF verifier.

A from-scratch Python re-implementation of the Linux eBPF verifier's
analysis core — the system under test in the paper.  It models:

- per-register abstract state: tristate numbers (:mod:`repro.verifier.tnum`)
  plus 64-bit and 32-bit signed/unsigned bounds,
- more than ten pointer types (stack, ctx, map value, nullable map
  value, packet, BTF object, mem, ...),
- stack-slot tracking with spill/fill,
- path-sensitive exploration with state pruning and a complexity
  budget,
- branch-based bounds refinement, pointer-nullness marking, and the
  nullness-propagation pass of commit bfeae75856ab (whose incomplete
  filter is Bug #1),
- helper/kfunc call checking against typed prototypes,
- the fixup/rewrite phase (map address resolution, PROBE_MEM marking,
  ``alu_limit`` computation) into which BVF's sanitizer hooks.

Injectable flaws (see :mod:`repro.kernel.config`) reproduce the paper's
Table-2 verifier bugs so the oracle has ground truth to discover.
"""

from repro.verifier.core import Verifier, verify_program

__all__ = ["Verifier", "verify_program"]
