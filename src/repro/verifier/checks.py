"""Per-instruction verifier checks: ALU and memory access.

This module ports the kernel's ``adjust_scalar_min_max_vals`` /
``adjust_ptr_min_max_vals`` (pointer-arithmetic rules) and
``check_mem_access`` logic.  Two injected flaws live here:

- **CVE-2022-23222** (Listing 1): the flawed kernel permits ALU on
  ``PTR_TO_MAP_VALUE_OR_NULL``; pointer arithmetic performed before the
  null check then survives into the "non-null" branch and produces an
  attacker-controlled near-null pointer.
- **Bug #2**: the flawed BTF-object bounds check accepts accesses up to
  8 bytes past the end of the kernel structure.
"""

from __future__ import annotations

import errno

from repro.ebpf.insn import Insn
from repro.ebpf.opcodes import AluOp, InsnClass, Reg, Size, Src, SIZE_BYTES
from repro.ebpf.program import PACKET_ACCESS_TYPES
from repro.kernel.config import Flaw
from repro.verifier.state import (
    RegState,
    RegType,
    S64_MAX,
    S64_MIN,
    U64_MAX,
    s64,
    u64,
)


__all__ = ["check_alu", "check_mem_access", "coerce_to_32"]

U32_MAX = (1 << 32) - 1

#: Largest fixed pointer offset the verifier tolerates (kernel:
#: BPF_MAX_VAR_OFF = 1 << 29).
MAX_PTR_OFF = 1 << 29

#: Pointer types on which any arithmetic is prohibited.  The OR_NULL
#: entries are the CVE-2022-23222 site: a flawed kernel omits them.
_NO_ALU_TYPES = frozenset(
    {
        RegType.CONST_PTR_TO_MAP,
        RegType.PTR_TO_PACKET_END,
    }
)

_OR_NULL_TYPES = frozenset(
    {RegType.PTR_TO_MAP_VALUE_OR_NULL, RegType.PTR_TO_MEM_OR_NULL}
)

#: Pointer types that only admit constant offsets.
_CONST_OFF_ONLY = frozenset({RegType.PTR_TO_CTX, RegType.PTR_TO_BTF_ID})


def _signed_add_overflows(a: int, b: int) -> bool:
    return not S64_MIN <= a + b <= S64_MAX


def _signed_sub_overflows(a: int, b: int) -> bool:
    return not S64_MIN <= a - b <= S64_MAX


def coerce_to_32(reg: RegState) -> None:
    """Truncate a scalar register to its zero-extended low 32 bits."""
    reg.var_off = reg.var_off.cast(4)
    if reg.umax > U32_MAX or reg.umin > reg.umax:
        reg.umin = reg.var_off.min_value()
        reg.umax = reg.var_off.max_value()
    reg.smin = reg.umin
    reg.smax = reg.umax
    reg.sync_bounds()


def _reg_32bit_view(reg: RegState) -> RegState:
    """A fresh scalar holding only the low 32 bits of ``reg``."""
    view = RegState.unknown_scalar()
    view.var_off = reg.var_off.subreg()
    if reg.umax <= U32_MAX:
        view.umin, view.umax = reg.umin, reg.umax
    else:
        view.umin = view.var_off.min_value()
        view.umax = view.var_off.max_value()
    view.smin, view.smax = S64_MIN, S64_MAX
    view.sync_bounds()
    return view


# ---------------------------------------------------------------------------
# Scalar ALU
# ---------------------------------------------------------------------------


def _scalar_add(dst: RegState, src: RegState) -> None:
    if _signed_add_overflows(dst.smin, src.smin) or _signed_add_overflows(
        dst.smax, src.smax
    ):
        dst.smin, dst.smax = S64_MIN, S64_MAX
    else:
        dst.smin += src.smin
        dst.smax += src.smax
    if dst.umin + src.umin > U64_MAX or dst.umax + src.umax > U64_MAX:
        dst.umin, dst.umax = 0, U64_MAX
    else:
        dst.umin += src.umin
        dst.umax += src.umax
    dst.var_off = dst.var_off.add(src.var_off)


def _scalar_sub(dst: RegState, src: RegState) -> None:
    if _signed_sub_overflows(dst.smin, src.smax) or _signed_sub_overflows(
        dst.smax, src.smin
    ):
        dst.smin, dst.smax = S64_MIN, S64_MAX
    else:
        dst.smin -= src.smax
        dst.smax -= src.smin
    if dst.umin < src.umax:
        dst.umin, dst.umax = 0, U64_MAX
    else:
        dst.umin -= src.umax
        dst.umax -= src.umin
    dst.var_off = dst.var_off.sub(src.var_off)


def _scalar_mul(dst: RegState, src: RegState) -> None:
    dst.var_off = dst.var_off.mul(src.var_off)
    if dst.umax > U32_MAX or src.umax > U32_MAX:
        dst.umin, dst.umax = 0, U64_MAX
        dst.smin, dst.smax = S64_MIN, S64_MAX
    else:
        dst.umin *= src.umin
        dst.umax *= src.umax
        if dst.umax > S64_MAX:
            dst.smin, dst.smax = S64_MIN, S64_MAX
        else:
            dst.smin, dst.smax = dst.umin, dst.umax


def _scalar_and(dst: RegState, src: RegState) -> None:
    dst.var_off = dst.var_off.and_(src.var_off)
    smin_neg = dst.smin < 0 or src.smin < 0
    dst.umin = dst.var_off.value
    dst.umax = min(dst.umax, src.umax, dst.var_off.max_value())
    if smin_neg:
        dst.smin, dst.smax = S64_MIN, S64_MAX
    else:
        dst.smin, dst.smax = dst.umin, dst.umax


def _scalar_or(dst: RegState, src: RegState) -> None:
    smin_neg = dst.smin < 0 or src.smin < 0
    dst.var_off = dst.var_off.or_(src.var_off)
    dst.umin = max(dst.umin, src.umin, dst.var_off.min_value())
    dst.umax = dst.var_off.max_value()
    if smin_neg:
        dst.smin, dst.smax = S64_MIN, S64_MAX
    else:
        dst.smin, dst.smax = dst.umin, dst.umax


def _scalar_xor(dst: RegState, src: RegState) -> None:
    smin_neg = dst.smin < 0 or src.smin < 0
    dst.var_off = dst.var_off.xor(src.var_off)
    dst.umin = dst.var_off.min_value()
    dst.umax = dst.var_off.max_value()
    if smin_neg:
        dst.smin, dst.smax = S64_MIN, S64_MAX
    else:
        dst.smin, dst.smax = dst.umin, dst.umax


def _scalar_lsh(dst: RegState, shift: int) -> None:
    if dst.umax > (U64_MAX >> shift):
        dst.umin, dst.umax = 0, U64_MAX
    else:
        dst.umin <<= shift
        dst.umax <<= shift
    dst.smin, dst.smax = S64_MIN, S64_MAX
    dst.var_off = dst.var_off.lshift(shift)


def _scalar_rsh(dst: RegState, shift: int) -> None:
    dst.umin >>= shift
    dst.umax >>= shift
    dst.var_off = dst.var_off.rshift(shift)
    if dst.umax <= S64_MAX:
        # The result cannot have the sign bit set, so the unsigned
        # bounds are also valid signed bounds.  A zero shift leaves
        # umax possibly above S64_MAX; copying it into smax would put
        # the signed bound outside its domain and sync_bounds would
        # then "repair" the state by unsoundly halving umax.
        dst.smin = dst.umin
        dst.smax = dst.umax
    else:
        dst.smin, dst.smax = S64_MIN, S64_MAX


def _scalar_arsh(dst: RegState, shift: int, bits: int) -> None:
    dst.var_off = dst.var_off.arshift(shift, bits)
    if bits == 64:
        dst.smin >>= shift
        dst.smax >>= shift
        if dst.smin >= 0:
            dst.umin, dst.umax = dst.smin, dst.smax
        else:
            dst.umin, dst.umax = 0, U64_MAX
        return
    # 32-bit: ``dst`` is the zero-extended low-32 view, so its bounds
    # must be reinterpreted as s32 before an arithmetic shift — bit 31
    # is the sign bit, not bit 63.
    sign = 1 << 31
    if dst.umax < sign:
        # Sign bit clear everywhere: arithmetic == logical shift.
        dst.umin >>= shift
        dst.umax >>= shift
    elif dst.umin >= sign:
        # Sign bit set everywhere; shift in s32 space (order-preserving)
        # and wrap the (still negative) results back to u32.
        dst.umin = ((dst.umin - (1 << 32)) >> shift) & U32_MAX
        dst.umax = ((dst.umax - (1 << 32)) >> shift) & U32_MAX
    else:
        # Sign unknown: the shifted range wraps around zero.
        dst.umin, dst.umax = 0, U32_MAX
    dst.smin, dst.smax = dst.umin, dst.umax


def scalar_alu(v, dst: RegState, src: RegState, op: AluOp, is64: bool) -> None:
    """Apply a scalar ALU operation, updating bounds soundly.

    ``v`` is the verifier (for rejection); ``src`` is a scalar
    :class:`RegState` (constant for immediate operands).
    """
    if not is64:
        dst_view = _reg_32bit_view(dst)
        src = _reg_32bit_view(src)
        dst.type = RegType.SCALAR
        dst.var_off = dst_view.var_off
        dst.umin, dst.umax = dst_view.umin, dst_view.umax
        dst.smin, dst.smax = dst_view.smin, dst_view.smax
        dst.off = 0
        dst.map = None
        dst.btf = None
        dst.id = 0

    bits = 64 if is64 else 32

    if op == AluOp.ADD:
        _scalar_add(dst, src)
    elif op == AluOp.SUB:
        _scalar_sub(dst, src)
    elif op == AluOp.MUL:
        _scalar_mul(dst, src)
    elif op in (AluOp.DIV, AluOp.MOD):
        if src.is_const() and dst.is_const():
            a, b = dst.const_value(), src.const_value()
            if not is64:
                a &= U32_MAX
                b &= U32_MAX
            if op == AluOp.DIV:
                result = a // b if b else 0
            else:
                result = a % b if b else a
            dst.mark_known(result)
        else:
            # eBPF defines division by zero as zero; bounds are simply
            # unknown for non-constant operands (like the kernel).
            dst.mark_unknown()
    elif op == AluOp.AND:
        _scalar_and(dst, src)
    elif op == AluOp.OR:
        _scalar_or(dst, src)
    elif op == AluOp.XOR:
        _scalar_xor(dst, src)
    elif op in (AluOp.LSH, AluOp.RSH, AluOp.ARSH):
        if src.is_const():
            shift = src.const_value()
            if shift >= bits:
                # Checked earlier for immediates; register shifts of
                # out-of-range constants produce unknown values.
                dst.mark_unknown()
            elif op == AluOp.LSH:
                _scalar_lsh(dst, shift)
            elif op == AluOp.RSH:
                _scalar_rsh(dst, shift)
            else:
                _scalar_arsh(dst, shift, bits)
        else:
            dst.mark_unknown()
    elif op == AluOp.NEG:
        zero = RegState.const_scalar(0)
        _scalar_sub(zero, dst)
        dst.var_off = zero.var_off
        dst.umin, dst.umax = zero.umin, zero.umax
        dst.smin, dst.smax = zero.smin, zero.smax
    else:  # pragma: no cover - END handled by caller
        dst.mark_unknown()

    dst.sync_bounds()
    if not is64:
        coerce_to_32(dst)


# ---------------------------------------------------------------------------
# Pointer ALU
# ---------------------------------------------------------------------------


def _ptr_region_size(reg: RegState) -> int | None:
    """Size of the region behind a pointer, for alu_limit computation."""
    if reg.type == RegType.PTR_TO_STACK:
        from repro.ebpf.opcodes import STACK_SIZE

        return STACK_SIZE
    if reg.type in (RegType.PTR_TO_MAP_VALUE, RegType.PTR_TO_MAP_VALUE_OR_NULL):
        return reg.map.value_size if reg.map is not None else None
    if reg.type == RegType.PTR_TO_MEM:
        return reg.mem_size
    return None


def pointer_alu(v, state, insn: Insn, dst: RegState, src: RegState) -> None:
    """Pointer +/- scalar with the kernel's type restrictions."""
    op = insn.alu_op
    if insn.insn_class != InsnClass.ALU64:
        v.reject(errno.EACCES, f"R{insn.dst} 32-bit pointer arithmetic prohibited")
    if op not in (AluOp.ADD, AluOp.SUB):
        v.reject(
            errno.EACCES,
            f"R{insn.dst} pointer arithmetic with {op.name} operator prohibited",
        )
    if dst.type in _NO_ALU_TYPES:
        v.reject(
            errno.EACCES,
            f"R{insn.dst} pointer arithmetic on {dst.type.value} prohibited",
        )
    if dst.type in _OR_NULL_TYPES and not v.has_flaw(Flaw.CVE_2022_23222):
        # CVE-2022-23222: the flawed kernel falls through and happily
        # adjusts the offset of a possibly-NULL pointer.
        v.reject(
            errno.EACCES,
            f"R{insn.dst} pointer arithmetic on {dst.type.value} prohibited",
        )
    if not src.is_scalar():
        v.reject(errno.EACCES, f"R{insn.dst} pointer arithmetic between pointers")

    if src.is_const():
        delta = s64(src.const_value())
        if op == AluOp.SUB:
            delta = -delta
        new_off = dst.off + delta
        if abs(new_off) > MAX_PTR_OFF:
            v.reject(errno.EACCES, f"R{insn.dst} pointer offset {new_off} out of range")
        dst.off = new_off
        return

    # Variable offset.
    if dst.type in _CONST_OFF_ONLY:
        v.reject(
            errno.EACCES,
            f"R{insn.dst} variable offset on {dst.type.value} prohibited",
        )

    # Record the alu_limit rewrite the kernel performs for speculative
    # safety; BVF's sanitizer turns it into a runtime assertion.
    region = _ptr_region_size(dst)
    if region is not None:
        if dst.type == RegType.PTR_TO_STACK:
            limit = (
                region + dst.off if op == AluOp.SUB else -dst.off
            )
        else:
            limit = region - dst.off if op == AluOp.ADD else dst.off
        v.record_alu_limit(insn_limit=max(limit, 0), op=op)

    var = RegState(
        type=RegType.SCALAR,
        var_off=dst.var_off,
        smin=dst.smin,
        smax=dst.smax,
        umin=dst.umin,
        umax=dst.umax,
    )
    if op == AluOp.ADD:
        _scalar_add(var, src)
    else:
        _scalar_sub(var, src)
    var.sync_bounds()
    dst.var_off = var.var_off
    dst.smin, dst.smax = var.smin, var.smax
    dst.umin, dst.umax = var.umin, var.umax


# ---------------------------------------------------------------------------
# ALU dispatch
# ---------------------------------------------------------------------------


def check_alu(v, state, insn: Insn) -> None:
    """Verify one ALU/ALU64 instruction and update the state."""
    is64 = insn.insn_class == InsnClass.ALU64
    regs = state.regs
    op = insn.alu_op

    # Profiler op-kind attribution (scalar ALU is the hottest opcode
    # class, so the disabled cost must stay at one attribute test).
    if v._prof is not None:
        v._prof.alu_ops[f"{op.name}{'64' if is64 else '32'}"] += 1

    if insn.dst == Reg.R10:
        v.reject(errno.EACCES, "frame pointer is read only")

    # Writable (COW) destination — nearly every path below mutates it
    # in place.  Taken before the source operand is fetched so that
    # ``dst is src`` aliasing (e.g. ``r1 += r1``) survives the clone.
    dst = state.wreg(insn.dst)

    # Unary operations.
    if op == AluOp.NEG:
        if insn.src_bit == Src.X or insn.src or insn.imm or insn.off:
            v.reject(errno.EINVAL, "BPF_NEG uses reserved fields")
        if dst.type == RegType.NOT_INIT:
            v.reject(errno.EACCES, f"R{insn.dst} !read_ok")
        if dst.is_pointer():
            v.reject(errno.EACCES, f"R{insn.dst} pointer negation prohibited")
        scalar_alu(v, dst, RegState.const_scalar(0), op, is64)
        return
    if op == AluOp.END:
        if insn.imm not in (16, 32, 64):
            v.reject(errno.EINVAL, "BPF_END with invalid width")
        if dst.type == RegType.NOT_INIT:
            v.reject(errno.EACCES, f"R{insn.dst} !read_ok")
        if dst.is_pointer():
            v.reject(errno.EACCES, f"R{insn.dst} pointer byteswap prohibited")
        dst.mark_unknown()
        dst.umax = (1 << insn.imm) - 1 if insn.imm < 64 else U64_MAX
        dst.sync_bounds()
        return

    # Source operand.
    if insn.src_bit == Src.X:
        if insn.imm:
            v.reject(errno.EINVAL, "BPF_ALU uses reserved imm field")
        src = regs[insn.src]
        if src.type == RegType.NOT_INIT:
            v.reject(errno.EACCES, f"R{insn.src} !read_ok")
    else:
        if insn.src:
            v.reject(errno.EINVAL, "BPF_ALU uses reserved src field")
        imm = insn.imm if is64 else insn.imm & U32_MAX
        src = RegState.const_scalar(imm)

    # Immediate shift validation (kernel rejects at load time).
    if op in (AluOp.LSH, AluOp.RSH, AluOp.ARSH) and insn.src_bit == Src.K:
        if insn.imm < 0 or insn.imm >= (64 if is64 else 32):
            v.reject(errno.EINVAL, f"invalid shift {insn.imm}")
    if op in (AluOp.DIV, AluOp.MOD) and insn.src_bit == Src.K and insn.imm == 0:
        v.reject(errno.EINVAL, "division by zero")

    # MOV has its own semantics (full state copy).
    if op == AluOp.MOV:
        if src.is_pointer():
            if not is64:
                v.reject(errno.EACCES, f"R{insn.dst} partial copy of pointer")
            regs[insn.dst] = src.clone()
            return
        if is64 and insn.src_bit == Src.X:
            # Track register equality for find_equal_scalars.  The id
            # is written back into the *source* register, so it needs
            # its own COW view.
            if src.id == 0:
                src = state.wreg(insn.src)
                src.id = v.env.new_id()
            regs[insn.dst] = src.clone()
            return
        new = src.clone()
        new.id = 0
        if not is64:
            coerce_to_32(new)
        regs[insn.dst] = new
        return

    if dst.type == RegType.NOT_INIT:
        v.reject(errno.EACCES, f"R{insn.dst} !read_ok")

    # Pointer arithmetic dispatch.
    if dst.is_pointer() or src.is_pointer():
        if dst.is_pointer() and src.is_pointer():
            v.reject(
                errno.EACCES, f"R{insn.dst} pointer arithmetic between pointers"
            )
        if src.is_pointer():
            if op == AluOp.ADD:
                # scalar += pointer commutes to pointer + scalar.
                new_dst = src.clone()
                pointer_alu(v, state, insn, new_dst, dst)
                regs[insn.dst] = new_dst
                return
            v.reject(
                errno.EACCES,
                f"R{insn.dst} {op.name} of pointer into scalar prohibited",
            )
        pointer_alu(v, state, insn, dst, src)
        dst.sync_bounds()
        return

    dst.id = 0
    scalar_alu(v, dst, src, op, is64)
    # Bound-deduction trail for the flight recorder (level 2 only:
    # scalar ALU is the hottest opcode class, so the disabled cost must
    # stay at this one attribute comparison).
    if v._flight.level >= 2:
        v._flight.refine(
            v.cur_insn_idx, f"R{insn.dst}", f"{op.name} -> {dst}"
        )


# ---------------------------------------------------------------------------
# Memory access
# ---------------------------------------------------------------------------


def _check_stack_access(v, state, insn, reg, off, size, is_write, src_reg):
    if not reg.var_off.is_const():
        v.reject(
            errno.EACCES,
            f"R{insn.dst if is_write else insn.src} variable stack access "
            f"prohibited",
        )
    total = off + reg.off + s64(reg.var_off.value)
    from repro.verifier.stack import StackState

    if not StackState.in_bounds(total, size):
        v.reject(
            errno.EACCES,
            f"invalid stack access off={total} size={size}",
        )
    if is_write:
        if src_reg is not None and size == 8 and total % 8 == 0:
            state.stack.write_reg(total, src_reg)
        else:
            zero = (
                src_reg is not None
                and src_reg.is_const()
                and src_reg.const_value() == 0
            )
            state.stack.write_misc(total, size, zero=zero)
        return None
    filled, error = state.stack.read(total, size)
    if error:
        v.reject(errno.EACCES, error)
    return filled


def _check_ctx_access(v, state, insn, reg, off, size, is_write):
    if not reg.var_off.is_const() or reg.var_off.value != 0:
        v.reject(errno.EACCES, "variable ctx access prohibited")
    total = off + reg.off
    ok, field, reason = v.prog.context.check_access(total, size, is_write)
    if not ok:
        v.reject(errno.EACCES, reason)
    if is_write:
        return None
    if field is not None and field.special is not None:
        if v.prog.prog_type not in PACKET_ACCESS_TYPES:
            v.reject(
                errno.EACCES,
                f"packet access not allowed for {v.prog.prog_type.value}",
            )
        kind = {
            "pkt_data": RegType.PTR_TO_PACKET,
            "pkt_end": RegType.PTR_TO_PACKET_END,
            "pkt_meta": RegType.PTR_TO_PACKET_META,
        }[field.special]
        result = RegState.pointer(kind)
        result.id = v.env.new_id()
        return result
    return RegState.unknown_scalar()


def _check_map_value_access(v, state, insn, reg, off, size, is_write):
    if reg.map is None:
        v.reject(errno.EACCES, "map pointer without map state")
    lo = off + reg.off + reg.smin
    hi = off + reg.off + reg.smax
    if getattr(reg.map, "has_spin_lock", False):
        # Direct access to the embedded bpf_spin_lock is prohibited.
        lock_lo = reg.map.SPIN_LOCK_OFF
        lock_hi = lock_lo + reg.map.SPIN_LOCK_SIZE
        if lo < lock_hi and hi + size > lock_lo:
            v.reject(
                errno.EACCES,
                "direct access to bpf_spin_lock is not allowed",
            )
    if lo < 0:
        v.reject(
            errno.EACCES,
            f"invalid access to map value, value_size={reg.map.value_size} "
            f"off={lo} size={size}",
        )
    if hi + size > reg.map.value_size:
        v.reject(
            errno.EACCES,
            f"invalid access to map value, value_size={reg.map.value_size} "
            f"off={hi} size={size}",
        )
    return None if is_write else RegState.unknown_scalar()


def _check_packet_access(v, state, insn, reg, off, size, is_write):
    if v.prog.prog_type not in PACKET_ACCESS_TYPES:
        v.reject(
            errno.EACCES,
            f"packet access not allowed for {v.prog.prog_type.value}",
        )
    if is_write and v.prog.prog_type.value == "socket_filter":
        v.reject(errno.EACCES, "cannot write into packet for socket filter")
    lo = off + reg.off + reg.smin
    hi = off + reg.off + u64(reg.umax)
    if lo < 0:
        v.reject(errno.EACCES, f"invalid packet access off={lo}")
    if hi + size > reg.pkt_range:
        v.reject(
            errno.EACCES,
            f"invalid access to packet, off={hi} size={size} R{insn.src if not is_write else insn.dst} "
            f"range={reg.pkt_range}",
        )
    return None if is_write else RegState.unknown_scalar()


def _check_btf_access(v, state, insn, reg, off, size, is_write):
    if is_write:
        v.reject(errno.EACCES, "writes to BTF object pointers are prohibited")
    if not reg.var_off.is_const() or reg.var_off.value != 0:
        v.reject(errno.EACCES, "variable offset BTF object access prohibited")
    if reg.btf is None:
        v.reject(errno.EACCES, "BTF pointer without object state")
    total = off + reg.off
    obj_size = reg.btf.type.size
    # Bug #2: the flawed bounds check tolerates 8 bytes past the end.
    slack = 8 if v.has_flaw(Flaw.TASK_STRUCT_OOB) else 0
    if total < 0 or total + size > obj_size + slack:
        v.reject(
            errno.EACCES,
            f"invalid access to {reg.btf.type.name}, size={obj_size} "
            f"off={total} access_size={size}",
        )
    v.mark_probe_mem(v.cur_insn_idx)
    field = reg.btf.type.field_at(total)
    if (
        field is not None
        and field.points_to is not None
        and size == 8
        and total == field.offset
    ):
        target_type = v.kernel.btf.type_by_name(field.points_to)
        if target_type is not None:
            result = RegState.pointer(RegType.PTR_TO_BTF_ID)
            result.btf = _VirtualBtfObject(target_type)
            return result
    return RegState.unknown_scalar()


class _VirtualBtfObject:
    """A BTF object reached by pointer-chasing (no concrete address).

    The verifier only needs the type for bounds checking; the runtime
    resolves the actual pointer value from memory.
    """

    def __init__(self, btf_type) -> None:
        self.btf_id = -1
        self.type = btf_type
        self.allocation = None
        self.maybe_absent = True

    @property
    def address(self) -> int:
        return 0


def _check_mem_region_access(v, state, insn, reg, off, size, is_write):
    lo = off + reg.off + reg.smin
    hi = off + reg.off + reg.smax
    if lo < 0 or hi + size > reg.mem_size:
        v.reject(
            errno.EACCES,
            f"invalid access to memory, mem_size={reg.mem_size} "
            f"off={hi} size={size}",
        )
    return None if is_write else RegState.unknown_scalar()


def check_mem_access(
    v,
    state,
    insn: Insn,
    ptr_regno: int,
    off: int,
    size: int,
    is_write: bool,
    src_reg: RegState | None = None,
) -> RegState | None:
    """Validate one memory access; returns the loaded state for reads."""
    reg = state.regs[ptr_regno]

    if reg.type == RegType.NOT_INIT:
        v.reject(errno.EACCES, f"R{ptr_regno} !read_ok")
    if reg.type == RegType.SCALAR:
        v.reject(errno.EACCES, f"R{ptr_regno} invalid mem access 'scalar'")
    if reg.is_maybe_null():
        v.reject(
            errno.EACCES,
            f"R{ptr_regno} invalid mem access '{reg.type.value}' "
            f"(possibly NULL)",
        )

    if reg.type == RegType.PTR_TO_STACK:
        return _check_stack_access(v, state, insn, reg, off, size, is_write, src_reg)
    if reg.type == RegType.PTR_TO_CTX:
        return _check_ctx_access(v, state, insn, reg, off, size, is_write)
    if reg.type == RegType.PTR_TO_MAP_VALUE:
        return _check_map_value_access(v, state, insn, reg, off, size, is_write)
    if reg.is_pkt_pointer():
        return _check_packet_access(v, state, insn, reg, off, size, is_write)
    if reg.type == RegType.PTR_TO_BTF_ID:
        return _check_btf_access(v, state, insn, reg, off, size, is_write)
    if reg.type == RegType.PTR_TO_MEM:
        return _check_mem_region_access(v, state, insn, reg, off, size, is_write)

    v.reject(
        errno.EACCES,
        f"R{ptr_regno} invalid mem access '{reg.type.value}'",
    )
    return None  # pragma: no cover - reject raises
