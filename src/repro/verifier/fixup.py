"""The verifier's fixup/rewrite phase.

After ``do_check`` succeeds the kernel rewrites the program before
handing it to the JIT: pseudo map-fd immediates become real map
addresses, BTF-object loads become fault-handled PROBE_MEM accesses,
and pointer-ALU instructions get their ``alu_limit`` rewrites.  BVF's
sanitation runs here too (``bpf_misc_fixup``), so no ad-hoc phase is
required — exactly as the paper's first kernel patch describes.

The output is a :class:`~repro.ebpf.program.VerifiedProgram` whose
``xlated`` stream the interpreter executes directly.
"""

from __future__ import annotations

from repro.ebpf.insn import Insn, ld_imm64_pair
from repro.ebpf.program import VerifiedProgram
from repro.sanitizer.alu_limit import alu_limit_insn
from repro.sanitizer.instrument import SanitizeSite, build_insertions
from repro.verifier.patch import insert_before

__all__ = ["run_fixup"]

_MAX_INLINE_LIMIT = 0x7FFF  # alu_limit must fit the off field


def _resolve_immediates(v, insns: list[Insn]) -> dict[int, int]:
    """Materialise pseudo LD_IMM64 values as kernel addresses.

    Returns ``map_addrs``: slot index -> map kernel address for map
    loads (used by attach-time bookkeeping).
    """
    map_addrs: dict[int, int] = {}
    for idx, (kind, payload) in v.pseudo_refs.items():
        insn = insns[idx]
        if kind == "map":
            addr = v.kernel.map_kobj_addr(payload)
            map_addrs[idx] = addr
        elif kind == "map_value":
            bpf_map, off = payload
            addr = bpf_map._values.start + off
        elif kind == "btf":
            # Absent ksyms resolve to NULL at runtime — the runtime-null
            # PTR_TO_BTF_ID at the heart of Bug #1.
            addr = payload.address
        else:  # pragma: no cover - resolution already rejected others
            continue
        first, second = ld_imm64_pair(insn, addr)
        insns[idx] = first
        insns[idx + 1] = second
    return map_addrs


def run_fixup(v) -> VerifiedProgram:
    """Produce the xlated program (+ sanitation when enabled)."""
    xlated = list(v.insns)
    map_addrs = _resolve_immediates(v, xlated)

    probe_mem = set(v.probe_mem)
    sanitizer_meta: dict[int, SanitizeSite] = {}
    sanitizer_insns: set[int] = set()
    sanitized_sites: set[int] = set()
    alu_limit_meta: dict[int, tuple[int, int]] = {}

    sanitize = v.sanitize and v.config.sanitizer_available
    if sanitize:
        insertions, sites = build_insertions(xlated, probe_mem)

        # Third patch: runtime alu_limit checks for sanitized ptr ALU.
        for idx, (limit, op) in v.alu_limits.items():
            if limit > _MAX_INLINE_LIMIT:
                continue
            operand = xlated[idx].src
            check = alu_limit_insn(operand, limit)
            insertions.setdefault(idx, []).insert(0, check)

        xlated, index_map = insert_before(xlated, insertions)
        orig_index = {new: old for old, new in index_map.items()}

        # Relocate metadata to post-patch indices.
        probe_mem = {index_map[i] for i in probe_mem}
        for orig_idx, site in sites.items():
            new_site_idx = index_map[orig_idx]
            # The dispatch call sits two slots before the original
            # access (call, then restore of R1, then the access).
            call_idx = new_site_idx - 2
            sanitizer_meta[call_idx] = SanitizeSite(
                orig_idx=new_site_idx,
                size=site.size,
                is_write=site.is_write,
                probe_mem=site.probe_mem,
            )
            sanitized_sites.add(new_site_idx)
            block_len = len(insertions[orig_idx])
            sanitizer_insns.update(
                range(new_site_idx - block_len, new_site_idx)
            )
        for orig_idx, (limit, op) in v.alu_limits.items():
            if limit > _MAX_INLINE_LIMIT:
                continue
            alu_limit_meta[index_map[orig_idx]] = (limit, op)
    else:
        alu_limit_meta = dict(v.alu_limits)
        orig_index = {i: i for i in range(len(xlated))}

    verified = VerifiedProgram(
        prog=v.prog,
        xlated=xlated,
        probe_mem=probe_mem,
        alu_limits=alu_limit_meta,
        sanitizer_insns=sanitizer_insns,
        sanitized_sites=sanitized_sites,
        map_addrs=map_addrs,
        helper_ids=set(v.helper_ids),
        stack_depth=v.max_stack_depth,
        uses_lock_helpers=v.uses_lock_helpers,
        sanitized=sanitize,
        stats={
            "insns_processed": v.env.insns_processed,
            "states_pushed": v.env.states_pushed,
            "states_pruned": v.env.states_pruned,
            "peak_states": v.env.peak_stack,
            "xlated_len": len(xlated),
            "orig_len": len(v.insns),
        },
    )
    verified.sanitizer_meta.update(sanitizer_meta)
    verified.orig_index.update(orig_index)
    return verified
