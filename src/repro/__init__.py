"""BVF reproduction: finding correctness bugs in an eBPF verifier.

A from-scratch Python reproduction of *"Finding Correctness Bugs in
eBPF Verifier with Structured and Sanitized Program"* (Sun et al.,
EuroSys 2024), including every substrate the paper's system needs:

- :mod:`repro.ebpf` — the eBPF instruction set, programs, maps,
  helpers, kfuncs, and BTF;
- :mod:`repro.kernel` — a simulated kernel with KASAN-style shadow
  memory, lockdep, tracepoints, and per-version bug profiles;
- :mod:`repro.verifier` — a faithful re-implementation of the eBPF
  verifier (the system under test), with the paper's Table-2 bugs
  injectable;
- :mod:`repro.sanitizer` — BVF's instruction-level memory-access
  sanitation (indicator #1's capture mechanism);
- :mod:`repro.runtime` — the interpreter and execution driver (the JIT
  stand-in);
- :mod:`repro.fuzz` — the BVF fuzzer: structured generation, the
  two-indicator oracle, coverage feedback, and the Syzkaller/Buzzer
  baselines;
- :mod:`repro.testsuite` — the self-test program corpus;
- :mod:`repro.analysis` — bug tables and evaluation statistics.

The five-line tour::

    from repro import Kernel, PROFILES, Campaign, CampaignConfig

    kernel = Kernel(PROFILES["bpf-next"]())       # a flawed kernel
    result = Campaign(CampaignConfig(tool="bvf", budget=2500)).run()
    print(sorted(result.findings))                 # Table 2, rediscovered
"""

from repro.errors import (
    BpfError,
    KernelReport,
    SanitizerReport,
    VerifierReject,
)
from repro.kernel.config import PROFILES, Flaw, KernelConfig
from repro.kernel.syscall import Kernel
from repro.ebpf.program import BpfProgram, ProgType, VerifiedProgram
from repro.runtime.executor import Executor, RunResult
from repro.fuzz.campaign import Campaign, CampaignConfig, CampaignResult

__version__ = "1.0.0"

__all__ = [
    "BpfError",
    "KernelReport",
    "SanitizerReport",
    "VerifierReject",
    "PROFILES",
    "Flaw",
    "KernelConfig",
    "Kernel",
    "BpfProgram",
    "ProgType",
    "VerifiedProgram",
    "Executor",
    "RunResult",
    "Campaign",
    "CampaignConfig",
    "CampaignResult",
    "__version__",
]
