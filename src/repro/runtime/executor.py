"""Test-run driver: attach, trigger, execute, capture reports.

The executor is the glue between the fuzzer and the simulated kernel.
It loads nothing itself — programs arrive already verified — but it
owns everything that happens when a program *runs*:

- building a fresh runtime context (ctx, stack, packet) per trigger,
- installing itself as the tracepoint runner so helper-induced
  tracepoint firings re-enter attached programs (the recursion of
  bugs #4/#5),
- routing XDP executions through the dispatcher (Bug #7),
- refusing (or, flawed, allowing) offloaded programs per Bug #11,
- converting every kernel self-check report into a structured
  :class:`RunResult` the oracle consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BpfError, KernelReport
from repro.ebpf.helpers import HelperContext
from repro.ebpf.program import VerifiedProgram
from repro.runtime.context import build_context, release_context
from repro.runtime.interpreter import ExecStats, Interpreter

__all__ = ["Executor", "RunResult"]


@dataclass
class RunResult:
    """Outcome of one program trigger."""

    r0: int = 0
    #: the kernel self-check report, if the run crashed
    report: KernelReport | None = None
    #: a bpf() surface error raised mid-run (component bugs)
    error: BpfError | None = None
    stats: ExecStats = field(default_factory=ExecStats)

    @property
    def crashed(self) -> bool:
        return self.report is not None


class Executor:
    """Runs verified programs inside one simulated kernel."""

    def __init__(self, kernel) -> None:
        self.kernel = kernel
        kernel.tracepoints.runner = self._tracepoint_runner
        self._context_id = 0
        self._depth = 0
        #: lockdep context of the innermost active execution
        self._trigger_ctx: int | None = None

    # --- public API -------------------------------------------------------

    def run(self, verified: VerifiedProgram, context_id: int | None = None) -> RunResult:
        """``BPF_PROG_TEST_RUN``: one trigger of the program.

        Captures kernel reports rather than propagating them, so a
        fuzzing campaign survives its own crashes (each campaign run
        models a fresh VM boot; see the campaign driver).
        """
        result = RunResult()
        if context_id is None:
            self._context_id += 1
            context_id = self._context_id
        try:
            self.kernel.check_offload_run(verified)
            result.r0, result.stats = self._execute(verified, context_id)
            self.kernel.lockdep.assert_clean(context_id)
        except KernelReport as report:
            result.report = report
        except BpfError as error:
            result.error = error
        finally:
            self.kernel.lockdep.reset_context(context_id)
        return result

    def trigger_tracepoint(self, name: str) -> RunResult:
        """Fire a tracepoint, running everything attached to it."""
        result = RunResult()
        self._context_id += 1
        context_id = self._context_id
        # _execute installs the context; nothing to pre-set here.
        try:
            self.kernel.tracepoints.fire(name)
        except KernelReport as report:
            result.report = report
        except BpfError as error:
            result.error = error
        finally:
            self.kernel.lockdep.reset_context(context_id)
        return result

    def run_xdp_via_dispatcher(self) -> RunResult:
        """Execute whatever the dispatcher currently routes to (Bug #7)."""
        result = RunResult()
        try:
            prog = self.kernel.dispatcher.entry()
        except KernelReport as report:
            result.report = report
            return result
        if prog is None:
            return result
        return self.run(prog)

    # --- internals -----------------------------------------------------------

    def _execute(self, verified: VerifiedProgram, context_id: int) -> tuple[int, ExecStats]:
        rt = build_context(self.kernel.mem, verified)
        helper_ctx = HelperContext(
            kernel=self.kernel,
            prog=verified,
            context_id=context_id,
            in_irq=rt.in_irq,
            in_nmi=rt.in_nmi,
            depth=self._depth,
        )
        interp = Interpreter(self.kernel, verified, rt, helper_ctx)
        self._depth += 1
        # Tracepoints fired by this execution (helpers taking contended
        # locks, trace_printk...) must run attached programs in the
        # *same* lockdep context, or re-entrant acquisition would go
        # undetected.
        prev_ctx = self._trigger_ctx
        self._trigger_ctx = context_id
        try:
            r0 = interp.run()
        finally:
            self._depth -= 1
            self._trigger_ctx = prev_ctx
            release_context(self.kernel.mem, rt)
        return r0, interp.stats

    def _tracepoint_runner(self, prog: VerifiedProgram, tracepoint: str) -> None:
        """Run an attached program when its tracepoint fires.

        Nested triggers share the outer context id so lockdep sees the
        whole acquisition chain — this is how the Figure-2 deadlock
        becomes a recursive-locking report.
        """
        context_id = (
            self._trigger_ctx if self._trigger_ctx is not None
            else self._context_id
        )
        self._execute(prog, context_id)
