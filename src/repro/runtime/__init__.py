"""Execution environment — the JIT stand-in.

The kernel JIT-compiles verified programs to native code; we execute
the xlated instruction stream with a faithful interpreter instead.
The distinction that matters to the paper is preserved exactly:

- program instructions access memory through the **raw** (unchecked)
  path, like uninstrumented native code — small out-of-bounds accesses
  silently corrupt the arena;
- sanitizer dispatch calls and helper/kfunc implementations go through
  the **checked** (KASAN) path and trap.

:class:`~repro.runtime.executor.Executor` drives whole test runs:
context construction, attachment triggers, tracepoint re-entry, and
crash-report capture for the oracle.
"""

from repro.runtime.executor import Executor, RunResult
from repro.runtime.interpreter import Interpreter

__all__ = ["Executor", "RunResult", "Interpreter"]
