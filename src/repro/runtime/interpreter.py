"""The eBPF interpreter — our stand-in for the kernel JIT.

Executes the verifier's xlated instruction stream with precise eBPF
semantics (64-bit wrapping arithmetic, zero-extending 32-bit ops,
division-by-zero conventions, atomic read-modify-writes).

Memory model (the crux of the paper's oracle):

- ordinary program loads/stores use the **raw** path —
  uninstrumented, like JIT'd native code; only wild addresses fault;
- loads the verifier rewrote to **PROBE_MEM** are fault-handled and
  yield zero on bad addresses, like BTF-object loads in the kernel;
- ``bpf_asan_*`` calls inserted by the sanitizer consult shadow memory
  *before* the access and raise :class:`SanitizerReport` — that is
  indicator #1 being captured;
- helper and kfunc implementations run as KASAN-instrumented kernel
  code (checked path), backing indicator #2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.errors import KernelPanic
from repro.ebpf.helpers import HelperContext
from repro.ebpf.insn import Insn
from repro.ebpf.kfuncs import KFUNCS
from repro.ebpf.opcodes import (
    AluOp,
    AtomicOp,
    InsnClass,
    JmpOp,
    Mode,
    Reg,
    Size,
    Src,
    SIZE_BYTES,
)
from repro.ebpf.program import VerifiedProgram
from repro.runtime.context import RuntimeContext
from repro.sanitizer.alu_limit import check_alu_limit
from repro.sanitizer.asan_funcs import (
    ASAN_ALU_LIMIT,
    asan_call_size,
    asan_check,
    is_asan_call,
)

__all__ = ["Interpreter", "ExecStats", "exec_metadata"]

_U64 = (1 << 64) - 1
_U32 = (1 << 32) - 1

# --- precomputed dispatch metadata ------------------------------------------
#
# The fetch-decode loop used to re-derive every classification from the
# opcode byte on every *executed* instruction (enum constructions via
# Insn properties, is_asan_call table probes, pseudo-call checks).
# Campaigns execute the same xlated stream thousands of times, so all
# of it is precomputed once per program into a flat list of
# (kind, a, b) int triples, cached on the VerifiedProgram.
#
# Dispatch kinds (module constants, compared as plain ints):
_K_ALU64 = 0
_K_ALU32 = 1
_K_LDX = 2
_K_STORE = 3  # ST/STX, a=1 when the value comes from imm (ST)
_K_ATOMIC = 4
_K_LD_IMM64 = 5
_K_FILLER = 6
_K_JA = 7  # a = off + 1 (precomputed jump delta)
_K_EXIT = 8
_K_COND_JMP = 9  # a = jmp op, b = (is64 << 1) | src_is_reg
_K_CALL_ASAN = 10
_K_CALL_PSEUDO = 11
_K_CALL_TAILCALL = 12
_K_CALL_KFUNC = 13
_K_CALL_HELPER = 14


def _build_exec_meta(insns) -> list[tuple[int, int, int]]:
    from repro.ebpf.helpers import HelperId
    from repro.ebpf.opcodes import PseudoCall

    meta: list[tuple[int, int, int]] = []
    for insn in insns:
        opcode = insn.opcode
        cls = opcode & 0x07
        if cls == InsnClass.ALU64 or cls == InsnClass.ALU:
            kind = _K_ALU64 if cls == InsnClass.ALU64 else _K_ALU32
            meta.append((kind, opcode & 0xF0, int(opcode & 0x08 == Src.X)))
        elif cls == InsnClass.LDX:
            meta.append(
                (_K_LDX, SIZE_BYTES[Size(opcode & 0x18)],
                 int(opcode & 0xE0 == Mode.MEMSX))
            )
        elif cls == InsnClass.ST or cls == InsnClass.STX:
            size = SIZE_BYTES[Size(opcode & 0x18)]
            if opcode & 0xE0 == Mode.ATOMIC:
                meta.append((_K_ATOMIC, size, 0))
            else:
                meta.append((_K_STORE, size, int(cls == InsnClass.ST)))
        elif cls == InsnClass.LD:
            if insn.is_filler():
                meta.append((_K_FILLER, 0, 0))
            else:
                meta.append((_K_LD_IMM64, 0, 0))
        else:  # JMP / JMP32
            op = opcode & 0xF0
            if op == JmpOp.JA:
                meta.append((_K_JA, insn.off + 1, 0))
            elif op == JmpOp.EXIT:
                meta.append((_K_EXIT, 0, 0))
            elif op == JmpOp.CALL:
                func_id = insn.imm & _U64
                is_jmp64 = cls == InsnClass.JMP
                if is_asan_call(func_id):
                    meta.append((_K_CALL_ASAN, 0, 0))
                elif is_jmp64 and insn.src == PseudoCall.CALL:
                    meta.append((_K_CALL_PSEUDO, insn.imm, 0))
                elif (
                    is_jmp64
                    and insn.src == PseudoCall.HELPER
                    and func_id == HelperId.TAIL_CALL
                ):
                    meta.append((_K_CALL_TAILCALL, 0, 0))
                elif is_jmp64 and insn.src == PseudoCall.KFUNC:
                    meta.append((_K_CALL_KFUNC, 0, 0))
                else:
                    meta.append((_K_CALL_HELPER, 0, 0))
            else:
                meta.append(
                    (_K_COND_JMP, op,
                     (int(cls == InsnClass.JMP) << 1)
                     | int(opcode & 0x08 == Src.X))
                )
    return meta


def exec_metadata(verified: VerifiedProgram) -> list[tuple[int, int, int]]:
    """The cached dispatch metadata for a verified program's xlated stream."""
    meta = getattr(verified, "_exec_meta", None)
    if meta is None or len(meta) != len(verified.xlated):
        meta = _build_exec_meta(verified.xlated)
        verified._exec_meta = meta
    return meta

#: Hard per-run instruction budget; verified programs terminate (any
#: executed path is bounded by the verifier's processing budget), but a
#: verifier bug could admit a runaway loop — the watchdog converts that
#: into a (reportable) soft lockup.
MAX_RUNTIME_INSNS = 262_144

#: Value written into caller-saved registers after helper calls, so
#: programs that (incorrectly) consume clobbered registers misbehave
#: detectably rather than silently.
_CLOBBER = 0xDEAD_BEEF_0000_0000


def _s64(value: int) -> int:
    value &= _U64
    return value - (1 << 64) if value >= (1 << 63) else value


def _s32(value: int) -> int:
    value &= _U32
    return value - (1 << 32) if value >= (1 << 31) else value


def _bswap(value: int, bits: int) -> int:
    nbytes = bits // 8
    return int.from_bytes(
        (value & ((1 << bits) - 1)).to_bytes(nbytes, "little"), "big"
    )


@dataclass
class ExecStats:
    """Counters for the overhead experiment (Section 6.4)."""

    insns_executed: int = 0
    loads: int = 0
    stores: int = 0
    helper_calls: int = 0
    sanitizer_checks: int = 0


@dataclass
class _Frame:
    return_idx: int
    saved_regs: list[int]
    saved_fp: int
    stack_alloc: object


class Interpreter:
    """Executes one verified program against a runtime context."""

    def __init__(
        self,
        kernel,
        verified: VerifiedProgram,
        rt: RuntimeContext,
        helper_ctx: HelperContext,
    ) -> None:
        self.kernel = kernel
        self.mem = kernel.mem
        self.verified = verified
        self.insns = verified.xlated
        self.rt = rt
        self.helper_ctx = helper_ctx
        self.stats = ExecStats()
        self._tail_calls = 0
        self._swapped = False

    # --- entry point ---------------------------------------------------------

    def run(self) -> int:
        """Execute to completion; returns R0.

        Observability is per-run only — one span and a handful of
        counter updates around :meth:`_run_loop` — never per
        instruction, which keeps the disabled overhead within the
        trace layer's budget (DESIGN.md "Observability").
        """
        rec = obs.recorder()
        try:
            if rec.enabled:
                with rec.span("interp.run", prog=self.verified.name):
                    return self._run_loop()
            return self._run_loop()
        finally:
            m = obs.metrics()
            m.counter("interp.runs")
            m.counter("interp.insns_executed", self.stats.insns_executed)
            m.counter("interp.helper_calls", self.stats.helper_calls)
            m.counter("interp.sanitizer_checks", self.stats.sanitizer_checks)

    def _run_loop(self) -> int:
        regs = [0] * 12
        regs[Reg.R1] = self.rt.ctx_addr
        regs[Reg.R10] = self.rt.fp
        frames: list[_Frame] = []
        idx = 0
        insns = self.insns
        meta = exec_metadata(self.verified)
        stats = self.stats

        while True:
            stats.insns_executed += 1
            if stats.insns_executed > MAX_RUNTIME_INSNS:
                raise KernelPanic(
                    "watchdog: BPF soft lockup - program exceeded runtime "
                    "instruction budget",
                    context={"prog": self.verified.name},
                )
            insn = insns[idx]
            kind, a, b = meta[idx]

            if kind == _K_ALU64 or kind == _K_ALU32:
                self._alu(regs, insn, kind == _K_ALU64, a, b)
                idx += 1
            elif kind == _K_LDX:
                self._load(regs, insn, idx, a, b)
                idx += 1
            elif kind == _K_STORE:
                self._store(regs, insn, a, b)
                idx += 1
            elif kind == _K_COND_JMP:
                idx += self._cond_jmp(regs, insn, a, b)
            elif kind == _K_ATOMIC:
                self._atomic(regs, insn, a)
                idx += 1
            elif kind == _K_FILLER:
                idx += 1
            elif kind == _K_LD_IMM64:
                regs[insn.dst] = insn.imm64 & _U64
                idx += 2
            elif kind == _K_JA:
                idx += a
            elif kind == _K_EXIT:
                if frames:
                    frame = frames.pop()
                    for i, regno in enumerate((Reg.R6, Reg.R7, Reg.R8, Reg.R9)):
                        regs[regno] = frame.saved_regs[i]
                    regs[Reg.R10] = frame.saved_fp
                    self.mem.kfree(frame.stack_alloc)
                    idx = frame.return_idx
                else:
                    return regs[Reg.R0]
            elif kind == _K_CALL_PSEUDO:
                stack = self.mem.kzalloc(512, tag="bpf_stack")
                frames.append(
                    _Frame(
                        return_idx=idx + 1,
                        saved_regs=[
                            regs[Reg.R6],
                            regs[Reg.R7],
                            regs[Reg.R8],
                            regs[Reg.R9],
                        ],
                        saved_fp=regs[Reg.R10],
                        stack_alloc=stack,
                    )
                )
                regs[Reg.R10] = stack.start + 512
                idx = idx + a + 1
            else:  # asan / tail-call / kfunc / helper calls
                self._call(regs, insn, idx, kind)
                if self._swapped:
                    # Successful bpf_tail_call: restart in the target
                    # program with the same ctx/stack.
                    self._swapped = False
                    insns = self.insns
                    meta = exec_metadata(self.verified)
                    idx = 0
                else:
                    idx += 1

    # --- ALU -------------------------------------------------------------------

    def _alu(
        self, regs: list[int], insn: Insn, is64: bool, op: int, src_is_reg: int
    ) -> None:
        dst = regs[insn.dst]
        if op == AluOp.NEG:
            result = -dst
        elif op == AluOp.END:
            if src_is_reg:  # to big-endian: byteswap
                result = _bswap(dst, insn.imm)
            else:  # to little-endian on an LE host: truncate
                result = dst & ((1 << insn.imm) - 1)
            regs[insn.dst] = result & _U64
            return
        else:
            if src_is_reg:
                src = regs[insn.src]
            else:
                src = insn.imm & _U64 if is64 else insn.imm & _U32
            if not is64:
                dst &= _U32
                src &= _U32
            if op == AluOp.ADD:
                result = dst + src
            elif op == AluOp.SUB:
                result = dst - src
            elif op == AluOp.MUL:
                result = dst * src
            elif op == AluOp.DIV:
                result = dst // src if src else 0
            elif op == AluOp.MOD:
                result = dst % src if src else dst
            elif op == AluOp.OR:
                result = dst | src
            elif op == AluOp.AND:
                result = dst & src
            elif op == AluOp.XOR:
                result = dst ^ src
            elif op == AluOp.LSH:
                result = dst << (src & (63 if is64 else 31))
            elif op == AluOp.RSH:
                result = dst >> (src & (63 if is64 else 31))
            elif op == AluOp.ARSH:
                shift = src & (63 if is64 else 31)
                signed = _s64(dst) if is64 else _s32(dst)
                result = signed >> shift
            elif op == AluOp.MOV:
                result = src
            else:
                raise KernelPanic(f"interpreter: bad ALU op {op}")
        regs[insn.dst] = result & (_U64 if is64 else _U32)

    # --- memory -------------------------------------------------------------------

    def _load(
        self, regs: list[int], insn: Insn, idx: int, size: int, memsx: int
    ) -> None:
        self.stats.loads += 1
        addr = (regs[insn.src] + insn.off) & _U64

        # Rewritten ctx fields (packet pointers).
        special = self.rt.special_fields.get(addr)
        if special is not None and size == 4:
            regs[insn.dst] = special
            return

        if idx in self.verified.probe_mem:
            # Fault-handled PROBE_MEM: bad addresses read as zero.
            if addr < 4096 or not self.mem.in_arena(addr, size):
                regs[insn.dst] = 0
                return
            value = self.mem.raw_read(addr, size)
        else:
            value = self.mem.raw_read(addr, size)

        if memsx:
            bits = size * 8
            if value >= 1 << (bits - 1):
                value -= 1 << bits
        regs[insn.dst] = value & _U64

    def _store(
        self, regs: list[int], insn: Insn, size: int, from_imm: int
    ) -> None:
        self.stats.stores += 1
        addr = (regs[insn.dst] + insn.off) & _U64
        if from_imm:
            value = insn.imm & _U64
        else:
            value = regs[insn.src]
        self.mem.raw_write(addr, size, value)

    def _atomic(self, regs: list[int], insn: Insn, size: int) -> None:
        self.stats.loads += 1
        self.stats.stores += 1
        addr = (regs[insn.dst] + insn.off) & _U64
        mask = (1 << (size * 8)) - 1
        old = self.mem.raw_read(addr, size)
        operand = regs[insn.src] & mask
        op = insn.imm

        if op == int(AtomicOp.CMPXCHG):
            if old == (regs[Reg.R0] & mask):
                self.mem.raw_write(addr, size, operand)
            regs[Reg.R0] = old
            return
        if op == int(AtomicOp.XCHG):
            self.mem.raw_write(addr, size, operand)
            regs[insn.src] = old
            return

        base_op = op & ~int(AtomicOp.FETCH)
        if base_op == int(AtomicOp.ADD):
            new = (old + operand) & mask
        elif base_op == int(AtomicOp.OR):
            new = old | operand
        elif base_op == int(AtomicOp.AND):
            new = old & operand
        elif base_op == int(AtomicOp.XOR):
            new = old ^ operand
        else:
            raise KernelPanic(f"interpreter: bad atomic op {op:#x}")
        self.mem.raw_write(addr, size, new)
        if op & int(AtomicOp.FETCH):
            regs[insn.src] = old

    # --- calls ----------------------------------------------------------------------

    #: bpf_tail_call nesting limit (kernel: MAX_TAIL_CALL_CNT).
    MAX_TAIL_CALLS = 33

    def _call(self, regs: list[int], insn: Insn, idx: int, kind: int) -> None:
        if kind == _K_CALL_ASAN:
            self._asan_call(regs, insn, idx, insn.imm & _U64)
            return

        if kind == _K_CALL_TAILCALL:
            if self._tail_call(regs):
                self._swapped = True
                return
            # Failed tail call: falls through like a normal call.
            regs[Reg.R0] = (-2) & _U64  # -ENOENT
            for i, regno in enumerate((Reg.R1, Reg.R2, Reg.R3, Reg.R4, Reg.R5)):
                regs[regno] = (_CLOBBER + i) & _U64
            return

        if kind == _K_CALL_KFUNC:
            proto = KFUNCS.get(insn.imm)
            if proto is None:
                raise KernelPanic(f"interpreter: unknown kfunc {insn.imm}")
            args = [regs[r] for r in (Reg.R1, Reg.R2, Reg.R3, Reg.R4, Reg.R5)]
            args = args[: len(proto.args)]
            result = proto.impl(self.helper_ctx, *args)
        else:
            proto = self.kernel.helpers.get(insn.imm)
            if proto is None:
                raise KernelPanic(f"interpreter: unknown helper {insn.imm}")
            self.stats.helper_calls += 1
            args = [regs[r] for r in (Reg.R1, Reg.R2, Reg.R3, Reg.R4, Reg.R5)]
            args = args[: len(proto.args)]
            result = proto.impl(self.helper_ctx, *args)

        regs[Reg.R0] = (result if result is not None else 0) & _U64
        for i, regno in enumerate((Reg.R1, Reg.R2, Reg.R3, Reg.R4, Reg.R5)):
            regs[regno] = (_CLOBBER + i) & _U64

    def _tail_call(self, regs: list[int]) -> bool:
        """Resolve and perform a ``bpf_tail_call``; False on failure.

        The kernel semantics: look up the program at R3's index in R2's
        prog array; on success, jump into it reusing the current stack
        frame and context, counting against MAX_TAIL_CALL_CNT.
        """
        if self._tail_calls >= self.MAX_TAIL_CALLS:
            return False
        try:
            bpf_map = self.kernel.map_by_addr(regs[Reg.R2])
        except Exception:
            return False
        index = regs[Reg.R3] & _U32
        prog_fd = getattr(bpf_map, "prog_fd_at", lambda i: None)(index)
        if prog_fd is None:
            return False
        target = self.kernel.prog_by_fd(prog_fd)
        if target is None or target.prog_type != self.verified.prog_type:
            return False
        self._tail_calls += 1
        self.verified = target
        self.insns = target.xlated
        ctx_addr = self.rt.ctx_addr
        fp = regs[Reg.R10]
        for regno in range(12):
            regs[regno] = 0
        regs[Reg.R1] = ctx_addr
        regs[Reg.R10] = fp
        return True

    def _asan_call(self, regs: list[int], insn: Insn, idx: int, func_id: int) -> None:
        """Dispatched sanitation: registers are fully preserved."""
        self.stats.sanitizer_checks += 1
        if func_id == ASAN_ALU_LIMIT:
            check_alu_limit(regs[insn.dst], insn.off & 0xFFFF, site=idx)
            return
        size, is_write = asan_call_size(func_id)
        site = self.verified.sanitizer_meta.get(idx)
        probe = site.probe_mem if site is not None else False
        asan_check(
            self.mem,
            regs[Reg.R1],
            size,
            is_write,
            probe_mem=probe,
            site=site.orig_idx if site is not None else idx,
        )

    # --- conditional jumps ------------------------------------------------------------

    def _cond_jmp(self, regs: list[int], insn: Insn, op: int, ab: int) -> int:
        is64 = ab & 2
        dst = regs[insn.dst]
        if ab & 1:
            src = regs[insn.src]
        else:
            src = insn.imm & _U64 if is64 else insn.imm & _U32
        if not is64:
            dst &= _U32
            src &= _U32
            sdst, ssrc = _s32(dst), _s32(src)
        else:
            sdst, ssrc = _s64(dst), _s64(src)

        if op == JmpOp.JEQ:
            taken = dst == src
        elif op == JmpOp.JNE:
            taken = dst != src
        elif op == JmpOp.JGT:
            taken = dst > src
        elif op == JmpOp.JGE:
            taken = dst >= src
        elif op == JmpOp.JLT:
            taken = dst < src
        elif op == JmpOp.JLE:
            taken = dst <= src
        elif op == JmpOp.JSGT:
            taken = sdst > ssrc
        elif op == JmpOp.JSGE:
            taken = sdst >= ssrc
        elif op == JmpOp.JSLT:
            taken = sdst < ssrc
        elif op == JmpOp.JSLE:
            taken = sdst <= ssrc
        elif op == JmpOp.JSET:
            taken = bool(dst & src)
        else:
            raise KernelPanic(f"interpreter: bad JMP op {op}")
        return insn.off + 1 if taken else 1
