"""The eBPF interpreter — our stand-in for the kernel JIT.

Executes the verifier's xlated instruction stream with precise eBPF
semantics (64-bit wrapping arithmetic, zero-extending 32-bit ops,
division-by-zero conventions, atomic read-modify-writes).

Memory model (the crux of the paper's oracle):

- ordinary program loads/stores use the **raw** path —
  uninstrumented, like JIT'd native code; only wild addresses fault;
- loads the verifier rewrote to **PROBE_MEM** are fault-handled and
  yield zero on bad addresses, like BTF-object loads in the kernel;
- ``bpf_asan_*`` calls inserted by the sanitizer consult shadow memory
  *before* the access and raise :class:`SanitizerReport` — that is
  indicator #1 being captured;
- helper and kfunc implementations run as KASAN-instrumented kernel
  code (checked path), backing indicator #2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import KernelPanic
from repro.ebpf.helpers import HelperContext
from repro.ebpf.insn import Insn
from repro.ebpf.kfuncs import KFUNCS
from repro.ebpf.opcodes import (
    AluOp,
    AtomicOp,
    InsnClass,
    JmpOp,
    Mode,
    Reg,
    Size,
    Src,
    SIZE_BYTES,
)
from repro.ebpf.program import VerifiedProgram
from repro.runtime.context import RuntimeContext
from repro.sanitizer.alu_limit import check_alu_limit
from repro.sanitizer.asan_funcs import (
    ASAN_ALU_LIMIT,
    asan_call_size,
    asan_check,
    is_asan_call,
)

__all__ = ["Interpreter", "ExecStats"]

_U64 = (1 << 64) - 1
_U32 = (1 << 32) - 1

#: Hard per-run instruction budget; verified programs terminate (any
#: executed path is bounded by the verifier's processing budget), but a
#: verifier bug could admit a runaway loop — the watchdog converts that
#: into a (reportable) soft lockup.
MAX_RUNTIME_INSNS = 262_144

#: Value written into caller-saved registers after helper calls, so
#: programs that (incorrectly) consume clobbered registers misbehave
#: detectably rather than silently.
_CLOBBER = 0xDEAD_BEEF_0000_0000


def _s64(value: int) -> int:
    value &= _U64
    return value - (1 << 64) if value >= (1 << 63) else value


def _s32(value: int) -> int:
    value &= _U32
    return value - (1 << 32) if value >= (1 << 31) else value


def _bswap(value: int, bits: int) -> int:
    nbytes = bits // 8
    return int.from_bytes(
        (value & ((1 << bits) - 1)).to_bytes(nbytes, "little"), "big"
    )


@dataclass
class ExecStats:
    """Counters for the overhead experiment (Section 6.4)."""

    insns_executed: int = 0
    loads: int = 0
    stores: int = 0
    helper_calls: int = 0
    sanitizer_checks: int = 0


@dataclass
class _Frame:
    return_idx: int
    saved_regs: list[int]
    saved_fp: int
    stack_alloc: object


class Interpreter:
    """Executes one verified program against a runtime context."""

    def __init__(
        self,
        kernel,
        verified: VerifiedProgram,
        rt: RuntimeContext,
        helper_ctx: HelperContext,
    ) -> None:
        self.kernel = kernel
        self.mem = kernel.mem
        self.verified = verified
        self.insns = verified.xlated
        self.rt = rt
        self.helper_ctx = helper_ctx
        self.stats = ExecStats()
        self._tail_calls = 0
        self._swapped = False

    # --- entry point ---------------------------------------------------------

    def run(self) -> int:
        """Execute to completion; returns R0."""
        regs = [0] * 12
        regs[Reg.R1] = self.rt.ctx_addr
        regs[Reg.R10] = self.rt.fp
        frames: list[_Frame] = []
        idx = 0
        insns = self.insns
        stats = self.stats

        while True:
            stats.insns_executed += 1
            if stats.insns_executed > MAX_RUNTIME_INSNS:
                raise KernelPanic(
                    "watchdog: BPF soft lockup - program exceeded runtime "
                    "instruction budget",
                    context={"prog": self.verified.name},
                )
            insn = insns[idx]
            cls = insn.insn_class

            if cls == InsnClass.ALU64 or cls == InsnClass.ALU:
                self._alu(regs, insn, cls == InsnClass.ALU64)
                idx += 1
            elif cls == InsnClass.LDX:
                self._load(regs, insn, idx)
                idx += 1
            elif cls == InsnClass.ST or cls == InsnClass.STX:
                if insn.mode == Mode.ATOMIC:
                    self._atomic(regs, insn)
                else:
                    self._store(regs, insn)
                idx += 1
            elif cls == InsnClass.LD:
                if insn.is_filler():
                    idx += 1
                    continue
                regs[insn.dst] = insn.imm64 & _U64
                idx += 2
            else:  # JMP / JMP32
                op = insn.jmp_op
                if op == JmpOp.JA:
                    idx += insn.off + 1
                elif op == JmpOp.EXIT:
                    if frames:
                        frame = frames.pop()
                        for i, regno in enumerate((Reg.R6, Reg.R7, Reg.R8, Reg.R9)):
                            regs[regno] = frame.saved_regs[i]
                        regs[Reg.R10] = frame.saved_fp
                        self.mem.kfree(frame.stack_alloc)
                        idx = frame.return_idx
                    else:
                        return regs[Reg.R0]
                elif op == JmpOp.CALL:
                    if insn.is_pseudo_call():
                        stack = self.mem.kzalloc(512, tag="bpf_stack")
                        frames.append(
                            _Frame(
                                return_idx=idx + 1,
                                saved_regs=[
                                    regs[Reg.R6],
                                    regs[Reg.R7],
                                    regs[Reg.R8],
                                    regs[Reg.R9],
                                ],
                                saved_fp=regs[Reg.R10],
                                stack_alloc=stack,
                            )
                        )
                        regs[Reg.R10] = stack.start + 512
                        idx = idx + insn.imm + 1
                    else:
                        self._call(regs, insn, idx)
                        if self._swapped:
                            # Successful bpf_tail_call: restart in the
                            # target program with the same ctx/stack.
                            self._swapped = False
                            insns = self.insns
                            idx = 0
                        else:
                            idx += 1
                else:
                    idx += self._cond_jmp(regs, insn)

    # --- ALU -------------------------------------------------------------------

    def _alu(self, regs: list[int], insn: Insn, is64: bool) -> None:
        op = insn.alu_op
        dst = regs[insn.dst]
        if op == AluOp.NEG:
            result = -dst
        elif op == AluOp.END:
            if insn.src_bit == Src.X:  # to big-endian: byteswap
                result = _bswap(dst, insn.imm)
            else:  # to little-endian on an LE host: truncate
                result = dst & ((1 << insn.imm) - 1)
            regs[insn.dst] = result & _U64
            return
        else:
            if insn.src_bit == Src.X:
                src = regs[insn.src]
            else:
                src = insn.imm & _U64 if is64 else insn.imm & _U32
            if not is64:
                dst &= _U32
                src &= _U32
            if op == AluOp.ADD:
                result = dst + src
            elif op == AluOp.SUB:
                result = dst - src
            elif op == AluOp.MUL:
                result = dst * src
            elif op == AluOp.DIV:
                result = dst // src if src else 0
            elif op == AluOp.MOD:
                result = dst % src if src else dst
            elif op == AluOp.OR:
                result = dst | src
            elif op == AluOp.AND:
                result = dst & src
            elif op == AluOp.XOR:
                result = dst ^ src
            elif op == AluOp.LSH:
                result = dst << (src & (63 if is64 else 31))
            elif op == AluOp.RSH:
                result = dst >> (src & (63 if is64 else 31))
            elif op == AluOp.ARSH:
                shift = src & (63 if is64 else 31)
                signed = _s64(dst) if is64 else _s32(dst)
                result = signed >> shift
            elif op == AluOp.MOV:
                result = src
            else:
                raise KernelPanic(f"interpreter: bad ALU op {op}")
        regs[insn.dst] = result & (_U64 if is64 else _U32)

    # --- memory -------------------------------------------------------------------

    def _load(self, regs: list[int], insn: Insn, idx: int) -> None:
        self.stats.loads += 1
        addr = (regs[insn.src] + insn.off) & _U64
        size = SIZE_BYTES[insn.size]

        # Rewritten ctx fields (packet pointers).
        special = self.rt.special_fields.get(addr)
        if special is not None and size == 4:
            regs[insn.dst] = special
            return

        if idx in self.verified.probe_mem:
            # Fault-handled PROBE_MEM: bad addresses read as zero.
            if addr < 4096 or not self.mem.in_arena(addr, size):
                regs[insn.dst] = 0
                return
            value = self.mem.raw_read(addr, size)
        else:
            value = self.mem.raw_read(addr, size)

        if insn.mode == Mode.MEMSX:
            bits = size * 8
            if value >= 1 << (bits - 1):
                value -= 1 << bits
        regs[insn.dst] = value & _U64

    def _store(self, regs: list[int], insn: Insn) -> None:
        self.stats.stores += 1
        addr = (regs[insn.dst] + insn.off) & _U64
        size = SIZE_BYTES[insn.size]
        if insn.insn_class == InsnClass.ST:
            value = insn.imm & _U64
        else:
            value = regs[insn.src]
        self.mem.raw_write(addr, size, value)

    def _atomic(self, regs: list[int], insn: Insn) -> None:
        self.stats.loads += 1
        self.stats.stores += 1
        addr = (regs[insn.dst] + insn.off) & _U64
        size = SIZE_BYTES[insn.size]
        mask = (1 << (size * 8)) - 1
        old = self.mem.raw_read(addr, size)
        operand = regs[insn.src] & mask
        op = insn.imm

        if op == int(AtomicOp.CMPXCHG):
            if old == (regs[Reg.R0] & mask):
                self.mem.raw_write(addr, size, operand)
            regs[Reg.R0] = old
            return
        if op == int(AtomicOp.XCHG):
            self.mem.raw_write(addr, size, operand)
            regs[insn.src] = old
            return

        base_op = op & ~int(AtomicOp.FETCH)
        if base_op == int(AtomicOp.ADD):
            new = (old + operand) & mask
        elif base_op == int(AtomicOp.OR):
            new = old | operand
        elif base_op == int(AtomicOp.AND):
            new = old & operand
        elif base_op == int(AtomicOp.XOR):
            new = old ^ operand
        else:
            raise KernelPanic(f"interpreter: bad atomic op {op:#x}")
        self.mem.raw_write(addr, size, new)
        if op & int(AtomicOp.FETCH):
            regs[insn.src] = old

    # --- calls ----------------------------------------------------------------------

    #: bpf_tail_call nesting limit (kernel: MAX_TAIL_CALL_CNT).
    MAX_TAIL_CALLS = 33

    def _call(self, regs: list[int], insn: Insn, idx: int) -> None:
        func_id = insn.imm & _U64

        if is_asan_call(func_id):
            self._asan_call(regs, insn, idx, func_id)
            return

        from repro.ebpf.helpers import HelperId

        if insn.is_helper_call() and func_id == HelperId.TAIL_CALL:
            if self._tail_call(regs):
                self._swapped = True
                return
            # Failed tail call: falls through like a normal call.
            regs[Reg.R0] = (-2) & _U64  # -ENOENT
            for i, regno in enumerate((Reg.R1, Reg.R2, Reg.R3, Reg.R4, Reg.R5)):
                regs[regno] = (_CLOBBER + i) & _U64
            return

        if insn.is_kfunc_call():
            proto = KFUNCS.get(insn.imm)
            if proto is None:
                raise KernelPanic(f"interpreter: unknown kfunc {insn.imm}")
            args = [regs[r] for r in (Reg.R1, Reg.R2, Reg.R3, Reg.R4, Reg.R5)]
            args = args[: len(proto.args)]
            result = proto.impl(self.helper_ctx, *args)
        else:
            proto = self.kernel.helpers.get(insn.imm)
            if proto is None:
                raise KernelPanic(f"interpreter: unknown helper {insn.imm}")
            self.stats.helper_calls += 1
            args = [regs[r] for r in (Reg.R1, Reg.R2, Reg.R3, Reg.R4, Reg.R5)]
            args = args[: len(proto.args)]
            result = proto.impl(self.helper_ctx, *args)

        regs[Reg.R0] = (result if result is not None else 0) & _U64
        for i, regno in enumerate((Reg.R1, Reg.R2, Reg.R3, Reg.R4, Reg.R5)):
            regs[regno] = (_CLOBBER + i) & _U64

    def _tail_call(self, regs: list[int]) -> bool:
        """Resolve and perform a ``bpf_tail_call``; False on failure.

        The kernel semantics: look up the program at R3's index in R2's
        prog array; on success, jump into it reusing the current stack
        frame and context, counting against MAX_TAIL_CALL_CNT.
        """
        if self._tail_calls >= self.MAX_TAIL_CALLS:
            return False
        try:
            bpf_map = self.kernel.map_by_addr(regs[Reg.R2])
        except Exception:
            return False
        index = regs[Reg.R3] & _U32
        prog_fd = getattr(bpf_map, "prog_fd_at", lambda i: None)(index)
        if prog_fd is None:
            return False
        target = self.kernel.prog_by_fd(prog_fd)
        if target is None or target.prog_type != self.verified.prog_type:
            return False
        self._tail_calls += 1
        self.verified = target
        self.insns = target.xlated
        ctx_addr = self.rt.ctx_addr
        fp = regs[Reg.R10]
        for regno in range(12):
            regs[regno] = 0
        regs[Reg.R1] = ctx_addr
        regs[Reg.R10] = fp
        return True

    def _asan_call(self, regs: list[int], insn: Insn, idx: int, func_id: int) -> None:
        """Dispatched sanitation: registers are fully preserved."""
        self.stats.sanitizer_checks += 1
        if func_id == ASAN_ALU_LIMIT:
            check_alu_limit(regs[insn.dst], insn.off & 0xFFFF, site=idx)
            return
        size, is_write = asan_call_size(func_id)
        site = self.verified.sanitizer_meta.get(idx)
        probe = site.probe_mem if site is not None else False
        asan_check(
            self.mem,
            regs[Reg.R1],
            size,
            is_write,
            probe_mem=probe,
            site=site.orig_idx if site is not None else idx,
        )

    # --- conditional jumps ------------------------------------------------------------

    def _cond_jmp(self, regs: list[int], insn: Insn) -> int:
        is64 = insn.insn_class == InsnClass.JMP
        dst = regs[insn.dst]
        if insn.src_bit == Src.X:
            src = regs[insn.src]
        else:
            src = insn.imm & _U64 if is64 else insn.imm & _U32
        if not is64:
            dst &= _U32
            src &= _U32
            sdst, ssrc = _s32(dst), _s32(src)
        else:
            sdst, ssrc = _s64(dst), _s64(src)

        op = insn.jmp_op
        if op == JmpOp.JEQ:
            taken = dst == src
        elif op == JmpOp.JNE:
            taken = dst != src
        elif op == JmpOp.JGT:
            taken = dst > src
        elif op == JmpOp.JGE:
            taken = dst >= src
        elif op == JmpOp.JLT:
            taken = dst < src
        elif op == JmpOp.JLE:
            taken = dst <= src
        elif op == JmpOp.JSGT:
            taken = sdst > ssrc
        elif op == JmpOp.JSGE:
            taken = sdst >= ssrc
        elif op == JmpOp.JSLT:
            taken = sdst < ssrc
        elif op == JmpOp.JSLE:
            taken = sdst <= ssrc
        elif op == JmpOp.JSET:
            taken = bool(dst & src)
        else:
            raise KernelPanic(f"interpreter: bad JMP op {op}")
        return insn.off + 1 if taken else 1
