"""Runtime contexts for each program type.

On entry R1 points at the program-type context.  For packet programs
(socket filter / tc / XDP) the context's ``data``/``data_end`` fields
are not plain memory: the kernel rewrites those loads to fetch the real
packet pointers.  We model that with a *special field table*: exact
4-byte loads at those context offsets yield full 64-bit packet
addresses, mirroring the ctx-rewrite the verifier performs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ebpf.program import CONTEXTS, ProgType, VerifiedProgram
from repro.kernel.kasan import Allocation, KernelMemory

__all__ = ["RuntimeContext", "build_context", "DEFAULT_PKT_SIZE"]

DEFAULT_PKT_SIZE = 128


@dataclass
class RuntimeContext:
    """Everything the interpreter needs about one trigger's context."""

    prog_type: ProgType
    ctx_alloc: Allocation
    stack_alloc: Allocation
    #: absolute address -> pointer value for rewritten ctx fields
    special_fields: dict[int, int] = field(default_factory=dict)
    pkt_alloc: Allocation | None = None
    in_irq: bool = False
    in_nmi: bool = False

    @property
    def ctx_addr(self) -> int:
        return self.ctx_alloc.start

    @property
    def fp(self) -> int:
        """Initial frame pointer (top of the 512-byte stack)."""
        return self.stack_alloc.start + self.stack_alloc.size


#: Program types running in (soft)irq-ish context at their attach
#: points; perf_event handlers run in NMI context (Bug #6's trigger).
_IRQ_TYPES = {ProgType.XDP, ProgType.SCHED_CLS, ProgType.KPROBE}
_NMI_TYPES = {ProgType.PERF_EVENT}


def build_context(
    mem: KernelMemory,
    verified: VerifiedProgram,
    pkt_size: int = DEFAULT_PKT_SIZE,
) -> RuntimeContext:
    """Allocate and populate a fresh runtime context for one trigger."""
    prog_type = verified.prog_type
    descriptor = CONTEXTS[prog_type]
    ctx_alloc = mem.kzalloc(descriptor.size, tag=f"bpf_ctx:{descriptor.name}")
    stack_alloc = mem.kzalloc(512, tag="bpf_stack")

    rt = RuntimeContext(
        prog_type=prog_type,
        ctx_alloc=ctx_alloc,
        stack_alloc=stack_alloc,
        in_irq=prog_type in _IRQ_TYPES,
        in_nmi=prog_type in _NMI_TYPES,
    )

    if prog_type in (ProgType.SOCKET_FILTER, ProgType.SCHED_CLS, ProgType.XDP):
        pkt = mem.kzalloc(pkt_size, tag="bpf_pkt")
        # A vaguely Ethernet/IPv4-shaped packet so header parsing in
        # examples sees plausible bytes.
        header = bytes.fromhex(
            "ffffffffffff" + "3cfdfe000001" + "0800"  # eth
            "4500004c000040004006" + "0000" + "c0a80001" + "c0a80002"  # ip
        )
        mem.checked_write_bytes(pkt.start, header[:pkt_size], who="ctx-init")
        rt.pkt_alloc = pkt
        for f in descriptor.fields:
            if f.special == "pkt_data":
                rt.special_fields[ctx_alloc.start + f.offset] = pkt.start
            elif f.special == "pkt_end":
                rt.special_fields[ctx_alloc.start + f.offset] = pkt.start + pkt_size
            elif f.special == "pkt_meta":
                rt.special_fields[ctx_alloc.start + f.offset] = pkt.start
        # Scalar fields programs commonly read.
        for name, value in (("len", pkt_size), ("protocol", 0x0008)):
            for f in descriptor.fields:
                if f.name == name:
                    mem.checked_write(
                        ctx_alloc.start + f.offset, f.size, value, who="ctx-init"
                    )
    elif prog_type == ProgType.KPROBE:
        # pt_regs: plausible register values.
        for i in range(descriptor.size // 8):
            mem.checked_write(
                ctx_alloc.start + i * 8, 8, 0x1000 + i * 0x10, who="ctx-init"
            )
    elif prog_type == ProgType.PERF_EVENT:
        mem.checked_write(ctx_alloc.start, 8, 10_000, who="ctx-init")
        mem.checked_write(ctx_alloc.start + 8, 8, 0xFFFF_8880_0000_1000, who="ctx-init")

    return rt


def release_context(mem: KernelMemory, rt: RuntimeContext) -> None:
    """Free a runtime context's allocations (quarantined, not reused)."""
    mem.kfree(rt.ctx_alloc)
    mem.kfree(rt.stack_alloc)
    if rt.pkt_alloc is not None:
        mem.kfree(rt.pkt_alloc)
