"""Metrics artifact: the JSON document ``--metrics PATH`` emits.

One artifact captures everything ``python -m repro report`` renders:
the campaign summary, the rejection taxonomy with its per-frame-kind
acceptance breakdown, the merged metrics snapshot, per-shard
coverage/throughput rows, and bug-indicator counts.

Wall-clock data is **structurally segregated**: the top-level
``"wall"`` key, the ``"wall"`` key inside the metrics snapshot, and
the ``"wall"`` sub-dict of every shard row hold every field that
depends on how fast the host ran.  :func:`strip_wall` removes all
three, and the remainder is the worker-count-invariance contract: for
fixed ``(seed, budget, shards)``, ``strip_wall(artifact)`` is
bit-identical whether the campaign ran on 1 worker or 16.
"""

from __future__ import annotations

import copy
import json

from repro.analysis.stats import ThroughputStats
from repro.obs.metrics import empty_snapshot, strip_wall_fields
from repro.obs.profile import strip_profile_wall

__all__ = ["SCHEMA", "build_artifact", "strip_wall", "write_artifact"]

#: v2 added the ``profile`` (hierarchical profiler) and ``frontier``
#: (coverage-frontier attribution) sections; v3 added the ``repair``
#: section (verified rejection repairs per taxonomy reason, from
#: ``--repair-feedback`` campaigns); consumers accept any
#: ``repro-metrics-v*`` and render missing sections as "n/a".
SCHEMA = "repro-metrics-v3"


def _frame_breakdown(result) -> dict:
    generated = dict(sorted(result.frame_generated.items()))
    accepted = dict(sorted(result.frame_accepted.items()))
    acceptance = {
        kind: (accepted.get(kind, 0) / count if count else 0.0)
        for kind, count in generated.items()
    }
    return {
        "generated": generated,
        "accepted": accepted,
        "acceptance": acceptance,
    }


def build_artifact(result) -> dict:
    """Build the artifact dict from a (possibly merged) campaign result."""
    config = result.config
    throughput = ThroughputStats.from_result(result)

    shards = []
    for shard in getattr(result, "shard_results", []):
        busy = (shard.generate_seconds + shard.verify_seconds
                + shard.execute_seconds)
        shards.append(
            {
                "index": shard.index,
                "start_iteration": shard.start_iteration,
                "generated": shard.generated,
                "accepted": shard.accepted,
                "coverage_edges": len(shard.edges),
                "corpus_size": shard.corpus_size,
                "wall": {
                    "wall_seconds": shard.wall_seconds,
                    "busy_seconds": busy,
                    "programs_per_sec": (
                        shard.generated / shard.wall_seconds
                        if shard.wall_seconds else 0.0
                    ),
                    "bootstrap_seconds": getattr(
                        shard, "bootstrap_seconds", 0.0),
                    "setup_seconds": getattr(shard, "setup_seconds", 0.0),
                },
            }
        )

    indicators = {
        "indicator1": 0,
        "indicator2": 0,
        "component": 0,
        "differential": 0,
        "invariant": 0,
    }
    findings = {}
    for bug_id in sorted(result.findings):
        finding = result.findings[bug_id]
        indicators[finding.indicator] = indicators.get(finding.indicator, 0) + 1
        findings[bug_id] = {
            "indicator": finding.indicator,
            "report_kind": finding.report_kind,
            "iteration": finding.iteration,
        }

    divergences = dict(sorted(getattr(result, "divergences", {}).items()))
    by_classification: dict[str, int] = {}
    for div in divergences.values():
        cls = div.get("classification", "unexplained")
        by_classification[cls] = by_classification.get(cls, 0) + 1

    repairs_attempted = getattr(result, "repairs_attempted", None) or {}
    repairs_verified = getattr(result, "repairs_verified", None) or {}
    repair_examples = getattr(result, "repair_examples", None) or {}
    repair_by_reason = {}
    for reason in sorted(repairs_attempted):
        attempted = repairs_attempted[reason]
        verified = repairs_verified.get(reason, 0)
        repair_by_reason[reason] = {
            "attempted": attempted,
            "verified": verified,
            "verified_rate": verified / attempted if attempted else 0.0,
            "example": repair_examples.get(reason),
        }
    total_attempted = sum(repairs_attempted.values())
    total_verified = sum(repairs_verified.values())

    return {
        "schema": SCHEMA,
        "config": {
            "tool": config.tool,
            "kernel": config.kernel_version,
            "budget": config.budget,
            "seed": config.seed,
            "sanitize": config.sanitize,
            "differential": getattr(config, "differential", False),
            "check_invariants": getattr(config, "check_invariants", False),
            "flight": getattr(config, "flight", False),
            "profile": getattr(config, "profile", False),
            "repair_feedback": getattr(config, "repair_feedback", False),
            "shards": getattr(result, "shards", 1),
            "workers": getattr(result, "workers", 1),
        },
        "summary": {
            "generated": result.generated,
            "accepted": result.accepted,
            "acceptance_rate": result.acceptance_rate,
            "final_coverage": result.final_coverage,
            "corpus_size": result.corpus_size,
        },
        "indicators": indicators,
        "findings": findings,
        "differential": {
            "enabled": getattr(config, "differential", False),
            "total": len(divergences),
            "by_classification": dict(sorted(by_classification.items())),
            "divergences": list(divergences.values()),
        },
        "taxonomy": {
            "by_reason": dict(sorted(result.reject_reasons.items())),
            "by_errno": {
                str(errno): count
                for errno, count in sorted(result.reject_errnos.items())
            },
            "frames": _frame_breakdown(result),
            # One flight-recorder explanation per reason (earliest
            # global iteration); deterministic, so invariance-checked.
            "explanations": dict(
                sorted(getattr(result, "reject_explanations", {}).items())
            ),
        },
        # Verified rejection repairs (v3).  Repairs are pure functions
        # of the deterministic rejection stream, so the whole section
        # is part of the worker-count-invariance contract (no wall
        # sub-section needed).
        "repair": {
            "enabled": getattr(config, "repair_feedback", False),
            "attempted": total_attempted,
            "verified": total_verified,
            "verified_rate": (
                total_verified / total_attempted if total_attempted else 0.0
            ),
            "by_reason": repair_by_reason,
        },
        "metrics": result.metrics or empty_snapshot(),
        # Profiler snapshot: exact counts are deterministic, the
        # per-node wall times are host-speed-dependent — so the section
        # keeps the snapshot's own counts/wall split.
        "profile": {
            "enabled": getattr(config, "profile", False),
            **(getattr(result, "profile", None) or {}),
        },
        # Frontier snapshot is iteration-indexed, hence fully
        # deterministic — no wall sub-section needed.
        "frontier": getattr(result, "frontier", None) or {},
        "shards": shards,
        "wall": {
            "throughput": throughput.as_dict(),
            "bootstrap_seconds": getattr(result, "bootstrap_seconds", 0.0),
            "setup_seconds": getattr(result, "setup_seconds", 0.0),
        },
    }


def strip_wall(artifact: dict) -> dict:
    """The artifact minus every non-invariant field (invariance form).

    Removes the three wall-clock sections, the ``workers`` knob, and
    the ``cache.`` metric family (see
    :func:`~repro.obs.metrics.strip_wall_fields` for why cache
    telemetry is excluded from the invariance contract).
    """
    stripped = copy.deepcopy(artifact)
    stripped.pop("wall", None)
    if "metrics" in stripped:
        stripped["metrics"] = strip_wall_fields(stripped["metrics"])
    # Profiler counts are invariant; per-node wall times are not.
    profile = stripped.get("profile")
    if profile:
        enabled = profile.get("enabled", False)
        stripped["profile"] = {"enabled": enabled,
                               **strip_profile_wall(profile)}
    # The workers knob itself is a throughput setting, not an outcome.
    stripped.get("config", {}).pop("workers", None)
    for shard in stripped.get("shards", []):
        shard.pop("wall", None)
    return stripped


def write_artifact(artifact: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(artifact, fh, indent=2, sort_keys=True)
        fh.write("\n")
