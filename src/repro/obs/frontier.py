"""Coverage-frontier attribution and plateau detection.

The coverage curve (Figure 6) says *whether* a campaign is still
finding new verifier behaviour; this module says *which programs* are
finding it and *when the search stalls*.  Every iteration whose
verification touched new coverage edges is attributed to its generator
frame composition (the sorted ``+``-joined frame kinds — e.g.
``basic+jump``), its ``prog_type``, and its origin (generated vs
mutated); a configurable iteration window with no new edges is a
**plateau**, emitted as a ``campaign.plateau`` trace event and
surfaced in heartbeats, ``repro watch``, and the report's frontier
section.

Everything here is deterministic: attribution counters, curves, and
plateau records depend only on ``(seed, budget, shards)``.  Per-shard
trackers run on local iteration numbers; :func:`shift_frontier`
remaps a snapshot to global iterations and :func:`merge_frontiers`
folds shards together worker-count-invariantly (counters sum, curves
and plateaus interleave in global-iteration order).  Note the
attribution semantics under sharding: "new" means new *to that
shard* — shards are isolated, so the merged ``new_edges`` total is
the sum of per-shard discoveries, not the global unique-edge count
(which the coverage curve already reports).
"""

from __future__ import annotations

from collections import Counter

__all__ = [
    "FrontierTracker",
    "shift_frontier",
    "merge_frontiers",
    "render_frontier",
]

#: Default stall window: iterations without a new edge before the
#: campaign is declared plateaued.
DEFAULT_PLATEAU_WINDOW = 200


class FrontierTracker:
    """Per-shard coverage-frontier bookkeeping (deterministic)."""

    def __init__(self, window: int = DEFAULT_PLATEAU_WINDOW) -> None:
        #: stall window in iterations (0 disables plateau detection)
        self.window = max(0, window)
        self.iterations = 0
        #: iterations that contributed at least one new edge
        self.contributing = 0
        #: sum of new-edge counts over contributing iterations
        self.new_edges = 0
        self.last_new_iteration = -1
        #: frame composition -> contributing iterations / edges found
        self.by_frame: Counter = Counter()
        self.edges_by_frame: Counter = Counter()
        self.by_prog_type: Counter = Counter()
        self.by_origin: Counter = Counter()
        #: (iteration, new_edges) for every contributing iteration
        self.curve: list[tuple[int, int]] = []
        #: plateau records, in detection order
        self.plateaus: list[dict] = []
        self._stalled = False

    @property
    def stalled(self) -> bool:
        return self._stalled

    def note(
        self,
        iteration: int,
        new_edges: int,
        *,
        frames,
        prog_type: str,
        origin: str,
    ) -> dict | None:
        """Fold one iteration in; returns a plateau event when one starts.

        ``frames`` is the frame-kind set
        (:meth:`~repro.fuzz.campaign.Campaign._frame_kinds`); the
        composition key is its sorted ``+``-join, so attribution is
        independent of set iteration order.
        """
        self.iterations = iteration + 1
        if new_edges > 0:
            if self._stalled:
                # Recovery: close the open plateau.
                plateau = self.plateaus[-1]
                plateau["end"] = iteration
                plateau["length"] = iteration - plateau["start"]
                self._stalled = False
            composition = "+".join(sorted(frames))
            self.contributing += 1
            self.new_edges += new_edges
            self.last_new_iteration = iteration
            self.by_frame[composition] += 1
            self.edges_by_frame[composition] += new_edges
            self.by_prog_type[prog_type] += 1
            self.by_origin[origin] += 1
            self.curve.append((iteration, new_edges))
            return None
        if (
            self.window
            and not self._stalled
            and iteration - self.last_new_iteration >= self.window
        ):
            self._stalled = True
            plateau = {
                "start": self.last_new_iteration + 1,
                "detected_at": iteration,
                "end": None,
                "length": None,
            }
            self.plateaus.append(plateau)
            return dict(plateau)
        return None

    def heartbeat_state(self) -> dict:
        """The deterministic frontier fields a heartbeat carries."""
        stalled_for = (
            self.iterations - 1 - self.last_new_iteration
            if self.iterations
            else 0
        )
        return {
            "last_new_iteration": self.last_new_iteration,
            "stalled_for": stalled_for,
            "stalled": self._stalled,
            "plateaus": len(self.plateaus),
        }

    def snapshot(self) -> dict:
        """Plain-dict form (fully deterministic — no wall section)."""
        return {
            "window": self.window,
            "iterations": self.iterations,
            "contributing": self.contributing,
            "new_edges": self.new_edges,
            "last_new_iteration": self.last_new_iteration,
            "by_frame": dict(sorted(self.by_frame.items())),
            "edges_by_frame": dict(sorted(self.edges_by_frame.items())),
            "by_prog_type": dict(sorted(self.by_prog_type.items())),
            "by_origin": dict(sorted(self.by_origin.items())),
            "curve": [list(point) for point in self.curve],
            "plateaus": [dict(plateau) for plateau in self.plateaus],
        }


def shift_frontier(snapshot: dict, offset: int) -> dict:
    """Remap a shard-local snapshot to global iteration numbers."""
    if not snapshot:
        return {}
    shifted = dict(snapshot)
    if shifted.get("last_new_iteration", -1) >= 0:
        shifted["last_new_iteration"] += offset
    shifted["curve"] = [
        [iteration + offset, new_edges]
        for iteration, new_edges in snapshot.get("curve", [])
    ]
    plateaus = []
    for plateau in snapshot.get("plateaus", []):
        plateau = dict(plateau)
        plateau["start"] += offset
        plateau["detected_at"] += offset
        if plateau.get("end") is not None:
            plateau["end"] += offset
        plateaus.append(plateau)
    shifted["plateaus"] = plateaus
    return shifted


_FRONTIER_COUNTERS = (
    "by_frame", "edges_by_frame", "by_prog_type", "by_origin",
)


def merge_frontiers(snapshots: list[dict]) -> dict:
    """Fold (already-shifted) shard snapshots into one frontier.

    Worker-count invariant: sums and sorted interleavings only, keyed
    by global iteration (ties impossible — shards own disjoint
    iteration ranges).
    """
    snapshots = [snap for snap in snapshots if snap]
    if not snapshots:
        return {}
    merged: dict = {
        "window": max(snap.get("window", 0) for snap in snapshots),
        "iterations": sum(snap.get("iterations", 0) for snap in snapshots),
        "contributing": sum(
            snap.get("contributing", 0) for snap in snapshots
        ),
        "new_edges": sum(snap.get("new_edges", 0) for snap in snapshots),
        "last_new_iteration": max(
            snap.get("last_new_iteration", -1) for snap in snapshots
        ),
    }
    for family in _FRONTIER_COUNTERS:
        counter: Counter = Counter()
        for snap in snapshots:
            counter.update(snap.get(family, {}))
        merged[family] = dict(sorted(counter.items()))
    curve: list[list[int]] = []
    plateaus: list[dict] = []
    for snap in snapshots:
        curve.extend(list(point) for point in snap.get("curve", []))
        plateaus.extend(dict(p) for p in snap.get("plateaus", []))
    merged["curve"] = sorted(curve)
    merged["plateaus"] = sorted(
        plateaus, key=lambda p: (p["start"], p["detected_at"])
    )
    return merged


def render_frontier(frontier: dict, top: int = 8) -> list[str]:
    """The report's frontier section, as lines (appended by the caller)."""
    lines = ["coverage frontier:"]
    if not frontier or not frontier.get("iterations"):
        lines.append("  n/a (no frontier data in this artifact)")
        return lines
    lines.append(
        f"  {frontier.get('contributing', 0)} of "
        f"{frontier.get('iterations', 0)} iterations contributed "
        f"{frontier.get('new_edges', 0)} new-edge discoveries; "
        f"last at iteration {frontier.get('last_new_iteration', -1)}"
    )
    by_frame = frontier.get("by_frame", {})
    edges_by_frame = frontier.get("edges_by_frame", {})
    if by_frame:
        lines.append("  new edges by frame composition:")
        ranked = sorted(
            edges_by_frame.items(), key=lambda kv: (-kv[1], kv[0])
        )
        for composition, edges in ranked[:top]:
            lines.append(
                f"    {composition:<24} {edges:>7} edges over "
                f"{by_frame.get(composition, 0)} iterations"
            )
    by_prog_type = frontier.get("by_prog_type", {})
    if by_prog_type:
        ranked = sorted(by_prog_type.items(), key=lambda kv: (-kv[1], kv[0]))
        lines.append(
            "  contributing prog types: "
            + " ".join(f"{name}={count}" for name, count in ranked[:top])
        )
    by_origin = frontier.get("by_origin", {})
    if by_origin:
        lines.append(
            "  contributing origins: "
            + " ".join(
                f"{name}={count}" for name, count in sorted(by_origin.items())
            )
        )
    plateaus = frontier.get("plateaus", [])
    if plateaus:
        lines.append(
            f"  plateaus (window {frontier.get('window', 0)} iterations):"
        )
        for plateau in plateaus:
            end = plateau.get("end")
            status = (
                f"recovered at {end} (length {plateau.get('length')})"
                if end is not None
                else "still stalled"
            )
            lines.append(
                f"    from iteration {plateau['start']} "
                f"(detected at {plateau['detected_at']}): {status}"
            )
    else:
        lines.append(
            f"  no plateaus (window {frontier.get('window', 0)} iterations)"
        )
    return lines
