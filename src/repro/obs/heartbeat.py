"""Campaign heartbeats: atomic per-shard progress snapshots on disk.

Long campaigns (the paper runs 48-hour ones) are opaque while running:
the metrics artifact only exists after the merge.  Heartbeats fix that
with the cheapest possible mechanism — each shard periodically writes
one small JSON file describing where it is, and ``repro watch <dir>``
re-reads the directory and renders a live dashboard.  No sockets, no
shared memory: the files survive worker crashes and work across any
process/host boundary that shares the directory.

File format (schema ``repro-heartbeat-v1``), one
``shardNN.heartbeat.json`` per shard plus one ``campaign.meta.json``
for the fleet:

- every **deterministic** field (programs, accepted, findings, the
  rejection-reason taxonomy counters) lives at the top level — for a
  fixed ``(seed, budget, shards)`` a heartbeat written at the same
  iteration has identical top-level content regardless of worker count
  or host speed, which is what makes heartbeats testable;
- every **host-dependent** field (elapsed seconds, programs/sec,
  per-phase seconds, cache hit rates — the tnum memo is process-global
  and therefore packing-dependent) is segregated under the ``"wall"``
  key, mirroring the metrics artifact's convention.

Writes are atomic (``tmp`` + ``os.replace``), so a reader never
observes a torn file; the cadence is deterministic (every
``heartbeat_every`` iterations plus one final ``done`` write).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

__all__ = [
    "SCHEMA",
    "META_SCHEMA",
    "HeartbeatWriter",
    "write_campaign_meta",
    "read_campaign_meta",
    "read_heartbeats",
    "render_watch",
]

SCHEMA = "repro-heartbeat-v1"
META_SCHEMA = "repro-campaign-meta-v1"

_META_NAME = "campaign.meta.json"


def _atomic_write_json(path: Path, payload: dict) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    os.replace(tmp, path)


class HeartbeatWriter:
    """Writes one shard's progress snapshots atomically."""

    def __init__(
        self,
        directory: str,
        shard_index: int = 0,
        budget: int = 0,
        seed: int = 0,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / f"shard{shard_index:02d}.heartbeat.json"
        self.shard_index = shard_index
        self.budget = budget
        self.seed = seed
        self._started = time.perf_counter()

    def write(
        self,
        *,
        status: str,
        programs: int,
        accepted: int,
        findings: int = 0,
        divergences: int = 0,
        reject_reasons: dict | None = None,
        phase_seconds: dict | None = None,
        caches: dict | None = None,
        frontier: dict | None = None,
    ) -> None:
        """Write one snapshot (atomic replace of the previous one)."""
        elapsed = time.perf_counter() - self._started
        payload = {
            "schema": SCHEMA,
            "v": 1,
            "shard": self.shard_index,
            "seed": self.seed,
            "budget": self.budget,
            "status": status,
            "programs": programs,
            "accepted": accepted,
            "rejected": programs - accepted,
            "findings": findings,
            "divergences": divergences,
            # Cumulative taxonomy counters; `repro watch` diffs
            # successive snapshots to show per-interval deltas.
            "reject_reasons": dict(sorted((reject_reasons or {}).items())),
            # Coverage-frontier state (FrontierTracker.heartbeat_state):
            # iteration-indexed, hence deterministic and top-level.
            "frontier": dict(sorted(frontier.items())) if frontier else None,
            "wall": {
                "updated_unix": time.time(),
                "elapsed_seconds": round(elapsed, 4),
                "programs_per_sec": (
                    round(programs / elapsed, 2) if elapsed > 0 else 0.0
                ),
                "phase_seconds": {
                    name: round(seconds, 4)
                    for name, seconds in sorted(
                        (phase_seconds or {}).items()
                    )
                },
                # Cache hit rates are wall-side: the tnum memo is
                # process-global, so its rates depend on shard packing.
                "caches": dict(sorted((caches or {}).items())),
            },
        }
        _atomic_write_json(self.path, payload)


def write_campaign_meta(directory: str, meta: dict) -> None:
    """Write the fleet-level manifest ``repro watch`` keys off."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    payload = {"schema": META_SCHEMA, "v": 1}
    payload.update(meta)
    _atomic_write_json(path / _META_NAME, payload)


def read_campaign_meta(directory: str) -> dict | None:
    path = Path(directory) / _META_NAME
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None


def read_heartbeats(directory: str) -> list[dict]:
    """All shard heartbeats in a directory, ordered by shard index.

    Unreadable files are skipped: a shard that has not written yet (or
    a directory mid-rotation) must not break the watcher.  Torn files
    cannot occur — writes are atomic replaces.
    """
    snapshots = []
    for path in sorted(Path(directory).glob("shard*.heartbeat.json")):
        try:
            snapshot = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue
        snapshots.append(snapshot)
    snapshots.sort(key=lambda s: s.get("shard", 0))
    return snapshots


def _top_reason(snapshot: dict) -> str:
    reasons = snapshot.get("reject_reasons", {})
    if not reasons:
        return "-"
    reason, count = max(reasons.items(), key=lambda kv: (kv[1], kv[0]))
    return f"{reason}={count}"


def render_watch(snapshots: list[dict], meta: dict | None = None) -> str:
    """Render one frame of the live campaign view (pure function)."""
    lines = []
    if meta:
        lines.append(
            f"campaign: tool={meta.get('tool', '?')} "
            f"kernel={meta.get('kernel', '?')} "
            f"budget={meta.get('budget', '?')} seed={meta.get('seed', '?')} "
            f"shards={meta.get('shards', '?')} "
            f"workers={meta.get('workers', '?')}"
        )
        lines.append("")
    if not snapshots:
        lines.append("(no heartbeats yet)")
        return "\n".join(lines)

    lines.append(
        f"  {'shard':>5} {'status':<9} {'progress':>13} {'pct':>5} "
        f"{'acc%':>6} {'finds':>5} {'prog/s':>8}  top reason"
    )
    total_programs = 0
    total_budget = 0
    total_accepted = 0
    total_findings = 0
    for snapshot in snapshots:
        programs = snapshot.get("programs", 0)
        budget = snapshot.get("budget", 0)
        accepted = snapshot.get("accepted", 0)
        findings = snapshot.get("findings", 0)
        total_programs += programs
        total_budget += budget
        total_accepted += accepted
        total_findings += findings
        pct = programs / budget if budget else 0.0
        acc = accepted / programs if programs else 0.0
        pps = snapshot.get("wall", {}).get("programs_per_sec", 0.0)
        lines.append(
            f"  {snapshot.get('shard', '?'):>5} "
            f"{snapshot.get('status', '?'):<9} "
            f"{programs:>6}/{budget:<6} {pct:>5.0%} {acc:>6.1%} "
            f"{findings:>5} {pps:>8.1f}  {_top_reason(snapshot)}"
        )
    overall = total_programs / total_budget if total_budget else 0.0
    acc = total_accepted / total_programs if total_programs else 0.0
    done = sum(1 for s in snapshots if s.get("status") == "done")
    lines.append(
        f"  {'all':>5} {f'{done}/{len(snapshots)} done':<9} "
        f"{total_programs:>6}/{total_budget:<6} {overall:>5.0%} "
        f"{acc:>6.1%} {total_findings:>5}"
    )
    # Taxonomy totals across the fleet, most frequent first.
    reasons: dict[str, int] = {}
    for snapshot in snapshots:
        for reason, count in snapshot.get("reject_reasons", {}).items():
            reasons[reason] = reasons.get(reason, 0) + count
    if reasons:
        lines.append("")
        lines.append("  rejections: " + "  ".join(
            f"{reason}={count}"
            for reason, count in sorted(
                reasons.items(), key=lambda kv: (-kv[1], kv[0])
            )[:8]
        ))
    # Coverage-frontier stalls: shards whose last heartbeat reports an
    # open plateau (no new verifier edges within the tracker's window).
    stalled = [
        (snapshot.get("shard", "?"), snapshot.get("frontier") or {})
        for snapshot in snapshots
        if (snapshot.get("frontier") or {}).get("stalled")
    ]
    if stalled:
        lines.append("")
        lines.append("  plateaus: " + "  ".join(
            f"shard{shard}: stalled {state.get('stalled_for', '?')} iters "
            f"({state.get('plateaus', 0)} total)"
            for shard, state in stalled
        ))
    return "\n".join(lines)
