"""Flight recorder: a bounded ring of typed verifier decision events.

The verifier makes thousands of micro-decisions per program — which
instruction it is simulating, whether a state pruned (and how: exact
fingerprint hit vs. ``states_equal`` scan), what a conditional branch
refined a register's bounds to, which sanitation patch it scheduled —
and the final verdict is a lossy summary of all of them.  The flight
recorder keeps the **last N** of those decisions in a
:class:`collections.deque` ring buffer, one ring per verification
(``begin`` resets it), so that when a verification ends "interestingly"
(reject, invariant violation, divergence) the campaign layer can spill
the tail of the decision history into the JSONL trace stream and the
rejection explainer (:mod:`repro.obs.explain`) can reconstruct *why*.

Design constraints, in order:

- **Disabled must be free.**  The process-current default is
  :data:`NULL_FLIGHT`, whose ``enabled`` is a class attribute
  ``False``; hot paths guard every emission with one attribute read,
  exactly like the trace recorder's ``rec.enabled`` gate.  The
  benchmark suite holds this to the repo-wide <=5% disabled-overhead
  budget (``benchmarks/test_throughput.py``).
- **Events are deterministic.**  No wall-clock timestamps, no object
  ids — a per-verification ``seq`` counter orders events, and register
  values are rendered via their stable ``str`` form.  Identical
  (program, kernel config, flags) therefore produce identical event
  lists, which is what makes recorded explanations worker-count
  invariant.
- **Bounded.**  ``capacity`` caps memory per verification; the deque
  silently drops the oldest events, which is the right bias — the
  decisions *closest* to the verdict carry the explanation.

Event kinds (each event is a plain dict with ``kind`` and ``seq``):

- ``begin``   — ring reset; ``program``, ``insns``
- ``step``    — ``do_check`` reached an instruction; ``insn``, and at
  ``level >= 2`` the non-NOT_INIT registers (``regs``) and frame depth
- ``prune``   — prune-point / loop-header decision; ``insn``, ``point``
  (``prune`` | ``loop``), ``outcome`` (``exact-hit`` | ``scan-hit`` |
  ``miss``)
- ``refine``  — branch knowledge narrowed a register; ``insn``,
  ``reg``, ``detail``
- ``patch``   — sanitation rewrite scheduled; ``insn``, ``patch``
  (``alu_limit`` | ``probe_mem``), ``detail``
- ``verdict`` — terminal outcome; ``verdict`` (``accept`` |
  ``reject``), ``errno``, ``insn``, ``message``, ``program``

This module must stay dependency-free (stdlib only): it is imported by
``repro.obs.__init__``, which the verifier itself imports.
"""

from __future__ import annotations

from collections import deque

__all__ = [
    "DEFAULT_CAPACITY",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_FLIGHT",
    "reg_summary",
]

#: Ring capacity: enough to hold the full decision history of typical
#: generated programs (tens of instructions) and the meaningful tail
#: of pathological ones.
DEFAULT_CAPACITY = 256


def reg_summary(state) -> dict[str, str]:
    """Stable text rendering of the initialised registers of a state.

    Uses ``RegState.__str__`` (the same form the level-2 verifier log
    prints), so snapshots are deterministic and diffable.
    """
    regs = state.regs
    return {
        f"R{i}": str(regs[i])
        for i in range(11)
        if regs[i].type.value != "not_init"
    }


class NullFlightRecorder:
    """Disabled recorder: every emission is a no-op.

    ``enabled``/``level`` are class attributes so the hot-path guard
    (`fl.enabled`) costs one attribute read and no per-instance dict.
    """

    __slots__ = ()

    enabled = False
    level = 0

    def begin(self, program, n_insns: int = 0) -> None:
        pass

    def step(self, idx, state) -> None:
        pass

    def prune(self, idx, point, outcome) -> None:
        pass

    def refine(self, idx, reg, detail) -> None:
        pass

    def patch(self, idx, kind, detail) -> None:
        pass

    def verdict(self, verdict, *, errno=None, insn=-1, message="") -> None:
        pass

    def snapshot(self) -> list:
        return []


NULL_FLIGHT = NullFlightRecorder()


class FlightRecorder:
    """Bounded per-verification decision log.

    ``level`` is the verbosity knob: 1 records decisions (steps,
    prunes, refinements, patches, verdicts) without register dumps;
    2 additionally snapshots the abstract register file at every step
    — what the explainer needs to show the offending state.
    """

    enabled = True

    def __init__(
        self, capacity: int = DEFAULT_CAPACITY, level: int = 2
    ) -> None:
        self.level = level
        self._ring: deque = deque(maxlen=capacity)
        self._seq = 0
        self.program: str | None = None
        self.n_insns = 0
        #: verifications recorded since construction (diagnostics only)
        self.programs_recorded = 0

    # -- lifecycle ----------------------------------------------------------

    def begin(self, program, n_insns: int = 0) -> None:
        """Start a fresh verification: reset the ring and the sequence."""
        self._ring.clear()
        self._seq = 0
        self.program = program
        self.n_insns = n_insns
        self.programs_recorded += 1
        self._push({"kind": "begin", "program": program, "insns": n_insns})

    def _push(self, event: dict) -> None:
        event["seq"] = self._seq
        self._seq += 1
        self._ring.append(event)

    # -- event kinds --------------------------------------------------------

    def step(self, idx: int, state) -> None:
        event: dict = {"kind": "step", "insn": idx}
        if self.level >= 2:
            event["regs"] = reg_summary(state)
            event["frames"] = len(state.frames)
        self._push(event)

    def prune(self, idx: int, point: str, outcome: str) -> None:
        self._push(
            {"kind": "prune", "insn": idx, "point": point, "outcome": outcome}
        )

    def refine(self, idx: int, reg: str, detail: str) -> None:
        self._push(
            {"kind": "refine", "insn": idx, "reg": reg, "detail": detail}
        )

    def patch(self, idx: int, kind: str, detail: str) -> None:
        self._push(
            {"kind": "patch", "insn": idx, "patch": kind, "detail": detail}
        )

    def verdict(
        self,
        verdict: str,
        *,
        errno: int | None = None,
        insn: int = -1,
        message: str = "",
    ) -> None:
        self._push(
            {
                "kind": "verdict",
                "verdict": verdict,
                "errno": errno,
                "insn": insn,
                "message": message,
                "program": self.program,
            }
        )

    # -- output -------------------------------------------------------------

    def snapshot(self) -> list[dict]:
        """The recorded events, oldest first (copies, safe to keep)."""
        return [dict(event) for event in self._ring]
