"""Deterministic metrics registry: counters, gauges, histograms.

The registry is the aggregation half of the observability layer.  One
instance lives per campaign shard, components increment it through the
process-current holder in :mod:`repro.obs`, and the resulting
:meth:`MetricsRegistry.snapshot` travels back to the parent inside
``ShardResult``, where snapshots from every shard merge with the same
worker-count-invariance contract the rest of the merge obeys:

- **counters** sum;
- **gauges** join with ``max`` (the only order-independent join that
  keeps "high-water mark" semantics);
- **histograms** have *fixed* bucket boundaries declared at first
  observation, so merging is a per-bucket sum — no re-bucketing, no
  dependence on observation order;
- **wall-clock values are segregated** into their own ``wall`` section
  (sums and time histograms).  Everything outside ``wall`` is a pure
  function of ``(seed, budget, shards)``; everything inside it is
  expected to differ run-to-run and is excluded by
  :func:`strip_wall_fields` when artifacts are compared.

Snapshots are plain sorted dicts so they are picklable, JSON-able, and
stable under comparison.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections import Counter

__all__ = [
    "DEFAULT_SIZE_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "MetricsRegistry",
    "NullMetrics",
    "cache_hit_rates",
    "merge_snapshots",
    "strip_wall_fields",
]

#: Power-of-two-ish boundaries for size-like values (instruction
#: counts, states explored, sites instrumented).  A value lands in the
#: first bucket whose upper bound is >= value; the implicit last bucket
#: is +inf.
DEFAULT_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
                        4096, 16384, 65536)

#: Boundaries (seconds) for duration observations — spans from 100µs
#: to 10s, which covers per-program phase times and whole-shard laps.
DEFAULT_TIME_BUCKETS = (0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
                        0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
                        5.0, 10.0)


class _Histogram:
    """Fixed-boundary histogram; counts[i] covers (bounds[i-1], bounds[i]]."""

    __slots__ = ("bounds", "counts", "count", "sum")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 for the +inf bucket
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def as_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }


class MetricsRegistry:
    """One shard's metric state.  Not thread-safe; shards are serial."""

    def __init__(self) -> None:
        self._counters: Counter = Counter()
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}
        self._wall_sums: Counter = Counter()
        self._wall_histograms: dict[str, _Histogram] = {}

    # -------------------------------------------------- deterministic side --

    def counter(self, name: str, n: int = 1) -> None:
        self._counters[name] += n

    def gauge_max(self, name: str, value: float) -> None:
        current = self._gauges.get(name)
        if current is None or value > current:
            self._gauges[name] = value

    def observe(self, name: str, value: float,
                buckets: tuple[float, ...] = DEFAULT_SIZE_BUCKETS) -> None:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = _Histogram(buckets)
        hist.observe(value)

    # --------------------------------------------------- wall-clock side --

    def wall(self, name: str, seconds: float) -> None:
        """Accumulate a wall-clock duration (segregated from counters)."""
        self._wall_sums[name] += seconds

    def observe_time(self, name: str, seconds: float) -> None:
        """Record one duration into a wall-clock histogram."""
        hist = self._wall_histograms.get(name)
        if hist is None:
            hist = self._wall_histograms[name] = _Histogram(DEFAULT_TIME_BUCKETS)
        hist.observe(seconds)

    # ------------------------------------------------------------ output --

    def snapshot(self) -> dict:
        """Plain sorted-dict form, safe to pickle/JSON and to merge."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                name: hist.as_dict()
                for name, hist in sorted(self._histograms.items())
            },
            "wall": {
                "sums": dict(sorted(self._wall_sums.items())),
                "histograms": {
                    name: hist.as_dict()
                    for name, hist in sorted(self._wall_histograms.items())
                },
            },
        }


class NullMetrics:
    """Default sink: every method is a no-op.

    Installed when no campaign is running so library code can call
    ``obs.metrics().counter(...)`` unconditionally — the disabled cost
    is one attribute lookup and an empty call.
    """

    def counter(self, name: str, n: int = 1) -> None:
        pass

    def gauge_max(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float,
                buckets: tuple[float, ...] = DEFAULT_SIZE_BUCKETS) -> None:
        pass

    def wall(self, name: str, seconds: float) -> None:
        pass

    def observe_time(self, name: str, seconds: float) -> None:
        pass

    def snapshot(self) -> dict:
        return empty_snapshot()


def empty_snapshot() -> dict:
    return {
        "counters": {},
        "gauges": {},
        "histograms": {},
        "wall": {"sums": {}, "histograms": {}},
    }


def _merge_hist(into: dict, hist: dict, name: str) -> None:
    kept = into.get(name)
    if kept is None:
        into[name] = {
            "bounds": list(hist["bounds"]),
            "counts": list(hist["counts"]),
            "count": hist["count"],
            "sum": hist["sum"],
        }
        return
    if kept["bounds"] != hist["bounds"]:
        raise ValueError(
            f"histogram {name!r}: bucket boundaries differ across shards "
            f"({kept['bounds']} vs {hist['bounds']})"
        )
    kept["counts"] = [a + b for a, b in zip(kept["counts"], hist["counts"])]
    kept["count"] += hist["count"]
    kept["sum"] += hist["sum"]


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Fold shard snapshots into one, shard-order-independent.

    Counters and histogram buckets sum, gauges take the max, wall-clock
    sections merge the same way but stay segregated.  The result is
    identical for any permutation of ``snapshots`` (sums and maxes are
    commutative), which is what makes the merged artifact
    worker-count-invariant.
    """
    merged = empty_snapshot()
    counters: Counter = Counter()
    wall_sums: Counter = Counter()
    for snap in snapshots:
        counters.update(snap.get("counters", {}))
        for name, value in snap.get("gauges", {}).items():
            if name not in merged["gauges"] or value > merged["gauges"][name]:
                merged["gauges"][name] = value
        for name, hist in snap.get("histograms", {}).items():
            _merge_hist(merged["histograms"], hist, name)
        wall = snap.get("wall", {})
        wall_sums.update(wall.get("sums", {}))
        for name, hist in wall.get("histograms", {}).items():
            _merge_hist(merged["wall"]["histograms"], hist, name)
    merged["counters"] = dict(sorted(counters.items()))
    merged["gauges"] = dict(sorted(merged["gauges"].items()))
    merged["histograms"] = dict(sorted(merged["histograms"].items()))
    merged["wall"]["sums"] = dict(sorted(wall_sums.items()))
    merged["wall"]["histograms"] = dict(
        sorted(merged["wall"]["histograms"].items())
    )
    return merged


def strip_wall_fields(snapshot: dict) -> dict:
    """A snapshot with its non-invariant sections removed.

    This is the comparison form for the worker-invariance contract:
    two campaigns with the same ``(seed, budget, shards)`` must produce
    equal stripped snapshots regardless of ``workers``.  Two families
    are excluded:

    - the ``wall`` section (wall-clock time is run-to-run noise);
    - ``cache.``-prefixed metrics: the tnum memo LRUs are
      process-global, so their hit/miss split depends on how shards
      were packed into worker processes.  Cache effectiveness is
      telemetry about the run, not about the campaign's semantics —
      the semantic contract is precisely that everything *outside*
      this family is unchanged by caching.
    """
    stripped = {}
    for section, value in snapshot.items():
        if section == "wall":
            continue
        if isinstance(value, dict):
            value = {
                name: v
                for name, v in value.items()
                if not name.startswith("cache.")
            }
        stripped[section] = value
    return stripped


def _hit_rate(counters: dict, hits_key: str, misses_key: str,
              extra_hits: str | None = None) -> float:
    hits = counters.get(hits_key, 0)
    if extra_hits:
        hits += counters.get(extra_hits, 0)
    total = hits + counters.get(misses_key, 0)
    return round(hits / total, 4) if total else 0.0


def cache_hit_rates(counters: dict) -> dict:
    """Hit rates of the verifier fast-path caches, from one counter map.

    Shared by the ``repro report`` dashboard, the campaign heartbeats,
    and ``benchmarks/test_throughput.py`` (whose ``caches`` section the
    trajectory checker gates), so all three always agree on the
    definition of each rate.
    """
    return {
        "verdict_hit_rate": _hit_rate(
            counters, "cache.verdict.hits", "cache.verdict.misses"),
        "tnum_memo_hit_rate": _hit_rate(
            counters, "cache.tnum.hits", "cache.tnum.misses"),
        "prune_index_hit_rate": _hit_rate(
            counters, "verifier.prune.exact_hits", "verifier.prune.misses",
            extra_hits="verifier.prune.scan_hits"),
        # Of the prune hits, how many the fingerprint probe answered
        # without a states_equal scan.
        "prune_exact_fraction": _hit_rate(
            counters, "verifier.prune.exact_hits",
            "verifier.prune.scan_hits"),
    }


def histogram_quantile(hist: dict, q: float) -> float:
    """Approximate quantile from bucket counts (upper bound of bucket)."""
    if not hist["count"]:
        return 0.0
    target = math.ceil(hist["count"] * q)
    seen = 0
    bounds = hist["bounds"]
    for i, c in enumerate(hist["counts"]):
        seen += c
        if seen >= target:
            return bounds[i] if i < len(bounds) else float("inf")
    return float("inf")
