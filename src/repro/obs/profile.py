"""Hierarchical verifier profiler: where does verification time go?

BENCH_throughput.json says verification dominates campaign wall time
(ROADMAP item 1), but the phase clock only reports the total.  This
module decomposes it: a path-keyed tree of **frames** (``verify`` →
``do_check`` → per-instruction-family nodes, the prune machinery, the
sanitizer pass) with self/cumulative accounting, plus flat exact
counters for ALU op kinds, JMP op kinds, helper calls, and prune
outcomes.

Determinism contract (mirrors :mod:`repro.obs.metrics`):

- everything under ``"counts"`` is exact and **worker-count
  invariant** — frame hit counts and op counters depend only on the
  programs verified, never on the host or worker packing;
- everything under ``"wall"`` is host-dependent timing and is dropped
  by :func:`strip_profile_wall` (and by the artifact's ``strip_wall``)
  before any invariance comparison.

Accounting algebra: each frame records ``cum`` (time between push and
pop) and ``self`` (``cum`` minus the time spent in child frames).  At
every node ``self = cum - Σ children.cum``, so the sum of *all* self
times telescopes to exactly the cumulative time of the root frames —
which is why the campaign wraps the whole load path in one ``verify``
root: per-family self times then account for (nearly) the entire
measured verify phase.

The disabled default is :data:`NULL_PROFILER`, a ``NullProfiler``
following the ``NULL_FLIGHT`` pattern: instrumented components fetch
``obs.profiler()`` once, keep ``None`` when disabled, and the hot-path
cost is one ``is not None`` test.
"""

from __future__ import annotations

import time
from collections import Counter

__all__ = [
    "NullProfiler",
    "VerifierProfiler",
    "NULL_PROFILER",
    "frame_of",
    "merge_profiles",
    "strip_profile_wall",
    "render_profile",
]


class _NullFrame:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_FRAME = _NullFrame()


class NullProfiler:
    """Profiling disabled: every operation is a no-op."""

    __slots__ = ()

    enabled = False

    def push(self, name: str) -> None:
        pass

    def pop(self) -> None:
        pass

    def frame(self, name: str):
        return _NULL_FRAME

    def snapshot(self) -> dict:
        return {}


NULL_PROFILER = NullProfiler()


class _Frame:
    """Context-manager form of push/pop (exception-safe by construction)."""

    __slots__ = ("_profiler", "_name")

    def __init__(self, profiler: "VerifierProfiler", name: str):
        self._profiler = profiler
        self._name = name

    def __enter__(self):
        self._profiler.push(self._name)
        return self

    def __exit__(self, *exc):
        self._profiler.pop()
        return False


def frame_of(profiler, name: str):
    """A frame context manager that is a shared no-op when disabled."""
    if profiler is None or not profiler.enabled:
        return _NULL_FRAME
    return _Frame(profiler, name)


class VerifierProfiler:
    """Path-keyed frame tree plus flat exact counters.

    ``push``/``pop`` are the hot-loop form (no allocation beyond the
    stack entry); ``frame`` wraps them for ``with`` blocks.  Counter
    attributes (``alu_ops``/``jmp_ops``/``helpers``/``ops``) are
    mutated directly by the instrumentation hooks — attribute access
    plus one Counter update is the whole enabled cost per event.
    """

    enabled = True

    def __init__(self) -> None:
        #: frame path -> [hit count, cumulative seconds, self seconds]
        self.nodes: dict[str, list] = {}
        #: ALU op name (with width suffix) -> instruction count
        self.alu_ops: Counter = Counter()
        #: conditional-jump op name -> instruction count
        self.jmp_ops: Counter = Counter()
        #: helper/kfunc name -> call-check count
        self.helpers: Counter = Counter()
        #: miscellaneous exact counters (prune outcomes, sanitizer sites)
        self.ops: Counter = Counter()
        #: open frames: [path, started, child seconds]
        self._stack: list[list] = []

    def push(self, name: str) -> None:
        stack = self._stack
        path = f"{stack[-1][0]}/{name}" if stack else name
        stack.append([path, time.perf_counter(), 0.0])

    def pop(self) -> None:
        path, started, child_seconds = self._stack.pop()
        elapsed = time.perf_counter() - started
        node = self.nodes.get(path)
        if node is None:
            node = self.nodes[path] = [0, 0.0, 0.0]
        node[0] += 1
        node[1] += elapsed
        node[2] += elapsed - child_seconds
        if self._stack:
            self._stack[-1][2] += elapsed

    def frame(self, name: str) -> _Frame:
        return _Frame(self, name)

    def snapshot(self) -> dict:
        """Plain-dict form: exact counts and wall times segregated."""
        ordered = sorted(self.nodes)
        return {
            "counts": {
                "nodes": {path: self.nodes[path][0] for path in ordered},
                "alu_ops": dict(sorted(self.alu_ops.items())),
                "jmp_ops": dict(sorted(self.jmp_ops.items())),
                "helpers": dict(sorted(self.helpers.items())),
                "ops": dict(sorted(self.ops.items())),
            },
            "wall": {
                "nodes": {
                    path: {
                        "cum": self.nodes[path][1],
                        "self": self.nodes[path][2],
                    }
                    for path in ordered
                },
            },
        }


_COUNT_FAMILIES = ("nodes", "alu_ops", "jmp_ops", "helpers", "ops")


def merge_profiles(snapshots: list[dict]) -> dict:
    """Sum profile snapshots (shard merge); worker-count invariant.

    Counts sum exactly; wall node times sum per path and stay under
    ``"wall"``.  Empty/missing snapshots contribute nothing, and an
    all-empty input merges to ``{}`` (profiling was off).
    """
    snapshots = [snap for snap in snapshots if snap]
    if not snapshots:
        return {}
    counts = {family: Counter() for family in _COUNT_FAMILIES}
    wall_nodes: dict[str, dict] = {}
    for snap in snapshots:
        snap_counts = snap.get("counts", {})
        for family in _COUNT_FAMILIES:
            counts[family].update(snap_counts.get(family, {}))
        for path, times in snap.get("wall", {}).get("nodes", {}).items():
            entry = wall_nodes.setdefault(path, {"cum": 0.0, "self": 0.0})
            entry["cum"] += times.get("cum", 0.0)
            entry["self"] += times.get("self", 0.0)
    return {
        "counts": {
            family: dict(sorted(counts[family].items()))
            for family in _COUNT_FAMILIES
        },
        "wall": {
            "nodes": {path: wall_nodes[path] for path in sorted(wall_nodes)},
        },
    }


def strip_profile_wall(profile: dict) -> dict:
    """The invariant half of a snapshot (wall timings removed)."""
    if not profile:
        return {}
    return {"counts": profile.get("counts", {})}


# ----------------------------------------------------------------- render --


def _total_root_cum(wall_nodes: dict) -> float:
    return sum(
        times.get("cum", 0.0)
        for path, times in wall_nodes.items()
        if "/" not in path
    )


def _render_counter(
    lines: list[str], title: str, counter: dict, top: int
) -> None:
    if not counter:
        return
    total = sum(counter.values())
    lines += ["", f"{title} ({total} events):"]
    ranked = sorted(counter.items(), key=lambda kv: (-kv[1], kv[0]))
    for name, count in ranked[:top]:
        lines.append(f"  {name:<28} {count:>10} ({count / total:.1%})")
    if len(ranked) > top:
        rest = sum(count for _, count in ranked[top:])
        lines.append(f"  {'(other)':<28} {rest:>10} ({rest / total:.1%})")


def render_profile(profile: dict, top: int = 10) -> str:
    """Human-readable form: frame tree, hotspots, op/helper tables.

    Works on both full and wall-stripped snapshots — timing columns
    degrade to counts-only when ``"wall"`` is absent.
    """
    if not profile or not profile.get("counts"):
        return "(no profile data — run with --profile)"
    counts = profile.get("counts", {})
    node_counts = counts.get("nodes", {})
    wall_nodes = profile.get("wall", {}).get("nodes", {})
    total = _total_root_cum(wall_nodes)

    lines = ["verifier profile:"]
    if node_counts:
        header = f"  {'frame':<34} {'count':>10}"
        if wall_nodes:
            header += f" {'cum s':>9} {'self s':>9} {'self %':>7}"
        lines.append(header)
        for path in sorted(node_counts):
            depth = path.count("/")
            label = "  " * depth + path.rsplit("/", 1)[-1]
            row = f"  {label:<34} {node_counts[path]:>10}"
            times = wall_nodes.get(path)
            if times is not None:
                share = times["self"] / total if total else 0.0
                row += (f" {times['cum']:>9.3f} {times['self']:>9.3f}"
                        f" {share:>7.1%}")
            lines.append(row)
    else:
        lines.append("  (no frames recorded)")

    if wall_nodes:
        lines += ["", f"hotspots (self time, total {total:.3f}s):"]
        ranked = sorted(
            wall_nodes.items(), key=lambda kv: (-kv[1]["self"], kv[0])
        )
        for path, times in ranked[:top]:
            share = times["self"] / total if total else 0.0
            lines.append(
                f"  {path:<34} {times['self']:>9.3f}s {share:>7.1%}"
                f"  (n={node_counts.get(path, 0)})"
            )

    _render_counter(lines, "ALU ops", counts.get("alu_ops", {}), top)
    _render_counter(lines, "JMP ops", counts.get("jmp_ops", {}), top)
    _render_counter(lines, "helper calls", counts.get("helpers", {}), top)
    _render_counter(
        lines, "prune / sanitizer events", counts.get("ops", {}), top
    )
    return "\n".join(lines)
