"""Structured trace events: JSONL spans with monotonic timestamps.

Tracing answers the *where did the time go* questions the metrics
registry's aggregates cannot: one line per event or span, written as it
happens, with timestamps from :func:`time.monotonic` relative to the
recorder's creation (so traces from different shards are each
internally ordered, and never pretend to share a clock).

Two recorders implement the same duck-typed interface:

- :class:`NullRecorder` — the default.  ``enabled`` is ``False``,
  ``event`` is a no-op, ``span`` hands back a shared do-nothing context
  manager.  Hot paths either skip work behind ``if rec.enabled`` or
  just call through; the disabled cost is one method call.
- :class:`JsonlTraceRecorder` — appends one JSON object per line:
  ``{"v": 1, "ts": ..., "kind": "event"|"span", "name": ..., ...attrs}``
  with ``"dur"`` added on spans.  Keys are sorted so the output is
  stable, and every record carries the ``"v"`` schema version so
  consumers can evolve the format without sniffing.  Path-backed
  recorders rotate: once a file exceeds the byte cap
  (``REPRO_TRACE_MAX_BYTES``, default 64 MiB) it is renamed to
  ``<path>.1`` (replacing any previous rotation) and a fresh file is
  started, so an unattended campaign cannot fill the disk unboundedly.

:class:`PhaseClock` is the single phase timer the campaign loop runs
on.  Each ``with clock.phase("verify"):`` block accumulates its
duration exactly once — in the ``finally`` of the context manager — no
matter how the block exits (return, ``VerifierReject``, any other
exception), which fixes the triple-increment paths the old inline
timers had.  The same exit point feeds the wall-clock histogram in the
metrics registry and, when tracing is on, emits the phase as a span.
"""

from __future__ import annotations

import json
import os
import time
from collections import Counter
from contextlib import contextmanager

__all__ = [
    "NullRecorder",
    "JsonlTraceRecorder",
    "PhaseClock",
    "NULL_RECORDER",
    "RECORD_VERSION",
    "DEFAULT_MAX_BYTES",
]

#: Schema version stamped on every trace record as ``"v"``.
RECORD_VERSION = 1

#: Default per-file byte cap before a path-backed recorder rotates.
DEFAULT_MAX_BYTES = 64 * 1024 * 1024


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """Recording disabled: every operation is a no-op."""

    enabled = False

    def event(self, name: str, **attrs) -> None:
        pass

    def span(self, name: str, **attrs):
        return _NULL_SPAN

    def close(self) -> None:
        pass


NULL_RECORDER = NullRecorder()


class _Span:
    """Times a block and writes it as one line on exit."""

    __slots__ = ("recorder", "name", "attrs", "started")

    def __init__(self, recorder: "JsonlTraceRecorder", name: str, attrs: dict):
        self.recorder = recorder
        self.name = name
        self.attrs = attrs

    def __enter__(self):
        self.started = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb):
        now = time.monotonic()
        record = dict(self.attrs)
        record.update(
            ts=self.started - self.recorder._t0,
            kind="span",
            name=self.name,
            dur=now - self.started,
            error=exc_type.__name__ if exc_type is not None else None,
        )
        self.recorder._write(record)
        return False


class JsonlTraceRecorder:
    """Writes trace events to a JSONL file (or any text stream)."""

    enabled = True

    def __init__(self, path_or_stream, max_bytes: int | None = None) -> None:
        if max_bytes is None:
            max_bytes = int(
                os.environ.get("REPRO_TRACE_MAX_BYTES", DEFAULT_MAX_BYTES)
            )
        self._max_bytes = max_bytes
        if hasattr(path_or_stream, "write"):
            self._stream = path_or_stream
            self._owns = False
            self._path = None
        else:
            self._stream = open(path_or_stream, "w", encoding="utf-8")
            self._owns = True
            self._path = os.fspath(path_or_stream)
        self._written = 0
        self._t0 = time.monotonic()

    def _write(self, fields: dict) -> None:
        # Reserved keys (ts/kind/name/dur) are merged over attrs, so a
        # colliding attribute never shadows the record structure.
        record = {k: v for k, v in fields.items() if v is not None}
        record["v"] = RECORD_VERSION
        record["ts"] = round(record["ts"], 6)
        if "dur" in record:
            record["dur"] = round(record["dur"], 6)
        line = json.dumps(record, sort_keys=True) + "\n"
        self._stream.write(line)
        if self._path is not None and self._max_bytes > 0:
            self._written += len(line)
            if self._written >= self._max_bytes:
                self._rotate()

    def _rotate(self) -> None:
        """Size-capped rotation: ``<path>`` becomes ``<path>.1``
        (replacing the previous rotation) and a fresh file starts, so a
        long campaign keeps at most ``2 * max_bytes`` of trace."""
        self._stream.close()
        os.replace(self._path, f"{self._path}.1")
        self._stream = open(self._path, "w", encoding="utf-8")
        self._written = 0

    def event(self, name: str, **attrs) -> None:
        record = dict(attrs)
        record.update(ts=time.monotonic() - self._t0, kind="event", name=name)
        self._write(record)

    def span(self, name: str, **attrs) -> _Span:
        return _Span(self, name, attrs)

    def close(self) -> None:
        self._stream.flush()
        if self._owns:
            self._stream.close()


class PhaseClock:
    """Accumulates named phase durations, once per phase exit.

    ``seconds`` maps phase name to total accumulated time.  A metrics
    registry (or anything with ``observe_time``) and a recorder can be
    attached; both are fed from the same single exit point.
    """

    def __init__(self, metrics=None, recorder: NullRecorder | None = None):
        self.seconds: Counter = Counter()
        self.metrics = metrics
        self.recorder = recorder or NULL_RECORDER

    @contextmanager
    def phase(self, name: str, **attrs):
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.seconds[name] += elapsed
            if self.metrics is not None:
                self.metrics.observe_time(f"phase.{name}.seconds", elapsed)
            if self.recorder.enabled:
                self.recorder.event(f"phase.{name}", dur=round(elapsed, 6),
                                    **attrs)
