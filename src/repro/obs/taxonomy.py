"""Verifier-rejection taxonomy: stable reason codes for every reject.

The paper's Section 6.3 headline — BVF's structured generation lifts
verifier acceptance to ~49% where Syzkaller manages ~2% — is an
aggregate over *reasons*: every rejected program died somewhere
specific in the verifier, and which rejection dominates tells you
which generation rule to fix next ("Characterizing and Bridging the
Diagnostic Gap in eBPF Verifier Rejections" makes the same point for
real BPF developers).  This module turns the free-text messages the
verifier writes to :mod:`repro.verifier.log` into a closed set of
reason codes so campaigns can report an acceptance breakdown per
reason and per generated frame kind.

Classification is an ordered scan of ``(code, regex)`` rules; the
first match wins, and anything no rule covers falls through to
``UNCLASSIFIED``.  The tier-1 suite pins the closed-set property: no
message the verifier can emit for seed-corpus or generated programs
may leak through as ``UNCLASSIFIED``.
"""

from __future__ import annotations

import re
from collections import Counter

__all__ = [
    "UNCLASSIFIED",
    "REASON_RULES",
    "REASON_CODES",
    "classify",
    "classify_counter",
]

UNCLASSIFIED = "UNCLASSIFIED"

#: Ordered (reason code, pattern) rules.  More specific patterns come
#: before the generic family they would otherwise shadow — e.g. the
#: spin-lock rules precede the generic helper-argument rules because
#: lock misuse also arrives via helper argument checks.
_RAW_RULES: tuple[tuple[str, str], ...] = (
    # --- structural checks (first verifier pass) -------------------------
    ("STRUCT_EMPTY", r"empty program"),
    ("STRUCT_TOO_MANY_INSNS", r"program too large \(\d+ insns\)"),
    ("STRUCT_LDIMM64_PAIRING",
     r"invalid LD_IMM64 pair|LD_IMM64 missing second slot"
     r"|unexpected zero opcode|jump into the middle of ldimm64"
     r"|reached ldimm64 filler"),
    ("STRUCT_BAD_LAST_INSN", r"last insn is not an exit or jmp"),
    ("STRUCT_BAD_REGISTER", r"invalid register number"),
    ("STRUCT_RESERVED_FIELD", r"uses reserved (fields|imm field|src field)"),
    ("STRUCT_BAD_OPCODE",
     r"invalid (ALU|JMP|JMP32|atomic) op at|invalid call kind at"
     r"|invalid (LD IMM|atomic|MEMSX) size|invalid LD_IMM64 pseudo"
     r"|invalid (LD|LDX|ST|STX) mode|unknown opcode 0x"
     r"|legacy packet access not supported|MEMSX loads not supported"
     r"|BPF_END with invalid width"),
    ("STRUCT_BAD_JUMP", r"jump out of range from"),
    # --- pseudo-instruction resolution -----------------------------------
    ("RES_BAD_MAP_FD", r"fd -?\d+ is not a map|no map at address"),
    ("RES_BAD_MAP_VALUE",
     r"direct value offset -?\d+ too large"
     r"|map type does not support direct value access"),
    ("RES_BAD_PSEUDO",
     r"BTF object access not supported|invalid btf_id"
     r"|pseudo func loads not supported|unsupported pseudo src"
     r"|unhandled pseudo ref"),
    # --- path exploration limits -----------------------------------------
    ("COMPLEXITY_LIMIT", r"BPF program is too large\. Processed"),
    ("PATH_FELL_OFF", r"fell off the end at insn"),
    ("INFINITE_LOOP", r"infinite loop detected"),
    ("CALL_DEPTH", r"call stack of \d+ frames is too deep"),
    ("STACK_LIMIT", r"combined stack size of \d+ calls is too large"),
    # --- register / reference discipline ---------------------------------
    ("UNINIT_REGISTER", r"R\d+ !read_ok"),
    ("FRAME_POINTER_WRITE", r"frame pointer is read only"),
    ("POINTER_PARTIAL_STORE",
     r"partial spill of a pointer|partial copy of pointer"),
    ("ATOMIC_POINTER_OPERAND", r"atomic operand must be scalar"),
    ("LEAK_POINTER_RETURN", r"R0 leaks addr as return value"),
    ("REFERENCE_LEAK", r"Unreleased reference id="),
    ("REFERENCE_MISUSE",
     r"reference has already been released"
     r"|expected an acquired \(refcounted\) pointer"
     r"|must point to the start of the allocation"),
    ("LOCK_DISCIPLINE",
     r"bpf_spin_lock is held but program exits"
     r"|bpf_spin_lock is already being held"
     r"|bpf_spin_unlock without taking a lock"
     r"|bpf_spin_unlock of a different lock"
     r"|function calls are not allowed while holding a lock"
     r"|expected a map value containing a spin lock"
     r"|map does not contain a bpf_spin_lock"
     r"|must point exactly at the bpf_spin_lock"
     r"|direct access to bpf_spin_lock is not allowed"),
    # --- pointer arithmetic ----------------------------------------------
    ("POINTER_ARITHMETIC",
     r"32-bit pointer arithmetic prohibited"
     r"|pointer arithmetic (with \w+ operator|on [\w.\- ]+) prohibited"
     r"|pointer arithmetic between pointers"
     r"|\w+ of pointer into scalar prohibited"
     r"|pointer offset -?\d+ out of range"
     r"|variable offset on [\w.\- ]+ prohibited"
     r"|pointer negation prohibited|pointer byteswap prohibited"),
    ("ALU_INVALID", r"invalid shift -?\d+|division by zero"),
    # --- memory access families ------------------------------------------
    ("STACK_ACCESS",
     r"variable stack access prohibited|invalid stack access off="
     r"|invalid read from uninitialised stack"
     r"|stack byte fp[+-]\d+ is not initialised"
     r"|invalid indirect access to stack|variable stack pointer to helper"),
    ("CTX_ACCESS",
     r"variable ctx access prohibited|ctx access out of range"
     r"|ctx offset -?\d+ is not an accessible field"
     r"|ctx field \w+ is (read-only|not readable)"
     r"|ctx field \w+ requires exact-size load"),
    ("MAP_VALUE_ACCESS",
     r"invalid access to map value|map pointer without map state"
     r"|invalid map value region"),
    ("PACKET_ACCESS",
     r"cannot write into packet|invalid packet access off="
     r"|invalid access to packet|invalid packet region"
     r"|packet access not allowed for"),
    ("BTF_ACCESS",
     r"writes to BTF object pointers are prohibited"
     r"|variable offset BTF object access prohibited"
     r"|BTF pointer without object state"
     r"|invalid access to \w+, size=\d+ off=-?\d+ access_size="),
    ("MEM_REGION_OOB",
     r"invalid access to memory, mem_size=|invalid mem region size="),
    ("NULL_POINTER_ACCESS", r"invalid mem access '[^']*' \(possibly NULL\)"),
    ("MEM_ACCESS_BAD_POINTER", r"invalid mem access '"),
    # --- helper-call argument checks -------------------------------------
    ("HELPER_ARG_SIZE",
     r"size argument (must be a scalar|may be negative|may be zero"
     r"|too large)"
     r"|negative access size|zero-size memory access"
     r"|alloc size (must be|too large)"
     r"|memory argument missing its size"),
    ("HELPER_ARG_TYPE",
     r"expected (scalar|map pointer|ctx pointer|BTF object pointer)"
     r"|expected (pointer to memory|non-null argument)"
     r"|map (key|value) without map argument|size without memory argument"),
    ("HELPER_UNKNOWN", r"invalid func unknown#|unknown func \w+#\d+"),
    ("HELPER_NOT_ALLOWED",
     r"is not allowed in NMI context|cannot pass map_type \d+ into"
     r"|calling kernel functions is not supported"
     r"|kernel function btf_id \d+ is not allowed"),
    # --- verifier abstract-state invariant violations --------------------
    # (repro.verifier.sanity.VStateChecker; the message embeds the
    # invariant code, so each code owns its reason bucket)
    ("INV_TNUM_WELLFORMED", r"invariant INV_TNUM_WELLFORMED"),
    ("INV_BOUNDS_DOMAIN", r"invariant INV_BOUNDS_DOMAIN"),
    ("INV_BOUNDS_ORDER", r"invariant INV_BOUNDS_ORDER"),
    ("INV_BOUNDS_EMPTY", r"invariant INV_BOUNDS_EMPTY"),
    ("INV_TNUM_RANGE_SYNC", r"invariant INV_TNUM_RANGE_SYNC"),
    ("INV_U32_BOUNDS", r"invariant INV_U32_BOUNDS"),
    ("INV_POINTER_OFFSET", r"invariant INV_POINTER_OFFSET"),
    # --- kernel-level load errors (BpfError, not VerifierReject) ---------
    ("KERNEL_SANITIZER_UNAVAILABLE", r"sanitizer not available"),
    ("KERNEL_LOAD_ERROR",
     r"only XDP programs attach to devices|no such tracepoint"
     r"|cannot attach to tracepoints|cannot test_run"),
)

REASON_RULES: tuple[tuple[str, re.Pattern], ...] = tuple(
    (code, re.compile(pattern)) for code, pattern in _RAW_RULES
)

#: Every known reason code, in rule order (plus the fallback).
REASON_CODES: tuple[str, ...] = tuple(
    dict.fromkeys(code for code, _ in _RAW_RULES)
) + (UNCLASSIFIED,)


def classify(message: str) -> str:
    """Map one rejection message to its reason code."""
    for code, pattern in REASON_RULES:
        if pattern.search(message):
            return code
    return UNCLASSIFIED


def classify_counter(messages) -> Counter:
    """Classify an iterable of messages into a reason-code counter."""
    counts: Counter = Counter()
    for message in messages:
        counts[classify(message)] += 1
    return counts
