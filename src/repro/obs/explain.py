"""Rejection explainer: decision events -> a human-readable "why".

"Characterizing and Bridging the Diagnostic Gap in eBPF Verifier
Rejections" (PAPERS.md) documents that the verifier log is the primary
debugging artifact for eBPF developers — and that reconstructing *why*
a program was rejected from it is the hard part.  This module does the
reconstruction mechanically from the flight recorder
(:mod:`repro.obs.events`): walk the ring backwards from the terminal
``verdict`` event, recover the failing instruction, the abstract
register state the last ``step`` snapshot carried, classify the
message into its taxonomy code, and name the verifier check family
that fired.

Entry points:

- :func:`explain_events` — pure function over a recorded event list
  (what the campaign layer uses at reject time);
- :func:`explain_program` — verify one program with a level-2 recorder
  installed and explain the rejection (``None`` if accepted);
- :func:`explain_selftest` / :func:`explain_iteration` — the
  ``repro explain`` CLI front ends: by selftest name, or by replaying
  a campaign iteration (deterministic given the campaign config).

Explanations are deterministic — built purely from deterministic
events plus the program text — so the first-per-reason explanation a
campaign records is worker-count invariant and lives in the
non-stripped part of the metrics artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.taxonomy import UNCLASSIFIED, classify

__all__ = [
    "TRAIL_LENGTH",
    "Explanation",
    "check_for_reason",
    "describe_accepted",
    "explain_events",
    "explain_program",
    "explain_selftest",
    "explain_iteration",
    "build_selftest",
    "replay_iteration",
]

#: How many trailing decision events an explanation keeps.
TRAIL_LENGTH = 12

#: Reason-code prefix -> the verifier check family that fired.  Ordered
#: longest-prefix-first so e.g. ``STACK_LIMIT`` (a path-exploration
#: bound) is not shadowed by ``STACK_ACCESS``'s family.
_CHECK_FAMILIES: tuple[tuple[str, str], ...] = (
    ("STRUCT_", "structural validation (Verifier._check_structure)"),
    ("RES_", "pseudo-instruction resolution (Verifier._resolve_pseudo)"),
    ("COMPLEXITY_LIMIT", "path-exploration budget (Verifier._do_check)"),
    ("PATH_FELL_OFF", "path-exploration bounds (Verifier._do_check)"),
    ("INFINITE_LOOP", "loop-header pruning (VerifierEnv.loop_header_seen)"),
    ("CALL_DEPTH", "call-depth limit (Verifier._do_call)"),
    ("STACK_LIMIT", "combined-stack limit (Verifier._do_call)"),
    ("UNINIT_REGISTER", "register read discipline (do_check operand checks)"),
    ("FRAME_POINTER_WRITE", "register write discipline (Verifier._step)"),
    ("POINTER_PARTIAL_STORE", "pointer spill discipline (Verifier._step)"),
    ("ATOMIC_POINTER_OPERAND", "atomic operand checks (Verifier._do_atomic)"),
    ("LEAK_POINTER_RETURN", "exit-value discipline (Verifier._do_exit)"),
    ("REFERENCE_LEAK", "reference tracking (Verifier._do_exit)"),
    ("REFERENCE_MISUSE", "reference tracking (calls.check_helper_call)"),
    ("LOCK_DISCIPLINE", "spin-lock discipline (calls / Verifier._do_exit)"),
    ("POINTER_ARITHMETIC", "pointer-arithmetic checks (checks.pointer_alu)"),
    ("ALU_INVALID", "ALU operand checks (checks.check_alu)"),
    ("STACK_ACCESS", "stack-access checks (checks._check_stack_access)"),
    ("CTX_ACCESS", "context-access checks (checks._check_ctx_access)"),
    ("MAP_VALUE_ACCESS", "map-value access checks (checks.check_mem_access)"),
    ("PACKET_ACCESS", "packet-access checks (checks.check_mem_access)"),
    ("BTF_ACCESS", "BTF object access checks (checks.check_mem_access)"),
    ("MEM_REGION_OOB", "memory-region bounds (checks.check_mem_access)"),
    ("NULL_POINTER_ACCESS",
     "nullable-pointer checks (checks.check_mem_access)"),
    ("MEM_ACCESS_BAD_POINTER",
     "memory-access pointer checks (checks.check_mem_access)"),
    ("HELPER_", "helper-argument checks (calls.check_helper_call)"),
    ("INV_", "abstract-state invariant sanitizer (verifier.sanity)"),
    ("KERNEL_", "kernel load path (outside the verifier)"),
)


def check_for_reason(reason: str) -> str:
    """The verifier check family a taxonomy reason code belongs to."""
    for prefix, family in _CHECK_FAMILIES:
        if reason.startswith(prefix):
            return family
    return "unknown check"


@dataclass
class Explanation:
    """A reconstructed answer to "why was this program rejected"."""

    program: str
    errno: int | None
    message: str
    #: taxonomy reason code (:mod:`repro.obs.taxonomy`)
    reason: str
    #: instruction index the verifier was at when it rejected
    insn_idx: int
    #: disassembly of that instruction (None when unavailable)
    insn_text: str | None
    #: the verifier check family that fired
    check: str
    #: abstract register state at the failing instruction (last
    #: level-2 ``step`` snapshot; empty for pre-``do_check`` rejects)
    registers: dict[str, str] = field(default_factory=dict)
    #: the last decision events before the verdict, oldest first
    trail: list[dict] = field(default_factory=list)
    #: root-cause definition site from the bound-provenance pass
    #: (:func:`repro.analysis.dataflow.bound_provenance`): the
    #: instruction that *produced* the offending value, which is
    #: usually earlier than the failing instruction the verifier
    #: reports.  ``None`` when no register could be attributed.
    root_cause: dict | None = None

    def to_dict(self) -> dict:
        return {
            "program": self.program,
            "errno": self.errno,
            "message": self.message,
            "reason": self.reason,
            "insn_idx": self.insn_idx,
            "insn_text": self.insn_text,
            "check": self.check,
            "registers": dict(self.registers),
            "trail": [dict(event) for event in self.trail],
            "root_cause": dict(self.root_cause) if self.root_cause else None,
        }

    def render(self) -> str:
        """Multi-line human-readable form (the ``repro explain`` output)."""
        lines = [
            f"program {self.program!r} rejected"
            + (f" (errno {self.errno})" if self.errno is not None else "")
            + f": {self.message}",
            f"  reason: {self.reason}",
            f"  check:  {self.check}",
            f"  at insn {self.insn_idx}"
            + (f": {self.insn_text}" if self.insn_text else ""),
        ]
        if self.root_cause:
            root_idx = self.root_cause.get("insn_idx", -1)
            reg = self.root_cause.get("reg")
            where = (
                "frame entry (register never written)"
                if root_idx < 0
                else f"insn {root_idx}: "
                     f"{self.root_cause.get('insn_text', '?')}"
            )
            lines.append(
                f"  root cause (r{reg} provenance): {where}"
            )
        if self.registers:
            lines.append("  registers at the failing instruction:")
            for name, value in self.registers.items():
                lines.append(f"    {name} = {value}")
        if self.trail:
            lines.append(f"  last {len(self.trail)} decisions:")
            for event in self.trail:
                lines.append("    " + _format_event(event))
        return "\n".join(lines)


def _format_event(event: dict) -> str:
    kind = event.get("kind", "?")
    seq = event.get("seq", -1)
    insn = event.get("insn", "")
    if kind == "begin":
        return f"[{seq:>4}] begin    {event.get('program')} " \
               f"({event.get('insns', 0)} insns)"
    if kind == "step":
        frames = event.get("frames")
        extra = f" frames={frames}" if frames is not None else ""
        return f"[{seq:>4}] step     insn {insn}{extra}"
    if kind == "prune":
        return (f"[{seq:>4}] prune    insn {insn} "
                f"{event.get('point')}:{event.get('outcome')}")
    if kind == "refine":
        return (f"[{seq:>4}] refine   insn {insn} {event.get('reg')} "
                f"{event.get('detail')}")
    if kind == "patch":
        return (f"[{seq:>4}] patch    insn {insn} {event.get('patch')}: "
                f"{event.get('detail')}")
    if kind == "verdict":
        return (f"[{seq:>4}] verdict  {event.get('verdict')} at insn {insn}: "
                f"{event.get('message', '')}")
    return f"[{seq:>4}] {kind}"


def explain_events(
    events: list[dict],
    *,
    message: str = "",
    errno: int | None = None,
    program: str | None = None,
    insns=None,
    trail: int = TRAIL_LENGTH,
) -> Explanation:
    """Reconstruct an explanation from a recorded event list.

    ``message``/``errno``/``program`` override what the terminal
    ``verdict`` event carries (the campaign passes the post-processed
    ``final_message`` form, which is what the taxonomy classifies).
    ``insns`` (the submitted instruction list) enables disassembly of
    the failing instruction.
    """
    verdict_event: dict | None = None
    for event in reversed(events):
        if event.get("kind") == "verdict" and event.get("verdict") != "accept":
            verdict_event = event
            break

    if not message and verdict_event is not None:
        message = verdict_event.get("message", "")
    if errno is None and verdict_event is not None:
        errno = verdict_event.get("errno")
    if program is None:
        program = (verdict_event or {}).get("program") or "?"

    reason = classify(message) if message else UNCLASSIFIED
    insn_idx = verdict_event.get("insn", -1) if verdict_event else -1
    if insn_idx < 0:
        insn_idx = 0

    # The offending abstract state: the last register snapshot recorded
    # before the verdict (level-2 step events carry one).
    registers: dict[str, str] = {}
    for event in reversed(events):
        if event.get("kind") == "step" and "regs" in event:
            registers = dict(event["regs"])
            break

    insn_text = None
    if insns is not None and 0 <= insn_idx < len(insns):
        from repro.ebpf.disasm import format_insn

        try:
            insn_text = format_insn(insns[insn_idx])
        except (KeyError, ValueError):
            # Structural rejections can point at undecodable opcodes —
            # exactly the instructions the disassembler has no name for.
            insn = insns[insn_idx]
            insn_text = (f"(undecodable: opcode=0x{insn.opcode:02x} "
                         f"dst={insn.dst} src={insn.src})")

    root_cause = None
    if insns is not None and 0 <= insn_idx < len(insns):
        root_cause = _root_cause(insns, insn_idx, message)

    return Explanation(
        program=program,
        errno=errno,
        message=message,
        reason=reason,
        insn_idx=insn_idx,
        insn_text=insn_text,
        check=check_for_reason(reason),
        registers=registers,
        trail=[dict(event) for event in events[-trail:]],
        root_cause=root_cause,
    )


def _root_cause(insns, insn_idx: int, message: str) -> dict | None:
    """Backfill the failing instruction with its root-cause def site.

    The verifier reports where it *noticed* the problem; the
    bound-provenance pass (:mod:`repro.analysis.dataflow`) walks the
    offending register's reaching definitions back to the instruction
    that produced the value.  Imported lazily: the analysis package
    pulls in campaign modules, and this module must stay importable
    from them.  Pure function of the program text — deterministic, so
    merged ``taxonomy.explanations`` stay worker-count invariant.
    """
    import re

    from repro.analysis.dataflow import ENTRY_DEF, bound_provenance, insn_uses

    # Which register is the complaint about?  The message names it for
    # the register-discipline family ("R3 !read_ok"); otherwise fall
    # back to the first register the failing instruction reads.
    reg = None
    match = re.search(r"\bR(\d+)\b", message)
    if match and 0 <= int(match.group(1)) <= 10:
        reg = int(match.group(1))
    if reg is None:
        uses = insn_uses(insns[insn_idx])
        if not uses:
            return None
        reg = uses[0]

    try:
        prov = bound_provenance(insns, insn_idx, reg)
    except (IndexError, ValueError):  # pragma: no cover - defensive
        return None
    if prov.root_idx == insn_idx:
        return None  # the failing instruction IS the producer

    insn_text = None
    if prov.root_idx != ENTRY_DEF:
        from repro.ebpf.disasm import format_insn

        try:
            insn_text = format_insn(insns[prov.root_idx])
        except (KeyError, ValueError):
            insn_text = (f"(undecodable: opcode="
                         f"0x{insns[prov.root_idx].opcode:02x})")
    return {
        "insn_idx": prov.root_idx,
        "reg": reg,
        "insn_text": insn_text,
        "chain": [list(link) for link in prov.chain],
    }


def explain_program(
    kernel, prog, *, sanitize: bool = False, check_invariants: bool = False
) -> Explanation | None:
    """Verify ``prog`` under a level-2 flight recorder and explain.

    Returns ``None`` when the program is accepted.  The current
    metrics/trace sinks are preserved — only the flight slot changes —
    and restored on exit.
    """
    from repro import obs
    from repro.errors import BpfError, InvariantViolation, VerifierReject
    from repro.obs.events import FlightRecorder
    from repro.verifier.log import final_message

    recorder = FlightRecorder(level=2)
    # Preserve the metrics/trace/profiler sinks — only the flight slot
    # changes for the duration of the explain.
    token = obs.install(obs.metrics(), obs.recorder(), recorder,
                        obs.profiler())
    try:
        kernel.prog_load(
            prog, sanitize=sanitize, check_invariants=check_invariants
        )
        return None
    except VerifierReject as reject:
        return explain_events(
            recorder.snapshot(),
            message=final_message(reject.log) or reject.message,
            errno=reject.errno,
            program=prog.name,
            insns=prog.insns,
        )
    except InvariantViolation as violation:
        return explain_events(
            recorder.snapshot(),
            message=str(violation),
            program=prog.name,
            insns=prog.insns,
        )
    except BpfError as error:
        return explain_events(
            recorder.snapshot(),
            message=error.message,
            errno=error.errno,
            program=prog.name,
            insns=prog.insns,
        )
    finally:
        obs.restore(token)


def build_selftest(name: str, kernel):
    """Build one selftest-corpus program by name on ``kernel``.

    Raises ``KeyError`` for an unknown name.
    """
    from repro.testsuite import all_selftests_extended

    for selftest in all_selftests_extended():
        if selftest.name == name:
            return selftest.build(kernel)
    raise KeyError(f"no selftest named {name!r}")


def explain_selftest(
    name: str, kernel_version: str = "patched", sanitize: bool = False
) -> Explanation | None:
    """Explain one selftest-corpus program by name.

    Raises ``KeyError`` for an unknown name; returns ``None`` when the
    program is accepted on the given kernel profile.
    """
    from repro.kernel.config import PROFILES
    from repro.kernel.syscall import Kernel

    kernel = Kernel(PROFILES[kernel_version]())
    prog = build_selftest(name, kernel)
    return explain_program(kernel, prog, sanitize=sanitize)


def replay_iteration(config, iteration: int):
    """Re-generate campaign iteration ``iteration`` deterministically.

    Campaign generation is a deterministic stream: reproducing
    iteration *N* requires replaying iterations ``0..N-1`` first (they
    advance the RNG and may have grown the mutation corpus).  This runs
    a campaign with ``budget=N`` — cheap at explain-time scales, and
    the verdict cache keeps the replay fast — then generates program
    *N*.  Returns ``(campaign, kernel, gp, prog)``.
    """
    from dataclasses import replace

    from repro.ebpf.program import BpfProgram
    from repro.fuzz.campaign import Campaign
    from repro.kernel.syscall import Kernel

    replay_config = replace(config, budget=iteration, flight=False,
                            profile=False, trace_path=None,
                            heartbeat_dir=None)
    campaign = Campaign(replay_config)
    if iteration > 0:
        campaign.run()
    kernel = Kernel(campaign.kernel_config)
    gp = campaign._next_program(kernel)
    prog = BpfProgram(
        insns=list(gp.insns),
        prog_type=gp.prog_type,
        name=f"{gp.origin}_{iteration}",
        offload_dev=gp.offload_dev,
    )
    return campaign, kernel, gp, prog


def explain_iteration(config, iteration: int) -> Explanation | None:
    """Re-generate campaign iteration ``iteration`` and explain it."""
    _, kernel, _, prog = replay_iteration(config, iteration)
    sanitize = config.sanitize and kernel.config.sanitizer_available
    return explain_program(kernel, prog, sanitize=sanitize)


def describe_accepted(
    subject: str, kernel_version: str, *, prog=None, gp=None
) -> str:
    """The ``repro explain`` summary for an accepted program.

    An acceptance has no rejection trail to reconstruct, so the useful
    output is what the verifier saw: program shape, frame composition,
    instruction count.  Pure string builder — callers verify first.
    """
    lines = [
        f"verdict: accepted — {subject} passed the {kernel_version} "
        "verifier, nothing to explain"
    ]
    if prog is not None:
        real = sum(1 for insn in prog.insns if not insn.is_filler())
        lines.append(
            f"  program: {prog.name} type={prog.prog_type.name} "
            f"insns={real}"
        )
    if gp is not None:
        lines.append(f"  origin:  {gp.origin}")
        kinds = sorted(set(gp.frame_kinds)) if gp.frame_kinds else []
        if kinds:
            lines.append("  frames:  " + ", ".join(kinds))
        else:
            lines.append("  frames:  (unstructured)")
    return "\n".join(lines)
