"""``repro.obs`` — campaign observability: metrics, traces, taxonomy.

The subsystem has three layers (see DESIGN.md "Observability"):

- :mod:`repro.obs.metrics` — a deterministic metrics registry
  (counters / gauges / fixed-bucket histograms, wall-clock values
  segregated) whose snapshots merge worker-count-invariantly;
- :mod:`repro.obs.trace` — JSONL trace events and spans with a no-op
  recorder as the disabled default, plus :class:`PhaseClock`, the
  single phase timer the campaign loop runs on;
- :mod:`repro.obs.taxonomy` — stable reason codes for every verifier
  rejection;
- :mod:`repro.obs.events` — the verifier flight recorder: a bounded
  ring of typed decision events per verification, spilled on
  interesting outcomes and consumed by :mod:`repro.obs.explain`;
- :mod:`repro.obs.profile` — the hierarchical verifier profiler:
  deterministic frame/op counts with wall-segregated self/cumulative
  times, rendered by ``repro profile``;
- :mod:`repro.obs.frontier` — coverage-frontier attribution and
  plateau detection over campaign iterations.

Instrumented components (verifier, generator, sanitizer, interpreter,
oracle) do not take recorder arguments — they read the
**process-current sinks** held here.  A :class:`~repro.fuzz.campaign.
Campaign` installs its per-shard registry/recorder at the top of
``run()`` and restores the previous sinks on exit.  Shards either run
sequentially in-process or one-per-fork, so a process-global holder is
race-free and keeps the per-shard attribution exact.  Outside a
campaign the sinks are no-ops: the disabled cost on a hot path is one
module-attribute read and an empty method call.
"""

from __future__ import annotations

from repro.obs.events import (
    NULL_FLIGHT,
    FlightRecorder,
    NullFlightRecorder,
)
from repro.obs.metrics import (
    MetricsRegistry,
    NullMetrics,
    merge_snapshots,
    strip_wall_fields,
)
from repro.obs.profile import (
    NULL_PROFILER,
    NullProfiler,
    VerifierProfiler,
)
from repro.obs.taxonomy import UNCLASSIFIED, classify
from repro.obs.trace import (
    NULL_RECORDER,
    JsonlTraceRecorder,
    NullRecorder,
    PhaseClock,
)

__all__ = [
    "MetricsRegistry",
    "NullMetrics",
    "NullRecorder",
    "JsonlTraceRecorder",
    "FlightRecorder",
    "NullFlightRecorder",
    "VerifierProfiler",
    "NullProfiler",
    "PhaseClock",
    "NULL_RECORDER",
    "NULL_FLIGHT",
    "NULL_PROFILER",
    "UNCLASSIFIED",
    "classify",
    "merge_snapshots",
    "strip_wall_fields",
    "metrics",
    "recorder",
    "flight",
    "profiler",
    "install",
    "restore",
]

_NULL_METRICS = NullMetrics()

_current_metrics = _NULL_METRICS
_current_recorder = NULL_RECORDER
_current_flight = NULL_FLIGHT
_current_profiler = NULL_PROFILER


def metrics():
    """The process-current metrics sink (a no-op outside campaigns)."""
    return _current_metrics


def recorder():
    """The process-current trace recorder (``enabled`` is the gate)."""
    return _current_recorder


def flight():
    """The process-current flight recorder (``enabled`` is the gate)."""
    return _current_flight


def profiler():
    """The process-current verifier profiler (``enabled`` is the gate)."""
    return _current_profiler


def install(
    registry=None,
    trace_recorder=None,
    flight_recorder=None,
    profiler=None,
) -> tuple:
    """Make the given sinks current; returns the previous sinks.

    Pass the returned token to :func:`restore` (in a ``finally``) so
    nested campaigns — e.g. the oracle's differential replay spinning
    up inner kernels — compose instead of clobbering each other.  The
    token is opaque; callers must not depend on its shape.
    """
    global _current_metrics, _current_recorder, _current_flight
    global _current_profiler
    token = (
        _current_metrics,
        _current_recorder,
        _current_flight,
        _current_profiler,
    )
    _current_metrics = registry if registry is not None else _NULL_METRICS
    _current_recorder = (
        trace_recorder if trace_recorder is not None else NULL_RECORDER
    )
    _current_flight = (
        flight_recorder if flight_recorder is not None else NULL_FLIGHT
    )
    _current_profiler = profiler if profiler is not None else NULL_PROFILER
    return token


def restore(token: tuple) -> None:
    """Reinstate the sinks that were current before :func:`install`."""
    global _current_metrics, _current_recorder, _current_flight
    global _current_profiler
    _current_metrics, _current_recorder = token[0], token[1]
    # Tokens minted before the flight recorder / profiler existed are
    # shorter tuples; missing slots restore to the null sinks.
    _current_flight = token[2] if len(token) > 2 else NULL_FLIGHT
    _current_profiler = token[3] if len(token) > 3 else NULL_PROFILER
