#!/usr/bin/env python3
"""A realistic XDP packet-filter workload on the simulated kernel.

This is the data-centre use case the paper's introduction motivates:
an XDP program that parses the packet with verifier-checked direct
packet access (``data``/``data_end`` bounds proofs) and counts traffic
in a map that user space reads out.

The program:

- loads ``data`` and ``data_end`` from the XDP context,
- bounds-checks the 14-byte Ethernet header,
- reads the EtherType, bumps a per-protocol counter in an array map,
- returns XDP_PASS.

Run:  python examples/packet_filter.py
"""

from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf import asm
from repro.ebpf.disasm import format_program
from repro.ebpf.maps import MapType
from repro.ebpf.opcodes import AluOp, AtomicOp, JmpOp, Reg, Size
from repro.ebpf.program import BpfProgram, ProgType
from repro.runtime.executor import Executor

XDP_PASS = 2

# xdp_md field offsets
XDP_DATA = 0
XDP_DATA_END = 4


def build_filter(stats_fd: int) -> BpfProgram:
    return BpfProgram(
        insns=[
            # r2 = data, r3 = data_end
            asm.ldx_mem(Size.W, Reg.R2, Reg.R1, XDP_DATA),
            asm.ldx_mem(Size.W, Reg.R3, Reg.R1, XDP_DATA_END),
            # bounds proof: eth header is 14 bytes
            asm.mov64_reg(Reg.R4, Reg.R2),
            asm.alu64_imm(AluOp.ADD, Reg.R4, 14),
            asm.jmp_reg(JmpOp.JGT, Reg.R4, Reg.R3, 11),  # short packet: pass
            # r5 = EtherType (offset 12, big-endian u16)
            asm.ldx_mem(Size.H, Reg.R5, Reg.R2, 12),
            asm.endian(Reg.R5, 16, to_big=True),
            # slot = (ethertype == 0x0800 IPv4) ? 0 : 1
            asm.mov64_imm(Reg.R6, 1),
            asm.jmp_imm(JmpOp.JNE, Reg.R5, 0x0800, 1),
            asm.mov64_imm(Reg.R6, 0),
            # counter address: direct array value + slot*8
            asm.alu64_imm(AluOp.LSH, Reg.R6, 3),
            *asm.ld_map_value(Reg.R7, stats_fd, 0),
            asm.alu64_reg(AluOp.ADD, Reg.R7, Reg.R6),
            asm.mov64_imm(Reg.R8, 1),
            asm.atomic_op(Size.DW, AtomicOp.ADD, Reg.R7, Reg.R8, 0),
            asm.mov64_imm(Reg.R0, XDP_PASS),
            asm.exit_insn(),
        ],
        prog_type=ProgType.XDP,
        name="xdp_proto_counter",
    )


def main() -> None:
    kernel = Kernel(PROFILES["patched"]())
    # Array map: slot 0 = IPv4 packets, slot 1 = everything else.
    # One 16-byte value holding both 8-byte counters.
    stats_fd = kernel.map_create(MapType.ARRAY, 4, 16, 1)

    prog = build_filter(stats_fd)
    print("=== XDP filter ===")
    print(format_program(prog.insns))

    verified = kernel.prog_load(prog, sanitize=True)
    print(f"\nverifier accepted it "
          f"({verified.stats['insns_processed']} insns processed, "
          f"{len(verified.xlated)} xlated insns)")

    kernel.prog_attach_xdp(verified)
    executor = Executor(kernel)
    n_packets = 25
    for _ in range(n_packets):
        result = executor.run_xdp_via_dispatcher()
        assert result.report is None
        assert result.r0 == XDP_PASS

    raw = kernel.map_lookup(stats_fd, (0).to_bytes(4, "little"))
    ipv4 = int.from_bytes(raw[0:8], "little")
    other = int.from_bytes(raw[8:16], "little")
    print(f"\nafter {n_packets} packets: ipv4={ipv4} other={other}")
    assert ipv4 + other == n_packets


if __name__ == "__main__":
    main()
