#!/usr/bin/env python3
"""Reproducing CVE-2022-23222 (Listing 1 of the paper).

The vulnerability: pre-fix kernels allowed ALU on nullable map-value
pointers (``PTR_TO_MAP_VALUE_OR_NULL``).  Arithmetic performed *before*
the null check offsets the pointer, so the subsequent ``== 0`` test no
longer detects NULL — the program dereferences an attacker-controlled
near-null address.

This script shows all three behaviours the paper relies on:

1. a fixed kernel rejects the program at load time;
2. a flawed (v5.15) kernel loads it, and executing the raw (JIT-style)
   program performs the bad store;
3. with BVF's sanitation the dispatched ``bpf_asan_store64`` captures
   the invalid access — indicator #1 firing.

Run:  python examples/find_cve_2022_23222.py
"""

from repro.errors import VerifierReject
from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf import asm
from repro.ebpf.disasm import format_program
from repro.ebpf.helpers import HelperId
from repro.ebpf.maps import MapType
from repro.ebpf.opcodes import AluOp, JmpOp, Reg, Size
from repro.ebpf.program import BpfProgram
from repro.runtime.executor import Executor


def build_exploit(fd: int) -> BpfProgram:
    """The Listing-1 program, slightly simplified."""
    return BpfProgram(
        insns=[
            asm.st_mem(Size.DW, Reg.R10, -8, 0),
            *asm.ld_map_fd(Reg.R1, fd),
            asm.mov64_reg(Reg.R2, Reg.R10),
            asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
            asm.call_helper(HelperId.MAP_LOOKUP_ELEM),   # R0 = value-or-null
            asm.mov64_reg(Reg.R1, Reg.R0),
            asm.alu64_imm(AluOp.ADD, Reg.R1, 8),          # ALU on OR_NULL (!)
            asm.jmp_imm(JmpOp.JEQ, Reg.R1, 0, 2),         # "null check" sees 8
            asm.st_mem(Size.DW, Reg.R1, 0, 0x42),         # write via near-null
            asm.ja(0),
            asm.mov64_imm(Reg.R0, 0),
            asm.exit_insn(),
        ],
        name="cve-2022-23222",
    )


def main() -> None:
    print("=== the exploit program ===")
    demo_kernel = Kernel(PROFILES["v5.15"]())
    fd = demo_kernel.map_create(MapType.HASH, 8, 16, 4)
    print(format_program(build_exploit(fd).insns))

    # 1. A patched kernel refuses it outright.
    patched = Kernel(PROFILES["patched"]())
    fd_p = patched.map_create(MapType.HASH, 8, 16, 4)
    try:
        patched.prog_load(build_exploit(fd_p))
        raise SystemExit("BUG: patched kernel accepted the exploit")
    except VerifierReject as exc:
        print(f"\npatched kernel rejects: {exc.message}")

    # 2. v5.15 loads it: the verifier flaw admits the ALU.
    vulnerable = Kernel(PROFILES["v5.15"]())
    fd_v = vulnerable.map_create(MapType.HASH, 8, 16, 4)
    verified = vulnerable.prog_load(build_exploit(fd_v), sanitize=False)
    print(f"\nv5.15 LOADS the program ({len(verified.xlated)} insns)")

    result = Executor(vulnerable).run(verified)
    print(f"raw (JIT-style) execution report: {result.report!r}")

    # 3. The same program under BVF's sanitation: indicator #1 fires.
    vulnerable2 = Kernel(PROFILES["v5.15"]())
    fd_s = vulnerable2.map_create(MapType.HASH, 8, 16, 4)
    sanitized = vulnerable2.prog_load(build_exploit(fd_s), sanitize=True)
    result = Executor(vulnerable2).run(sanitized)
    print(f"\nsanitized execution report:\n  {result.report}")
    print(
        f"  -> invalid {'write' if result.report.is_write else 'read'} of "
        f"{result.report.size} bytes at address {result.report.address:#x}"
    )
    print("\nIndicator #1 captured: this is a verifier correctness bug.")


if __name__ == "__main__":
    main()
