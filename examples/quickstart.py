#!/usr/bin/env python3
"""Quickstart: load, sanitize, and execute an eBPF program.

Walks through the full pipeline on a simulated kernel:

1. create a map,
2. assemble a program (the classic map-lookup pattern from Table 1 of
   the paper),
3. load it through the verifier with BVF's sanitation enabled,
4. execute it and inspect the result.

Run:  python examples/quickstart.py
"""

from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf import asm
from repro.ebpf.disasm import format_program
from repro.ebpf.helpers import HelperId
from repro.ebpf.maps import MapType
from repro.ebpf.opcodes import AluOp, JmpOp, Reg, Size
from repro.ebpf.program import BpfProgram, ProgType
from repro.runtime.executor import Executor


def main() -> None:
    # A fully-patched simulated kernel ("one VM boot").
    kernel = Kernel(PROFILES["patched"]())

    # User space creates a hash map: 8-byte keys, 8-byte values.
    fd = kernel.map_create(MapType.HASH, key_size=8, value_size=8,
                           max_entries=16)
    kernel.map_update(fd, key=(1).to_bytes(8, "little"),
                      value=(42).to_bytes(8, "little"))

    # The program: look up key 1 and return the stored value.
    prog = BpfProgram(
        insns=[
            asm.st_mem(Size.DW, Reg.R10, -8, 1),          # key = 1 on stack
            *asm.ld_map_fd(Reg.R1, fd),                    # arg1: the map
            asm.mov64_reg(Reg.R2, Reg.R10),                # arg2: &key
            asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
            asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
            asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 2),          # null check
            asm.mov64_imm(Reg.R0, 0),
            asm.exit_insn(),
            asm.ldx_mem(Size.DW, Reg.R0, Reg.R0, 0),       # deref value
            asm.exit_insn(),
        ],
        prog_type=ProgType.SOCKET_FILTER,
        name="quickstart",
    )

    print("=== source program ===")
    print(format_program(prog.insns))

    # BPF_PROG_LOAD with BVF's memory-access sanitation enabled.
    verified = kernel.prog_load(prog, sanitize=True)
    print("\n=== verifier statistics ===")
    for key, value in verified.stats.items():
        print(f"  {key:>16}: {value}")

    print("\n=== xlated (rewritten + sanitized) program ===")
    print(format_program(verified.xlated))

    result = Executor(kernel).run(verified)
    print("\n=== execution ===")
    print(f"  R0 (return value): {result.r0}")
    print(f"  instructions executed: {result.stats.insns_executed}")
    print(f"  sanitizer checks performed: {result.stats.sanitizer_checks}")
    print(f"  kernel report: {result.report}")
    assert result.r0 == 42


if __name__ == "__main__":
    main()
