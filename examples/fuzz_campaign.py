#!/usr/bin/env python3
"""Run a BVF fuzzing campaign against the flawed ``bpf-next`` kernel.

This is the paper's headline experiment in miniature: structured
generation, verifier coverage feedback, sanitized execution, and the
two-indicator oracle, reported as a Table-2-style bug table.

Run:  python examples/fuzz_campaign.py [budget] [seed]
"""

import sys

from repro.analysis.reports import render_bug_table
from repro.fuzz.campaign import Campaign, CampaignConfig


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 42

    config = CampaignConfig(
        tool="bvf",
        kernel_version="bpf-next",
        budget=budget,
        seed=seed,
        sanitize=True,
    )
    print(f"fuzzing bpf-next with BVF: {budget} programs, seed {seed} ...")
    result = Campaign(config).run()

    print(f"\ngenerated:        {result.generated}")
    print(f"accepted:         {result.accepted} "
          f"({result.acceptance_rate:.1%} acceptance)")
    print(f"verifier coverage: {result.final_coverage} edges")
    print(f"corpus size:      {result.corpus_size}")
    rejects = ", ".join(
        f"errno {e}: {n}" for e, n in result.reject_errnos.most_common()
    )
    print(f"rejections:       {rejects}")

    print("\n=== bugs found (vs. the paper's Table 2) ===")
    print(render_bug_table(result.findings))

    print("\nper-finding detail:")
    for bug_id, finding in sorted(result.findings.items()):
        print(f"  {bug_id}")
        print(f"      indicator: {finding.indicator}")
        print(f"      captured by: {finding.report_kind}")
        print(f"      first seen: program #{finding.iteration}")


if __name__ == "__main__":
    main()
