#!/usr/bin/env python3
"""Protocol dispatch via tail calls — the classic eBPF program chain.

Production packet pipelines split parsing across programs: an entry
program classifies the packet and ``bpf_tail_call``s into a
per-protocol handler stored in a prog array.  This example builds that
pipeline on the simulated kernel:

    entry ──tail_call──▶ ipv4 handler   (EtherType 0x0800, slot 0)
          └─tail_call──▶ other handler  (anything else,    slot 1)

Each handler writes its verdict into a shared array map so user space
can see who ran.

Run:  python examples/tail_call_dispatch.py
"""

from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf import asm
from repro.ebpf.helpers import HelperId
from repro.ebpf.maps import MapType
from repro.ebpf.opcodes import AluOp, AtomicOp, JmpOp, Reg, Size
from repro.ebpf.program import BpfProgram, ProgType
from repro.runtime.executor import Executor

XDP_PASS = 2
XDP_DROP = 1


def handler(stats_fd: int, slot: int, verdict: int) -> BpfProgram:
    """A per-protocol handler: bump its counter, return its verdict."""
    return BpfProgram(
        insns=[
            *asm.ld_map_value(Reg.R6, stats_fd, slot * 8),
            asm.mov64_imm(Reg.R1, 1),
            asm.atomic_op(Size.DW, AtomicOp.ADD, Reg.R6, Reg.R1, 0),
            asm.mov64_imm(Reg.R0, verdict),
            asm.exit_insn(),
        ],
        prog_type=ProgType.XDP,
        name=f"handler_{slot}",
    )


def entry(prog_array_fd: int) -> BpfProgram:
    """Classify by EtherType and dispatch into the prog array."""
    return BpfProgram(
        insns=[
            asm.mov64_reg(Reg.R6, Reg.R1),           # keep ctx
            # parse the Ethernet header (verifier-checked bounds)
            asm.ldx_mem(Size.W, Reg.R2, Reg.R1, 0),   # data
            asm.ldx_mem(Size.W, Reg.R3, Reg.R1, 4),   # data_end
            asm.mov64_reg(Reg.R4, Reg.R2),
            asm.alu64_imm(AluOp.ADD, Reg.R4, 14),
            asm.jmp_reg(JmpOp.JGT, Reg.R4, Reg.R3, 10),  # short: pass
            asm.ldx_mem(Size.H, Reg.R5, Reg.R2, 12),
            asm.endian(Reg.R5, 16, to_big=True),
            # slot = (ethertype == IPv4) ? 0 : 1
            asm.mov64_imm(Reg.R7, 1),
            asm.jmp_imm(JmpOp.JNE, Reg.R5, 0x0800, 1),
            asm.mov64_imm(Reg.R7, 0),
            asm.mov64_reg(Reg.R1, Reg.R6),
            *asm.ld_map_fd(Reg.R2, prog_array_fd),
            asm.mov64_reg(Reg.R3, Reg.R7),
            asm.call_helper(HelperId.TAIL_CALL),
            # only reached if the slot is empty
            asm.mov64_imm(Reg.R0, XDP_PASS),
            asm.exit_insn(),
        ],
        prog_type=ProgType.XDP,
        name="dispatch_entry",
    )


def main() -> None:
    kernel = Kernel(PROFILES["patched"]())
    stats_fd = kernel.map_create(MapType.ARRAY, 4, 16, 1)
    prog_array_fd = kernel.map_create(MapType.PROG_ARRAY, 4, 4, 2)

    ipv4 = kernel.prog_load(handler(stats_fd, slot=0, verdict=XDP_PASS),
                            sanitize=True)
    other = kernel.prog_load(handler(stats_fd, slot=1, verdict=XDP_DROP),
                             sanitize=True)
    main_prog = kernel.prog_load(entry(prog_array_fd), sanitize=True)

    # User space wires the dispatch table.
    kernel.map_update(prog_array_fd, (0).to_bytes(4, "little"),
                      ipv4.fd.to_bytes(4, "little"))
    kernel.map_update(prog_array_fd, (1).to_bytes(4, "little"),
                      other.fd.to_bytes(4, "little"))
    kernel.prog_attach_xdp(main_prog)

    executor = Executor(kernel)
    verdicts = []
    for _ in range(10):
        result = executor.run_xdp_via_dispatcher()
        assert result.report is None
        verdicts.append(result.r0)

    raw = kernel.map_lookup(stats_fd, (0).to_bytes(4, "little"))
    ipv4_hits = int.from_bytes(raw[0:8], "little")
    other_hits = int.from_bytes(raw[8:16], "little")
    print(f"verdicts: {verdicts}")
    print(f"ipv4 handler ran {ipv4_hits} times, other handler {other_hits}")
    assert ipv4_hits == 10  # the simulated packets are IPv4
    assert all(v == XDP_PASS for v in verdicts)
    print("tail-call dispatch chain works")


if __name__ == "__main__":
    main()
