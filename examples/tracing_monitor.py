#!/usr/bin/env python3
"""A kernel-tracing workload: kprobe program + BTF task access.

The second intro use case of the paper — kernel probing / security
monitoring.  A kprobe program attached to the ``sys_enter`` tracepoint
reads the current task through a typed BTF pointer (fault-handled
PROBE_MEM loads) and records the pid and a syscall counter in a map.

Run:  python examples/tracing_monitor.py
"""

from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.ebpf import asm
from repro.ebpf.disasm import format_program
from repro.ebpf.helpers import HelperId
from repro.ebpf.maps import MapType
from repro.ebpf.opcodes import AluOp, AtomicOp, JmpOp, Reg, Size
from repro.ebpf.program import BpfProgram, ProgType
from repro.runtime.executor import Executor

TASK_PID_OFFSET = 32


def build_monitor(events_fd: int) -> BpfProgram:
    return BpfProgram(
        insns=[
            # r6 = current task (PTR_TO_BTF_ID: typed, fault-handled)
            asm.call_helper(HelperId.GET_CURRENT_TASK_BTF),
            asm.mov64_reg(Reg.R6, Reg.R0),
            # r7 = task->pid
            asm.ldx_mem(Size.W, Reg.R7, Reg.R6, TASK_PID_OFFSET),
            # key on the stack = pid
            asm.stx_mem(Size.DW, Reg.R10, Reg.R7, -8),
            # lookup; insert on miss
            *asm.ld_map_fd(Reg.R1, events_fd),
            asm.mov64_reg(Reg.R2, Reg.R10),
            asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
            asm.call_helper(HelperId.MAP_LOOKUP_ELEM),
            asm.jmp_imm(JmpOp.JNE, Reg.R0, 0, 11),
            # miss: value = 0, bpf_map_update_elem(map, &key, &val, ANY)
            asm.st_mem(Size.DW, Reg.R10, -16, 0),
            *asm.ld_map_fd(Reg.R1, events_fd),
            asm.mov64_reg(Reg.R2, Reg.R10),
            asm.alu64_imm(AluOp.ADD, Reg.R2, -8),
            asm.mov64_reg(Reg.R3, Reg.R10),
            asm.alu64_imm(AluOp.ADD, Reg.R3, -16),
            asm.mov64_imm(Reg.R4, 0),
            asm.call_helper(HelperId.MAP_UPDATE_ELEM),
            asm.mov64_imm(Reg.R0, 0),
            asm.exit_insn(),
            # hit: atomically bump the counter
            asm.mov64_imm(Reg.R1, 1),
            asm.atomic_op(Size.DW, AtomicOp.ADD, Reg.R0, Reg.R1, 0),
            asm.mov64_imm(Reg.R0, 0),
            asm.exit_insn(),
        ],
        prog_type=ProgType.KPROBE,
        name="syscall_monitor",
    )


def main() -> None:
    kernel = Kernel(PROFILES["patched"]())
    events_fd = kernel.map_create(MapType.HASH, 8, 8, 64)

    prog = build_monitor(events_fd)
    print("=== tracing monitor ===")
    print(format_program(prog.insns))

    verified = kernel.prog_load(prog, sanitize=True)
    print(f"\nPROBE_MEM (fault-handled BTF) loads: "
          f"{sorted(verified.probe_mem)}")

    kernel.prog_attach_tracepoint(verified, "sys_enter")
    executor = Executor(kernel)

    n_events = 10
    for _ in range(n_events):
        result = executor.trigger_tracepoint("sys_enter")
        assert result.report is None

    # User space reads the per-pid counters back out.
    print("\nper-pid syscall counts:")
    cursor = None
    while True:
        try:
            cursor = kernel.map_get_next_key(events_fd, cursor)
        except Exception:
            break
        pid = int.from_bytes(cursor, "little")
        count = int.from_bytes(kernel.map_lookup(events_fd, cursor), "little")
        print(f"  pid {pid}: {count + 1} events")
        assert count + 1 == n_events


if __name__ == "__main__":
    main()
