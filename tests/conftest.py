"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.fuzz.rng import FuzzRng


@pytest.fixture
def patched_kernel() -> Kernel:
    """A kernel with every feature enabled and every bug fixed."""
    return Kernel(PROFILES["patched"]())


@pytest.fixture
def bpf_next_kernel() -> Kernel:
    """The bpf-next profile: every feature, every injected bug."""
    return Kernel(PROFILES["bpf-next"]())


@pytest.fixture
def v5_15_kernel() -> Kernel:
    return Kernel(PROFILES["v5.15"]())


@pytest.fixture
def v6_1_kernel() -> Kernel:
    return Kernel(PROFILES["v6.1"]())


@pytest.fixture
def rng() -> FuzzRng:
    return FuzzRng(1234)
