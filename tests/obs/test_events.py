"""Flight recorder unit tests: ring buffer, levels, null sink."""

import pytest

from repro import obs
from repro.obs.events import (
    DEFAULT_CAPACITY,
    NULL_FLIGHT,
    FlightRecorder,
    NullFlightRecorder,
)


class TestNullFlightRecorder:
    def test_disabled_and_silent(self):
        assert NULL_FLIGHT.enabled is False
        assert NULL_FLIGHT.level == 0
        NULL_FLIGHT.begin("p", 3)
        NULL_FLIGHT.step(0, None)
        NULL_FLIGHT.prune(1, "prune", "miss")
        NULL_FLIGHT.refine(1, "R0", "detail")
        NULL_FLIGHT.patch(1, "probe_mem", "detail")
        NULL_FLIGHT.verdict("reject", errno=13, insn=1, message="m")
        assert NULL_FLIGHT.snapshot() == []

    def test_enabled_is_class_attribute(self):
        # The hot path reads `.enabled` on the shared instance; a class
        # attribute keeps the disabled check one dict lookup, no slots.
        assert NullFlightRecorder.enabled is False
        assert NULL_FLIGHT.__slots__ == ()


class TestFlightRecorder:
    def test_begin_resets_ring_and_seq(self):
        fr = FlightRecorder(level=1)
        fr.begin("first", 2)
        fr.step(0, None)
        fr.begin("second", 5)
        events = fr.snapshot()
        assert [e["kind"] for e in events] == ["begin"]
        assert events[0]["program"] == "second"
        assert events[0]["insns"] == 5
        assert events[0]["seq"] == 0

    def test_sequence_is_deterministic_and_monotonic(self):
        fr = FlightRecorder()
        fr.begin("p", 1)
        fr.prune(3, "prune", "miss")
        fr.refine(3, "R1", "ADD -> 7")
        fr.verdict("accept", insn=3)
        seqs = [e["seq"] for e in fr.snapshot()]
        assert seqs == list(range(len(seqs)))
        # No wall-clock fields anywhere: determinism is what makes the
        # first-per-reason explanation worker-count invariant.
        for event in fr.snapshot():
            assert "ts" not in event
            assert "time" not in event

    def test_ring_is_bounded(self):
        fr = FlightRecorder(capacity=4, level=1)
        fr.begin("p", 100)
        for i in range(100):
            fr.step(i, None)
        events = fr.snapshot()
        assert len(events) == 4
        # Oldest events fall off; seq keeps counting.
        assert [e["insn"] for e in events] == [96, 97, 98, 99]
        assert events[-1]["seq"] == 100  # begin + 100 steps

    def test_default_capacity(self):
        fr = FlightRecorder(level=1)
        fr.begin("p", 1)
        for i in range(2 * DEFAULT_CAPACITY):
            fr.step(i, None)
        assert len(fr.snapshot()) == DEFAULT_CAPACITY

    def test_level_1_omits_register_snapshots(self):
        fr = FlightRecorder(level=1)
        fr.begin("p", 1)
        fr.step(0, None)
        (begin, step) = fr.snapshot()
        assert "regs" not in step

    def test_snapshot_returns_copies(self):
        fr = FlightRecorder()
        fr.begin("p", 1)
        snap = fr.snapshot()
        snap[0]["kind"] = "mutated"
        assert fr.snapshot()[0]["kind"] == "begin"

    def test_event_shapes(self):
        fr = FlightRecorder(level=1)
        fr.begin("p", 9)
        fr.prune(4, "loop", "scan-hit")
        fr.refine(5, "R2", "JGT taken:6 else:None")
        fr.patch(6, "alu_limit", "limit=3 op=ADD")
        fr.verdict("reject", errno=13, insn=6, message="bad access")
        by_kind = {e["kind"]: e for e in fr.snapshot()}
        assert by_kind["prune"] == {
            "kind": "prune", "seq": 1, "insn": 4,
            "point": "loop", "outcome": "scan-hit",
        }
        assert by_kind["refine"]["reg"] == "R2"
        assert by_kind["patch"]["patch"] == "alu_limit"
        assert by_kind["verdict"]["errno"] == 13
        assert by_kind["verdict"]["insn"] == 6
        assert by_kind["verdict"]["program"] == "p"


class TestObsHolder:
    def test_default_flight_is_null(self):
        assert obs.flight() is NULL_FLIGHT

    def test_install_and_restore_flight(self):
        fr = FlightRecorder()
        token = obs.install(obs.metrics(), obs.recorder(), fr)
        try:
            assert obs.flight() is fr
        finally:
            obs.restore(token)
        assert obs.flight() is NULL_FLIGHT

    def test_restore_tolerates_legacy_two_tuple_token(self):
        fr = FlightRecorder()
        obs.install(obs.metrics(), obs.recorder(), fr)
        # Tokens minted before the flight slot existed are two-tuples;
        # restoring one must still clear the flight slot.
        obs.restore((obs.metrics(), obs.recorder()))
        assert obs.flight() is NULL_FLIGHT


class TestVerifierIntegration:
    def _verify(self, recorder, sanitize=False):
        from repro.errors import BpfError, VerifierReject
        from repro.kernel.config import PROFILES
        from repro.kernel.syscall import Kernel
        from repro.testsuite import all_selftests_extended

        selftest = next(iter(all_selftests_extended()))
        kernel = Kernel(PROFILES["patched"]())
        prog = selftest.build(kernel)
        token = obs.install(obs.metrics(), obs.recorder(), recorder)
        try:
            kernel.prog_load(prog, sanitize=sanitize)
        except (VerifierReject, BpfError):
            pass
        finally:
            obs.restore(token)

    def test_verifier_emits_begin_steps_verdict(self):
        fr = FlightRecorder(level=2)
        self._verify(fr)
        kinds = [e["kind"] for e in fr.snapshot()]
        assert kinds[0] == "begin"
        assert "step" in kinds
        assert kinds[-1] == "verdict"

    def test_level2_steps_carry_register_summaries(self):
        fr = FlightRecorder(level=2)
        self._verify(fr)
        steps = [e for e in fr.snapshot() if e["kind"] == "step"]
        assert steps
        assert all("regs" in s for s in steps)
        # R10 (frame pointer) is always initialised.
        assert any("R10" in s["regs"] for s in steps)

    def test_level1_steps_skip_register_summaries(self):
        fr = FlightRecorder(level=1)
        self._verify(fr)
        steps = [e for e in fr.snapshot() if e["kind"] == "step"]
        assert steps
        assert all("regs" not in s for s in steps)


@pytest.mark.parametrize("kind", ["verdict_cache_off"])
def test_flight_disables_verdict_cache(kind):
    # A cached verdict skips do_check, which would leave the ring
    # holding a previous program's decisions — recording must win.
    from repro.fuzz.campaign import Campaign, CampaignConfig

    recording = Campaign(CampaignConfig(budget=1, flight=True))
    plain = Campaign(CampaignConfig(budget=1, flight=False))
    assert recording.verdicts is None
    assert plain.verdicts is not None
