"""Artifact + dashboard tests, and the worker-invariance contract.

Satellite requirements covered here:

- phase accounting: ``generate + verify + execute <= wall`` on a real
  campaign run;
- worker invariance: a parallel campaign merged from 4 workers yields
  byte-identical non-wall-clock artifact content to the same campaign
  on 1 worker;
- ``repro report`` renders acceptance-by-reason and per-shard
  throughput from a metrics artifact.
"""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.analysis.reports import render_dashboard
from repro.fuzz.campaign import Campaign, CampaignConfig
from repro.fuzz.parallel import ParallelCampaign
from repro.obs.artifact import (
    SCHEMA,
    build_artifact,
    strip_wall,
    write_artifact,
)
from repro.obs.metrics import strip_wall_fields


@pytest.fixture(scope="module")
def serial_result():
    config = CampaignConfig(tool="bvf", budget=150, seed=7)
    return Campaign(config).run()


@pytest.fixture(scope="module")
def sharded_results():
    config = CampaignConfig(tool="bvf", budget=120, seed=7)
    one = ParallelCampaign(config, workers=1, shards=4).run()
    four = ParallelCampaign(config, workers=4, shards=4).run()
    return one, four


class TestPhaseAccounting:
    def test_phase_times_bounded_by_wall(self, serial_result):
        r = serial_result
        busy = r.generate_seconds + r.verify_seconds + r.execute_seconds
        assert busy > 0
        assert busy <= r.wall_seconds

    def test_phase_histograms_recorded(self, serial_result):
        hists = serial_result.metrics["wall"]["histograms"]
        for phase in ("generate", "verify", "execute"):
            assert hists[f"phase.{phase}.seconds"]["count"] > 0


class TestWorkerInvariance:
    def test_counters_identical_across_worker_counts(self, sharded_results):
        one, four = sharded_results
        assert one.generated == four.generated
        assert one.accepted == four.accepted
        assert one.reject_errnos == four.reject_errnos
        assert one.reject_reasons == four.reject_reasons
        assert one.frame_generated == four.frame_generated
        assert one.frame_accepted == four.frame_accepted
        assert strip_wall_fields(one.metrics) == strip_wall_fields(
            four.metrics
        )

    def test_artifacts_identical_modulo_wall(self, sharded_results):
        one, four = sharded_results
        a = strip_wall(build_artifact(one))
        b = strip_wall(build_artifact(four))
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_strip_wall_removes_all_wall_fields(self, sharded_results):
        one, _ = sharded_results
        artifact = strip_wall(build_artifact(one))
        payload = json.dumps(artifact)
        assert '"wall"' not in payload
        assert "wall_seconds" not in payload


class TestArtifact:
    def test_schema_and_sections(self, serial_result):
        artifact = build_artifact(serial_result)
        assert artifact["schema"] == SCHEMA
        for section in ("config", "summary", "taxonomy", "metrics",
                        "shards", "wall"):
            assert section in artifact
        assert artifact["summary"]["generated"] == serial_result.generated

    def test_round_trips_through_json(self, serial_result, tmp_path):
        path = tmp_path / "metrics.json"
        write_artifact(build_artifact(serial_result), str(path))
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == SCHEMA


class TestDashboard:
    def test_renders_required_sections(self, sharded_results):
        one, _ = sharded_results
        text = render_dashboard(build_artifact(one))
        assert "acceptance by rejection reason" in text
        assert "acceptance by frame kind" in text
        assert "per-shard coverage / throughput" in text
        assert "phase-time histograms" in text
        # 4 shards -> 4 per-shard table rows (index, generated, ...)
        import re

        rows = [line for line in text.splitlines()
                if re.match(r"^\s+\d+\s+\d+\s+\d+\s+\d+", line)]
        assert len(rows) == 4

    def test_report_cli(self, serial_result, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        write_artifact(build_artifact(serial_result), str(path))
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "acceptance by rejection reason" in out

    def test_report_cli_rejects_bad_schema(self, tmp_path, capsys):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"schema": "something-else"}))
        assert main(["report", str(path)]) == 1

    def test_report_cli_tolerates_older_schema(self, serial_result,
                                               tmp_path, capsys):
        # An artifact from before the profile/frontier sections existed
        # must render (missing sections as "n/a") with a stderr note,
        # not crash with KeyError.
        artifact = build_artifact(serial_result)
        artifact["schema"] = "repro-metrics-v1"
        for section in ("profile", "frontier"):
            artifact.pop(section, None)
        path = tmp_path / "old.json"
        path.write_text(json.dumps(artifact))
        assert main(["report", str(path)]) == 0
        captured = capsys.readouterr()
        assert "acceptance by rejection reason" in captured.out
        assert "n/a (no frontier data" in captured.out
        assert "predates" in captured.err

    def test_dashboard_tolerates_missing_sections(self):
        # Defensive rendering: a bare-bones artifact with only a schema
        # must not raise.
        text = render_dashboard({"schema": "repro-metrics-v1"})
        assert "n/a" in text

    def test_profile_cli(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        rc = main([
            "fuzz", "--budget", "25", "--seed", "4", "--profile",
            "--metrics", str(metrics),
        ])
        assert rc == 0
        capsys.readouterr()
        assert main(["profile", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "verifier profile:" in out
        assert "hotspots" in out

    def test_profile_cli_without_profile_data(self, serial_result,
                                              tmp_path, capsys):
        path = tmp_path / "m.json"
        artifact = build_artifact(serial_result)
        artifact.pop("profile", None)
        path.write_text(json.dumps(artifact))
        assert main(["profile", str(path)]) == 0
        assert "no profile data" in capsys.readouterr().out

    def test_campaign_cli_writes_artifacts(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        trace = tmp_path / "t.jsonl"
        rc = main([
            "campaign", "--tool", "bvf", "--budget", "40", "--seed", "5",
            "--workers", "1", "--shards", "2",
            "--metrics", str(metrics), "--trace", str(trace),
        ])
        assert rc == 0
        capsys.readouterr()
        assert json.loads(metrics.read_text())["schema"] == SCHEMA
        shard_traces = sorted(tmp_path.glob("t.jsonl.shard*"))
        assert len(shard_traces) == 2
        first_line = shard_traces[0].read_text().splitlines()[0]
        assert "ts" in json.loads(first_line)
