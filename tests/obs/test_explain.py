"""Rejection-explainer tests.

The ISSUE-8 acceptance bar: every rejected program in the selftest
corpus must yield an explanation whose taxonomy code is not
UNCLASSIFIED and whose instruction index points at a real instruction.
"""

import pytest

from repro.errors import BpfError, VerifierReject
from repro.kernel.config import PROFILES
from repro.kernel.syscall import Kernel
from repro.obs.explain import (
    Explanation,
    build_selftest,
    check_for_reason,
    describe_accepted,
    explain_events,
    explain_iteration,
    explain_program,
    explain_selftest,
    replay_iteration,
)
from repro.obs.taxonomy import REASON_CODES, UNCLASSIFIED
from repro.testsuite import all_selftests_extended


def _rejected_selftests():
    """(name, prog, message) for every selftest the patched kernel
    rejects — the corpus ground truth the explainer is tested against."""
    cases = []
    for selftest in all_selftests_extended():
        kernel = Kernel(PROFILES["patched"]())
        prog = selftest.build(kernel)
        try:
            kernel.prog_load(prog)
        except (VerifierReject, BpfError):
            cases.append((selftest.name, selftest))
    return cases


_REJECTED = _rejected_selftests()


class TestSelftestCorpusExplanations:
    def test_corpus_has_rejections(self):
        assert len(_REJECTED) >= 50

    @pytest.mark.parametrize(
        "name,selftest", _REJECTED, ids=[name for name, _ in _REJECTED]
    )
    def test_every_rejection_is_explained(self, name, selftest):
        kernel = Kernel(PROFILES["patched"]())
        prog = selftest.build(kernel)
        explanation = explain_program(kernel, prog)
        assert explanation is not None, f"{name} unexpectedly accepted"
        # Non-UNCLASSIFIED taxonomy code ...
        assert explanation.reason != UNCLASSIFIED, explanation.message
        assert explanation.reason in REASON_CODES
        # ... a named check family ...
        assert explanation.check != "unknown check", explanation.reason
        # ... and a valid instruction index with its rendering (empty
        # programs are rejected before any instruction exists).
        assert 0 <= explanation.insn_idx < max(1, len(prog.insns))
        if prog.insns:
            assert explanation.insn_text
        assert explanation.trail

    def test_accepted_selftest_has_no_explanation(self):
        accepted = next(
            s for s in all_selftests_extended() if s.expect == "accept"
        )
        kernel = Kernel(PROFILES["patched"]())
        prog = accepted.build(kernel)
        assert explain_program(kernel, prog) is None


class TestCheckFamilies:
    def test_every_reason_code_maps_to_a_check(self):
        unmapped = [
            reason for reason in REASON_CODES
            if reason != UNCLASSIFIED
            and check_for_reason(reason) == "unknown check"
        ]
        assert not unmapped

    def test_longest_prefix_wins(self):
        assert "stack-access" in check_for_reason("STACK_ACCESS")
        assert "combined-stack" in check_for_reason("STACK_LIMIT")


class TestExplainEvents:
    def _events(self):
        return [
            {"kind": "begin", "seq": 0, "program": "p", "insns": 4},
            {"kind": "step", "seq": 1, "insn": 0,
             "regs": {"R1": "ptr_to_ctx", "R10": "ptr_to_stack"}},
            {"kind": "step", "seq": 2, "insn": 1,
             "regs": {"R0": "0", "R10": "ptr_to_stack"}},
            {"kind": "verdict", "seq": 3, "verdict": "reject", "errno": 13,
             "insn": 1, "message": "invalid stack access off=8 size=8",
             "program": "p"},
        ]

    def test_reconstruction_from_events_alone(self):
        explanation = explain_events(self._events())
        assert explanation.program == "p"
        assert explanation.errno == 13
        assert explanation.reason == "STACK_ACCESS"
        assert explanation.insn_idx == 1
        assert explanation.registers == {"R0": "0", "R10": "ptr_to_stack"}

    def test_overrides_win(self):
        explanation = explain_events(
            self._events(),
            message="Unreleased reference id=3",
            errno=22,
            program="override",
        )
        assert explanation.program == "override"
        assert explanation.errno == 22
        assert explanation.reason == "REFERENCE_LEAK"

    def test_trail_is_bounded_and_ordered(self):
        events = self._events()
        events[1:1] = [
            {"kind": "step", "seq": 100 + i, "insn": i} for i in range(40)
        ]
        explanation = explain_events(events, trail=5)
        assert len(explanation.trail) == 5
        assert explanation.trail[-1]["kind"] == "verdict"

    def test_empty_events_degrade_gracefully(self):
        explanation = explain_events([], message="weird new failure")
        assert explanation.reason == UNCLASSIFIED
        assert explanation.insn_idx == 0
        assert explanation.insn_text is None
        assert explanation.registers == {}

    def test_to_dict_round_trips_through_json(self):
        import json

        explanation = explain_events(self._events())
        blob = json.loads(json.dumps(explanation.to_dict()))
        assert blob["reason"] == "STACK_ACCESS"
        assert blob["insn_idx"] == 1

    def test_render_mentions_the_essentials(self):
        text = explain_events(self._events()).render()
        assert "STACK_ACCESS" in text
        assert "at insn 1" in text
        assert "R10" in text
        assert isinstance(explain_events(self._events()), Explanation)


class TestExplainEntryPoints:
    def test_explain_selftest_unknown_name(self):
        with pytest.raises(KeyError):
            explain_selftest("no_such_selftest")

    def test_explain_selftest_by_name(self):
        name = _REJECTED[0][0]
        explanation = explain_selftest(name)
        assert explanation is not None
        assert explanation.reason != UNCLASSIFIED

    def test_explain_iteration_matches_campaign_explanation(self):
        """`repro explain N` reconstructs the same failing instruction
        the campaign recorded for iteration N."""
        from repro.fuzz.campaign import Campaign, CampaignConfig

        config = CampaignConfig(budget=40, seed=7, flight=True,
                                collect_coverage=False)
        result = Campaign(config).run()
        assert result.reject_explanations
        reason, recorded = sorted(result.reject_explanations.items())[0]
        replayed = explain_iteration(config, recorded["iteration"])
        assert replayed is not None
        assert replayed.reason == reason
        assert replayed.insn_idx == recorded["insn_idx"]
        assert replayed.insn_text == recorded["insn_text"]

    def test_build_selftest_by_name(self):
        kernel = Kernel(PROFILES["patched"]())
        prog = build_selftest(_REJECTED[0][0], kernel)
        assert prog.insns is not None
        with pytest.raises(KeyError):
            build_selftest("no_such_selftest", kernel)

    def test_replay_iteration_is_deterministic(self):
        from repro.fuzz.campaign import CampaignConfig

        config = CampaignConfig(budget=0, seed=3, collect_coverage=False)
        _, _, gp_a, prog_a = replay_iteration(config, 5)
        _, _, gp_b, prog_b = replay_iteration(config, 5)
        assert prog_a.name == prog_b.name
        assert [i.opcode for i in prog_a.insns] == [
            i.opcode for i in prog_b.insns
        ]
        assert gp_a.origin == gp_b.origin


class TestDescribeAccepted:
    def test_summary_includes_frame_breakdown(self):
        from repro.fuzz.campaign import CampaignConfig

        config = CampaignConfig(budget=0, seed=0, collect_coverage=False)
        _, _, gp, prog = replay_iteration(config, 0)
        text = describe_accepted("iteration 0", "patched", prog=prog, gp=gp)
        assert "verdict: accepted" in text
        assert "nothing to explain" in text
        assert f"type={prog.prog_type.name}" in text
        assert "frames:" in text

    def test_summary_without_program_details(self):
        text = describe_accepted("selftest 'x'", "bpf-next")
        assert "verdict: accepted" in text
        assert "selftest 'x'" in text

    def test_explain_cli_accepted_iteration(self, capsys):
        from repro.__main__ import main

        # Iteration 0 on the patched kernel: deterministic; pick the
        # first accepted iteration so the CLI takes the accepted path.
        from repro.fuzz.campaign import CampaignConfig

        config = CampaignConfig(budget=0, seed=0, sanitize=False,
                                kernel_version="patched")
        iteration = 0
        for iteration in range(30):
            _, kernel, _, prog = replay_iteration(config, iteration)
            if explain_program(kernel, prog) is None:
                break
        assert main(["explain", str(iteration), "--kernel", "patched"]) == 0
        out = capsys.readouterr().out
        assert "nothing to explain" in out
        assert "verdict: accepted" in out
        assert "frames:" in out
