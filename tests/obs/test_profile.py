"""Hierarchical-profiler tests: accounting algebra, campaign
integration, worker invariance, and the self-time coverage floor.

Tentpole requirements covered here:

- frame self/cum telescoping: at every node ``self = cum - Σ
  children.cum``, so total self time equals total root cumulative;
- counts are exact and worker-count invariant (workers=1 vs 4 merge to
  bit-identical ``counts`` sections);
- per-family self times sum to >=95% of the measured verify phase wall
  on a real campaign;
- the disabled default is a shared no-op (``NULL_PROFILER``), and the
  campaign only creates a profiler when ``config.profile`` is on.
"""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.fuzz.campaign import Campaign, CampaignConfig
from repro.fuzz.parallel import ParallelCampaign
from repro.obs.artifact import build_artifact, strip_wall
from repro.obs.profile import (
    NULL_PROFILER,
    NullProfiler,
    VerifierProfiler,
    frame_of,
    merge_profiles,
    render_profile,
    strip_profile_wall,
)


@pytest.fixture(scope="module")
def profiled_result():
    config = CampaignConfig(tool="bvf", budget=100, seed=11, profile=True)
    return Campaign(config).run()


class TestNullProfiler:
    def test_disabled_and_inert(self):
        prof = NullProfiler()
        assert prof.enabled is False
        prof.push("x")
        prof.pop()
        with prof.frame("y"):
            pass
        assert prof.snapshot() == {}

    def test_default_process_profiler_is_null(self):
        assert obs.profiler() is NULL_PROFILER
        assert obs.profiler().enabled is False

    def test_frame_of_none_is_shared_noop(self):
        assert frame_of(None, "a") is frame_of(NULL_PROFILER, "b")

    def test_null_frame_swallows_nothing(self):
        with pytest.raises(RuntimeError):
            with frame_of(None, "f"):
                raise RuntimeError("propagates")


class TestAccounting:
    def test_counts_and_paths(self):
        prof = VerifierProfiler()
        with prof.frame("verify"):
            with prof.frame("do_check"):
                pass
            with prof.frame("do_check"):
                pass
        snap = prof.snapshot()
        assert snap["counts"]["nodes"] == {
            "verify": 1, "verify/do_check": 2,
        }

    def test_self_cum_telescoping(self):
        prof = VerifierProfiler()
        with prof.frame("root"):
            with prof.frame("a"):
                with prof.frame("leaf"):
                    pass
            with prof.frame("b"):
                pass
        wall = prof.snapshot()["wall"]["nodes"]
        root = wall["root"]
        # self = cum - sum of direct children cum, at every node.
        children = wall["root/a"]["cum"] + wall["root/b"]["cum"]
        assert root["self"] == pytest.approx(root["cum"] - children)
        # Total self telescopes to the root cumulative exactly.
        total_self = sum(times["self"] for times in wall.values())
        assert total_self == pytest.approx(root["cum"])

    def test_pop_on_exception(self):
        prof = VerifierProfiler()
        with pytest.raises(ValueError):
            with prof.frame("outer"):
                with prof.frame("inner"):
                    raise ValueError("boom")
        assert prof._stack == []
        assert prof.snapshot()["counts"]["nodes"] == {
            "outer": 1, "outer/inner": 1,
        }

    def test_flat_counters(self):
        prof = VerifierProfiler()
        prof.alu_ops["ADD64"] += 2
        prof.helpers["bpf_map_lookup_elem"] += 1
        prof.ops["prune.miss"] += 3
        counts = prof.snapshot()["counts"]
        assert counts["alu_ops"] == {"ADD64": 2}
        assert counts["helpers"] == {"bpf_map_lookup_elem": 1}
        assert counts["ops"] == {"prune.miss": 3}


class TestMergeAndStrip:
    def _snap(self, n):
        prof = VerifierProfiler()
        with prof.frame("verify"):
            pass
        prof.alu_ops["ADD64"] += n
        return prof.snapshot()

    def test_merge_sums_counts_and_wall(self):
        merged = merge_profiles([self._snap(1), self._snap(2), {}])
        assert merged["counts"]["nodes"] == {"verify": 2}
        assert merged["counts"]["alu_ops"] == {"ADD64": 3}
        assert merged["wall"]["nodes"]["verify"]["cum"] > 0

    def test_merge_all_empty_is_empty(self):
        assert merge_profiles([{}, {}]) == {}

    def test_strip_profile_wall(self):
        snap = self._snap(1)
        stripped = strip_profile_wall(snap)
        assert "wall" not in stripped
        assert stripped["counts"] == snap["counts"]
        assert strip_profile_wall({}) == {}


class TestCampaignIntegration:
    def test_profile_snapshot_populated(self, profiled_result):
        counts = profiled_result.profile["counts"]
        # The campaign root frame and the verifier pipeline under it.
        assert counts["nodes"]["verify"] == profiled_result.generated
        assert "verify/do_check" in counts["nodes"]
        assert "verify/structure" in counts["nodes"]
        assert counts["alu_ops"]  # scalar ALU dominates generation
        assert any(key.startswith("prune.") for key in counts["ops"])
        assert "sanitizer.sites" in counts["ops"]

    def test_profile_off_by_default(self):
        result = Campaign(CampaignConfig(budget=5, seed=0)).run()
        assert result.profile == {}

    def test_profiling_disables_verdict_cache(self):
        assert Campaign(CampaignConfig(profile=True)).verdicts is None
        assert Campaign(CampaignConfig()).verdicts is not None

    def test_self_times_cover_verify_wall(self, profiled_result):
        # The acceptance floor: per-family self times must account for
        # >=95% of the measured verify phase wall (telescoping makes
        # this exact up to the phase context-manager overhead).
        wall = profiled_result.profile["wall"]["nodes"]
        total_self = sum(times["self"] for times in wall.values())
        assert total_self >= 0.95 * profiled_result.verify_seconds

    def test_deterministic_across_runs(self):
        config = CampaignConfig(budget=30, seed=3, profile=True)
        a = Campaign(config).run().profile["counts"]
        b = Campaign(config).run().profile["counts"]
        assert a == b


class TestWorkerInvariance:
    @pytest.fixture(scope="class")
    def sharded(self):
        config = CampaignConfig(budget=80, seed=9, profile=True)
        one = ParallelCampaign(config, workers=1, shards=4).run()
        four = ParallelCampaign(config, workers=4, shards=4).run()
        return one, four

    def test_profile_counts_bit_identical(self, sharded):
        one, four = sharded
        a = json.dumps(strip_profile_wall(one.profile), sort_keys=True)
        b = json.dumps(strip_profile_wall(four.profile), sort_keys=True)
        assert a == b

    def test_artifact_sections_bit_identical(self, sharded):
        one, four = sharded
        a = strip_wall(build_artifact(one))
        b = strip_wall(build_artifact(four))
        assert json.dumps(a["profile"], sort_keys=True) == json.dumps(
            b["profile"], sort_keys=True
        )
        assert json.dumps(a["frontier"], sort_keys=True) == json.dumps(
            b["frontier"], sort_keys=True
        )

    def test_stripped_profile_has_no_wall(self, sharded):
        one, _ = sharded
        artifact = strip_wall(build_artifact(one))
        assert "wall" not in artifact["profile"]
        assert artifact["profile"]["enabled"] is True


class TestRender:
    def test_render_full_snapshot(self, profiled_result):
        text = render_profile(profiled_result.profile)
        assert "verifier profile:" in text
        assert "hotspots" in text
        assert "ALU ops" in text
        assert "self %" in text

    def test_render_degrades_without_wall(self, profiled_result):
        text = render_profile(strip_profile_wall(profiled_result.profile))
        assert "verifier profile:" in text
        assert "hotspots" not in text
        assert "self %" not in text

    def test_render_empty(self):
        assert "no profile data" in render_profile({})
