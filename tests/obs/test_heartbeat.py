"""Heartbeat tests: atomicity, determinism split, watch rendering."""

import json
import os

import pytest

from repro.obs.heartbeat import (
    META_SCHEMA,
    SCHEMA,
    HeartbeatWriter,
    read_campaign_meta,
    read_heartbeats,
    render_watch,
    write_campaign_meta,
)


def _strip_wall(snapshot: dict) -> dict:
    return {k: v for k, v in snapshot.items() if k != "wall"}


class TestHeartbeatWriter:
    def test_writes_schema_and_shard_file(self, tmp_path):
        writer = HeartbeatWriter(tmp_path, shard_index=3, budget=100, seed=9)
        writer.write(status="running", programs=10, accepted=7)
        path = tmp_path / "shard03.heartbeat.json"
        snapshot = json.loads(path.read_text())
        assert snapshot["schema"] == SCHEMA
        assert snapshot["shard"] == 3
        assert snapshot["budget"] == 100
        assert snapshot["seed"] == 9
        assert snapshot["rejected"] == 3

    def test_no_tmp_file_left_behind(self, tmp_path):
        writer = HeartbeatWriter(tmp_path)
        writer.write(status="running", programs=1, accepted=1)
        assert [p.name for p in tmp_path.iterdir()] == [
            "shard00.heartbeat.json"
        ]

    def test_replaces_previous_snapshot(self, tmp_path):
        writer = HeartbeatWriter(tmp_path, budget=50)
        writer.write(status="starting", programs=0, accepted=0)
        writer.write(status="done", programs=50, accepted=40)
        snapshot = read_heartbeats(tmp_path)[0]
        assert snapshot["status"] == "done"
        assert snapshot["programs"] == 50

    def test_deterministic_fields_are_top_level(self, tmp_path):
        """Same campaign position => identical non-wall content, even
        from different writer instances (the testable half of the
        heartbeat contract)."""
        kwargs = dict(
            status="running", programs=20, accepted=15, findings=2,
            divergences=1, reject_reasons={"STACK_ACCESS": 5},
            phase_seconds={"verify": 1.23}, caches={"tnum_memo": 0.8},
        )
        a = HeartbeatWriter(tmp_path / "a", shard_index=1, budget=40, seed=3)
        b = HeartbeatWriter(tmp_path / "b", shard_index=1, budget=40, seed=3)
        a.write(**kwargs)
        b.write(**kwargs)
        snap_a = read_heartbeats(tmp_path / "a")[0]
        snap_b = read_heartbeats(tmp_path / "b")[0]
        assert _strip_wall(snap_a) == _strip_wall(snap_b)
        # Host-dependent values live only under "wall".
        for key in ("elapsed_seconds", "programs_per_sec", "updated_unix",
                    "phase_seconds", "caches"):
            assert key in snap_a["wall"]
            assert key not in _strip_wall(snap_a)


class TestReaders:
    def test_read_heartbeats_orders_by_shard(self, tmp_path):
        for index in (2, 0, 1):
            HeartbeatWriter(tmp_path, shard_index=index).write(
                status="running", programs=index, accepted=0
            )
        shards = [s["shard"] for s in read_heartbeats(tmp_path)]
        assert shards == [0, 1, 2]

    def test_read_heartbeats_skips_torn_or_foreign_files(self, tmp_path):
        HeartbeatWriter(tmp_path, shard_index=0).write(
            status="running", programs=1, accepted=1
        )
        (tmp_path / "shard99.heartbeat.json").write_text("{truncated")
        assert len(read_heartbeats(tmp_path)) == 1

    def test_read_heartbeats_empty_dir(self, tmp_path):
        assert read_heartbeats(tmp_path) == []
        assert read_heartbeats(tmp_path / "missing") == []

    def test_campaign_meta_round_trip(self, tmp_path):
        write_campaign_meta(tmp_path, {"tool": "bvf", "budget": 100})
        meta = read_campaign_meta(tmp_path)
        assert meta["schema"] == META_SCHEMA
        assert meta["tool"] == "bvf"
        assert read_campaign_meta(tmp_path / "missing") is None


class TestRenderWatch:
    def _snapshot(self, shard=0, status="running", programs=10, budget=20,
                  accepted=8, reasons=None):
        return {
            "schema": SCHEMA, "shard": shard, "status": status,
            "programs": programs, "budget": budget, "accepted": accepted,
            "findings": 1, "divergences": 0,
            "reject_reasons": reasons or {},
            "wall": {"programs_per_sec": 50.0},
        }

    def test_empty_directory_message(self):
        assert "(no heartbeats yet)" in render_watch([])

    def test_renders_shards_and_totals(self):
        frame = render_watch([
            self._snapshot(shard=0, status="done", programs=20),
            self._snapshot(shard=1, programs=10,
                           reasons={"STACK_ACCESS": 2}),
        ])
        assert "1/2 done" in frame
        assert "30/40" in frame
        assert "STACK_ACCESS=2" in frame

    def test_meta_header(self):
        frame = render_watch(
            [self._snapshot()],
            meta={"tool": "bvf", "kernel": "bpf-next", "budget": 40,
                  "seed": 0, "shards": 1, "workers": 2},
        )
        assert frame.splitlines()[0].startswith("campaign: tool=bvf")

    def test_fleet_rejection_totals_sum(self):
        frame = render_watch([
            self._snapshot(shard=0, reasons={"STACK_ACCESS": 2}),
            self._snapshot(shard=1, reasons={"STACK_ACCESS": 3}),
        ])
        assert "STACK_ACCESS=5" in frame


class TestCampaignIntegration:
    def test_serial_campaign_heartbeats(self, tmp_path):
        from repro.fuzz.campaign import Campaign, CampaignConfig

        config = CampaignConfig(
            budget=30, seed=1, heartbeat_dir=str(tmp_path),
            heartbeat_every=10, collect_coverage=False,
        )
        result = Campaign(config).run()
        (snapshot,) = read_heartbeats(tmp_path)
        assert snapshot["status"] == "done"
        assert snapshot["programs"] == result.generated == 30
        assert snapshot["accepted"] == result.accepted
        assert snapshot["reject_reasons"] == dict(result.reject_reasons)

    def test_parallel_campaign_heartbeats_deterministic(self, tmp_path):
        """Acceptance bar: for fixed (seed, budget, shards) the final
        heartbeat files are identical outside "wall", whatever the
        worker count — and the meta manifest is written."""
        from repro.fuzz.campaign import CampaignConfig
        from repro.fuzz.parallel import ParallelCampaign

        def final_beats(directory, workers):
            config = CampaignConfig(
                budget=40, seed=2, heartbeat_dir=str(directory),
                heartbeat_every=10, collect_coverage=False,
            )
            ParallelCampaign(config, workers=workers, shards=4).run()
            return read_heartbeats(directory)

        one = final_beats(tmp_path / "w1", 1)
        four = final_beats(tmp_path / "w4", 4)
        assert len(one) == len(four) == 4
        assert all(s["status"] == "done" for s in one + four)
        assert ([_strip_wall(s) for s in one]
                == [_strip_wall(s) for s in four])

        meta = read_campaign_meta(tmp_path / "w4")
        assert meta["shards"] == 4
        assert meta["workers"] == 4
